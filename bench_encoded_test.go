// BenchmarkEncodedScan measures what dictionary/RLE column encoding buys on
// a low-cardinality equality/IN workload: the same data is loaded twice —
// once with the default encoding writer, once with encoding disabled (the
// prior vectorised layout) — and the same vectorised queries run over both.
// The encoded table's kernels compare dictionary codes and whole runs
// instead of cell text, and its dict/RLE columns store several times
// smaller. Results are written machine-readably to BENCH_encoded_scan.json
// at the repository root.
package dgfindex_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// encodedScanPath is one layout's measurement in BENCH_encoded_scan.json.
type encodedScanPath struct {
	NsPerQuery        int64   `json:"ns_per_query"`
	ScannedRowsPerSec float64 `json:"scanned_rows_per_sec"`
	BytesRead         int64   `json:"bytes_read"`
	RecordsRead       int64   `json:"records_read"`
	DictProbes        int64   `json:"dict_probes"`
	RunsSkipped       int64   `json:"runs_skipped"`
}

// encodedBenchRows: unique id, a 64-value city column of long vendor names
// (a per-group dictionary in every group) and a ts advancing every 5000 rows
// (long runs, RLE), plus a float reading.
func encodedBenchRows(n int) []dgfindex.Row {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]dgfindex.Row, n)
	for i := range rows {
		rows[i] = dgfindex.Row{
			dgfindex.Int64(int64(i + 1)),
			dgfindex.Str(fmt.Sprintf("meter-vendor-%02d-of-smartgrid-consortium", i%64)),
			dgfindex.Time(base.AddDate(0, 0, i/5000)),
			dgfindex.Float64(float64(i%97) * 0.25),
		}
	}
	return rows
}

func BenchmarkEncodedScan(b *testing.B) {
	const tableRows = 150_000
	rows := encodedBenchRows(tableRows)

	w := dgfindex.New()
	setup := func(name string, disableEncoding bool) {
		if _, err := w.Exec(fmt.Sprintf(`CREATE TABLE %s (id bigint, city string,
			ts timestamp, v double) STORED AS RCFILE`, name)); err != nil {
			b.Fatal(err)
		}
		tbl, err := w.Table(name)
		if err != nil {
			b.Fatal(err)
		}
		tbl.RowGroupRows = 512
		tbl.DisableEncoding = disableEncoding
		if err := w.LoadRows(tbl, rows); err != nil {
			b.Fatal(err)
		}
	}
	setup("encmeter", false)
	setup("plainmeter", true)

	// Equality and IN on the dictionary column: every group holds all 64
	// city values, so zone maps prune nothing — the win is the kernels
	// binary-searching the per-group dictionary once and comparing codes,
	// where the plain layout must split and compare 150k 38-byte strings.
	// count(*) keeps the measured work on the predicate column itself.
	queries := []string{
		`SELECT count(*) FROM %s WHERE city='meter-vendor-03-of-smartgrid-consortium'`,
		`SELECT count(*) FROM %s WHERE city IN ('meter-vendor-01-of-smartgrid-consortium','meter-vendor-33-of-smartgrid-consortium','meter-vendor-60-of-smartgrid-consortium')`,
	}

	measure := func(table string, reps int) (encodedScanPath, []string) {
		b.Helper()
		var p encodedScanPath
		var rendered []string
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			p.BytesRead, p.RecordsRead, p.DictProbes, p.RunsSkipped = 0, 0, 0, 0
			rendered = rendered[:0]
			for _, q := range queries {
				res, err := w.Exec(fmt.Sprintf(q, table))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Stats.Vectorized {
					b.Fatalf("%s: query left the vectorised path", table)
				}
				p.BytesRead += res.Stats.BytesRead
				p.RecordsRead += res.Stats.RecordsRead
				p.DictProbes += res.Stats.DictProbes
				p.RunsSkipped += res.Stats.RunsSkipped
				for _, r := range res.Rows {
					rendered = append(rendered, fmt.Sprint(r))
				}
			}
		}
		per := time.Since(t0) / time.Duration(reps)
		p.NsPerQuery = per.Nanoseconds()
		if s := per.Seconds(); s > 0 {
			p.ScannedRowsPerSec = float64(tableRows*len(queries)) / s
		}
		return p, rendered
	}

	const reps = 10
	measure("encmeter", 2) // warm both layouts' side-file caches
	measure("plainmeter", 2)
	plainPath, plainRows := measure("plainmeter", reps)
	encPath, encRows := measure("encmeter", reps)

	if len(encRows) != len(plainRows) {
		b.Fatalf("result cardinality differs: %d encoded vs %d plain", len(encRows), len(plainRows))
	}
	for i := range encRows {
		if encRows[i] != plainRows[i] {
			b.Fatalf("row %d differs: %s encoded vs %s plain", i, encRows[i], plainRows[i])
		}
	}
	if encPath.DictProbes == 0 {
		b.Fatal("encoded table answered without dictionary probes: encoding never engaged")
	}
	if plainPath.DictProbes != 0 {
		b.Fatal("unencoded table reports dictionary probes")
	}

	speedup := float64(plainPath.NsPerQuery) / float64(encPath.NsPerQuery)
	if speedup < 1.5 {
		b.Fatalf("encoded speedup %.2fx, want >= 1.5x (encoded %v, plain %v)",
			speedup, time.Duration(encPath.NsPerQuery), time.Duration(plainPath.NsPerQuery))
	}

	// On-disk shrink of the encodable columns (city dict, ts rle), summed
	// over every row group from the colstats sidecars.
	colBytes := func(table string) (city, ts int64) {
		b.Helper()
		tbl, err := w.Table(table)
		if err != nil {
			b.Fatal(err)
		}
		files, err := w.FS.ListFiles(tbl.Dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range files {
			stats, err := storage.ReadColStats(w.FS, f.Path)
			if err != nil {
				b.Fatal(err)
			}
			for _, g := range stats {
				city += g.ColLens[1]
				ts += g.ColLens[2]
			}
		}
		return city, ts
	}
	encCity, encTs := colBytes("encmeter")
	plainCity, plainTs := colBytes("plainmeter")
	cityRatio := float64(plainCity) / float64(encCity)
	tsRatio := float64(plainTs) / float64(encTs)
	if cityRatio < 3 || tsRatio < 3 {
		b.Fatalf("encoded columns not >= 3x smaller: city %.2fx (%d vs %d), ts %.2fx (%d vs %d)",
			cityRatio, encCity, plainCity, tsRatio, encTs, plainTs)
	}

	out := struct {
		Benchmark string          `json:"benchmark"`
		Queries   []string        `json:"queries"`
		TableRows int64           `json:"table_rows"`
		Encoded   encodedScanPath `json:"encoded"`
		Plain     encodedScanPath `json:"plain"`
		Speedup   float64         `json:"speedup"`
		CityRatio float64         `json:"city_bytes_ratio_plain_over_encoded"`
		TsRatio   float64         `json:"ts_bytes_ratio_plain_over_encoded"`
	}{
		Benchmark: "BenchmarkEncodedScan",
		Queries:   queries,
		TableRows: tableRows,
		Encoded:   encPath,
		Plain:     plainPath,
		Speedup:   speedup,
		CityRatio: cityRatio,
		TsRatio:   tsRatio,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_encoded_scan.json", append(data, '\n'), 0644); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Exec(fmt.Sprintf(queries[0], "encmeter")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(speedup, "speedup-vs-plain")
	b.ReportMetric(cityRatio, "city-shrink")
	b.ReportMetric(tsRatio, "ts-shrink")
}
