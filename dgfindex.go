// Package dgfindex is an in-process reproduction of "DGFIndex for Smart
// Grid: Enhancing Hive with a Cost-Effective Multidimensional Range Index"
// (Liu et al., PVLDB 7(13), 2014).
//
// It bundles a model Hadoop stack — an HDFS-style filesystem, a MapReduce
// engine with a calibrated cluster cost model, a HiveQL-subset warehouse,
// and an HBase-style key-value store — with the paper's contribution: the
// distributed grid file index (DGFIndex), plus the Compact/Aggregate/Bitmap
// index and HadoopDB baselines the paper evaluates against.
//
// Quick start:
//
//	w := dgfindex.New()
//	w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint,
//	        ts timestamp, powerConsumed double)`)
//	t, _ := w.Table("meterdata")
//	w.LoadRows(t, rows)
//	w.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
//	        AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_1000',
//	        'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed)')`)
//
//	// Queries are context-first: a ctx that expires mid-scan aborts the
//	// MapReduce job within one split boundary (Exec is the
//	// context.Background() shorthand).
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	res, _ := w.ExecContext(ctx, `SELECT sum(powerConsumed) FROM meterdata
//	        WHERE userId>=100 AND userId<=5000 AND regionId=3
//	        AND ts>='2012-12-05' AND ts<'2012-12-12'`, dgfindex.ExecOptions{})
//
//	// EXPLAIN reports the access path and exact read volume the execution
//	// would have; cursors stream rows as splits complete and stop a LIMIT
//	// scan early.
//	plan, _ := w.Exec(`EXPLAIN SELECT * FROM meterdata WHERE userId=42`)
//	stmt, _ := dgfindex.ParseSQL(`SELECT * FROM meterdata LIMIT 10`)
//	cur, _ := w.SelectCursor(ctx, stmt.(*dgfindex.SelectStmt), dgfindex.ExecOptions{})
//	for cur.Next() { _ = cur.Row() }
//	_ = cur.Close()
//
// Every query reports both its result rows and a QueryStats breakdown in
// the terms of the paper's figures: simulated cluster seconds split into
// "read index and other" versus "read data and process", records read,
// bytes read, splits and seeks.
package dgfindex

import (
	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/server"
	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
	"github.com/smartgrid-oss/dgfindex/internal/wal"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

// Core warehouse types.
type (
	// Warehouse is the catalog and query engine (Hive in the paper).
	Warehouse = hive.Warehouse
	// Table is one catalog entry.
	Table = hive.Table
	// Result is the outcome of one statement.
	Result = hive.Result
	// QueryStats is the per-query cost breakdown.
	QueryStats = hive.QueryStats
	// ExecOptions carries per-statement options (index ablations).
	ExecOptions = hive.ExecOptions
	// Cursor is an incremental SELECT result: rows stream as splits
	// complete, LIMIT stops the scan early, Close aborts it. Obtained from
	// Warehouse.SelectCursor or ShardRouter.SelectCursor.
	Cursor = hive.Cursor
	// ExplainPlan is the structured EXPLAIN outcome: access path, projected
	// columns and exact read bytes, GFU slice counts, shard target set.
	ExplainPlan = hive.ExplainPlan
	// Stmt is one parsed HiveQL statement (see ParseSQL).
	Stmt = hive.Stmt
	// SelectStmt is a parsed SELECT, the statement cursors accept.
	SelectStmt = hive.SelectStmt
	// TraceStmt is a parsed TRACE SELECT: it executes the wrapped SELECT and
	// returns its span tree instead of its rows (EXPLAIN's runtime twin).
	TraceStmt = hive.TraceStmt
)

// ParseSQL parses one HiveQL statement for reuse across executions (the
// parse-once half of ExecParsedContext and SelectCursor).
var ParseSQL = hive.Parse

// Record model.
type (
	// Row is one record.
	Row = storage.Row
	// Value is one dynamically typed cell.
	Value = storage.Value
	// Schema is an ordered list of named, typed columns.
	Schema = storage.Schema
	// Column is one schema entry.
	Column = storage.Column
	// Kind enumerates column types.
	Kind = storage.Kind
)

// Column kinds.
const (
	KindInt64   = storage.KindInt64
	KindFloat64 = storage.KindFloat64
	KindString  = storage.KindString
	KindTime    = storage.KindTime
)

// Value constructors.
var (
	Int64     = storage.Int64
	Float64   = storage.Float64
	Str       = storage.Str
	Time      = storage.Time
	TimeUnix  = storage.TimeUnix
	NewSchema = storage.NewSchema
)

// Cluster model.
type (
	// ClusterConfig is the simulated testbed (the paper's 29-node cluster).
	ClusterConfig = cluster.Config
	// FS is the model distributed filesystem.
	FS = dfs.FS
)

// DefaultCluster returns the paper-calibrated 28-worker cluster model.
func DefaultCluster() *ClusterConfig { return cluster.Default() }

// Index machinery, exposed for direct (non-SQL) use.
type (
	// DGFIndex is the paper's contribution, usable without the SQL layer.
	DGFIndex = dgf.Index
	// DGFSpec describes a DGFIndex to build.
	DGFSpec = dgf.Spec
	// DGFPlanOptions carries the planner ablation flags.
	DGFPlanOptions = dgf.PlanOptions
	// HiveIndexKind selects Compact, Aggregate or Bitmap.
	HiveIndexKind = hiveindex.Kind
	// Format selects TextFile or RCFile storage (the canonical enum of the
	// storage layer's segment abstraction).
	Format = storage.Format
	// DGFSource describes the base-table records a direct (non-SQL)
	// DGFIndex build reads: location, storage format, row-group sizing.
	DGFSource = dgf.Source
	// AdvisorConfig bounds SuggestPolicy, the splitting-policy advisor
	// implementing the paper's stated future work.
	AdvisorConfig = dgf.AdvisorConfig
	// Advice is a suggested splitting policy with projected properties.
	Advice = dgf.Advice
	// DGFAggSpec names one pre-computed aggregation (e.g. sum(power)).
	DGFAggSpec = dgf.AggSpec
	// GridRange is one per-column range constraint, used for query
	// histories and direct planner calls.
	GridRange = gridfile.Range
)

// Pre-computable aggregate functions.
const (
	AggSum   = dgf.AggSum
	AggCount = dgf.AggCount
	AggMin   = dgf.AggMin
	AggMax   = dgf.AggMax
)

// SuggestPolicy recommends a DGFIndex splitting policy from a data sample
// and a query history (the paper's Section 8 future work).
var SuggestPolicy = dgf.SuggestPolicy

// Index kinds and formats.
const (
	Compact   = hiveindex.Compact
	Aggregate = hiveindex.Aggregate
	Bitmap    = hiveindex.Bitmap
	TextFile  = storage.TextFile
	RCFile    = storage.RCFile
)

// ParseFormat reads a format name ("textfile" or "rcfile").
var ParseFormat = storage.ParseFormat

// Workload generators (the paper's evaluation datasets).
type (
	// MeterConfig generates smart-grid meter data.
	MeterConfig = workload.MeterConfig
	// TPCHConfig generates TPC-H lineitem rows.
	TPCHConfig = workload.TPCHConfig
	// MeterQuery is a parameterised multidimensional range query.
	MeterQuery = workload.MeterQuery
)

// Workload helpers.
var (
	DefaultMeterConfig = workload.DefaultMeterConfig
	DefaultTPCHConfig  = workload.DefaultTPCHConfig
	MeterSchema        = workload.MeterSchema
	UserInfoSchema     = workload.UserInfoSchema
	LineitemSchema     = workload.LineitemSchema
)

// Serving layer (DGFServe): a concurrent query service over one Warehouse,
// with admission control, plan/result caching, per-session metrics, and an
// HTTP front-end. See cmd/dgfserver and examples/concurrent.
type (
	// Server is the concurrent query-serving front-end.
	Server = server.Server
	// ServerConfig tunes worker pool, caches, timeouts, and pacing.
	ServerConfig = server.Config
	// QueryRequest is one query submission to a Server.
	QueryRequest = server.Request
	// QueryResponse is the outcome of one served query.
	QueryResponse = server.Response
	// ServerStream is one in-flight streaming query: a Cursor holding its
	// worker slot until Close (see Server.QueryStream).
	ServerStream = server.Stream
	// ServerSession carries per-session serving metrics.
	ServerSession = server.Session
	// ServerSnapshot is the full /stats payload.
	ServerSnapshot = server.Snapshot
	// ServerMetrics is one metric scope (server-wide or per-session).
	ServerMetrics = server.MetricsSnapshot
	// ServerCacheStats reports one cache's hit/miss/eviction counters.
	ServerCacheStats = server.CacheStats
	// TableInfo is a read-only catalog snapshot entry.
	TableInfo = hive.TableInfo
	// TraceSpan is one node of a query's span tree (QueryResponse.Trace,
	// Server.SlowTraces); offsets and walls are milliseconds from the root.
	TraceSpan = trace.SpanSnapshot
	// TraceRecord is one flight-recorder entry: a slow or errored query with
	// its full span tree (Server.SlowTraces, GET /debug/slow).
	TraceRecord = trace.Record
)

// Serving-layer constructors and sentinel errors.
var (
	// NewServer wraps a Warehouse in a concurrent query service.
	NewServer = server.New
	// NewServerWithBackend wraps any Backend (warehouse or shard router).
	NewServerWithBackend = server.NewWithBackend
	// ErrServerOverloaded: admission queue full, back off and retry.
	ErrServerOverloaded = server.ErrOverloaded
	// ErrServerClosed: the server is draining or closed.
	ErrServerClosed = server.ErrClosed
	// ErrQueryTimeout: the query exceeded its deadline.
	ErrQueryTimeout = server.ErrQueryTimeout
)

// Sharding layer: a router that partitions tables across N independent
// warehouses and executes SELECTs by scatter-gather over mergeable partial
// aggregates. The router implements Backend, so a Server fronts a sharded
// fleet exactly as it fronts one warehouse. See internal/shard.
type (
	// Backend is what a Server can front: *Warehouse or *ShardRouter.
	Backend = server.Backend
	// ShardRouter fans statements out across shard warehouses.
	ShardRouter = shard.Router
	// ShardConfig sets shard count, replicas per shard, routing key, and
	// strategy.
	ShardConfig = shard.Config
	// ShardStrategy selects hash or range routing.
	ShardStrategy = shard.Strategy
	// ShardSetHealth is one shard's replica-set health (Router.Health,
	// /stats, /healthz).
	ShardSetHealth = shard.SetHealth
	// ShardReplicaHealth is one replica's health record.
	ShardReplicaHealth = shard.ReplicaHealth
)

// ErrReplicaDown marks a request that failed because its chosen shard
// replica is down; the router retries it on the shard's other replicas.
var ErrReplicaDown = shard.ErrReplicaDown

// Shard routing strategies.
const (
	ShardByHash  = shard.HashKey
	ShardByRange = shard.RangeKey
)

// ParseShardStrategy reads "hash" or "range" (CLI flags).
var ParseShardStrategy = shard.ParseStrategy

// Durable ingest: a per-shard per-replica write-ahead log in front of the
// fleet. Loads ack once logged on every live replica, background appliers
// drain the logs in micro-batches, and a revived replica catches up by
// replaying the records it missed. See ShardRouter.EnableWAL and
// ServerConfig.WALDir.
type (
	// WALConfig configures ShardRouter.EnableWAL.
	WALConfig = shard.WALConfig
	// LoadAck describes one durably-acknowledged load.
	LoadAck = shard.LoadAck
	// LoadResult is the serving-layer load acknowledgement
	// (Server.LoadRowsCtx).
	LoadResult = server.LoadResult
	// WALFsyncPolicy selects append durability (always/interval/off).
	WALFsyncPolicy = wal.Policy
	// WALShardStats is one shard's log state (/stats "wal" section).
	WALShardStats = wal.ShardStats
	// WALReplicaStats is one replica's log positions and backlog.
	WALReplicaStats = wal.ReplicaStats
)

// WAL fsync policies.
const (
	// FsyncAlways syncs the log on every append (strongest durability).
	FsyncAlways = wal.PolicyAlways
	// FsyncInterval syncs on a short timer (default; bounded loss window).
	FsyncInterval = wal.PolicyInterval
	// FsyncOff never syncs explicitly (tests and bulk restores).
	FsyncOff = wal.PolicyOff
)

// ParseFsyncPolicy reads "always", "interval", or "off" (CLI flags).
var ParseFsyncPolicy = wal.ParsePolicy

// NewSharded creates a shard router over cfg.Shards shards of cfg.Replicas
// fresh in-memory warehouses each, every one with the default cluster model
// and block size (the sharded sibling of New).
func NewSharded(cfg ShardConfig) (*ShardRouter, error) {
	return shard.New(cfg, func(int, int) *Warehouse { return New() })
}

// NewShardedWithConfig creates a shard router whose warehouses share a
// cluster model and block size (the sharded sibling of NewWithConfig). Each
// shard — and each replica of each shard — still gets its own filesystem:
// they are independent stores.
func NewShardedWithConfig(cfg ShardConfig, cc *ClusterConfig, blockSize int64) (*ShardRouter, error) {
	return shard.New(cfg, func(int, int) *Warehouse {
		return hive.NewWarehouse(dfs.New(blockSize), cc, "/warehouse")
	})
}

// NormalizeSQL canonicalizes a statement the way the server's caches key it.
var NormalizeSQL = hive.Normalize

// New creates a warehouse on a fresh in-memory filesystem with the default
// cluster model and a 2 MB block size (scaled to the in-process datasets the
// examples use; pass your own via NewWithConfig for other geometries).
func New() *Warehouse {
	return hive.NewWarehouse(dfs.New(2<<20), cluster.Default(), "/warehouse")
}

// NewWithConfig creates a warehouse with an explicit cluster model and block
// size.
func NewWithConfig(cfg *ClusterConfig, blockSize int64) *Warehouse {
	return hive.NewWarehouse(dfs.New(blockSize), cfg, "/warehouse")
}
