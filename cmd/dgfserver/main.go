// Command dgfserver runs DGFServe: the concurrent HTTP query service over an
// in-process warehouse — or, with -shards N, over a fleet of N warehouse
// shards behind the scatter-gather router — modelling the State Grid
// deployment where many operators share one Hive+DGFIndex cluster.
//
// Start it with a generated month of smart-meter data and a DGFIndex:
//
//	dgfserver -demo -addr :8080
//	dgfserver -demo -shards 4 -shard-key userId -addr :8080
//	dgfserver -demo -shards 4 -replicas 2 -addr :8080   # per-shard failover
//	dgfserver -demo -shards 4 -replicas 2 -wal-dir /tmp/dgf-wal -fsync interval   # durable ingest
//
// then query it:
//
//	curl -s localhost:8080/query --data '{"sql":
//	  "SELECT sum(powerConsumed) FROM meterdata WHERE userId>=100 AND userId<=4000 AND regionId=3 AND ts>='\''2012-12-05'\'' AND ts<'\''2012-12-12'\''"}'
//	curl -s localhost:8080/tables
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics      # Prometheus text exposition
//	curl -s localhost:8080/debug/slow   # slow-query flight recorder
//
// and push new readings over HTTP:
//
//	curl -s 'localhost:8080/load' --data '{"table":"meterdata",
//	  "rows":[[17,1,"2013-01-01 00:15:00",1.25]]}'
//
// With -wal-dir set, /load acks once the rows are durable in every live
// replica's log ("durability":"logged"); add ?sync=1 to wait until they are
// applied and queryable.
//
// SIGINT/SIGTERM drains in-flight queries before exiting; SIGQUIT dumps the
// slow-query flight recorder to the log and keeps serving.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// backend is the slice of the serving Backend the demo loader needs; both
// *dgfindex.Warehouse and *dgfindex.ShardRouter provide it.
type backend interface {
	Exec(sql string) (*dgfindex.Result, error)
	LoadRowsByName(table string, rows []dgfindex.Row) error
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 8, "max queries executing in parallel")
	queue := flag.Int("queue", 64, "max queries waiting beyond the worker pool")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache payload budget in bytes (0 = uncapped)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	pacing := flag.Duration("pacing", 0, "wall time per simulated cluster-second (0 disables pacing)")
	shards := flag.Int("shards", 1, "warehouse shards behind the server (1 = unsharded)")
	replicas := flag.Int("replicas", 1, "warehouse replicas per shard (sharded mode; reads fail over, writes go to all)")
	shardKey := flag.String("shard-key", "userId", "routing column for sharded mode")
	shardStrategy := flag.String("shard-strategy", "hash", "shard routing: hash or range")
	shardBounds := flag.String("shard-bounds", "", "comma-separated ascending split points for range routing (shards-1 values; -demo derives them when omitted)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables durable ingest (loads ack once logged, appliers drain in the background, revived replicas catch up by log replay)")
	fsync := flag.String("fsync", "interval", "WAL append durability: always, interval, or off (with -wal-dir)")
	maxLoadBytes := flag.Int64("max-load-bytes", 32<<20, "largest accepted POST /load body in bytes (negative = unlimited)")
	demo := flag.Bool("demo", false, "preload generated meter data with a DGFIndex")
	demoUsers := flag.Int("demo-users", 2000, "users in the demo dataset")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight queries on shutdown")
	slowMs := flag.Int("slow-ms", 500, "flight-recorder slow-query threshold in ms (negative records errors only)")
	traceRing := flag.Int("trace-ring", 64, "flight-recorder capacity in queries (negative disables)")
	flag.Parse()

	cc := dgfindex.DefaultCluster().Scaled(500000)
	var be dgfindex.Backend
	var demoTarget backend
	if *shards > 1 || *replicas > 1 || *walDir != "" {
		// Durable ingest needs the shard router's WAL surface, so -wal-dir
		// forces the fleet path even for a single shard.
		strategy, err := dgfindex.ParseShardStrategy(*shardStrategy)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dgfindex.ShardConfig{Shards: *shards, Replicas: *replicas, Key: *shardKey, Strategy: strategy}
		if strategy == dgfindex.ShardByRange {
			cfg.Bounds, err = rangeBounds(*shardBounds, *shards, *demo, *demoUsers)
			if err != nil {
				log.Fatal(err)
			}
		}
		router, err := dgfindex.NewShardedWithConfig(cfg, cc, 2<<20)
		if err != nil {
			log.Fatal(err)
		}
		be, demoTarget = router, router
	} else {
		w := dgfindex.NewWithConfig(cc, 2<<20)
		be, demoTarget = w, w
	}
	if *demo {
		if err := loadDemo(demoTarget, *demoUsers); err != nil {
			log.Fatal(err)
		}
	}

	srv := dgfindex.NewServerWithBackend(be, dgfindex.ServerConfig{
		MaxConcurrent:  *workers,
		MaxQueue:       *queue,
		CacheEntries:   *cache,
		MaxResultBytes: *cacheBytes,
		DefaultTimeout: *timeout,
		SimPacing:      *pacing,
		SlowQueryMs:    *slowMs,
		TraceRingSize:  *traceRing,
		WALDir:         *walDir,
		FsyncPolicy:    *fsync,
		MaxLoadBytes:   *maxLoadBytes,
	})
	if err := srv.WALError(); err != nil {
		log.Fatal(err)
	}
	if *walDir != "" {
		log.Printf("durable ingest enabled: wal-dir=%s fsync=%s (logged records replayed on boot)", *walDir, *fsync)
	}

	// SIGQUIT dumps the slow-query flight recorder and keeps serving (this
	// replaces Go's default stack dump for that signal; use SIGABRT for
	// stacks). kill -QUIT <pid> is the operator's "why was it slow just now".
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			recs := srv.SlowTraces()
			log.Printf("flight recorder: %d retained slow/errored queries", len(recs))
			for _, rec := range recs {
				b, err := json.Marshal(rec)
				if err != nil {
					log.Printf("flight recorder: marshal: %v", err)
					continue
				}
				log.Printf("flight recorder: %s", b)
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("dgfserver listening on %s (shards=%d replicas=%d workers=%d queue=%d cache=%d/%dMB)",
			*addr, *shards, *replicas, *workers, *queue, *cache, *cacheBytes>>20)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining %d in-flight queries...", srv.InFlight())
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	snap := srv.Stats()
	log.Printf("served %d queries (%d errors, %d cache hits), %.1f simulated cluster-seconds",
		snap.Server.Queries, snap.Server.Errors, snap.ResultCache.Hits, snap.Server.SimClusterSeconds)
}

// rangeBounds resolves the split points for range routing: explicit
// -shard-bounds win; otherwise -demo derives an even split of the demo user
// id space. Running range-sharded over real data requires explicit bounds.
func rangeBounds(spec string, shards int, demo bool, demoUsers int) ([]float64, error) {
	if spec != "" {
		var out []float64
		for _, part := range strings.Split(spec, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("-shard-bounds: bad split point %q: %w", part, err)
			}
			out = append(out, f)
		}
		return out, nil
	}
	if !demo {
		return nil, fmt.Errorf("-shard-strategy range needs -shard-bounds (or -demo to derive them from the demo user space)")
	}
	if demoUsers < shards {
		return nil, fmt.Errorf("-demo-users %d cannot range-split across %d shards; pass -shard-bounds or more users", demoUsers, shards)
	}
	var out []float64
	for i := 1; i < shards; i++ {
		out = append(out, float64((i*demoUsers)/shards))
	}
	return out, nil
}

func loadDemo(be backend, users int) error {
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = users
	cfg.OtherMetrics = 0
	log.Printf("loading demo: %d meter readings across %d days...", cfg.Rows(), cfg.Days)
	if _, err := be.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		return err
	}
	if err := be.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		return err
	}
	if _, err := be.Exec(`CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`); err != nil {
		return err
	}
	if err := be.LoadRowsByName("userInfo", cfg.UserInfoRows()); err != nil {
		return err
	}
	interval := max(users/100, 1)
	res, err := be.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, interval))
	if err != nil {
		return err
	}
	log.Print(res.Message)
	return nil
}
