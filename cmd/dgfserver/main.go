// Command dgfserver runs DGFServe: the concurrent HTTP query service over an
// in-process warehouse, modelling the State Grid deployment where many
// operators share one Hive+DGFIndex cluster.
//
// Start it with a generated month of smart-meter data and a DGFIndex:
//
//	dgfserver -demo -addr :8080
//
// then query it:
//
//	curl -s localhost:8080/query --data '{"sql":
//	  "SELECT sum(powerConsumed) FROM meterdata WHERE userId>=100 AND userId<=4000 AND regionId=3 AND ts>='\''2012-12-05'\'' AND ts<'\''2012-12-12'\''"}'
//	curl -s localhost:8080/tables
//	curl -s localhost:8080/stats
//
// SIGINT/SIGTERM drains in-flight queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 8, "max queries executing in parallel")
	queue := flag.Int("queue", 64, "max queries waiting beyond the worker pool")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	pacing := flag.Duration("pacing", 0, "wall time per simulated cluster-second (0 disables pacing)")
	demo := flag.Bool("demo", false, "preload generated meter data with a DGFIndex")
	demoUsers := flag.Int("demo-users", 2000, "users in the demo dataset")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight queries on shutdown")
	flag.Parse()

	w := dgfindex.NewWithConfig(dgfindex.DefaultCluster().Scaled(500000), 2<<20)
	if *demo {
		if err := loadDemo(w, *demoUsers); err != nil {
			log.Fatal(err)
		}
	}

	srv := dgfindex.NewServer(w, dgfindex.ServerConfig{
		MaxConcurrent:  *workers,
		MaxQueue:       *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		SimPacing:      *pacing,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("dgfserver listening on %s (workers=%d queue=%d cache=%d)",
			*addr, *workers, *queue, *cache)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining %d in-flight queries...", srv.InFlight())
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	snap := srv.Stats()
	log.Printf("served %d queries (%d errors, %d cache hits), %.1f simulated cluster-seconds",
		snap.Server.Queries, snap.Server.Errors, snap.ResultCache.Hits, snap.Server.SimClusterSeconds)
}

func loadDemo(w *dgfindex.Warehouse, users int) error {
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = users
	cfg.OtherMetrics = 0
	log.Printf("loading demo: %d meter readings across %d days...", cfg.Rows(), cfg.Days)
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		return err
	}
	t, err := w.Table("meterdata")
	if err != nil {
		return err
	}
	if err := w.LoadRows(t, cfg.AllRows()); err != nil {
		return err
	}
	if _, err := w.Exec(`CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`); err != nil {
		return err
	}
	u, err := w.Table("userInfo")
	if err != nil {
		return err
	}
	if err := w.LoadRows(u, cfg.UserInfoRows()); err != nil {
		return err
	}
	interval := max(users/100, 1)
	res, err := w.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, interval))
	if err != nil {
		return err
	}
	log.Print(res.Message)
	return nil
}
