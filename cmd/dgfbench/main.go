// Command dgfbench regenerates every table and figure of the paper's
// evaluation (Section 5) plus the DESIGN.md ablations.
//
// Usage:
//
//	dgfbench                       # run everything at the default scale
//	dgfbench -exp fig8,tab3        # selected experiments
//	dgfbench -scale small          # quick pass
//	dgfbench -markdown -o out.md   # EXPERIMENTS.md-style output
//	dgfbench -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "default", "dataset scale: small, test, default")
		markdown = flag.Bool("markdown", false, "emit Markdown tables instead of text")
		out      = flag.String("o", "", "write output to file instead of stdout")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %-10s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale()
	case "test":
		s = bench.TestScale()
	case "default":
		s = bench.DefaultScale()
	default:
		log.Fatalf("unknown scale %q (small, test, default)", *scale)
	}
	env := bench.NewEnv(s)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q; -list shows the ids", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		rep, err := e.Run(env)
		if err != nil {
			log.Fatalf("experiment %s: %v", e.ID, err)
		}
		rep.Notef("experiment wall time: %v", time.Since(start).Round(time.Millisecond))
		if *markdown {
			rep.WriteMarkdown(w)
		} else {
			rep.WriteText(w)
		}
	}
}
