// Command dgflint is the repo's invariant checker: a multichecker in
// the spirit of golang.org/x/tools/go/analysis/multichecker, built on
// the stdlib-only framework in internal/analysis so the module stays
// dependency-free. It type-checks every package in the module (test
// files excluded — tests are entry points and may mint contexts) and
// runs the analyzers that encode contracts earlier PRs established in
// prose: ctxflow, lockedcalls, errwrap, goroutinejoin, promlabels, and
// shadow.
//
// Usage:
//
//	go run ./cmd/dgflint ./...          # check the whole module
//	go run ./cmd/dgflint -only errwrap  # run a subset
//	go run ./cmd/dgflint -list          # describe the analyzers
//
// Suppressions: a finding is silenced by a same-line or line-above
// comment "//dgflint:ignore <analyzer> <reason>"; the reason is
// mandatory. Compat wrappers that may mint context.Background() are
// marked "//dgflint:compat <reason>" on their doc comment.
//
// Exit status is 1 when any finding survives suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/analysis"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/ctxflow"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/errwrap"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/goroutinejoin"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/lockedcalls"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/promlabels"
	"github.com/smartgrid-oss/dgfindex/internal/analysis/shadow"
)

var all = []*analysis.Analyzer{
	ctxflow.Analyzer,
	lockedcalls.Analyzer,
	errwrap.Analyzer,
	goroutinejoin.Analyzer,
	promlabels.Analyzer,
	shadow.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dgflint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgflint:", err)
		os.Exit(2)
	}
	loader, paths, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgflint:", err)
		os.Exit(2)
	}
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dgflint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := analysis.Run(analyzers, loader.Fset, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgflint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dgflint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
