// Command datagen emits the paper's evaluation datasets as delimited text,
// for inspection or for loading into other systems.
//
//	datagen -dataset meter -users 1000 -days 30 > meter.csv
//	datagen -dataset userinfo -users 1000 > users.csv
//	datagen -dataset tpch -rows 100000 > lineitem.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "meter", "meter, userinfo or tpch")
		users   = flag.Int("users", 1000, "meter/userinfo: number of users")
		days    = flag.Int("days", 30, "meter: collection days")
		perDay  = flag.Int("readings", 1, "meter: readings per day")
		metrics = flag.Int("metrics", 4, "meter: extra metric columns")
		rows    = flag.Int("rows", 100000, "tpch: lineitem rows")
		seed    = flag.Int64("seed", 20121201, "generator seed")
		header  = flag.Bool("header", false, "emit a header line")
	)
	flag.Parse()

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()

	switch *dataset {
	case "meter":
		cfg := workload.DefaultMeterConfig()
		cfg.Users, cfg.Days, cfg.ReadingsPerDay = *users, *days, *perDay
		cfg.OtherMetrics, cfg.Seed = *metrics, *seed
		if *header {
			writeHeader(w, workload.MeterSchema(cfg.OtherMetrics))
		}
		err := cfg.EachPeriod(func(p int, rows []storage.Row) error {
			for _, r := range rows {
				if _, err := w.WriteString(storage.EncodeTextRow(r)); err != nil {
					return err
				}
				if err := w.WriteByte('\n'); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	case "userinfo":
		cfg := workload.DefaultMeterConfig()
		cfg.Users = *users
		if *header {
			writeHeader(w, workload.UserInfoSchema())
		}
		for _, r := range cfg.UserInfoRows() {
			fmt.Fprintln(w, storage.EncodeTextRow(r))
		}
	case "tpch":
		cfg := workload.TPCHConfig{Rows: *rows, Seed: *seed}
		if *header {
			writeHeader(w, workload.LineitemSchema())
		}
		err := cfg.EachLineitemBatch(10000, func(rows []storage.Row) error {
			for _, r := range rows {
				if _, err := w.WriteString(storage.EncodeTextRow(r)); err != nil {
					return err
				}
				if err := w.WriteByte('\n'); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown dataset %q (meter, userinfo, tpch)", *dataset)
	}
}

func writeHeader(w *bufio.Writer, s *storage.Schema) {
	for i, c := range s.Cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
}
