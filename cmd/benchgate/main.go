// benchgate guards the committed benchmark baselines: it compares the
// "speedup" field of a freshly generated BENCH_*.json against the committed
// copy and fails when the fresh run regressed by more than the tolerance.
//
//	benchgate [-tolerance 0.15] baseline.json=current.json [more pairs...]
//
// Each positional argument is a baseline=current pair of JSON files, both in
// the shape the repository's benchmarks write (an object with a top-level
// "speedup" number). The gate only fails on regressions — a faster run than
// the committed baseline always passes, so baselines need refreshing only
// when the code genuinely speeds up and the new number should become the
// floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func speedupOf(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		Benchmark string   `json:"benchmark"`
		Speedup   *float64 `json:"speedup"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Speedup == nil {
		return 0, fmt.Errorf("%s: no \"speedup\" field", path)
	}
	if *doc.Speedup <= 0 {
		return 0, fmt.Errorf("%s: speedup %v is not positive", path, *doc.Speedup)
	}
	return *doc.Speedup, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-tolerance 0.15] baseline.json=current.json [...]")
		os.Exit(2)
	}

	failed := false
	for _, pair := range flag.Args() {
		basePath, curPath, ok := strings.Cut(pair, "=")
		if !ok || basePath == "" || curPath == "" {
			fmt.Fprintf(os.Stderr, "benchgate: bad pair %q (want baseline.json=current.json)\n", pair)
			os.Exit(2)
		}

		base, err := speedupOf(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		cur, err := speedupOf(curPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}

		floor := base * (1 - *tolerance)
		if cur < floor {
			fmt.Printf("FAIL %s: speedup %.2fx fell below %.2fx (baseline %.2fx - %.0f%% tolerance)\n",
				curPath, cur, floor, base, *tolerance*100)
			failed = true
		} else {
			fmt.Printf("ok   %s: speedup %.2fx vs baseline %.2fx (floor %.2fx)\n",
				curPath, cur, base, floor)
		}
	}
	if failed {
		os.Exit(1)
	}
}
