// Command dgfcli is an interactive HiveQL shell against an in-process
// warehouse, in the spirit of the Hive CLI the paper's operators used.
//
// Start with -demo to preload a month of generated meter data with a
// DGFIndex, then explore:
//
//	dgf> SELECT sum(powerConsumed) FROM meterdata
//	     WHERE regionId>=3 AND regionId<=7 AND userId>=100 AND userId<=4000
//	     AND ts>='2012-12-05' AND ts<'2012-12-20';
//
// Statements may span lines and end with ';'. Commands: !stats toggles the
// per-query cost report, !quit exits. TRACE SELECT ... (or the -trace flag,
// which applies it to every SELECT) prints the query's span tree — admission,
// plan, scatter, per-shard execution — instead of its rows.
//
// Queries run under a cancellable context: Ctrl-C aborts the in-flight
// statement at its next split boundary and reports the partial scan stats
// (records, splits) instead of killing the shell, and -timeout bounds every
// statement the same way. SELECT rows stream as the scan produces them.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

func main() {
	demo := flag.Bool("demo", false, "preload generated meter data with a DGFIndex")
	demoUsers := flag.Int("demo-users", 2000, "users in the demo dataset")
	timeout := flag.Duration("timeout", 0, "per-statement deadline (0 = none); an expired deadline aborts the scan")
	traceAll := flag.Bool("trace", false, "print the span tree instead of rows for every SELECT (same as prefixing TRACE)")
	flag.Parse()

	w := dgfindex.NewWithConfig(dgfindex.DefaultCluster().Scaled(500000), 2<<20)
	if *demo {
		if err := loadDemo(w, *demoUsers); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("dgfcli — HiveQL subset with DGFIndex (end statements with ';', !quit exits)")
	showStats := true
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("dgf> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case "!quit", "!q", "exit", "quit":
			return
		case "!stats":
			showStats = !showStats
			fmt.Printf("stats output %v\n", showStats)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		// Execute every completed statement; anything after the final ';'
		// stays buffered.
		pending := buf.String()
		buf.Reset()
		last := strings.LastIndexByte(pending, ';')
		for _, stmt := range strings.Split(pending[:last], ";") {
			if sql := strings.TrimSpace(stmt); sql != "" {
				run(w, sql, showStats, *timeout, *traceAll)
			}
		}
		if rest := strings.TrimSpace(pending[last+1:]); rest != "" {
			buf.WriteString(rest)
			buf.WriteByte('\n')
		}
		prompt()
	}
}

// run executes one statement under a cancellable context: SIGINT (and the
// -timeout deadline) aborts the scan at its next split boundary. SELECTs
// stream through a cursor so rows appear as splits complete and a cancelled
// query still reports how far it got.
func run(w *dgfindex.Warehouse, sql string, showStats bool, timeout time.Duration, traceAll bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	stmt, err := dgfindex.ParseSQL(sql)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if sel, ok := stmt.(*dgfindex.SelectStmt); ok && sel.InsertDir == "" {
		if traceAll {
			// -trace turns every plain SELECT into its TRACE twin: run the
			// query, print the span tree instead of the rows.
			stmt = &dgfindex.TraceStmt{Select: sel}
		} else {
			runSelect(ctx, w, sel, showStats)
			return
		}
	}

	res, err := w.ExecParsedContext(ctx, stmt, dgfindex.ExecOptions{})
	if err != nil {
		reportError(err)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	printRows(res.Columns, res.Rows)
	printStats(showStats, res.Stats)
}

// runSelect streams the rows of one SELECT and, on Ctrl-C or a missed
// deadline, prints the partial scan stats instead of dying silently.
func runSelect(ctx context.Context, w *dgfindex.Warehouse, sel *dgfindex.SelectStmt, showStats bool) {
	cur, err := w.SelectCursor(ctx, sel, dgfindex.ExecOptions{})
	if err != nil {
		reportError(err)
		return
	}
	defer cur.Close()
	fmt.Println(strings.Join(cur.Columns(), "\t"))
	shown := 0
	total := 0
	for cur.Next() {
		total++
		if shown < 40 {
			row := cur.Row()
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
			shown++
		}
	}
	if total > shown {
		fmt.Printf("... (%d more rows)\n", total-shown)
	}
	stats := cur.Stats()
	if err := cur.Err(); err != nil {
		reportError(err)
		fmt.Printf("-- partial scan before abort: %d records, %d splits, %d rows delivered\n",
			stats.RecordsRead, stats.Splits, total)
	}
	printStats(showStats, stats)
}

func reportError(err error) {
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Println("-- query canceled (Ctrl-C)")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("-- query deadline exceeded (-timeout)")
	default:
		fmt.Printf("error: %v\n", err)
	}
}

func printRows(cols []string, rows []dgfindex.Row) {
	if len(cols) > 0 {
		fmt.Println(strings.Join(cols, "\t"))
	}
	for i, row := range rows {
		if i == 40 {
			fmt.Printf("... (%d more rows)\n", len(rows)-40)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}

func printStats(showStats bool, st dgfindex.QueryStats) {
	if !showStats || st.AccessPath == "" {
		return
	}
	fmt.Printf("-- [%s] sim %.1fs (index+other %.1fs, data %.1fs), %d records, %d splits, wall %v\n",
		st.AccessPath, st.SimTotalSec(), st.IndexSimSec, st.DataSimSec,
		st.RecordsRead, st.Splits, st.Wall.Round(1e6))
}

func loadDemo(w *dgfindex.Warehouse, users int) error {
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = users
	cfg.OtherMetrics = 2
	fmt.Printf("loading demo: %d meter readings across %d days...\n", cfg.Rows(), cfg.Days)
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double, pate1 double, pate2 double)`); err != nil {
		return err
	}
	t, err := w.Table("meterdata")
	if err != nil {
		return err
	}
	if err := w.LoadRows(t, cfg.AllRows()); err != nil {
		return err
	}
	if _, err := w.Exec(`CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`); err != nil {
		return err
	}
	u, err := w.Table("userInfo")
	if err != nil {
		return err
	}
	if err := w.LoadRows(u, cfg.UserInfoRows()); err != nil {
		return err
	}
	interval := users / 100
	if interval < 1 {
		interval = 1
	}
	res, err := w.Exec(fmt.Sprintf(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_%d',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`, interval))
	if err != nil {
		return err
	}
	fmt.Println(res.Message)
	return nil
}
