module github.com/smartgrid-oss/dgfindex

go 1.24
