// BenchmarkSelectiveScan measures what the vectorised scan path buys on a
// selective query: zone maps prune row groups the predicate cannot touch,
// the surviving groups decode into reused column vectors, and predicate
// kernels filter before any row materialises. The row-at-a-time path over
// the same data is the baseline. Results are written machine-readably to
// BENCH_selective_scan.json at the repository root.
package dgfindex_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
)

// selectiveScanPath is one path's measurement in BENCH_selective_scan.json.
// ScannedRowsPerSec is table rows the query got through per second —
// computed over the table's row count for both paths, so the two numbers
// compare like for like (pruned groups count as scanned-past rows).
// RecordsRead stays the separate physical count: rows actually decoded.
type selectiveScanPath struct {
	NsPerQuery        int64   `json:"ns_per_query"`
	ScannedRowsPerSec float64 `json:"scanned_rows_per_sec"`
	BytesRead         int64   `json:"bytes_read"`
	RecordsRead       int64   `json:"records_read"`
	GroupsSkipped     int64   `json:"groups_skipped"`
	BitmapHits        int64   `json:"bitmap_hits"`
}

func measureSelectiveScan(b *testing.B, w *dgfindex.Warehouse, query string, opts dgfindex.ExecOptions, reps int, tableRows int64) (selectiveScanPath, *dgfindex.Result) {
	b.Helper()
	var res *dgfindex.Result
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		var err error
		res, err = w.ExecOpts(query, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	perQuery := time.Since(t0) / time.Duration(reps)
	p := selectiveScanPath{
		NsPerQuery:    perQuery.Nanoseconds(),
		BytesRead:     res.Stats.BytesRead,
		RecordsRead:   res.Stats.RecordsRead,
		GroupsSkipped: res.Stats.GroupsSkipped,
		BitmapHits:    res.Stats.BitmapHits,
	}
	if s := perQuery.Seconds(); s > 0 {
		p.ScannedRowsPerSec = float64(tableRows) / s
	}
	return p, res
}

func BenchmarkSelectiveScan(b *testing.B) {
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = 5000
	cfg.OtherMetrics = 0

	w := dgfindex.New()
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS RCFILE`); err != nil {
		b.Fatal(err)
	}
	tbl, err := w.Table("meterdata")
	if err != nil {
		b.Fatal(err)
	}
	tbl.RowGroupRows = 512
	allRows := cfg.AllRows()
	if err := w.LoadRows(tbl, allRows); err != nil {
		b.Fatal(err)
	}

	// The meter data loads day-major, so the timestamp zone maps carve the
	// file into disjoint date ranges: the late-date predicate lets the
	// vectorised scan drop ~90% of the row groups unread, while the row
	// path decodes all 150k rows and filters one at a time.
	const query = `SELECT regionId, sum(powerConsumed) FROM meterdata
		WHERE ts >= '2012-12-28' GROUP BY regionId`

	const reps = 12
	tableRows := int64(len(allRows))
	rowPath, rowRes := measureSelectiveScan(b, w, query, dgfindex.ExecOptions{DisableVectorized: true}, reps, tableRows)
	vecPath, vecRes := measureSelectiveScan(b, w, query, dgfindex.ExecOptions{}, reps, tableRows)

	if len(vecRes.Rows) != len(rowRes.Rows) {
		b.Fatalf("row counts differ: %d vectorised vs %d row path", len(vecRes.Rows), len(rowRes.Rows))
	}
	for i := range vecRes.Rows {
		for j := range vecRes.Rows[i] {
			if vecRes.Rows[i][j] != rowRes.Rows[i][j] {
				b.Fatalf("cell [%d][%d] differs: %v vs %v", i, j, vecRes.Rows[i][j], rowRes.Rows[i][j])
			}
		}
	}
	if vecPath.GroupsSkipped < 1 {
		b.Fatalf("vectorised path skipped %d row groups, want >= 1", vecPath.GroupsSkipped)
	}
	if vecPath.BytesRead >= rowPath.BytesRead {
		b.Fatalf("vectorised path read %d bytes, row path %d — zone maps saved nothing",
			vecPath.BytesRead, rowPath.BytesRead)
	}
	speedup := float64(rowPath.NsPerQuery) / float64(vecPath.NsPerQuery)
	if speedup < 2 {
		b.Fatalf("vectorised speedup %.2fx, want >= 2x (vec %v, row %v)",
			speedup, time.Duration(vecPath.NsPerQuery), time.Duration(rowPath.NsPerQuery))
	}

	out := struct {
		Benchmark  string            `json:"benchmark"`
		Query      string            `json:"query"`
		TableRows  int64             `json:"table_rows"`
		Vectorized selectiveScanPath `json:"vectorized"`
		RowPath    selectiveScanPath `json:"row_path"`
		Speedup    float64           `json:"speedup"`
		BytesRatio float64           `json:"bytes_ratio_row_over_vec"`
	}{
		Benchmark:  "BenchmarkSelectiveScan",
		Query:      query,
		TableRows:  tableRows,
		Vectorized: vecPath,
		RowPath:    rowPath,
		Speedup:    speedup,
		BytesRatio: float64(rowPath.BytesRead) / float64(vecPath.BytesRead),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_selective_scan.json", append(data, '\n'), 0644); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Exec(query); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(speedup, "speedup-vs-row")
	b.ReportMetric(float64(vecPath.GroupsSkipped), "groups-skipped")
	b.ReportMetric(float64(vecPath.BytesRead), "vec-bytes")
	b.ReportMetric(float64(rowPath.BytesRead), "row-bytes")
}
