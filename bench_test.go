// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, driving the same experiment code as cmd/dgfbench.
// Every benchmark reports the experiment's simulated cluster seconds for its
// headline systems as custom metrics, so `go test -bench=.` regenerates the
// paper-vs-measured comparison end to end. Run cmd/dgfbench for the full
// formatted tables at larger scales.
package dgfindex_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/bench"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
)

// env builds the shared experiment environment once per binary.
func env(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := bench.TestScale()
		if testing.Short() {
			scale = bench.SmallScale()
		}
		benchEnv = bench.NewEnv(scale)
	})
	return benchEnv
}

// runExperiment executes one registered experiment b.N times and surfaces
// chosen cells as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]interface{}) {
	b.Helper()
	e := env(b)
	exp, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rep *bench.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = exp.Run(e)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	b.StopTimer()
	for name, sel := range metrics {
		row, col := sel[0].(string), sel[1].(int)
		v, ok := lookupCell(rep, row, col)
		if ok {
			b.ReportMetric(v, name)
		}
	}
}

// lookupCell finds a numeric cell by row label and column index.
func lookupCell(rep *bench.Report, rowLabel string, col int) (float64, bool) {
	for _, row := range rep.Rows {
		if row[0] != rowLabel || col >= len(row) {
			continue
		}
		s := row[col]
		for _, suffix := range []string{"x", "s", "GB", "MB", "KB", "B", "M", "k"} {
			s = strings.TrimSuffix(s, suffix)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func BenchmarkFig3WriteThroughput(b *testing.B) {
	runExperiment(b, "fig3", map[string][2]interface{}{
		"hdfs-MBps":      {"HDFS", 1},
		"dbms-idx-MBps":  {"DBMS-X with index", 1},
		"dbms-noix-MBps": {"DBMS-X without index", 1},
	})
}

func BenchmarkTab2IndexBuild(b *testing.B) {
	runExperiment(b, "tab2", map[string][2]interface{}{
		"compact3-build-s": {"Compact", 4},
		"dgf-m-build-s":    {"DGF-M", 4},
	})
}

func BenchmarkTab3RecordsAggregation(b *testing.B) {
	runExperiment(b, "tab3", nil)
}

func BenchmarkFig8AggPoint(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]interface{}{
		"scan-s":     {"ScanTable", 3},
		"dgf-m-s":    {"DGF-medium", 3},
		"compact-s":  {"Compact-2D", 3},
		"hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkFig9Agg5Pct(b *testing.B) {
	runExperiment(b, "fig9", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
		"compact-s": {"Compact-2D", 3}, "hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkFig10Agg12Pct(b *testing.B) {
	runExperiment(b, "fig10", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
		"compact-s": {"Compact-2D", 3}, "hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkTab4RecordsGroupBy(b *testing.B) {
	runExperiment(b, "tab4", nil)
}

func BenchmarkFig11GroupByPoint(b *testing.B) {
	runExperiment(b, "fig11", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig12GroupBy5Pct(b *testing.B) {
	runExperiment(b, "fig12", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig13GroupBy12Pct(b *testing.B) {
	runExperiment(b, "fig13", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig14JoinPoint(b *testing.B) {
	runExperiment(b, "fig14", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig15Join5Pct(b *testing.B) {
	runExperiment(b, "fig15", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig16Join12Pct(b *testing.B) {
	runExperiment(b, "fig16", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig17PartialQuery(b *testing.B) {
	runExperiment(b, "fig17", map[string][2]interface{}{
		"compact-s": {"Compact-2D", 4},
	})
}

func BenchmarkTab5TPCHIndexBuild(b *testing.B) {
	runExperiment(b, "tab5", map[string][2]interface{}{
		"dgf-build-s": {"DGFIndex", 4},
	})
}

func BenchmarkTab6TPCHRecords(b *testing.B) {
	runExperiment(b, "tab6", nil)
}

func BenchmarkFig18TPCHQ6(b *testing.B) {
	runExperiment(b, "fig18", map[string][2]interface{}{
		"scan-s":     {"ScanTable", 3},
		"dgf-s":      {"DGFIndex", 3},
		"compact2-s": {"Compact-2D", 3},
		"compact3-s": {"Compact-3D", 3},
	})
}

func BenchmarkNameNodePartitions(b *testing.B) {
	runExperiment(b, "namenode", nil)
}

func BenchmarkAblationPrecompute(b *testing.B) {
	runExperiment(b, "ablation-precompute", nil)
}

func BenchmarkAblationSliceSkip(b *testing.B) {
	runExperiment(b, "ablation-sliceskip", nil)
}

func BenchmarkAblationKVStore(b *testing.B) {
	runExperiment(b, "ablation-kvstore", nil)
}
