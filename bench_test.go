// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, driving the same experiment code as cmd/dgfbench.
// Every benchmark reports the experiment's simulated cluster seconds for its
// headline systems as custom metrics, so `go test -bench=.` regenerates the
// paper-vs-measured comparison end to end. Run cmd/dgfbench for the full
// formatted tables at larger scales.
package dgfindex_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	dgfindex "github.com/smartgrid-oss/dgfindex"
	"github.com/smartgrid-oss/dgfindex/internal/bench"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
)

// env builds the shared experiment environment once per binary.
func env(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := bench.TestScale()
		if testing.Short() {
			scale = bench.SmallScale()
		}
		benchEnv = bench.NewEnv(scale)
	})
	return benchEnv
}

// runExperiment executes one registered experiment b.N times and surfaces
// chosen cells as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]interface{}) {
	b.Helper()
	e := env(b)
	exp, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rep *bench.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = exp.Run(e)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	b.StopTimer()
	for name, sel := range metrics {
		row, col := sel[0].(string), sel[1].(int)
		v, ok := lookupCell(rep, row, col)
		if ok {
			b.ReportMetric(v, name)
		}
	}
}

// lookupCell finds a numeric cell by row label and column index.
func lookupCell(rep *bench.Report, rowLabel string, col int) (float64, bool) {
	for _, row := range rep.Rows {
		if row[0] != rowLabel || col >= len(row) {
			continue
		}
		s := row[col]
		for _, suffix := range []string{"x", "s", "GB", "MB", "KB", "B", "M", "k"} {
			s = strings.TrimSuffix(s, suffix)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func BenchmarkFig3WriteThroughput(b *testing.B) {
	runExperiment(b, "fig3", map[string][2]interface{}{
		"hdfs-MBps":      {"HDFS", 1},
		"dbms-idx-MBps":  {"DBMS-X with index", 1},
		"dbms-noix-MBps": {"DBMS-X without index", 1},
	})
}

func BenchmarkTab2IndexBuild(b *testing.B) {
	runExperiment(b, "tab2", map[string][2]interface{}{
		"compact3-build-s": {"Compact", 4},
		"dgf-m-build-s":    {"DGF-M", 4},
	})
}

func BenchmarkTab3RecordsAggregation(b *testing.B) {
	runExperiment(b, "tab3", nil)
}

func BenchmarkFig8AggPoint(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]interface{}{
		"scan-s":     {"ScanTable", 3},
		"dgf-m-s":    {"DGF-medium", 3},
		"compact-s":  {"Compact-2D", 3},
		"hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkFig9Agg5Pct(b *testing.B) {
	runExperiment(b, "fig9", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
		"compact-s": {"Compact-2D", 3}, "hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkFig10Agg12Pct(b *testing.B) {
	runExperiment(b, "fig10", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
		"compact-s": {"Compact-2D", 3}, "hadoopdb-s": {"HadoopDB", 3},
	})
}

func BenchmarkTab4RecordsGroupBy(b *testing.B) {
	runExperiment(b, "tab4", nil)
}

func BenchmarkFig11GroupByPoint(b *testing.B) {
	runExperiment(b, "fig11", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig12GroupBy5Pct(b *testing.B) {
	runExperiment(b, "fig12", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig13GroupBy12Pct(b *testing.B) {
	runExperiment(b, "fig13", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig14JoinPoint(b *testing.B) {
	runExperiment(b, "fig14", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig15Join5Pct(b *testing.B) {
	runExperiment(b, "fig15", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig16Join12Pct(b *testing.B) {
	runExperiment(b, "fig16", map[string][2]interface{}{
		"scan-s": {"ScanTable", 3}, "dgf-m-s": {"DGF-medium", 3},
	})
}

func BenchmarkFig17PartialQuery(b *testing.B) {
	runExperiment(b, "fig17", map[string][2]interface{}{
		"compact-s": {"Compact-2D", 4},
	})
}

func BenchmarkTab5TPCHIndexBuild(b *testing.B) {
	runExperiment(b, "tab5", map[string][2]interface{}{
		"dgf-build-s": {"DGFIndex", 4},
	})
}

func BenchmarkTab6TPCHRecords(b *testing.B) {
	runExperiment(b, "tab6", nil)
}

func BenchmarkFig18TPCHQ6(b *testing.B) {
	runExperiment(b, "fig18", map[string][2]interface{}{
		"scan-s":     {"ScanTable", 3},
		"dgf-s":      {"DGFIndex", 3},
		"compact2-s": {"Compact-2D", 3},
		"compact3-s": {"Compact-3D", 3},
	})
}

func BenchmarkNameNodePartitions(b *testing.B) {
	runExperiment(b, "namenode", nil)
}

func BenchmarkAblationPrecompute(b *testing.B) {
	runExperiment(b, "ablation-precompute", nil)
}

func BenchmarkAblationSliceSkip(b *testing.B) {
	runExperiment(b, "ablation-sliceskip", nil)
}

func BenchmarkAblationKVStore(b *testing.B) {
	runExperiment(b, "ablation-kvstore", nil)
}

// BenchmarkConcurrentThroughput measures DGFServe's serving throughput: a
// fixed batch of smart-grid range queries is replayed through the server at
// 1 worker (serial baseline, measured once) and at 8 workers (the timed
// loop). Queries bypass the result cache so the speedup isolates the worker
// pool; pacing holds each worker slot for the query's simulated cluster
// time, modelling the paper's shared 29-node cluster. Reported metrics:
//
//	speedup-8w    batch-time ratio serial/parallel (expect > 2)
//	queries/sec   parallel serving throughput
//	cache-hits    result-cache hits from a repeated identical query (> 0)
func BenchmarkConcurrentThroughput(b *testing.B) {
	const pacing = time.Millisecond // wall time per simulated cluster-second
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = 300
	cfg.OtherMetrics = 0
	w := dgfindex.New()
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		b.Fatal(err)
	}
	tbl, err := w.Table("meterdata")
	if err != nil {
		b.Fatal(err)
	}
	if err := w.LoadRows(tbl, cfg.AllRows()); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_10',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`); err != nil {
		b.Fatal(err)
	}

	var batch []string
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.12} {
		q := "SELECT sum(powerConsumed) FROM meterdata WHERE " + cfg.Selective(frac).WhereClause()
		for j := 0; j < 8; j++ {
			batch = append(batch, q)
		}
	}

	runBatch := func(srv *dgfindex.Server, clients int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < len(batch); i += clients {
					if _, err := srv.Query(context.Background(), dgfindex.QueryRequest{
						SQL:     batch[i],
						Session: fmt.Sprintf("bench-%d", c),
						NoCache: true,
					}); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}

	serialSrv := dgfindex.NewServer(w, dgfindex.ServerConfig{MaxConcurrent: 1, SimPacing: pacing})
	t0 := time.Now()
	runBatch(serialSrv, 1)
	serialDur := time.Since(t0)

	parSrv := dgfindex.NewServer(w, dgfindex.ServerConfig{MaxConcurrent: 8, SimPacing: pacing})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch(parSrv, 8)
	}
	b.StopTimer()
	parDur := b.Elapsed() / time.Duration(b.N)
	if parDur > 0 {
		b.ReportMetric(serialDur.Seconds()/parDur.Seconds(), "speedup-8w")
		b.ReportMetric(float64(len(batch))/parDur.Seconds(), "queries/sec")
	}

	// Result cache: a repeated identical query must hit and return the same
	// rows; the hit count surfaces as a metric.
	cacheSrv := dgfindex.NewServer(w, dgfindex.ServerConfig{})
	first, err := cacheSrv.Query(context.Background(), dgfindex.QueryRequest{SQL: batch[0]})
	if err != nil {
		b.Fatal(err)
	}
	again, err := cacheSrv.Query(context.Background(), dgfindex.QueryRequest{SQL: batch[0]})
	if err != nil {
		b.Fatal(err)
	}
	if !again.Cached || first.Result.Rows[0][0] != again.Result.Rows[0][0] {
		b.Fatalf("repeated query not served from cache (cached=%v)", again.Cached)
	}
	b.ReportMetric(float64(cacheSrv.Stats().ResultCache.Hits), "cache-hits")
}

// BenchmarkRCFileSliceRead compares the byte volume of the same index-guided
// aggregation over a TextFile table and an RCFile table. The RCFile path
// opens only the row groups the GridFile selected and fetches only the two
// referenced columns' payloads, so it must read strictly fewer bytes than
// the TextFile slice read; the benchmark fails if it does not. Reported
// metrics: text-bytes, rc-bytes, and their ratio.
func BenchmarkRCFileSliceRead(b *testing.B) {
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = 200
	cfg.OtherMetrics = 0

	mk := func(stored string) *dgfindex.Warehouse {
		w := dgfindex.New()
		if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS ` + stored); err != nil {
			b.Fatal(err)
		}
		tbl, err := w.Table("meterdata")
		if err != nil {
			b.Fatal(err)
		}
		tbl.RowGroupRows = 64
		if err := w.LoadRows(tbl, cfg.AllRows()); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
			AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_20',
			'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`); err != nil {
			b.Fatal(err)
		}
		return w
	}
	textW := mk("TEXTFILE")
	rcW := mk("RCFILE")

	// References only userId + powerConsumed — half the meter schema — so
	// the RCFile reader skips the regionId and ts payloads entirely.
	query := "SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 20 AND userId <= 120"

	var textBytes, rcBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textRes, err := textW.Exec(query)
		if err != nil {
			b.Fatal(err)
		}
		rcRes, err := rcW.Exec(query)
		if err != nil {
			b.Fatal(err)
		}
		textBytes, rcBytes = textRes.Stats.BytesRead, rcRes.Stats.BytesRead
		if textRes.Rows[0][0].F != rcRes.Rows[0][0].F {
			b.Fatalf("results differ: %v vs %v", textRes.Rows[0][0].F, rcRes.Rows[0][0].F)
		}
		if rcBytes >= textBytes {
			b.Fatalf("RCFile index-guided read fetched %d bytes, TextFile %d — projection saved nothing", rcBytes, textBytes)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(textBytes), "text-bytes")
	b.ReportMetric(float64(rcBytes), "rc-bytes")
	if rcBytes > 0 {
		b.ReportMetric(float64(textBytes)/float64(rcBytes), "text/rc-ratio")
	}
}

// BenchmarkShardedThroughput measures what scatter-gather buys: the same
// scan-heavy meter workload is served by DGFServe over a 1-shard backend
// (the baseline, measured once) and over a 4-shard fleet (the timed loop),
// both with 8 parallel clients, result caching off, and pacing modelling
// the shared cluster. The cluster model is scaled (as cmd/dgfserver scales
// it) so each full scan spans many map waves: sharding then cuts every
// query's simulated time to the slowest shard's share, and the reported
// speedup-4shards is expected to exceed 1.5x.
func BenchmarkShardedThroughput(b *testing.B) {
	const pacing = 2 * time.Millisecond // wall time per simulated cluster-second
	cfg := dgfindex.DefaultMeterConfig()
	cfg.Users = 100
	cfg.OtherMetrics = 0

	mkBackend := func(shards int) dgfindex.Backend {
		// ~90 KB of generated rows modelled as a ~70 GB table: full scans
		// cost ~8 map waves on the 140-slot cluster, so a 4-shard fan-out
		// has real waves to win back.
		cc := dgfindex.DefaultCluster().Scaled(800000)
		router, err := dgfindex.NewShardedWithConfig(dgfindex.ShardConfig{Shards: shards, Key: "userId"}, cc, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := router.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
			b.Fatal(err)
		}
		if err := router.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
			b.Fatal(err)
		}
		return router
	}

	var batch []string
	for j := 0; j < 8; j++ {
		batch = append(batch,
			`SELECT sum(powerConsumed) FROM meterdata`,
			`SELECT count(*), avg(powerConsumed) FROM meterdata WHERE regionId >= 2`,
			`SELECT regionId, sum(powerConsumed) FROM meterdata GROUP BY regionId`,
			"SELECT sum(powerConsumed) FROM meterdata WHERE "+cfg.Selective(0.5).WhereClause(),
		)
	}

	runBatch := func(srv *dgfindex.Server, clients int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; i < len(batch); i += clients {
					if _, err := srv.Query(context.Background(), dgfindex.QueryRequest{
						SQL:     batch[i],
						Session: fmt.Sprintf("bench-%d", c),
						NoCache: true,
					}); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}

	oneSrv := dgfindex.NewServerWithBackend(mkBackend(1), dgfindex.ServerConfig{MaxConcurrent: 8, SimPacing: pacing})
	t0 := time.Now()
	runBatch(oneSrv, 8)
	oneShardDur := time.Since(t0)

	fourSrv := dgfindex.NewServerWithBackend(mkBackend(4), dgfindex.ServerConfig{MaxConcurrent: 8, SimPacing: pacing})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch(fourSrv, 8)
	}
	b.StopTimer()
	fourShardDur := b.Elapsed() / time.Duration(b.N)
	if fourShardDur > 0 {
		b.ReportMetric(oneShardDur.Seconds()/fourShardDur.Seconds(), "speedup-4shards")
		b.ReportMetric(float64(len(batch))/fourShardDur.Seconds(), "queries/sec")
	}
}
