package dgf

import (
	"fmt"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// SliceInput is the DgfInputFormat of the paper: given a plan's Slices it
// (a) filters unrelated splits in getSplits (Algorithm 4), and (b) hands
// each chosen split the ordered list of its Slices so the record reader can
// skip the margins between them (step 3 of the query pipeline).
//
// The reader is storage-format-agnostic: slices over TextFile data are read
// line by line, slices over RCFile data open only the row groups the
// GridFile selected, decoding only the columns the plan's projection kept
// (column-projection pushdown).
//
// A Slice may stretch across two splits; in that case it is divided at the
// boundary and the two parts are processed by the two splits' mappers,
// exactly as Section 4.3 describes. For TextFile, clip boundaries are
// arbitrary byte positions, so the clipped sides follow Hadoop's pairing
// rules (the earlier part owns the straddling line and any line starting
// exactly at the cut; the later part skips through the first newline). True
// Slice edges are exact line boundaries and use exact semantics — crucially,
// the reader must not spill into an adjacent Slice of a GFU the plan
// excluded (an inner GFU already answered from its header, say), or
// aggregation queries would double count. For RCFile, ownership is always
// "row group starts inside the range", which handles both true edges (always
// group boundaries, because the build cuts groups at GFU boundaries) and
// clip edges without special cases.
type SliceInput struct {
	FS   *dfs.FS
	Plan *Plan
	// Format is the storage format of the reorganised data files (the
	// owning Index's Format).
	Format storage.Format
	// Schema decodes RCFile rows (ignored for TextFile).
	Schema *storage.Schema
	// Vector switches RCFile slice readers to batch delivery: one Record
	// per row group with Batch set, honouring the plan's SkipGroups.
	Vector bool
}

// clippedSlice is a slice byte range clipped to one split, remembering which
// edges are artificial cuts.
type clippedSlice struct {
	Start, End         int64
	ClipStart, ClipEnd bool
}

// sliceSplit is one chosen split plus the slice ranges it owns.
type sliceSplit struct {
	dfs.Split
	slices []clippedSlice // ordered by Start
	// groupOffsets is the file's row-group index (RCFile data only),
	// loaded once per file in Splits and shared by the file's splits.
	groupOffsets []int64
}

// Label implements mapreduce.InputSplit.
func (s sliceSplit) Label() string {
	return fmt.Sprintf("%s (%d slices)", s.Split.String(), len(s.slices))
}

// Splits implements mapreduce.InputFormat (Algorithm 4: choose the splits
// that contain or overlap plan Slices, then prepare per-split slice lists).
func (in *SliceInput) Splits() ([]mapreduce.InputSplit, error) {
	byFile := map[string][]SliceLoc{}
	for _, sl := range in.Plan.Slices {
		byFile[sl.File] = append(byFile[sl.File], sl)
	}
	var out []mapreduce.InputSplit
	for file, slices := range byFile {
		fileSplits, err := in.FS.Splits(file)
		if err != nil {
			return nil, err
		}
		var groupOffsets []int64
		if in.Format == storage.RCFile {
			// The side group index locates the row groups each slice owns
			// (the model's stand-in for RCFile sync markers); one read
			// serves every split of the file.
			groupOffsets, err = storage.ReadGroupIndexCached(in.FS, file)
			if err != nil {
				return nil, fmt.Errorf("dgf: SliceInput: missing group index for %s: %w", file, err)
			}
		}
		for _, sp := range fileSplits {
			var own []clippedSlice
			for _, sl := range slices {
				start, end := sl.Start, sl.End
				cs := clippedSlice{Start: start, End: end}
				if start < sp.Start {
					cs.Start, cs.ClipStart = sp.Start, true
				}
				if end > sp.End() {
					cs.End, cs.ClipEnd = sp.End(), true
				}
				if cs.Start < cs.End {
					own = append(own, cs)
				}
			}
			if len(own) == 0 {
				continue // split filtered out (Algorithm 4 line 5)
			}
			if in.Plan.DisableSliceSkip {
				// Ablation: read the whole chosen split, Compact-Index
				// style. Hadoop split rules apply at both edges.
				own = []clippedSlice{{
					Start: sp.Start, End: sp.End(),
					ClipStart: sp.Start > 0, ClipEnd: true,
				}}
			}
			out = append(out, sliceSplit{Split: sp, slices: own, groupOffsets: groupOffsets})
		}
	}
	return out, nil
}

// Open implements mapreduce.InputFormat.
func (in *SliceInput) Open(split mapreduce.InputSplit) (mapreduce.RecordReader, error) {
	s, ok := split.(sliceSplit)
	if !ok {
		return nil, fmt.Errorf("dgf: SliceInput cannot open %T", split)
	}
	r, err := in.FS.Open(s.Path)
	if err != nil {
		return nil, err
	}
	sr := &sliceReader{in: in, file: r, path: s.Path, slices: s.slices, groupOffsets: s.groupOffsets}
	if skips := in.Plan.SkipGroups[s.Path]; len(skips) > 0 {
		sr.skipGroup = func(off int64) bool { return skips[off] }
	}
	return sr, nil
}

// sliceReader reads the records of each Slice in turn, skipping the margin
// between adjacent Slices; each jump across a margin counts as one seek.
type sliceReader struct {
	in           *SliceInput
	file         *dfs.FileReader
	path         string
	slices       []clippedSlice
	groupOffsets []int64 // RCFile only

	idx       int
	seg       storage.SegmentReader
	bytesRead int64
	seeks     int64
	skipped   int64
	lastEnd   int64
	skipGroup func(offset int64) bool
}

func (sr *sliceReader) Next() (mapreduce.Record, bool, error) {
	for {
		if sr.seg == nil {
			if sr.idx >= len(sr.slices) {
				return mapreduce.Record{}, false, nil
			}
			sl := sr.slices[sr.idx]
			sr.idx++
			if sr.idx > 1 && sl.Start != sr.lastEnd {
				sr.seeks++ // jumping a margin between slices
			}
			sr.lastEnd = sl.End
			sr.seg = storage.NewSegmentReader(sr.file, sr.in.Schema, sr.in.Format, sl.Start, sl.End, storage.SegmentOptions{
				SkipFirst:    sl.ClipStart,
				InclusiveEnd: sl.ClipEnd,
				Project:      sr.in.Plan.Project,
				GroupOffsets: sr.groupOffsets,
				Vector:       sr.in.Vector && sr.in.Format == storage.RCFile,
				SkipGroup:    sr.skipGroup,
			})
		}
		rec, ok, err := sr.seg.Next()
		if err != nil {
			return mapreduce.Record{}, false, err
		}
		if !ok {
			sr.drainSeg()
			continue
		}
		return mapreduce.Record{
			Data: rec.Line, Row: rec.Row, Batch: rec.Batch, Path: sr.path,
			Offset: rec.Offset, RowInBlock: rec.RowInGroup,
		}, true, nil
	}
}

// drainSeg folds the finished segment's counters into the reader's totals.
func (sr *sliceReader) drainSeg() {
	sr.bytesRead += sr.seg.BytesRead()
	if gs, ok := sr.seg.(storage.GroupSkipper); ok {
		sr.skipped += gs.GroupsSkipped()
	}
	sr.seg = nil
}

func (sr *sliceReader) BytesRead() int64 {
	n := sr.bytesRead
	if sr.seg != nil {
		n += sr.seg.BytesRead()
	}
	return n
}

func (sr *sliceReader) Seeks() int64 {
	// Each pruned group forces the reader to jump over its bytes — count it
	// like a margin jump so seek accounting stays honest.
	return sr.seeks + sr.GroupsSkipped()
}

// GroupsSkipped returns the row groups the plan's SkipGroups pruned so far.
func (sr *sliceReader) GroupsSkipped() int64 {
	n := sr.skipped
	if sr.seg != nil {
		if gs, ok := sr.seg.(storage.GroupSkipper); ok {
			n += gs.GroupsSkipped()
		}
	}
	return n
}
