package dgf

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func advisorSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "regionId", Kind: storage.KindInt64},
		storage.Column{Name: "ts", Kind: storage.KindTime},
		storage.Column{Name: "power", Kind: storage.KindFloat64},
	)
}

func advisorSample(users, regions, days int, seed int64) []storage.Row {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC).Unix()
	rows := make([]storage.Row, 0, users*days)
	for d := 0; d < days; d++ {
		for u := 1; u <= users; u++ {
			rows = append(rows, storage.Row{
				storage.Int64(int64(u)),
				storage.Int64(int64(u%regions + 1)),
				storage.TimeUnix(base + int64(d)*24*3600),
				storage.Float64(rng.Float64() * 100),
			})
		}
	}
	return rows
}

// historyOf builds n queries with fixed per-dimension extents.
func historyOf(n int, userExtent int64, days int64) []map[string]gridfile.Range {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC).Unix()
	var out []map[string]gridfile.Range
	for i := 0; i < n; i++ {
		lo := int64(i%50 + 1)
		out = append(out, map[string]gridfile.Range{
			"userId": {Lo: storage.Int64(lo), Hi: storage.Int64(lo + userExtent)},
			"ts":     {Lo: storage.TimeUnix(base), Hi: storage.TimeUnix(base + days*24*3600)},
		})
	}
	return out
}

func TestSuggestPolicyMatchesQueryExtent(t *testing.T) {
	sample := advisorSample(2000, 11, 10, 1)
	history := historyOf(20, 600, 5)
	adv, err := SuggestPolicy(advisorSchema(), []string{"regionId", "userId", "ts"}, sample, history,
		AdvisorConfig{TargetSpanCells: 10, MaxCells: 1 << 30, MinRowsPerCell: 1, TotalRows: int64(len(sample))})
	if err != nil {
		t.Fatal(err)
	}
	// userId queries span 600 values; target 10 cells -> interval near 60.
	ui := adv.Policy.DimIndex("userId")
	if got := adv.Policy.Dims[ui].IntervalI; got < 40 || got > 90 {
		t.Errorf("userId interval = %d, want near 60", got)
	}
	// ts queries span 5 days; target 10 cells -> half-day intervals,
	// snapped to the hour grid.
	ti := adv.Policy.DimIndex("ts")
	if got := adv.Policy.Dims[ti].IntervalI; got < 6*3600 || got > 24*3600 {
		t.Errorf("ts interval = %ds, want around half a day", got)
	}
	// regionId is never constrained: the full span is the extent.
	ri := adv.Policy.DimIndex("regionId")
	if got := adv.Policy.Dims[ri].IntervalI; got < 1 || got > 3 {
		t.Errorf("regionId interval = %d, want 1-3", got)
	}
	if err := adv.Policy.Validate(); err != nil {
		t.Errorf("suggested policy invalid: %v", err)
	}
	if adv.String() == "" {
		t.Error("empty IDXPROPERTIES rendering")
	}
}

func TestSuggestPolicyRespectsBudgets(t *testing.T) {
	sample := advisorSample(5000, 11, 10, 2)
	history := historyOf(10, 50, 1) // narrow queries want very fine grids
	adv, err := SuggestPolicy(advisorSchema(), []string{"regionId", "userId", "ts"}, sample, history,
		AdvisorConfig{TargetSpanCells: 20, MaxCells: 2000, MinRowsPerCell: 1, TotalRows: int64(len(sample))})
	if err != nil {
		t.Fatal(err)
	}
	if adv.EstimatedCells > 2000 {
		t.Errorf("cells = %d exceeds budget 2000", adv.EstimatedCells)
	}
	// Rows-per-cell floor.
	adv2, err := SuggestPolicy(advisorSchema(), []string{"userId"}, sample, history,
		AdvisorConfig{TargetSpanCells: 50, MaxCells: 1 << 40, MinRowsPerCell: 500, TotalRows: int64(len(sample))})
	if err != nil {
		t.Fatal(err)
	}
	if adv2.EstimatedRowsPerCell < 450 { // some slack for rounding
		t.Errorf("rows per cell = %.0f, want >= ~500", adv2.EstimatedRowsPerCell)
	}
}

func TestSuggestPolicyErrors(t *testing.T) {
	schema := advisorSchema()
	sample := advisorSample(10, 2, 1, 3)
	if _, err := SuggestPolicy(schema, []string{"userId"}, nil, nil, AdvisorConfig{}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := SuggestPolicy(schema, nil, sample, nil, AdvisorConfig{}); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := SuggestPolicy(schema, []string{"ghost"}, sample, nil, AdvisorConfig{}); err == nil {
		t.Error("unknown column accepted")
	}
	stringSchema := storage.NewSchema(storage.Column{Name: "s", Kind: storage.KindString})
	strRows := []storage.Row{{storage.Str("x")}}
	if _, err := SuggestPolicy(stringSchema, []string{"s"}, strRows, nil, AdvisorConfig{}); err == nil {
		t.Error("string dimension accepted")
	}
}

func TestSuggestPolicySingleValueDim(t *testing.T) {
	// A dimension where every record has the same value must not divide by
	// zero or produce a zero interval.
	schema := storage.NewSchema(storage.Column{Name: "x", Kind: storage.KindInt64})
	rows := make([]storage.Row, 100)
	for i := range rows {
		rows[i] = storage.Row{storage.Int64(42)}
	}
	adv, err := SuggestPolicy(schema, []string{"x"}, rows, nil, AdvisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Policy.Dims[0].IntervalI < 1 {
		t.Errorf("interval = %d", adv.Policy.Dims[0].IntervalI)
	}
}

// TestSuggestedPolicyBuildsWorkingIndex closes the loop: the advised policy
// must build an index that answers queries correctly.
func TestSuggestedPolicyBuildsWorkingIndex(t *testing.T) {
	schema := advisorSchema()
	sample := advisorSample(500, 11, 10, 4)
	history := historyOf(10, 100, 3)
	adv, err := SuggestPolicy(schema, []string{"regionId", "userId", "ts"}, sample, history,
		AdvisorConfig{TotalRows: int64(len(sample))})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(1 << 20)
	if err := storage.WriteTextRows(fs, "/tbl/data", sample); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Name: "advised", Policy: adv.Policy,
		Precompute: []AggSpec{{Func: AggSum, Col: "power"}}}
	ix, _, err := Build(testCfg(), fs, kvstore.New(), spec, schema, Source{Dir: "/tbl"}, "/tbl_dgf")
	if err != nil {
		t.Fatal(err)
	}
	q := history[0]
	plan, err := ix.Plan(testCfg(), q, []AggSpec{{Func: AggSum, Col: "power"}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := scanSum(t, ix, plan, q, 3)
	if plan.Aggregation {
		got += plan.PreHeader[0].Value
	}
	var want float64
	for _, r := range sample {
		ok := true
		for name, rng := range q {
			if !rng.Contains(r[schema.ColIndex(name)]) {
				ok = false
				break
			}
		}
		if ok {
			want += r[3].F
		}
	}
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("advised-policy query = %v, want %v", got, want)
	}
}

// Property: the advisor always returns a valid policy within its cell
// budget, whatever the sample and history shapes.
func TestSuggestPolicyAlwaysValidProperty(t *testing.T) {
	schema := advisorSchema()
	f := func(seedRaw uint8, usersRaw, extentRaw uint16, budgetRaw uint8) bool {
		users := int(usersRaw%2000) + 10
		sample := advisorSample(users, 11, 5, int64(seedRaw))
		history := historyOf(5, int64(extentRaw%1000)+1, 2)
		budget := int64(budgetRaw)*100 + 100
		adv, err := SuggestPolicy(schema, []string{"regionId", "userId", "ts"}, sample, history,
			AdvisorConfig{MaxCells: budget, MinRowsPerCell: 1, TotalRows: int64(len(sample))})
		if err != nil {
			return false
		}
		if adv.Policy.Validate() != nil {
			return false
		}
		// The budget may be infeasible (cells cannot drop below 1 per dim);
		// accept hitting the floor.
		return adv.EstimatedCells <= budget || adv.EstimatedCells <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
