package dgf

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testCfg() *cluster.Config {
	c := cluster.Default()
	c.Workers = 4
	return c
}

// paperSchema is the A,B,C table of the paper's Figures 5-7.
func paperSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "A", Kind: storage.KindInt64},
		storage.Column{Name: "B", Kind: storage.KindInt64},
		storage.Column{Name: "C", Kind: storage.KindFloat64},
	)
}

// paperRows is the original data of Figure 6.
func paperRows() []storage.Row {
	raw := [][3]float64{
		{1, 14, 0.1}, {5, 18, 0.5}, {7, 12, 1.2}, {2, 11, 0.5}, {9, 14, 0.8},
		{11, 16, 1.3}, {3, 18, 0.9}, {12, 12, 0.3}, {8, 13, 0.2},
	}
	rows := make([]storage.Row, len(raw))
	for i, r := range raw {
		rows[i] = storage.Row{
			storage.Int64(int64(r[0])),
			storage.Int64(int64(r[1])),
			storage.Float64(r[2]),
		}
	}
	return rows
}

func paperSpec() Spec {
	return Spec{
		Name: "idx_a_b",
		Policy: gridfile.Policy{Dims: []gridfile.Dimension{
			{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(1), IntervalI: 3},
			{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(11), IntervalI: 2},
		}},
		Precompute: []AggSpec{{Func: AggSum, Col: "C"}},
	}
}

func buildPaperIndex(t *testing.T, blockSize int64) (*Index, *BuildStats, *dfs.FS) {
	t.Helper()
	fs := dfs.New(blockSize)
	if err := storage.WriteTextRows(fs, "/tbl/data", paperRows()); err != nil {
		t.Fatal(err)
	}
	kv := kvstore.New()
	ix, stats, err := Build(testCfg(), fs, kv, paperSpec(), paperSchema(), Source{Dir: "/tbl"}, "/tbl_dgf")
	if err != nil {
		t.Fatal(err)
	}
	return ix, stats, fs
}

func TestBuildPaperExample(t *testing.T) {
	ix, stats, _ := buildPaperIndex(t, 1<<20)
	// Figure 6: 8 GFU pairs result from the 9 records.
	if stats.Entries != 8 || ix.Entries() != 8 {
		t.Errorf("entries = %d/%d, want 8", stats.Entries, ix.Entries())
	}
	// The highlighted GFU 7_13 holds records <9,14,0.8> and <8,13,0.2>
	// with pre-computed sum(C) = 1.0.
	v, ok, err := ix.lookupGFU("7_13")
	if err != nil || !ok {
		t.Fatalf("lookup 7_13: %v %v", ok, err)
	}
	if len(v.Slices) != 1 {
		t.Fatalf("slices = %+v", v.Slices)
	}
	if math.Abs(v.Header[0].Value-1.0) > 1e-12 || v.Header[0].N != 2 {
		t.Errorf("header = %+v, want sum 1.0 over 2 records", v.Header[0])
	}
	// All slices tile their files without overlap.
	checkSliceTiling(t, ix)
	if stats.SimTotalSec() <= 0 {
		t.Error("build sim time must be positive")
	}
}

func checkSliceTiling(t *testing.T, ix *Index) {
	t.Helper()
	byFile := map[string][]SliceLoc{}
	for _, p := range ix.KV.ScanPrefix("g/") {
		v, err := decodeGFUValue(ix.Spec.Precompute, p.Value)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range v.Slices {
			byFile[s.File] = append(byFile[s.File], s)
		}
	}
	for file, slices := range byFile {
		fi, err := ix.FS.Stat(file)
		if err != nil {
			t.Fatalf("slice file %s: %v", file, err)
		}
		var total int64
		cover := map[int64]int64{}
		for _, s := range slices {
			total += s.Len()
			cover[s.Start] = s.End
		}
		if total != fi.Size {
			t.Errorf("%s: slices cover %d of %d bytes", file, total, fi.Size)
		}
		// Walk the chain from 0 to size.
		pos := int64(0)
		for pos < fi.Size {
			end, ok := cover[pos]
			if !ok {
				t.Fatalf("%s: no slice starts at %d", file, pos)
			}
			pos = end
		}
	}
}

func TestAggregationQueryPaperListing2(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	// Listing 2: SELECT SUM(C) WHERE A>=5 AND A<12 AND B>=12 AND B<16.
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	}
	want := AggSpec{Func: AggSum, Col: "C"}
	plan, err := ix.Plan(testCfg(), ranges, []AggSpec{want}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Aggregation {
		t.Fatal("plan is not an aggregation plan")
	}
	if plan.InnerCells != 1 {
		t.Errorf("inner cells = %d, want 1 (GFU 7_13)", plan.InnerCells)
	}
	// Inner pre-result is sum(C) of 7_13 = 1.0.
	if math.Abs(plan.PreHeader[0].Value-1.0) > 1e-12 {
		t.Errorf("pre-computed inner sum = %v, want 1.0", plan.PreHeader[0].Value)
	}
	// Scan the boundary slices and add matching records: full answer is
	// sum over records with 5<=A<12, 12<=B<16: records (7,12,1.2), (9,14,0.8),
	// (8,13,0.2), (11,16?) no (16 excluded), (5,18?) no -> 1.2+0.8+0.2 = 2.2.
	got := plan.PreHeader[0].Value + scanSum(t, ix, plan, ranges, 2)
	if math.Abs(got-2.2) > 1e-12 {
		t.Errorf("query answer = %v, want 2.2", got)
	}
}

// scanSum runs the boundary scan of a plan, filtering by predicate, summing
// column col.
func scanSum(t *testing.T, ix *Index, plan *Plan, ranges map[string]gridfile.Range, col int) float64 {
	t.Helper()
	var mu struct {
		sum float64
	}
	collector := mapreduce.NewCollector()
	_, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "scan",
		Input: &SliceInput{FS: ix.FS, Plan: plan, Format: ix.Format, Schema: ix.Schema},
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row := rec.Row
			if row == nil {
				var err error
				row, err = storage.DecodeTextRow(ix.Schema, string(rec.Data))
				if err != nil {
					return err
				}
			}
			match := true
			for name, r := range ranges {
				ci := ix.Schema.ColIndex(name)
				if !r.Contains(row[ci]) {
					match = false
					break
				}
			}
			if match {
				emit("v", []byte(strconv.FormatFloat(row[col].AsFloat(), 'g', -1, 64)))
			}
			return nil
		},
		Output: collector.Emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range collector.Pairs() {
		f, _ := strconv.ParseFloat(string(p.Value), 64)
		mu.sum += f
	}
	return mu.sum
}

func TestNonAggregationPlanReadsAllCells(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	}
	plan, err := ix.Plan(testCfg(), ranges, nil, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Aggregation {
		t.Error("non-aggregation query planned as aggregation")
	}
	// All 9 read cells requested, but only the non-empty ones have slices.
	if plan.InnerCells != 0 || plan.BoundaryCells == 0 {
		t.Errorf("cells: inner=%d boundary=%d", plan.InnerCells, plan.BoundaryCells)
	}
	if len(plan.Slices) == 0 {
		t.Fatal("no slices planned")
	}
}

func TestPartialQueryUsesStoredBounds(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	// Constrain only B (Section 5.3.4: missing dimensions take stored
	// min/max). B=12 exactly: records (7,12,1.2) and (12,12,0.3) -> 1.5.
	ranges := map[string]gridfile.Range{
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(12)},
	}
	want := AggSpec{Func: AggSum, Col: "C"}
	plan, err := ix.Plan(testCfg(), ranges, []AggSpec{want}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := scanSum(t, ix, plan, ranges, 2)
	if plan.Aggregation {
		got += plan.PreHeader[0].Value
	}
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("partial query sum = %v, want 1.5", got)
	}
}

func TestDisablePrecomputeAblation(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	}
	want := []AggSpec{{Func: AggSum, Col: "C"}}
	plan, err := ix.Plan(testCfg(), ranges, want, PlanOptions{DisablePrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Aggregation {
		t.Fatal("precompute not disabled")
	}
	got := scanSum(t, ix, plan, ranges, 2)
	if math.Abs(got-2.2) > 1e-12 {
		t.Errorf("no-precompute sum = %v, want 2.2", got)
	}
}

func TestCanPrecompute(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	if !ix.CanPrecompute([]AggSpec{{Func: AggSum, Col: "C"}}) {
		t.Error("sum(C) should be precomputable")
	}
	if ix.CanPrecompute([]AggSpec{{Func: AggMin, Col: "C"}}) {
		t.Error("min(C) is not precomputed")
	}
	if ix.CanPrecompute(nil) {
		t.Error("empty agg list cannot use precompute")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	reopened, err := Open(ix.FS, ix.KV, ix.Spec.Name, ix.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.DataDir != ix.DataDir {
		t.Errorf("DataDir = %q, want %q", reopened.DataDir, ix.DataDir)
	}
	if len(reopened.Spec.Policy.Dims) != 2 || reopened.Spec.Policy.Dims[0].Name != "A" {
		t.Errorf("policy = %+v", reopened.Spec.Policy)
	}
	if len(reopened.Spec.Precompute) != 1 || reopened.Spec.Precompute[0].Key() != "sum(c)" {
		t.Errorf("precompute = %v", reopened.Spec.Precompute)
	}
	lo, hi := reopened.Bounds()
	wantLo, wantHi := ix.Bounds()
	for i := range lo {
		if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
			t.Errorf("bounds dim %d: [%d,%d] want [%d,%d]", i, lo[i], hi[i], wantLo[i], wantHi[i])
		}
	}

	// The adaptive group budget and the bitmap-overflow column list persist
	// through the metadata, so Appends cut segments identically and EXPLAIN
	// keeps reporting disabled sidecars after a reopen.
	ix.GroupBytes = 4096
	ix.BitmapDisabled = []string{"B"}
	ix.saveMeta()
	again, err := Open(ix.FS, ix.KV, ix.Spec.Name, ix.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if again.GroupBytes != 4096 {
		t.Errorf("GroupBytes = %d, want 4096", again.GroupBytes)
	}
	if len(again.BitmapDisabled) != 1 || again.BitmapDisabled[0] != "B" {
		t.Errorf("BitmapDisabled = %v, want [B]", again.BitmapDisabled)
	}
}

func TestAppendExtendsIndex(t *testing.T) {
	ix, _, fs := buildPaperIndex(t, 1<<20)
	before := ix.Entries()
	// New collection period: records in previously empty cells plus one
	// late record for existing cell 7_13.
	newRows := []storage.Row{
		{storage.Int64(20), storage.Int64(20), storage.Float64(2.0)},
		{storage.Int64(8), storage.Int64(14), storage.Float64(0.5)}, // cell 7_13
	}
	if err := storage.WriteTextRows(fs, "/staging/new", newRows); err != nil {
		t.Fatal(err)
	}
	stats, err := ix.Append(testCfg(), []string{"/staging/new"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 {
		t.Errorf("append wrote %d pairs, want 2", stats.Entries)
	}
	if got := ix.Entries(); got != before+1 {
		t.Errorf("entries after append = %d, want %d", got, before+1)
	}
	// Late record merged into 7_13: sum 1.0+0.5, slices 2.
	v, ok, _ := ix.lookupGFU("7_13")
	if !ok || len(v.Slices) != 2 {
		t.Fatalf("7_13 after append: ok=%v slices=%+v", ok, v.Slices)
	}
	if math.Abs(v.Header[0].Value-1.5) > 1e-12 || v.Header[0].N != 3 {
		t.Errorf("merged header = %+v", v.Header[0])
	}
	// Bounds extended to the new cell.
	_, hi := ix.Bounds()
	if hi[0] < 6 { // A=20 -> cell (20-1)/3 = 6
		t.Errorf("bounds not extended: %v", hi)
	}
	// Aggregation over everything still correct:
	// total sum = 0.1+0.5+1.2+0.5+0.8+1.3+0.9+0.3+0.2+2.0+0.5 = 8.3.
	ranges := map[string]gridfile.Range{}
	plan, err := ix.Plan(testCfg(), ranges, []AggSpec{{Func: AggSum, Col: "C"}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := scanSum(t, ix, plan, map[string]gridfile.Range{}, 2)
	if plan.Aggregation {
		got += plan.PreHeader[0].Value
	}
	if math.Abs(got-8.3) > 1e-9 {
		t.Errorf("total sum after append = %v, want 8.3", got)
	}
}

func TestAddPrecompute(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	if _, err := ix.AddPrecompute(testCfg(), []AggSpec{{Func: AggSum, Col: "C"}}); err == nil {
		t.Error("duplicate precompute accepted")
	}
	if _, err := ix.AddPrecompute(testCfg(), []AggSpec{{Func: AggMax, Col: "nope"}}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := ix.AddPrecompute(testCfg(), []AggSpec{{Func: AggCount}, {Func: AggMax, Col: "C"}}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ix.lookupGFU("7_13")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(v.Header) != 3 {
		t.Fatalf("header size = %d, want 3", len(v.Header))
	}
	if v.Header[1].Value != 2 { // count of 7_13
		t.Errorf("count = %v, want 2", v.Header[1].Value)
	}
	if math.Abs(v.Header[2].Value-0.8) > 1e-12 { // max(C) of {0.8, 0.2}
		t.Errorf("max = %v, want 0.8", v.Header[2].Value)
	}
	// New aggregations are now derivable.
	if !ix.CanPrecompute([]AggSpec{{Func: AggCount}, {Func: AggMax, Col: "C"}}) {
		t.Error("extended precompute not usable")
	}
}

func TestSliceSkippingAcrossTinyBlocks(t *testing.T) {
	// Block size 64 bytes: slices straddle split boundaries, exercising the
	// slice-division rule of Section 4.3.
	ix, _, _ := buildPaperIndex(t, 64)
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	}
	plan, err := ix.Plan(testCfg(), ranges, []AggSpec{{Func: AggSum, Col: "C"}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.PreHeader[0].Value + scanSum(t, ix, plan, ranges, 2)
	if math.Abs(got-2.2) > 1e-12 {
		t.Errorf("tiny-block query = %v, want 2.2", got)
	}
}

func TestDisableSliceSkipReadsMore(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 32)
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(7), Hi: storage.Int64(9)},
		"B": {Lo: storage.Int64(13), Hi: storage.Int64(14)},
	}
	run := func(opts PlanOptions) (float64, int64) {
		plan, err := ix.Plan(testCfg(), ranges, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		var records int64
		stats, err := mapreduce.Run(testCfg(), &mapreduce.Job{
			Name:  "scan",
			Input: &SliceInput{FS: ix.FS, Plan: plan},
			Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		records = stats.InputRecords
		sum := scanSum(t, ix, plan, ranges, 2)
		return sum, records
	}
	sumSkip, recSkip := run(PlanOptions{})
	sumFull, recFull := run(PlanOptions{DisableSliceSkip: true})
	if math.Abs(sumSkip-sumFull) > 1e-12 {
		t.Errorf("results differ: %v vs %v", sumSkip, sumFull)
	}
	if recFull <= recSkip {
		t.Errorf("whole-split mode should read more records: %d vs %d", recFull, recSkip)
	}
}

func TestParseIdxProperties(t *testing.T) {
	schema := paperSchema()
	spec, err := ParseIdxProperties("idx_a_b", []string{"A", "B"}, schema, map[string]string{
		"A": "1_3", "B": "11_2", "precompute": "sum(C)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Policy.Dims) != 2 || spec.Policy.Dims[1].IntervalI != 2 {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.Precompute) != 1 || spec.Precompute[0].Key() != "sum(c)" {
		t.Errorf("precompute = %v", spec.Precompute)
	}
	if _, err := ParseIdxProperties("x", []string{"A"}, schema, map[string]string{}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := ParseIdxProperties("x", []string{"Z"}, schema, map[string]string{"Z": "1_1"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := ParseIdxProperties("x", []string{"A"}, schema, map[string]string{"A": "1_1", "precompute": "median(C)"}); err == nil {
		t.Error("non-additive precompute accepted")
	}
}

func TestAggSpecParsing(t *testing.T) {
	cases := map[string]string{
		"sum(powerConsumed)": "sum(powerconsumed)",
		"COUNT(*)":           "count(*)",
		"count(1)":           "count(*)",
		"Min(x)":             "min(x)",
		"max(y)":             "max(y)",
	}
	for in, want := range cases {
		got, err := ParseAggSpec(in)
		if err != nil {
			t.Errorf("ParseAggSpec(%q): %v", in, err)
			continue
		}
		if got.Key() != want {
			t.Errorf("ParseAggSpec(%q).Key() = %q, want %q", in, got.Key(), want)
		}
	}
	for _, bad := range []string{"", "sum", "avg(x)", "sum()", "sum(x"} {
		if _, err := ParseAggSpec(bad); err == nil {
			t.Errorf("ParseAggSpec(%q) accepted", bad)
		}
	}
	specs, err := ParseAggSpecs("sum(a);count(*),max(b)")
	if err != nil || len(specs) != 3 {
		t.Errorf("ParseAggSpecs = %v, %v", specs, err)
	}
}

func TestAccumulatorMergeMatchesFold(t *testing.T) {
	vals := []float64{3, -1, 7, 2, 2, 9, -5}
	for _, f := range []AggFunc{AggSum, AggCount, AggMin, AggMax} {
		whole := Accumulator{Func: f}
		for _, v := range vals {
			whole.Fold(v)
		}
		for cut := 1; cut < len(vals); cut++ {
			a := Accumulator{Func: f}
			b := Accumulator{Func: f}
			for _, v := range vals[:cut] {
				a.Fold(v)
			}
			for _, v := range vals[cut:] {
				b.Fold(v)
			}
			a.Merge(b)
			if math.Abs(a.Value-whole.Value) > 1e-12 || a.N != whole.N {
				t.Errorf("%v cut %d: %+v != %+v", f, cut, a, whole)
			}
		}
	}
}

func TestHeaderEncodeDecode(t *testing.T) {
	specs := []AggSpec{{Func: AggSum, Col: "x"}, {Func: AggCount}, {Func: AggMin, Col: "y"}}
	h := NewHeader(specs)
	h[0].Fold(1.5)
	h[0].Fold(2.5)
	h[2].Fold(-3)
	// h[1] stays empty.
	enc := encodeHeader(h)
	back, err := decodeHeader(specs, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if back[i] != h[i] {
			t.Errorf("field %d: %+v != %+v", i, back[i], h[i])
		}
	}
	if _, err := decodeHeader(specs, "1:1"); err == nil {
		t.Error("short header accepted")
	}
}

func TestGFUValueEncodeDecode(t *testing.T) {
	specs := []AggSpec{{Func: AggSum, Col: "c"}}
	h := NewHeader(specs)
	h[0].Fold(4.5)
	v := GFUValue{Header: h, Slices: []SliceLoc{
		{File: "/tbl_dgf/part-0-r-00000", Start: 0, End: 90},
		{File: "/tbl_dgf/part-1-r-00003", Start: 450, End: 540},
	}}
	back, err := decodeGFUValue(specs, encodeGFUValue(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Slices) != 2 || back.Slices[1] != v.Slices[1] {
		t.Errorf("slices = %+v", back.Slices)
	}
	if back.Header[0] != h[0] {
		t.Errorf("header = %+v", back.Header[0])
	}
	if _, err := decodeGFUValue(specs, []byte("no-bar")); err == nil {
		t.Error("bad value accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	schema := paperSchema()
	good := paperSpec()
	if err := good.Validate(schema); err != nil {
		t.Fatal(err)
	}
	bad := paperSpec()
	bad.Policy.Dims[0].Name = "ghost"
	if err := bad.Validate(schema); err == nil {
		t.Error("unknown dimension accepted")
	}
	bad2 := paperSpec()
	bad2.Precompute = []AggSpec{{Func: AggSum, Col: "ghost"}}
	if err := bad2.Validate(schema); err == nil {
		t.Error("unknown precompute column accepted")
	}
	bad3 := paperSpec()
	bad3.Policy.Dims[0].Kind = storage.KindFloat64
	if err := bad3.Validate(schema); err == nil {
		t.Error("kind mismatch accepted")
	}
}

// TestQueryEquivalenceRandomised is the core correctness property: for
// random data and random range queries, pre-computed inner result plus
// filtered boundary scan equals the brute-force answer.
func TestQueryEquivalenceRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := paperSchema()
	for trial := 0; trial < 12; trial++ {
		fs := dfs.New(int64(rng.Intn(200) + 50))
		n := rng.Intn(300) + 20
		rows := make([]storage.Row, n)
		for i := range rows {
			rows[i] = storage.Row{
				storage.Int64(int64(rng.Intn(50))),
				storage.Int64(int64(rng.Intn(30))),
				storage.Float64(float64(rng.Intn(1000)) / 10),
			}
		}
		if err := storage.WriteTextRows(fs, "/tbl/data", rows); err != nil {
			t.Fatal(err)
		}
		spec := Spec{
			Name: "idx",
			Policy: gridfile.Policy{Dims: []gridfile.Dimension{
				{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: int64(rng.Intn(5) + 2)},
				{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: int64(rng.Intn(4) + 2)},
			}},
			Precompute: []AggSpec{{Func: AggSum, Col: "C"}, {Func: AggCount}},
		}
		kv := kvstore.New()
		ix, _, err := Build(testCfg(), fs, kv, spec, schema, Source{Dir: "/tbl"}, "/tbl_dgf")
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 6; q++ {
			aLo := int64(rng.Intn(50))
			aHi := aLo + int64(rng.Intn(20)) + 1
			bLo := int64(rng.Intn(30))
			bHi := bLo + int64(rng.Intn(15)) + 1
			ranges := map[string]gridfile.Range{
				"A": {Lo: storage.Int64(aLo), Hi: storage.Int64(aHi), HiOpen: true},
				"B": {Lo: storage.Int64(bLo), Hi: storage.Int64(bHi), HiOpen: true},
			}
			var wantSum float64
			var wantCount int64
			for _, r := range rows {
				if r[0].I >= aLo && r[0].I < aHi && r[1].I >= bLo && r[1].I < bHi {
					wantSum += r[2].F
					wantCount++
				}
			}
			aggs := []AggSpec{{Func: AggSum, Col: "C"}, {Func: AggCount}}
			plan, err := ix.Plan(testCfg(), ranges, aggs, PlanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotSum := scanSum(t, ix, plan, ranges, 2)
			gotCount := scanCount(t, ix, plan, ranges)
			if plan.Aggregation {
				gotSum += plan.PreHeader[0].Value
				gotCount += int64(plan.PreHeader[1].Value)
			}
			if math.Abs(gotSum-wantSum) > 1e-6 || gotCount != wantCount {
				t.Fatalf("trial %d query %d: got (%v, %d), want (%v, %d)",
					trial, q, gotSum, gotCount, wantSum, wantCount)
			}
		}
	}
}

func scanCount(t *testing.T, ix *Index, plan *Plan, ranges map[string]gridfile.Range) int64 {
	t.Helper()
	var count int64
	_, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "count",
		Input: &SliceInput{FS: ix.FS, Plan: plan},
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, err := storage.DecodeTextRow(ix.Schema, string(rec.Data))
			if err != nil {
				return err
			}
			for name, r := range ranges {
				if !r.Contains(row[ix.Schema.ColIndex(name)]) {
					return nil
				}
			}
			emit("n", []byte("1"))
			return nil
		},
		Output: func(k string, v []byte) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	return count
}

// Property: header encode/decode round-trips for arbitrary accumulator
// contents.
func TestHeaderRoundTripProperty(t *testing.T) {
	specs := []AggSpec{{Func: AggSum, Col: "a"}, {Func: AggMax, Col: "b"}}
	f := func(v1, v2 float64, n1, n2 uint16) bool {
		if math.IsNaN(v1) || math.IsNaN(v2) || math.IsInf(v1, 0) || math.IsInf(v2, 0) {
			return true
		}
		h := NewHeader(specs)
		h[0] = Accumulator{Func: AggSum, Value: v1, N: int64(n1)}
		h[1] = Accumulator{Func: AggMax, Value: v2, N: int64(n2)}
		back, err := decodeHeader(specs, encodeHeader(h))
		if err != nil {
			return false
		}
		return back[0] == h[0] && back[1] == h[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	fs := dfs.New(1 << 20)
	storage.WriteTextRows(fs, "/tbl/data", paperRows())
	spec := paperSpec()
	spec.Policy.Dims[0].Name = "ghost"
	if _, _, err := Build(testCfg(), fs, kvstore.New(), spec, paperSchema(), Source{Dir: "/tbl"}, "/d"); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestIndexSizeGrowsWithSmallerIntervals(t *testing.T) {
	// The paper's Table 2: smaller intervals -> more GFUs -> bigger index.
	sizes := map[string]int64{}
	for name, interval := range map[string]int64{"large": 10, "small": 2} {
		fs := dfs.New(1 << 20)
		rng := rand.New(rand.NewSource(7))
		rows := make([]storage.Row, 500)
		for i := range rows {
			rows[i] = storage.Row{
				storage.Int64(int64(rng.Intn(100))),
				storage.Int64(int64(rng.Intn(20))),
				storage.Float64(rng.Float64()),
			}
		}
		storage.WriteTextRows(fs, "/tbl/data", rows)
		spec := Spec{
			Name: "idx",
			Policy: gridfile.Policy{Dims: []gridfile.Dimension{
				{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: interval},
				{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 5},
			}},
		}
		ix, _, err := Build(testCfg(), fs, kvstore.New(), spec, paperSchema(), Source{Dir: "/tbl"}, "/d")
		if err != nil {
			t.Fatal(err)
		}
		sizes[name] = ix.SizeBytes()
	}
	if sizes["small"] <= sizes["large"] {
		t.Errorf("small-interval index (%d B) should exceed large-interval index (%d B)",
			sizes["small"], sizes["large"])
	}
}

func TestPlanStatsAccounting(t *testing.T) {
	ix, _, _ := buildPaperIndex(t, 1<<20)
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(5), Hi: storage.Int64(12), HiOpen: true},
		"B": {Lo: storage.Int64(12), Hi: storage.Int64(16), HiOpen: true},
	}
	plan, err := ix.Plan(testCfg(), ranges, []AggSpec{{Func: AggSum, Col: "C"}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.KVSimSeconds <= 0 {
		t.Error("index access must cost simulated time")
	}
	if plan.SliceBytes <= 0 {
		t.Error("boundary slices must have bytes")
	}
	var sliceSum int64
	for _, s := range plan.Slices {
		sliceSum += s.Len()
	}
	if sliceSum != plan.SliceBytes {
		t.Errorf("SliceBytes = %d, slices sum to %d", plan.SliceBytes, sliceSum)
	}
	// 9 read cells, 1 inner, 8 boundary; the 3 empty boundary cells are
	// missing from the store.
	if plan.InnerCells+plan.BoundaryCells != 9 {
		t.Errorf("cells = %d + %d, want 9 total", plan.InnerCells, plan.BoundaryCells)
	}
	if plan.MissingCells == 0 {
		t.Error("expected some enumerated cells to be empty")
	}
}

func BenchmarkBuildSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([]storage.Row, 2000)
	for i := range rows {
		rows[i] = storage.Row{
			storage.Int64(int64(rng.Intn(1000))),
			storage.Int64(int64(rng.Intn(20))),
			storage.Float64(rng.Float64()),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := dfs.New(1 << 18)
		storage.WriteTextRows(fs, "/tbl/data", rows)
		spec := Spec{
			Name: "idx",
			Policy: gridfile.Policy{Dims: []gridfile.Dimension{
				{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 50},
				{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 5},
			}},
			Precompute: []AggSpec{{Func: AggSum, Col: "C"}},
		}
		if _, _, err := Build(testCfg(), fs, kvstore.New(), spec, paperSchema(), Source{Dir: "/tbl"}, "/d"); err != nil {
			b.Fatal(err)
		}
	}
}

// wideSchema is a four-column table whose last column is a fat string
// payload, so column projection has something real to save.
func wideSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "A", Kind: storage.KindInt64},
		storage.Column{Name: "B", Kind: storage.KindInt64},
		storage.Column{Name: "C", Kind: storage.KindFloat64},
		storage.Column{Name: "D", Kind: storage.KindString},
	)
}

func wideRows(n int) []storage.Row {
	rng := rand.New(rand.NewSource(7))
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			storage.Int64(int64(rng.Intn(100))),
			storage.Int64(int64(rng.Intn(20))),
			storage.Float64(float64(rng.Intn(1000)) / 8), // exact in float64
			storage.Str("payload-" + strconv.Itoa(rng.Intn(1<<30)) + "-abcdefghijklmnopqrstuvwxyz"),
		}
	}
	return rows
}

func wideSpec() Spec {
	return Spec{
		Name: "idx_wide",
		Policy: gridfile.Policy{Dims: []gridfile.Dimension{
			{Name: "A", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 10},
			{Name: "B", Kind: storage.KindInt64, Min: storage.Int64(0), IntervalI: 5},
		}},
		Precompute: []AggSpec{{Func: AggSum, Col: "C"}},
	}
}

// buildFormatIndex builds the same index over the same rows stored in the
// given format, with small row groups and blocks so slices span several row
// groups and splits.
func buildFormatIndex(t *testing.T, blockSize int64, format storage.Format) (*Index, *dfs.FS) {
	t.Helper()
	fs := dfs.New(blockSize)
	var err error
	if format == storage.RCFile {
		_, err = storage.WriteRCRows(fs, "/tbl/data", wideSchema(), wideRows(400), 8)
	} else {
		err = storage.WriteTextRows(fs, "/tbl/data", wideRows(400))
	}
	if err != nil {
		t.Fatal(err)
	}
	src := Source{Dir: "/tbl", Format: format, GroupRows: 8}
	ix, _, err := Build(testCfg(), fs, kvstore.New(), wideSpec(), wideSchema(), src, "/tbl_dgf")
	if err != nil {
		t.Fatal(err)
	}
	return ix, fs
}

// TestRCFileBuildMatchesTextFile: the same build over RCFile data must plan
// and answer identically to the TextFile build, while a projected plan reads
// strictly fewer bytes than the text slices.
func TestRCFileBuildMatchesTextFile(t *testing.T) {
	textIx, _ := buildFormatIndex(t, 1<<12, storage.TextFile)
	rcIx, _ := buildFormatIndex(t, 1<<12, storage.RCFile)
	if rcIx.Format != storage.RCFile {
		t.Fatalf("index format = %v", rcIx.Format)
	}

	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(15), Hi: storage.Int64(72), HiOpen: true},
		"B": {Lo: storage.Int64(3), Hi: storage.Int64(14), HiOpen: true},
	}
	want := []AggSpec{{Func: AggSum, Col: "C"}}
	// Project B (the boundary filter column) and C (the aggregate): a
	// strict subset that excludes the fat payload column.
	project := []bool{false, true, true, false}

	textPlan, err := textIx.Plan(testCfg(), ranges, want, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rcPlan, err := rcIx.Plan(testCfg(), ranges, want, PlanOptions{Project: project})
	if err != nil {
		t.Fatal(err)
	}
	// Same decomposition, same pre-computed inner result.
	if textPlan.InnerCells != rcPlan.InnerCells || textPlan.BoundaryCells != rcPlan.BoundaryCells {
		t.Errorf("cell decomposition differs: text %d/%d, rc %d/%d",
			textPlan.InnerCells, textPlan.BoundaryCells, rcPlan.InnerCells, rcPlan.BoundaryCells)
	}
	if textPlan.PreHeader[0].Value != rcPlan.PreHeader[0].Value {
		t.Errorf("pre-computed inner result differs: %v vs %v", textPlan.PreHeader[0].Value, rcPlan.PreHeader[0].Value)
	}
	if textPlan.ProjectedBytes != textPlan.SliceBytes {
		t.Errorf("text ProjectedBytes = %d, want SliceBytes %d", textPlan.ProjectedBytes, textPlan.SliceBytes)
	}
	if rcPlan.ProjectedBytes <= 0 || rcPlan.ProjectedBytes >= textPlan.ProjectedBytes {
		t.Errorf("rc projected bytes = %d, want strictly below text %d", rcPlan.ProjectedBytes, textPlan.ProjectedBytes)
	}

	// The boundary scans must produce the same answer. A is unreferenced by
	// the projected plan, so filter only on B here (A's range is implied by
	// the chosen boundary GFUs of this particular decomposition only up to
	// cell granularity; B filtering plus the sum column is all the scan
	// needs when comparing the two formats on identical plans).
	sumRanges := map[string]gridfile.Range{"B": ranges["B"]}
	textSum := scanSum(t, textIx, textPlan, sumRanges, 2)
	rcSum := scanSum(t, rcIx, rcPlan, sumRanges, 2)
	if textSum != rcSum {
		t.Errorf("boundary scan sums differ: text %v, rc %v", textSum, rcSum)
	}

	// Reader-reported bytes must equal the plan's exact attribution.
	stats, err := mapreduce.Run(testCfg(), &mapreduce.Job{
		Name:  "volume",
		Input: &SliceInput{FS: rcIx.FS, Plan: rcPlan, Format: rcIx.Format, Schema: rcIx.Schema},
		Map:   func(rec mapreduce.Record, emit mapreduce.Emit) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputBytes != rcPlan.ProjectedBytes {
		t.Errorf("slice read fetched %d bytes, plan attributed %d", stats.InputBytes, rcPlan.ProjectedBytes)
	}
}

// TestRCFileAppendExtendsIndex: appended (text-staged) rows land in the
// RCFile reorganised layout and stay queryable.
func TestRCFileAppendExtendsIndex(t *testing.T) {
	ix, fs := buildFormatIndex(t, 1<<20, storage.RCFile)
	extra := []storage.Row{
		{storage.Int64(4), storage.Int64(13), storage.Float64(2.5), storage.Str("late")},
	}
	if err := storage.WriteTextRows(fs, "/staging/new", extra); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Append(testCfg(), []string{"/staging/new"}); err != nil {
		t.Fatal(err)
	}
	ranges := map[string]gridfile.Range{
		"A": {Lo: storage.Int64(0), Hi: storage.Int64(99)},
		"B": {Lo: storage.Int64(0), Hi: storage.Int64(19)},
	}
	plan, err := ix.Plan(testCfg(), ranges, nil, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := scanSum(t, ix, plan, ranges, 2)
	want := 2.5
	for _, r := range wideRows(400) {
		want += r[2].F
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("post-append sum = %v, want %v", got, want)
	}
}
