package dgf

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// PlanOptions tune the query planner; the zero value is the paper's
// behaviour. The Disable flags exist for the ablation experiments.
type PlanOptions struct {
	// DisablePrecompute forces the planner to scan inner GFUs instead of
	// answering them from headers (the "DGF-noprecompute" bar of Fig. 17).
	DisablePrecompute bool
	// DisableSliceSkip keeps split filtering but removes sub-split slice
	// skipping: chosen splits are read in full, Compact-Index style.
	DisableSliceSkip bool
	// Project flags the table columns the query references, indexed by
	// schema position. Over columnar data the slice readers then fetch
	// only those columns' payloads; ProjectedBytes reports the resulting
	// exact read volume. Nil (or all-true) reads full records.
	Project []bool
	// ZoneSkip consults per-row-group zone maps (and value-bitmap sidecars
	// where built) to drop whole row groups inside selected slices — the
	// double pruning of the vectorised path. RCFile data only; the pruned
	// groups are recorded in Plan.SkipGroups so executed skips match the
	// plan exactly.
	ZoneSkip bool
	// Members holds, per column name, the value texts of the query's IN
	// predicates. With ZoneSkip set they probe value-bitmap sidecars: a
	// group none of whose member values' bitsets mark it is pruned (the
	// per-value bitsets OR together; separate predicates AND).
	Members map[string][]string
}

// Plan is the outcome of Algorithm 3: the pre-aggregated inner result (for
// aggregation queries) and the Slices that must be scanned.
type Plan struct {
	// Aggregation is true when the query was planned as a pre-computable
	// aggregation: PreHeader then carries the inner region's result and
	// only boundary slices appear in Slices.
	Aggregation bool
	// PreSpecs aligns PreHeader with the requested aggregations.
	PreSpecs []AggSpec
	// PreHeader is the merged header of all inner GFUs.
	PreHeader Header
	// Slices lists the byte ranges to scan, sorted by file then offset.
	Slices []SliceLoc
	// InnerCells, BoundaryCells and MissingCells count the decomposed
	// region (missing = enumerated grid cells with no GFU pair, which still
	// cost a key-value lookup; the paper observes this cost growing as the
	// interval size shrinks).
	InnerCells, BoundaryCells, MissingCells int64
	// SliceBytes is the total byte volume of Slices.
	SliceBytes int64
	// ProjectedBytes is the byte volume a slice read with the plan's
	// projection pushed down will actually fetch. Equal to SliceBytes for
	// TextFile data (no pushdown) and for full-width projections; strictly
	// lower over RCFile data when the query references a column subset.
	// Computed exactly from the reorganised files' per-group column
	// statistics, so cost attribution matches the readers byte for byte.
	ProjectedBytes int64
	// KVSimSeconds is the simulated index-access time of planning (the
	// "read index" part of the paper's stacked bars).
	KVSimSeconds float64
	// DisableSliceSkip propagates the ablation flag to the input format.
	DisableSliceSkip bool
	// Project propagates the referenced-column set to the input format.
	Project []bool
	// GroupsSkipped counts the row groups inside selected slices that zone
	// maps or bitmap sidecars pruned (ZoneSkip planning only). Their bytes
	// are excluded from ProjectedBytes.
	GroupsSkipped int64
	// BitmapHits counts the pruned groups that only a bitmap sidecar could
	// rule out (the zone map alone would have kept them).
	BitmapHits int64
	// SkipGroups records the pruned groups as file → group-offset set; the
	// slice readers consult it so executed skips match the plan.
	SkipGroups map[string]map[int64]bool
}

// CanPrecompute reports whether every requested aggregation is derivable
// from the index's pre-computed header (the paper's condition for the
// header-only inner path). avg(col) derives from sum(col)+count(*).
func (ix *Index) CanPrecompute(wanted []AggSpec) bool {
	if len(wanted) == 0 {
		return false
	}
	for _, w := range wanted {
		if ix.findSpec(w) < 0 {
			return false
		}
	}
	return true
}

func (ix *Index) findSpec(w AggSpec) int {
	for i, have := range ix.Spec.Precompute {
		if have.Key() == w.Key() {
			return i
		}
	}
	return -1
}

// Plan runs Algorithm 3 for the given per-column ranges. Columns absent from
// ranges are completed with the stored per-dimension data bounds (the
// partially-specified-query rule of Section 5.3.4). wantAggs describes the
// query's aggregations; pass nil for non-aggregation queries.
func (ix *Index) Plan(cfg *cluster.Config, ranges map[string]gridfile.Range, wantAggs []AggSpec, opts PlanOptions) (*Plan, error) {
	// kvOps counts this plan's own store operations. Counting locally (not
	// as a delta of the store's global counters) keeps the attributed
	// index-access cost exact when several queries plan concurrently.
	var kvOps kvstore.Stats

	// Step 1: complete the predicate to all index dimensions.
	full := make([]gridfile.Range, len(ix.Spec.Policy.Dims))
	for i, d := range ix.Spec.Policy.Dims {
		if r, ok := lookupRange(ranges, d.Name); ok {
			full[i] = r
		} else {
			// Missing dimension: fetch min/max standardised values from the
			// store, as the paper does. (Open reads them into ix at load
			// time; the lookups here model the HBase round trip.)
			ix.KV.Get(metaMinPrefix + fmt.Sprint(i))
			ix.KV.Get(metaMaxPrefix + fmt.Sprint(i))
			kvOps.Gets += 2
			full[i] = gridfile.Range{
				Lo:     d.CellStart(ix.minCell[i]),
				Hi:     d.CellStart(ix.maxCell[i] + 1),
				HiOpen: true,
			}
		}
	}
	dec, err := ix.Spec.Policy.Decompose(full)
	if err != nil {
		return nil, err
	}
	dec.ClampRead(ix.minCell, ix.maxCell)

	plan := &Plan{DisableSliceSkip: opts.DisableSliceSkip}
	aggregation := !opts.DisablePrecompute && ix.CanPrecompute(wantAggs) && dec.HasInner()
	plan.Aggregation = aggregation

	// Step 2: enumerate the query-related GFUs. For aggregation queries the
	// inner region is answered from headers; otherwise every read cell's
	// slices are fetched.
	var innerKeys, scanKeys []string
	if aggregation {
		dec.EachInnerCell(func(c []int64) {
			innerKeys = append(innerKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		dec.EachBoundaryCell(func(c []int64) {
			scanKeys = append(scanKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		plan.InnerCells = int64(len(innerKeys))
		plan.BoundaryCells = int64(len(scanKeys))
	} else {
		dec.EachReadCell(func(c []int64) {
			scanKeys = append(scanKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		plan.BoundaryCells = int64(len(scanKeys))
	}

	// Inner headers: merged into the pre-computed sub-result.
	if aggregation {
		plan.PreSpecs = wantAggs
		plan.PreHeader = NewHeader(wantAggs)
		kvOps.Gets += int64(len(innerKeys))
		for _, data := range ix.KV.MultiGet(innerKeys) {
			if data == nil {
				plan.MissingCells++
				continue
			}
			v, err := decodeGFUValue(ix.Spec.Precompute, data)
			if err != nil {
				return nil, err
			}
			for wi, w := range wantAggs {
				plan.PreHeader[wi].Merge(v.Header[ix.findSpec(w)])
			}
		}
	}

	// Slice locations of the cells that must be scanned.
	kvOps.Gets += int64(len(scanKeys))
	for _, data := range ix.KV.MultiGet(scanKeys) {
		if data == nil {
			plan.MissingCells++
			continue
		}
		v, err := decodeGFUValue(ix.Spec.Precompute, data)
		if err != nil {
			return nil, err
		}
		plan.Slices = append(plan.Slices, v.Slices...)
	}
	sort.Slice(plan.Slices, func(i, j int) bool {
		if plan.Slices[i].File != plan.Slices[j].File {
			return plan.Slices[i].File < plan.Slices[j].File
		}
		return plan.Slices[i].Start < plan.Slices[j].Start
	})
	for _, s := range plan.Slices {
		plan.SliceBytes += s.Len()
	}
	if !fullProjection(opts.Project, ix.Schema.Len()) {
		plan.Project = opts.Project
	}
	if err := ix.attributeProjectedBytes(plan, ranges, opts.Members, opts.ZoneSkip); err != nil {
		return nil, err
	}
	plan.KVSimSeconds = kvOps.SimSeconds(cfg)
	return plan, nil
}

// fullProjection reports whether project keeps every one of n columns (a
// nil projection does).
func fullProjection(project []bool, n int) bool {
	if project == nil {
		return true
	}
	for i := 0; i < n; i++ {
		if i >= len(project) || !project[i] {
			return false
		}
	}
	return true
}

// ZoneDisjoint reports whether the zone [minV, maxV] cannot intersect r —
// the row-group pruning predicate, shared with the full-scan path so both
// prune identically from the same column statistics.
func ZoneDisjoint(minV, maxV storage.Value, r gridfile.Range) bool {
	if !r.LoUnbounded {
		if c := storage.Compare(maxV, r.Lo); c < 0 || (c == 0 && r.LoOpen) {
			return true
		}
	}
	if !r.HiUnbounded {
		if c := storage.Compare(minV, r.Hi); c > 0 || (c == 0 && r.HiOpen) {
			return true
		}
	}
	return false
}

// attributeProjectedBytes computes Plan.ProjectedBytes: for TextFile data it
// is the slice volume itself; for RCFile data it is derived, exactly, from
// the per-group column statistics the build wrote next to each data file —
// the same numbers the projected readers will report having fetched. With
// zoneSkip set it additionally drops every row group whose zone map is
// disjoint from a predicate range — or, for equality and IN predicates on
// bitmap columns, whose value bitmaps rule the group out — recording the
// pruned groups in plan.SkipGroups for the readers.
func (ix *Index) attributeProjectedBytes(plan *Plan, ranges map[string]gridfile.Range, members map[string][]string, zoneSkip bool) error {
	if ix.Format != storage.RCFile || (plan.Project == nil && !zoneSkip) {
		// Full-width reads fetch the slices whole; the build's Cut
		// invariant aligns every slice on row-group boundaries, so the
		// slice volume already is the exact read volume — no need to
		// touch the side statistics.
		plan.ProjectedBytes = plan.SliceBytes
		return nil
	}
	// Resolve the predicate ranges to schema columns once. Equality ranges
	// on bitmap-sidecar columns double as bitmap probes, keyed by the
	// value's text rendering (what the builder indexed).
	type colRange struct {
		col  int
		kind storage.Kind
		r    gridfile.Range
	}
	type bitmapProbe struct {
		col   int
		texts []string // a group survives when any text's bitset marks it
	}
	var zones []colRange
	var probes []bitmapProbe
	if zoneSkip {
		for name, r := range ranges {
			c := ix.Schema.ColIndex(name)
			if c < 0 {
				continue
			}
			zones = append(zones, colRange{col: c, kind: ix.Schema.Col(c).Kind, r: r})
			if !r.LoUnbounded && !r.HiUnbounded && !r.LoOpen && !r.HiOpen && storage.Compare(r.Lo, r.Hi) == 0 {
				for _, bc := range ix.bitmapCols {
					if bc == c {
						probes = append(probes, bitmapProbe{col: c, texts: []string{r.Lo.String()}})
					}
				}
			}
		}
		// IN membership sets probe the sidecars too: within one set the
		// per-value bitsets OR, and the set ANDs with every other predicate.
		for name, texts := range members {
			c := ix.Schema.ColIndex(name)
			if c < 0 || len(texts) == 0 {
				continue
			}
			for _, bc := range ix.bitmapCols {
				if bc == c {
					probes = append(probes, bitmapProbe{col: c, texts: texts})
				}
			}
		}
	}
	type fileStats struct {
		offsets []int64
		groups  []storage.GroupStat
		bitmaps *storage.BitmapSidecar
	}
	cache := map[string]*fileStats{}
	for _, sl := range plan.Slices {
		fs, ok := cache[sl.File]
		if !ok {
			offsets, err := storage.ReadGroupIndexCached(ix.FS, sl.File)
			if err != nil {
				return fmt.Errorf("dgf: plan: group index for %s: %w", sl.File, err)
			}
			groups, err := storage.ReadColStatsCached(ix.FS, sl.File)
			if err != nil {
				return fmt.Errorf("dgf: plan: column stats for %s: %w", sl.File, err)
			}
			fs = &fileStats{offsets: offsets, groups: groups}
			if len(probes) > 0 {
				sc, ok, err := storage.ReadBitmapSidecarCached(ix.FS, sl.File)
				if err != nil {
					return fmt.Errorf("dgf: plan: bitmap sidecar for %s: %w", sl.File, err)
				}
				if ok {
					fs.bitmaps = sc
				}
			}
			cache[sl.File] = fs
		}
		lo := sort.Search(len(fs.offsets), func(i int) bool { return fs.offsets[i] >= sl.Start })
		hi := sort.Search(len(fs.offsets), func(i int) bool { return fs.offsets[i] >= sl.End })
		for g := lo; g < hi && g < len(fs.groups); g++ {
			stat := fs.groups[g]
			skip, byBitmap := false, false
			if zoneSkip && stat.HasZone() {
				for _, z := range zones {
					if z.col >= len(stat.Mins) {
						continue
					}
					minV, err1 := storage.ParseValue(z.kind, stat.Mins[z.col])
					maxV, err2 := storage.ParseValue(z.kind, stat.Maxs[z.col])
					if err1 != nil || err2 != nil {
						continue // unparseable zone: never skip on it
					}
					if ZoneDisjoint(minV, maxV, z.r) {
						skip = true
						break
					}
				}
			}
			if !skip && fs.bitmaps != nil {
				for _, p := range probes {
					hit, covered := false, false
					for _, text := range p.texts {
						bs, ok := fs.bitmaps.Lookup(p.col, text)
						if !ok {
							covered = false
							break
						}
						covered = true
						if bs.Has(g) {
							hit = true
							break
						}
					}
					if covered && !hit {
						skip, byBitmap = true, true
						break
					}
				}
			}
			if skip {
				plan.GroupsSkipped++
				if byBitmap {
					plan.BitmapHits++
				}
				if plan.SkipGroups == nil {
					plan.SkipGroups = map[string]map[int64]bool{}
				}
				fileSkips := plan.SkipGroups[sl.File]
				if fileSkips == nil {
					fileSkips = map[int64]bool{}
					plan.SkipGroups[sl.File] = fileSkips
				}
				fileSkips[fs.offsets[g]] = true
				continue
			}
			plan.ProjectedBytes += stat.ProjectedSize(plan.Project)
		}
	}
	return nil
}

func lookupRange(ranges map[string]gridfile.Range, name string) (gridfile.Range, bool) {
	if r, ok := ranges[name]; ok {
		return r, true
	}
	for k, r := range ranges {
		if strings.EqualFold(k, name) {
			return r, true
		}
	}
	return gridfile.Range{}, false
}

// Ranges converts value bounds into a gridfile.Range map (test helper and
// public-API convenience).
func Ranges(pairs map[string][2]storage.Value) map[string]gridfile.Range {
	out := make(map[string]gridfile.Range, len(pairs))
	for k, v := range pairs {
		out[k] = gridfile.Range{Lo: v[0], Hi: v[1]}
	}
	return out
}
