package dgf

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// PlanOptions tune the query planner; the zero value is the paper's
// behaviour. The Disable flags exist for the ablation experiments.
type PlanOptions struct {
	// DisablePrecompute forces the planner to scan inner GFUs instead of
	// answering them from headers (the "DGF-noprecompute" bar of Fig. 17).
	DisablePrecompute bool
	// DisableSliceSkip keeps split filtering but removes sub-split slice
	// skipping: chosen splits are read in full, Compact-Index style.
	DisableSliceSkip bool
	// Project flags the table columns the query references, indexed by
	// schema position. Over columnar data the slice readers then fetch
	// only those columns' payloads; ProjectedBytes reports the resulting
	// exact read volume. Nil (or all-true) reads full records.
	Project []bool
}

// Plan is the outcome of Algorithm 3: the pre-aggregated inner result (for
// aggregation queries) and the Slices that must be scanned.
type Plan struct {
	// Aggregation is true when the query was planned as a pre-computable
	// aggregation: PreHeader then carries the inner region's result and
	// only boundary slices appear in Slices.
	Aggregation bool
	// PreSpecs aligns PreHeader with the requested aggregations.
	PreSpecs []AggSpec
	// PreHeader is the merged header of all inner GFUs.
	PreHeader Header
	// Slices lists the byte ranges to scan, sorted by file then offset.
	Slices []SliceLoc
	// InnerCells, BoundaryCells and MissingCells count the decomposed
	// region (missing = enumerated grid cells with no GFU pair, which still
	// cost a key-value lookup; the paper observes this cost growing as the
	// interval size shrinks).
	InnerCells, BoundaryCells, MissingCells int64
	// SliceBytes is the total byte volume of Slices.
	SliceBytes int64
	// ProjectedBytes is the byte volume a slice read with the plan's
	// projection pushed down will actually fetch. Equal to SliceBytes for
	// TextFile data (no pushdown) and for full-width projections; strictly
	// lower over RCFile data when the query references a column subset.
	// Computed exactly from the reorganised files' per-group column
	// statistics, so cost attribution matches the readers byte for byte.
	ProjectedBytes int64
	// KVSimSeconds is the simulated index-access time of planning (the
	// "read index" part of the paper's stacked bars).
	KVSimSeconds float64
	// DisableSliceSkip propagates the ablation flag to the input format.
	DisableSliceSkip bool
	// Project propagates the referenced-column set to the input format.
	Project []bool
}

// CanPrecompute reports whether every requested aggregation is derivable
// from the index's pre-computed header (the paper's condition for the
// header-only inner path). avg(col) derives from sum(col)+count(*).
func (ix *Index) CanPrecompute(wanted []AggSpec) bool {
	if len(wanted) == 0 {
		return false
	}
	for _, w := range wanted {
		if ix.findSpec(w) < 0 {
			return false
		}
	}
	return true
}

func (ix *Index) findSpec(w AggSpec) int {
	for i, have := range ix.Spec.Precompute {
		if have.Key() == w.Key() {
			return i
		}
	}
	return -1
}

// Plan runs Algorithm 3 for the given per-column ranges. Columns absent from
// ranges are completed with the stored per-dimension data bounds (the
// partially-specified-query rule of Section 5.3.4). wantAggs describes the
// query's aggregations; pass nil for non-aggregation queries.
func (ix *Index) Plan(cfg *cluster.Config, ranges map[string]gridfile.Range, wantAggs []AggSpec, opts PlanOptions) (*Plan, error) {
	// kvOps counts this plan's own store operations. Counting locally (not
	// as a delta of the store's global counters) keeps the attributed
	// index-access cost exact when several queries plan concurrently.
	var kvOps kvstore.Stats

	// Step 1: complete the predicate to all index dimensions.
	full := make([]gridfile.Range, len(ix.Spec.Policy.Dims))
	for i, d := range ix.Spec.Policy.Dims {
		if r, ok := lookupRange(ranges, d.Name); ok {
			full[i] = r
		} else {
			// Missing dimension: fetch min/max standardised values from the
			// store, as the paper does. (Open reads them into ix at load
			// time; the lookups here model the HBase round trip.)
			ix.KV.Get(metaMinPrefix + fmt.Sprint(i))
			ix.KV.Get(metaMaxPrefix + fmt.Sprint(i))
			kvOps.Gets += 2
			full[i] = gridfile.Range{
				Lo:     d.CellStart(ix.minCell[i]),
				Hi:     d.CellStart(ix.maxCell[i] + 1),
				HiOpen: true,
			}
		}
	}
	dec, err := ix.Spec.Policy.Decompose(full)
	if err != nil {
		return nil, err
	}
	dec.ClampRead(ix.minCell, ix.maxCell)

	plan := &Plan{DisableSliceSkip: opts.DisableSliceSkip}
	aggregation := !opts.DisablePrecompute && ix.CanPrecompute(wantAggs) && dec.HasInner()
	plan.Aggregation = aggregation

	// Step 2: enumerate the query-related GFUs. For aggregation queries the
	// inner region is answered from headers; otherwise every read cell's
	// slices are fetched.
	var innerKeys, scanKeys []string
	if aggregation {
		dec.EachInnerCell(func(c []int64) {
			innerKeys = append(innerKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		dec.EachBoundaryCell(func(c []int64) {
			scanKeys = append(scanKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		plan.InnerCells = int64(len(innerKeys))
		plan.BoundaryCells = int64(len(scanKeys))
	} else {
		dec.EachReadCell(func(c []int64) {
			scanKeys = append(scanKeys, gfuPrefix+ix.Spec.Policy.Key(c))
		})
		plan.BoundaryCells = int64(len(scanKeys))
	}

	// Inner headers: merged into the pre-computed sub-result.
	if aggregation {
		plan.PreSpecs = wantAggs
		plan.PreHeader = NewHeader(wantAggs)
		kvOps.Gets += int64(len(innerKeys))
		for _, data := range ix.KV.MultiGet(innerKeys) {
			if data == nil {
				plan.MissingCells++
				continue
			}
			v, err := decodeGFUValue(ix.Spec.Precompute, data)
			if err != nil {
				return nil, err
			}
			for wi, w := range wantAggs {
				plan.PreHeader[wi].Merge(v.Header[ix.findSpec(w)])
			}
		}
	}

	// Slice locations of the cells that must be scanned.
	kvOps.Gets += int64(len(scanKeys))
	for _, data := range ix.KV.MultiGet(scanKeys) {
		if data == nil {
			plan.MissingCells++
			continue
		}
		v, err := decodeGFUValue(ix.Spec.Precompute, data)
		if err != nil {
			return nil, err
		}
		plan.Slices = append(plan.Slices, v.Slices...)
	}
	sort.Slice(plan.Slices, func(i, j int) bool {
		if plan.Slices[i].File != plan.Slices[j].File {
			return plan.Slices[i].File < plan.Slices[j].File
		}
		return plan.Slices[i].Start < plan.Slices[j].Start
	})
	for _, s := range plan.Slices {
		plan.SliceBytes += s.Len()
	}
	if !fullProjection(opts.Project, ix.Schema.Len()) {
		plan.Project = opts.Project
	}
	if err := ix.attributeProjectedBytes(plan); err != nil {
		return nil, err
	}
	plan.KVSimSeconds = kvOps.SimSeconds(cfg)
	return plan, nil
}

// fullProjection reports whether project keeps every one of n columns (a
// nil projection does).
func fullProjection(project []bool, n int) bool {
	if project == nil {
		return true
	}
	for i := 0; i < n; i++ {
		if i >= len(project) || !project[i] {
			return false
		}
	}
	return true
}

// attributeProjectedBytes computes Plan.ProjectedBytes: for TextFile data it
// is the slice volume itself; for RCFile data it is derived, exactly, from
// the per-group column statistics the build wrote next to each data file —
// the same numbers the projected readers will report having fetched.
func (ix *Index) attributeProjectedBytes(plan *Plan) error {
	if ix.Format != storage.RCFile || plan.Project == nil {
		// Full-width reads fetch the slices whole; the build's Cut
		// invariant aligns every slice on row-group boundaries, so the
		// slice volume already is the exact read volume — no need to
		// touch the side statistics.
		plan.ProjectedBytes = plan.SliceBytes
		return nil
	}
	type fileStats struct {
		offsets []int64
		groups  []storage.GroupStat
	}
	cache := map[string]*fileStats{}
	for _, sl := range plan.Slices {
		fs, ok := cache[sl.File]
		if !ok {
			offsets, err := storage.ReadGroupIndex(ix.FS, sl.File)
			if err != nil {
				return fmt.Errorf("dgf: plan: group index for %s: %w", sl.File, err)
			}
			groups, err := storage.ReadColStats(ix.FS, sl.File)
			if err != nil {
				return fmt.Errorf("dgf: plan: column stats for %s: %w", sl.File, err)
			}
			fs = &fileStats{offsets: offsets, groups: groups}
			cache[sl.File] = fs
		}
		lo := sort.Search(len(fs.offsets), func(i int) bool { return fs.offsets[i] >= sl.Start })
		hi := sort.Search(len(fs.offsets), func(i int) bool { return fs.offsets[i] >= sl.End })
		for g := lo; g < hi && g < len(fs.groups); g++ {
			plan.ProjectedBytes += fs.groups[g].ProjectedSize(plan.Project)
		}
	}
	return nil
}

func lookupRange(ranges map[string]gridfile.Range, name string) (gridfile.Range, bool) {
	if r, ok := ranges[name]; ok {
		return r, true
	}
	for k, r := range ranges {
		if strings.EqualFold(k, name) {
			return r, true
		}
	}
	return gridfile.Range{}, false
}

// Ranges converts value bounds into a gridfile.Range map (test helper and
// public-API convenience).
func Ranges(pairs map[string][2]storage.Value) map[string]gridfile.Range {
	out := make(map[string]gridfile.Range, len(pairs))
	for k, v := range pairs {
		out[k] = gridfile.Range{Lo: v[0], Hi: v[1]}
	}
	return out
}
