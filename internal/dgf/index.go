package dgf

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Key-value store layout. GFU pairs live under the "g/" prefix; metadata
// (splitting policy, pre-compute list, per-dimension data bounds) under
// "meta/". The paper stores the same information in HBase: the GFU pairs
// plus "the minimum and maximum standardized values in every index
// dimension" (Section 4.2).
const (
	gfuPrefix     = "g/"
	metaPolicy    = "meta/policy"
	metaPrecomp   = "meta/precompute"
	metaMinPrefix = "meta/min/"
	metaMaxPrefix = "meta/max/"
	metaDataDir    = "meta/datadir"
	metaGen        = "meta/generation"
	metaFormat     = "meta/format"
	metaGroupRows  = "meta/grouprows"
	metaGroupBytes = "meta/groupbytes"
	metaBitmapCols = "meta/bitmapcols"
	metaBitmapDrop = "meta/bitmapdisabled"
)

// SliceLoc locates one Slice: a contiguous run of records of a single GFU
// inside a reorganised data file (the location part of a GFUValue).
type SliceLoc struct {
	File  string
	Start int64 // inclusive byte offset
	End   int64 // exclusive byte offset
}

// Len returns the slice length in bytes.
func (s SliceLoc) Len() int64 { return s.End - s.Start }

// GFUValue is the value part of one GFU pair: the pre-computed header plus
// the locations of the GFU's Slices. A freshly built index has exactly one
// Slice per GFU; incremental loads append more (the paper extends the time
// dimension for new data, so existing pairs normally stay untouched, but
// late-arriving records for an existing cell merge here).
type GFUValue struct {
	Header Header
	Slices []SliceLoc
}

// encodeGFUValue renders "header|file:start:end;file:start:end".
func encodeGFUValue(v GFUValue) []byte {
	var b strings.Builder
	b.WriteString(encodeHeader(v.Header))
	b.WriteByte('|')
	for i, s := range v.Slices {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.File)
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(s.Start, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(s.End, 10))
	}
	return []byte(b.String())
}

func decodeGFUValue(specs []AggSpec, data []byte) (GFUValue, error) {
	s := string(data)
	bar := strings.IndexByte(s, '|')
	if bar < 0 {
		return GFUValue{}, fmt.Errorf("dgf: bad GFUValue %q", s)
	}
	h, err := decodeHeader(specs, s[:bar])
	if err != nil {
		return GFUValue{}, err
	}
	v := GFUValue{Header: h}
	rest := s[bar+1:]
	if rest == "" {
		return v, nil
	}
	for _, part := range strings.Split(rest, ";") {
		// File paths contain '/', never ':'; split from the right.
		j2 := strings.LastIndexByte(part, ':')
		if j2 < 0 {
			return GFUValue{}, fmt.Errorf("dgf: bad slice %q", part)
		}
		j1 := strings.LastIndexByte(part[:j2], ':')
		if j1 < 0 {
			return GFUValue{}, fmt.Errorf("dgf: bad slice %q", part)
		}
		start, err1 := strconv.ParseInt(part[j1+1:j2], 10, 64)
		end, err2 := strconv.ParseInt(part[j2+1:], 10, 64)
		if err1 != nil || err2 != nil {
			return GFUValue{}, fmt.Errorf("dgf: bad slice offsets %q", part)
		}
		v.Slices = append(v.Slices, SliceLoc{File: part[:j1], Start: start, End: end})
	}
	return v, nil
}

// Spec describes a DGFIndex to build: the grid splitting policy over the
// table's index dimensions plus the pre-computed aggregations. It is what
// the paper's CREATE INDEX ... IDXPROPERTIES statement (Listing 3) denotes.
type Spec struct {
	Name string
	// Policy orders the index dimensions; each must name a table column.
	Policy gridfile.Policy
	// Precompute lists the additive aggregations stored per GFU.
	Precompute []AggSpec
	// BitmapCols names low-cardinality columns to build per-row-group value
	// bitmaps for at index-build time (the 'bitmap' IDXPROPERTIES key);
	// equality predicates on them prune row groups inside selected slices.
	// RCFile-format indexes only.
	BitmapCols []string
}

// Validate checks the spec against a table schema.
func (s *Spec) Validate(schema *storage.Schema) error {
	if err := s.Policy.Validate(); err != nil {
		return err
	}
	for _, d := range s.Policy.Dims {
		i := schema.ColIndex(d.Name)
		if i < 0 {
			return fmt.Errorf("dgf: index dimension %q is not a table column", d.Name)
		}
		if schema.Col(i).Kind != d.Kind {
			return fmt.Errorf("dgf: dimension %q kind %v does not match column kind %v",
				d.Name, d.Kind, schema.Col(i).Kind)
		}
	}
	for _, a := range s.Precompute {
		for _, factor := range a.Factors() {
			if schema.ColIndex(factor) < 0 {
				return fmt.Errorf("dgf: pre-compute column %q is not a table column", factor)
			}
		}
	}
	for _, b := range s.BitmapCols {
		if schema.ColIndex(b) < 0 {
			return fmt.Errorf("dgf: bitmap column %q is not a table column", b)
		}
	}
	return nil
}

// Index is an opened DGFIndex: the GFU pairs and metadata in a key-value
// store plus the reorganised data files in the filesystem.
type Index struct {
	FS     *dfs.FS
	KV     *kvstore.Store
	Spec   Spec
	Schema *storage.Schema
	// DataDir holds the reorganised Slice files. Queries on the indexed
	// table read these files (the build job reorganises the base table).
	DataDir string
	// Format is the storage format of the reorganised data (it matches the
	// base table's). Slice locations are line-granular for TextFile and
	// row-group-granular for RCFile.
	Format storage.Format
	// GroupRows sizes the reorganised data's RCFile row groups.
	GroupRows int
	// GroupBytes, when positive, switches the reorganised data's row-group
	// sizing to a byte budget measured from the incoming rows' column widths
	// (GroupRows stays the row-count cap). Persisted so appends cut groups
	// the same way the build did.
	GroupBytes int64
	// BitmapDisabled names the bitmap columns dropped during builds for
	// exceeding storage.BitmapCardinalityCap in some data file — they prune
	// nothing there, which EXPLAIN surfaces as bitmap_disabled.
	BitmapDisabled []string

	dimCols    []int   // schema column index per policy dimension
	aggCols    [][]int // schema column indexes (product factors) per precompute spec; nil for count
	bitmapCols []int   // schema column index per bitmap column
	minCell    []int64 // observed data bounds per dimension, in cells
	maxCell    []int64
}

// BitmapColumns returns the schema column indices carrying bitmap sidecars.
func (ix *Index) BitmapColumns() []int { return ix.bitmapCols }

func (ix *Index) resolveColumns() error {
	ix.dimCols = make([]int, len(ix.Spec.Policy.Dims))
	for i, d := range ix.Spec.Policy.Dims {
		c := ix.Schema.ColIndex(d.Name)
		if c < 0 {
			return fmt.Errorf("dgf: dimension column %q missing from schema", d.Name)
		}
		ix.dimCols[i] = c
	}
	ix.aggCols = make([][]int, len(ix.Spec.Precompute))
	for i, a := range ix.Spec.Precompute {
		for _, factor := range a.Factors() {
			c := ix.Schema.ColIndex(factor)
			if c < 0 {
				return fmt.Errorf("dgf: pre-compute column %q missing from schema", factor)
			}
			ix.aggCols[i] = append(ix.aggCols[i], c)
		}
	}
	ix.bitmapCols = ix.bitmapCols[:0]
	for _, b := range ix.Spec.BitmapCols {
		c := ix.Schema.ColIndex(b)
		if c < 0 {
			return fmt.Errorf("dgf: bitmap column %q missing from schema", b)
		}
		ix.bitmapCols = append(ix.bitmapCols, c)
	}
	return nil
}

// cellsOfLine standardises one text record into its GFU cell coordinates
// (Algorithm 1 lines 1-5).
func (ix *Index) cellsOfLine(line []byte, cells []int64) error {
	for i, col := range ix.dimCols {
		field, ok := storage.TextFieldBytes(line, col)
		if !ok {
			return fmt.Errorf("dgf: record has no field %d: %q", col, line)
		}
		v, err := storage.ParseValue(ix.Schema.Col(col).Kind, string(field))
		if err != nil {
			return err
		}
		cells[i] = ix.Spec.Policy.Dims[i].CellOf(v)
	}
	return nil
}

// foldLine folds one record into header h (Algorithm 2 lines 6-12). Product
// pre-computes multiply their factor columns per record.
func (ix *Index) foldLine(line []byte, h Header) error {
	for i := range h {
		v := 0.0
		for fi, col := range ix.aggCols[i] {
			field, ok := storage.TextFieldBytes(line, col)
			if !ok {
				return fmt.Errorf("dgf: record has no field %d: %q", col, line)
			}
			f, err := strconv.ParseFloat(string(field), 64)
			if err != nil {
				// Time columns aggregate by their Unix value.
				pv, perr := storage.ParseValue(ix.Schema.Col(col).Kind, string(field))
				if perr != nil {
					return fmt.Errorf("dgf: non-numeric value %q for %s", field, ix.Spec.Precompute[i])
				}
				f = pv.AsFloat()
			}
			if fi == 0 {
				v = f
			} else {
				v *= f
			}
		}
		h[i].Fold(v)
	}
	return nil
}

// --- metadata persistence ---

func encodePolicy(p gridfile.Policy) []byte {
	var b strings.Builder
	for i, d := range p.Dims {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s\x01%s\x01%s", d.Name, d.Kind.String(), d.Spec())
	}
	return []byte(b.String())
}

func decodePolicy(data []byte) (gridfile.Policy, error) {
	var p gridfile.Policy
	for _, line := range strings.Split(string(data), "\n") {
		parts := strings.Split(line, "\x01")
		if len(parts) != 3 {
			return p, fmt.Errorf("dgf: bad policy line %q", line)
		}
		kind, err := storage.ParseKind(parts[1])
		if err != nil {
			return p, err
		}
		d, err := gridfile.ParseDimension(parts[0], kind, parts[2])
		if err != nil {
			return p, err
		}
		p.Dims = append(p.Dims, d)
	}
	return p, nil
}

func encodeSpecs(specs []AggSpec) []byte {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return []byte(strings.Join(parts, ";"))
}

// saveMeta persists the index description and data bounds.
func (ix *Index) saveMeta() {
	ix.KV.Put(metaPolicy, encodePolicy(ix.Spec.Policy))
	ix.KV.Put(metaPrecomp, encodeSpecs(ix.Spec.Precompute))
	ix.KV.Put(metaDataDir, []byte(ix.DataDir))
	ix.KV.Put(metaFormat, []byte(strings.ToLower(ix.Format.String())))
	ix.KV.Put(metaGroupRows, []byte(strconv.Itoa(ix.GroupRows)))
	ix.KV.Put(metaGroupBytes, []byte(strconv.FormatInt(ix.GroupBytes, 10)))
	ix.KV.Put(metaBitmapCols, []byte(strings.Join(ix.Spec.BitmapCols, ";")))
	ix.KV.Put(metaBitmapDrop, []byte(strings.Join(ix.BitmapDisabled, ";")))
	for i := range ix.Spec.Policy.Dims {
		ix.KV.Put(metaMinPrefix+strconv.Itoa(i), []byte(strconv.FormatInt(ix.minCell[i], 10)))
		ix.KV.Put(metaMaxPrefix+strconv.Itoa(i), []byte(strconv.FormatInt(ix.maxCell[i], 10)))
	}
}

// Open loads an existing index from its key-value store.
func Open(fs *dfs.FS, kv *kvstore.Store, name string, schema *storage.Schema) (*Index, error) {
	polData, ok := kv.Get(metaPolicy)
	if !ok {
		return nil, fmt.Errorf("dgf: index %q has no metadata", name)
	}
	policy, err := decodePolicy(polData)
	if err != nil {
		return nil, err
	}
	preData, _ := kv.Get(metaPrecomp)
	specs, err := ParseAggSpecs(string(preData))
	if err != nil {
		return nil, err
	}
	dirData, _ := kv.Get(metaDataDir)
	ix := &Index{
		FS:      fs,
		KV:      kv,
		Spec:    Spec{Name: name, Policy: policy, Precompute: specs},
		Schema:  schema,
		DataDir: string(dirData),
		minCell: make([]int64, len(policy.Dims)),
		maxCell: make([]int64, len(policy.Dims)),
	}
	if fData, ok := kv.Get(metaFormat); ok {
		f, err := storage.ParseFormat(string(fData))
		if err != nil {
			return nil, err
		}
		ix.Format = f
	}
	if gData, ok := kv.Get(metaGroupRows); ok {
		ix.GroupRows, err = strconv.Atoi(string(gData))
		if err != nil {
			return nil, fmt.Errorf("dgf: index %q has corrupt group-rows metadata %q", name, gData)
		}
	}
	if gData, ok := kv.Get(metaGroupBytes); ok && len(gData) > 0 {
		ix.GroupBytes, err = strconv.ParseInt(string(gData), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dgf: index %q has corrupt group-bytes metadata %q", name, gData)
		}
	}
	if bData, ok := kv.Get(metaBitmapCols); ok && len(bData) > 0 {
		ix.Spec.BitmapCols = strings.Split(string(bData), ";")
	}
	if bData, ok := kv.Get(metaBitmapDrop); ok && len(bData) > 0 {
		ix.BitmapDisabled = strings.Split(string(bData), ";")
	}
	for i := range policy.Dims {
		lo, ok1 := kv.Get(metaMinPrefix + strconv.Itoa(i))
		hi, ok2 := kv.Get(metaMaxPrefix + strconv.Itoa(i))
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("dgf: index %q missing bounds for dimension %d", name, i)
		}
		ix.minCell[i], _ = strconv.ParseInt(string(lo), 10, 64)
		ix.maxCell[i], _ = strconv.ParseInt(string(hi), 10, 64)
	}
	if err := ix.resolveColumns(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Entries returns the number of GFU pairs (the paper's index-record count).
func (ix *Index) Entries() int {
	return len(ix.KV.ScanPrefix(gfuPrefix))
}

// SizeBytes returns the index size: all GFU keys and values (Table 2/5's
// "Size" column for DGFIndex).
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, p := range ix.KV.ScanPrefix(gfuPrefix) {
		n += int64(len(p.Key) + len(p.Value))
	}
	return n
}

// Bounds returns the observed per-dimension data bounds in cell coordinates.
func (ix *Index) Bounds() (lo, hi []int64) {
	lo = make([]int64, len(ix.minCell))
	hi = make([]int64, len(ix.maxCell))
	copy(lo, ix.minCell)
	copy(hi, ix.maxCell)
	return lo, hi
}

// lookupGFU fetches and decodes one GFU pair.
func (ix *Index) lookupGFU(key string) (GFUValue, bool, error) {
	data, ok := ix.KV.Get(gfuPrefix + key)
	if !ok {
		return GFUValue{}, false, nil
	}
	v, err := decodeGFUValue(ix.Spec.Precompute, data)
	if err != nil {
		return GFUValue{}, false, err
	}
	return v, true, nil
}
