package dgf

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// This file implements the paper's stated future work (Section 8): "an
// algorithm to find the best splitting policy for DGFIndex based on the
// distribution of the meter data and the query history."
//
// The advisor balances the two forces the evaluation exposes:
//
//   - Finer intervals shrink the boundary region an aggregation query must
//     scan (Table 3) but grow the index and the per-query key-value lookups
//     (Table 2, Figures 12-13), and push records-per-GFU toward degenerate
//     one-record Slices.
//   - Coarser intervals do the opposite (Table 4's DGF-L row).
//
// Strategy: make a typical historical query span about TargetSpanCells
// cells along each constrained dimension — then the boundary is roughly a
// 2/TargetSpanCells fraction of the query volume — subject to global
// budgets on total cells (index size / lookup volume) and on minimum
// records per cell (Slice degeneracy).

// AdvisorConfig bounds the suggested policy. The zero value selects the
// defaults documented on each field.
type AdvisorConfig struct {
	// TargetSpanCells is how many cells a typical constrained query range
	// should span per dimension (default 12; boundary ≈ 2/12 ≈ 17 % of the
	// query volume before pre-computation removes the inner part).
	TargetSpanCells float64
	// MaxCells caps the total grid size, bounding both the index size and
	// the worst-case key-value lookups per query (default 1 000 000, the
	// order of the paper's Small policy).
	MaxCells int64
	// MinRowsPerCell keeps Slices from degenerating to a record or two
	// (default 32).
	MinRowsPerCell float64
	// TotalRows is the expected table size the sample represents; when 0
	// the sample size itself is used.
	TotalRows int64
}

func (c AdvisorConfig) withDefaults() AdvisorConfig {
	if c.TargetSpanCells <= 0 {
		c.TargetSpanCells = 12
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 1_000_000
	}
	if c.MinRowsPerCell <= 0 {
		c.MinRowsPerCell = 32
	}
	return c
}

// DimAdvice explains the recommendation for one dimension.
type DimAdvice struct {
	Name string
	Kind storage.Kind
	// Min and Max are the observed data bounds.
	Min, Max storage.Value
	// Distinct is the (capped) observed distinct-value count.
	Distinct int
	// MedianQueryExtent is the median width of historical constraints on
	// this dimension, in value units; 0 when the history never constrains
	// it.
	MedianQueryExtent float64
	// Cells is the resulting number of intervals along this dimension.
	Cells int64
}

// Advice is a suggested splitting policy plus its projected properties.
type Advice struct {
	Policy gridfile.Policy
	PerDim []DimAdvice
	// EstimatedCells is the upper bound on GFU pairs.
	EstimatedCells int64
	// EstimatedRowsPerCell projects the mean Slice population at TotalRows.
	EstimatedRowsPerCell float64
}

// String renders the advice as IDXPROPERTIES syntax (Listing 3 form).
func (a Advice) String() string {
	var b strings.Builder
	for i, d := range a.Policy.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "'%s'='%s'", d.Name, d.Spec())
	}
	return b.String()
}

// distinctCap bounds the per-dimension distinct-value tracking.
const distinctCap = 100000

// SuggestPolicy recommends a splitting policy for the named dimensions from
// a data sample and a query history (per-column range maps, as produced by
// the planner for past queries). See AdvisorConfig for the knobs.
func SuggestPolicy(schema *storage.Schema, dims []string, sample []storage.Row,
	history []map[string]gridfile.Range, cfg AdvisorConfig) (Advice, error) {
	cfg = cfg.withDefaults()
	if len(sample) == 0 {
		return Advice{}, fmt.Errorf("dgf: advisor needs a data sample")
	}
	if len(dims) == 0 {
		return Advice{}, fmt.Errorf("dgf: advisor needs at least one dimension")
	}
	totalRows := cfg.TotalRows
	if totalRows <= 0 {
		totalRows = int64(len(sample))
	}

	states := make([]*dimState, len(dims))
	for i, name := range dims {
		col := schema.ColIndex(name)
		if col < 0 {
			return Advice{}, fmt.Errorf("dgf: advisor: column %q not in schema", name)
		}
		kind := schema.Col(col).Kind
		if kind == storage.KindString {
			return Advice{}, fmt.Errorf("dgf: advisor: string column %q cannot be gridded", name)
		}
		states[i] = &dimState{advice: DimAdvice{Name: name, Kind: kind}, col: col}
	}

	// Pass 1: data distribution — bounds and (capped) distinct counts.
	for di, st := range states {
		distinct := map[float64]bool{}
		min, max := math.Inf(1), math.Inf(-1)
		var minV, maxV storage.Value
		for _, row := range sample {
			v := row[st.col]
			f := v.AsFloat()
			if f < min {
				min, minV = f, v
			}
			if f > max {
				max, maxV = f, v
			}
			if len(distinct) < distinctCap {
				distinct[f] = true
			}
		}
		st.advice.Min, st.advice.Max = minV, maxV
		st.advice.Distinct = len(distinct)
		st.span = max - min
		if st.span <= 0 {
			st.span = 1
		}
		_ = di
	}

	// Pass 2: query history — median constrained extent per dimension.
	for _, st := range states {
		var extents []float64
		for _, q := range history {
			r, ok := lookupRange(q, st.advice.Name)
			if !ok || r.LoUnbounded || r.HiUnbounded {
				continue
			}
			e := r.Hi.AsFloat() - r.Lo.AsFloat()
			if e >= 0 {
				extents = append(extents, e)
			}
		}
		if len(extents) > 0 {
			sort.Float64s(extents)
			st.advice.MedianQueryExtent = extents[len(extents)/2]
		}
	}

	// Initial intervals: a typical constrained query spans TargetSpanCells
	// cells; an unconstrained dimension (completed with stored bounds at
	// query time, Section 5.3.4) gets its full span as the "query extent".
	for _, st := range states {
		extent := st.advice.MedianQueryExtent
		if extent <= 0 {
			extent = st.span
		}
		st.interval = extent / cfg.TargetSpanCells
		st.clampInterval()
	}

	// Enforce the global budgets by coarsening the dimension that currently
	// contributes the most cells — doubling its interval halves its cell
	// count with the least impact on the other dimensions' query fit.
	cells := func() int64 {
		n := int64(1)
		for _, st := range states {
			n *= st.cellCount()
			if n < 0 { // overflow guard
				return math.MaxInt64
			}
		}
		return n
	}
	rowsPerCell := func() float64 { return float64(totalRows) / float64(cells()) }
	for iter := 0; iter < 256 && (cells() > cfg.MaxCells || rowsPerCell() < cfg.MinRowsPerCell); iter++ {
		widest := states[0]
		for _, st := range states[1:] {
			if st.cellCount() > widest.cellCount() {
				widest = st
			}
		}
		if widest.cellCount() <= 1 {
			break // nothing left to coarsen
		}
		widest.interval *= 2
		widest.clampInterval()
	}

	// Materialise the policy.
	adv := Advice{EstimatedCells: cells(), EstimatedRowsPerCell: rowsPerCell()}
	for _, st := range states {
		d := gridfile.Dimension{Name: st.advice.Name, Kind: st.advice.Kind, Min: st.advice.Min}
		switch st.advice.Kind {
		case storage.KindFloat64:
			d.IntervalF = st.interval
		default:
			d.IntervalI = int64(math.Round(st.interval))
			if d.IntervalI < 1 {
				d.IntervalI = 1
			}
			if st.advice.Kind == storage.KindTime {
				d.IntervalI = roundTimeInterval(d.IntervalI)
			}
		}
		st.advice.Cells = st.cellCount()
		adv.Policy.Dims = append(adv.Policy.Dims, d)
		adv.PerDim = append(adv.PerDim, st.advice)
	}
	if err := adv.Policy.Validate(); err != nil {
		return Advice{}, err
	}
	return adv, nil
}

func (st *dimState) clampInterval() {
	// Never finer than one value-unit for discrete kinds, never finer than
	// the span divided by the distinct count (no empty sub-structure), and
	// never wider than the whole span.
	minInterval := 1.0
	if st.advice.Kind == storage.KindFloat64 {
		minInterval = st.span / float64(maxInt(st.advice.Distinct, 1))
	}
	if byDistinct := st.span / float64(maxInt(st.advice.Distinct, 1)); byDistinct > minInterval {
		minInterval = byDistinct
	}
	if st.interval < minInterval {
		st.interval = minInterval
	}
	if st.interval > st.span {
		st.interval = st.span
	}
	if st.interval <= 0 {
		st.interval = 1
	}
}

func (st *dimState) cellCount() int64 {
	n := int64(math.Ceil(st.span/st.interval)) + 1
	if n < 1 {
		return 1
	}
	return n
}

// dimState tracks one dimension's observed distribution and the candidate
// interval while the advisor iterates.
type dimState struct {
	advice   DimAdvice
	col      int
	span     float64 // max - min in value units
	interval float64 // current candidate interval
}

// roundTimeInterval snaps a seconds interval to a human-friendly unit so
// generated policies read like the paper's ('1d', '100d', hours, minutes).
func roundTimeInterval(sec int64) int64 {
	const (
		minute = 60
		hour   = 3600
		day    = 24 * 3600
	)
	switch {
	case sec >= day:
		return ((sec + day/2) / day) * day
	case sec >= hour:
		return ((sec + hour/2) / hour) * hour
	case sec >= minute:
		return ((sec + minute/2) / minute) * minute
	case sec < 1:
		return 1
	default:
		return sec
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
