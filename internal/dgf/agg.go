// Package dgf implements DGFIndex, the distributed grid file index of the
// paper (Section 4): construction as a data-reorganising MapReduce job
// (Algorithms 1 and 2), GFUKey/GFUValue pairs in a key-value store,
// pre-computed additive aggregations per Slice, and the three-step query
// pipeline (Algorithm 3, split filtering per Algorithm 4, and the
// slice-skipping record reader).
package dgf

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AggFunc enumerates the additive aggregation functions DGFIndex can
// pre-compute per GFU. The paper requires pre-computed UDFs to be additive;
// sum, count, min and max are; avg derives from sum/count at the SQL layer.
type AggFunc uint8

// Supported aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
)

// String returns the lower-case function name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec names one pre-computed aggregation, e.g. sum(powerConsumed).
// Col may also be a product of columns such as "num*price" — the paper's
// Section 4.1 example "we can pre-compute sum(num*price)" and TPC-H Q6's
// sum(l_extendedprice*l_discount) both need it; products of numeric columns
// remain additive under sum.
type AggSpec struct {
	Func AggFunc
	// Col is the aggregated column or a '*'-joined product of columns;
	// empty for count.
	Col string
}

// Factors splits a product column expression into its column names.
func (a AggSpec) Factors() []string {
	if a.Col == "" {
		return nil
	}
	parts := strings.Split(a.Col, "*")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// String renders the spec in HiveQL syntax.
func (a AggSpec) String() string {
	col := a.Col
	if a.Func == AggCount && col == "" {
		col = "*"
	}
	return a.Func.String() + "(" + col + ")"
}

// Key returns the canonical lower-case identity of the spec.
func (a AggSpec) Key() string { return strings.ToLower(a.String()) }

// ParseAggSpec parses "sum(powerConsumed)", "count(*)", "min(x)", "max(x)".
func ParseAggSpec(s string) (AggSpec, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return AggSpec{}, fmt.Errorf("dgf: bad aggregation spec %q", s)
	}
	name := strings.ToLower(strings.TrimSpace(s[:open]))
	col := strings.ReplaceAll(strings.TrimSpace(s[open+1:len(s)-1]), " ", "")
	var f AggFunc
	switch name {
	case "sum":
		f = AggSum
	case "count":
		f = AggCount
	case "min":
		f = AggMin
	case "max":
		f = AggMax
	default:
		return AggSpec{}, fmt.Errorf("dgf: aggregation %q is not additive; DGFIndex pre-computes sum/count/min/max", name)
	}
	if f == AggCount && (col == "*" || col == "1") {
		col = ""
	}
	if f != AggCount && col == "" {
		return AggSpec{}, fmt.Errorf("dgf: %s needs a column", name)
	}
	return AggSpec{Func: f, Col: col}, nil
}

// ParseAggSpecs parses a semicolon- or comma-at-top-level separated list
// such as "sum(powerConsumed);count(*)".
func ParseAggSpecs(s string) ([]AggSpec, error) {
	var out []AggSpec
	depth := 0
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(s[start:end])
		if part == "" {
			return nil
		}
		spec, err := ParseAggSpec(part)
		if err != nil {
			return err
		}
		out = append(out, spec)
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',', ';':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return out, nil
}

// Accumulator folds record values into one aggregate cell.
type Accumulator struct {
	Func  AggFunc
	Value float64
	N     int64 // records folded; 0 means empty
}

// Fold adds one record's column value (ignored for count).
func (a *Accumulator) Fold(v float64) {
	if a.N == 0 {
		switch a.Func {
		case AggCount:
			a.Value = 1
		default:
			a.Value = v
		}
		a.N = 1
		return
	}
	a.N++
	switch a.Func {
	case AggSum:
		a.Value += v
	case AggCount:
		a.Value++
	case AggMin:
		if v < a.Value {
			a.Value = v
		}
	case AggMax:
		if v > a.Value {
			a.Value = v
		}
	}
}

// Merge combines another accumulator of the same function (the additive
// property the paper requires of pre-computed UDFs).
func (a *Accumulator) Merge(b Accumulator) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	a.N += b.N
	switch a.Func {
	case AggSum, AggCount:
		a.Value += b.Value
	case AggMin:
		if b.Value < a.Value {
			a.Value = b.Value
		}
	case AggMax:
		if b.Value > a.Value {
			a.Value = b.Value
		}
	}
}

// Header is the pre-computed part of a GFUValue: one accumulator per
// AggSpec of the index, aligned positionally.
type Header []Accumulator

// NewHeader returns an empty header for the given specs.
func NewHeader(specs []AggSpec) Header {
	h := make(Header, len(specs))
	for i, s := range specs {
		h[i].Func = s.Func
	}
	return h
}

// Merge folds other into h (both must share the same spec list).
func (h Header) Merge(other Header) {
	for i := range h {
		if i < len(other) {
			h[i].Merge(other[i])
		}
	}
}

// encodeHeader renders the header compactly: func:value:n fields joined by
// commas. NaN guards empty accumulators.
func encodeHeader(h Header) string {
	var b strings.Builder
	for i, a := range h {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.N == 0 {
			b.WriteString("-")
			continue
		}
		b.WriteString(strconv.FormatFloat(a.Value, 'g', -1, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(a.N, 10))
	}
	return b.String()
}

func decodeHeader(specs []AggSpec, s string) (Header, error) {
	h := NewHeader(specs)
	if s == "" {
		return h, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != len(specs) {
		return nil, fmt.Errorf("dgf: header has %d fields, index has %d precomputes", len(parts), len(specs))
	}
	for i, p := range parts {
		if p == "-" {
			continue
		}
		j := strings.IndexByte(p, ':')
		if j < 0 {
			return nil, fmt.Errorf("dgf: bad header field %q", p)
		}
		v, err := strconv.ParseFloat(p[:j], 64)
		if err != nil || math.IsNaN(v) {
			return nil, fmt.Errorf("dgf: bad header value %q", p)
		}
		n, err := strconv.ParseInt(p[j+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dgf: bad header count %q", p)
		}
		h[i].Value, h[i].N = v, n
	}
	return h, nil
}
