package dgf

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// BuildStats reports the construction cost of an index build or append.
type BuildStats struct {
	Job          mapreduce.Stats
	Entries      int   // GFU pairs written by this run
	IndexBytes   int64 // index size after the run
	KVSimSeconds float64
	// BitmapDisabled names the bitmap columns this run dropped for exceeding
	// storage.BitmapCardinalityCap in some output file (no pruning there,
	// still correct) — CREATE INDEX surfaces them instead of failing.
	BitmapDisabled []string
}

// SimTotalSec is the simulated construction time: the reorganisation job
// plus the key-value store writes.
func (b BuildStats) SimTotalSec() float64 { return b.Job.SimTotalSec() + b.KVSimSeconds }

// Source describes the base-table records an index build reads: their
// location and storage format, plus the row-group sizing the reorganised
// data inherits when the format is columnar. It is the abstract record
// source that keeps Build format-agnostic — the reorganised Slice files are
// written in the same format, so an index over an RCFile table records
// row-group-granular slices.
type Source struct {
	// Dir is scanned for data files when Paths is empty.
	Dir string
	// Paths selects explicit files.
	Paths []string
	// Format is the storage format of both the input files and the
	// reorganised data (zero value: TextFile).
	Format storage.Format
	// GroupRows sizes the reorganised data's RCFile row groups (<= 0
	// selects storage.DefaultRowGroupRows). Ignored for TextFile.
	GroupRows int
	// GroupBytes, when positive, switches row-group sizing to a byte budget
	// (GroupRows stays the row-count cap). Ignored for TextFile.
	GroupBytes int64
}

// input builds the MapReduce input format reading the source's records.
func (s Source) input(fs *dfs.FS, schema *storage.Schema) mapreduce.InputFormat {
	if s.Format == storage.RCFile {
		return &mapreduce.RCInput{FS: fs, Dir: s.Dir, Paths: s.Paths, Schema: schema}
	}
	return &mapreduce.TextInput{FS: fs, Dir: s.Dir, Paths: s.Paths}
}

// Build constructs a DGFIndex over the table described by src, reorganising
// its records into Slice files under dataDir (Algorithms 1 and 2 of the
// paper). It returns the opened index.
//
// The reorganisation is one MapReduce job: map standardises each record to
// its GFUKey and emits <GFUKey, record>; each reduce task writes its groups
// contiguously to one output file, accumulating the pre-computed header per
// group, and puts the <GFUKey, GFUValue> pair into the key-value store. The
// output files are written through the storage package's segment writers, so
// slice boundaries fall at line offsets for TextFile and at row-group
// boundaries for RCFile.
func Build(cfg *cluster.Config, fs *dfs.FS, kv *kvstore.Store, spec Spec,
	schema *storage.Schema, src Source, dataDir string) (*Index, *BuildStats, error) {
	if err := spec.Validate(schema); err != nil {
		return nil, nil, err
	}
	ix := &Index{
		FS:        fs,
		KV:        kv,
		Spec:      spec,
		Schema:    schema,
		DataDir:    dataDir,
		Format:     src.Format,
		GroupRows:  src.GroupRows,
		GroupBytes: src.GroupBytes,
		minCell:    make([]int64, len(spec.Policy.Dims)),
		maxCell:    make([]int64, len(spec.Policy.Dims)),
	}
	if ix.Format == storage.RCFile && ix.GroupRows <= 0 {
		ix.GroupRows = storage.DefaultRowGroupRows
	}
	if err := ix.resolveColumns(); err != nil {
		return nil, nil, err
	}
	if err := fs.MkdirAll(dataDir); err != nil {
		return nil, nil, err
	}
	stats, err := ix.runBuildJob(cfg, src.input(fs, schema), true)
	if err != nil {
		return nil, nil, err
	}
	return ix, stats, nil
}

// Append extends the index with new data files (a new collection period).
// The paper makes the timestamp a default index dimension precisely so that
// appends only add new GFU pairs instead of rebuilding: "the time stamp
// dimension in DGFIndex is extended and the DGFIndex construction process is
// executed on these temporary files" (Section 4.2). The staged files are
// always TextFile (loads stage rows as text regardless of the table format);
// the reorganised output follows the index's format.
func (ix *Index) Append(cfg *cluster.Config, files []string) (*BuildStats, error) {
	return ix.runBuildJobFiles(cfg, files)
}

func (ix *Index) runBuildJobFiles(cfg *cluster.Config, files []string) (*BuildStats, error) {
	return ix.runBuildJob(cfg, &mapreduce.TextInput{FS: ix.FS, Paths: files}, false)
}

func (ix *Index) runBuildJob(cfg *cluster.Config, input mapreduce.InputFormat, fresh bool) (*BuildStats, error) {
	numReducers := cfg.ReduceSlots()
	if numReducers > 64 {
		numReducers = 64
	}
	kvBefore := ix.KV.Stats()

	var boundsMu sync.Mutex
	boundsInit := !fresh // appends extend existing bounds
	var entries int
	droppedCols := map[int]bool{} // bitmap columns overflowed in some output file

	// A distinct file-name generation per build run keeps append output
	// separate from prior runs.
	gen := 0
	if raw, ok := ix.KV.Get(metaGen); ok {
		if n, err := strconv.Atoi(string(raw)); err == nil {
			gen = n
		}
	}
	ix.KV.Put(metaGen, []byte(strconv.Itoa(gen+1)))

	job := &mapreduce.Job{
		Name:  "dgf-build-" + ix.Spec.Name,
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			cells := make([]int64, len(ix.dimCols))
			if err := ix.cellsOfLine(rec.Data, cells); err != nil {
				return err
			}
			// Track observed bounds for ClampRead and partial queries.
			boundsMu.Lock()
			if !boundsInit {
				copy(ix.minCell, cells)
				copy(ix.maxCell, cells)
				boundsInit = true
			} else {
				for i, c := range cells {
					if c < ix.minCell[i] {
						ix.minCell[i] = c
					}
					if c > ix.maxCell[i] {
						ix.maxCell[i] = c
					}
				}
			}
			boundsMu.Unlock()
			emit(ix.Spec.Policy.Key(cells), rec.Data)
			return nil
		},
		NumReducers: numReducers,
		ReduceTask: func(task int, groups []mapreduce.Group, emit mapreduce.Emit) error {
			if len(groups) == 0 {
				return nil
			}
			name := path.Join(ix.DataDir, fmt.Sprintf("part-%d-r-%05d", gen, task))
			sw, err := storage.NewSegmentWriterOpts(ix.FS, name, ix.Schema, ix.Format, ix.GroupRows,
				storage.SegmentWriterOptions{BitmapCols: ix.bitmapCols, GroupBytes: ix.GroupBytes})
			if err != nil {
				return err
			}
			pairs := make(map[string][]byte, len(groups))
			for _, g := range groups {
				start := sw.Offset()
				header := NewHeader(ix.Spec.Precompute)
				for _, line := range g.Values {
					if err := ix.foldLine(line, header); err != nil {
						return err
					}
					if err := sw.WriteRecord(line); err != nil {
						return err
					}
				}
				// Cut at the GFU boundary so the slice covers whole
				// addressable units (row groups for RCFile).
				if err := sw.Cut(); err != nil {
					return err
				}
				end := sw.Offset()
				val := GFUValue{Header: header, Slices: []SliceLoc{{File: name, Start: start, End: end}}}
				pairs[g.Key] = encodeGFUValue(val)
			}
			if err := sw.Close(); err != nil {
				return err
			}
			var overflowed []int
			if rep, ok := sw.(storage.BitmapOverflowReporter); ok {
				overflowed = rep.BitmapOverflows()
			}
			// Merge with any existing pairs (late data for a known cell).
			ix.mergePairs(pairs)
			boundsMu.Lock()
			entries += len(pairs)
			for _, c := range overflowed {
				droppedCols[c] = true
			}
			boundsMu.Unlock()
			return nil
		},
	}
	jobStats, err := mapreduce.Run(cfg, job)
	if err != nil {
		return nil, err
	}
	// Fold this run's overflowed bitmap columns into the index's persistent
	// disabled set (sorted column names, deduplicated across runs).
	var runDropped []string
	if len(droppedCols) > 0 {
		seen := map[string]bool{}
		for _, name := range ix.BitmapDisabled {
			seen[name] = true
		}
		for c := range droppedCols {
			name := ix.Schema.Col(c).Name
			runDropped = append(runDropped, name)
			seen[name] = true
		}
		sort.Strings(runDropped)
		all := make([]string, 0, len(seen))
		for name := range seen {
			all = append(all, name)
		}
		sort.Strings(all)
		ix.BitmapDisabled = all
	}
	ix.saveMeta()
	kvDelta := ix.KV.Stats().Sub(kvBefore)
	return &BuildStats{
		Job:            *jobStats,
		Entries:        entries,
		IndexBytes:     ix.SizeBytes(),
		KVSimSeconds:   kvDelta.SimSeconds(cfg),
		BitmapDisabled: runDropped,
	}, nil
}

// mergePairs installs freshly built GFU pairs, merging headers and slice
// lists with existing pairs for the same key.
func (ix *Index) mergePairs(pairs map[string][]byte) {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, gfuPrefix+k)
	}
	existing := ix.KV.MultiGet(keys)
	out := make(map[string][]byte, len(pairs))
	i := 0
	for k, enc := range pairs {
		full := gfuPrefix + k
		if prev := existing[i]; prev != nil {
			oldVal, err1 := decodeGFUValue(ix.Spec.Precompute, prev)
			newVal, err2 := decodeGFUValue(ix.Spec.Precompute, enc)
			if err1 == nil && err2 == nil {
				oldVal.Header.Merge(newVal.Header)
				oldVal.Slices = append(oldVal.Slices, newVal.Slices...)
				enc = encodeGFUValue(oldVal)
			}
		}
		out[full] = enc
		i++
	}
	ix.KV.PutBatch(out)
}

// AddPrecompute registers additional pre-computed aggregations on a live
// index ("users can still add more UDFs dynamically to DGFIndex on demand",
// Section 4.1). It runs one map-only job over the reorganised data,
// recomputing the extended header of every GFU.
func (ix *Index) AddPrecompute(cfg *cluster.Config, newSpecs []AggSpec) (*mapreduce.Stats, error) {
	for _, s := range newSpecs {
		for _, factor := range s.Factors() {
			if ix.Schema.ColIndex(factor) < 0 {
				return nil, fmt.Errorf("dgf: pre-compute column %q is not a table column", factor)
			}
		}
		for _, have := range ix.Spec.Precompute {
			if have.Key() == s.Key() {
				return nil, fmt.Errorf("dgf: %s is already pre-computed", s)
			}
		}
	}
	extended := append(append([]AggSpec{}, ix.Spec.Precompute...), newSpecs...)

	// Recompute every header in one pass over the reorganised data: map
	// standardises records back to their GFUKey and folds the new columns.
	next := &Index{FS: ix.FS, KV: ix.KV, Spec: Spec{Name: ix.Spec.Name, Policy: ix.Spec.Policy, Precompute: extended}, Schema: ix.Schema, DataDir: ix.DataDir}
	if err := next.resolveColumns(); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	headers := map[string]Header{}
	job := &mapreduce.Job{
		Name:  "dgf-addudf-" + ix.Spec.Name,
		Input: Source{Dir: ix.DataDir, Format: ix.Format}.input(ix.FS, ix.Schema),
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			cells := make([]int64, len(next.dimCols))
			if err := next.cellsOfLine(rec.Data, cells); err != nil {
				return err
			}
			key := next.Spec.Policy.Key(cells)
			h := NewHeader(extended)
			if err := next.foldLine(rec.Data, h); err != nil {
				return err
			}
			mu.Lock()
			if prev, ok := headers[key]; ok {
				prev.Merge(h)
			} else {
				headers[key] = h
			}
			mu.Unlock()
			return nil
		},
	}
	stats, err := mapreduce.Run(cfg, job)
	if err != nil {
		return nil, err
	}
	// Rewrite the stored pairs with extended headers, keeping locations.
	updates := map[string][]byte{}
	for _, p := range ix.KV.ScanPrefix(gfuPrefix) {
		old, err := decodeGFUValue(ix.Spec.Precompute, p.Value)
		if err != nil {
			return nil, err
		}
		key := p.Key[len(gfuPrefix):]
		h, ok := headers[key]
		if !ok {
			h = NewHeader(extended)
		}
		updates[p.Key] = encodeGFUValue(GFUValue{Header: h, Slices: old.Slices})
	}
	ix.KV.PutBatch(updates)
	ix.Spec.Precompute = extended
	if err := ix.resolveColumns(); err != nil {
		return nil, err
	}
	ix.saveMeta()
	return stats, nil
}

// ParseIdxProperties translates the paper's Listing 3 CREATE INDEX property
// map into a Spec: one 'col'='min_interval' entry per dimension (ordered by
// the cols argument) plus an optional 'precompute'='sum(x);count(*)'.
func ParseIdxProperties(name string, cols []string, schema *storage.Schema, props map[string]string) (Spec, error) {
	spec := Spec{Name: name}
	for _, col := range cols {
		ci := schema.ColIndex(col)
		if ci < 0 {
			return Spec{}, fmt.Errorf("dgf: index column %q is not a table column", col)
		}
		raw, ok := props[col]
		if !ok {
			// Tolerate case differences between the column list and the
			// property keys.
			for k, v := range props {
				if schema.ColIndex(k) == ci {
					raw, ok = v, true
					break
				}
			}
		}
		if !ok {
			return Spec{}, fmt.Errorf("dgf: IDXPROPERTIES missing splitting policy for %q", col)
		}
		d, err := gridfile.ParseDimension(col, schema.Col(ci).Kind, raw)
		if err != nil {
			return Spec{}, err
		}
		spec.Policy.Dims = append(spec.Policy.Dims, d)
	}
	if raw, ok := props["precompute"]; ok {
		specs, err := ParseAggSpecs(raw)
		if err != nil {
			return Spec{}, err
		}
		spec.Precompute = specs
	}
	if raw, ok := props["bitmap"]; ok && raw != "" {
		for _, col := range strings.Split(raw, ";") {
			col = strings.TrimSpace(col)
			if col == "" {
				continue
			}
			spec.BitmapCols = append(spec.BitmapCols, col)
		}
	}
	if err := spec.Validate(schema); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
