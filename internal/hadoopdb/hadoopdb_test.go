package hadoopdb

import (
	"math"
	"math/rand"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func meterSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "regionId", Kind: storage.KindInt64},
		storage.Column{Name: "power", Kind: storage.KindFloat64},
	)
}

func userSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "userName", Kind: storage.KindString},
	)
}

func testConfig() *Config {
	c := DefaultConfig()
	c.Nodes = 4
	c.ChunksPerNode = 3
	return c
}

func meterRows(n int) []storage.Row {
	rng := rand.New(rand.NewSource(19))
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			storage.Int64(int64(rng.Intn(200))),
			storage.Int64(int64(rng.Intn(10))),
			storage.Float64(rng.Float64() * 5),
		}
	}
	return rows
}

func TestLoadPartitionsAllRows(t *testing.T) {
	rows := meterRows(1000)
	c, err := Load(testConfig(), meterSchema(), []string{"userId", "regionId"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 1000 {
		t.Errorf("Rows = %d", c.Rows())
	}
	total := 0
	for _, node := range c.nodes {
		for _, chunk := range node {
			total += chunk.Rows()
		}
	}
	if total != 1000 {
		t.Errorf("chunks hold %d rows, want 1000", total)
	}
}

func TestLoadSameKeySameChunk(t *testing.T) {
	// All rows of one userId must land in the same chunk (hash partitioning
	// invariant needed for local joins on the partition key).
	rows := make([]storage.Row, 50)
	for i := range rows {
		rows[i] = storage.Row{storage.Int64(77), storage.Int64(int64(i % 5)), storage.Float64(1)}
	}
	c, err := Load(testConfig(), meterSchema(), []string{"userId"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, node := range c.nodes {
		for _, chunk := range node {
			if chunk.Rows() > 0 {
				nonEmpty++
				if chunk.Rows() != 50 {
					t.Errorf("chunk holds %d of 50 rows", chunk.Rows())
				}
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("userId 77 scattered over %d chunks", nonEmpty)
	}
}

func TestRangeAggMatchesBruteForce(t *testing.T) {
	rows := meterRows(2000)
	c, err := Load(testConfig(), meterSchema(), []string{"userId", "regionId"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[string]gridfile.Range{
		"userId":   {Lo: storage.Int64(50), Hi: storage.Int64(120)},
		"regionId": {Lo: storage.Int64(2), Hi: storage.Int64(6)},
	}
	got, stats, err := c.RangeAgg(ranges, "power", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	var wantN float64
	for _, r := range rows {
		if r[0].I >= 50 && r[0].I <= 120 && r[1].I >= 2 && r[1].I <= 6 {
			wantSum += r[2].F
			wantN++
		}
	}
	agg := got[""]
	if math.Abs(agg[0]-wantSum) > 1e-9 || agg[1] != wantN {
		t.Errorf("agg = %v, want (%v, %v)", agg, wantSum, wantN)
	}
	if stats.SimSeconds <= 0 || stats.ChunksQueried != 12 {
		t.Errorf("stats = %+v", stats)
	}
	// Every chunk is visited: hash partitioning cannot prune range queries.
	if stats.RowsExamined < stats.RowsReturned {
		t.Errorf("examined %d < returned %d", stats.RowsExamined, stats.RowsReturned)
	}
}

func TestRangeAggGroupBy(t *testing.T) {
	rows := meterRows(1500)
	c, _ := Load(testConfig(), meterSchema(), []string{"userId"}, rows)
	ranges := map[string]gridfile.Range{
		"regionId": {Lo: storage.Int64(0), Hi: storage.Int64(4)},
	}
	got, _, err := c.RangeAgg(ranges, "power", []string{"regionId"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]float64{}
	for _, r := range rows {
		if r[1].I >= 0 && r[1].I <= 4 {
			k := r[1].String()
			cur := want[k]
			cur[0] += r[2].F
			cur[1]++
			want[k] = cur
		}
	}
	if len(got) != len(want) {
		t.Fatalf("groups: %d vs %d", len(got), len(want))
	}
	for k, w := range want {
		g := got[k]
		if math.Abs(g[0]-w[0]) > 1e-9 || g[1] != w[1] {
			t.Errorf("group %q = %v, want %v", k, g, w)
		}
	}
}

func TestRangeAggUnknownColumn(t *testing.T) {
	c, _ := Load(testConfig(), meterSchema(), []string{"userId"}, meterRows(10))
	if _, _, err := c.RangeAgg(nil, "ghost", nil); err == nil {
		t.Error("unknown agg column accepted")
	}
	if _, _, err := c.RangeAgg(nil, "", []string{"ghost"}); err == nil {
		t.Error("unknown group column accepted")
	}
}

func TestRangeJoin(t *testing.T) {
	rows := meterRows(800)
	c, _ := Load(testConfig(), meterSchema(), []string{"userId"}, rows)
	// User table: names for ids 0..199.
	var users []storage.Row
	for i := int64(0); i < 200; i++ {
		users = append(users, storage.Row{storage.Int64(i), storage.Str("user-" + storage.Int64(i).String())})
	}
	c.ReplicateSideTable("userInfo", userSchema(), users)
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(10), Hi: storage.Int64(30)},
	}
	var joined int
	stats, err := c.RangeJoin(ranges, "userInfo", "userId", "userId", func(l, r storage.Row) {
		if l[0].I != r[0].I {
			t.Errorf("join mismatch: %v vs %v", l[0], r[0])
		}
		joined++
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r[0].I >= 10 && r[0].I <= 30 {
			want++
		}
	}
	if joined != want || stats.RowsReturned != int64(want) {
		t.Errorf("joined %d (stats %d), want %d", joined, stats.RowsReturned, want)
	}
	if _, err := c.RangeJoin(ranges, "missing", "userId", "userId", nil); err == nil {
		t.Error("missing side table accepted")
	}
}

func TestSimSecondsGrowsWithSelectivity(t *testing.T) {
	rows := meterRows(5000)
	c, _ := Load(testConfig(), meterSchema(), []string{"userId"}, rows)
	narrow := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(5), Hi: storage.Int64(5)},
	}
	wide := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(0), Hi: storage.Int64(199)},
	}
	_, sNarrow, _ := c.RangeAgg(narrow, "power", nil)
	_, sWide, _ := c.RangeAgg(wide, "power", nil)
	if sWide.SimSeconds <= sNarrow.SimSeconds {
		t.Errorf("wide query (%v s) should cost more than narrow (%v s)",
			sWide.SimSeconds, sNarrow.SimSeconds)
	}
}

func TestBadTopology(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 0
	if _, err := Load(cfg, meterSchema(), nil, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg2 := testConfig()
	cfg2.PartitionCol = "ghost"
	if _, err := Load(cfg2, meterSchema(), nil, nil); err == nil {
		t.Error("bad partition column accepted")
	}
}
