// Package hadoopdb reproduces the HadoopDB baseline of the paper's
// evaluation (Abouzeid et al., VLDB 2009): an architectural hybrid that hash
// partitions the data across per-node single-machine databases (PostgreSQL
// in the paper, internal/localdb here), pushes the SQL predicate into every
// chunk database, and collects the partial results with a MapReduce job.
//
// The paper's setup (Section 5.2): the GlobalHasher splits the meter data
// into 28 node partitions by userId; the LocalHasher splits each node's
// partition into 38 one-GB chunks, each bulk-loaded into its own database
// with a multi-column index on (userId, regionId, time). The user table is
// replicated to every node. Because the partitioning key is hashed, a range
// predicate on userId cannot prune chunks — every chunk database runs every
// query, which is exactly the "resource competition" the paper blames for
// HadoopDB's poor high-selectivity performance.
package hadoopdb

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/localdb"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Config sizes the cluster and prices its operations.
type Config struct {
	// Nodes is the number of worker nodes (paper: 28).
	Nodes int
	// ChunksPerNode is the number of chunk databases per node (paper: 38).
	ChunksPerNode int
	// PartitionCol is the hash partitioning column (paper: userId).
	PartitionCol string

	// DiskMBps is each node's disk bandwidth, shared by its concurrently
	// querying chunk databases.
	DiskMBps float64
	// RandomReadPenalty multiplies the effective read volume when many
	// chunk databases thrash one disk (the resource-competition effect).
	RandomReadPenalty float64
	// ChunkStartupSec is the per-chunk query dispatch overhead (connection,
	// planning).
	ChunkStartupSec float64
	// CollectJobSec is the fixed cost of the MapReduce collection job.
	CollectJobSec float64
	// RowCPUUs is the per-row processing cost in the collect phase.
	RowCPUUs float64
	// ScaleFactor treats the loaded rows as a 1/ScaleFactor sample of the
	// modelled deployment's data, like cluster.Config.ScaleFactor.
	ScaleFactor float64
}

// DefaultConfig matches the paper's deployment shape.
func DefaultConfig() *Config {
	return &Config{
		Nodes:             28,
		ChunksPerNode:     38,
		PartitionCol:      "userId",
		DiskMBps:          24,
		RandomReadPenalty: 3,
		ChunkStartupSec:   1.2,
		CollectJobSec:     12,
		RowCPUUs:          1.5,
		ScaleFactor:       1,
	}
}

// Cluster is a loaded HadoopDB deployment.
type Cluster struct {
	Config *Config
	Schema *storage.Schema
	nodes  [][]*localdb.Table // nodes x chunks
	// replicated side tables (the user-info archive), one copy per node.
	sideTables map[string]*sideTable
	loadedRows int64
}

type sideTable struct {
	schema *storage.Schema
	rows   []storage.Row
}

// Load partitions rows into chunk databases with the Global and Local
// hashers and bulk-loads each chunk, building its multi-column index.
func Load(cfg *Config, schema *storage.Schema, indexCols []string, rows []storage.Row) (*Cluster, error) {
	if cfg.Nodes <= 0 || cfg.ChunksPerNode <= 0 {
		return nil, fmt.Errorf("hadoopdb: bad topology %d x %d", cfg.Nodes, cfg.ChunksPerNode)
	}
	pi := schema.ColIndex(cfg.PartitionCol)
	if pi < 0 {
		return nil, fmt.Errorf("hadoopdb: partition column %q not in schema", cfg.PartitionCol)
	}
	c := &Cluster{Config: cfg, Schema: schema, sideTables: map[string]*sideTable{}}
	c.nodes = make([][]*localdb.Table, cfg.Nodes)
	for n := range c.nodes {
		c.nodes[n] = make([]*localdb.Table, cfg.ChunksPerNode)
		for k := range c.nodes[n] {
			t, err := localdb.New(schema, indexCols)
			if err != nil {
				return nil, err
			}
			c.nodes[n][k] = t
		}
	}
	// GlobalHasher then LocalHasher, both on the partition column.
	buckets := make([][]storage.Row, cfg.Nodes*cfg.ChunksPerNode)
	for _, row := range rows {
		key := row[pi].String()
		node := int(hash32(key) % uint32(cfg.Nodes))
		chunk := int(hash32("local|"+key) % uint32(cfg.ChunksPerNode))
		b := node*cfg.ChunksPerNode + chunk
		buckets[b] = append(buckets[b], row)
	}
	var wg sync.WaitGroup
	for n := 0; n < cfg.Nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for k := 0; k < cfg.ChunksPerNode; k++ {
				c.nodes[n][k].BulkLoad(buckets[n*cfg.ChunksPerNode+k])
			}
		}(n)
	}
	wg.Wait()
	c.loadedRows = int64(len(rows))
	return c, nil
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// ReplicateSideTable stores a copy of a small table on every node (the
// paper replicates the 83 MB user partition into all databases of a node).
func (c *Cluster) ReplicateSideTable(name string, schema *storage.Schema, rows []storage.Row) {
	c.sideTables[strings.ToLower(name)] = &sideTable{schema: schema, rows: rows}
}

// QueryStats describes one pushed-down query's cost.
type QueryStats struct {
	RowsExamined  int64
	BytesExamined int64
	RowsReturned  int64
	ChunksQueried int
	// SimSeconds is the modelled wall time: the slowest node's disk time
	// under contention plus dispatch and collection overheads.
	SimSeconds float64
}

// aggregate of one node's chunk scans.
type nodeWork struct {
	bytes int64
	rows  int64
}

// RangeAgg pushes SELECT <aggs> WHERE <ranges> into every chunk database
// and merges the per-chunk partials, optionally grouped by groupBy columns.
// aggCol is the summed column ("" to only count). It returns group ->
// (sum, count).
func (c *Cluster) RangeAgg(ranges map[string]gridfile.Range, aggCol string, groupBy []string) (map[string][2]float64, *QueryStats, error) {
	ai := -1
	if aggCol != "" {
		ai = c.Schema.ColIndex(aggCol)
		if ai < 0 {
			return nil, nil, fmt.Errorf("hadoopdb: column %q not in schema", aggCol)
		}
	}
	var gidx []int
	for _, g := range groupBy {
		gi := c.Schema.ColIndex(g)
		if gi < 0 {
			return nil, nil, fmt.Errorf("hadoopdb: group column %q not in schema", g)
		}
		gidx = append(gidx, gi)
	}
	result := map[string][2]float64{}
	stats := &QueryStats{}
	var mu sync.Mutex
	perNode := make([]nodeWork, len(c.nodes))

	var wg sync.WaitGroup
	for n := range c.nodes {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			local := map[string][2]float64{}
			var work nodeWork
			var examined, returned int64
			for _, chunk := range c.nodes[n] {
				rows, st := chunk.RangeScan(ranges)
				work.bytes += st.BytesExamined
				work.rows += st.RowsExamined
				examined += st.RowsExamined
				returned += st.RowsReturned
				for _, row := range rows {
					key := groupKey(row, gidx)
					agg := local[key]
					if ai >= 0 {
						agg[0] += row[ai].AsFloat()
					}
					agg[1]++
					local[key] = agg
				}
			}
			mu.Lock()
			for k, v := range local {
				cur := result[k]
				cur[0] += v[0]
				cur[1] += v[1]
				result[k] = cur
			}
			stats.RowsExamined += examined
			stats.RowsReturned += returned
			stats.BytesExamined += work.bytes
			perNode[n] = work
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	stats.ChunksQueried = len(c.nodes) * c.Config.ChunksPerNode
	stats.SimSeconds = c.simSeconds(perNode)
	return result, stats, nil
}

// RangeJoin pushes a filtered join between the partitioned table and a
// replicated side table into every chunk, as the paper does for Listing 6.
// It returns the joined row count and per-query stats; emit receives each
// joined pair (nil to only count).
func (c *Cluster) RangeJoin(ranges map[string]gridfile.Range, sideName, joinCol, sideJoinCol string,
	emit func(left storage.Row, right storage.Row)) (*QueryStats, error) {
	side, ok := c.sideTables[strings.ToLower(sideName)]
	if !ok {
		return nil, fmt.Errorf("hadoopdb: side table %q not replicated", sideName)
	}
	ji := c.Schema.ColIndex(joinCol)
	si := side.schema.ColIndex(sideJoinCol)
	if ji < 0 || si < 0 {
		return nil, fmt.Errorf("hadoopdb: join columns %q/%q missing", joinCol, sideJoinCol)
	}
	// Hash the replicated side once per node (the local hash join).
	sideMap := make(map[string][]storage.Row, len(side.rows))
	for _, r := range side.rows {
		k := r[si].String()
		sideMap[k] = append(sideMap[k], r)
	}
	stats := &QueryStats{}
	perNode := make([]nodeWork, len(c.nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for n := range c.nodes {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var work nodeWork
			var examined, returned int64
			type pair struct{ l, r storage.Row }
			var local []pair
			for _, chunk := range c.nodes[n] {
				rows, st := chunk.RangeScan(ranges)
				work.bytes += st.BytesExamined
				work.rows += st.RowsExamined
				examined += st.RowsExamined
				for _, row := range rows {
					for _, s := range sideMap[row[ji].String()] {
						returned++
						if emit != nil {
							local = append(local, pair{row, s})
						}
					}
				}
			}
			mu.Lock()
			stats.RowsExamined += examined
			stats.RowsReturned += returned
			stats.BytesExamined += work.bytes
			perNode[n] = work
			for _, p := range local {
				emit(p.l, p.r)
			}
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	stats.ChunksQueried = len(c.nodes) * c.Config.ChunksPerNode
	stats.SimSeconds = c.simSeconds(perNode)
	return stats, nil
}

// simSeconds prices the query: every chunk pays dispatch overhead; each
// node's chunk scans contend for one disk with a random-read penalty; the
// MapReduce collection job adds its fixed cost. The makespan is the slowest
// node.
func (c *Cluster) simSeconds(perNode []nodeWork) float64 {
	cfg := c.Config
	sf := cfg.ScaleFactor
	if sf < 1 {
		sf = 1
	}
	worst := 0.0
	for _, w := range perNode {
		mb := float64(w.bytes) * sf / (1 << 20)
		t := mb * cfg.RandomReadPenalty / cfg.DiskMBps
		t += float64(w.rows) * sf * cfg.RowCPUUs / 1e6
		if t > worst {
			worst = t
		}
	}
	dispatch := float64(cfg.ChunksPerNode) * cfg.ChunkStartupSec
	return cfg.CollectJobSec + dispatch + worst
}

func groupKey(row storage.Row, gidx []int) string {
	if len(gidx) == 0 {
		return ""
	}
	var b strings.Builder
	for i, gi := range gidx {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(row[gi].String())
	}
	return b.String()
}

// Rows returns the number of loaded fact rows.
func (c *Cluster) Rows() int64 { return c.loadedRows }
