package workload

import (
	"math/rand"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// TPCHConfig sizes the lineitem generator. Only the columns touched by Q6
// plus enough neighbours for realistic row width are produced, with the
// official TPC-H column domains: l_quantity in [1,50], l_discount in
// [0.00,0.10] steps of 0.01, l_shipdate spanning 1992-01-02..1998-12-01.
type TPCHConfig struct {
	Rows int
	Seed int64
}

// DefaultTPCHConfig is laptop scale (the paper uses 4.1 G rows).
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{Rows: 500000, Seed: 19920101}
}

// shipdate domain bounds.
var (
	tpchShipBase = time.Date(1992, 1, 2, 0, 0, 0, 0, time.UTC)
	tpchShipDays = 2520 // through 1998-11-27
)

// LineitemSchema returns the generated lineitem columns.
func LineitemSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "l_orderkey", Kind: storage.KindInt64},
		storage.Column{Name: "l_partkey", Kind: storage.KindInt64},
		storage.Column{Name: "l_suppkey", Kind: storage.KindInt64},
		storage.Column{Name: "l_linenumber", Kind: storage.KindInt64},
		storage.Column{Name: "l_quantity", Kind: storage.KindFloat64},
		storage.Column{Name: "l_extendedprice", Kind: storage.KindFloat64},
		storage.Column{Name: "l_discount", Kind: storage.KindFloat64},
		storage.Column{Name: "l_tax", Kind: storage.KindFloat64},
		storage.Column{Name: "l_shipdate", Kind: storage.KindTime},
		storage.Column{Name: "l_commitdate", Kind: storage.KindTime},
	)
}

// EachLineitemBatch generates rows in batches of batchSize. Rows are
// uniformly scattered in every dimension — no ordering by date — which is
// the property that makes the Compact Index useless on this dataset
// (Section 5.4). The batch slice is reused; callers must not retain it.
func (c TPCHConfig) EachLineitemBatch(batchSize int, fn func(rows []storage.Row) error) error {
	if batchSize <= 0 {
		batchSize = 10000
	}
	rng := rand.New(rand.NewSource(c.Seed))
	batch := make([]storage.Row, 0, batchSize)
	for i := 0; i < c.Rows; i++ {
		quantity := float64(rng.Intn(50) + 1)
		price := float64(rng.Intn(90000)+10000) / 100
		discount := float64(rng.Intn(11)) / 100
		ship := tpchShipBase.AddDate(0, 0, rng.Intn(tpchShipDays))
		batch = append(batch, storage.Row{
			storage.Int64(int64(i/4 + 1)),
			storage.Int64(int64(rng.Intn(200000) + 1)),
			storage.Int64(int64(rng.Intn(10000) + 1)),
			storage.Int64(int64(i%4 + 1)),
			storage.Float64(quantity),
			storage.Float64(price * quantity),
			storage.Float64(discount),
			storage.Float64(float64(rng.Intn(9)) / 100),
			storage.Time(ship),
			storage.Time(ship.AddDate(0, 0, rng.Intn(30)+1)),
		})
		if len(batch) == batchSize {
			if err := fn(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		return fn(batch)
	}
	return nil
}

// AllLineitemRows materialises the dataset.
func (c TPCHConfig) AllLineitemRows() []storage.Row {
	out := make([]storage.Row, 0, c.Rows)
	c.EachLineitemBatch(10000, func(rows []storage.Row) error {
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out
}

// Q6SQL is TPC-H Q6 as HiveQL (the paper's Section 5.4 workload).
const Q6SQL = `SELECT sum(l_extendedprice*l_discount) FROM lineitem
WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
AND l_discount >= 0.05 AND l_discount <= 0.07
AND l_quantity < 24`

// Q6Ranges renders Q6's predicate as planner ranges.
func Q6Ranges() map[string]gridfile.Range {
	lo := time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)
	hi := time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)
	return map[string]gridfile.Range{
		"l_shipdate": {Lo: storage.Time(lo), Hi: storage.Time(hi), HiOpen: true},
		"l_discount": {Lo: storage.Float64(0.05), Hi: storage.Float64(0.07)},
		"l_quantity": {LoUnbounded: true, Hi: storage.Float64(24), HiOpen: true},
	}
}

// Q6Matches is the brute-force Q6 predicate for validation.
func Q6Matches(row storage.Row) bool {
	lo := time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	hi := time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	return row[8].I >= lo && row[8].I < hi &&
		row[6].F >= 0.0499999 && row[6].F <= 0.0700001 &&
		row[4].F < 24
}
