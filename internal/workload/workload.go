// Package workload generates the two datasets of the paper's evaluation and
// the parameterised queries run against them:
//
//   - Smart-grid meter data (Section 5.2): records with userId, regionId
//     (the region a user lives in, 11 distinct values), a collection
//     timestamp (30 days of readings), powerConsumed, and further metrics
//     (PATE with different rates etc.). The real dataset's key property is
//     preserved: records sharing a timestamp are stored together (the data
//     arrives collection period by collection period), while userIds within
//     one period are unordered.
//
//   - TPC-H lineitem (Section 5.4) restricted to the columns Q6 touches,
//     with rows uniformly scattered — the property that defeats the Compact
//     Index in the paper's Figure 18.
//
// Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// MeterConfig sizes the synthetic meter dataset. The paper's real dataset
// has 14 M users, 11 regions, 30 days and 11 G records; benchmarks scale
// Users and ReadingsPerDay down while keeping the distribution shape.
type MeterConfig struct {
	Users          int
	Regions        int
	Days           int
	ReadingsPerDay int
	// OtherMetrics adds extra numeric columns (the paper's records carry 17
	// fields; the extras only widen rows).
	OtherMetrics int
	Start        time.Time
	Seed         int64
}

// DefaultMeterConfig returns a laptop-scale configuration with the paper's
// dimensional structure (11 regions, 30 days).
func DefaultMeterConfig() MeterConfig {
	return MeterConfig{
		Users:          20000,
		Regions:        11,
		Days:           30,
		ReadingsPerDay: 1,
		OtherMetrics:   4,
		Start:          time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC),
		Seed:           20121201,
	}
}

// Rows returns the total record count.
func (c MeterConfig) Rows() int { return c.Users * c.Days * c.ReadingsPerDay }

// MeterSchema builds the meter table schema.
func MeterSchema(otherMetrics int) *storage.Schema {
	cols := []storage.Column{
		{Name: "userId", Kind: storage.KindInt64},
		{Name: "regionId", Kind: storage.KindInt64},
		{Name: "ts", Kind: storage.KindTime},
		{Name: "powerConsumed", Kind: storage.KindFloat64},
	}
	for i := 0; i < otherMetrics; i++ {
		cols = append(cols, storage.Column{Name: fmt.Sprintf("pate%d", i+1), Kind: storage.KindFloat64})
	}
	return storage.NewSchema(cols...)
}

// RegionOf returns the fixed region of a user (users do not move between
// collection periods).
func (c MeterConfig) RegionOf(user int64) int64 {
	return user%int64(c.Regions) + 1
}

// EachPeriod generates the dataset one collection period at a time in
// timestamp order, preserving the real data's time clustering. The rows
// slice is reused between calls; the callback must not retain it.
func (c MeterConfig) EachPeriod(fn func(period int, rows []storage.Row) error) error {
	rng := rand.New(rand.NewSource(c.Seed))
	periods := c.Days * c.ReadingsPerDay
	secPerPeriod := 24 * 3600 / c.ReadingsPerDay
	rows := make([]storage.Row, c.Users)
	order := rng.Perm(c.Users)
	for p := 0; p < periods; p++ {
		ts := c.Start.Unix() + int64(p*secPerPeriod)
		// Shuffle user order per period: arrival order is not sorted by id.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for i, u := range order {
			user := int64(u + 1)
			row := make(storage.Row, 0, 4+c.OtherMetrics)
			row = append(row,
				storage.Int64(user),
				storage.Int64(c.RegionOf(user)),
				storage.TimeUnix(ts),
				storage.Float64(float64(rng.Intn(100000))/100),
			)
			for m := 0; m < c.OtherMetrics; m++ {
				row = append(row, storage.Float64(float64(rng.Intn(10000))/100))
			}
			rows[i] = row
		}
		if err := fn(p, rows); err != nil {
			return err
		}
	}
	return nil
}

// AllRows materialises the full dataset (benchmark-scale only).
func (c MeterConfig) AllRows() []storage.Row {
	out := make([]storage.Row, 0, c.Rows())
	c.EachPeriod(func(p int, rows []storage.Row) error {
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		return nil
	})
	return out
}

// UserInfoSchema is the replicated archive table joined in Listing 6.
func UserInfoSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "userName", Kind: storage.KindString},
		storage.Column{Name: "regionId", Kind: storage.KindInt64},
		storage.Column{Name: "address", Kind: storage.KindString},
	)
}

// UserInfoRows generates the archive table: one row per user.
func (c MeterConfig) UserInfoRows() []storage.Row {
	rows := make([]storage.Row, c.Users)
	for u := 1; u <= c.Users; u++ {
		rows[u-1] = storage.Row{
			storage.Int64(int64(u)),
			storage.Str(fmt.Sprintf("user-%07d", u)),
			storage.Int64(c.RegionOf(int64(u))),
			storage.Str(fmt.Sprintf("%d Grid Street, District %d", u%997, c.RegionOf(int64(u)))),
		}
	}
	return rows
}

// MeterQuery is one parameterised MDRQ over the meter table: the ranges of
// the paper's Listing 4/5/6 predicates.
type MeterQuery struct {
	// Selectivity is the approximate fraction of records matched.
	Selectivity        float64
	UserLo, UserHi     int64 // inclusive bounds
	RegionLo, RegionHi int64
	DayLo, DayHi       int // day offsets, inclusive
	cfg                MeterConfig
}

// Point builds the point query: one user, that user's region, one day
// (matching the paper's "point" selectivity with ReadingsPerDay records).
func (c MeterConfig) Point() MeterQuery {
	u := int64(c.Users/2 + 1)
	return MeterQuery{
		Selectivity: 1 / float64(c.Rows()),
		UserLo:      u, UserHi: u,
		RegionLo: c.RegionOf(u), RegionHi: c.RegionOf(u),
		DayLo: c.Days / 2, DayHi: c.Days / 2,
		cfg: c,
	}
}

// Selective builds a query matching approximately frac of the records by
// constraining about half the regions, a day window that widens with the
// target, and the userId range needed to reach it (how the paper varies 5 %
// versus 12 %). The userId bounds deliberately do NOT align with typical
// splitting-policy boundaries — real ad-hoc predicates never do — so a
// boundary region always exists.
func (c MeterConfig) Selective(frac float64) MeterQuery {
	regionSel := (c.Regions + 1) / 2
	daySel := int(float64(c.Days) * (0.3 + 2*frac))
	if daySel < 1 {
		daySel = 1
	}
	if daySel > c.Days {
		daySel = c.Days
	}
	regionFrac := float64(regionSel) / float64(c.Regions)
	dayFrac := float64(daySel) / float64(c.Days)
	userFrac := frac / (regionFrac * dayFrac)
	if userFrac > 1 {
		userFrac = 1
	}
	users := int64(float64(c.Users) * userFrac)
	if users < 1 {
		users = 1
	}
	// Offset the user range by a small prime so the bounds fall inside
	// grid cells rather than on their edges.
	lo := int64(7)
	hi := lo + users - 1
	if hi > int64(c.Users) {
		lo, hi = int64(c.Users)-users+1, int64(c.Users)
	}
	if lo < 1 {
		lo = 1
	}
	dayLo, dayHi := 1, daySel
	if dayHi >= c.Days {
		dayLo, dayHi = 0, c.Days-1
	}
	return MeterQuery{
		Selectivity: frac,
		UserLo:      lo, UserHi: hi,
		RegionLo: 1, RegionHi: int64(regionSel),
		DayLo: dayLo, DayHi: dayHi,
		cfg: c,
	}
}

// Ranges renders the query as per-column ranges for planners.
func (q MeterQuery) Ranges() map[string]gridfile.Range {
	dayLo := q.cfg.Start.Unix() + int64(q.DayLo)*24*3600
	dayHi := q.cfg.Start.Unix() + int64(q.DayHi+1)*24*3600 // exclusive
	return map[string]gridfile.Range{
		"userid":   {Lo: storage.Int64(q.UserLo), Hi: storage.Int64(q.UserHi)},
		"regionid": {Lo: storage.Int64(q.RegionLo), Hi: storage.Int64(q.RegionHi)},
		"ts":       {Lo: storage.TimeUnix(dayLo), Hi: storage.TimeUnix(dayHi), HiOpen: true},
	}
}

// WhereClause renders the predicate as HiveQL (Listing 4's shape).
func (q MeterQuery) WhereClause() string {
	dayLo := time.Unix(q.cfg.Start.Unix()+int64(q.DayLo)*24*3600, 0).UTC().Format("2006-01-02")
	dayHi := time.Unix(q.cfg.Start.Unix()+int64(q.DayHi+1)*24*3600, 0).UTC().Format("2006-01-02")
	return fmt.Sprintf(
		"userId>=%d AND userId<=%d AND regionId>=%d AND regionId<=%d AND ts>='%s' AND ts<'%s'",
		q.UserLo, q.UserHi, q.RegionLo, q.RegionHi, dayLo, dayHi)
}

// Matches reports whether a meter row satisfies the query (brute-force
// validation in tests and "Accurate" rows of Tables 3/4).
func (q MeterQuery) Matches(row storage.Row) bool {
	dayLo := q.cfg.Start.Unix() + int64(q.DayLo)*24*3600
	dayHi := q.cfg.Start.Unix() + int64(q.DayHi+1)*24*3600
	return row[0].I >= q.UserLo && row[0].I <= q.UserHi &&
		row[1].I >= q.RegionLo && row[1].I <= q.RegionHi &&
		row[2].I >= dayLo && row[2].I < dayHi
}
