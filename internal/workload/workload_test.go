package workload

import (
	"math"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func smallMeter() MeterConfig {
	c := DefaultMeterConfig()
	c.Users = 500
	c.Days = 10
	return c
}

func TestMeterGeneration(t *testing.T) {
	c := smallMeter()
	rows := c.AllRows()
	if len(rows) != c.Rows() {
		t.Fatalf("rows = %d, want %d", len(rows), c.Rows())
	}
	schema := MeterSchema(c.OtherMetrics)
	if len(rows[0]) != schema.Len() {
		t.Errorf("row width = %d, schema %d", len(rows[0]), schema.Len())
	}
	// Time-clustered: timestamps are non-decreasing through the file.
	for i := 1; i < len(rows); i++ {
		if rows[i][2].I < rows[i-1][2].I {
			t.Fatal("rows not time-clustered")
		}
	}
	// Regions span exactly 1..Regions and are fixed per user.
	regionOf := map[int64]int64{}
	for _, r := range rows {
		u, reg := r[0].I, r[1].I
		if reg < 1 || reg > int64(c.Regions) {
			t.Fatalf("region %d out of range", reg)
		}
		if prev, ok := regionOf[u]; ok && prev != reg {
			t.Fatalf("user %d moved region", u)
		}
		regionOf[u] = reg
	}
	if len(regionOf) != c.Users {
		t.Errorf("distinct users = %d, want %d", len(regionOf), c.Users)
	}
}

func TestMeterDeterminism(t *testing.T) {
	c := smallMeter()
	a := c.AllRows()
	b := c.AllRows()
	for i := range a {
		for j := range a[i] {
			if storage.Compare(a[i][j], b[i][j]) != 0 {
				t.Fatalf("row %d differs between runs", i)
			}
		}
	}
}

func TestUsersNotSortedWithinPeriod(t *testing.T) {
	c := smallMeter()
	sortedPeriods := 0
	c.EachPeriod(func(p int, rows []storage.Row) error {
		sorted := true
		for i := 1; i < len(rows); i++ {
			if rows[i][0].I < rows[i-1][0].I {
				sorted = false
				break
			}
		}
		if sorted {
			sortedPeriods++
		}
		return nil
	})
	if sortedPeriods > 0 {
		t.Errorf("%d periods arrived sorted by userId; arrival order should be shuffled", sortedPeriods)
	}
}

func TestSelectiveQueryFraction(t *testing.T) {
	c := smallMeter()
	rows := c.AllRows()
	for _, frac := range []float64{0.05, 0.12} {
		q := c.Selective(frac)
		matched := 0
		for _, r := range rows {
			if q.Matches(r) {
				matched++
			}
		}
		got := float64(matched) / float64(len(rows))
		if math.Abs(got-frac) > frac*0.5 {
			t.Errorf("Selective(%v) matched %.4f of records", frac, got)
		}
	}
}

func TestPointQuery(t *testing.T) {
	c := smallMeter()
	rows := c.AllRows()
	q := c.Point()
	matched := 0
	for _, r := range rows {
		if q.Matches(r) {
			matched++
		}
	}
	if matched != c.ReadingsPerDay {
		t.Errorf("point query matched %d records, want %d", matched, c.ReadingsPerDay)
	}
}

func TestQueryRangesAgreeWithMatches(t *testing.T) {
	c := smallMeter()
	rows := c.AllRows()
	q := c.Selective(0.05)
	ranges := q.Ranges()
	for _, r := range rows[:2000] {
		inRanges := ranges["userid"].Contains(r[0]) &&
			ranges["regionid"].Contains(r[1]) &&
			ranges["ts"].Contains(r[2])
		if inRanges != q.Matches(r) {
			t.Fatalf("Ranges and Matches disagree on %v", r[:3])
		}
	}
	if q.WhereClause() == "" {
		t.Error("empty WHERE clause")
	}
}

func TestUserInfoRows(t *testing.T) {
	c := smallMeter()
	rows := c.UserInfoRows()
	if len(rows) != c.Users {
		t.Fatalf("user rows = %d", len(rows))
	}
	if rows[0][0].I != 1 || rows[0][1].S == "" {
		t.Errorf("first user = %v", rows[0])
	}
	if rows[41][2].I != c.RegionOf(42) {
		t.Error("user region mismatch with meter data")
	}
}

func TestTPCHGeneration(t *testing.T) {
	c := TPCHConfig{Rows: 20000, Seed: 7}
	rows := c.AllLineitemRows()
	if len(rows) != c.Rows {
		t.Fatalf("rows = %d", len(rows))
	}
	// Domains.
	for _, r := range rows[:5000] {
		if r[4].F < 1 || r[4].F > 50 {
			t.Fatalf("l_quantity %v out of domain", r[4].F)
		}
		if r[6].F < 0 || r[6].F > 0.10 {
			t.Fatalf("l_discount %v out of domain", r[6].F)
		}
	}
	// Q6 selectivity is near the analytic value (1/7)*(3/11)*(23/50).
	matched := 0
	for _, r := range rows {
		if Q6Matches(r) {
			matched++
		}
	}
	frac := float64(matched) / float64(len(rows))
	want := (1.0 / 7) * (3.0 / 11) * (23.0 / 50)
	if math.Abs(frac-want) > want*0.3 {
		t.Errorf("Q6 selectivity = %.4f, want about %.4f", frac, want)
	}
	// Not sorted by ship date (uniform scatter).
	sorted := true
	for i := 1; i < 1000; i++ {
		if rows[i][8].I < rows[i-1][8].I {
			sorted = false
			break
		}
	}
	if sorted {
		t.Error("lineitem unexpectedly sorted by shipdate")
	}
}

func TestQ6RangesAgree(t *testing.T) {
	c := TPCHConfig{Rows: 5000, Seed: 9}
	rows := c.AllLineitemRows()
	ranges := Q6Ranges()
	for _, r := range rows {
		inRanges := ranges["l_shipdate"].Contains(r[8]) &&
			ranges["l_discount"].Contains(r[6]) &&
			ranges["l_quantity"].Contains(r[4])
		if inRanges != Q6Matches(r) {
			t.Fatalf("ranges and matcher disagree on %v", r)
		}
	}
}
