package trace

// Metric registry: the fixed universe of Prometheus family and label
// names this process may expose. The promlabels analyzer (cmd/dgflint)
// checks every PromWriter call site against these two const blocks, so
// adding a metric means adding it here first — which is the point: the
// exposition size of /metrics stays bounded by this file, never by
// traffic. Histogram "le" and the terminal "_bucket"/"_sum"/"_count"
// suffixes are minted by PromWriter itself and are not call-site inputs.

// Families every emitter must draw from.
//
//dgflint:metric-registry
const (
	MetricUptimeSeconds        = "dgf_uptime_seconds"
	MetricDraining             = "dgf_draining"
	MetricInFlight             = "dgf_in_flight"
	MetricAdmissionQueueDepth  = "dgf_admission_queue_depth"
	MetricRejectedTotal        = "dgf_rejected_total"
	MetricLoadsTotal           = "dgf_loads_total"
	MetricRowsLoadedTotal      = "dgf_rows_loaded_total"
	MetricResultInvalidations  = "dgf_result_invalidations_total"
	MetricSlowTracesTotal      = "dgf_slow_traces_total"
	MetricQueriesTotal         = "dgf_queries_total"
	MetricQueryErrorsTotal     = "dgf_query_errors_total"
	MetricQueryTimeoutsTotal   = "dgf_query_timeouts_total"
	MetricCacheHitsTotal       = "dgf_cache_hits_total"
	MetricRecordsReadTotal     = "dgf_records_read_total"
	MetricBytesReadTotal       = "dgf_bytes_read_total"
	MetricRowsOutTotal         = "dgf_rows_out_total"
	MetricSimClusterSeconds    = "dgf_sim_cluster_seconds_total"
	MetricQueryLatencyMs       = "dgf_query_latency_ms"
	MetricAdmissionWaitMs      = "dgf_admission_wait_ms"
	MetricResultCacheEntries   = "dgf_result_cache_entries"
	MetricResultCacheHits      = "dgf_result_cache_hits_total"
	MetricResultCacheMisses    = "dgf_result_cache_misses_total"
	MetricResultCacheEvictions = "dgf_result_cache_evictions_total"
	MetricPlanCacheEntries     = "dgf_plan_cache_entries"
	MetricPlanCacheHits        = "dgf_plan_cache_hits_total"
	MetricPlanCacheMisses      = "dgf_plan_cache_misses_total"
	MetricPlanCacheEvictions   = "dgf_plan_cache_evictions_total"
	MetricShardLiveReplicas    = "dgf_shard_live_replicas"
	MetricReplicaLive          = "dgf_replica_live"
	MetricReplicaInflight      = "dgf_replica_inflight"
	MetricReplicaConsecFails   = "dgf_replica_consecutive_failures"
	MetricPathQueriesTotal     = "dgf_path_queries_total"
	MetricPathRecordsRead      = "dgf_path_records_read_total"
	MetricPathBytesRead        = "dgf_path_bytes_read_total"
	MetricPathSimSeconds       = "dgf_path_sim_seconds_total"
	MetricWALRowsApplied       = "dgf_wal_rows_applied_total"
	MetricWALReplayedRows      = "dgf_wal_replayed_rows_total"
	MetricWALHintedRecords     = "dgf_wal_hinted_records_total"
	MetricWALPendingRecords    = "dgf_wal_pending_records"
	MetricWALLastLSN           = "dgf_wal_last_lsn"
	MetricWALAppliedLSN        = "dgf_wal_applied_lsn"
	MetricWALReplicaCatchingUp = "dgf_wal_replica_catching_up"
)

// Label names every emitter must draw from. Three labels, all with
// topology-bounded value sets (shard count, replica count, the fixed
// access-path vocabulary) — never request-derived.
//
//dgflint:metric-labels
const (
	LabelShard   = "shard"
	LabelReplica = "replica"
	LabelPath    = "path"
)
