package trace

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric is one parsed sample: a metric name, its label set, and a value.
type Metric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricFamily is one parsed family: the # TYPE declaration plus every
// sample that belongs to it (histogram families include their _bucket,
// _sum, and _count series).
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Metric
}

// ParseMetrics is a promtool-style validating parser for the Prometheus
// text exposition format, strict enough to catch the mistakes a
// hand-written exporter can make: samples without a # TYPE declaration,
// interleaved families, malformed label syntax, unparsable values,
// duplicate label sets, and histograms whose buckets are non-cumulative or
// missing the +Inf/_sum/_count series. It exists so tests can validate
// /metrics output without an external promtool binary.
func ParseMetrics(text string) (map[string]*MetricFamily, error) {
	families := make(map[string]*MetricFamily)
	var current string
	seen := make(map[string]bool) // family name -> closed (a new family started after it)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, lineNo, families, &current, seen); err != nil {
				return nil, err
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(families, name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if fam.Name != current {
			return nil, fmt.Errorf("line %d: sample %q interleaved into family %q", lineNo, name, current)
		}
		fam.Samples = append(fam.Samples, Metric{Name: name, Labels: labels, Value: value})
	}
	for _, fam := range families {
		if err := validateFamily(fam); err != nil {
			return nil, err
		}
	}
	return families, nil
}

func parseComment(line string, lineNo int, families map[string]*MetricFamily, current *string, seen map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if f, ok := families[name]; ok {
			f.Help = help
		} else {
			families[name] = &MetricFamily{Name: name, Help: help}
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("line %d: malformed # TYPE line", lineNo)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		if seen[name] {
			return fmt.Errorf("line %d: family %q declared twice", lineNo, name)
		}
		f, ok := families[name]
		if !ok {
			f = &MetricFamily{Name: name}
			families[name] = f
		}
		if f.Type != "" {
			return fmt.Errorf("line %d: family %q declared twice", lineNo, name)
		}
		f.Type = typ
		if *current != "" {
			seen[*current] = true
		}
		*current = name
	}
	return nil
}

// familyOf resolves a sample name to its declared family, accounting for
// the _bucket/_sum/_count series histograms and summaries add.
func familyOf(families map[string]*MetricFamily, name string) *MetricFamily {
	if f, ok := families[name]; ok && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels = make(map[string]string)
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			if !validLabelName(key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			val, remainder, ok := scanQuoted(rest)
			if !ok {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			if _, dup := labels[key]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q in %q", key, line)
			}
			labels[key] = val
			rest = remainder
		}
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; this exporter never emits one, and
	// the parser rejects it to keep the contract tight.
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	value, err = parsePromFloat(rest)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// scanQuoted consumes a double-quoted string with \\, \", and \n escapes,
// returning the unescaped value and the remainder after the closing quote.
func scanQuoted(s string) (val, rest string, ok bool) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", false
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validateFamily(fam *MetricFamily) error {
	if fam.Type == "" {
		return fmt.Errorf("family %q has # HELP but no # TYPE", fam.Name)
	}
	if len(fam.Samples) == 0 {
		return fmt.Errorf("family %q declared but has no samples", fam.Name)
	}
	dup := make(map[string]bool)
	for _, m := range fam.Samples {
		key := m.Name + "\x00" + labelKey(m.Labels)
		if dup[key] {
			return fmt.Errorf("family %q: duplicate sample %s{%s}", fam.Name, m.Name, labelKey(m.Labels))
		}
		dup[key] = true
	}
	if fam.Type == "histogram" {
		return validateHistogram(fam)
	}
	return nil
}

// validateHistogram checks each label-partition of a histogram family for
// cumulative buckets ending in +Inf, with _count equal to the +Inf bucket.
func validateHistogram(fam *MetricFamily) error {
	type series struct {
		bounds   []float64
		cumul    []float64
		count    float64
		hasCount bool
		hasSum   bool
	}
	parts := make(map[string]*series)
	part := func(labels map[string]string) *series {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := labelKey(rest)
		if parts[key] == nil {
			parts[key] = &series{}
		}
		return parts[key]
	}
	for _, m := range fam.Samples {
		switch m.Name {
		case fam.Name + "_bucket":
			le, ok := m.Labels["le"]
			if !ok {
				return fmt.Errorf("family %q: bucket sample without le label", fam.Name)
			}
			bound, err := parsePromFloat(le)
			if err != nil {
				return fmt.Errorf("family %q: bad le %q", fam.Name, le)
			}
			p := part(m.Labels)
			p.bounds = append(p.bounds, bound)
			p.cumul = append(p.cumul, m.Value)
		case fam.Name + "_sum":
			part(m.Labels).hasSum = true
		case fam.Name + "_count":
			p := part(m.Labels)
			p.hasCount = true
			p.count = m.Value
		default:
			return fmt.Errorf("family %q: unexpected histogram sample %q", fam.Name, m.Name)
		}
	}
	for key, p := range parts {
		if !p.hasSum || !p.hasCount {
			return fmt.Errorf("family %q{%s}: missing _sum or _count", fam.Name, key)
		}
		if len(p.bounds) == 0 {
			return fmt.Errorf("family %q{%s}: no buckets", fam.Name, key)
		}
		if !sort.Float64sAreSorted(p.bounds) {
			return fmt.Errorf("family %q{%s}: bucket bounds not sorted", fam.Name, key)
		}
		if !math.IsInf(p.bounds[len(p.bounds)-1], 1) {
			return fmt.Errorf("family %q{%s}: missing +Inf bucket", fam.Name, key)
		}
		for i := 1; i < len(p.cumul); i++ {
			if p.cumul[i] < p.cumul[i-1] {
				return fmt.Errorf("family %q{%s}: buckets not cumulative", fam.Name, key)
			}
		}
		if inf := p.cumul[len(p.cumul)-1]; inf != p.count {
			return fmt.Errorf("family %q{%s}: _count %v != +Inf bucket %v", fam.Name, key, p.count, inf)
		}
	}
	return nil
}

func labelKey(labels map[string]string) string {
	pairs := make([]string, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}
