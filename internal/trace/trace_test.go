package trace

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	start := time.Now()
	root := NewAt("query", start)
	root.Set("sql", "SELECT 1")
	child := root.ChildAt("execute", start.Add(2*time.Millisecond))
	child.Set("bytes_read", int64(4096))
	child.Eventf("split %d done", 7)
	child.FinishAt(start.Add(8 * time.Millisecond))
	root.FinishAt(start.Add(10 * time.Millisecond))

	if got := root.Wall(); got != 10*time.Millisecond {
		t.Fatalf("root wall = %v, want 10ms", got)
	}
	snap := root.Snapshot()
	if snap.Name != "query" || snap.WallMs != 10 {
		t.Fatalf("root snapshot = %+v", snap)
	}
	if snap.Attr("sql") != "SELECT 1" {
		t.Fatalf("sql attr = %q", snap.Attr("sql"))
	}
	ex := snap.Find("execute")
	if ex == nil {
		t.Fatal("execute span missing")
	}
	if ex.StartOffsetMs != 2 || ex.WallMs != 6 {
		t.Fatalf("execute offsets = %+v", ex)
	}
	if ex.Attr("bytes_read") != "4096" {
		t.Fatalf("bytes_read attr = %q", ex.Attr("bytes_read"))
	}
	if len(ex.Events) != 1 || ex.Events[0].Msg != "split 7 done" {
		t.Fatalf("events = %+v", ex.Events)
	}
	var walked []string
	snap.Walk(func(sn *SpanSnapshot) { walked = append(walked, sn.Name) })
	if len(walked) != 2 || walked[0] != "query" || walked[1] != "execute" {
		t.Fatalf("walk order = %v", walked)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("Child on nil span should return nil")
	}
	s.Set("k", "v")
	s.Eventf("boom")
	s.Finish()
	if s.Wall() != 0 {
		t.Fatal("nil wall should be zero")
	}
	if snap := s.Snapshot(); snap.Name != "" {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span should not ride context")
	}
}

func TestSpanContext(t *testing.T) {
	root := New("q")
	ctx := NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("span did not ride context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should yield nil span")
	}
}

func TestSpanEventCap(t *testing.T) {
	s := New("caps")
	for i := 0; i < maxEvents+5; i++ {
		s.Eventf("e%d", i)
	}
	s.Finish()
	snap := s.Snapshot()
	if len(snap.Events) != maxEvents {
		t.Fatalf("kept %d events, want %d", len(snap.Events), maxEvents)
	}
	if snap.DroppedEvents != 5 {
		t.Fatalf("dropped = %d, want 5", snap.DroppedEvents)
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	start := time.Now()
	s := NewAt("q", start)
	s.FinishAt(start.Add(5 * time.Millisecond))
	s.FinishAt(start.Add(50 * time.Millisecond))
	if got := s.Wall(); got != 5*time.Millisecond {
		t.Fatalf("wall = %v, want first finish to win", got)
	}
}

func TestSpanConcurrent(t *testing.T) {
	root := New("q")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			c := root.Child(fmt.Sprintf("shard %d", g))
			c.Set("replica", g)
			c.Eventf("working")
			c.Finish()
			_ = root.Snapshot()
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	root.Finish()
	if got := len(root.Snapshot().Children); got != 8 {
		t.Fatalf("children = %d, want 8", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Add(Record{SQL: fmt.Sprintf("q%d", i)})
	}
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("retained %d, want 3", len(snaps))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if snaps[i].SQL != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", i, snaps[i].SQL, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestRecorderDisabled(t *testing.T) {
	r := NewRecorder(0)
	if r != nil {
		t.Fatal("size 0 should disable the recorder")
	}
	r.Add(Record{SQL: "q"})
	if r.Snapshot() != nil || r.Total() != 0 {
		t.Fatal("nil recorder should no-op")
	}
}

func TestPromWriterRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewPromWriter(&b)
	w.Counter("dgf_queries_total", "Total queries.", nil, 42)
	w.Gauge("dgf_in_flight", "Queries executing now.", nil, 3)
	w.CounterVec("dgf_path_queries_total", "Queries by access path.", "path",
		map[string]float64{"dgfindex": 10, "scan": 2})
	w.GaugeHead("dgf_replica_live", "Replica liveness.")
	w.GaugeRow("dgf_replica_live", map[string]string{"shard": "0", "replica": "1"}, 1)
	w.Histogram("dgf_query_latency_ms", "Latency.", []float64{1, 5}, []int64{2, 1, 4}, 123.5)
	if w.Err() != nil {
		t.Fatalf("writer error: %v", w.Err())
	}
	fams, err := ParseMetrics(b.String())
	if err != nil {
		t.Fatalf("round trip failed to parse: %v\n%s", err, b.String())
	}
	if fams["dgf_queries_total"].Samples[0].Value != 42 {
		t.Fatalf("counter = %+v", fams["dgf_queries_total"].Samples)
	}
	paths := fams["dgf_path_queries_total"]
	if len(paths.Samples) != 2 || paths.Samples[0].Labels["path"] != "dgfindex" {
		t.Fatalf("counter vec = %+v", paths.Samples)
	}
	hist := fams["dgf_query_latency_ms"]
	var inf, count, sum float64
	for _, m := range hist.Samples {
		switch {
		case m.Name == "dgf_query_latency_ms_bucket" && m.Labels["le"] == "+Inf":
			inf = m.Value
		case m.Name == "dgf_query_latency_ms_count":
			count = m.Value
		case m.Name == "dgf_query_latency_ms_sum":
			sum = m.Value
		}
	}
	if inf != 7 || count != 7 || sum != 123.5 {
		t.Fatalf("histogram inf=%v count=%v sum=%v", inf, count, sum)
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var b strings.Builder
	w := NewPromWriter(&b)
	w.Counter("dgf_x_total", "Help with\nnewline and \\ slash.",
		map[string]string{"sql": "SELECT \"a\\b\"\nFROM t"}, 1)
	if w.Err() != nil {
		t.Fatalf("writer error: %v", w.Err())
	}
	fams, err := ParseMetrics(b.String())
	if err != nil {
		t.Fatalf("escaped output failed to parse: %v\n%s", err, b.String())
	}
	got := fams["dgf_x_total"].Samples[0].Labels["sql"]
	if got != "SELECT \"a\\b\"\nFROM t" {
		t.Fatalf("label round trip = %q", got)
	}
}

func TestParseMetricsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":        "dgf_x_total 1\n",
		"bad value":      "# HELP dgf_x_total x\n# TYPE dgf_x_total counter\ndgf_x_total banana\n",
		"bad label":      "# TYPE dgf_x_total counter\ndgf_x_total{le=1} 1\n",
		"duplicate":      "# TYPE dgf_x_total counter\ndgf_x_total 1\ndgf_x_total 2\n",
		"empty family":   "# TYPE dgf_x_total counter\n",
		"redeclared":     "# TYPE dgf_x counter\ndgf_x 1\n# TYPE dgf_x gauge\ndgf_x 2\n",
		"interleaved":    "# TYPE dgf_a counter\n# TYPE dgf_b counter\ndgf_b 1\ndgf_a 1\n",
		"bad type":       "# TYPE dgf_x_total widget\ndgf_x_total 1\n",
		"no inf bucket":  "# TYPE dgf_h histogram\ndgf_h_bucket{le=\"1\"} 1\ndgf_h_sum 1\ndgf_h_count 1\n",
		"not cumulative": "# TYPE dgf_h histogram\ndgf_h_bucket{le=\"1\"} 5\ndgf_h_bucket{le=\"+Inf\"} 3\ndgf_h_sum 1\ndgf_h_count 3\n",
		"count mismatch": "# TYPE dgf_h histogram\ndgf_h_bucket{le=\"+Inf\"} 3\ndgf_h_sum 1\ndgf_h_count 4\n",
	}
	for name, text := range cases {
		if _, err := ParseMetrics(text); err == nil {
			t.Errorf("%s: expected parse error, got none", name)
		}
	}
}

func TestParseMetricsValues(t *testing.T) {
	text := "# TYPE dgf_g gauge\ndgf_g{a=\"x\",b=\"y\"} +Inf\n"
	fams, err := ParseMetrics(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m := fams["dgf_g"].Samples[0]
	if !math.IsInf(m.Value, 1) || m.Labels["a"] != "x" || m.Labels["b"] != "y" {
		t.Fatalf("sample = %+v", m)
	}
}
