package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PromWriter renders the Prometheus text exposition format (version 0.0.4)
// with no external dependency: each helper emits the # HELP / # TYPE
// preamble followed by samples. Metric families must be written as a unit
// (all samples of one name together), which the per-family helpers enforce
// by construction.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w. Write errors are sticky: the first one is
// remembered and returned by Err, so callers check once at the end.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter writes a single-sample counter family.
func (p *PromWriter) Counter(name, help string, labels map[string]string, value float64) {
	p.header(name, help, "counter")
	p.sample(name, labels, value)
}

// Gauge writes a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, value float64) {
	p.header(name, help, "gauge")
	p.sample(name, labels, value)
}

// CounterVec writes a counter family with one sample per label value.
// labelName is the single varying label; values map label value → sample.
// Values are emitted in sorted label order so scrapes are deterministic.
func (p *PromWriter) CounterVec(name, help, labelName string, values map[string]float64) {
	p.header(name, help, "counter")
	for _, k := range sortedKeys(values) {
		p.sample(name, map[string]string{labelName: k}, values[k])
	}
}

// GaugeRow writes one sample of an already-headed gauge family. Callers
// open the family with GaugeHead then emit rows, for families whose label
// sets vary per sample (shard+replica).
func (p *PromWriter) GaugeRow(name string, labels map[string]string, value float64) {
	p.sample(name, labels, value)
}

// GaugeHead writes the preamble of a multi-sample gauge family.
func (p *PromWriter) GaugeHead(name, help string) {
	p.header(name, help, "gauge")
}

// Histogram writes a histogram family from explicit finite upper bounds and
// per-slot counts, where counts has one more slot than bounds (the last is
// the +Inf overflow). sum is the total of all observations in the
// histogram's unit.
func (p *PromWriter) Histogram(name, help string, bounds []float64, counts []int64, sum float64) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		p.sample(name+"_bucket", map[string]string{"le": formatFloat(b)}, float64(cum))
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	p.sample(name+"_bucket", map[string]string{"le": "+Inf"}, float64(cum))
	p.sample(name+"_sum", nil, sum)
	p.sample(name+"_count", nil, float64(cum))
}

func (p *PromWriter) sample(name string, labels map[string]string, value float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatFloat(value))
		return
	}
	pairs := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		pairs = append(pairs, k+`="`+escapeLabel(labels[k])+`"`)
	}
	p.printf("%s{%s} %s\n", name, strings.Join(pairs, ","), formatFloat(value))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`, "\"", `\"`).Replace(s)
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
