// Package trace is the zero-dependency tracing and metrics layer of the
// serving stack. A per-request Span tree rides the context.Context the query
// path already threads end to end: the server opens the root at admission,
// the shard router hangs one child per targeted shard under a scatter span,
// each warehouse records its access-path decision and read volumes, and the
// mapreduce engine annotates split-level progress — so a finished query
// renders as a structured timing tree attributing wall and simulated time to
// the layer that spent it.
//
// Every Span method is nil-receiver safe: code instruments unconditionally
// (`trace.FromContext(ctx).Child("scatter")`) and pays nothing but a nil
// check when no trace is active on the request.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// maxEvents bounds the point-in-time annotations one span retains: a scan
// over thousands of splits must not turn its trace into a transcript. Past
// the cap events are counted, not stored, and Snapshot reports the drop.
const maxEvents = 32

// Attr is one key/value annotation on a span. Values are stored rendered:
// the tree is an observability artifact, not a typed data channel.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one timestamped annotation (a failover retry, a replica
// ejection, a split completion).
type Event struct {
	At  time.Time
	Msg string
}

// Span is one timed node of a request's trace tree. All methods are safe
// for concurrent use and safe on a nil receiver.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time // zero while unfinished
	attrs    []Attr
	events   []Event
	dropped  int
	children []*Span
}

// New opens a root span starting now.
func New(name string) *Span { return NewAt(name, time.Now()) }

// NewAt opens a root span with an explicit start time, for callers that
// timestamped the request before deciding to trace it (the server's
// admission clock): the root's wall duration then equals the served wall
// time exactly, not up to the gap between the two clock reads.
func NewAt(name string, start time.Time) *Span {
	return &Span{name: name, start: start}
}

// Child opens a sub-span starting now. A nil receiver returns nil, so call
// sites never guard.
func (s *Span) Child(name string) *Span { return s.ChildAt(name, time.Now()) }

// ChildAt opens a sub-span with an explicit start time (work that began
// before the caller reached its instrumentation point).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish marks the span complete. Idempotent: the first call wins.
func (s *Span) Finish() { s.FinishAt(time.Now()) }

// FinishAt is Finish with an explicit end time.
func (s *Span) FinishAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = end
	}
	s.mu.Unlock()
}

// Wall is the span's duration: end minus start once finished, elapsed time
// so far while running. Zero on a nil span.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Set records one key/value annotation, rendering the value to text. A
// repeated key overwrites (the final value of an attribute wins — a span
// sets access_path once at planning and read volumes once at completion).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	var text string
	switch v := value.(type) {
	case string:
		text = v
	case int:
		text = strconv.Itoa(v)
	case int64:
		text = strconv.FormatInt(v, 10)
	case float64:
		text = strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		text = strconv.FormatBool(v)
	case time.Duration:
		text = v.String()
	default:
		text = fmt.Sprintf("%v", value)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = text
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: text})
}

// Eventf records one timestamped annotation. Past maxEvents the event is
// counted but not stored (Snapshot reports how many were dropped), so a
// thousand-split scan stays a bounded trace.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= maxEvents {
		s.dropped++
		return
	}
	s.events = append(s.events, Event{At: time.Now(), Msg: fmt.Sprintf(format, args...)})
}

// SpanSnapshot is a deep, immutable copy of a span subtree, JSON-ready for
// /query?trace=1 responses and the slow-query flight recorder. Offsets are
// milliseconds relative to the snapshot root's start, so the tree reads as
// a timeline.
type SpanSnapshot struct {
	Name          string          `json:"name"`
	StartOffsetMs float64         `json:"start_offset_ms"`
	WallMs        float64         `json:"wall_ms"`
	Attrs         []Attr          `json:"attrs,omitempty"`
	Events        []EventSnapshot `json:"events,omitempty"`
	DroppedEvents int             `json:"dropped_events,omitempty"`
	Children      []SpanSnapshot  `json:"children,omitempty"`
}

// EventSnapshot is one event with its offset from the snapshot root.
type EventSnapshot struct {
	OffsetMs float64 `json:"offset_ms"`
	Msg      string  `json:"msg"`
}

// Snapshot deep-copies the span subtree. Safe to call on a running span
// (unfinished spans report their elapsed time so far) and on nil (zero
// snapshot).
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	base := s.start
	s.mu.Unlock()
	return s.snapshotRel(base)
}

func (s *Span) snapshotRel(base time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:          s.name,
		StartOffsetMs: durMs(s.start.Sub(base)),
		Attrs:         append([]Attr(nil), s.attrs...),
		DroppedEvents: s.dropped,
	}
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	snap.WallMs = durMs(end.Sub(s.start))
	for _, e := range s.events {
		snap.Events = append(snap.Events, EventSnapshot{OffsetMs: durMs(e.At.Sub(base)), Msg: e.Msg})
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshotRel(base))
	}
	return snap
}

// Attr returns the named attribute's rendered value ("" when absent).
func (sn SpanSnapshot) Attr(key string) string {
	for _, a := range sn.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Find returns the first span named name in a depth-first walk of the
// subtree (nil when absent).
func (sn *SpanSnapshot) Find(name string) *SpanSnapshot {
	if sn.Name == name {
		return sn
	}
	for i := range sn.Children {
		if f := sn.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits every span of the subtree depth-first.
func (sn *SpanSnapshot) Walk(fn func(*SpanSnapshot)) {
	fn(sn)
	for i := range sn.Children {
		sn.Children[i].Walk(fn)
	}
}

func durMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

type ctxKey struct{}

// NewContext returns ctx carrying s. A nil span returns ctx unchanged, so
// untraced requests pay no context allocation.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span riding ctx, or nil — and nil composes: every
// Span method no-ops on it.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
