package trace

import (
	"sync"
	"time"
)

// Record is one flight-recorder entry: a finished query that crossed the
// slow threshold or errored, with its full span tree.
type Record struct {
	Time    time.Time    `json:"time"`
	SQL     string       `json:"sql"`
	Session string       `json:"session,omitempty"`
	Error   string       `json:"error,omitempty"`
	WallMs  float64      `json:"wall_ms"`
	Slow    bool         `json:"slow"`
	Trace   SpanSnapshot `json:"trace"`
}

// Recorder is a bounded ring buffer of slow/errored query traces — the
// flight recorder. When full, a new record evicts the oldest; Total keeps
// counting past the cap so operators can tell "ring is full" from "only N
// slow queries ever".
type Recorder struct {
	mu    sync.Mutex
	ring  []Record
	next  int
	count int
	total int64
}

// NewRecorder returns a recorder retaining the size most recent records.
// size <= 0 returns nil, and a nil *Recorder no-ops on every method, so a
// disabled flight recorder costs nothing at call sites.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		return nil
	}
	return &Recorder{ring: make([]Record, size)}
}

// Add appends a record, evicting the oldest when full.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained records newest-first.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Total is the count of records ever added, including those evicted.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
