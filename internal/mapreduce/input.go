package mapreduce

import (
	"fmt"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// FileSplit adapts a dfs.Split to the InputSplit interface.
type FileSplit struct {
	dfs.Split
}

// Label implements InputSplit.
func (s FileSplit) Label() string { return s.Split.String() }

// TextInput reads TextFile tables: every line is one record whose Offset is
// the line's byte position in its file (BLOCK_OFFSET_INSIDE_FILE for
// TextFile in Hive).
type TextInput struct {
	FS *dfs.FS
	// Dir is scanned for data files when Paths is empty.
	Dir string
	// Paths selects explicit files.
	Paths []string
	// SplitFilter, when set, keeps only the splits it returns true for.
	// Hive's index machinery plugs in here (the paper's Algorithm 4 runs in
	// getSplits).
	SplitFilter func(dfs.Split) bool
}

// Splits implements InputFormat.
func (t *TextInput) Splits() ([]InputSplit, error) {
	raw, err := rawSplits(t.FS, t.Dir, t.Paths)
	if err != nil {
		return nil, err
	}
	var out []InputSplit
	for _, s := range raw {
		if t.SplitFilter == nil || t.SplitFilter(s) {
			out = append(out, FileSplit{s})
		}
	}
	return out, nil
}

// Open implements InputFormat.
func (t *TextInput) Open(split InputSplit) (RecordReader, error) {
	fsplit, ok := split.(FileSplit)
	if !ok {
		return nil, fmt.Errorf("mapreduce: TextInput cannot open %T", split)
	}
	r, err := t.FS.Open(fsplit.Path)
	if err != nil {
		return nil, err
	}
	return &textReader{
		path: fsplit.Path,
		lr:   storage.NewLineReader(r, fsplit.Start, fsplit.End()),
	}, nil
}

type textReader struct {
	path string
	lr   *storage.LineReader
}

func (t *textReader) Next() (Record, bool, error) {
	line, off, ok := t.lr.Next()
	if !ok {
		return Record{}, false, nil
	}
	return Record{Data: line, Path: t.path, Offset: off}, true, nil
}

func (t *textReader) BytesRead() int64 { return t.lr.BytesRead() }
func (t *textReader) Seeks() int64     { return 0 }

func rawSplits(fs *dfs.FS, dir string, paths []string) ([]dfs.Split, error) {
	if len(paths) > 0 {
		var out []dfs.Split
		for _, p := range paths {
			s, err := fs.Splits(p)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	}
	return fs.DirSplits(dir)
}

// RCInput reads RCFile tables: every stored row is one record. Record.Offset
// is the start offset of the row's row group (what Hive's Compact Index
// records for RCFile tables) and RowInBlock is the row's position within the
// group (what the Bitmap Index records).
type RCInput struct {
	FS     *dfs.FS
	Dir    string
	Paths  []string
	Schema *storage.Schema
	// SplitFilter filters splits like TextInput.SplitFilter.
	SplitFilter func(dfs.Split) bool
	// GroupFilter, when set, skips row groups whose start offset it rejects
	// (Compact Index offset filtering).
	GroupFilter func(path string, offset int64) bool
	// RowFilter, when set, skips rows by their position in the group
	// (Bitmap Index row filtering).
	RowFilter func(path string, offset int64, row int) bool
	// Project, when set, fetches only the flagged columns' payloads
	// (column-projection pushdown). Records then carry only the decoded
	// Row — with zero values in unprojected cells — and a nil Data.
	Project []bool
	// SkipGroup, when set, prunes row groups by start offset before their
	// payloads are fetched (zone-map / bitmap pruning). Unlike GroupFilter
	// rejections, pruned groups are reported via GroupsSkipped.
	SkipGroup func(path string, offset int64) bool
	// Vector switches readers to batch delivery: one Record per row group
	// with Batch set (Row and Data nil). Ignored when RowFilter is set —
	// row filtering is inherently per-row.
	Vector bool
}

// Splits implements InputFormat.
func (t *RCInput) Splits() ([]InputSplit, error) {
	raw, err := rawSplits(t.FS, t.Dir, t.Paths)
	if err != nil {
		return nil, err
	}
	var out []InputSplit
	for _, s := range raw {
		if t.SplitFilter == nil || t.SplitFilter(s) {
			out = append(out, FileSplit{s})
		}
	}
	return out, nil
}

// Open implements InputFormat.
func (t *RCInput) Open(split InputSplit) (RecordReader, error) {
	fsplit, ok := split.(FileSplit)
	if !ok {
		return nil, fmt.Errorf("mapreduce: RCInput cannot open %T", split)
	}
	r, err := t.FS.Open(fsplit.Path)
	if err != nil {
		return nil, err
	}
	// A row group belongs to the split its start offset falls into, but a
	// group may physically straddle a block boundary. The side group index
	// (the model's stand-in for RCFile sync markers) locates the groups
	// this split owns.
	offsets, err := storage.ReadGroupIndexCached(t.FS, fsplit.Path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: RCInput: missing group index for %s: %w", fsplit.Path, err)
	}
	var own []int64
	for _, off := range offsets {
		if off >= fsplit.Start && off < fsplit.End() {
			own = append(own, off)
		}
	}
	rr := &rcReader{
		in:     t,
		r:      r,
		path:   fsplit.Path,
		groups: own,
		schema: t.Schema,
	}
	if t.Vector && t.RowFilter == nil {
		rr.batch = storage.NewColumnBatch(t.Schema)
	}
	return rr, nil
}

type rcReader struct {
	in     *RCInput
	r      *dfs.FileReader
	path   string
	groups []int64 // start offsets of the groups this reader owns
	next   int     // next index into groups
	schema *storage.Schema

	group     *storage.RowGroup
	rows      []storage.Row
	nextRow   int
	encoded   []byte
	batch     *storage.ColumnBatch // non-nil selects vectorised delivery
	bytesRead int64
	seeks     int64
	skips     int64
}

func (t *rcReader) Next() (Record, bool, error) {
	for {
		if t.group != nil && t.nextRow < len(t.rows) {
			i := t.nextRow
			t.nextRow++
			if t.in.RowFilter != nil && !t.in.RowFilter(t.path, t.group.Offset, i) {
				continue
			}
			rec := Record{Row: t.rows[i], Path: t.path, Offset: t.group.Offset, RowInBlock: i}
			if t.in.Project == nil {
				// Full-width reads also carry the text rendering, which
				// index-construction mappers field-extract from. Projected
				// reads cannot: the encoding would misrepresent the
				// skipped columns.
				t.encoded = storage.AppendTextRow(t.encoded[:0], t.rows[i])
				rec.Data = t.encoded[:len(t.encoded)-1] // strip '\n'
			}
			return rec, true, nil
		}
		// Advance to the next owned group, honouring the filters.
		var off int64 = -1
		for t.next < len(t.groups) {
			candidate := t.groups[t.next]
			t.next++
			if t.in.GroupFilter != nil && !t.in.GroupFilter(t.path, candidate) {
				t.seeks++ // skipping a group forces a reposition
				continue
			}
			if t.in.SkipGroup != nil && t.in.SkipGroup(t.path, candidate) {
				t.seeks++
				t.skips++
				continue
			}
			off = candidate
			break
		}
		if off < 0 {
			return Record{}, false, nil
		}
		if t.batch != nil {
			read, err := storage.ReadGroupColumns(t.r, off, t.schema, t.in.Project, t.batch)
			if err != nil {
				return Record{}, false, err
			}
			t.bytesRead += read
			return Record{Batch: t.batch, Path: t.path, Offset: off}, true, nil
		}
		g, read, err := storage.ReadGroupProjected(t.r, off, t.in.Project)
		if err != nil {
			return Record{}, false, err
		}
		rows, err := g.DecodeRowsProjected(t.schema, t.in.Project)
		if err != nil {
			return Record{}, false, err
		}
		t.bytesRead += read
		t.group, t.rows, t.nextRow = g, rows, 0
	}
}

func (t *rcReader) BytesRead() int64 { return t.bytesRead }
func (t *rcReader) Seeks() int64     { return t.seeks }

// GroupsSkipped implements storage.GroupSkipper: the groups SkipGroup pruned.
func (t *rcReader) GroupsSkipped() int64 { return t.skips }
