// Package mapreduce is the Hadoop-model execution engine that everything in
// this repository runs on: index construction (DGFIndex Algorithms 1 and 2,
// Compact Index population), table scans, aggregations, group-bys and joins.
//
// Jobs execute for real with goroutine parallelism. In addition, every job
// reports *simulated cluster seconds* under a cluster.Config: map tasks are
// scheduled in waves onto the configured map slots (LPT makespan), shuffle
// cost is proportional to intermediate bytes, and reduce tasks are scheduled
// onto reduce slots. The paper's experiment figures are stated in seconds on
// a 29-node cluster; the simulated seconds reproduce the shapes of those
// figures at laptop scale.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// Record is one input record presented to a map function.
type Record struct {
	// Data is the record payload (a text line for TextFile input; an
	// encoded row for RCFile input). Columnar readers with a column
	// projection pushed down leave Data nil — the partial record only
	// exists in decoded form.
	Data []byte
	// Row is the decoded record, when the input format decodes rows anyway
	// (RCFile readers). Map functions should prefer it over re-parsing
	// Data; cells of columns excluded by a projection hold zero values.
	Row storage.Row
	// Batch is one whole decoded row group (vectorised RCFile readers; Row
	// and Data are nil). The reader reuses the batch across records, so a
	// map function must finish with it before returning.
	Batch *storage.ColumnBatch
	// Path is the input file the record came from (INPUT_FILE_NAME in
	// Hive's index-population query, Listing 1 of the paper).
	Path string
	// Offset is the record's BLOCK_OFFSET_INSIDE_FILE: the line start for
	// TextFile, the row-group start for RCFile.
	Offset int64
	// RowInBlock is the row's position within its row group (RCFile only;
	// the Bitmap Index records it).
	RowInBlock int
}

// Emit passes one intermediate or output pair onward.
type Emit func(key string, value []byte)

// MapFunc processes one record.
type MapFunc func(rec Record, emit Emit) error

// ReduceFunc processes one key group.
type ReduceFunc func(key string, values [][]byte, emit Emit) error

// CombineFunc merges the values of one key inside a single map task before
// the shuffle (Hadoop's combiner).
type CombineFunc func(key string, values [][]byte) [][]byte

// Group is one key with all its shuffled values, ordered deterministically.
type Group struct {
	Key    string
	Values [][]byte
}

// ReduceTaskFunc processes one whole reduce partition: the sorted groups of
// that partition plus the task id. Jobs that write their own output files
// (the DGFIndex construction reducer writes data Slices) use this form to
// manage one output file per task, like a Hadoop reducer does.
type ReduceTaskFunc func(task int, groups []Group, emit Emit) error

// RecordReader streams the records of one split.
type RecordReader interface {
	// Next returns the next record; ok is false at end of split.
	Next() (rec Record, ok bool, err error)
	// BytesRead is the payload bytes fetched so far.
	BytesRead() int64
	// Seeks is the number of random repositionings performed (the
	// slice-skipping reader reports them; sequential readers return 0).
	Seeks() int64
}

// InputSplit is an opaque unit of input assigned to one map task.
type InputSplit interface {
	// Label identifies the split in logs and errors.
	Label() string
}

// InputFormat enumerates splits and opens readers, mirroring Hadoop's
// InputFormat/getSplits contract that Hive's index machinery hooks into.
type InputFormat interface {
	Splits() ([]InputSplit, error)
	Open(split InputSplit) (RecordReader, error)
}

// Job describes one MapReduce job.
type Job struct {
	Name  string
	Input InputFormat
	Map   MapFunc
	// Combine, if set, runs per map task on its buffered output.
	Combine CombineFunc
	// Exactly one of Reduce and ReduceTask may be set; if both are nil the
	// job is map-only and map emits flow directly to the output collector.
	Reduce     ReduceFunc
	ReduceTask ReduceTaskFunc
	// NumReducers defaults to 1 when a reduce phase exists.
	NumReducers int
	// Output receives final pairs. Nil output discards them (jobs whose
	// reducers write to the filesystem themselves).
	Output Emit
	// StopEarly, when set, is polled before each split is scheduled and
	// before each scheduled split starts: once it returns true, remaining
	// splits are skipped and the job finishes gracefully with the stats of
	// the splits already processed (no error). This is how a LIMIT cursor
	// stops consuming input once satisfied. It is called from the scheduler
	// and worker goroutines, so it must be safe for concurrent use (an
	// atomic.Bool load, typically).
	StopEarly func() bool
}

// Stats reports the measured work and the simulated cluster time of one job.
type Stats struct {
	Splits       int
	MapTasks     int
	ReduceTasks  int
	InputBytes   int64
	InputRecords int64
	Seeks        int64
	// GroupsSkipped counts row groups pruned by zone maps or bitmap
	// sidecars before their payloads were fetched (vectorised scans).
	GroupsSkipped int64
	ShuffleBytes  int64
	ShufflePairs int64
	OutputPairs  int64

	SimStartupSec float64
	SimMapSec     float64
	SimShuffleSec float64
	SimReduceSec  float64

	Wall time.Duration
}

// SimTotalSec is the simulated end-to-end job time.
func (s Stats) SimTotalSec() float64 {
	return s.SimStartupSec + s.SimMapSec + s.SimShuffleSec + s.SimReduceSec
}

// Add accumulates other into s (multi-job pipelines).
func (s *Stats) Add(other Stats) {
	s.Splits += other.Splits
	s.MapTasks += other.MapTasks
	s.ReduceTasks += other.ReduceTasks
	s.InputBytes += other.InputBytes
	s.InputRecords += other.InputRecords
	s.Seeks += other.Seeks
	s.GroupsSkipped += other.GroupsSkipped
	s.ShuffleBytes += other.ShuffleBytes
	s.ShufflePairs += other.ShufflePairs
	s.OutputPairs += other.OutputPairs
	s.SimStartupSec += other.SimStartupSec
	s.SimMapSec += other.SimMapSec
	s.SimShuffleSec += other.SimShuffleSec
	s.SimReduceSec += other.SimReduceSec
	s.Wall += other.Wall
}

type kvPair struct {
	key   string
	value []byte
}

// mapResult is one split's map-task outcome. ran distinguishes a processed
// split from one skipped by cancellation or StopEarly (whose zero value must
// stay out of the job accounting).
type mapResult struct {
	parts   [][]kvPair // per-reducer partition buffers
	bytes   int64
	records int64
	seeks   int64
	skips   int64 // row groups pruned before reading
	emitted int64 // shuffle bytes from this task
	err     error
	ran     bool
}

// Run executes the job and returns its statistics. It is RunContext under
// context.Background(): the job always runs to completion.
//
//dgflint:compat ctx-free convenience wrapper; run-to-completion is the documented contract
func Run(cfg *cluster.Config, job *Job) (*Stats, error) {
	return RunContext(context.Background(), cfg, job)
}

// RunContext executes the job under ctx. Cancellation is honoured at split
// granularity: a cancelled ctx stops the scheduler from handing out further
// splits and lets the splits already running finish, so the abort lands
// within one split boundary per worker. The returned error then wraps
// ctx.Err() and names the position the scan stopped at; the returned Stats
// are non-nil and describe the work done before the abort (callers that
// surface partial progress — a cursor reporting how far a cancelled scan
// got — read them; callers that want all-or-nothing discard them).
func RunContext(ctx context.Context, cfg *cluster.Config, job *Job) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if job.Input == nil || job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Input and Map", job.Name)
	}
	if job.Reduce != nil && job.ReduceTask != nil {
		return nil, fmt.Errorf("mapreduce: job %q sets both Reduce and ReduceTask", job.Name)
	}
	start := time.Now()
	splits, err := job.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: splits: %w", job.Name, err)
	}

	hasReduce := job.Reduce != nil || job.ReduceTask != nil
	numReducers := job.NumReducers
	if !hasReduce {
		numReducers = 0
	} else if numReducers <= 0 {
		numReducers = 1
	}

	stats := &Stats{Splits: len(splits), MapTasks: len(splits), ReduceTasks: numReducers}
	stats.SimStartupSec = cfg.JobStartupSec

	sp := trace.FromContext(ctx).ChildAt("mapreduce", start)
	sp.Set("job", job.Name)
	defer func() {
		sp.Set("splits", stats.Splits)
		sp.Set("records", stats.InputRecords)
		sp.Set("bytes", stats.InputBytes)
		sp.Set("sim_sec", stats.SimTotalSec())
		sp.Finish()
	}()

	var outMu sync.Mutex
	var outPairs int64
	output := func(key string, value []byte) {
		outMu.Lock()
		outPairs++
		if job.Output != nil {
			job.Output(key, value)
		}
		outMu.Unlock()
	}

	// ---- Map phase ----
	results := make([]mapResult, len(splits))
	pool := runtime.GOMAXPROCS(0)
	if pool > len(splits) {
		pool = len(splits)
	}
	if pool < 1 {
		pool = 1
	}
	stopped := func() bool {
		return ctx.Err() != nil || (job.StopEarly != nil && job.StopEarly())
	}
	var wg sync.WaitGroup
	splitCh := make(chan int)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range splitCh {
				// A split handed out just before cancellation still must
				// not start: the ran flag keeps skipped splits out of the
				// accounting below.
				if stopped() {
					continue
				}
				results[i] = runMapTask(job, splits[i], numReducers, hasReduce, output)
				results[i].ran = true
			}
		}()
	}
feed:
	for i := range splits {
		if stopped() {
			break feed
		}
		select {
		case splitCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(splitCh)
	wg.Wait()

	processed := 0
	mapTimes := make([]float64, 0, len(results))
	for i := range results {
		r := &results[i]
		if !r.ran {
			continue
		}
		if r.err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: map over %s: %w", job.Name, splits[i].Label(), r.err)
		}
		processed++
		stats.InputBytes += r.bytes
		stats.InputRecords += r.records
		stats.Seeks += r.seeks
		stats.GroupsSkipped += r.skips
		stats.ShuffleBytes += r.emitted
		if r.skips > 0 {
			sp.Eventf("split %s: %d records, %d bytes, %d groups skipped", splits[i].Label(), r.records, r.bytes, r.skips)
		} else {
			sp.Eventf("split %s: %d records, %d bytes", splits[i].Label(), r.records, r.bytes)
		}
		mapTimes = append(mapTimes, cfg.ScanTaskSeconds(r.bytes, r.records, r.seeks))
	}
	// Splits/MapTasks report the splits actually consumed: fewer than
	// enumerated when a cursor's LIMIT (or a cancel) stopped the scan early.
	stats.Splits, stats.MapTasks = processed, processed
	if err := ctx.Err(); err != nil {
		sp.Eventf("canceled after %d of %d splits", processed, len(splits))
		stats.Wall = time.Since(start)
		return stats, fmt.Errorf("mapreduce: job %q canceled after %d of %d splits: %w",
			job.Name, processed, len(splits), err)
	}
	if cfg.ScaleFactor > 1 {
		// The in-process data is a sample of the modelled deployment's:
		// cost the phase analytically from scaled aggregate volumes.
		stats.SimMapSec = cfg.ScaledMapSeconds(cluster.PhaseVolumes{
			Bytes: stats.InputBytes, Records: stats.InputRecords, Seeks: stats.Seeks,
		})
	} else {
		stats.SimMapSec = cluster.Makespan(mapTimes, cfg.MapSlots())
	}

	if !hasReduce {
		stats.OutputPairs = outPairs
		stats.Wall = time.Since(start)
		return stats, nil
	}

	// ---- Shuffle: gather, sort, group per reduce partition ----
	stats.SimShuffleSec = cfg.ScaledShuffleSeconds(stats.ShuffleBytes)
	partitions := make([][]kvPair, numReducers)
	for _, r := range results {
		if !r.ran {
			continue
		}
		for p := 0; p < numReducers; p++ {
			partitions[p] = append(partitions[p], r.parts[p]...)
			stats.ShufflePairs += int64(len(r.parts[p]))
		}
	}

	// ---- Reduce phase ----
	type reduceResult struct {
		inBytes int64
		groups  int64
		err     error
	}
	rResults := make([]reduceResult, numReducers)
	rPool := runtime.GOMAXPROCS(0)
	if rPool > numReducers {
		rPool = numReducers
	}
	if rPool < 1 {
		rPool = 1
	}
	taskCh := make(chan int)
	var rwg sync.WaitGroup
	for w := 0; w < rPool; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for p := range taskCh {
				if ctx.Err() != nil {
					rResults[p] = reduceResult{err: ctx.Err()}
					continue
				}
				rResults[p] = runReduceTask(job, p, partitions[p], output)
			}
		}()
	}
rfeed:
	for p := 0; p < numReducers; p++ {
		select {
		case taskCh <- p:
		case <-ctx.Done():
			break rfeed
		}
	}
	close(taskCh)
	rwg.Wait()
	if err := ctx.Err(); err != nil {
		stats.Wall = time.Since(start)
		return stats, fmt.Errorf("mapreduce: job %q canceled in reduce phase: %w", job.Name, err)
	}

	reduceTimes := make([]float64, 0, numReducers)
	var reduceBytes, reduceGroups int64
	for p, r := range rResults {
		if r.err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: reduce task %d: %w", job.Name, p, r.err)
		}
		reduceTimes = append(reduceTimes, cfg.ReduceTaskSeconds(r.inBytes, r.groups))
		reduceBytes += r.inBytes
		reduceGroups += r.groups
	}
	if cfg.ScaleFactor > 1 {
		stats.SimReduceSec = cfg.ScaledReduceSeconds(reduceBytes, reduceGroups, numReducers)
	} else {
		stats.SimReduceSec = cluster.Makespan(reduceTimes, cfg.ReduceSlots())
	}
	stats.OutputPairs = outPairs
	stats.Wall = time.Since(start)
	return stats, nil
}

func runMapTask(job *Job, split InputSplit, numReducers int, hasReduce bool, output Emit) (res mapResult) {
	reader, err := job.Input.Open(split)
	if err != nil {
		res.err = err
		return res
	}
	res.parts = make([][]kvPair, numReducers)
	emit := output
	if hasReduce {
		emit = func(key string, value []byte) {
			p := partitionOf(key, numReducers)
			// Copy the value: mappers commonly reuse buffers between emits.
			v := make([]byte, len(value))
			copy(v, value)
			res.parts[p] = append(res.parts[p], kvPair{key: key, value: v})
			res.emitted += int64(len(key) + len(v))
		}
	}
	for {
		rec, ok, err := reader.Next()
		if err != nil {
			res.err = err
			return res
		}
		if !ok {
			break
		}
		if rec.Batch != nil {
			res.records += int64(rec.Batch.Rows)
		} else {
			res.records++
		}
		if err := job.Map(rec, emit); err != nil {
			res.err = err
			return res
		}
	}
	res.bytes = reader.BytesRead()
	res.seeks = reader.Seeks()
	if gs, ok := reader.(storage.GroupSkipper); ok {
		res.skips = gs.GroupsSkipped()
	}
	if hasReduce && job.Combine != nil {
		for p := range res.parts {
			res.parts[p], res.emitted = combinePartition(job.Combine, res.parts[p], res.emitted)
		}
	}
	return res
}

func combinePartition(combine CombineFunc, pairs []kvPair, emitted int64) ([]kvPair, int64) {
	if len(pairs) == 0 {
		return pairs, emitted
	}
	sortPairs(pairs)
	out := pairs[:0]
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].key == pairs[i].key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, pairs[k].value)
			emitted -= int64(len(pairs[i].key) + len(pairs[k].value))
		}
		for _, v := range combine(pairs[i].key, values) {
			out = append(out, kvPair{key: pairs[i].key, value: v})
			emitted += int64(len(pairs[i].key) + len(v))
		}
		i = j
	}
	return out, emitted
}

func runReduceTask(job *Job, task int, pairs []kvPair, output Emit) (res struct {
	inBytes int64
	groups  int64
	err     error
}) {
	sortPairs(pairs)
	var groups []Group
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].key == pairs[i].key {
			j++
		}
		g := Group{Key: pairs[i].key, Values: make([][]byte, 0, j-i)}
		for k := i; k < j; k++ {
			g.Values = append(g.Values, pairs[k].value)
			res.inBytes += int64(len(pairs[k].key) + len(pairs[k].value))
		}
		groups = append(groups, g)
		i = j
	}
	res.groups = int64(len(groups))
	if job.ReduceTask != nil {
		res.err = job.ReduceTask(task, groups, output)
		return res
	}
	for _, g := range groups {
		if err := job.Reduce(g.Key, g.Values, output); err != nil {
			res.err = err
			return res
		}
	}
	return res
}

// sortPairs orders pairs by key, with value bytes as a deterministic
// tiebreaker so job output does not depend on goroutine scheduling.
func sortPairs(pairs []kvPair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key != pairs[j].key {
			return pairs[i].key < pairs[j].key
		}
		return string(pairs[i].value) < string(pairs[j].value)
	})
}

func partitionOf(key string, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Collector is a thread-safe output sink for jobs that return results to the
// driver (query jobs).
type Collector struct {
	mu    sync.Mutex
	pairs []Pair
}

// Pair is one collected output record.
type Pair struct {
	Key   string
	Value []byte
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements the job Output signature.
func (c *Collector) Emit(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	c.mu.Lock()
	c.pairs = append(c.pairs, Pair{Key: key, Value: v})
	c.mu.Unlock()
}

// Pairs returns the collected output sorted by key.
func (c *Collector) Pairs() []Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.pairs, func(i, j int) bool {
		if c.pairs[i].Key != c.pairs[j].Key {
			return c.pairs[i].Key < c.pairs[j].Key
		}
		return string(c.pairs[i].Value) < string(c.pairs[j].Value)
	})
	out := make([]Pair, len(c.pairs))
	copy(out, c.pairs)
	return out
}
