package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testCfg() *cluster.Config {
	c := cluster.Default()
	c.Workers = 4
	return c
}

// writeWords writes one file of word lines split across tiny blocks.
func writeWords(t *testing.T, fs *dfs.FS, path string, words []string) {
	t.Helper()
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := storage.NewTextWriter(w)
	for _, word := range words {
		if err := tw.WriteLine([]byte(word)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWordCount(t *testing.T) {
	fs := dfs.New(8) // force several splits
	words := []string{"a", "b", "a", "c", "a", "b", "d", "a", "e", "c", "a", "b"}
	writeWords(t, fs, "/in/words", words)

	col := NewCollector()
	job := &Job{
		Name:  "wordcount",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map: func(rec Record, emit Emit) error {
			emit(string(rec.Data), []byte("1"))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
		NumReducers: 3,
		Output:      col.Emit,
	}
	stats, err := Run(testCfg(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "5", "b": "3", "c": "2", "d": "1", "e": "1"}
	got := map[string]string{}
	for _, p := range col.Pairs() {
		got[p.Key] = string(p.Value)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %s, want %s", k, got[k], v)
		}
	}
	if stats.InputRecords != int64(len(words)) {
		t.Errorf("InputRecords = %d, want %d", stats.InputRecords, len(words))
	}
	if stats.Splits < 2 {
		t.Errorf("expected multiple splits with 32-byte blocks, got %d", stats.Splits)
	}
	if stats.ReduceTasks != 3 {
		t.Errorf("ReduceTasks = %d", stats.ReduceTasks)
	}
	if stats.SimTotalSec() <= 0 {
		t.Error("simulated time must be positive")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	fs := dfs.New(1 << 20)
	var words []string
	for i := 0; i < 500; i++ {
		words = append(words, "same")
	}
	writeWords(t, fs, "/in/f", words)
	run := func(combine CombineFunc) *Stats {
		col := NewCollector()
		stats, err := Run(testCfg(), &Job{
			Name:  "combine",
			Input: &TextInput{FS: fs, Dir: "/in"},
			Map: func(rec Record, emit Emit) error {
				emit(string(rec.Data), []byte("1"))
				return nil
			},
			Combine: combine,
			Reduce: func(key string, values [][]byte, emit Emit) error {
				total := 0
				for _, v := range values {
					n, _ := strconv.Atoi(string(v))
					total += n
				}
				emit(key, []byte(strconv.Itoa(total)))
				return nil
			},
			Output: col.Emit,
		})
		if err != nil {
			t.Fatal(err)
		}
		if p := col.Pairs(); len(p) != 1 || string(p[0].Value) != "500" {
			t.Fatalf("result = %v", p)
		}
		return stats
	}
	plain := run(nil)
	combined := run(func(key string, values [][]byte) [][]byte {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}
	})
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestMapOnlyJob(t *testing.T) {
	fs := dfs.New(64)
	writeWords(t, fs, "/in/f", []string{"x", "y", "z"})
	col := NewCollector()
	stats, err := Run(testCfg(), &Job{
		Name:  "maponly",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map: func(rec Record, emit Emit) error {
			emit(strings.ToUpper(string(rec.Data)), nil)
			return nil
		},
		Output: col.Emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReduceTasks != 0 || stats.SimReduceSec != 0 {
		t.Errorf("map-only job ran a reduce phase: %+v", stats)
	}
	pairs := col.Pairs()
	if len(pairs) != 3 || pairs[0].Key != "X" {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestReduceTaskForm(t *testing.T) {
	fs := dfs.New(1 << 20)
	writeWords(t, fs, "/in/f", []string{"b", "a", "c", "a"})
	var seenTasks []int
	var keys []string
	_, err := Run(testCfg(), &Job{
		Name:  "reducetask",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map: func(rec Record, emit Emit) error {
			emit(string(rec.Data), nil)
			return nil
		},
		ReduceTask: func(task int, groups []Group, emit Emit) error {
			seenTasks = append(seenTasks, task)
			for _, g := range groups {
				keys = append(keys, g.Key)
			}
			return nil
		},
		NumReducers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seenTasks) != 1 || seenTasks[0] != 0 {
		t.Errorf("tasks = %v", seenTasks)
	}
	// Groups arrive key-sorted within the task.
	if !sortedStrings(keys) || len(keys) != 3 {
		t.Errorf("group keys = %v", keys)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestSplitFilter(t *testing.T) {
	fs := dfs.New(16)
	var words []string
	for i := 0; i < 40; i++ {
		words = append(words, fmt.Sprintf("w%02d", i))
	}
	writeWords(t, fs, "/in/f", words)
	all := &TextInput{FS: fs, Dir: "/in"}
	allSplits, _ := all.Splits()
	filtered := &TextInput{FS: fs, Dir: "/in", SplitFilter: func(s dfs.Split) bool {
		return s.Start == 0 // keep only the first split
	}}
	fSplits, _ := filtered.Splits()
	if len(fSplits) != 1 || len(allSplits) <= 1 {
		t.Fatalf("filtering failed: %d of %d", len(fSplits), len(allSplits))
	}
	col := NewCollector()
	stats, err := Run(testCfg(), &Job{
		Name:  "filtered",
		Input: filtered,
		Map: func(rec Record, emit Emit) error {
			emit(string(rec.Data), nil)
			return nil
		},
		Output: col.Emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRecords >= int64(len(words)) {
		t.Errorf("filter did not reduce input: %d records", stats.InputRecords)
	}
}

func TestRCInputRowRecords(t *testing.T) {
	fs := dfs.New(256)
	schema := storage.NewSchema(
		storage.Column{Name: "id", Kind: storage.KindInt64},
		storage.Column{Name: "v", Kind: storage.KindFloat64},
	)
	rows := make([]storage.Row, 50)
	for i := range rows {
		rows[i] = storage.Row{storage.Int64(int64(i)), storage.Float64(float64(i) / 2)}
	}
	if _, err := storage.WriteRCRows(fs, "/rc/f", schema, rows, 8); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	stats, err := Run(testCfg(), &Job{
		Name:  "rcscan",
		Input: &RCInput{FS: fs, Dir: "/rc", Schema: schema},
		Map: func(rec Record, emit Emit) error {
			id, _ := storage.TextFieldBytes(rec.Data, 0)
			emit(string(id), []byte(fmt.Sprintf("%d:%d", rec.Offset, rec.RowInBlock)))
			return nil
		},
		Output: col.Emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRecords != 50 {
		t.Errorf("InputRecords = %d, want 50", stats.InputRecords)
	}
	if len(col.Pairs()) != 50 {
		t.Errorf("pairs = %d, want 50", len(col.Pairs()))
	}
}

func TestRCInputGroupAndRowFilter(t *testing.T) {
	fs := dfs.New(1 << 20)
	schema := storage.NewSchema(storage.Column{Name: "id", Kind: storage.KindInt64})
	rows := make([]storage.Row, 30)
	for i := range rows {
		rows[i] = storage.Row{storage.Int64(int64(i))}
	}
	offsets, err := storage.WriteRCRows(fs, "/rc/f", schema, rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 3 {
		t.Fatalf("want 3 groups, got %d", len(offsets))
	}
	keepGroup := offsets[1]
	col := NewCollector()
	_, err = Run(testCfg(), &Job{
		Name: "rcfiltered",
		Input: &RCInput{
			FS: fs, Dir: "/rc", Schema: schema,
			GroupFilter: func(path string, off int64) bool { return off == keepGroup },
			RowFilter:   func(path string, off int64, row int) bool { return row%2 == 0 },
		},
		Map: func(rec Record, emit Emit) error {
			emit(string(rec.Data), nil)
			return nil
		},
		Output: col.Emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := col.Pairs()
	if len(pairs) != 5 { // rows 10..19, even positions
		t.Fatalf("got %d rows, want 5: %v", len(pairs), pairs)
	}
	if pairs[0].Key != "10" || pairs[4].Key != "18" {
		t.Errorf("unexpected rows: %v", pairs)
	}
}

func TestJobValidation(t *testing.T) {
	cfg := testCfg()
	if _, err := Run(cfg, &Job{Name: "nil-input"}); err == nil {
		t.Error("job without input accepted")
	}
	fs := dfs.New(64)
	writeWords(t, fs, "/in/f", []string{"x"})
	job := &Job{
		Name:       "both-reducers",
		Input:      &TextInput{FS: fs, Dir: "/in"},
		Map:        func(rec Record, emit Emit) error { return nil },
		Reduce:     func(k string, v [][]byte, e Emit) error { return nil },
		ReduceTask: func(t int, g []Group, e Emit) error { return nil },
	}
	if _, err := Run(cfg, job); err == nil {
		t.Error("job with both reduce forms accepted")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	fs := dfs.New(64)
	writeWords(t, fs, "/in/f", []string{"x"})
	_, err := Run(testCfg(), &Job{
		Name:  "maperr",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map: func(rec Record, emit Emit) error {
			return fmt.Errorf("boom")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	fs := dfs.New(16)
	var words []string
	for i := 0; i < 60; i++ {
		words = append(words, fmt.Sprintf("k%d", i%7))
	}
	writeWords(t, fs, "/in/f", words)
	runOnce := func() string {
		col := NewCollector()
		_, err := Run(testCfg(), &Job{
			Name:  "det",
			Input: &TextInput{FS: fs, Dir: "/in"},
			Map: func(rec Record, emit Emit) error {
				emit(string(rec.Data), []byte("1"))
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
			NumReducers: 4,
			Output:      col.Emit,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, p := range col.Pairs() {
			fmt.Fprintf(&b, "%s=%s;", p.Key, p.Value)
		}
		return b.String()
	}
	first := runOnce()
	for i := 0; i < 5; i++ {
		if got := runOnce(); got != first {
			t.Fatalf("run %d differs:\n%s\n%s", i, got, first)
		}
	}
}

// Property: word count totals equal input multiplicity regardless of block
// size and reducer count.
func TestWordCountProperty(t *testing.T) {
	f := func(ids []uint8, bsRaw, redRaw uint8) bool {
		if len(ids) == 0 {
			return true
		}
		fs := dfs.New(int64(bsRaw%60) + 4)
		w, _ := fs.Create("/in/f")
		tw := storage.NewTextWriter(w)
		want := map[string]int{}
		for _, id := range ids {
			key := fmt.Sprintf("k%d", id%13)
			want[key]++
			tw.WriteLine([]byte(key))
		}
		tw.Close()
		col := NewCollector()
		_, err := Run(testCfg(), &Job{
			Name:  "prop",
			Input: &TextInput{FS: fs, Dir: "/in"},
			Map: func(rec Record, emit Emit) error {
				emit(string(rec.Data), []byte("1"))
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
			NumReducers: int(redRaw%5) + 1,
			Output:      col.Emit,
		})
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, p := range col.Pairs() {
			n, _ := strconv.Atoi(string(p.Value))
			got[p.Key] = n
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Splits: 1, InputBytes: 10, SimMapSec: 2}
	b := Stats{Splits: 2, InputBytes: 5, SimMapSec: 3, SimReduceSec: 1}
	a.Add(b)
	if a.Splits != 3 || a.InputBytes != 15 || a.SimTotalSec() != 6 {
		t.Errorf("Add = %+v", a)
	}
}

// TestRunContextCancel: a cancelled ctx stops the scheduler at a split
// boundary and returns partial stats alongside an error wrapping ctx.Err()
// that names the abort position.
func TestRunContextCancel(t *testing.T) {
	fs := dfs.New(8)
	var words []string
	for i := 0; i < 200; i++ {
		words = append(words, fmt.Sprintf("w%03d", i))
	}
	writeWords(t, fs, "/in/words", words)

	// A pre-cancelled ctx: nothing runs, the error wraps context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunContext(ctx, testCfg(), &Job{
		Name:  "cancelled",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map:   func(rec Record, emit Emit) error { return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled after") {
		t.Fatalf("error lacks the split position: %v", err)
	}
	if stats == nil || stats.InputRecords != 0 {
		t.Fatalf("pre-cancelled run stats = %+v", stats)
	}
}

// TestStopEarly: once StopEarly reports true, remaining splits are skipped
// gracefully — no error, stats cover only the consumed splits.
func TestStopEarly(t *testing.T) {
	fs := dfs.New(8) // tiny blocks: many splits
	var words []string
	for i := 0; i < 120; i++ {
		words = append(words, fmt.Sprintf("w%03d", i))
	}
	writeWords(t, fs, "/in/words", words)

	var records atomic.Int64
	var stop atomic.Bool
	stats, err := RunContext(context.Background(), testCfg(), &Job{
		Name:  "stop-early",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map: func(rec Record, emit Emit) error {
			if records.Add(1) >= 5 {
				stop.Store(true)
			}
			return nil
		},
		StopEarly: stop.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputRecords >= int64(len(words)) {
		t.Fatalf("StopEarly consumed the whole input: %d of %d records", stats.InputRecords, len(words))
	}
	if stats.Splits == 0 || stats.InputRecords == 0 {
		t.Fatalf("no work recorded: %+v", stats)
	}
	full, err := Run(testCfg(), &Job{
		Name:  "full",
		Input: &TextInput{FS: fs, Dir: "/in"},
		Map:   func(rec Record, emit Emit) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Splits >= full.Splits {
		t.Fatalf("StopEarly consumed all %d splits", full.Splits)
	}
}
