package hive

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// setupManySplits creates a meterdata table whose data is spread over enough
// separate files (one split each at the test block size) that a scan cannot
// finish within the worker pool's first wave: files >> GOMAXPROCS, so a
// cancelled or LIMIT-stopped scan provably consumes strictly fewer splits
// than a full one.
func setupManySplits(t testing.TB, w *Warehouse, rowsPerFile int) (files, totalRows int) {
	t.Helper()
	files = 4*runtime.GOMAXPROCS(0) + 8
	if _, err := w.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := w.Table("meterdata")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	for f := 0; f < files; f++ {
		rows := make([]storage.Row, rowsPerFile)
		for i := range rows {
			u := f*rowsPerFile + i
			rows[i] = storage.Row{
				storage.Int64(int64(u + 1)),
				storage.Int64(int64(u%4 + 1)),
				storage.Time(base.Add(time.Duration(u) * time.Minute)),
				storage.Float64(float64(u) / 7),
			}
		}
		if err := w.LoadRows(tbl, rows); err != nil {
			t.Fatal(err)
		}
	}
	return files, files * rowsPerFile
}

func mustParseSelect(t testing.TB, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*SelectStmt)
}

// TestCursorCancelMidScan: a ctx cancelled mid-scan aborts within one split
// boundary (strictly fewer records read than the table holds), surfaces
// context.Canceled — not a partial result — and leaves the warehouse fully
// usable for the next query.
func TestCursorCancelMidScan(t *testing.T) {
	w := testWarehouse(1 << 20)
	_, total := setupManySplits(t, w, 50)

	ctx, cancel := context.WithCancel(context.Background())
	cur, err := w.SelectCursor(ctx, mustParseSelect(t, `SELECT userId, powerConsumed FROM meterdata`), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One row proves the scan is running; the unread channel then applies
	// backpressure, so most splits are still pending when the cancel lands.
	if !cur.Next() {
		t.Fatalf("no first row; err=%v", cur.Err())
	}
	cancel()
	for cur.Next() {
		// Drain whatever was in flight.
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	stats := cur.Stats()
	if stats.RecordsRead >= int64(total) {
		t.Fatalf("cancelled scan read the whole table: %d of %d records", stats.RecordsRead, total)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}

	// The warehouse (and its catalog read lock) must be fully released.
	res := mustExec(t, w, `SELECT count(*) FROM meterdata`)
	if got := int64(res.Rows[0][0].AsFloat()); got != int64(total) {
		t.Fatalf("post-cancel count = %d, want %d", got, total)
	}
}

// TestCursorLimitStopsEarly: LIMIT n stops split consumption at the next
// split boundary — strictly fewer records read than a full scan, verified
// via QueryStats — while still delivering exactly n rows.
func TestCursorLimitStopsEarly(t *testing.T) {
	w := testWarehouse(1 << 20)
	files, total := setupManySplits(t, w, 50)

	cur, err := w.SelectCursor(context.Background(), mustParseSelect(t, `SELECT userId FROM meterdata LIMIT 3`), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for cur.Next() {
		rows++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	if rows != 3 {
		t.Fatalf("delivered %d rows, want 3", rows)
	}
	stats := cur.Stats()
	if stats.RecordsRead >= int64(total) {
		t.Fatalf("LIMIT scan read the whole table: %d of %d records", stats.RecordsRead, total)
	}
	if stats.Splits >= files {
		t.Fatalf("LIMIT scan consumed all %d splits", files)
	}
	if stats.RowsOut != 3 {
		t.Fatalf("RowsOut = %d, want 3", stats.RowsOut)
	}
	cur.Close()

	// The plain Exec path keeps its deterministic full-scan semantics: same
	// LIMIT, all records read.
	res := mustExec(t, w, `SELECT userId FROM meterdata LIMIT 3`)
	if len(res.Rows) != 3 || res.Stats.RecordsRead != int64(total) {
		t.Fatalf("Exec LIMIT: %d rows, %d records read (want 3 rows, %d records)",
			len(res.Rows), res.Stats.RecordsRead, total)
	}
}

// TestCursorDoesNotBlockWriters: a stalled stream consumer must not hold
// the catalog lock — cursors release it after planning, so a LOAD (an
// exclusive writer) completes while a cursor sits paused mid-stream.
func TestCursorDoesNotBlockWriters(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupManySplits(t, w, 50)

	cur, err := w.SelectCursor(context.Background(), mustParseSelect(t, `SELECT userId FROM meterdata`), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatalf("no first row; err=%v", cur.Err())
	}
	// The consumer now stalls (we stop calling Next); the scan goroutine
	// backpressures on the row channel. A writer must still get through.
	done := make(chan error, 1)
	go func() {
		done <- w.LoadRowsByName("meterdata", []storage.Row{{
			storage.Int64(1 << 40), storage.Int64(1),
			storage.Time(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)),
			storage.Float64(1),
		}})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("LOAD blocked behind a stalled streaming cursor")
	}
}

// TestExecContextPreCancelled: a dead ctx fails fast with its own error and
// touches nothing.
func TestExecContextPreCancelled(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupMeterTable(t, w, 8, 4, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.ExecContext(ctx, `SELECT count(*) FROM meterdata`, ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext on cancelled ctx = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := w.ExecContext(expired, `SELECT count(*) FROM meterdata`, ExecOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ExecContext on expired ctx = %v, want context.DeadlineExceeded", err)
	}
}

// TestCursorAggregateStreams: aggregations deliver their finalized rows
// through the cursor with the same values Exec produces.
func TestCursorAggregateStreams(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupMeterTable(t, w, 20, 4, 3)

	sql := `SELECT regionId, sum(powerConsumed) FROM meterdata GROUP BY regionId`
	want := mustExec(t, w, sql)

	cur, err := w.SelectCursor(context.Background(), mustParseSelect(t, sql), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []storage.Row
	for cur.Next() {
		got = append(got, cur.Row())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if len(got) != len(want.Rows) {
		t.Fatalf("cursor delivered %d rows, Exec %d", len(got), len(want.Rows))
	}
	for i := range got {
		for j := range got[i] {
			if storage.Compare(got[i][j], want.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: cursor %v, Exec %v", i, j, got[i][j], want.Rows[i][j])
			}
		}
	}
}

// BenchmarkCancelLatency measures how long a cancel takes to land: from
// cancel() to the cursor fully drained and closed. The mapreduce contract is
// split-boundary granularity — in-flight splits finish, nothing new starts —
// so the latency must stay in the one-split range, and the aborted scan must
// never have consumed the whole table.
func BenchmarkCancelLatency(b *testing.B) {
	w := testWarehouse(1 << 20)
	_, total := setupManySplits(b, w, 200)
	stmt := mustParseSelect(b, `SELECT userId, powerConsumed FROM meterdata`)

	b.ResetTimer()
	var worst time.Duration
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := w.SelectCursor(ctx, stmt, ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !cur.Next() {
			b.Fatalf("no first row; err=%v", cur.Err())
		}
		start := time.Now()
		cancel()
		for cur.Next() {
		}
		cur.Close()
		lat := time.Since(start)
		if lat > worst {
			worst = lat
		}
		if got := cur.Stats().RecordsRead; got >= int64(total) {
			b.Fatalf("cancel did not stop the scan early: read %d of %d records", got, total)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(worst.Microseconds()), "worst-cancel-us")
	fmt.Fprintf(benchLogWriter{b}, "worst cancel-to-drain latency: %v\n", worst)
}

// benchLogWriter routes into b.Log without the (unused) error plumbing.
type benchLogWriter struct{ b *testing.B }

func (w benchLogWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}
