package hive

import (
	"errors"
	"fmt"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// side distinguishes which input row an expression reads from.
type side uint8

const (
	sideLeft side = iota
	sideRight
)

// cexpr is a compiled scalar expression over a (left, right) row pair.
type cexpr func(l, r storage.Row) storage.Value

// cfilter is a compiled predicate.
type cfilter func(l, r storage.Row) bool

// aggKind enumerates the SQL aggregates.
type aggKind uint8

const (
	aggSum aggKind = iota
	aggCount
	aggMin
	aggMax
	aggAvg
)

// compiledAgg is one aggregate call bound to accumulator slots.
type compiledAgg struct {
	kind aggKind
	arg  cexpr // nil for count
	// slots into the shared accumulator vector: one for sum/count/min/max,
	// two (sum, count) for avg.
	slots []int
	// dgfSpecs is the pre-computable form (nil when not derivable, e.g.
	// the argument touches the join side).
	dgfSpecs []dgf.AggSpec
	name     string
}

// compiledItem is one SELECT item.
type compiledItem struct {
	name string
	// groupIdx >= 0: the item is the groupIdx-th GROUP BY column.
	groupIdx int
	// agg != nil: the item is an aggregate.
	agg *compiledAgg
	// expr: plain scalar projection (non-aggregate queries).
	expr cexpr
	kind storage.Kind
}

// compiledQuery is a fully planned SELECT.
type compiledQuery struct {
	stmt       *SelectStmt
	left       *Table
	right      *Table // nil unless joined
	leftRef    TableRef
	rightRef   TableRef
	joinLeft   int // join column index in left schema
	joinRight  int // join column index in right schema
	filters    []cfilter
	leftRanges map[string]gridfile.Range
	// leftMembers holds, per left column, the coerced value texts of its IN
	// predicates — the membership sets planners probe against value-bitmap
	// sidecars (per-value bitsets OR; predicates AND).
	leftMembers map[string][]string
	// rangesExact reports that leftRanges carries the WHERE conjunction
	// exactly. A != predicate (never folded) or a multi-value IN (folded to
	// its bounding box, a superset) clears it; header-precompute and
	// aggregate-index rewrites must then not trust ranges alone.
	rangesExact bool
	// leftRefCols flags every left-schema column the query references
	// (filters, projections, group keys, aggregate arguments, join key) —
	// the set pushed down into columnar readers.
	leftRefCols map[int]bool
	items       []compiledItem
	groupBy     []cexpr
	groupKinds  []storage.Kind
	aggs        []*compiledAgg
	slotFuncs   []dgf.AggFunc // accumulator vector layout
	isAgg       bool
}

// projection renders the referenced-column set as a schema-aligned flag
// slice for columnar readers, or nil when the query touches every column
// (projection pushdown would then buy nothing).
func (q *compiledQuery) projection() []bool {
	if len(q.leftRefCols) >= q.left.Schema.Len() {
		return nil
	}
	out := make([]bool, q.left.Schema.Len())
	for i := range out {
		out[i] = q.leftRefCols[i]
	}
	return out
}

// compileLocked resolves names, folds the WHERE conjunction into per-column
// ranges, and binds aggregates to accumulator slots. Caller holds w.mu.
func (w *Warehouse) compileLocked(stmt *SelectStmt) (*compiledQuery, error) {
	left, err := w.tableLocked(stmt.From.Table)
	if err != nil {
		return nil, err
	}
	q := &compiledQuery{
		stmt:        stmt,
		left:        left,
		leftRef:     stmt.From,
		leftRanges:  map[string]gridfile.Range{},
		leftMembers: map[string][]string{},
		rangesExact: true,
		leftRefCols: map[int]bool{},
	}
	if stmt.Join != nil {
		right, err := w.tableLocked(stmt.Join.Table.Table)
		if err != nil {
			return nil, err
		}
		q.right = right
		q.rightRef = stmt.Join.Table
		// Resolve the ON columns to their sides, in either order.
		lSide, lIdx, _, err1 := q.resolveCol(stmt.Join.Left)
		rSide, rIdx, _, err2 := q.resolveCol(stmt.Join.Right)
		if err1 != nil || err2 != nil {
			// Either error may be nil here; Join drops the nil one.
			return nil, fmt.Errorf("hive: cannot resolve join columns: %w", errors.Join(err1, err2))
		}
		if lSide == rSide {
			return nil, fmt.Errorf("hive: join ON must reference both tables")
		}
		if lSide == sideLeft {
			q.joinLeft, q.joinRight = lIdx, rIdx
		} else {
			q.joinLeft, q.joinRight = rIdx, lIdx
		}
	}

	// WHERE: compile filters and accumulate index ranges for left columns.
	for _, cmp := range stmt.Where {
		f, err := q.compileComparison(cmp)
		if err != nil {
			return nil, err
		}
		q.filters = append(q.filters, f)
	}

	// GROUP BY.
	for _, g := range stmt.GroupBy {
		s, idx, kind, err := q.resolveCol(g)
		if err != nil {
			return nil, err
		}
		q.groupBy = append(q.groupBy, colExpr(s, idx))
		q.groupKinds = append(q.groupKinds, kind)
	}

	// SELECT items.
	for _, item := range stmt.Select {
		if err := q.compileItem(item); err != nil {
			return nil, err
		}
	}
	if q.isAgg {
		for _, it := range q.items {
			if it.agg == nil && it.groupIdx < 0 {
				return nil, fmt.Errorf("hive: %q must appear in GROUP BY or an aggregate", it.name)
			}
		}
	}
	return q, nil
}

// resolveCol binds a column reference to a side and schema position.
func (q *compiledQuery) resolveCol(c ColRef) (side, int, storage.Kind, error) {
	if c.Name == "*" {
		return sideLeft, -1, storage.KindString, fmt.Errorf("hive: * not valid here")
	}
	tryLeft := q.leftRef.Matches(c.Qualifier)
	tryRight := q.right != nil && q.rightRef.Matches(c.Qualifier)
	if tryLeft {
		if i := q.left.Schema.ColIndex(c.Name); i >= 0 {
			if q.leftRefCols != nil {
				q.leftRefCols[i] = true
			}
			return sideLeft, i, q.left.Schema.Col(i).Kind, nil
		}
	}
	if tryRight {
		if i := q.right.Schema.ColIndex(c.Name); i >= 0 {
			return sideRight, i, q.right.Schema.Col(i).Kind, nil
		}
	}
	return sideLeft, 0, 0, fmt.Errorf("hive: unknown column %q", c.String())
}

func colExpr(s side, idx int) cexpr {
	if s == sideLeft {
		return func(l, r storage.Row) storage.Value { return l[idx] }
	}
	return func(l, r storage.Row) storage.Value { return r[idx] }
}

// compileExpr compiles a scalar (non-aggregate) expression. The second
// return value is the canonical lower-case rendering when the expression
// touches only left-table columns ("" otherwise) — the form matched against
// DGFIndex pre-compute specs.
func (q *compiledQuery) compileExpr(e Expr) (cexpr, string, storage.Kind, error) {
	switch t := e.(type) {
	case Lit:
		v := t.Value
		return func(l, r storage.Row) storage.Value { return v }, v.String(), v.Kind, nil
	case ColRef:
		s, idx, kind, err := q.resolveCol(t)
		if err != nil {
			return nil, "", 0, err
		}
		canon := ""
		if s == sideLeft {
			canon = strings.ToLower(q.left.Schema.Col(idx).Name)
		}
		return colExpr(s, idx), canon, kind, nil
	case Mul:
		le, lc, _, err := q.compileExpr(t.L)
		if err != nil {
			return nil, "", 0, err
		}
		re, rc, _, err := q.compileExpr(t.R)
		if err != nil {
			return nil, "", 0, err
		}
		canon := ""
		if lc != "" && rc != "" {
			canon = lc + "*" + rc
		}
		return func(l, r storage.Row) storage.Value {
			return storage.Float64(le(l, r).AsFloat() * re(l, r).AsFloat())
		}, canon, storage.KindFloat64, nil
	case AggCall:
		return nil, "", 0, fmt.Errorf("hive: aggregate %s not allowed here", t.Func)
	default:
		return nil, "", 0, fmt.Errorf("hive: unsupported expression %T", e)
	}
}

func (q *compiledQuery) compileComparison(cmp Comparison) (cfilter, error) {
	s, idx, kind, err := q.resolveCol(cmp.Col)
	if err != nil {
		return nil, err
	}
	if cmp.Op == "IN" {
		return q.compileIn(cmp, s, idx, kind)
	}
	val, err := coerce(cmp.Val, kind)
	if err != nil {
		return nil, fmt.Errorf("hive: predicate on %s: %w", cmp.Col.String(), err)
	}
	if cmp.Op == "!=" {
		// != never folds into a range, so leftRanges describes a superset of
		// the conjunction from here on.
		q.rangesExact = false
	}
	// Fold left-table constraints into the index range map.
	if s == sideLeft && cmp.Op != "!=" {
		name := strings.ToLower(q.left.Schema.Col(idx).Name)
		r := rangeFromOp(cmp.Op, val)
		if prev, ok := q.leftRanges[name]; ok {
			r = prev.Intersect(r)
		}
		q.leftRanges[name] = r
	}
	op := cmp.Op
	get := colExpr(s, idx)
	return func(l, r storage.Row) bool {
		c := storage.Compare(get(l, r), val)
		switch op {
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		case ">=":
			return c >= 0
		case "=":
			return c == 0
		case "!=":
			return c != 0
		default:
			return false
		}
	}, nil
}

// compileIn lowers col IN (v1, ..., vn): the row filter keeps any-equal
// rows; for index pruning the value set folds to its bounding box (an exact
// range for one value, a sound superset otherwise) and is recorded as a
// membership set for bitmap-sidecar probing.
func (q *compiledQuery) compileIn(cmp Comparison, s side, idx int, kind storage.Kind) (cfilter, error) {
	if len(cmp.Vals) == 0 {
		return nil, fmt.Errorf("hive: IN on %s needs at least one value", cmp.Col.String())
	}
	vals := make([]storage.Value, len(cmp.Vals))
	for i, raw := range cmp.Vals {
		v, err := coerce(raw, kind)
		if err != nil {
			return nil, fmt.Errorf("hive: predicate on %s: %w", cmp.Col.String(), err)
		}
		vals[i] = v
	}
	if s == sideLeft {
		lo, hi := vals[0], vals[0]
		texts := make([]string, len(vals))
		for i, v := range vals {
			texts[i] = v.String()
			if storage.Compare(v, lo) < 0 {
				lo = v
			}
			if storage.Compare(v, hi) > 0 {
				hi = v
			}
		}
		name := strings.ToLower(q.left.Schema.Col(idx).Name)
		r := gridfile.Range{Lo: lo, Hi: hi}
		if prev, ok := q.leftRanges[name]; ok {
			r = prev.Intersect(r)
		}
		q.leftRanges[name] = r
		q.leftMembers[name] = append(q.leftMembers[name], texts...)
	}
	if len(vals) > 1 {
		// The bounding box admits values between the set's members, so the
		// ranges are a superset of the predicate.
		q.rangesExact = false
	}
	get := colExpr(s, idx)
	return func(l, r storage.Row) bool {
		cell := get(l, r)
		for _, v := range vals {
			if storage.Compare(cell, v) == 0 {
				return true
			}
		}
		return false
	}, nil
}

func rangeFromOp(op string, val storage.Value) gridfile.Range {
	switch op {
	case "<":
		return gridfile.Range{LoUnbounded: true, Hi: val, HiOpen: true}
	case "<=":
		return gridfile.Range{LoUnbounded: true, Hi: val}
	case ">":
		return gridfile.Range{Lo: val, LoOpen: true, HiUnbounded: true}
	case ">=":
		return gridfile.Range{Lo: val, HiUnbounded: true}
	default: // "="
		return gridfile.Range{Lo: val, Hi: val}
	}
}

// coerce converts a parsed literal to the column kind (date strings become
// timestamps, ints widen to floats, and so on).
func coerce(v storage.Value, kind storage.Kind) (storage.Value, error) {
	if v.Kind == kind {
		return v, nil
	}
	switch kind {
	case storage.KindTime:
		if v.Kind == storage.KindString {
			return storage.ParseTime(v.S)
		}
		return storage.TimeUnix(v.AsInt()), nil
	case storage.KindFloat64:
		return storage.Float64(v.AsFloat()), nil
	case storage.KindInt64:
		if v.Kind == storage.KindFloat64 {
			return v, nil // compare as float, Hive-style lenient
		}
		return storage.Int64(v.AsInt()), nil
	default:
		return storage.Str(v.String()), nil
	}
}

// compileItem classifies one SELECT item.
func (q *compiledQuery) compileItem(item SelectItem) error {
	// SELECT * expands to all columns.
	if c, ok := item.Expr.(ColRef); ok && c.Name == "*" {
		for i, col := range q.left.Schema.Cols {
			q.leftRefCols[i] = true
			q.items = append(q.items, compiledItem{
				name: col.Name, groupIdx: -1, expr: colExpr(sideLeft, i), kind: col.Kind,
			})
		}
		if q.right != nil {
			for i, col := range q.right.Schema.Cols {
				q.items = append(q.items, compiledItem{
					name: col.Name, groupIdx: -1, expr: colExpr(sideRight, i), kind: col.Kind,
				})
			}
		}
		return nil
	}
	if call, ok := item.Expr.(AggCall); ok {
		agg, err := q.compileAgg(call)
		if err != nil {
			return err
		}
		name := item.Alias
		if name == "" {
			name = agg.name
		}
		q.isAgg = true
		q.aggs = append(q.aggs, agg)
		q.items = append(q.items, compiledItem{name: name, groupIdx: -1, agg: agg, kind: storage.KindFloat64})
		return nil
	}
	// Group column or plain projection.
	ce, _, kind, err := q.compileExpr(item.Expr)
	if err != nil {
		return err
	}
	name := item.Alias
	if name == "" {
		name = exprName(item.Expr)
	}
	gi := -1
	if c, ok := item.Expr.(ColRef); ok {
		for i, g := range q.stmt.GroupBy {
			if strings.EqualFold(g.Name, c.Name) && (g.Qualifier == c.Qualifier || g.Qualifier == "" || c.Qualifier == "") {
				gi = i
			}
		}
	}
	q.items = append(q.items, compiledItem{name: name, groupIdx: gi, expr: ce, kind: kind})
	return nil
}

func exprName(e Expr) string {
	switch t := e.(type) {
	case ColRef:
		return t.Name
	case Mul:
		return exprName(t.L) + "*" + exprName(t.R)
	case Lit:
		return t.Value.String()
	case AggCall:
		if t.Star {
			return strings.ToLower(t.Func) + "(*)"
		}
		return strings.ToLower(t.Func) + "(" + exprName(t.Arg) + ")"
	default:
		return "expr"
	}
}

// compileAgg binds an aggregate call to accumulator slots and derives its
// DGFIndex pre-compute form when possible.
func (q *compiledQuery) compileAgg(call AggCall) (*compiledAgg, error) {
	agg := &compiledAgg{name: exprName(call)}
	var canon string
	if !call.Star && call.Arg != nil {
		ce, c, _, err := q.compileExpr(call.Arg)
		if err != nil {
			return nil, err
		}
		agg.arg = ce
		canon = c
	}
	newSlot := func(f dgf.AggFunc) int {
		q.slotFuncs = append(q.slotFuncs, f)
		return len(q.slotFuncs) - 1
	}
	switch call.Func {
	case "SUM":
		if agg.arg == nil {
			return nil, fmt.Errorf("hive: SUM needs an argument")
		}
		agg.kind = aggSum
		agg.slots = []int{newSlot(dgf.AggSum)}
		if canon != "" {
			agg.dgfSpecs = []dgf.AggSpec{{Func: dgf.AggSum, Col: canon}}
		}
	case "COUNT":
		agg.kind = aggCount
		agg.slots = []int{newSlot(dgf.AggCount)}
		agg.dgfSpecs = []dgf.AggSpec{{Func: dgf.AggCount}}
	case "MIN", "MAX":
		if agg.arg == nil {
			return nil, fmt.Errorf("hive: %s needs an argument", call.Func)
		}
		f := dgf.AggMin
		agg.kind = aggMin
		if call.Func == "MAX" {
			f = dgf.AggMax
			agg.kind = aggMax
		}
		agg.slots = []int{newSlot(f)}
		if canon != "" {
			agg.dgfSpecs = []dgf.AggSpec{{Func: f, Col: canon}}
		}
	case "AVG":
		if agg.arg == nil {
			return nil, fmt.Errorf("hive: AVG needs an argument")
		}
		agg.kind = aggAvg
		agg.slots = []int{newSlot(dgf.AggSum), newSlot(dgf.AggCount)}
		if canon != "" {
			// avg derives from the additive pair sum + count.
			agg.dgfSpecs = []dgf.AggSpec{{Func: dgf.AggSum, Col: canon}, {Func: dgf.AggCount}}
		}
	default:
		return nil, fmt.Errorf("hive: unsupported aggregate %s", call.Func)
	}
	return agg, nil
}

// layout renders the compiled aggregation as its explicit combine/finalize
// description: the accumulator-vector slot functions plus the binding of
// each output column. Identical statements compiled against identical
// schemas yield identical layouts on every shard.
func (q *compiledQuery) layout() AggLayout {
	l := AggLayout{
		SlotFuncs:  q.slotFuncs,
		GroupKinds: q.groupKinds,
		Scalar:     len(q.groupBy) == 0,
	}
	for _, it := range q.items {
		out := AggOut{GroupIdx: it.groupIdx}
		if it.agg != nil {
			out.GroupIdx = -1
			out.Avg = it.agg.kind == aggAvg
			out.Slots = it.agg.slots
		}
		l.Outs = append(l.Outs, out)
	}
	return l
}

// WhereRanges folds the WHERE conjunction of stmt into per-column ranges
// over the FROM table's schema; literals coerce to the column kind.
// Predicates on the join side, on unknown columns, or using != are skipped
// (they never narrow a range). The shard router uses this to prune shards
// without compiling the full query.
func WhereRanges(stmt *SelectStmt, schema *storage.Schema) map[string]gridfile.Range {
	out := map[string]gridfile.Range{}
	for _, cmp := range stmt.Where {
		if cmp.Op == "!=" {
			continue
		}
		if cmp.Col.Qualifier != "" && !stmt.From.Matches(cmp.Col.Qualifier) {
			continue
		}
		idx := schema.ColIndex(cmp.Col.Name)
		if idx < 0 {
			continue
		}
		kind := schema.Col(idx).Kind
		name := strings.ToLower(schema.Col(idx).Name)
		var r gridfile.Range
		if cmp.Op == "IN" {
			// Fold the value set to its bounding box — a superset, which only
			// ever keeps extra shards in the scatter.
			box, ok := inBox(cmp.Vals, kind)
			if !ok {
				continue
			}
			r = box
		} else {
			val, err := coerce(cmp.Val, kind)
			if err != nil {
				continue
			}
			r = rangeFromOp(cmp.Op, val)
		}
		if prev, ok := out[name]; ok {
			r = prev.Intersect(r)
		}
		out[name] = r
	}
	return out
}

// inBox folds an IN value list to its [min, max] bounding range; ok is false
// when the list is empty or a value fails to coerce.
func inBox(vals []storage.Value, kind storage.Kind) (gridfile.Range, bool) {
	if len(vals) == 0 {
		return gridfile.Range{}, false
	}
	var lo, hi storage.Value
	for i, raw := range vals {
		v, err := coerce(raw, kind)
		if err != nil {
			return gridfile.Range{}, false
		}
		if i == 0 {
			lo, hi = v, v
			continue
		}
		if storage.Compare(v, lo) < 0 {
			lo = v
		}
		if storage.Compare(v, hi) > 0 {
			hi = v
		}
	}
	return gridfile.Range{Lo: lo, Hi: hi}, true
}

// dgfWantSpecs returns the pre-compute specs covering every aggregate, or
// nil when at least one aggregate is not derivable from headers.
func (q *compiledQuery) dgfWantSpecs() []dgf.AggSpec {
	if !q.isAgg || len(q.aggs) == 0 {
		return nil
	}
	var out []dgf.AggSpec
	for _, a := range q.aggs {
		if a.dgfSpecs == nil {
			return nil
		}
		out = append(out, a.dgfSpecs...)
	}
	return out
}
