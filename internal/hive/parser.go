package hive

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Parse parses one HiveQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, src: src}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	return stmt, nil
}

type parser struct {
	tokens []token
	pos    int
	src    string
	depth  int // expression nesting, bounded by maxExprDepth
}

// maxExprDepth bounds expression recursion (aggregate calls nest via
// parseExpr) so a pathological statement fails with a parse error instead
// of exhausting the stack. Real queries in the paper's listings nest twice.
const maxExprDepth = 200

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("hive: parse error near position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "CREATE"):
		p.next()
		if p.accept(tokKeyword, "TABLE") {
			return p.parseCreateTable()
		}
		if p.accept(tokKeyword, "INDEX") {
			return p.parseCreateIndex()
		}
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	case p.at(tokKeyword, "DROP"):
		p.next()
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	case p.at(tokKeyword, "SHOW"):
		p.next()
		if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &ShowTablesStmt{}, nil
	case p.at(tokKeyword, "DESCRIBE"):
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: name}, nil
	case p.at(tokKeyword, "INSERT"):
		p.next()
		if _, err := p.expect(tokKeyword, "OVERWRITE"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "DIRECTORY"); err != nil {
			return nil, err
		}
		dir := p.cur()
		if dir.kind != tokString {
			return nil, p.errf("expected directory string")
		}
		p.next()
		if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		sel.InsertDir = dir.text
		return sel, nil
	case p.at(tokKeyword, "SELECT"):
		p.next()
		return p.parseSelectBody()
	case p.at(tokKeyword, "EXPLAIN"):
		p.next()
		if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel}, nil
	case p.at(tokKeyword, "TRACE"):
		p.next()
		if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		return &TraceStmt{Select: sel}, nil
	default:
		return nil, p.errf("unsupported statement starting with %q", p.cur().text)
	}
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []storage.Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return nil, p.errf("expected type for column %s", cname)
		}
		p.next()
		kind, err := storage.ParseKind(t.text)
		if err != nil {
			return nil, p.errf("column %s: %v", cname, err)
		}
		cols = append(cols, storage.Column{Name: cname, Kind: kind})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	partitionBy := ""
	if p.accept(tokKeyword, "PARTITIONED") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		pc, err := p.ident()
		if err != nil {
			return nil, err
		}
		partitionBy = pc
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	stored := "TEXTFILE"
	if p.accept(tokKeyword, "STORED") {
		if _, err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent {
			return nil, p.errf("expected file format")
		}
		p.next()
		stored = strings.ToUpper(t.text)
		if stored != "TEXTFILE" && stored != "RCFILE" {
			return nil, p.errf("unsupported format %q (TEXTFILE or RCFILE)", t.text)
		}
	}
	return &CreateTableStmt{Name: name, Cols: cols, PartitionBy: partitionBy, Stored: stored}, nil
}

func (p *parser) parseCreateIndex() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	handler := p.cur()
	if handler.kind != tokString {
		return nil, p.errf("expected handler string after AS")
	}
	p.next()
	// Optional Hive boilerplate.
	if p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "DEFERRED"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "REBUILD"); err != nil {
			return nil, err
		}
	}
	props := map[string]string{}
	if p.accept(tokKeyword, "IDXPROPERTIES") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		for {
			k := p.cur()
			if k.kind != tokString {
				return nil, p.errf("expected property key string")
			}
			p.next()
			if _, err := p.expect(tokOp, "="); err != nil {
				return nil, err
			}
			v := p.cur()
			if v.kind != tokString {
				return nil, p.errf("expected property value string")
			}
			p.next()
			props[k.text] = v.text
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	return &CreateIndexStmt{Name: name, Table: table, Cols: cols, Handler: handler.text, Props: props}, nil
}

func (p *parser) parseSelectBody() (*SelectStmt, error) {
	s := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Select = append(s.Select, item)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = from
	if p.accept(tokKeyword, "JOIN") {
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		right, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		s.Join = &JoinClause{Table: jt, Left: left, Right: right}
	}
	if p.accept(tokKeyword, "WHERE") {
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			s.Where = append(s.Where, cmp...)
			if p.accept(tokKeyword, "AND") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// SELECT * projects all columns.
	if p.at(tokPunct, "*") {
		p.next()
		return SelectItem{Expr: ColRef{Name: "*"}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseExpr parses products of primaries (the only scalar operator needed
// by the paper's queries is '*').
func (p *parser) parseExpr() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, p.errf("expression nested deeper than %d levels", maxExprDepth)
	}
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "*") {
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = Mul{L: left, R: right}
	}
	return left, nil
}

var aggFuncs = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return Lit{Value: numberValue(t.text)}, nil
	case tokString:
		p.next()
		return Lit{Value: stringValue(t.text)}, nil
	case tokIdent:
		upper := strings.ToUpper(t.text)
		if aggFuncs[upper] && p.tokens[p.pos+1].kind == tokPunct && p.tokens[p.pos+1].text == "(" {
			p.next() // func name
			p.next() // (
			call := AggCall{Func: upper}
			if p.accept(tokPunct, "*") {
				call.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return p.parseColRef()
	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}

func (p *parser) parseColRef() (ColRef, error) {
	name, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokPunct, ".") {
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: name, Name: col}, nil
	}
	return ColRef{Name: name}, nil
}

// parseComparison parses col OP literal, literal OP col, col BETWEEN a AND b
// (rewritten to two comparisons), or col IN (v1, ..., vn).
func (p *parser) parseComparison() ([]Comparison, error) {
	// Left side: column or literal.
	if p.cur().kind == tokIdent {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if p.accept(tokKeyword, "IN") {
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			var vals []storage.Value
			for {
				v, err := p.literal()
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return []Comparison{{Col: col, Op: "IN", Vals: vals}}, nil
		}
		if p.accept(tokKeyword, "BETWEEN") {
			lo, err := p.literal()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.literal()
			if err != nil {
				return nil, err
			}
			return []Comparison{
				{Col: col, Op: ">=", Val: lo},
				{Col: col, Op: "<=", Val: hi},
			}, nil
		}
		op := p.cur()
		if op.kind != tokOp {
			return nil, p.errf("expected comparison operator, found %q", op.text)
		}
		p.next()
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		return []Comparison{{Col: col, Op: normalizeOp(op.text), Val: val}}, nil
	}
	// literal OP column: flip.
	val, err := p.literal()
	if err != nil {
		return nil, err
	}
	op := p.cur()
	if op.kind != tokOp {
		return nil, p.errf("expected comparison operator, found %q", op.text)
	}
	p.next()
	col, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	return []Comparison{{Col: col, Op: flipOp(normalizeOp(op.text)), Val: val}}, nil
}

func (p *parser) literal() (storage.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return numberValue(t.text), nil
	case tokString:
		p.next()
		return stringValue(t.text), nil
	default:
		return storage.Value{}, p.errf("expected literal, found %q", t.text)
	}
}

func numberValue(text string) storage.Value {
	if !strings.ContainsAny(text, ".eE") {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return storage.Int64(i)
		}
	}
	f, _ := strconv.ParseFloat(text, 64)
	return storage.Float64(f)
}

// stringValue keeps date-shaped strings convertible: the executor coerces
// them against the column kind, so the parser stores the raw string.
func stringValue(text string) storage.Value { return storage.Str(text) }

func normalizeOp(op string) string {
	if op == "<>" {
		return "!="
	}
	return op
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	default:
		return op
	}
}
