package hive

import (
	"sort"
	"strings"
	"sync/atomic"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// This file is the vectorised half of the executor: the WHERE conjunction
// lowered to kernels that run over a decoded row group's column vectors and
// shrink a selection vector, plus the zone-map consultation the full-scan
// path uses to drop whole row groups before their payloads are fetched.
// Rows are only materialised for the positions that survive every kernel.
//
// Kernels are encoding-aware. A dictionary column is never expanded to
// per-row strings: the literal is binary-searched in the group's sorted
// dictionary once and every row compares as a code ordinal — an equality or
// IN probe whose value is absent kills the group on that single search. A
// run-length column evaluates the predicate once per run and accepts or
// rejects every selected row of the run wholesale.

// vecPred narrows sel to the rows of b that satisfy one predicate. Kernels
// filter in place (the returned slice aliases sel's backing array).
type vecPred func(b *storage.ColumnBatch, sel []int) []int

// vecStats counts encoding-aware kernel work across a query's map tasks
// (which run concurrently, hence the atomics): dictionary binary searches
// performed and whole runs rejected without per-row compares.
type vecStats struct {
	dictProbes  atomic.Int64
	runsSkipped atomic.Int64
}

// compileVecFilters lowers the statement's WHERE conjunction to vectorised
// kernels, one per comparison, in the same order the row path applies its
// filters. Each kernel reproduces compileComparison's semantics exactly —
// storage.Compare of the cell against the coerced literal(s) — so the two
// paths keep identical row sets on every input.
func (q *compiledQuery) compileVecFilters(st *vecStats) ([]vecPred, error) {
	var out []vecPred
	for _, cmp := range q.stmt.Where {
		// The vectorised path only runs join-free, so every column resolves
		// to the left (and only) table.
		_, idx, kind, err := q.resolveCol(cmp.Col)
		if err != nil {
			return nil, err
		}
		if cmp.Op == "IN" {
			vals := make([]storage.Value, len(cmp.Vals))
			for i, raw := range cmp.Vals {
				v, err := coerce(raw, kind)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			out = append(out, compileVecIn(idx, kind, vals, st))
			continue
		}
		val, err := coerce(cmp.Val, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, compileVecComparison(idx, kind, cmp.Op, val, st))
	}
	return out, nil
}

// opKeep returns the predicate over storage.Compare's three-way result for
// one comparison operator (false for every c on an unknown operator, like
// the row path's default case).
func opKeep(op string) func(c int) bool {
	switch op {
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	case ">=":
		return func(c int) bool { return c >= 0 }
	case "=":
		return func(c int) bool { return c == 0 }
	case "!=":
		return func(c int) bool { return c != 0 }
	default:
		return func(int) bool { return false }
	}
}

// compareFloats is storage.Compare's numeric branch.
func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// compileVecComparison builds the kernel for one comparison. The typed fast
// paths read the column's vector directly; any combination they do not cover
// falls back to materialising single cells through the exact comparison the
// row path uses.
func compileVecComparison(col int, kind storage.Kind, op string, val storage.Value, st *vecStats) vecPred {
	keep := opKeep(op)
	switch {
	case kind == storage.KindString && val.Kind == storage.KindString:
		s := val.S
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			if v.Enc == storage.EncDict {
				return dictFilter(v, s, op, keep, sel, st)
			}
			if v.Enc == storage.EncRLE && len(v.RunEnds) > 0 {
				return rleFilter(v, sel, st, func(r int) bool {
					return keep(strings.Compare(v.Strs[r], s))
				})
			}
			out := sel[:0]
			for _, i := range sel {
				if keep(strings.Compare(v.Strs[i], s)) {
					out = append(out, i)
				}
			}
			return out
		}
	case kind == storage.KindFloat64 && val.Kind != storage.KindString:
		f := val.AsFloat()
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			if v.Enc == storage.EncRLE && len(v.RunEnds) > 0 {
				return rleFilter(v, sel, st, func(r int) bool {
					return keep(compareFloats(v.Floats[r], f))
				})
			}
			out := sel[:0]
			for _, i := range sel {
				if keep(compareFloats(v.Floats[i], f)) {
					out = append(out, i)
				}
			}
			return out
		}
	case (kind == storage.KindInt64 || kind == storage.KindTime) && val.Kind != storage.KindString:
		f := val.AsFloat()
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			if v.Enc == storage.EncRLE && len(v.RunEnds) > 0 {
				return rleFilter(v, sel, st, func(r int) bool {
					return keep(compareFloats(float64(v.Ints[r]), f))
				})
			}
			out := sel[:0]
			for _, i := range sel {
				// Ints vs a float literal compares as floats, exactly like
				// storage.Compare on the materialised values.
				if keep(compareFloats(float64(v.Ints[i]), f)) {
					out = append(out, i)
				}
			}
			return out
		}
	default:
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if v.Valid && v.Enc == storage.EncRLE && len(v.RunEnds) > 0 {
				return rleFilter(v, sel, st, func(r int) bool {
					return keep(storage.Compare(v.Value(r), val))
				})
			}
			return genericFilter(v, val, keep, sel)
		}
	}
}

// compileVecIn builds the kernel for col IN (v1, ..., vn): keep a row when
// its cell equals any of the coerced values. Over a dictionary column the
// value set resolves to a code set with one binary search per value — an IN
// whose values are all absent kills the group without touching a row.
func compileVecIn(col int, kind storage.Kind, vals []storage.Value, st *vecStats) vecPred {
	return func(b *storage.ColumnBatch, sel []int) []int {
		v := &b.Cols[col]
		if !v.Valid {
			return genericInFilter(v, vals, sel)
		}
		if v.Enc == storage.EncDict && kind == storage.KindString {
			st.dictProbes.Add(int64(len(vals)))
			codes := make([]uint32, 0, len(vals))
			for _, val := range vals {
				pos := sort.SearchStrings(v.Dict, val.S)
				if pos < len(v.Dict) && v.Dict[pos] == val.S {
					codes = append(codes, uint32(pos))
				}
			}
			if len(codes) == 0 {
				return sel[:0] // no value present: the group dies on the probes alone
			}
			out := sel[:0]
			for _, i := range sel {
				c := v.Codes[i]
				for _, k := range codes {
					if c == k {
						out = append(out, i)
						break
					}
				}
			}
			return out
		}
		if v.Enc == storage.EncRLE && len(v.RunEnds) > 0 {
			return rleFilter(v, sel, st, func(r int) bool {
				cell := v.Value(r)
				for _, val := range vals {
					if storage.Compare(cell, val) == 0 {
						return true
					}
				}
				return false
			})
		}
		return genericInFilter(v, vals, sel)
	}
}

// dictFilter compares every selected row of a dictionary column against one
// string literal using code ordinals. The dictionary is sorted ascending, so
// one binary search fixes the literal's rank and each row's three-way result
// follows from its code alone — no per-row string compare.
func dictFilter(v *storage.ColumnVector, s, op string, keep func(int) bool, sel []int, st *vecStats) []int {
	st.dictProbes.Add(1)
	pos := sort.SearchStrings(v.Dict, s)
	found := pos < len(v.Dict) && v.Dict[pos] == s
	if !found {
		switch op {
		case "=":
			return sel[:0] // value absent from the group: kill it outright
		case "!=":
			return sel // value absent: every row differs
		}
	}
	out := sel[:0]
	for _, i := range sel {
		c := 1
		if int(v.Codes[i]) < pos {
			c = -1
		} else if found && int(v.Codes[i]) == pos {
			c = 0
		}
		if keep(c) {
			out = append(out, i)
		}
	}
	return out
}

// rleFilter narrows sel over a run-length column by evaluating keepRow once
// per run (at the run's first row — the value is constant within it) and
// applying that verdict to every selected row the run covers. Runs rejected
// wholesale are counted as skipped.
func rleFilter(v *storage.ColumnVector, sel []int, st *vecStats, keepRow func(r int) bool) []int {
	out := sel[:0]
	run, start := 0, 0
	decided, verdict := false, false
	for _, i := range sel {
		for int32(i) >= v.RunEnds[run] {
			start = int(v.RunEnds[run])
			run++
			decided = false
		}
		if !decided {
			verdict = keepRow(start)
			decided = true
			if !verdict {
				st.runsSkipped.Add(1)
			}
		}
		if verdict {
			out = append(out, i)
		}
	}
	return out
}

// genericFilter is the cell-at-a-time fallback: identical to the row path's
// storage.Compare on the materialised value (also the !Valid case, where the
// cell is the kind's zero value — the row path sees the same zero cell).
func genericFilter(v *storage.ColumnVector, val storage.Value, keep func(int) bool, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		if keep(storage.Compare(v.Value(i), val)) {
			out = append(out, i)
		}
	}
	return out
}

// genericInFilter is the cell-at-a-time IN fallback, the exact semantics of
// the row path's any-value-equal filter.
func genericInFilter(v *storage.ColumnVector, vals []storage.Value, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		cell := v.Value(i)
		for _, val := range vals {
			if storage.Compare(cell, val) == 0 {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// scanZoneCol is one WHERE range resolved against the scanned table's schema.
type scanZoneCol struct {
	col  int
	kind storage.Kind
	r    gridfile.Range
}

// scanMemberCol is one IN value set resolved against the scanned table's
// schema, probed against value-bitmap sidecars where built.
type scanMemberCol struct {
	col   int
	texts []string
}

// scanGroupSkips consults the per-row-group zone maps — and, for IN
// predicates, the value-bitmap sidecars — of the given RCFile data files and
// returns, per file, the start offsets of the groups that cannot contain a
// matching row: zones disjoint from a predicate range, or membership sets
// none of whose values' bitsets mark the group (the per-value bitsets OR
// together; predicates AND). The counts are the total planned skips and how
// many of them only a bitmap could rule out. Files whose column statistics
// predate zone maps, or that carry no sidecar, contribute nothing (their
// groups are never skipped), so results stay correct on mixed data.
func scanGroupSkips(fs *dfs.FS, files []string, schema *storage.Schema, ranges map[string]gridfile.Range, members map[string][]string) (map[string]map[int64]bool, int64, int64, error) {
	var zones []scanZoneCol
	for name, r := range ranges {
		idx := schema.ColIndex(name)
		if idx < 0 {
			continue
		}
		zones = append(zones, scanZoneCol{col: idx, kind: schema.Col(idx).Kind, r: r})
	}
	var probes []scanMemberCol
	for name, texts := range members {
		idx := schema.ColIndex(name)
		if idx < 0 {
			continue
		}
		probes = append(probes, scanMemberCol{col: idx, texts: texts})
	}
	if len(zones) == 0 && len(probes) == 0 {
		return nil, 0, 0, nil
	}
	var skips map[string]map[int64]bool
	var skipped, bitmapHits int64
	for _, f := range files {
		stats, err := storage.ReadColStatsCached(fs, f)
		if err != nil {
			return nil, 0, 0, err
		}
		offsets, err := storage.ReadGroupIndexCached(fs, f)
		if err != nil {
			return nil, 0, 0, err
		}
		var bitmaps *storage.BitmapSidecar
		if len(probes) > 0 {
			if sc, ok, err := storage.ReadBitmapSidecarCached(fs, f); err != nil {
				return nil, 0, 0, err
			} else if ok {
				bitmaps = sc
			}
		}
		for g, stat := range stats {
			if g >= len(offsets) {
				continue
			}
			skip, byBitmap := false, false
			if stat.HasZone() {
				for _, z := range zones {
					if z.col >= len(stat.Mins) {
						continue
					}
					minV, err1 := storage.ParseValue(z.kind, stat.Mins[z.col])
					maxV, err2 := storage.ParseValue(z.kind, stat.Maxs[z.col])
					if err1 != nil || err2 != nil {
						continue // unparseable zone: never skip on it
					}
					if dgf.ZoneDisjoint(minV, maxV, z.r) {
						skip = true
						break
					}
				}
			}
			if !skip && bitmaps != nil {
				for _, p := range probes {
					hit := false
					covered := false
					for _, text := range p.texts {
						bs, ok := bitmaps.Lookup(p.col, text)
						if !ok {
							covered = false
							break
						}
						covered = true
						if bs.Has(g) {
							hit = true
							break
						}
					}
					if covered && !hit {
						skip, byBitmap = true, true
						break
					}
				}
			}
			if skip {
				if skips == nil {
					skips = map[string]map[int64]bool{}
				}
				if skips[f] == nil {
					skips[f] = map[int64]bool{}
				}
				skips[f][offsets[g]] = true
				skipped++
				if byBitmap {
					bitmapHits++
				}
			}
		}
	}
	return skips, skipped, bitmapHits, nil
}
