package hive

import (
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// This file is the vectorised half of the executor: the WHERE conjunction
// lowered to kernels that run over a decoded row group's column vectors and
// shrink a selection vector, plus the zone-map consultation the full-scan
// path uses to drop whole row groups before their payloads are fetched.
// Rows are only materialised for the positions that survive every kernel.

// vecPred narrows sel to the rows of b that satisfy one predicate. Kernels
// filter in place (the returned slice aliases sel's backing array).
type vecPred func(b *storage.ColumnBatch, sel []int) []int

// compileVecFilters lowers the statement's WHERE conjunction to vectorised
// kernels, one per comparison, in the same order the row path applies its
// filters. Each kernel reproduces compileComparison's semantics exactly —
// storage.Compare of the cell against the coerced literal — so the two paths
// keep identical row sets on every input.
func (q *compiledQuery) compileVecFilters() ([]vecPred, error) {
	var out []vecPred
	for _, cmp := range q.stmt.Where {
		// The vectorised path only runs join-free, so every column resolves
		// to the left (and only) table.
		_, idx, kind, err := q.resolveCol(cmp.Col)
		if err != nil {
			return nil, err
		}
		val, err := coerce(cmp.Val, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, compileVecComparison(idx, kind, cmp.Op, val))
	}
	return out, nil
}

// opKeep returns the predicate over storage.Compare's three-way result for
// one comparison operator (false for every c on an unknown operator, like
// the row path's default case).
func opKeep(op string) func(c int) bool {
	switch op {
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	case ">=":
		return func(c int) bool { return c >= 0 }
	case "=":
		return func(c int) bool { return c == 0 }
	case "!=":
		return func(c int) bool { return c != 0 }
	default:
		return func(int) bool { return false }
	}
}

// compareFloats is storage.Compare's numeric branch.
func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// compileVecComparison builds the kernel for one comparison. The typed fast
// paths read the column's vector directly; any combination they do not cover
// falls back to materialising single cells through the exact comparison the
// row path uses.
func compileVecComparison(col int, kind storage.Kind, op string, val storage.Value) vecPred {
	keep := opKeep(op)
	switch {
	case kind == storage.KindString && val.Kind == storage.KindString:
		s := val.S
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			out := sel[:0]
			for _, i := range sel {
				if keep(strings.Compare(v.Strs[i], s)) {
					out = append(out, i)
				}
			}
			return out
		}
	case kind == storage.KindFloat64 && val.Kind != storage.KindString:
		f := val.AsFloat()
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			out := sel[:0]
			for _, i := range sel {
				if keep(compareFloats(v.Floats[i], f)) {
					out = append(out, i)
				}
			}
			return out
		}
	case (kind == storage.KindInt64 || kind == storage.KindTime) && val.Kind != storage.KindString:
		f := val.AsFloat()
		return func(b *storage.ColumnBatch, sel []int) []int {
			v := &b.Cols[col]
			if !v.Valid {
				return genericFilter(v, val, keep, sel)
			}
			out := sel[:0]
			for _, i := range sel {
				// Ints vs a float literal compares as floats, exactly like
				// storage.Compare on the materialised values.
				if keep(compareFloats(float64(v.Ints[i]), f)) {
					out = append(out, i)
				}
			}
			return out
		}
	default:
		return func(b *storage.ColumnBatch, sel []int) []int {
			return genericFilter(&b.Cols[col], val, keep, sel)
		}
	}
}

// genericFilter is the cell-at-a-time fallback: identical to the row path's
// storage.Compare on the materialised value (also the !Valid case, where the
// cell is the kind's zero value — the row path sees the same zero cell).
func genericFilter(v *storage.ColumnVector, val storage.Value, keep func(int) bool, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		if keep(storage.Compare(v.Value(i), val)) {
			out = append(out, i)
		}
	}
	return out
}

// scanZoneCol is one WHERE range resolved against the scanned table's schema.
type scanZoneCol struct {
	col  int
	kind storage.Kind
	r    gridfile.Range
}

// scanGroupSkips consults the per-row-group zone maps of the given RCFile
// data files and returns, per file, the start offsets of the groups whose
// zones are disjoint from a predicate range — the full-scan counterpart of
// the DGF planner's double pruning. The count is the total planned skips.
// Files whose column statistics predate zone maps contribute nothing (their
// groups are never skipped), so results stay correct on mixed data.
func scanGroupSkips(fs *dfs.FS, files []string, schema *storage.Schema, ranges map[string]gridfile.Range) (map[string]map[int64]bool, int64, error) {
	var zones []scanZoneCol
	for name, r := range ranges {
		idx := schema.ColIndex(name)
		if idx < 0 {
			continue
		}
		zones = append(zones, scanZoneCol{col: idx, kind: schema.Col(idx).Kind, r: r})
	}
	if len(zones) == 0 {
		return nil, 0, nil
	}
	var skips map[string]map[int64]bool
	var skipped int64
	for _, f := range files {
		stats, err := storage.ReadColStatsCached(fs, f)
		if err != nil {
			return nil, 0, err
		}
		offsets, err := storage.ReadGroupIndexCached(fs, f)
		if err != nil {
			return nil, 0, err
		}
		for g, stat := range stats {
			if g >= len(offsets) || !stat.HasZone() {
				continue
			}
			for _, z := range zones {
				if z.col >= len(stat.Mins) {
					continue
				}
				minV, err1 := storage.ParseValue(z.kind, stat.Mins[z.col])
				maxV, err2 := storage.ParseValue(z.kind, stat.Maxs[z.col])
				if err1 != nil || err2 != nil {
					continue // unparseable zone: never skip on it
				}
				if dgf.ZoneDisjoint(minV, maxV, z.r) {
					if skips == nil {
						skips = map[string]map[int64]bool{}
					}
					if skips[f] == nil {
						skips[f] = map[int64]bool{}
					}
					skips[f][offsets[g]] = true
					skipped++
					break
				}
			}
		}
	}
	return skips, skipped, nil
}
