// Package hive is the warehouse layer of the reproduction: a catalog of
// TextFile/RCFile tables in the model filesystem, a HiveQL-subset parser
// covering the statement shapes of the paper's Listings 1-7, and a planner/
// executor that routes multidimensional range predicates through the
// configured index (DGFIndex, Compact, Aggregate, Bitmap) or falls back to a
// full MapReduce table scan.
package hive

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // < > <= >= = != <>
	tokPunct // ( ) , ; . *
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased, identifiers preserved
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "GROUP": true,
	"BY": true, "JOIN": true, "ON": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "AS": true, "IDXPROPERTIES": true, "INSERT": true,
	"OVERWRITE": true, "DIRECTORY": true, "STORED": true, "SHOW": true,
	"TABLES": true, "DESCRIBE": true, "LIMIT": true, "WITH": true,
	"DEFERRED": true, "REBUILD": true, "DROP": true, "INDEXES": true,
	"BETWEEN": true, "ORDER": true, "ASC": true, "DESC": true,
	"PARTITIONED": true, "EXPLAIN": true, "TRACE": true, "IN": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// -- comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		case c == '<' || c == '>' || c == '=' || c == '!':
			l.lexOp()
		case strings.IndexByte("(),;.*+", c) >= 0:
			l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("hive: unexpected character %q at %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("hive: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
		} else if c == '.' && !seenDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	text := string(c)
	if l.pos < len(l.src) {
		two := text + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "!=", "<>":
			text = two
			l.pos++
		}
	}
	l.tokens = append(l.tokens, token{kind: tokOp, text: text, pos: start})
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
