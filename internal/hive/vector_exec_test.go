package hive

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// sortedExact renders rows bit-exactly and sorts the lines, for comparisons
// where two correct executions may deliver rows in different orders (e.g. an
// appended index layout versus a from-scratch rebuild).
func sortedExact(rows []storage.Row) string {
	lines := strings.Split(strings.TrimRight(renderExact(rows), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// setupVectorWarehouse builds one warehouse with the three table shapes the
// vectorised suite exercises: an RCFile table with a DGF index, a plain
// RCFile table with no index (full-scan path), and a small TextFile table to
// broadcast-join against.
func setupVectorWarehouse(t *testing.T) (*Warehouse, []storage.Row) {
	t.Helper()
	w := testWarehouse(1 << 14)
	rows := setupMeterTableFormat(t, w, 40, 4, 8, "RCFILE")
	createDgf(t, w)

	mustExec(t, w, `CREATE TABLE plainmeter (userId bigint, regionId bigint,
		ts timestamp, powerConsumed double) STORED AS RCFILE`)
	plain, _ := w.Table("plainmeter")
	plain.RowGroupRows = 16
	if err := w.LoadRows(plain, rows); err != nil {
		t.Fatal(err)
	}

	mustExec(t, w, `CREATE TABLE userInfo (userId bigint, userName string)`)
	users, _ := w.Table("userInfo")
	var userRows []storage.Row
	for u := 1; u <= 40; u++ {
		userRows = append(userRows, storage.Row{
			storage.Int64(int64(u)), storage.Str(fmt.Sprintf("user-%02d", u)),
		})
	}
	if err := w.LoadRows(users, userRows); err != nil {
		t.Fatal(err)
	}
	return w, rows
}

// TestVectorisedMatchesRowPath is the equivalence half of the acceptance
// criterion: for every query shape — scans, aggregates, GROUP BY, joins,
// empty results, SELECT * — the vectorised path answers bit-identically to
// the row-at-a-time path, and the stats report truthfully which path ran.
func TestVectorisedMatchesRowPath(t *testing.T) {
	w, _ := setupVectorWarehouse(t)

	queries := []struct {
		sql     string
		wantVec bool
	}{
		// Full-scan path over the unindexed RCFile table.
		{`SELECT * FROM plainmeter`, true},
		{`SELECT userId, powerConsumed FROM plainmeter WHERE userId>=5 AND userId<=12`, true},
		{`SELECT sum(powerConsumed), count(*) FROM plainmeter WHERE ts>='2012-12-03'`, true},
		{`SELECT regionId, avg(powerConsumed), max(powerConsumed) FROM plainmeter WHERE userId<=30 GROUP BY regionId`, true},
		{`SELECT count(*) FROM plainmeter WHERE powerConsumed < 0`, true},
		{`SELECT userId FROM plainmeter WHERE userId>=1000`, true},
		{`SELECT userId, powerConsumed FROM plainmeter WHERE userId>=3 LIMIT 7`, true},
		// DGF index path over the indexed RCFile table.
		{`SELECT sum(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=30`, true},
		{`SELECT regionId, avg(powerConsumed), count(*) FROM meterdata WHERE ts>='2012-12-02' AND ts<'2012-12-06' GROUP BY regionId`, true},
		{`SELECT userId, powerConsumed FROM meterdata WHERE userId=11 AND ts<'2012-12-03'`, true},
		{`SELECT * FROM meterdata WHERE userId=19 AND ts='2012-12-04'`, true},
		{`SELECT count(*) FROM meterdata WHERE userId>=1000`, true},
		// Broadcast joins stay on the row path.
		{`SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo t2
			ON t1.userId=t2.userId WHERE t1.userId>=5 AND t1.userId<=8`, false},
	}
	for _, q := range queries {
		vec := mustExec(t, w, q.sql)
		row, err := w.ExecOpts(q.sql, ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatalf("%q (row path): %v", q.sql, err)
		}
		if vec.Stats.Vectorized != q.wantVec {
			t.Errorf("%q: Vectorized = %v, want %v", q.sql, vec.Stats.Vectorized, q.wantVec)
		}
		if row.Stats.Vectorized || row.Stats.GroupsSkipped != 0 || row.Stats.BitmapHits != 0 {
			t.Errorf("%q: DisableVectorized run reports vectorised stats: %+v", q.sql, row.Stats)
		}
		if strings.Contains(q.sql, "LIMIT") {
			// LIMIT queries may satisfy the limit from different splits on
			// the two paths; compare cardinality and membership instead.
			if len(vec.Rows) != len(row.Rows) {
				t.Errorf("%q: %d rows vectorised vs %d row-path", q.sql, len(vec.Rows), len(row.Rows))
			}
			full := mustExec(t, w, strings.Split(q.sql, " LIMIT")[0])
			members := map[string]int{}
			for _, r := range full.Rows {
				members[renderExact([]storage.Row{r})]++
			}
			for _, r := range vec.Rows {
				key := renderExact([]storage.Row{r})
				if members[key] == 0 {
					t.Errorf("%q: vectorised LIMIT row %s not in the full result", q.sql, key)
				}
				members[key]--
			}
			continue
		}
		if want, got := renderExact(row.Rows), renderExact(vec.Rows); want != got {
			t.Errorf("%q: results differ\nrow path:\n%s\nvectorised:\n%s", q.sql, want, got)
		}
	}
}

// TestVectorisedCursorLimit: a streaming cursor with LIMIT over the
// vectorised path delivers exactly limit rows, every one a member of the
// full result set, matching the row path's cardinality.
func TestVectorisedCursorLimit(t *testing.T) {
	w, _ := setupVectorWarehouse(t)
	const sql = `SELECT userId, powerConsumed FROM plainmeter WHERE userId>=3 AND userId<=38 LIMIT 9`

	collect := func(opts ExecOptions) []storage.Row {
		t.Helper()
		cur, err := w.SelectCursor(context.Background(), mustParseSelect(t, sql), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		var out []storage.Row
		for cur.Next() {
			out = append(out, append(storage.Row{}, cur.Row()...))
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	vec := collect(ExecOptions{})
	row := collect(ExecOptions{DisableVectorized: true})
	if len(vec) != 9 || len(row) != 9 {
		t.Fatalf("cursor rows: %d vectorised, %d row-path, want 9 each", len(vec), len(row))
	}
	full := mustExec(t, w, `SELECT userId, powerConsumed FROM plainmeter WHERE userId>=3 AND userId<=38`)
	members := map[string]int{}
	for _, r := range full.Rows {
		members[renderExact([]storage.Row{r})]++
	}
	for _, r := range vec {
		key := renderExact([]storage.Row{r})
		if members[key] == 0 {
			t.Errorf("cursor row %s not in the full result", key)
		}
		members[key]--
	}
}

// TestVectorisedZoneSkipTruthfulScan: on the full-scan path, EXPLAIN
// announces the zone-map pruning the execution then performs — same group
// count, same bytes — and the row path, which cannot prune, reads strictly
// more.
func TestVectorisedZoneSkipTruthfulScan(t *testing.T) {
	w, _ := setupVectorWarehouse(t)
	const sql = `SELECT powerConsumed FROM plainmeter WHERE ts>='2012-12-07'`

	plan := explainOf(t, w, sql)
	if !plan.Vectorized {
		t.Fatal("EXPLAIN does not announce the vectorised path")
	}
	if plan.GroupsSkipped == 0 {
		t.Fatal("EXPLAIN predicts no zone-map skips on a late-date predicate")
	}
	res := mustExec(t, w, sql)
	if res.Stats.GroupsSkipped != plan.GroupsSkipped {
		t.Errorf("EXPLAIN GroupsSkipped %d, execution %d", plan.GroupsSkipped, res.Stats.GroupsSkipped)
	}
	if plan.ProjectedBytes != res.Stats.BytesRead {
		t.Errorf("EXPLAIN ProjectedBytes %d, execution BytesRead %d", plan.ProjectedBytes, res.Stats.BytesRead)
	}
	row, err := w.ExecOpts(sql, ExecOptions{DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.BytesRead <= res.Stats.BytesRead {
		t.Errorf("row path read %d bytes, vectorised %d: skipping saved nothing",
			row.Stats.BytesRead, res.Stats.BytesRead)
	}
	if want, got := renderExact(row.Rows), renderExact(res.Rows); want != got {
		t.Errorf("results differ\nrow path:\n%s\nvectorised:\n%s", want, got)
	}
}

// TestVectorisedZoneSkipTruthfulDgf: same truthfulness contract on the DGF
// index path, where zone maps prune row groups inside the selected slices
// (the double pruning: cells first, groups within their slices second).
func TestVectorisedZoneSkipTruthfulDgf(t *testing.T) {
	w, _ := setupVectorWarehouse(t)
	const sql = `SELECT userId, powerConsumed FROM meterdata WHERE userId=11 AND ts<'2012-12-03'`

	plan := explainOf(t, w, sql)
	if !plan.Vectorized {
		t.Fatal("EXPLAIN does not announce the vectorised path")
	}
	if plan.GroupsSkipped == 0 {
		t.Fatal("EXPLAIN predicts no intra-slice zone skips")
	}
	res := mustExec(t, w, sql)
	if !strings.HasPrefix(res.Stats.AccessPath, "dgfindex") {
		t.Fatalf("access path %q, want dgfindex", res.Stats.AccessPath)
	}
	if res.Stats.GroupsSkipped != plan.GroupsSkipped {
		t.Errorf("EXPLAIN GroupsSkipped %d, execution %d", plan.GroupsSkipped, res.Stats.GroupsSkipped)
	}
	if plan.ProjectedBytes != res.Stats.BytesRead {
		t.Errorf("EXPLAIN ProjectedBytes %d, execution BytesRead %d", plan.ProjectedBytes, res.Stats.BytesRead)
	}
	row, err := w.ExecOpts(sql, ExecOptions{DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.BytesRead <= res.Stats.BytesRead {
		t.Errorf("row path read %d bytes, vectorised %d: skipping saved nothing",
			row.Stats.BytesRead, res.Stats.BytesRead)
	}
	if want, got := renderExact(row.Rows), renderExact(res.Rows); want != got {
		t.Errorf("results differ\nrow path:\n%s\nvectorised:\n%s", want, got)
	}
}

// taggedRows builds the bitmap-sidecar dataset: ids 1..n; tag is 'x' only
// for ids in [xLo, xHi] and alternates 'a'/'z' elsewhere, so every mixed
// group's tag zone [a,z] straddles 'x' and zone maps alone cannot prune it.
func taggedRows(n, xLo, xHi int) []storage.Row {
	var rows []storage.Row
	for i := 1; i <= n; i++ {
		tag := "a"
		if i%2 == 0 {
			tag = "z"
		}
		if i >= xLo && i <= xHi {
			tag = "x"
		}
		rows = append(rows, storage.Row{
			storage.Int64(int64(i)), storage.Str(tag), storage.Float64(float64(i) * 1.5),
		})
	}
	return rows
}

func setupTaggedTable(t *testing.T, w *Warehouse, rows []storage.Row) {
	t.Helper()
	mustExec(t, w, `CREATE TABLE tagged (id bigint, tag string, v double) STORED AS RCFILE`)
	tbl, _ := w.Table("tagged")
	tbl.RowGroupRows = 8
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, w, `CREATE INDEX idx_tagged ON TABLE tagged(id)
		AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
		IDXPROPERTIES ('id'='1_10', 'bitmap'='tag')`)
}

// TestBitmapSidecarHits: an equality predicate on a bitmap-tracked string
// column prunes row groups the tag zone maps cannot (alternating 'a'/'z'
// values straddle the probed 'x'), the plan attributes those prunes to
// BitmapHits, and the answer stays bit-identical to the row path.
func TestBitmapSidecarHits(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := taggedRows(400, 151, 170)
	setupTaggedTable(t, w, rows)

	const sql = `SELECT sum(v), count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag='x'`
	plan := explainOf(t, w, sql)
	if !plan.Vectorized {
		t.Fatal("EXPLAIN does not announce the vectorised path")
	}
	if plan.BitmapHits == 0 {
		t.Fatalf("EXPLAIN BitmapHits = 0, want > 0 (GroupsSkipped = %d)", plan.GroupsSkipped)
	}
	res := mustExec(t, w, sql)
	if res.Stats.BitmapHits != plan.BitmapHits {
		t.Errorf("EXPLAIN BitmapHits %d, execution %d", plan.BitmapHits, res.Stats.BitmapHits)
	}
	if res.Stats.GroupsSkipped != plan.GroupsSkipped {
		t.Errorf("EXPLAIN GroupsSkipped %d, execution %d", plan.GroupsSkipped, res.Stats.GroupsSkipped)
	}
	if plan.ProjectedBytes != res.Stats.BytesRead {
		t.Errorf("EXPLAIN ProjectedBytes %d, execution BytesRead %d", plan.ProjectedBytes, res.Stats.BytesRead)
	}
	row, err := w.ExecOpts(sql, ExecOptions{DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if want, got := renderExact(row.Rows), renderExact(res.Rows); want != got {
		t.Errorf("results differ\nrow path:\n%s\nvectorised:\n%s", want, got)
	}
	if row.Stats.BytesRead <= res.Stats.BytesRead {
		t.Errorf("row path read %d bytes, vectorised %d: bitmap pruning saved nothing",
			row.Stats.BytesRead, res.Stats.BytesRead)
	}
	// Sanity: the answer is the closed-form sum over ids 151..170.
	var wantSum float64
	for i := 151; i <= 170; i++ {
		wantSum += float64(i) * 1.5
	}
	if got := res.Rows[0][0].F; got != wantSum {
		t.Errorf("sum(v) = %v, want %v", got, wantSum)
	}
	if got := res.Rows[0][1].F; got != 20 {
		t.Errorf("count(*) = %v, want 20", got)
	}

	// A probe for a value no group holds lets the bitmaps prune everything.
	empty := mustExec(t, w, `SELECT count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag='q'`)
	if empty.Rows[0][0].F != 0 {
		t.Errorf("tag='q' count = %v, want 0", empty.Rows[0][0].F)
	}
	// String-range predicates (not equality) still answer correctly without
	// bitmap probes — only the generic kernels and zone maps apply.
	rangeVec := mustExec(t, w, `SELECT count(*) FROM tagged WHERE tag>='y'`)
	rangeRow, err := w.ExecOpts(`SELECT count(*) FROM tagged WHERE tag>='y'`, ExecOptions{DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if renderExact(rangeVec.Rows) != renderExact(rangeRow.Rows) {
		t.Errorf("string range: vectorised %s vs row path %s", renderExact(rangeVec.Rows), renderExact(rangeRow.Rows))
	}
}

// TestDgfAppendKeepsSidecarsConsistent is the append-consistency criterion:
// loading more rows into an indexed RCFile table must extend the zone maps
// and bitmap sidecars, so post-append queries still skip groups and probe
// bitmaps correctly, and answer exactly like an index rebuilt from scratch
// over the combined data.
func TestDgfAppendKeepsSidecarsConsistent(t *testing.T) {
	all := taggedRows(400, 151, 170)

	// Warehouse A: index half the data, then append the other half.
	wA := testWarehouse(1 << 14)
	setupTaggedTable(t, wA, all[:200])
	tbl, _ := wA.Table("tagged")
	if err := wA.LoadRows(tbl, all[200:]); err != nil {
		t.Fatal(err)
	}
	// Warehouse B: one build over the combined data — the rebuild baseline.
	wB := testWarehouse(1 << 14)
	setupTaggedTable(t, wB, all)

	queries := []string{
		`SELECT sum(v), count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag='x'`,
		`SELECT sum(v) FROM tagged WHERE id>=180 AND id<=320`,
		`SELECT count(*) FROM tagged WHERE id>=390`,
		`SELECT id, v FROM tagged WHERE id>=198 AND id<=203`,
		`SELECT tag, count(*) FROM tagged WHERE id>=140 AND id<=260 GROUP BY tag`,
	}
	for _, sql := range queries {
		a := mustExec(t, wA, sql)
		b := mustExec(t, wB, sql)
		// Append and rebuild lay segments out differently, so non-aggregate
		// rows may arrive in a different order; compare as sorted multisets.
		if want, got := sortedExact(b.Rows), sortedExact(a.Rows); want != got {
			t.Errorf("%q: appended index differs from rebuild\nrebuild:\n%s\nappended:\n%s", sql, want, got)
		}
		// The appended warehouse's skip decisions must still be sound: the
		// vectorised answer equals its own row-path answer bit-identically.
		aRow, err := wA.ExecOpts(sql, ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatal(err)
		}
		if want, got := sortedExact(aRow.Rows), sortedExact(a.Rows); want != got {
			t.Errorf("%q: post-append vectorised path diverges from row path\nrow:\n%s\nvectorised:\n%s", sql, want, got)
		}
	}

	// Zone maps cover the appended segments: a predicate selecting only
	// appended ids still skips groups, and a bitmap probe over the combined
	// range still lands hits (the 'x' run lives in the original half).
	late := mustExec(t, wA, `SELECT sum(v) FROM tagged WHERE id>=390`)
	if late.Stats.GroupsSkipped == 0 {
		t.Error("no groups skipped on an appended-range predicate: appended segments lack zone maps")
	}
	probe := mustExec(t, wA, `SELECT count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag='x'`)
	if probe.Stats.BitmapHits == 0 {
		t.Error("no bitmap hits after append: appended segments broke the sidecar probes")
	}
	if probe.Rows[0][0].F != 20 {
		t.Errorf("post-append tag='x' count = %v, want 20", probe.Rows[0][0].F)
	}
}
