package hive

import (
	"strings"
	"testing"
)

// TestTraceStatement: TRACE SELECT executes the wrapped SELECT and renders
// its span tree as span/wall_ms/detail rows — the root "query" span first,
// a "warehouse" span beneath it carrying the access-path decision and read
// volumes, and the mapreduce span beneath that — while preserving the
// execution's QueryStats.
func TestTraceStatement(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupMeterTable(t, w, 100, 5, 10)
	createDgf(t, w)

	const sel = `SELECT sum(powerConsumed), count(*) FROM meterdata
		WHERE userId>=3 AND userId<=40 AND ts>='2012-12-02' AND ts<'2012-12-05'`
	base := mustExec(t, w, sel)
	res := mustExec(t, w, "TRACE "+sel)

	if got := strings.Join(res.Columns, ","); got != "span,wall_ms,detail" {
		t.Fatalf("columns %q", got)
	}
	if len(res.Rows) == 0 || res.Rows[0][0].String() != "query" {
		t.Fatalf("first row should be the root query span, got %v", res.Rows)
	}
	// The tree must attribute the work: a warehouse span carrying the same
	// access path the plain execution reported.
	var warehouseDetail string
	for _, row := range res.Rows {
		if strings.TrimSpace(row[0].String()) == "warehouse" {
			warehouseDetail = row[2].String()
		}
	}
	if warehouseDetail == "" {
		t.Fatalf("no warehouse span in trace:\n%s", renderTraceRows(res))
	}
	if !strings.Contains(warehouseDetail, "access_path="+base.Stats.AccessPath) {
		t.Fatalf("warehouse span detail %q missing access_path=%s", warehouseDetail, base.Stats.AccessPath)
	}
	// TRACE reports the traced execution's stats, not the rendering's.
	if res.Stats.AccessPath != base.Stats.AccessPath || res.Stats.RecordsRead != base.Stats.RecordsRead {
		t.Fatalf("TRACE stats %+v diverge from plain execution %+v", res.Stats, base.Stats)
	}
}

// TestTraceStatementNormalization: TRACE statements are read-only and report
// the tables of the wrapped SELECT (cache keying and invalidation depend on
// both).
func TestTraceStatementNormalization(t *testing.T) {
	stmt, err := Parse(`TRACE SELECT count(*) FROM meterdata`)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := stmt.(*TraceStmt)
	if !ok {
		t.Fatalf("parsed %T, want *TraceStmt", stmt)
	}
	if ts.Select == nil || ts.Select.From.Table != "meterdata" {
		t.Fatalf("wrapped select not preserved: %+v", ts.Select)
	}
	if !IsReadOnly(stmt) {
		t.Fatal("TRACE SELECT must be read-only")
	}
	if tables := StatementTables(stmt); len(tables) != 1 || tables[0] != "meterdata" {
		t.Fatalf("StatementTables = %v, want [meterdata]", tables)
	}
	if _, err := Parse(`TRACE SHOW TABLES`); err == nil {
		t.Fatal("TRACE must require a SELECT")
	}
}

func renderTraceRows(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
