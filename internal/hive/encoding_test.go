package hive

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// cityRows builds the dictionary/RLE dataset: unique ids, a five-value city
// column (dictionary candidate in every group) and a day-major ts in runs of
// 10 — shorter than the 16-row groups, so boundary groups hold two runs and
// the run kernel (not just the zone map) has rejections to make.
func cityRows(n int) []storage.Row {
	cities := []string{"amsterdam", "berlin", "cairo", "delhi", "essen"}
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			storage.Int64(int64(i + 1)),
			storage.Str(cities[i%len(cities)]),
			storage.Time(base.AddDate(0, 0, i/10)),
			storage.Float64(float64(i) * 0.5),
		}
	}
	return rows
}

func setupCityTable(t *testing.T, w *Warehouse, n int) []storage.Row {
	t.Helper()
	mustExec(t, w, `CREATE TABLE cities (id bigint, city string, ts timestamp, v double) STORED AS RCFILE`)
	rows := cityRows(n)
	tbl, _ := w.Table("cities")
	tbl.RowGroupRows = 16
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestEncodedKernelsMatchRowPath: every predicate shape over dictionary and
// RLE columns — equality, inequality, ranges, IN, absent values — answers
// bit-identically to the row-at-a-time path, and the stats prove the
// encoding-aware kernels actually ran (dictionary probes, skipped runs).
func TestEncodedKernelsMatchRowPath(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupCityTable(t, w, 400)

	var dictProbes, runsSkipped int64
	queries := []string{
		`SELECT count(*) FROM cities WHERE city='berlin'`,
		`SELECT sum(v) FROM cities WHERE city!='berlin'`,
		`SELECT id FROM cities WHERE city IN ('berlin','cairo') AND id<=40`,
		`SELECT count(*) FROM cities WHERE city IN ('essen')`,
		`SELECT count(*), sum(v) FROM cities WHERE city<'c'`,
		`SELECT count(*) FROM cities WHERE city>='delhi'`,
		`SELECT sum(v) FROM cities WHERE city='nowhere'`,
		`SELECT count(*) FROM cities WHERE city IN ('nowhere','imaginary')`,
		`SELECT count(*) FROM cities WHERE ts>='2012-12-10'`,
		`SELECT sum(v) FROM cities WHERE ts<'2012-12-05' AND city='cairo'`,
		`SELECT sum(v) FROM cities WHERE id IN (3,7,9,311)`,
		`SELECT city, count(*) FROM cities WHERE ts>='2012-12-03' GROUP BY city`,
	}
	for _, sql := range queries {
		vec := mustExec(t, w, sql)
		if !vec.Stats.Vectorized {
			t.Fatalf("%q did not take the vectorised path", sql)
		}
		row, err := w.ExecOpts(sql, ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatalf("%q (row path): %v", sql, err)
		}
		if want, got := sortedExact(row.Rows), sortedExact(vec.Rows); want != got {
			t.Errorf("%q: results differ\nrow path:\n%s\nvectorised:\n%s", sql, want, got)
		}
		if row.Stats.DictProbes != 0 || row.Stats.RunsSkipped != 0 {
			t.Errorf("%q: row path reports encoding stats: %+v", sql, row.Stats)
		}
		dictProbes += vec.Stats.DictProbes
		runsSkipped += vec.Stats.RunsSkipped
	}
	if dictProbes == 0 {
		t.Error("no query probed a dictionary: the dict kernels never ran")
	}
	if runsSkipped == 0 {
		t.Error("no query skipped an RLE run: the run kernels never ran")
	}
}

// TestExplainEncodedColumns: EXPLAIN over an encoded table names the encoded
// columns with their encodings, on both the scan and the DGF path.
func TestExplainEncodedColumns(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupCityTable(t, w, 400)

	plan := explainOf(t, w, `SELECT count(*) FROM cities WHERE city='berlin'`)
	rendered := strings.Join(plan.EncodedColumns, " ")
	if !strings.Contains(rendered, "city(dict") {
		t.Errorf("EncodedColumns = %v, want city(dict...)", plan.EncodedColumns)
	}
	if !strings.Contains(rendered, "ts(") || !strings.Contains(rendered, "rle") {
		t.Errorf("EncodedColumns = %v, want an rle entry for ts", plan.EncodedColumns)
	}

	// The DGF path reports the encodings of the reorganised segments.
	mustExec(t, w, `CREATE INDEX idx_cities ON TABLE cities(id)
		AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
		IDXPROPERTIES ('id'='1_50', 'bitmap'='city')`)
	plan = explainOf(t, w, `SELECT sum(v) FROM cities WHERE id>=1 AND id<=200`)
	if !strings.HasPrefix(plan.AccessPath, "dgfindex") {
		t.Fatalf("access path %q, want dgfindex", plan.AccessPath)
	}
	if !strings.Contains(strings.Join(plan.EncodedColumns, " "), "city(dict") {
		t.Errorf("DGF EncodedColumns = %v, want city(dict...)", plan.EncodedColumns)
	}

	// An unencoded table reports no encoded columns.
	mustExec(t, w, `CREATE TABLE flat (id bigint, note string) STORED AS RCFILE`)
	flat, _ := w.Table("flat")
	var rows []storage.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, storage.Row{storage.Int64(int64(i)), storage.Str(fmt.Sprintf("unique-%d", i))})
	}
	if err := w.LoadRows(flat, rows); err != nil {
		t.Fatal(err)
	}
	if plan := explainOf(t, w, `SELECT count(*) FROM flat`); len(plan.EncodedColumns) != 0 {
		t.Errorf("unencodable table reports EncodedColumns = %v", plan.EncodedColumns)
	}
}

// TestBitmapMembershipPruning: an IN predicate on a bitmap-tracked column
// prunes row groups by OR-ing the member bitsets — groups holding none of the
// probed values never hit the readers — while answering bit-identically to
// the row path.
func TestBitmapMembershipPruning(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := taggedRows(400, 151, 170)
	setupTaggedTable(t, w, rows)

	const sql = `SELECT sum(v), count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag IN ('x','q')`
	plan := explainOf(t, w, sql)
	if plan.BitmapHits == 0 {
		t.Fatalf("EXPLAIN BitmapHits = 0, want > 0 (GroupsSkipped = %d)", plan.GroupsSkipped)
	}
	res := mustExec(t, w, sql)
	if res.Stats.BitmapHits != plan.BitmapHits || res.Stats.GroupsSkipped != plan.GroupsSkipped {
		t.Errorf("EXPLAIN (hits %d, skips %d) vs execution (hits %d, skips %d)",
			plan.BitmapHits, plan.GroupsSkipped, res.Stats.BitmapHits, res.Stats.GroupsSkipped)
	}
	row, err := w.ExecOpts(sql, ExecOptions{DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if want, got := renderExact(row.Rows), renderExact(res.Rows); want != got {
		t.Errorf("results differ\nrow path:\n%s\nvectorised:\n%s", want, got)
	}
	// 'q' matches nothing, so the answer is the tag='x' run: ids 151..170.
	var wantSum float64
	for i := 151; i <= 170; i++ {
		wantSum += float64(i) * 1.5
	}
	if res.Rows[0][0].F != wantSum || res.Rows[0][1].F != 20 {
		t.Errorf("sum,count = %v,%v want %v,20", res.Rows[0][0].F, res.Rows[0][1].F, wantSum)
	}

	// A probe set entirely absent from the data prunes every group.
	empty := mustExec(t, w, `SELECT count(*) FROM tagged WHERE id>=1 AND id<=400 AND tag IN ('q','w')`)
	if empty.Rows[0][0].F != 0 {
		t.Errorf("absent IN set counts %v rows, want 0", empty.Rows[0][0].F)
	}
}

// TestInAndNotEqualNeverUsePrecomputedHeaders is the exactness guard: "!="
// and multi-value IN predicates do not survive in the planner's range
// summary, so aggregate answers must come from scanning rows, never from
// pre-computed GFU headers — the vectorised, row, and index-free answers all
// agree bit-identically.
func TestInAndNotEqualNeverUsePrecomputedHeaders(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupMeterTableFormat(t, w, 40, 4, 8, "RCFILE")
	createDgf(t, w)

	queries := []string{
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId!=5`,
		`SELECT sum(powerConsumed), count(*) FROM meterdata WHERE userId>=1 AND userId<=40 AND userId!=17`,
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId IN (3,9,21)`,
		`SELECT count(*) FROM meterdata WHERE userId IN (5,6) AND ts>='2012-12-03'`,
		`SELECT regionId, sum(powerConsumed) FROM meterdata WHERE userId IN (2,4,8,16,32) GROUP BY regionId`,
	}
	for _, sql := range queries {
		idx := mustExec(t, w, sql)
		if strings.Contains(idx.Stats.AccessPath, "precompute") {
			t.Errorf("%q answered from precomputed headers despite a non-range predicate", sql)
		}
		scan, err := w.ExecOpts(sql, ExecOptions{DisableIndexes: true})
		if err != nil {
			t.Fatal(err)
		}
		if want, got := sortedExact(scan.Rows), sortedExact(idx.Rows); want != got {
			t.Errorf("%q: index path differs from scan\nscan:\n%s\nindex:\n%s", sql, want, got)
		}
	}
}

// TestBitmapOverflowSurfaced: a bitmap column whose per-file cardinality
// exceeds the cap is dropped at build time, the CREATE INDEX message says so,
// EXPLAIN reports it as bitmap_disabled, and queries stay correct without
// the sidecar.
func TestBitmapOverflowSurfaced(t *testing.T) {
	w := testWarehouse(1 << 18)
	mustExec(t, w, `CREATE TABLE uniq (id bigint, tag string, v double) STORED AS RCFILE`)
	tbl, _ := w.Table("uniq")
	tbl.RowGroupRows = 512
	n := storage.BitmapCardinalityCap + 100
	var rows []storage.Row
	for i := 1; i <= n; i++ {
		rows = append(rows, storage.Row{
			storage.Int64(int64(i)), storage.Str(fmt.Sprintf("tag-%06d", i)), storage.Float64(float64(i)),
		})
	}
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	// One coarse cell keeps all rows in a single segment file, so the tag
	// column's distinct count overflows the per-file cap.
	res := mustExec(t, w, fmt.Sprintf(`CREATE INDEX idx_uniq ON TABLE uniq(id)
		AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
		IDXPROPERTIES ('id'='1_%d', 'bitmap'='tag')`, n+1))
	if !strings.Contains(res.Message, "bitmap sidecars disabled for tag") {
		t.Errorf("CREATE INDEX message %q does not surface the overflow", res.Message)
	}
	plan := explainOf(t, w, `SELECT count(*) FROM uniq WHERE id>=1`)
	if len(plan.BitmapDisabled) != 1 || plan.BitmapDisabled[0] != "tag" {
		t.Errorf("EXPLAIN BitmapDisabled = %v, want [tag]", plan.BitmapDisabled)
	}
	// Equality on the dropped column still answers correctly — just without
	// bitmap pruning.
	got := mustExec(t, w, `SELECT count(*) FROM uniq WHERE id>=1 AND tag='tag-000123'`)
	if got.Rows[0][0].F != 1 {
		t.Errorf("count = %v, want 1", got.Rows[0][0].F)
	}
	if got.Stats.BitmapHits != 0 {
		t.Errorf("dropped sidecar still reports %d bitmap hits", got.Stats.BitmapHits)
	}
}

// TestAdaptiveGroupBytes: a byte-budget table cuts row groups adaptively,
// the budget survives into the DGF index metadata, and appends answer
// exactly like a from-scratch rebuild over the combined data.
func TestAdaptiveGroupBytes(t *testing.T) {
	all := cityRows(400)
	setup := func(rows []storage.Row) *Warehouse {
		w := testWarehouse(1 << 14)
		mustExec(t, w, `CREATE TABLE cities (id bigint, city string, ts timestamp, v double) STORED AS RCFILE`)
		tbl, _ := w.Table("cities")
		tbl.RowGroupBytes = 1 << 10
		if err := w.LoadRows(tbl, rows); err != nil {
			t.Fatal(err)
		}
		mustExec(t, w, `CREATE INDEX idx_cities ON TABLE cities(id)
			AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
			IDXPROPERTIES ('id'='1_100', 'bitmap'='city')`)
		return w
	}
	wA := setup(all[:200])
	tbl, _ := wA.Table("cities")
	if tbl.Dgf.GroupBytes != 1<<10 {
		t.Fatalf("index GroupBytes = %d, want %d", tbl.Dgf.GroupBytes, 1<<10)
	}
	if err := wA.LoadRows(tbl, all[200:]); err != nil {
		t.Fatal(err)
	}
	wB := setup(all)

	queries := []string{
		`SELECT sum(v), count(*) FROM cities WHERE id>=1 AND id<=400`,
		`SELECT sum(v) FROM cities WHERE id>=150 AND id<=250 AND city='berlin'`,
		`SELECT city, count(*) FROM cities WHERE id>=90 AND id<=310 GROUP BY city`,
		`SELECT id, v FROM cities WHERE id>=198 AND id<=203`,
		`SELECT count(*) FROM cities WHERE city IN ('cairo','essen') AND id<=400`,
	}
	for _, sql := range queries {
		a, b := mustExec(t, wA, sql), mustExec(t, wB, sql)
		if want, got := sortedExact(b.Rows), sortedExact(a.Rows); want != got {
			t.Errorf("%q: appended differs from rebuild\nrebuild:\n%s\nappended:\n%s", sql, want, got)
		}
		aRow, err := wA.ExecOpts(sql, ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatal(err)
		}
		if want, got := sortedExact(aRow.Rows), sortedExact(a.Rows); want != got {
			t.Errorf("%q: vectorised differs from row path after append", sql)
		}
	}
}
