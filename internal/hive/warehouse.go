package hive

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/kvstore"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Warehouse is the top of the stack: a catalog of tables in the model
// filesystem plus the cluster cost model every job runs under.
//
// A Warehouse is safe for concurrent use: DDL and LOAD statements are
// serialized as writers while SELECTs share a read lock, so any number of
// queries run in parallel and each sees either all of a load or none of it.
// Mutate tables only through Warehouse methods (or Exec); writing Table
// fields directly is not synchronized.
type Warehouse struct {
	FS      *dfs.FS
	Cluster *cluster.Config
	// Root is the warehouse directory ("/warehouse").
	Root string

	mu     sync.RWMutex
	tables map[string]*Table
	// versions counts mutations per table key. A dropped table keeps its
	// counter so that drop+recreate never repeats a version — cache keys
	// built from versions stay unique across the table's whole history.
	versions map[string]uint64
	catalog  uint64
}

// Table is one catalog entry.
type Table struct {
	Name   string
	Schema *storage.Schema
	Format hiveindex.Format
	// Dir holds the data files. Building a DGFIndex reorganises the data
	// and repoints Dir at the reorganised directory (the paper's build job
	// rewrites the base table; each table can have only one DGFIndex).
	Dir string
	// RowGroupRows sizes RCFile row groups.
	RowGroupRows int
	// RowGroupBytes, when positive, switches RCFile row-group sizing to a
	// byte budget: a group is cut when its encoded payload reaches the
	// budget, so dense (well-encoded) data packs more rows per group. The
	// budget is inherited by a DGFIndex built on the table, persisted in its
	// metadata, and honoured by later Appends.
	RowGroupBytes int64
	// DisableEncoding forces plain-text row groups (no dictionary/RLE column
	// encoding); benchmarks use it to measure the unencoded baseline.
	DisableEncoding bool
	// PartitionBy names the partitioning column; data files then live under
	// one "<col>=<value>" directory per distinct value (Hive partitioning,
	// the paper's Section 2.2 "coarse-grained index"). Empty means
	// unpartitioned.
	PartitionBy string

	// Dgf is the table's DGFIndex, if any.
	Dgf *dgf.Index
	// DgfKV is the key-value store backing Dgf.
	DgfKV *kvstore.Store
	// HiveIndexes are the Compact/Aggregate/Bitmap indexes by name.
	HiveIndexes map[string]*hiveindex.Index

	fileSeq int
}

// NewWarehouse creates an empty warehouse rooted at root ("/warehouse" when
// empty).
func NewWarehouse(fs *dfs.FS, cfg *cluster.Config, root string) *Warehouse {
	if root == "" {
		root = "/warehouse"
	}
	return &Warehouse{
		FS: fs, Cluster: cfg, Root: root,
		tables:   map[string]*Table{},
		versions: map[string]uint64{},
	}
}

// bumpLocked records a mutation of the named table. Caller holds w.mu.
func (w *Warehouse) bumpLocked(key string) {
	w.versions[key]++
	w.catalog++
}

// CatalogVersion returns a counter incremented by every catalog or data
// mutation (DDL, LOAD, index build). Equal versions imply an identical
// catalog state, so the value anchors coarse cache keys.
func (w *Warehouse) CatalogVersion() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.catalog
}

// TableVersion returns the named table's mutation counter (0 for a table
// never touched). The counter survives DROP so recreated tables never reuse
// a version.
func (w *Warehouse) TableVersion(name string) uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.versions[strings.ToLower(name)]
}

// TableVersions snapshots the mutation counters of the named tables in one
// consistent read (result cache keys combine several tables' versions).
func (w *Warehouse) TableVersions(names ...string) map[string]uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[strings.ToLower(n)] = w.versions[strings.ToLower(n)]
	}
	return out
}

// ColumnInfo is one schema column rendered with its HiveQL type name.
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// TableInfo is a read-only snapshot of one catalog entry, safe to use
// without holding the warehouse lock.
type TableInfo struct {
	Name        string       `json:"name"`
	Columns     []ColumnInfo `json:"columns"`
	Format      string       `json:"format"`
	PartitionBy string       `json:"partition_by,omitempty"`
	HasDgfIndex bool         `json:"has_dgf_index"`
	HiveIndexes []string     `json:"hive_indexes,omitempty"`
	SizeBytes   int64        `json:"size_bytes"`
	Version     uint64       `json:"version"`
}

// TableInfos snapshots the whole catalog in one consistent read, sorted by
// table name.
func (w *Warehouse) TableInfos() []TableInfo {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]TableInfo, 0, len(w.tables))
	for key, t := range w.tables {
		cols := make([]ColumnInfo, len(t.Schema.Cols))
		for i, c := range t.Schema.Cols {
			cols[i] = ColumnInfo{Name: c.Name, Type: c.Kind.String()}
		}
		info := TableInfo{
			Name:        t.Name,
			Columns:     cols,
			Format:      t.Format.String(),
			PartitionBy: t.PartitionBy,
			HasDgfIndex: t.Dgf != nil,
			SizeBytes:   w.tableSizeBytesLocked(t),
			Version:     w.versions[key],
		}
		for name := range t.HiveIndexes {
			info.HiveIndexes = append(info.HiveIndexes, name)
		}
		sort.Strings(info.HiveIndexes)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateTable registers a new table and creates its directory.
func (w *Warehouse) CreateTable(name string, schema *storage.Schema, format hiveindex.Format) (*Table, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.createTableLocked(name, schema, format)
}

func (w *Warehouse) createTableLocked(name string, schema *storage.Schema, format hiveindex.Format) (*Table, error) {
	key := strings.ToLower(name)
	if _, ok := w.tables[key]; ok {
		return nil, fmt.Errorf("hive: table %q already exists", name)
	}
	t := &Table{
		Name:         name,
		Schema:       schema,
		Format:       format,
		Dir:          path.Join(w.Root, key),
		RowGroupRows: storage.DefaultRowGroupRows,
		HiveIndexes:  map[string]*hiveindex.Index{},
	}
	if err := w.FS.MkdirAll(t.Dir); err != nil {
		return nil, err
	}
	w.tables[key] = t
	w.bumpLocked(key)
	return t, nil
}

// Table looks a table up by name (case-insensitive, like HiveQL).
func (w *Warehouse) Table(name string) (*Table, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.tableLocked(name)
}

func (w *Warehouse) tableLocked(name string) (*Table, error) {
	t, ok := w.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("hive: table %q does not exist", name)
	}
	return t, nil
}

// TableSchema returns the named table's schema. Schemas are immutable once
// created, so the returned pointer is safe to use without the lock (the
// serving layer's /load endpoint decodes incoming rows against it).
func (w *Warehouse) TableSchema(name string) (*storage.Schema, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	t, err := w.tableLocked(name)
	if err != nil {
		return nil, err
	}
	return t.Schema, nil
}

// DropTable removes the table and its data.
func (w *Warehouse) DropTable(name string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropTableLocked(name)
}

func (w *Warehouse) dropTableLocked(name string) error {
	key := strings.ToLower(name)
	t, ok := w.tables[key]
	if !ok {
		return fmt.Errorf("hive: table %q does not exist", name)
	}
	delete(w.tables, key)
	w.bumpLocked(key)
	return w.FS.RemoveAll(t.Dir)
}

// TableNames lists the catalog, sorted.
func (w *Warehouse) TableNames() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.tableNamesLocked()
}

func (w *Warehouse) tableNamesLocked() []string {
	names := make([]string, 0, len(w.tables))
	for _, t := range w.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// LoadRows appends rows to the table as one new data file. When the table
// has a DGFIndex, the rows are first staged and then run through the index's
// append pipeline so that the reorganised layout and the GFU pairs stay
// consistent (the data-load flow of Section 4.2). Partitioned tables route
// each row into its partition's directory.
func (w *Warehouse) LoadRows(t *Table, rows []storage.Row) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loadRowsLocked(t, rows)
}

func (w *Warehouse) loadRowsLocked(t *Table, rows []storage.Row) error {
	if len(rows) == 0 {
		return nil
	}
	w.bumpLocked(strings.ToLower(t.Name))
	if t.PartitionBy != "" {
		return w.loadPartitionedLocked(t, rows)
	}
	if t.Dgf != nil {
		staging := path.Join(w.Root, "_staging", fmt.Sprintf("%s-%d", strings.ToLower(t.Name), t.fileSeq))
		t.fileSeq++
		if err := storage.WriteTextRows(w.FS, staging, rows); err != nil {
			return err
		}
		if _, err := t.Dgf.Append(w.Cluster, []string{staging}); err != nil {
			return err
		}
		return w.FS.Remove(staging)
	}
	name := path.Join(t.Dir, fmt.Sprintf("part-%05d", t.fileSeq))
	t.fileSeq++
	switch t.Format {
	case hiveindex.RCFile:
		_, err := storage.WriteRCRowsOpts(w.FS, name, t.Schema, rows, t.RowGroupRows,
			storage.RCWriteOptions{GroupBytes: t.RowGroupBytes, DisableEncoding: t.DisableEncoding})
		return err
	default:
		return storage.WriteTextRows(w.FS, name, rows)
	}
}

// loadPartitionedLocked splits the batch into one file per touched partition.
func (w *Warehouse) loadPartitionedLocked(t *Table, rows []storage.Row) error {
	ci := t.Schema.ColIndex(t.PartitionBy)
	if ci < 0 {
		return fmt.Errorf("hive: partition column %q not in schema of %q", t.PartitionBy, t.Name)
	}
	byPart := map[string][]storage.Row{}
	for _, r := range rows {
		byPart[r[ci].String()] = append(byPart[r[ci].String()], r)
	}
	for val, part := range byPart {
		dir := path.Join(t.Dir, t.PartitionBy+"="+val)
		name := path.Join(dir, fmt.Sprintf("part-%05d", t.fileSeq))
		t.fileSeq++
		var err error
		if t.Format == hiveindex.RCFile {
			_, err = storage.WriteRCRowsOpts(w.FS, name, t.Schema, part, t.RowGroupRows,
				storage.RCWriteOptions{GroupBytes: t.RowGroupBytes, DisableEncoding: t.DisableEncoding})
		} else {
			err = storage.WriteTextRows(w.FS, name, part)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadRowsByName resolves the table and appends rows under one write-lock
// acquisition, so the load can never interleave with a concurrent DROP or
// CREATE of the same table (LoadRows with a previously fetched *Table
// could).
func (w *Warehouse) LoadRowsByName(name string, rows []storage.Row) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, err := w.tableLocked(name)
	if err != nil {
		return err
	}
	return w.loadRowsLocked(t, rows)
}

// Partitions lists the table's partition values, sorted.
func (w *Warehouse) Partitions(t *Table) ([]string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.partitionsLocked(t)
}

func (w *Warehouse) partitionsLocked(t *Table) ([]string, error) {
	if t.PartitionBy == "" {
		return nil, fmt.Errorf("hive: table %q is not partitioned", t.Name)
	}
	entries, err := w.FS.List(t.Dir)
	if err != nil {
		return nil, err
	}
	prefix := t.PartitionBy + "="
	var out []string
	for _, e := range entries {
		if e.IsDir && strings.HasPrefix(e.Name, prefix) {
			out = append(out, strings.TrimPrefix(e.Name, prefix))
		}
	}
	sort.Strings(out)
	return out, nil
}

// partitionFilesLocked returns the data files of the partitions whose value
// satisfies keep (nil keeps all), plus how many partitions were pruned.
// Caller holds w.mu (either mode).
func (w *Warehouse) partitionFilesLocked(t *Table, keep func(storage.Value) bool) (files []string, kept, total int, err error) {
	vals, err := w.partitionsLocked(t)
	if err != nil {
		return nil, 0, 0, err
	}
	ci := t.Schema.ColIndex(t.PartitionBy)
	kind := t.Schema.Col(ci).Kind
	for _, raw := range vals {
		total++
		v, perr := storage.ParseValue(kind, raw)
		if perr != nil {
			v = storage.Str(raw)
		}
		if keep != nil && !keep(v) {
			continue
		}
		kept++
		fis, lerr := w.FS.ListFiles(path.Join(t.Dir, t.PartitionBy+"="+raw))
		if lerr != nil {
			return nil, 0, 0, lerr
		}
		for _, fi := range fis {
			files = append(files, fi.Path)
		}
	}
	return files, kept, total, nil
}

// TableSizeBytes returns the total data size of the table.
func (w *Warehouse) TableSizeBytes(t *Table) int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.tableSizeBytesLocked(t)
}

func (w *Warehouse) tableSizeBytesLocked(t *Table) int64 {
	var n int64
	if t.PartitionBy != "" {
		files, _, _, err := w.partitionFilesLocked(t, nil)
		if err != nil {
			return 0
		}
		for _, f := range files {
			if fi, err := w.FS.Stat(f); err == nil {
				n += fi.Size
			}
		}
		return n
	}
	files, err := w.FS.ListFiles(t.Dir)
	if err != nil {
		return 0
	}
	for _, f := range files {
		n += f.Size
	}
	return n
}

// BuildDgfIndex builds the table's DGFIndex from a spec, reorganising the
// table data (Listing 3 ends up here).
func (w *Warehouse) BuildDgfIndex(t *Table, spec dgf.Spec) (*dgf.BuildStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buildDgfIndexLocked(t, spec)
}

func (w *Warehouse) buildDgfIndexLocked(t *Table, spec dgf.Spec) (*dgf.BuildStats, error) {
	if t.Dgf != nil {
		return nil, fmt.Errorf("hive: table %q already has a DGFIndex (each table can create only one)", t.Name)
	}
	if t.PartitionBy != "" {
		return nil, fmt.Errorf("hive: table %q is partitioned; the experiments assume unpartitioned tables (paper Section 5.2: \"we suppose that there is no partitions\")", t.Name)
	}
	// The paper restricts builds to TextFile tables (Section 5.3.1); the
	// segment abstraction lifts that: an RCFile table's index records
	// row-group-granular slices and its reads push column projections down.
	kv := kvstore.New()
	dataDir := t.Dir + "_dgf"
	src := dgf.Source{Dir: t.Dir, Format: t.Format, GroupRows: t.RowGroupRows, GroupBytes: t.RowGroupBytes}
	ix, stats, err := dgf.Build(w.Cluster, w.FS, kv, spec, t.Schema, src, dataDir)
	if err != nil {
		return nil, err
	}
	t.Dgf = ix
	t.DgfKV = kv
	// The reorganised data replaces the original table layout.
	oldDir := t.Dir
	t.Dir = dataDir
	w.bumpLocked(strings.ToLower(t.Name))
	if err := w.FS.RemoveAll(oldDir); err != nil {
		return nil, err
	}
	return stats, nil
}

// BuildHiveIndex builds a Compact/Aggregate/Bitmap index on the table.
// Indexing partitioned tables (the per-partition indexes Section 6 calls
// "the best way to improve Hive performance") is not implemented; combine
// partitioning with an index by indexing an unpartitioned copy.
func (w *Warehouse) BuildHiveIndex(t *Table, name string, kind hiveindex.Kind, cols []string, indexFormat hiveindex.Format) (*hiveindex.Index, error) {
	ix, _, err := w.BuildHiveIndexStats(t, name, kind, cols, indexFormat)
	return ix, err
}

// BuildHiveIndexStats is BuildHiveIndex returning the build job statistics
// (Table 2 and Table 5 report construction times).
func (w *Warehouse) BuildHiveIndexStats(t *Table, name string, kind hiveindex.Kind, cols []string, indexFormat hiveindex.Format) (*hiveindex.Index, float64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buildHiveIndexStatsLocked(t, name, kind, cols, indexFormat)
}

func (w *Warehouse) buildHiveIndexStatsLocked(t *Table, name string, kind hiveindex.Kind, cols []string, indexFormat hiveindex.Format) (*hiveindex.Index, float64, error) {
	if t.PartitionBy != "" {
		return nil, 0, fmt.Errorf("hive: cannot index partitioned table %q", t.Name)
	}
	if _, ok := t.HiveIndexes[strings.ToLower(name)]; ok {
		return nil, 0, fmt.Errorf("hive: index %q already exists on %q", name, t.Name)
	}
	ix, stats, err := hiveindex.Build(w.Cluster, w.FS, hiveindex.Options{
		Name: name, Kind: kind,
		BaseDir: t.Dir, BaseFormat: t.Format,
		Schema: t.Schema, Cols: cols,
		IndexDir:        path.Join(w.Root, "_idx_"+strings.ToLower(t.Name)+"_"+strings.ToLower(name)),
		IndexFormat:     indexFormat,
		RowGroupRows:    t.RowGroupRows,
		DisableEncoding: t.DisableEncoding,
	})
	if err != nil {
		return nil, 0, err
	}
	t.HiveIndexes[strings.ToLower(name)] = ix
	w.bumpLocked(strings.ToLower(t.Name))
	return ix, stats.SimTotalSec(), nil
}
