package hive

import (
	"strings"
	"testing"
)

func TestPartitionedTableDDL(t *testing.T) {
	w := testWarehouse(1 << 16)
	res := mustExec(t, w, `CREATE TABLE pm (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double) PARTITIONED BY (regionId)`)
	if !strings.Contains(res.Message, "partitioned by regionId") {
		t.Errorf("message = %q", res.Message)
	}
	if _, err := w.Exec(`CREATE TABLE bad (x bigint) PARTITIONED BY (ghost)`); err == nil {
		t.Error("unknown partition column accepted")
	}
}

func TestPartitionedLoadAndLayout(t *testing.T) {
	w := testWarehouse(1 << 16)
	mustExec(t, w, `CREATE TABLE pm (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double) PARTITIONED BY (regionId)`)
	tbl, _ := w.Table("pm")
	rows := meterRows(40, 4, 3)
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	parts, err := w.Partitions(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("partitions = %v, want 4 regions", parts)
	}
	// Each partition directory holds only its region's rows.
	if got := w.TableSizeBytes(tbl); got <= 0 {
		t.Errorf("TableSizeBytes = %d", got)
	}
	// NameNode metadata grew by one directory per partition.
	st := w.FS.NameNodeUsage()
	if st.Dirs < 5 {
		t.Errorf("directories = %d, want at least table+4 partitions", st.Dirs)
	}
}

func TestPartitionPruning(t *testing.T) {
	w := testWarehouse(1 << 14)
	mustExec(t, w, `CREATE TABLE pm (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double) PARTITIONED BY (regionId)`)
	tbl, _ := w.Table("pm")
	rows := meterRows(60, 6, 4)
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	// Query constrained to two of six regions must prune the rest.
	res := mustExec(t, w, `SELECT count(*) FROM pm WHERE regionId>=2 AND regionId<=3`)
	if res.Stats.AccessPath != "scan(partitions 2/6)" {
		t.Errorf("access path = %q", res.Stats.AccessPath)
	}
	want := 0
	for _, r := range rows {
		if r[1].I >= 2 && r[1].I <= 3 {
			want++
		}
	}
	if int(res.Rows[0][0].F) != want {
		t.Errorf("count = %v, want %d", res.Rows[0][0].F, want)
	}
	// The pruned scan reads only the kept partitions' records.
	if res.Stats.RecordsRead != int64(want) {
		t.Errorf("records read = %d, want %d (only kept partitions)", res.Stats.RecordsRead, want)
	}
	// Unconstrained queries read everything.
	all := mustExec(t, w, `SELECT count(*) FROM pm`)
	if all.Stats.AccessPath != "scan(partitions 6/6)" {
		t.Errorf("unpruned path = %q", all.Stats.AccessPath)
	}
	if int(all.Rows[0][0].F) != len(rows) {
		t.Errorf("full count = %v", all.Rows[0][0].F)
	}
}

func TestPartitionedRCFile(t *testing.T) {
	w := testWarehouse(1 << 14)
	mustExec(t, w, `CREATE TABLE pm (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double) PARTITIONED BY (regionId) STORED AS RCFILE`)
	tbl, _ := w.Table("pm")
	tbl.RowGroupRows = 16
	rows := meterRows(30, 3, 4)
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, w, `SELECT count(*) FROM pm WHERE regionId=1`)
	want := 0
	for _, r := range rows {
		if r[1].I == 1 {
			want++
		}
	}
	if int(res.Rows[0][0].F) != want {
		t.Errorf("count = %v, want %d", res.Rows[0][0].F, want)
	}
	if !strings.HasPrefix(res.Stats.AccessPath, "scan(partitions 1/") {
		t.Errorf("access path = %q", res.Stats.AccessPath)
	}
}

func TestIndexesRejectPartitionedTables(t *testing.T) {
	w := testWarehouse(1 << 16)
	mustExec(t, w, `CREATE TABLE pm (userId bigint, regionId bigint, ts timestamp,
		powerConsumed double) PARTITIONED BY (regionId)`)
	if _, err := w.Exec(`CREATE INDEX i ON TABLE pm(userId) AS 'dgf' IDXPROPERTIES ('userId'='1_10')`); err == nil {
		t.Error("DGFIndex on partitioned table accepted")
	}
	if _, err := w.Exec(`CREATE INDEX i2 ON TABLE pm(userId) AS 'compact'`); err == nil {
		t.Error("Compact index on partitioned table accepted")
	}
}

func TestPartitionsOnUnpartitionedTable(t *testing.T) {
	w := testWarehouse(1 << 16)
	mustExec(t, w, `CREATE TABLE plain (x bigint)`)
	tbl, _ := w.Table("plain")
	if _, err := w.Partitions(tbl); err == nil {
		t.Error("Partitions on unpartitioned table succeeded")
	}
}
