package hive

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Cursor is an incremental view of one SELECT's result. Plain projections
// stream rows as their splits complete (row order is split-completion order,
// not the deterministic key order of Exec); aggregations deliver their rows
// once the reduce phase finalizes. A cursor over `LIMIT n` stops consuming
// input at the next split boundary once n rows have been delivered, so a
// limited scan reads strictly less data than a full one.
//
// The usage contract is the database/sql one: call Next until it returns
// false, then inspect Err; Stats carries the final QueryStats (partial
// progress when the scan was aborted). Close aborts an unfinished scan and
// releases its resources; it is always safe to call. A Cursor must not be
// used from multiple goroutines concurrently.
type Cursor interface {
	// Next advances to the next row, blocking until one is available or the
	// scan ends. It returns false when the rows are exhausted, the scan was
	// aborted, or the cursor closed.
	Next() bool
	// Row returns the current row. Valid after a true Next, until the next
	// call to Next.
	Row() storage.Row
	// Columns returns the output column names. It blocks until the
	// statement is compiled (immediately after the cursor opens, before any
	// data is read).
	Columns() []string
	// Stats returns the query's cost breakdown: final stats after a
	// complete scan, partial progress (records and splits consumed before
	// the abort) after a cancelled one. It blocks until the scan goroutine
	// finishes, so call it after Next returned false or after Close.
	Stats() QueryStats
	// Err returns the terminal error: nil after a clean end-of-rows or a
	// caller Close, the (wrapped) ctx error after a cancellation or missed
	// deadline, or the execution error that stopped the scan.
	Err() error
	// Close aborts the scan if still running, drains and releases the
	// cursor. Always returns nil; inspect Err for the scan's outcome.
	Close() error
}

// cursorBuffer is the row channel depth of a streaming cursor: deep enough
// to decouple producer splits from a briefly slow consumer, shallow enough
// that an abandoned cursor applies backpressure instead of materializing the
// result.
const cursorBuffer = 64

// SelectCursor opens a streaming cursor over one SELECT. The scan runs on a
// background goroutine holding the catalog read lock; cancelling ctx (or
// closing the cursor) aborts it within one split boundary. INSERT OVERWRITE
// DIRECTORY sinks cannot stream.
func (w *Warehouse) SelectCursor(ctx context.Context, stmt *SelectStmt, opts ExecOptions) (Cursor, error) {
	if stmt.InsertDir != "" {
		return nil, fmt.Errorf("hive: INSERT OVERWRITE DIRECTORY cannot be streamed through a cursor")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("hive: cursor not opened: %w", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	c := &streamCursor{
		ch:     make(chan storage.Row, cursorBuffer),
		cancel: cancel,
		done:   make(chan struct{}),
		ready:  make(chan struct{}),
	}
	go c.run(w, cctx, stmt, opts)
	return c, nil
}

// streamCursor is the Warehouse cursor: a bounded row channel fed by the
// scan goroutine. Fields below ch/cancel/done/ready are written by the scan
// goroutine before done closes and read by the consumer after it — the
// channel close orders them.
type streamCursor struct {
	ch     chan storage.Row
	cancel context.CancelFunc
	done   chan struct{}
	ready  chan struct{} // closed once cols is set (or compilation failed)

	readyOnce sync.Once
	closed    atomic.Bool // caller called Close; suppress the self-inflicted ctx error

	cols  []string
	stats QueryStats
	err   error

	row storage.Row // consumer-side current row
}

func (c *streamCursor) run(w *Warehouse, ctx context.Context, stmt *SelectStmt, opts ExecOptions) {
	defer close(c.done)
	start := time.Now()
	limit := stmt.Limit
	sent := 0
	sink := &rowStream{
		columns: func(cols []string) {
			c.cols = cols
			c.readyOnce.Do(func() { close(c.ready) })
		},
		row: func(row storage.Row) bool {
			select {
			case c.ch <- row:
			case <-ctx.Done():
				return false
			}
			sent++
			return limit <= 0 || sent < limit
		},
	}

	// Plan under the catalog lock, then release it before the job runs: the
	// scan phase is paced by the consumer (possibly a slow HTTP client),
	// and holding a read lock across it would let one stalled stream block
	// every writer — and then every other query — on the warehouse. The
	// job reads a snapshot of the file layout; a concurrent DROP surfaces
	// as a read error through Err, never as a hang.
	w.mu.RLock()
	p, err := w.prepareSelectLocked(stmt, opts, sink)
	w.mu.RUnlock()
	c.readyOnce.Do(func() { close(c.ready) }) // compilation failed: unblock Columns
	var pr *PartialResult
	if err == nil {
		pr, err = w.runPreparedSelect(ctx, p, sink)
	}

	if err == nil && pr != nil && (pr.Agg != nil || pr.Rows != nil) {
		// Aggregations (and the agg-index rewrite) only have rows after the
		// merge: finalize, then stream them out.
		res := pr.Finalize(stmt.Limit)
		for _, row := range res.Rows {
			select {
			case c.ch <- row:
				sent++
			case <-ctx.Done():
				err = ctx.Err()
			}
			if err != nil {
				break
			}
		}
		c.stats = res.Stats
	} else if pr != nil {
		c.stats = pr.Stats
	}
	c.stats.RowsOut = sent
	c.stats.Wall = time.Since(start)
	if c.closed.Load() && errors.Is(err, context.Canceled) {
		// The caller closed the cursor; the resulting self-cancellation is
		// a clean shutdown, not an error.
		err = nil
	}
	c.err = err
	close(c.ch)
}

func (c *streamCursor) Next() bool {
	row, ok := <-c.ch
	if !ok {
		c.row = nil
		return false
	}
	c.row = row
	return true
}

func (c *streamCursor) Row() storage.Row { return c.row }

func (c *streamCursor) Columns() []string {
	<-c.ready
	return c.cols
}

func (c *streamCursor) Stats() QueryStats {
	<-c.done
	return c.stats
}

func (c *streamCursor) Err() error {
	<-c.done
	return c.err
}

func (c *streamCursor) Close() error {
	c.closed.Store(true)
	c.cancel()
	for range c.ch {
		// Drain so the scan goroutine never blocks on a send.
	}
	<-c.done
	return nil
}

// rowsCursor replays an already-materialized result as a Cursor — the
// adapter backends without a native streaming path (or fully merged
// scatter-gather aggregations) hand to streaming consumers.
type rowsCursor struct {
	cols  []string
	rows  []storage.Row
	stats QueryStats
	pos   int
}

// NewRowsCursor wraps a finished Result in a Cursor.
func NewRowsCursor(res *Result) Cursor {
	return &rowsCursor{cols: res.Columns, rows: res.Rows, stats: res.Stats}
}

func (c *rowsCursor) Next() bool {
	if c.pos >= len(c.rows) {
		return false
	}
	c.pos++
	return true
}

func (c *rowsCursor) Row() storage.Row {
	if c.pos == 0 || c.pos > len(c.rows) {
		return nil
	}
	return c.rows[c.pos-1]
}

func (c *rowsCursor) Columns() []string  { return c.cols }
func (c *rowsCursor) Stats() QueryStats  { return c.stats }
func (c *rowsCursor) Err() error         { return nil }
func (c *rowsCursor) Close() error       { c.pos = len(c.rows); return nil }
