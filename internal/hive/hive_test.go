package hive

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testWarehouse(blockSize int64) *Warehouse {
	cfg := cluster.Default()
	cfg.Workers = 4
	return NewWarehouse(dfs.New(blockSize), cfg, "/warehouse")
}

// meterRows builds a deterministic mini meter dataset: users x days with
// one reading per day; regionId = userId % regions.
func meterRows(users, regions, days int) []storage.Row {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(99))
	var rows []storage.Row
	for d := 0; d < days; d++ {
		ts := base.AddDate(0, 0, d)
		for u := 1; u <= users; u++ {
			rows = append(rows, storage.Row{
				storage.Int64(int64(u)),
				storage.Int64(int64(u%regions + 1)),
				storage.Time(ts),
				storage.Float64(math.Round(rng.Float64()*1000) / 100),
			})
		}
	}
	return rows
}

func mustExec(t *testing.T, w *Warehouse, sql string) *Result {
	t.Helper()
	res, err := w.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setupMeterTable(t *testing.T, w *Warehouse, users, regions, days int) []storage.Row {
	t.Helper()
	mustExec(t, w, `CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`)
	rows := meterRows(users, regions, days)
	tbl, _ := w.Table("meterdata")
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return rows
}

func createDgf(t *testing.T, w *Warehouse) {
	t.Helper()
	mustExec(t, w, `CREATE INDEX idx_dgf ON TABLE meterdata(regionId, userId, ts)
		AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'
		IDXPROPERTIES ('regionId'='1_1', 'userId'='1_10', 'ts'='2012-12-01_1d',
		               'precompute'='sum(powerConsumed);count(*)')`)
}

func TestParserListings(t *testing.T) {
	// The paper's query listings must all parse.
	listings := []string{
		// Listing 2
		`SELECT SUM(C) FROM T WHERE A>=5 AND A<12 AND B>=12 AND B<16;`,
		// Listing 3
		`CREATE INDEX idx_a_b ON TABLE T(A,B) AS 'org.dgf.DgfIndexHandler'
		 IDXPROPERTIES ('A'='1_3', 'B'='11_2', 'precompute'='sum(C)')`,
		// Listing 4
		`SELECT sum(powerConsumed) FROM meterdata
		 WHERE regionId>1 and regionId<5 and userId>10 and userId<400 and ts>'2012-12-02' and ts<'2012-12-20'`,
		// Listing 5
		`SELECT ts,sum(powerConsumed) FROM meterdata
		 WHERE regionId>1 and regionId<5 GROUP BY ts`,
		// Listing 6
		`INSERT OVERWRITE DIRECTORY '/tmp/result'
		 SELECT t2.userName,t1.powerConsumed FROM meterdata t1 JOIN userInfo t2
		 ON t1.userId=t2.userId WHERE t1.regionId>1 AND t1.regionId<5`,
		// Listing 7
		`SELECT SUM(powerConsumed) FROM meterdata WHERE regionId=11 AND ts='2012-12-30'`,
		// TPC-H Q6
		`SELECT sum(l_extendedprice*l_discount) FROM lineitem
		 WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
		 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,
	}
	for _, sql := range listings {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC x FROM t",
		"SELECT FROM t",
		"SELECT x t",                 // missing FROM
		"CREATE VIEW v AS SELECT 1",  // unsupported
		"SELECT x FROM t WHERE x >",  // missing literal
		"SELECT x FROM t LIMIT huh",  // bad limit
		"SELECT x FROM t GROUP BY",   // missing col
		"SELECT sum(x FROM t",        // unbalanced
		"SELECT x FROM t; SELECT y",  // trailing statement
		"CREATE TABLE t (x blobbby)", // bad type
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestDDLAndCatalog(t *testing.T) {
	w := testWarehouse(1 << 20)
	mustExec(t, w, "CREATE TABLE a (x bigint, y double)")
	mustExec(t, w, "CREATE TABLE b (z string) STORED AS RCFILE")
	res := mustExec(t, w, "SHOW TABLES")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" {
		t.Errorf("SHOW TABLES = %v", res.Rows)
	}
	res = mustExec(t, w, "DESCRIBE a")
	if len(res.Rows) != 2 || res.Rows[1][1].S != "double" {
		t.Errorf("DESCRIBE = %v", res.Rows)
	}
	mustExec(t, w, "DROP TABLE a")
	if _, err := w.Exec("DESCRIBE a"); err == nil {
		t.Error("dropped table still described")
	}
	if _, err := w.Exec("CREATE TABLE b (x bigint)"); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestScalarAggScan(t *testing.T) {
	w := testWarehouse(1 << 16)
	rows := setupMeterTable(t, w, 50, 5, 10)
	res := mustExec(t, w, `SELECT sum(powerConsumed), count(*), avg(powerConsumed),
		min(powerConsumed), max(powerConsumed) FROM meterdata WHERE userId>=10 AND userId<=20`)
	if res.Stats.AccessPath != "scan" {
		t.Errorf("access path = %s", res.Stats.AccessPath)
	}
	var sum, minV, maxV float64
	var n int64
	minV, maxV = math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if r[0].I >= 10 && r[0].I <= 20 {
			v := r[3].F
			sum += v
			n++
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	got := res.Rows[0]
	if math.Abs(got[0].F-sum) > 1e-9 || int64(got[1].F) != n {
		t.Errorf("sum/count = %v/%v, want %v/%v", got[0].F, got[1].F, sum, n)
	}
	if math.Abs(got[2].F-sum/float64(n)) > 1e-9 {
		t.Errorf("avg = %v", got[2].F)
	}
	if got[3].F != minV || got[4].F != maxV {
		t.Errorf("min/max = %v/%v, want %v/%v", got[3].F, got[4].F, minV, maxV)
	}
}

func TestDgfAggregationUsesPrecompute(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := setupMeterTable(t, w, 100, 5, 10)
	createDgf(t, w)
	sql := `SELECT sum(powerConsumed) FROM meterdata
		WHERE regionId>=2 AND regionId<=4 AND userId>=15 AND userId<=80
		AND ts>='2012-12-02' AND ts<'2012-12-08'`
	res := mustExec(t, w, sql)
	if res.Stats.AccessPath != "dgfindex(precompute)" {
		t.Fatalf("access path = %s", res.Stats.AccessPath)
	}
	want := 0.0
	t2 := time.Date(2012, 12, 2, 0, 0, 0, 0, time.UTC).Unix()
	t8 := time.Date(2012, 12, 8, 0, 0, 0, 0, time.UTC).Unix()
	var inRange int64
	for _, r := range rows {
		if r[1].I >= 2 && r[1].I <= 4 && r[0].I >= 15 && r[0].I <= 80 &&
			r[2].I >= t2 && r[2].I < t8 {
			want += r[3].F
			inRange++
		}
	}
	if math.Abs(res.Rows[0][0].F-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", res.Rows[0][0].F, want)
	}
	// Pre-computation means the scan reads fewer records than match.
	if res.Stats.RecordsRead >= inRange {
		t.Errorf("precompute read %d records for %d matches", res.Stats.RecordsRead, inRange)
	}
}

func TestDgfMatchesScanOnEveryQueryShape(t *testing.T) {
	build := func(withIndex bool) *Warehouse {
		w := testWarehouse(1 << 13)
		setupMeterTable(t, w, 60, 4, 8)
		if withIndex {
			createDgf(t, w)
		}
		return w
	}
	plain, indexed := build(false), build(true)
	queries := []string{
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=25`,
		`SELECT count(*) FROM meterdata WHERE regionId=2 AND ts>='2012-12-03' AND ts<='2012-12-05'`,
		`SELECT avg(powerConsumed) FROM meterdata WHERE userId>10 AND userId<40 AND regionId>=1 AND regionId<=3`,
		`SELECT ts, sum(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=45 GROUP BY ts`,
		`SELECT regionId, count(*), max(powerConsumed) FROM meterdata WHERE userId<30 GROUP BY regionId`,
		`SELECT sum(powerConsumed) FROM meterdata WHERE regionId=1 AND ts='2012-12-04'`, // partial (Listing 7)
		`SELECT userId, powerConsumed FROM meterdata WHERE userId=7 AND ts='2012-12-02'`,
	}
	for _, sql := range queries {
		a := mustExec(t, plain, sql)
		b := mustExec(t, indexed, sql)
		if a.Stats.AccessPath == b.Stats.AccessPath {
			t.Errorf("index not used for %q (both %s)", sql, a.Stats.AccessPath)
		}
		if !rowsEqual(a.Rows, b.Rows) {
			t.Errorf("results differ for %q:\nscan: %v\ndgf:  %v", sql, fmtRows(a.Rows), fmtRows(b.Rows))
		}
	}
}

func rowsEqual(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Kind == storage.KindFloat64 || y.Kind == storage.KindFloat64 {
				if math.Abs(x.AsFloat()-y.AsFloat()) > 1e-6*(1+math.Abs(x.AsFloat())) {
					return false
				}
			} else if storage.Compare(x, y) != 0 {
				return false
			}
		}
	}
	return true
}

func fmtRows(rows []storage.Row) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(storage.EncodeTextRow(r))
		b.WriteByte('|')
	}
	return b.String()
}

func TestJoinQueryListing6(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := setupMeterTable(t, w, 40, 4, 5)
	mustExec(t, w, `CREATE TABLE userInfo (userId bigint, userName string)`)
	users, _ := w.Table("userInfo")
	var userRows []storage.Row
	for u := 1; u <= 40; u++ {
		userRows = append(userRows, storage.Row{
			storage.Int64(int64(u)), storage.Str(fmt.Sprintf("user-%02d", u)),
		})
	}
	if err := w.LoadRows(users, userRows); err != nil {
		t.Fatal(err)
	}
	createDgf(t, w)
	res := mustExec(t, w, `INSERT OVERWRITE DIRECTORY '/tmp/result'
		SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo t2
		ON t1.userId=t2.userId
		WHERE t1.regionId>=2 AND t1.regionId<=3 AND t1.userId>=5 AND t1.userId<=20
		AND t1.ts>='2012-12-02' AND t1.ts<'2012-12-04'`)
	want := 0
	lo := time.Date(2012, 12, 2, 0, 0, 0, 0, time.UTC).Unix()
	hi := time.Date(2012, 12, 4, 0, 0, 0, 0, time.UTC).Unix()
	for _, r := range rows {
		if r[1].I >= 2 && r[1].I <= 3 && r[0].I >= 5 && r[0].I <= 20 && r[2].I >= lo && r[2].I < hi {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("join produced %d rows, want %d", len(res.Rows), want)
	}
	if res.Rows[0][0].Kind != storage.KindString || !strings.HasPrefix(res.Rows[0][0].S, "user-") {
		t.Errorf("first column = %v, want userName", res.Rows[0][0])
	}
	// Results were also written to the sink directory.
	if !w.FS.Exists("/tmp/result/000000_0") {
		t.Error("INSERT OVERWRITE DIRECTORY wrote nothing")
	}
}

func TestCompactIndexPath(t *testing.T) {
	w := testWarehouse(1 << 12)
	rows := setupMeterTable(t, w, 60, 4, 6)
	mustExec(t, w, `CREATE INDEX idx_c ON TABLE meterdata(regionId, ts)
		AS 'org.apache.hadoop.hive.ql.index.compact.CompactIndexHandler'`)
	res := mustExec(t, w, `SELECT sum(powerConsumed) FROM meterdata
		WHERE regionId=2 AND ts>='2012-12-02' AND ts<='2012-12-03'`)
	if res.Stats.AccessPath != "index:idx_c" {
		t.Fatalf("access path = %s", res.Stats.AccessPath)
	}
	want := 0.0
	lo := time.Date(2012, 12, 2, 0, 0, 0, 0, time.UTC).Unix()
	hi := time.Date(2012, 12, 3, 0, 0, 0, 0, time.UTC).Unix()
	for _, r := range rows {
		if r[1].I == 2 && r[2].I >= lo && r[2].I <= hi {
			want += r[3].F
		}
	}
	if math.Abs(res.Rows[0][0].F-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", res.Rows[0][0].F, want)
	}
	// Index path must cost simulated index time.
	if res.Stats.IndexSimSec <= 0 {
		t.Error("no index read time recorded")
	}
}

func TestAggregateIndexRewritePath(t *testing.T) {
	w := testWarehouse(1 << 16)
	rows := setupMeterTable(t, w, 50, 5, 4)
	mustExec(t, w, `CREATE INDEX idx_a ON TABLE meterdata(regionId)
		AS 'org.apache.hadoop.hive.ql.index.AggregateIndexHandler'`)
	res := mustExec(t, w, `SELECT regionId, count(*) FROM meterdata
		WHERE regionId>=2 AND regionId<=4 GROUP BY regionId`)
	if !strings.HasPrefix(res.Stats.AccessPath, "aggindex-rewrite:") {
		t.Fatalf("access path = %s", res.Stats.AccessPath)
	}
	want := map[int64]int64{}
	for _, r := range rows {
		if r[1].I >= 2 && r[1].I <= 4 {
			want[r[1].I]++
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if int64(row[1].F) != want[row[0].I] {
			t.Errorf("count[%d] = %v, want %d", row[0].I, row[1].F, want[row[0].I])
		}
	}
}

func TestDisableIndexesOption(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupMeterTable(t, w, 30, 3, 4)
	createDgf(t, w)
	res, err := w.ExecOpts(`SELECT count(*) FROM meterdata WHERE userId<10`, ExecOptions{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AccessPath != "scan" {
		t.Errorf("access path = %s, want scan", res.Stats.AccessPath)
	}
}

func TestProjectionAndLimit(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 20, 4, 3)
	res := mustExec(t, w, `SELECT userId, regionId FROM meterdata WHERE regionId=1 LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Errorf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].I != 1 {
			t.Errorf("filter leaked row %v", r)
		}
	}
	if res.Columns[0] != "userId" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 5, 2, 1)
	res := mustExec(t, w, `SELECT * FROM meterdata LIMIT 3`)
	if len(res.Columns) != 4 || len(res.Rows) != 3 {
		t.Errorf("SELECT * = %v cols, %d rows", res.Columns, len(res.Rows))
	}
}

func TestAggOverEmptyResult(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 10, 2, 2)
	res := mustExec(t, w, `SELECT count(*), sum(powerConsumed) FROM meterdata WHERE userId>1000`)
	if len(res.Rows) != 1 {
		t.Fatalf("scalar agg returned %d rows", len(res.Rows))
	}
	if res.Rows[0][0].F != 0 {
		t.Errorf("count = %v, want 0", res.Rows[0][0].F)
	}
}

func TestCompileErrors(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 5, 2, 1)
	bad := []string{
		`SELECT ghost FROM meterdata`,
		`SELECT sum(ghost) FROM meterdata`,
		`SELECT userId, sum(powerConsumed) FROM meterdata`, // userId not grouped
		`SELECT sum(powerConsumed) FROM ghost`,
		`SELECT t2.x FROM meterdata t1 JOIN ghost t2 ON t1.userId=t2.userId`,
	}
	for _, sql := range bad {
		if _, err := w.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
}

func TestRCFileTableScan(t *testing.T) {
	w := testWarehouse(1 << 14)
	mustExec(t, w, `CREATE TABLE rcmeter (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS RCFILE`)
	tbl, _ := w.Table("rcmeter")
	tbl.RowGroupRows = 16
	rows := meterRows(20, 4, 5)
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, w, `SELECT count(*) FROM rcmeter WHERE regionId=1`)
	want := 0
	for _, r := range rows {
		if r[1].I == 1 {
			want++
		}
	}
	if int(res.Rows[0][0].F) != want {
		t.Errorf("count = %v, want %d", res.Rows[0][0].F, want)
	}
}

func TestDgfOnlyOnePerTable(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 10, 2, 2)
	createDgf(t, w)
	_, err := w.Exec(`CREATE INDEX idx2 ON TABLE meterdata(userId)
		AS 'dgf' IDXPROPERTIES ('userId'='1_5')`)
	if err == nil || !strings.Contains(err.Error(), "only one") {
		t.Errorf("second DGFIndex: %v", err)
	}
}

func TestLoadRowsThroughDgfAppend(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := setupMeterTable(t, w, 20, 2, 2)
	createDgf(t, w)
	tbl, _ := w.Table("meterdata")
	extra := meterRows(20, 2, 1) // one more day (same dates, but fine)
	if err := w.LoadRows(tbl, extra); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, w, `SELECT count(*) FROM meterdata`)
	if int(res.Rows[0][0].F) != len(rows)+len(extra) {
		t.Errorf("count = %v, want %d", res.Rows[0][0].F, len(rows)+len(extra))
	}
}

func TestStatsBreakdown(t *testing.T) {
	w := testWarehouse(1 << 13)
	setupMeterTable(t, w, 80, 4, 6)
	createDgf(t, w)
	res := mustExec(t, w, `SELECT sum(powerConsumed) FROM meterdata
		WHERE userId>=10 AND userId<=30 AND regionId>=1 AND regionId<=2
		AND ts>='2012-12-02' AND ts<'2012-12-05'`)
	st := res.Stats
	if st.IndexSimSec <= 0 || st.DataSimSec < 0 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.SimTotalSec()-(st.IndexSimSec+st.DataSimSec)) > 1e-9 {
		t.Error("SimTotalSec mismatch")
	}
	if st.Wall <= 0 {
		t.Error("wall time missing")
	}
}

// setupMeterTableFormat is setupMeterTable with an explicit storage clause
// and row-group sizing (small groups so RCFile slices span several).
func setupMeterTableFormat(t *testing.T, w *Warehouse, users, regions, days int, stored string) []storage.Row {
	t.Helper()
	mustExec(t, w, fmt.Sprintf(`CREATE TABLE meterdata (userId bigint, regionId bigint,
		ts timestamp, powerConsumed double) STORED AS %s`, stored))
	rows := meterRows(users, regions, days)
	tbl, _ := w.Table("meterdata")
	tbl.RowGroupRows = 16
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return rows
}

// renderExact renders result rows with exact float bits for bit-identity
// comparisons across storage formats.
func renderExact(rows []storage.Row) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			if v.Kind == storage.KindFloat64 {
				fmt.Fprintf(&b, "%x", v.F)
			} else {
				b.WriteString(v.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDgfOnRCFileBitIdentical is the acceptance criterion of the
// format-agnostic index I/O refactor: CREATE INDEX ... 'dgf' succeeds on a
// STORED AS RCFILE table, every index-guided query answers bit-identically
// to the TextFile equivalent, and queries projecting a column subset read
// strictly fewer bytes from the RCFile layout.
func TestDgfOnRCFileBitIdentical(t *testing.T) {
	textW := testWarehouse(1 << 14)
	setupMeterTableFormat(t, textW, 40, 4, 8, "TEXTFILE")
	createDgf(t, textW)
	rcW := testWarehouse(1 << 14)
	setupMeterTableFormat(t, rcW, 40, 4, 8, "RCFILE")
	createDgf(t, rcW) // must succeed on the RCFile table

	queries := []string{
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=30`,
		`SELECT count(*), sum(powerConsumed), avg(powerConsumed), min(powerConsumed), max(powerConsumed) FROM meterdata WHERE userId>=3 AND userId<=37`,
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId=7`,
		`SELECT regionId, avg(powerConsumed), count(*) FROM meterdata WHERE ts>='2012-12-02' AND ts<'2012-12-06' GROUP BY regionId`,
		`SELECT userId, powerConsumed FROM meterdata WHERE userId=11 AND ts<'2012-12-03'`,
		`SELECT count(*) FROM meterdata WHERE userId>=1000`,
		`SELECT * FROM meterdata WHERE userId=19 AND ts='2012-12-04'`,
	}
	var projectingLower bool
	for _, q := range queries {
		wantRes := mustExec(t, textW, q)
		gotRes := mustExec(t, rcW, q)
		if !strings.HasPrefix(wantRes.Stats.AccessPath, "dgfindex") ||
			!strings.HasPrefix(gotRes.Stats.AccessPath, "dgfindex") {
			t.Fatalf("%q: access paths %q vs %q, want dgfindex on both", q, wantRes.Stats.AccessPath, gotRes.Stats.AccessPath)
		}
		if want, got := renderExact(wantRes.Rows), renderExact(gotRes.Rows); want != got {
			t.Fatalf("%q: results differ\ntext:\n%s\nrcfile:\n%s", q, want, got)
		}
		// The vectorised RCFile path may zone-prune row groups inside the
		// selected slices, so it delivers at most as many records as the
		// TextFile path — and any shortfall must be accounted for by skips.
		if gotRes.Stats.RecordsRead > wantRes.Stats.RecordsRead {
			t.Errorf("%q: RCFile read more records: %d vs %d", q, gotRes.Stats.RecordsRead, wantRes.Stats.RecordsRead)
		}
		if gotRes.Stats.RecordsRead < wantRes.Stats.RecordsRead && gotRes.Stats.GroupsSkipped == 0 {
			t.Errorf("%q: records read differ (%d vs %d) without any skipped groups",
				q, wantRes.Stats.RecordsRead, gotRes.Stats.RecordsRead)
		}
		// With vectorisation off, the RCFile row path must match the
		// TextFile record count exactly (and the rows bit-identically).
		rowRes, err := rcW.ExecOpts(q, ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatalf("%q (row path): %v", q, err)
		}
		if want, got := renderExact(wantRes.Rows), renderExact(rowRes.Rows); want != got {
			t.Fatalf("%q: row-path results differ\ntext:\n%s\nrcfile:\n%s", q, want, got)
		}
		if rowRes.Stats.RecordsRead != wantRes.Stats.RecordsRead {
			t.Errorf("%q: row-path records read differ: %d vs %d", q, wantRes.Stats.RecordsRead, rowRes.Stats.RecordsRead)
		}
		if rowRes.Stats.GroupsSkipped != 0 || rowRes.Stats.Vectorized {
			t.Errorf("%q: row path reports vectorised stats: %+v", q, rowRes.Stats)
		}
		if gotRes.Stats.BytesRead < wantRes.Stats.BytesRead && wantRes.Stats.RecordsRead > 0 {
			projectingLower = true
		}
	}
	if !projectingLower {
		t.Error("no projecting query read fewer bytes over RCFile than over TextFile")
	}

	// Plan-level check of the same criterion: a column-subset aggregation
	// attributes strictly fewer projected bytes over RCFile.
	textT, _ := textW.Table("meterdata")
	rcT, _ := rcW.Table("meterdata")
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(5), Hi: storage.Int64(30)},
	}
	project := []bool{true, false, false, true} // userId + powerConsumed
	wantAggs := []dgf.AggSpec{{Func: dgf.AggSum, Col: "powerconsumed"}}
	textPlan, err := textT.Dgf.Plan(textW.Cluster, ranges, wantAggs, dgf.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rcPlan, err := rcT.Dgf.Plan(rcW.Cluster, ranges, wantAggs, dgf.PlanOptions{Project: project})
	if err != nil {
		t.Fatal(err)
	}
	if rcPlan.ProjectedBytes <= 0 || rcPlan.ProjectedBytes >= textPlan.ProjectedBytes {
		t.Errorf("rc plan projected bytes = %d, want strictly below text %d",
			rcPlan.ProjectedBytes, textPlan.ProjectedBytes)
	}
}

// TestLoadRowsThroughDgfAppendRCFile: incremental loads into an indexed
// RCFile table flow through the append pipeline and stay queryable.
func TestLoadRowsThroughDgfAppendRCFile(t *testing.T) {
	w := testWarehouse(1 << 14)
	rows := setupMeterTableFormat(t, w, 20, 2, 2, "RCFILE")
	createDgf(t, w)
	tbl, _ := w.Table("meterdata")
	extra := meterRows(20, 2, 1)
	if err := w.LoadRows(tbl, extra); err != nil {
		t.Fatal(err)
	}
	all := mustExec(t, w, `SELECT count(*) FROM meterdata`)
	if int(all.Rows[0][0].F) != len(rows)+len(extra) {
		t.Errorf("post-append count = %v, want %d", all.Rows[0][0].F, len(rows)+len(extra))
	}
}

// TestCreateIndexBadFormatProperty: an unknown 'format' index property must
// fail naming the accepted values instead of silently building TextFile.
func TestCreateIndexBadFormatProperty(t *testing.T) {
	w := testWarehouse(1 << 16)
	setupMeterTable(t, w, 10, 2, 2)
	_, err := w.Exec(`CREATE INDEX ic ON TABLE meterdata(userId) AS 'compact'
		IDXPROPERTIES ('format'='orcfile')`)
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	if !strings.Contains(err.Error(), "orcfile") || !strings.Contains(err.Error(), "textfile") || !strings.Contains(err.Error(), "rcfile") {
		t.Errorf("error %q does not name the bad value and the accepted values", err)
	}
	// The accepted spellings still work.
	mustExec(t, w, `CREATE INDEX ic ON TABLE meterdata(userId) AS 'compact'
		IDXPROPERTIES ('format'='rcfile')`)
	mustExec(t, w, `CREATE INDEX ic2 ON TABLE meterdata(regionId) AS 'compact'
		IDXPROPERTIES ('format'='TextFile')`)
}
