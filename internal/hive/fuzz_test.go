package hive

import "testing"

// FuzzParseSQL feeds arbitrary statements to the HiveQL-subset parser. The
// parser fronts every query the server accepts over HTTP, so it must reject
// garbage with an error — never a panic, index-out-of-range, or stack
// overflow (expression nesting is bounded by maxExprDepth).
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		// The statement shapes of the paper's Listings 1-7.
		"CREATE TABLE ts (mid BIGINT, ts TIMESTAMP, kwh DOUBLE) PARTITIONED BY (day STRING)",
		"CREATE INDEX dgf ON TABLE ts (mid, ts) AS 'DGFIndex' WITH DEFERRED REBUILD IDXPROPERTIES ('dgf.split'='mid:0:100:10')",
		"SELECT SUM(kwh), COUNT(*) FROM ts WHERE mid BETWEEN 10 AND 20 AND ts >= '2014-03-06 00:00:00'",
		"SELECT mid, AVG(kwh) FROM ts WHERE kwh > 1.5 GROUP BY mid ORDER BY mid DESC LIMIT 10",
		"SELECT a.mid FROM ts a JOIN meters b ON a.mid = b.mid WHERE b.city IN ('cq', 'bj')",
		"EXPLAIN SELECT COUNT(*) FROM ts WHERE mid = 7",
		"INSERT OVERWRITE DIRECTORY '/out' SELECT * FROM ts",
		"SHOW TABLES",
		"DESCRIBE ts",
		"DROP TABLE ts;",
		"SELECT SUM(kwh * price) FROM ts",
		"-- comment\nSELECT 'it''s' FROM ts",
		"SELECT ((((((1))))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatal("Parse returned nil statement without an error")
		}
	})
}
