package hive

import (
	"context"
	"fmt"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// traceSelect runs TRACE SELECT against this warehouse: execute the query
// under a fresh root span and return the rendered tree instead of the rows.
// The shard router intercepts TraceStmt before it reaches a warehouse, so
// this path serves the single-warehouse deployments.
func (w *Warehouse) traceSelect(ctx context.Context, s *TraceStmt, opts ExecOptions) (*Result, error) {
	root := trace.New("query")
	root.Set("sql", "TRACE SELECT")
	res, err := w.SelectContext(trace.NewContext(ctx, root), s.Select, opts)
	root.Finish()
	if err != nil {
		return nil, err
	}
	out := RenderTrace(root.Snapshot())
	out.Stats = res.Stats
	return out, nil
}

// RenderTrace flattens a span tree into the two-column tabular shape EXPLAIN
// established: one row per span, depth-indented, wall duration alongside the
// span's annotations; events render as their own indented rows. The same
// tree that /query?trace=1 returns as JSON, readable from a SQL client.
func RenderTrace(root trace.SpanSnapshot) *Result {
	res := &Result{Columns: []string{"span", "wall_ms", "detail"}}
	var walk func(sn trace.SpanSnapshot, depth int)
	walk = func(sn trace.SpanSnapshot, depth int) {
		indent := strings.Repeat("  ", depth)
		details := make([]string, 0, len(sn.Attrs))
		for _, a := range sn.Attrs {
			details = append(details, a.Key+"="+a.Value)
		}
		res.Rows = append(res.Rows, storage.Row{
			storage.Str(indent + sn.Name),
			storage.Str(fmt.Sprintf("%.3f", sn.WallMs)),
			storage.Str(strings.Join(details, " ")),
		})
		for _, e := range sn.Events {
			res.Rows = append(res.Rows, storage.Row{
				storage.Str(indent + "  @" + fmt.Sprintf("%.3f", e.OffsetMs) + "ms"),
				storage.Str(""),
				storage.Str(e.Msg),
			})
		}
		if sn.DroppedEvents > 0 {
			res.Rows = append(res.Rows, storage.Row{
				storage.Str(indent + "  ..."),
				storage.Str(""),
				storage.Str(fmt.Sprintf("%d events dropped", sn.DroppedEvents)),
			})
		}
		for _, c := range sn.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	res.Stats.RowsOut = len(res.Rows)
	return res
}
