package hive

import "strings"

// Normalize renders sql in a canonical single-line form for use as a cache
// key: comments and whitespace runs collapse, keywords become upper case,
// identifiers become lower case, and string literals are re-quoted verbatim
// (their case is preserved — 'Beijing' and 'beijing' are different values).
// Two statements normalize equal iff they lex into the same token stream, so
// formatting differences never fragment the cache and semantic differences
// never collide.
func Normalize(sql string) (string, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokIdent:
			b.WriteString(strings.ToLower(t.text))
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		default:
			// Keywords are already upper-cased by the lexer; numbers,
			// operators and punctuation render verbatim.
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}

// StatementTables returns the lower-cased names of the tables a statement
// reads or writes, in first-reference order. The serving layer keys cached
// results on these tables' versions and invalidates entries when one of
// them changes.
func StatementTables(stmt Stmt) []string {
	var names []string
	add := func(n string) {
		n = strings.ToLower(n)
		for _, have := range names {
			if have == n {
				return
			}
		}
		names = append(names, n)
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		add(s.From.Table)
		if s.Join != nil {
			add(s.Join.Table.Table)
		}
	case *ExplainStmt:
		add(s.Select.From.Table)
		if s.Select.Join != nil {
			add(s.Select.Join.Table.Table)
		}
	case *TraceStmt:
		add(s.Select.From.Table)
		if s.Select.Join != nil {
			add(s.Select.Join.Table.Table)
		}
	case *CreateTableStmt:
		add(s.Name)
	case *DropTableStmt:
		add(s.Name)
	case *CreateIndexStmt:
		add(s.Table)
	case *DescribeStmt:
		add(s.Table)
	}
	return names
}

// IsReadOnly reports whether executing the statement leaves the warehouse
// unchanged. A SELECT with an INSERT OVERWRITE DIRECTORY sink writes to the
// filesystem and counts as a mutation.
func IsReadOnly(stmt Stmt) bool {
	switch s := stmt.(type) {
	case *SelectStmt:
		return s.InsertDir == ""
	case *ShowTablesStmt, *DescribeStmt, *ExplainStmt, *TraceStmt:
		return true
	default:
		return false
	}
}
