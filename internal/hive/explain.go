package hive

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// ExplainPlan is the structured outcome of EXPLAIN SELECT: the access path
// the executor will choose, the exact data volume the chosen path will
// fetch, and — when produced by a shard router — the shard target set. Every
// field is derived from the same planning code the executor runs, so a plan
// followed immediately by the real execution reports matching numbers
// (AccessPath equals QueryStats.AccessPath; ProjectedBytes, where known,
// equals QueryStats.BytesRead).
type ExplainPlan struct {
	// Table is the FROM table; JoinTable the broadcast side, if any.
	Table     string `json:"table"`
	JoinTable string `json:"join_table,omitempty"`
	// Format is the FROM table's storage format.
	Format string `json:"format"`
	// AccessPath is the label execution will report: "dgfindex",
	// "dgfindex(precompute)", "index:<name>", "aggindex-rewrite:<name>",
	// "scan", "scan(partitions k/t)" — or, from a router,
	// "sharded(k/n):<shard path>".
	AccessPath string `json:"access_path"`
	// ProjectedColumns names the columns the query references (and therefore
	// the columns columnar readers will fetch); all columns when the query
	// touches every one.
	ProjectedColumns []string `json:"projected_columns"`
	// ProjectedBytes is the exact byte volume the scan will read: the DGF
	// planner's per-group attribution for index slices, the (projected)
	// row-group stats for RCFile scans, file sizes for TextFile scans, plus
	// the broadcast side of a join. It is -1 when the path cannot predict
	// the volume without executing (Compact/Aggregate/Bitmap index paths,
	// whose base read set only exists after the index scan runs).
	ProjectedBytes int64 `json:"projected_bytes"`
	// GFUSlices is the number of index slices the DGF plan will scan
	// (boundary slices only under a precompute hit).
	GFUSlices int `json:"gfu_slices,omitempty"`
	// InnerCells/BoundaryCells/MissingCells decompose the DGF query region.
	InnerCells    int64 `json:"inner_cells,omitempty"`
	BoundaryCells int64 `json:"boundary_cells,omitempty"`
	MissingCells  int64 `json:"missing_cells,omitempty"`
	// PrecomputeHit marks a DGF plan whose inner region is answered from
	// pre-computed GFU headers alone.
	PrecomputeHit bool `json:"precompute_hit,omitempty"`
	// Vectorized reports whether execution will run the batch path: row
	// groups decoded into column vectors with zone-map (and, on DGF plans,
	// bitmap-sidecar) row-group pruning. False means row-at-a-time
	// execution — joins, TextFile data, hive-index paths, or the
	// DisableVectorized/DisableSliceSkip options.
	Vectorized bool `json:"vectorized,omitempty"`
	// GroupsSkipped is the number of row groups the vectorised scan will
	// prune without fetching; their bytes are excluded from ProjectedBytes.
	// Execution reports the same number in QueryStats.GroupsSkipped.
	GroupsSkipped int64 `json:"groups_skipped,omitempty"`
	// BitmapHits is the subset of GroupsSkipped only a bitmap sidecar could
	// rule out (equality and IN predicates on DGF bitmap columns).
	BitmapHits int64 `json:"bitmap_hits,omitempty"`
	// EncodedColumns lists the table columns stored encoded in at least one
	// row group, with the encodings seen ("regionId(dict)", "ts(rle)");
	// kernels over them compare dictionary codes or whole runs instead of
	// cells. RCFile paths only.
	EncodedColumns []string `json:"encoded_columns,omitempty"`
	// BitmapDisabled names the DGF bitmap columns dropped at build time for
	// exceeding storage.BitmapCardinalityCap — declared in IDXPROPERTIES but
	// pruning nothing.
	BitmapDisabled []string `json:"bitmap_disabled,omitempty"`
	// ShardsTotal/ShardsTargeted/TargetShards describe a router plan: how
	// many shards exist, how many the routing-key predicate left in the
	// fan-out, and which. Zero ShardsTotal means the plan came from a bare
	// warehouse (or a single-shard router, which is pass-through).
	ShardsTotal    int   `json:"shards_total,omitempty"`
	ShardsTargeted int   `json:"shards_targeted,omitempty"`
	TargetShards   []int `json:"target_shards,omitempty"`
	// ReplicasPerShard is the router's copies per shard (1 = unreplicated);
	// ChosenReplicas names, per target shard, the replica the router's
	// least-loaded selection would currently read from (the execution that
	// follows picks again, and may fail over past the choice).
	ReplicasPerShard int   `json:"replicas_per_shard,omitempty"`
	ChosenReplicas   []int `json:"chosen_replicas,omitempty"`
	// Limit echoes the statement's LIMIT (0 = none); a cursor over the
	// statement stops consuming splits once it is satisfied.
	Limit int `json:"limit,omitempty"`
}

// Render lays the plan out as a two-column result (plan_item, value), the
// form the SQL layer and /query serialize like any other rows.
func (p *ExplainPlan) Render() *Result {
	res := &Result{Columns: []string{"plan_item", "value"}}
	add := func(k, v string) {
		res.Rows = append(res.Rows, storage.Row{storage.Str(k), storage.Str(v)})
	}
	add("access_path", p.AccessPath)
	add("table", p.Table)
	if p.JoinTable != "" {
		add("join_table", p.JoinTable)
	}
	add("format", p.Format)
	add("projected_columns", strings.Join(p.ProjectedColumns, ","))
	if p.ProjectedBytes >= 0 {
		add("projected_bytes", strconv.FormatInt(p.ProjectedBytes, 10))
	} else {
		add("projected_bytes", "unknown (index scan decides the read set)")
	}
	add("vectorized", strconv.FormatBool(p.Vectorized))
	if p.Vectorized {
		add("groups_skipped", strconv.FormatInt(p.GroupsSkipped, 10))
		add("bitmap_hits", strconv.FormatInt(p.BitmapHits, 10))
	}
	if len(p.EncodedColumns) > 0 {
		add("encoded_columns", strings.Join(p.EncodedColumns, ","))
	}
	if len(p.BitmapDisabled) > 0 {
		add("bitmap_disabled", strings.Join(p.BitmapDisabled, ","))
	}
	if strings.HasPrefix(p.AccessPath, "dgfindex") || strings.Contains(p.AccessPath, ":dgfindex") {
		add("gfu_slices", strconv.Itoa(p.GFUSlices))
		add("inner_cells", strconv.FormatInt(p.InnerCells, 10))
		add("boundary_cells", strconv.FormatInt(p.BoundaryCells, 10))
		add("missing_cells", strconv.FormatInt(p.MissingCells, 10))
		add("precompute_hit", strconv.FormatBool(p.PrecomputeHit))
	}
	if p.ShardsTotal > 0 {
		targets := make([]string, len(p.TargetShards))
		for i, s := range p.TargetShards {
			targets[i] = strconv.Itoa(s)
		}
		add("shards", fmt.Sprintf("%d/%d targeted: %s", p.ShardsTargeted, p.ShardsTotal, strings.Join(targets, ",")))
		// Replication detail only when the fleet is actually replicated, so
		// an unreplicated router's EXPLAIN output is unchanged.
		if p.ReplicasPerShard > 1 {
			chosen := make([]string, len(p.ChosenReplicas))
			for i, rep := range p.ChosenReplicas {
				chosen[i] = strconv.Itoa(rep)
			}
			add("replicas", fmt.Sprintf("%d per shard; chosen: %s", p.ReplicasPerShard, strings.Join(chosen, ",")))
		}
	}
	if p.Limit > 0 {
		add("limit", strconv.Itoa(p.Limit))
	}
	res.Stats.RowsOut = len(res.Rows)
	return res
}

// Explain plans the SELECT without executing it, reporting the access path
// and read volume the immediately following execution would have. It runs
// the same compilation and (for DGF tables) the same index planning as the
// executor — index KV reads happen, data reads do not.
func (w *Warehouse) Explain(stmt *SelectStmt, opts ExecOptions) (*ExplainPlan, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.explainLocked(stmt, opts)
}

func (w *Warehouse) explainLocked(stmt *SelectStmt, opts ExecOptions) (*ExplainPlan, error) {
	q, err := w.compileLocked(stmt)
	if err != nil {
		return nil, err
	}
	ep := &ExplainPlan{
		Table:            q.left.Name,
		Format:           q.left.Format.String(),
		ProjectedColumns: projectedColumnNames(q),
		Limit:            stmt.Limit,
	}
	if q.right != nil {
		ep.JoinTable = q.right.Name
	}

	// The access path comes from choosePath — the same decision the
	// executor consumes in prepareSelectLocked — so the announced plan and
	// the executed plan cannot diverge.
	choice := q.choosePath(opts)
	ep.Vectorized = choice.vectorized
	switch choice.kind {
	case pathDgf:
		plan, err := q.left.Dgf.Plan(w.Cluster, q.leftRanges, choice.want, choice.planOpts)
		if err != nil {
			return nil, err
		}
		ep.AccessPath = "dgfindex"
		if plan.Aggregation {
			ep.AccessPath = "dgfindex(precompute)"
		}
		ep.PrecomputeHit = plan.Aggregation
		ep.GFUSlices = len(plan.Slices)
		ep.InnerCells, ep.BoundaryCells, ep.MissingCells = plan.InnerCells, plan.BoundaryCells, plan.MissingCells
		ep.ProjectedBytes = plan.ProjectedBytes
		ep.GroupsSkipped = plan.GroupsSkipped
		ep.BitmapHits = plan.BitmapHits
		ep.BitmapDisabled = q.left.Dgf.BitmapDisabled
		if q.left.Dgf.Format == storage.RCFile {
			files, err := listFilePaths(w, q.left.Dgf.DataDir)
			if err != nil {
				return nil, err
			}
			if ep.EncodedColumns, err = encodedColumnNames(w, files, q.left.Schema); err != nil {
				return nil, err
			}
		}
	case pathHiveIndex:
		if choice.aggRewrite {
			ep.AccessPath = "aggindex-rewrite:" + choice.ix.Name
		} else {
			ep.AccessPath = "index:" + choice.ix.Name
		}
		// The base read set (matched offsets) only exists once the index
		// scan has run; the volume is unknowable without executing.
		ep.ProjectedBytes = -1
	default:
		if err := w.explainScanLocked(q, ep); err != nil {
			return nil, err
		}
	}

	// The broadcast join side is read in full alongside any access path.
	if q.right != nil && ep.ProjectedBytes >= 0 {
		ep.ProjectedBytes += w.tableSizeBytesLocked(q.right)
	}
	return ep, nil
}

// explainScanLocked fills the plan for the full-scan path, computing the
// exact read volume: per-row-group (projected) column stats for RCFile, file
// sizes for TextFile. TextFile volumes are exact when splits align with
// files (always, below one block per file); a split boundary mid-file adds
// the few re-read bytes of the boundary line.
func (w *Warehouse) explainScanLocked(q *compiledQuery, ep *ExplainPlan) error {
	input, label, err := q.scanInputLocked(w)
	if err != nil {
		return err
	}
	ep.AccessPath = label
	var files []string
	var project []bool
	switch in := input.(type) {
	case *mapreduce.TextInput:
		files = in.Paths
		if files == nil {
			files, err = listFilePaths(w, in.Dir)
			if err != nil {
				return err
			}
		}
		for _, f := range files {
			fi, err := w.FS.Stat(f)
			if err != nil {
				return err
			}
			ep.ProjectedBytes += fi.Size
		}
		return nil
	case *mapreduce.RCInput:
		files = in.Paths
		project = in.Project
		if files == nil {
			files, err = listFilePaths(w, in.Dir)
			if err != nil {
				return err
			}
		}
		// The vectorised scan prunes zone-disjoint (and bitmap-refuted) row
		// groups, so their bytes never hit the readers: exclude them here the
		// same way prepareSelectLocked's skip set excludes them from
		// execution.
		var skips map[string]map[int64]bool
		if ep.Vectorized {
			skips, ep.GroupsSkipped, ep.BitmapHits, err = scanGroupSkips(w.FS, files, q.left.Schema, q.leftRanges, q.leftMembers)
			if err != nil {
				return err
			}
		}
		for _, f := range files {
			stats, err := storage.ReadColStatsCached(w.FS, f)
			if err != nil {
				return err
			}
			var offsets []int64
			if len(skips[f]) > 0 {
				if offsets, err = storage.ReadGroupIndexCached(w.FS, f); err != nil {
					return err
				}
			}
			for gi, g := range stats {
				if offsets != nil && gi < len(offsets) && skips[f][offsets[gi]] {
					continue
				}
				ep.ProjectedBytes += g.ProjectedSize(project)
			}
		}
		ep.EncodedColumns, err = encodedColumnNames(w, files, q.left.Schema)
		return err
	default:
		ep.ProjectedBytes = -1
		return nil
	}
}

func listFilePaths(w *Warehouse, dir string) ([]string, error) {
	fis, err := w.FS.ListFiles(dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(fis))
	for i, fi := range fis {
		paths[i] = fi.Path
	}
	return paths, nil
}

// encodedColumnNames unions the per-column encodings recorded in the files'
// row-group stats and renders, in schema order, every column stored non-plain
// in at least one group — "regionId(dict)", "ts(rle)", or "city(dict,rle)"
// when groups disagree.
func encodedColumnNames(w *Warehouse, files []string, schema *storage.Schema) ([]string, error) {
	nCols := len(schema.Cols)
	seen := make(map[int]map[byte]bool)
	for _, f := range files {
		stats, err := storage.ReadColStatsCached(w.FS, f)
		if err != nil {
			return nil, err
		}
		for _, g := range stats {
			for c := 0; c < nCols; c++ {
				if enc := g.Enc(c); enc != storage.EncPlain {
					if seen[c] == nil {
						seen[c] = map[byte]bool{}
					}
					seen[c][enc] = true
				}
			}
		}
	}
	var out []string
	for c := 0; c < nCols; c++ {
		encs := seen[c]
		if len(encs) == 0 {
			continue
		}
		var names []string
		// Fixed dict-then-rle order keeps the rendering deterministic.
		for _, enc := range []byte{storage.EncDict, storage.EncRLE} {
			if encs[enc] {
				names = append(names, storage.EncodingName(enc))
			}
		}
		out = append(out, schema.Cols[c].Name+"("+strings.Join(names, ",")+")")
	}
	return out, nil
}

// projectedColumnNames renders the referenced-column set in schema order.
func projectedColumnNames(q *compiledQuery) []string {
	proj := q.projection()
	var out []string
	for i, c := range q.left.Schema.Cols {
		if proj == nil || (i < len(proj) && proj[i]) {
			out = append(out, c.Name)
		}
	}
	return out
}
