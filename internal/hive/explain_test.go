package hive

import (
	"strings"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// explainOf runs Warehouse.Explain on the statement.
func explainOf(t *testing.T, w *Warehouse, sql string) *ExplainPlan {
	t.Helper()
	plan, err := w.Explain(mustParseSelect(t, sql), ExecOptions{})
	if err != nil {
		t.Fatalf("Explain(%q): %v", sql, err)
	}
	return plan
}

// TestExplainTruthful is the acceptance check: for every query in the
// suite, the access path EXPLAIN announces equals the one the immediately
// following execution reports, and — on every path whose read set is known
// at plan time (DGF and full scans) — ProjectedBytes equals the executed
// BytesRead exactly.
func TestExplainTruthful(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupMeterTable(t, w, 20, 4, 6)
	createDgf(t, w)

	// A second, index-free table exercises the scan path; an RCFile copy
	// exercises projected columnar scan volumes.
	mustExec(t, w, `CREATE TABLE rawmeter (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`)
	mustExec(t, w, `CREATE TABLE rcmeter (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS RCFILE`)
	rows := meterRows(20, 4, 6)
	for _, name := range []string{"rawmeter", "rcmeter"} {
		tbl, _ := w.Table(name)
		// Small row groups give the RCFile copy several zone-map candidates
		// per file, so the suite covers plans that prune groups.
		tbl.RowGroupRows = 16
		if err := w.LoadRows(tbl, rows); err != nil {
			t.Fatal(err)
		}
	}

	suite := []string{
		// DGF precompute hit.
		`SELECT sum(powerConsumed), count(*) FROM meterdata WHERE userId>=3 AND userId<=15 AND ts>='2012-12-02' AND ts<'2012-12-05'`,
		// DGF slice scan (projection is not precomputable).
		`SELECT userId, powerConsumed FROM meterdata WHERE userId>=3 AND userId<=9`,
		// DGF with GROUP BY (headers cannot answer it).
		`SELECT regionId, avg(powerConsumed) FROM meterdata WHERE userId>=2 AND userId<=18 GROUP BY regionId`,
		// TextFile full scan.
		`SELECT sum(powerConsumed) FROM rawmeter WHERE userId>=3`,
		// RCFile scan with a projected column subset.
		`SELECT userId FROM rcmeter WHERE userId<=10`,
		// RCFile scan touching every column.
		`SELECT * FROM rcmeter`,
		// RCFile scan whose zone maps prune the early-date row groups: the
		// announced skips and the skipped groups' bytes must both match the
		// execution exactly.
		`SELECT powerConsumed FROM rcmeter WHERE ts>='2012-12-06'`,
	}
	var sawSkips bool
	for _, sql := range suite {
		plan := explainOf(t, w, sql)
		res := mustExec(t, w, sql)
		if plan.AccessPath != res.Stats.AccessPath {
			t.Errorf("%s\n  EXPLAIN access path %q, execution %q", sql, plan.AccessPath, res.Stats.AccessPath)
		}
		if plan.Vectorized != res.Stats.Vectorized {
			t.Errorf("%s\n  EXPLAIN vectorized %v, execution %v", sql, plan.Vectorized, res.Stats.Vectorized)
		}
		if plan.GroupsSkipped != res.Stats.GroupsSkipped {
			t.Errorf("%s\n  EXPLAIN GroupsSkipped %d, execution %d", sql, plan.GroupsSkipped, res.Stats.GroupsSkipped)
		}
		sawSkips = sawSkips || plan.GroupsSkipped > 0
		if plan.ProjectedBytes < 0 {
			t.Errorf("%s\n  ProjectedBytes unknown on a predictable path %q", sql, plan.AccessPath)
			continue
		}
		if plan.ProjectedBytes != res.Stats.BytesRead {
			t.Errorf("%s\n  EXPLAIN ProjectedBytes %d, execution BytesRead %d", sql, plan.ProjectedBytes, res.Stats.BytesRead)
		}
	}
	if !sawSkips {
		t.Error("no suite query skipped a row group; the zone-map case covers nothing")
	}
}

// TestExplainStatement: the EXPLAIN SELECT statement renders the plan as
// plan_item/value rows through the ordinary Exec path, with the access path
// in the first row.
func TestExplainStatement(t *testing.T) {
	w := testWarehouse(1 << 14)
	setupMeterTable(t, w, 100, 5, 10)
	createDgf(t, w)

	res := mustExec(t, w, `EXPLAIN SELECT sum(powerConsumed), count(*) FROM meterdata
		WHERE regionId>=2 AND regionId<=4 AND userId>=15 AND userId<=80
		AND ts>='2012-12-02' AND ts<'2012-12-08'`)
	if len(res.Columns) != 2 || res.Columns[0] != "plan_item" {
		t.Fatalf("columns = %v", res.Columns)
	}
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].String()] = row[1].String()
	}
	if got["access_path"] != "dgfindex(precompute)" {
		t.Fatalf("access_path = %q, want dgfindex(precompute); rows: %v", got["access_path"], got)
	}
	if got["precompute_hit"] != "true" {
		t.Fatalf("precompute_hit = %q", got["precompute_hit"])
	}
	if !strings.Contains(got["projected_columns"], "powerConsumed") {
		t.Fatalf("projected_columns = %q", got["projected_columns"])
	}
	if _, ok := got["gfu_slices"]; !ok {
		t.Fatalf("missing gfu_slices row: %v", got)
	}

	// EXPLAIN of an index-path query reports an honest "unknown" volume.
	mustExec(t, w, `CREATE TABLE ct (a bigint, b double)`)
	tbl, _ := w.Table("ct")
	var rows []storage.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, storage.Row{storage.Int64(int64(i)), storage.Float64(float64(i))})
	}
	if err := w.LoadRows(tbl, rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, w, `CREATE INDEX cidx ON TABLE ct(a) AS 'compact'`)
	plan := explainOf(t, w, `SELECT b FROM ct WHERE a=7`)
	exec := mustExec(t, w, `SELECT b FROM ct WHERE a=7`)
	if plan.AccessPath != exec.Stats.AccessPath {
		t.Fatalf("index path: EXPLAIN %q vs execution %q", plan.AccessPath, exec.Stats.AccessPath)
	}
	if plan.ProjectedBytes != -1 {
		t.Fatalf("index path ProjectedBytes = %d, want -1 (unknown)", plan.ProjectedBytes)
	}
}

// TestExplainAggRewrite: the announced aggregate-index rewrite matches the
// executed access path.
func TestExplainAggRewrite(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupMeterTable(t, w, 16, 4, 3)
	mustExec(t, w, `CREATE INDEX aggx ON TABLE meterdata(regionId) AS 'aggregate'`)

	sql := `SELECT regionId, count(*) FROM meterdata WHERE regionId>=2 AND regionId<=4 GROUP BY regionId`
	plan := explainOf(t, w, sql)
	res := mustExec(t, w, sql)
	if plan.AccessPath != res.Stats.AccessPath {
		t.Fatalf("EXPLAIN %q vs execution %q", plan.AccessPath, res.Stats.AccessPath)
	}
	if !strings.HasPrefix(plan.AccessPath, "aggindex-rewrite:") {
		t.Fatalf("access path %q, want aggindex-rewrite:*", plan.AccessPath)
	}
}
