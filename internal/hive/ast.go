package hive

import (
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Stmt is any parsed HiveQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type, ...)
// [PARTITIONED BY (col)] [STORED AS fmt].
type CreateTableStmt struct {
	Name string
	Cols []storage.Column
	// PartitionBy names the partitioning column (Hive-style directory per
	// value; unlike Hive, the column also appears in the column list).
	PartitionBy string
	Stored      string // "TEXTFILE" (default) or "RCFILE"
}

// CreateIndexStmt is the paper's Listing 3 shape:
// CREATE INDEX name ON TABLE tbl(cols) AS 'handler' IDXPROPERTIES (...).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Cols    []string
	Handler string
	Props   map[string]string
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

// DescribeStmt is DESCRIBE tbl.
type DescribeStmt struct{ Table string }

// ExplainStmt is EXPLAIN SELECT ...: plan the query — access path, GFU
// slices, projected columns and bytes, shard targets — without running it.
type ExplainStmt struct {
	Select *SelectStmt
}

// TraceStmt is TRACE SELECT ...: run the query and return its span tree —
// per-layer wall and sim durations, access path, per-shard read volumes —
// instead of its rows. The runtime twin of EXPLAIN's static plan.
type TraceStmt struct {
	Select *SelectStmt
}

// SelectStmt covers the paper's query listings: projections/aggregations,
// one optional equi-join, a conjunctive WHERE, GROUP BY, LIMIT, and an
// optional INSERT OVERWRITE DIRECTORY sink.
type SelectStmt struct {
	// InsertDir, when non-empty, writes results to that directory
	// (Listing 6).
	InsertDir string
	Select    []SelectItem
	From      TableRef
	Join      *JoinClause
	Where     []Comparison // conjunction
	GroupBy   []ColRef
	Limit     int // 0 = no limit
}

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Matches reports whether qualifier refers to this table reference.
func (t TableRef) Matches(qualifier string) bool {
	if qualifier == "" {
		return true
	}
	return strings.EqualFold(qualifier, t.Alias) || strings.EqualFold(qualifier, t.Table)
}

// JoinClause is JOIN tbl alias ON left.col = right.col.
type JoinClause struct {
	Table TableRef
	// LeftCol and RightCol are the equi-join columns, resolved to the
	// FROM-side and JOIN-side tables respectively during planning.
	Left, Right ColRef
}

// Expr is a scalar expression: column references, literals, products and
// aggregate calls.
type Expr interface{ expr() }

// ColRef is a possibly qualified column reference.
type ColRef struct {
	Qualifier string // table or alias, may be empty
	Name      string
}

func (ColRef) expr() {}

// String renders the reference as written.
func (c ColRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct{ Value storage.Value }

func (Lit) expr() {}

// Mul is a product of two expressions (sum(price*discount)).
type Mul struct{ L, R Expr }

func (Mul) expr() {}

// AggCall is an aggregate function application.
type AggCall struct {
	Func string // upper-case: SUM COUNT AVG MIN MAX
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (AggCall) expr() {}

// Comparison is col OP literal (the predicate shape of all the paper's
// queries). Op is one of < <= > >= = != IN. For IN, Vals holds the value
// list and Val is unused; a row matches when its cell equals any of them.
type Comparison struct {
	Col  ColRef
	Op   string
	Val  storage.Value
	Vals []storage.Value
}

func (CreateTableStmt) stmt() {}
func (CreateIndexStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (ShowTablesStmt) stmt()  {}
func (DescribeStmt) stmt()    {}
func (SelectStmt) stmt()      {}
func (ExplainStmt) stmt()     {}
func (TraceStmt) stmt()       {}
