package hive

import (
	"context"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// QueryStats mirrors the paper's stacked-bar decomposition: index access
// plus job overhead ("read index and other") versus data scan and processing
// ("read data and process"), along with the raw volumes of Tables 3/4/6.
type QueryStats struct {
	// AccessPath names the chosen plan: "dgfindex", "dgfindex(precompute)",
	// "index:<name>", "aggindex-rewrite:<name>", or "scan".
	AccessPath string
	// IndexSimSec is simulated seconds spent reading the index plus fixed
	// query overhead (HiveQL parsing, job launch).
	IndexSimSec float64
	// DataSimSec is simulated seconds reading data and processing.
	DataSimSec float64
	// RecordsRead is the number of records delivered to mappers.
	RecordsRead int64
	// BytesRead is the payload volume fetched from the filesystem.
	BytesRead int64
	Splits    int
	Seeks     int64
	// GroupsSkipped counts the row groups pruned before their payloads were
	// fetched — zone maps, or bitmap sidecars on DGF plans (vectorised
	// executions only; the row path never prunes groups).
	GroupsSkipped int64
	// BitmapHits counts the pruned groups that only a bitmap sidecar could
	// rule out (zone maps are consulted first and take the credit).
	BitmapHits int64
	// DictProbes counts dictionary binary searches the vectorised kernels
	// performed — each replaces a whole group's per-row string compares.
	DictProbes int64
	// RunsSkipped counts the runs of run-length columns the kernels rejected
	// wholesale (one predicate evaluation per run instead of per row).
	RunsSkipped int64
	// Vectorized reports whether the scan ran the batch execution path.
	Vectorized bool
	RowsOut    int
	Wall       time.Duration
}

// SimTotalSec is the simulated end-to-end query time.
func (s QueryStats) SimTotalSec() float64 { return s.IndexSimSec + s.DataSimSec }

// Result is the outcome of one statement.
type Result struct {
	Columns []string
	Rows    []storage.Row
	Stats   QueryStats
	Message string
}

// ExecOptions tunes query execution (ablations).
type ExecOptions struct {
	// DisableIndexes forces full table scans.
	DisableIndexes bool
	// DisableVectorized forces row-at-a-time execution: no batch decoding,
	// no zone-map or bitmap row-group pruning.
	DisableVectorized bool
	// Dgf carries the DGFIndex planner ablation flags.
	Dgf dgf.PlanOptions
}

// IsZero reports whether the options request default behaviour — the case
// the serving layer's result cache keys can safely represent. (PlanOptions
// carries a slice, so ExecOptions is not comparable with ==.)
func (o ExecOptions) IsZero() bool {
	return !o.DisableIndexes && !o.DisableVectorized &&
		!o.Dgf.DisablePrecompute && !o.Dgf.DisableSliceSkip && o.Dgf.Project == nil
}

// Exec parses and executes one HiveQL statement. It is ExecContext under
// context.Background(): the statement always runs to completion.
//
//dgflint:compat ctx-free convenience wrapper; run-to-completion is the documented contract
func (w *Warehouse) Exec(sql string) (*Result, error) {
	return w.ExecContext(context.Background(), sql, ExecOptions{})
}

// ExecOpts is Exec with explicit options.
//
//dgflint:compat ctx-free convenience wrapper; run-to-completion is the documented contract
func (w *Warehouse) ExecOpts(sql string, opts ExecOptions) (*Result, error) {
	return w.ExecContext(context.Background(), sql, opts)
}

// ExecContext parses and executes one HiveQL statement under ctx. A ctx that
// expires mid-scan aborts the MapReduce job within one split boundary and
// returns an error wrapping ctx.Err() — never a partial result.
func (w *Warehouse) ExecContext(ctx context.Context, sql string, opts ExecOptions) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return w.ExecParsedContext(ctx, stmt, opts)
}

// ExecParsed executes an already-parsed statement. Callers that execute the
// same statement repeatedly (the serving layer's plan cache) parse once and
// reuse the Stmt; execution never mutates it, so one parsed statement is
// safe to run from many goroutines.
//
//dgflint:compat ctx-free convenience wrapper over ExecParsedContext
func (w *Warehouse) ExecParsed(stmt Stmt, opts ExecOptions) (*Result, error) {
	return w.ExecParsedContext(context.Background(), stmt, opts)
}

// ExecParsedContext is ExecParsed under ctx. SELECT scans honour ctx at
// split granularity; DDL and LOAD statements only check it on entry (index
// builds are not interruptible mid-build — aborting one would leave a
// half-reorganised table).
func (w *Warehouse) ExecParsedContext(ctx context.Context, stmt Stmt, opts ExecOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("hive: statement not started: %w", err)
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		return w.SelectContext(ctx, s, opts)
	case *ExplainStmt:
		plan, err := w.Explain(s.Select, opts)
		if err != nil {
			return nil, err
		}
		return plan.Render(), nil
	case *TraceStmt:
		return w.traceSelect(ctx, s, opts)
	case *ShowTablesStmt:
		w.mu.RLock()
		defer w.mu.RUnlock()
		res := &Result{Columns: []string{"tab_name"}}
		for _, n := range w.tableNamesLocked() {
			res.Rows = append(res.Rows, storage.Row{storage.Str(n)})
		}
		return res, nil
	case *DescribeStmt:
		w.mu.RLock()
		defer w.mu.RUnlock()
		t, err := w.tableLocked(s.Table)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"col_name", "data_type"}}
		for _, c := range t.Schema.Cols {
			res.Rows = append(res.Rows, storage.Row{storage.Str(c.Name), storage.Str(c.Kind.String())})
		}
		return res, nil
	case *CreateTableStmt:
		w.mu.Lock()
		defer w.mu.Unlock()
		format := hiveindex.TextFile
		if s.Stored == "RCFILE" {
			format = hiveindex.RCFile
		}
		schema := storage.NewSchema(s.Cols...)
		if s.PartitionBy != "" && schema.ColIndex(s.PartitionBy) < 0 {
			return nil, fmt.Errorf("hive: partition column %q not in column list", s.PartitionBy)
		}
		t, err := w.createTableLocked(s.Name, schema, format)
		if err != nil {
			return nil, err
		}
		t.PartitionBy = s.PartitionBy
		msg := fmt.Sprintf("created table %s (%d columns, %s)", s.Name, len(s.Cols), s.Stored)
		if s.PartitionBy != "" {
			msg += ", partitioned by " + s.PartitionBy
		}
		return &Result{Message: msg}, nil
	case *DropTableStmt:
		w.mu.Lock()
		defer w.mu.Unlock()
		if err := w.dropTableLocked(s.Name); err != nil {
			return nil, err
		}
		return &Result{Message: "dropped table " + s.Name}, nil
	case *CreateIndexStmt:
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.execCreateIndexLocked(s)
	default:
		return nil, fmt.Errorf("hive: unsupported statement %T", stmt)
	}
}

// execCreateIndexLocked dispatches on the handler class name, like Hive's
// pluggable index handlers (Listing 3 names the DGF handler class).
func (w *Warehouse) execCreateIndexLocked(s *CreateIndexStmt) (*Result, error) {
	t, err := w.tableLocked(s.Table)
	if err != nil {
		return nil, err
	}
	handler := strings.ToLower(s.Handler)
	switch {
	case strings.Contains(handler, "dgf"):
		spec, err := dgf.ParseIdxProperties(s.Name, s.Cols, t.Schema, s.Props)
		if err != nil {
			return nil, err
		}
		stats, err := w.buildDgfIndexLocked(t, spec)
		if err != nil {
			return nil, err
		}
		msg := fmt.Sprintf("built DGFIndex %s: %d GFU pairs, %d bytes, %.1f sim-seconds",
			s.Name, stats.Entries, stats.IndexBytes, stats.SimTotalSec())
		if len(stats.BitmapDisabled) > 0 {
			msg += fmt.Sprintf("; bitmap sidecars disabled for %s (over %d distinct values)",
				strings.Join(stats.BitmapDisabled, ","), storage.BitmapCardinalityCap)
		}
		return &Result{Message: msg}, nil
	case strings.Contains(handler, "bitmap"):
		return w.createHiveIndexLocked(t, s, hiveindex.Bitmap)
	case strings.Contains(handler, "aggregate"):
		return w.createHiveIndexLocked(t, s, hiveindex.Aggregate)
	case strings.Contains(handler, "compact"):
		return w.createHiveIndexLocked(t, s, hiveindex.Compact)
	default:
		return nil, fmt.Errorf("hive: unknown index handler %q", s.Handler)
	}
}

func (w *Warehouse) createHiveIndexLocked(t *Table, s *CreateIndexStmt, kind hiveindex.Kind) (*Result, error) {
	format := t.Format
	if f, ok := s.Props["format"]; ok {
		pf, err := storage.ParseFormat(f)
		if err != nil {
			return nil, fmt.Errorf("hive: IDXPROPERTIES 'format'=%q: %w", f, err)
		}
		format = pf
	}
	ix, sec, err := w.buildHiveIndexStatsLocked(t, s.Name, kind, s.Cols, format)
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("built %s index %s: %d bytes, %.1f sim-seconds",
		kind, s.Name, ix.SizeBytes(w.FS), sec)}, nil
}

// Select plans and executes a SELECT. Plain SELECTs share the catalog read
// lock so any number run in parallel; a SELECT with an INSERT OVERWRITE
// DIRECTORY sink writes to the filesystem and is serialized as a writer.
//
//dgflint:compat ctx-free convenience wrapper over SelectContext
func (w *Warehouse) Select(stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	return w.SelectContext(context.Background(), stmt, opts)
}

// SelectContext is Select under ctx: a ctx that ends mid-scan aborts the job
// within one split boundary and returns the (wrapped) ctx error.
func (w *Warehouse) SelectContext(ctx context.Context, stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	if stmt.InsertDir != "" {
		w.mu.Lock()
		defer w.mu.Unlock()
	} else {
		w.mu.RLock()
		defer w.mu.RUnlock()
	}
	return w.selectLocked(ctx, stmt, opts)
}

// SelectPartial plans and executes a SELECT, returning its result in
// mergeable partial form — the scatter phase of the shard router's
// scatter-gather. Aggregates come back as per-group accumulator state, so
// any number of shards' partials Merge before one Finalize. INSERT
// OVERWRITE DIRECTORY sinks cannot be executed partially.
//
//dgflint:compat ctx-free convenience wrapper over SelectPartialContext
func (w *Warehouse) SelectPartial(stmt *SelectStmt, opts ExecOptions) (*PartialResult, error) {
	return w.SelectPartialContext(context.Background(), stmt, opts)
}

// SelectPartialContext is SelectPartial under ctx — the scatter phase of a
// cancellable scatter-gather: the router cancels the shared ctx on the first
// shard error, and every sibling shard's scan stops at its next split
// boundary.
func (w *Warehouse) SelectPartialContext(ctx context.Context, stmt *SelectStmt, opts ExecOptions) (*PartialResult, error) {
	if stmt.InsertDir != "" {
		return nil, fmt.Errorf("hive: INSERT OVERWRITE DIRECTORY cannot be executed partially")
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	pr, err := w.selectPartialLocked(ctx, stmt, opts, nil)
	if err != nil {
		return nil, err
	}
	return pr, nil
}

// rowStream is the streaming half of a cursor-driven SELECT: columns fires
// once after compilation (before any input is read), row receives each
// output row of a plain projection as its split completes and stops the scan
// by returning false.
type rowStream struct {
	columns func(cols []string)
	row     func(r storage.Row) bool
}

// pathKind enumerates the access paths the planner can choose.
type pathKind uint8

const (
	pathDgf pathKind = iota
	pathHiveIndex
	pathScan
)

// pathChoice is the planner's access-path decision plus the inputs the
// chosen path needs. Execution and EXPLAIN both consume this one decision,
// which is what keeps the announced plan truthful: they cannot diverge on
// which path runs.
type pathChoice struct {
	kind pathKind
	// want/planOpts parameterize the DGF plan (pathDgf).
	want     []dgf.AggSpec
	planOpts dgf.PlanOptions
	// ix is the chosen Compact/Aggregate/Bitmap index (pathHiveIndex);
	// aggRewrite marks the "index as data" rewrite.
	ix         *hiveindex.Index
	aggRewrite bool
	// vectorized selects the batch execution path: row groups decoded into
	// column vectors, WHERE run as kernels, zone maps (and bitmap sidecars
	// on DGF plans) pruning whole groups.
	vectorized bool
}

// choosePath decides the access path for a compiled query.
//
// The vectorised path applies to join-free queries over RCFile data on the
// DGF and full-scan paths; joins, TextFile data, and the hive-index path
// (whose bitmap RowFilter is inherently per-row) fall back to row-at-a-time
// execution, as does the slice-skip ablation (whose whole-split reads the
// plan's skip set does not describe).
func (q *compiledQuery) choosePath(opts ExecOptions) pathChoice {
	vecOK := !opts.DisableVectorized && !opts.Dgf.DisableSliceSkip && q.right == nil
	switch {
	case !opts.DisableIndexes && q.left.Dgf != nil:
		want := q.dgfWantSpecs()
		if q.right != nil || len(q.groupBy) > 0 {
			// Join and GROUP BY queries cannot be answered from headers
			// (the paper's "non-aggregation" cases): scan all related GFUs.
			want = nil
		}
		if !q.rangesExact {
			// The range map is a superset of the WHERE conjunction (!= or a
			// multi-value IN): headers would aggregate rows the residual
			// predicate rejects, so inner cells must be scanned and filtered.
			want = nil
		}
		// Push the SELECT's referenced-column set into the planner so
		// columnar slice reads fetch only those payloads.
		planOpts := opts.Dgf
		planOpts.Project = q.projection()
		planOpts.Members = q.leftMembers
		vec := vecOK && q.left.Dgf.Format == storage.RCFile
		planOpts.ZoneSkip = vec
		return pathChoice{kind: pathDgf, want: want, planOpts: planOpts, vectorized: vec}
	case !opts.DisableIndexes && len(q.left.HiveIndexes) > 0:
		if ix := q.pickHiveIndex(); ix != nil {
			return pathChoice{kind: pathHiveIndex, ix: ix, aggRewrite: q.canAggRewrite(ix)}
		}
	}
	return pathChoice{kind: pathScan, vectorized: vecOK && q.left.Format == hiveindex.RCFile}
}

func (w *Warehouse) selectLocked(ctx context.Context, stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	start := time.Now()
	pr, err := w.selectPartialLocked(ctx, stmt, opts, nil)
	if err != nil {
		return nil, err
	}
	res := pr.Finalize(stmt.Limit)

	// INSERT OVERWRITE DIRECTORY sink (Listing 6).
	if stmt.InsertDir != "" {
		w.FS.RemoveAll(stmt.InsertDir)
		if err := storage.WriteTextRows(w.FS, path.Join(stmt.InsertDir, "000000_0"), res.Rows); err != nil {
			return nil, err
		}
	}
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// selectPartialLocked plans and runs one SELECT under the catalog lock.
// stream, when non-nil and the query is a plain projection (no aggregates),
// receives each output row as its split completes instead of the rows being
// materialized into the PartialResult; a false return stops the scan at the
// next split boundary (LIMIT cursors). On a mid-scan abort the returned
// error wraps ctx.Err() and the PartialResult still carries the stats of
// the work done so far — callers that want all-or-nothing semantics must
// check the error first.
func (w *Warehouse) selectPartialLocked(ctx context.Context, stmt *SelectStmt, opts ExecOptions, stream *rowStream) (*PartialResult, error) {
	p, err := w.prepareSelectLocked(stmt, opts, stream)
	if err != nil {
		return nil, err
	}
	return w.runPreparedSelect(ctx, p, stream)
}

// preparedSelect is a SELECT planned under the catalog lock — compiled,
// access path chosen, index planning and filtering done — ready to run its
// main query job. Cursors run that job after releasing the lock, so a
// consumer pacing a stream never blocks writers; the job reads a snapshot
// of the file layout (the model filesystem is internally synchronized), and
// a concurrent DROP surfaces as a read error, not a hang.
type preparedSelect struct {
	q     *compiledQuery
	pr    *PartialResult
	input mapreduce.InputFormat
	plan  *dgf.Plan
	start time.Time
	// done marks a query answered entirely during preparation (the
	// aggregate-index rewrite): pr is complete, no job runs.
	done bool
	// sideBytes is the broadcast join side's volume and joinMap its loaded
	// hash map, both resolved under the lock so the job itself touches no
	// catalog state.
	sideBytes int64
	joinMap   map[string][]storage.Row
	// vectorized marks the batch execution path; vecFilters are the WHERE
	// conjunction lowered to selection-vector kernels (compiled under the
	// lock, applied by the job's mapper); vecStats collects the kernels'
	// encoding-aware work counters across the job's concurrent map tasks.
	vectorized bool
	vecFilters []vecPred
	vecStats   *vecStats
}

// prepareSelectLocked compiles the statement, decides the access path via
// choosePath (the same decision EXPLAIN reports), and performs every step
// that must see a consistent catalog: DGF planning, hive-index filtering,
// the aggregate-index rewrite, partition pruning. Caller holds w.mu.
func (w *Warehouse) prepareSelectLocked(stmt *SelectStmt, opts ExecOptions, stream *rowStream) (*preparedSelect, error) {
	start := time.Now()
	q, err := w.compileLocked(stmt)
	if err != nil {
		return nil, err
	}
	pr := &PartialResult{}
	for _, it := range q.items {
		pr.Columns = append(pr.Columns, it.name)
	}
	if stream != nil && stream.columns != nil {
		stream.columns(pr.Columns)
	}
	p := &preparedSelect{q: q, pr: pr, start: start}
	stats := &pr.Stats

	choice := q.choosePath(opts)
	switch choice.kind {
	case pathDgf:
		plan, err := q.left.Dgf.Plan(w.Cluster, q.leftRanges, choice.want, choice.planOpts)
		if err != nil {
			return nil, err
		}
		p.plan = plan
		p.input = &dgf.SliceInput{
			FS: w.FS, Plan: plan, Format: q.left.Dgf.Format,
			Schema: q.left.Schema, Vector: choice.vectorized,
		}
		stats.IndexSimSec += plan.KVSimSeconds
		stats.AccessPath = "dgfindex"
		if plan.Aggregation {
			stats.AccessPath = "dgfindex(precompute)"
		}
		// The planner attributes each pruned group to the structure that
		// ruled it out; execution reports the skips it actually performed
		// (copied from job stats after the run).
		stats.BitmapHits = plan.BitmapHits
	case pathHiveIndex:
		ix := choice.ix
		// Aggregate Index rewrite: covered GROUP BY count queries read the
		// index table only. The per-group counts become partial COUNT state
		// so the rewrite also merges across shards.
		if choice.aggRewrite {
			if counts, st, ok := w.tryAggRewrite(q, ix); ok {
				pr.Agg = q.layout().NewPartial()
				for key, n := range counts {
					accs := pr.Agg.Layout.newAccs()
					for _, a := range q.aggs {
						accs[a.slots[0]].Value = float64(n)
						accs[a.slots[0]].N = n
					}
					pr.Agg.fold(key, accs)
				}
				stats.AccessPath = "aggindex-rewrite:" + ix.Name
				stats.IndexSimSec = st.SimTotalSec()
				stats.RecordsRead = st.InputRecords
				stats.BytesRead = st.InputBytes
				stats.Wall = time.Since(start)
				p.done = true
				return p, nil
			}
		}
		fr, err := ix.Filter(w.Cluster, w.FS, q.leftRanges)
		if err != nil {
			return nil, err
		}
		stats.IndexSimSec += fr.ScanStats.SimTotalSec()
		p.input, err = ix.BaseInput(w.FS, fr)
		if err != nil {
			return nil, err
		}
		if rc, ok := p.input.(*mapreduce.RCInput); ok {
			rc.Project = q.projection()
		}
		stats.AccessPath = "index:" + ix.Name
	default:
		p.input, stats.AccessPath, err = q.scanInputLocked(w)
		if err != nil {
			return nil, err
		}
		if rc, ok := p.input.(*mapreduce.RCInput); ok && choice.vectorized {
			// Full-scan double pruning: consult the zone maps under the lock
			// (the same consultation EXPLAIN performs) and hand the readers
			// the resulting skip set.
			files := rc.Paths
			if files == nil {
				if files, err = listFilePaths(w, rc.Dir); err != nil {
					return nil, err
				}
			}
			skips, _, bitmapHits, err := scanGroupSkips(w.FS, files, q.left.Schema, q.leftRanges, q.leftMembers)
			if err != nil {
				return nil, err
			}
			if len(skips) > 0 {
				rc.SkipGroup = func(path string, off int64) bool { return skips[path][off] }
			}
			stats.BitmapHits = bitmapHits
			rc.Vector = true
		}
	}
	if choice.vectorized {
		p.vectorized = true
		stats.Vectorized = true
		p.vecStats = &vecStats{}
		if p.vecFilters, err = q.compileVecFilters(p.vecStats); err != nil {
			return nil, err
		}
	}
	if q.right != nil {
		p.sideBytes = w.tableSizeBytesLocked(q.right)
		// Broadcast hash join: load the small side once (Hive's map-side
		// join) while the catalog is stable — the join table's directory
		// must not move under us.
		p.joinMap, err = w.readJoinMap(q.right, q.joinRight)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// runPreparedSelect executes the prepared query's main job. It touches no
// catalog state, so callers may invoke it with or without the lock held.
func (w *Warehouse) runPreparedSelect(ctx context.Context, p *preparedSelect, stream *rowStream) (*PartialResult, error) {
	q, pr := p.q, p.pr
	stats := &pr.Stats
	// The warehouse span opens at the prepare timestamp so planning time is
	// attributed here, not lost between the parent span and this one.
	sp := trace.FromContext(ctx).ChildAt("warehouse", p.start)
	defer func() {
		sp.Set("records_read", stats.RecordsRead)
		sp.Set("bytes_read", stats.BytesRead)
		sp.Set("splits", stats.Splits)
		sp.Set("sim_sec", stats.IndexSimSec+stats.DataSimSec)
		if stats.GroupsSkipped > 0 {
			sp.Set("groups_skipped", stats.GroupsSkipped)
		}
		if stats.BitmapHits > 0 {
			sp.Set("bitmap_hits", stats.BitmapHits)
		}
		if stats.DictProbes > 0 {
			sp.Set("dict_probes", stats.DictProbes)
		}
		if stats.RunsSkipped > 0 {
			sp.Set("runs_skipped", stats.RunsSkipped)
		}
		sp.Finish()
	}()
	sp.Set("table", q.stmt.From.Table)
	sp.Set("access_path", stats.AccessPath)
	sp.Set("vectorized", p.vectorized)
	if p.plan != nil {
		sp.Set("gfu_slices", len(p.plan.Slices))
		sp.Set("gfu_cells", p.plan.InnerCells+p.plan.BoundaryCells+p.plan.MissingCells)
		sp.Set("projected_bytes", p.plan.ProjectedBytes)
	}
	if p.done {
		return pr, nil
	}
	ctx = trace.NewContext(ctx, sp)
	var rowSink func(storage.Row) bool
	if stream != nil {
		rowSink = stream.row
	}
	jobStats, rows, agg, err := w.runQueryJob(ctx, p, rowSink)
	if err != nil {
		// A cancelled scan still reports how far it got (cursors surface
		// this as partial stats); the result itself is the error.
		if jobStats != nil {
			stats.RecordsRead = jobStats.InputRecords
			stats.BytesRead = jobStats.InputBytes
			stats.Splits = jobStats.Splits
			stats.Seeks = jobStats.Seeks
			stats.GroupsSkipped = jobStats.GroupsSkipped
			stats.Wall = time.Since(p.start)
		}
		if p.vecStats != nil {
			stats.DictProbes = p.vecStats.dictProbes.Load()
			stats.RunsSkipped = p.vecStats.runsSkipped.Load()
		}
		return pr, err
	}
	pr.Rows, pr.Agg = rows, agg
	stats.RecordsRead = jobStats.InputRecords
	stats.BytesRead = jobStats.InputBytes
	stats.Splits = jobStats.Splits
	stats.Seeks = jobStats.Seeks
	stats.GroupsSkipped = jobStats.GroupsSkipped
	if p.vecStats != nil {
		stats.DictProbes = p.vecStats.dictProbes.Load()
		stats.RunsSkipped = p.vecStats.runsSkipped.Load()
	}
	// The paper's stacked bars: job startup counts as "index and other".
	stats.IndexSimSec += jobStats.SimStartupSec
	stats.DataSimSec += jobStats.SimTotalSec() - jobStats.SimStartupSec

	// Broadcast side-table read for the map-side join.
	if q.right != nil {
		stats.DataSimSec += float64(p.sideBytes) / (w.Cluster.MapperMBps() * (1 << 20))
		stats.BytesRead += p.sideBytes
	}
	stats.Wall = time.Since(p.start)
	return pr, nil
}

// scanInputLocked builds the table-scan input (caller holds w.mu; partition
// pruning reads the catalog), pruning partitions by the
// predicate on the partition column (Hive's "coarse-grained index",
// Section 2.2 of the paper).
func (q *compiledQuery) scanInputLocked(w *Warehouse) (mapreduce.InputFormat, string, error) {
	if q.left.PartitionBy == "" {
		if q.left.Format == hiveindex.RCFile {
			return &mapreduce.RCInput{FS: w.FS, Dir: q.left.Dir, Schema: q.left.Schema, Project: q.projection()}, "scan", nil
		}
		return &mapreduce.TextInput{FS: w.FS, Dir: q.left.Dir}, "scan", nil
	}
	var keep func(storage.Value) bool
	if r, ok := q.leftRanges[strings.ToLower(q.left.PartitionBy)]; ok {
		keep = r.Contains
	}
	files, kept, total, err := w.partitionFilesLocked(q.left, keep)
	if err != nil {
		return nil, "", err
	}
	label := fmt.Sprintf("scan(partitions %d/%d)", kept, total)
	if q.left.Format == hiveindex.RCFile {
		return &mapreduce.RCInput{FS: w.FS, Paths: files, Schema: q.left.Schema, Project: q.projection()}, label, nil
	}
	return &mapreduce.TextInput{FS: w.FS, Paths: files}, label, nil
}

// pickHiveIndex returns the first index whose dimensions intersect the
// constrained columns, preferring more matching dimensions.
func (q *compiledQuery) pickHiveIndex() *hiveindex.Index {
	var best *hiveindex.Index
	bestScore := 0
	names := make([]string, 0, len(q.left.HiveIndexes))
	for n := range q.left.HiveIndexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ix := q.left.HiveIndexes[n]
		score := 0
		for _, c := range ix.Cols {
			if _, ok := q.leftRanges[strings.ToLower(c)]; ok {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = ix, score
		}
	}
	return best
}

// canAggRewrite reports whether the Aggregate Index "index as data" rewrite
// applies: a join-free covered GROUP BY whose every aggregate is COUNT. The
// predicate is shared with EXPLAIN so the announced access path matches the
// executed one.
func (q *compiledQuery) canAggRewrite(ix *hiveindex.Index) bool {
	if ix.Kind != hiveindex.Aggregate || len(q.groupBy) == 0 || q.right != nil {
		return false
	}
	if !q.rangesExact {
		// The rewrite answers counts from the index by range alone; a != or
		// multi-value IN predicate would never be applied to them.
		return false
	}
	// Every aggregate must be COUNT and every GROUP BY column indexed.
	for _, a := range q.aggs {
		if a.kind != aggCount {
			return false
		}
	}
	for _, g := range q.stmt.GroupBy {
		covered := false
		for _, c := range ix.Cols {
			if strings.EqualFold(c, g.Name) {
				covered = true
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// tryAggRewrite applies the Aggregate Index "index as data" rewrite when
// the query is a covered GROUP BY count, returning raw per-group counts for
// the caller to fold into partial state.
func (w *Warehouse) tryAggRewrite(q *compiledQuery, ix *hiveindex.Index) (map[string]int64, *mapreduce.Stats, bool) {
	if !q.canAggRewrite(ix) {
		return nil, nil, false
	}
	var groupCols []string
	for _, g := range q.stmt.GroupBy {
		groupCols = append(groupCols, g.Name)
	}
	counts, stats, err := ix.AggregateCounts(w.Cluster, w.FS, q.leftRanges, groupCols)
	if err != nil {
		return nil, nil, false
	}
	return counts, stats, true
}

// runQueryJob executes the main MapReduce job of the query and gathers its
// output in mergeable form: plain rows for projections, partial accumulator
// state for aggregations. A non-nil stream (plain projections only) replaces
// the materializing collector: each output row is decoded and handed over as
// its split completes, and a false return stops split consumption early. On
// a cancelled ctx the returned stats are non-nil partial progress alongside
// the error.
func (w *Warehouse) runQueryJob(ctx context.Context, p *preparedSelect, stream func(storage.Row) bool) (*mapreduce.Stats, []storage.Row, *PartialAgg, error) {
	q, joinMap, plan := p.q, p.joinMap, p.plan
	collector := mapreduce.NewCollector()
	job := &mapreduce.Job{
		Name:   "query-" + q.left.Name,
		Input:  p.input,
		Output: collector.Emit,
	}
	var streamErr error
	if stream != nil && !q.isAgg {
		// Streaming mode: decode and forward rows instead of collecting
		// them. Output calls are serialized by the job runner, but StopEarly
		// is polled from the scheduler goroutine — hence the atomic.
		collector = nil
		outSchema := q.outSchema()
		var stop atomic.Bool
		job.Output = func(key string, value []byte) {
			if stop.Load() {
				return
			}
			row, err := storage.DecodeTextRow(outSchema, string(value))
			if err != nil {
				streamErr = err
				stop.Store(true)
				return
			}
			if !stream(row) {
				stop.Store(true)
			}
		}
		job.StopEarly = stop.Load
	}
	if q.isAgg {
		// Map-side partial aggregation, Hive style: per-record partials,
		// combiner merge per map task, reducers finalise per group.
		job.Combine = q.combinePartials
		job.Reduce = func(key string, values [][]byte, emit mapreduce.Emit) error {
			merged, err := q.mergeValues(values)
			if err != nil {
				return err
			}
			emit(key, encodePartials(merged))
			return nil
		}
		job.NumReducers = 1
		if len(q.groupBy) > 0 {
			job.NumReducers = 4
		}
	}

	leftSchema := q.left.Schema
	vecFilters := p.vecFilters
	job.Map = func(rec mapreduce.Record, emit mapreduce.Emit) error {
		if rec.Batch != nil {
			// Vectorised path (join-free by construction): the kernels
			// shrink a selection vector over the whole decoded group, and
			// only the surviving positions materialise as rows. The scratch
			// row is reused per position — emitRow consumes its cells before
			// the next iteration overwrites them.
			b := rec.Batch
			sel := b.Sel()
			for i := 0; i < b.Rows; i++ {
				sel = append(sel, i)
			}
			for _, k := range vecFilters {
				if sel = k(b, sel); len(sel) == 0 {
					return nil
				}
			}
			for _, ri := range sel {
				brec := rec
				brec.RowInBlock = ri
				q.emitRow(b.MaterialiseRow(ri), nil, brec, emit)
			}
			return nil
		}
		// Columnar readers deliver decoded (possibly projected) rows; text
		// readers deliver encoded lines.
		leftRow := rec.Row
		if leftRow == nil {
			var err error
			leftRow, err = storage.DecodeTextRow(leftSchema, string(rec.Data))
			if err != nil {
				return err
			}
		}
		if q.right == nil {
			for _, f := range q.filters {
				if !f(leftRow, nil) {
					return nil
				}
			}
			q.emitRow(leftRow, nil, rec, emit)
			return nil
		}
		// Join: probe the broadcast map, then filter on the combined row.
		key := leftRow[q.joinLeft].String()
		for _, rightRow := range joinMap[key] {
			ok := true
			for _, f := range q.filters {
				if !f(leftRow, rightRow) {
					ok = false
					break
				}
			}
			if ok {
				q.emitRow(leftRow, rightRow, rec, emit)
			}
		}
		return nil
	}

	jobStats, err := mapreduce.RunContext(ctx, w.Cluster, job)
	if err != nil {
		// jobStats are non-nil partial progress on a mid-scan abort.
		return jobStats, nil, nil, err
	}
	if streamErr != nil {
		return jobStats, nil, nil, streamErr
	}
	if collector == nil {
		// Streamed rows were delivered as splits completed; nothing to
		// gather.
		return jobStats, nil, nil, nil
	}
	rows, agg, err := q.gather(collector.Pairs(), plan)
	if err != nil {
		return nil, nil, nil, err
	}
	return jobStats, rows, agg, nil
}

// readJoinMap loads a (small) table into a join hash map keyed by the join
// column, the broadcast side of Hive's map-side join.
func (w *Warehouse) readJoinMap(t *Table, keyCol int) (map[string][]storage.Row, error) {
	files, err := w.FS.ListFiles(t.Dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]storage.Row{}
	for _, f := range files {
		var rows []storage.Row
		if t.Format == hiveindex.RCFile {
			rows, err = storage.ReadRCRows(w.FS, f.Path, t.Schema)
		} else {
			rows, err = storage.ReadTextRows(w.FS, f.Path, t.Schema)
		}
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			key := r[keyCol].String()
			out[key] = append(out[key], r)
		}
	}
	return out, nil
}

// --- aggregation pipeline ---

// partial encodes one accumulator vector contribution.
func encodePartials(accs []dgf.Accumulator) []byte {
	var b strings.Builder
	for i, a := range accs {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.N == 0 {
			b.WriteByte('-')
			continue
		}
		b.WriteString(strconv.FormatFloat(a.Value, 'g', -1, 64))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(a.N, 10))
	}
	return []byte(b.String())
}

func decodePartials(funcs []dgf.AggFunc, data []byte) ([]dgf.Accumulator, error) {
	parts := strings.Split(string(data), ",")
	if len(parts) != len(funcs) {
		return nil, fmt.Errorf("hive: partial has %d slots, want %d", len(parts), len(funcs))
	}
	accs := make([]dgf.Accumulator, len(funcs))
	for i, p := range parts {
		accs[i].Func = funcs[i]
		if p == "-" {
			continue
		}
		j := strings.IndexByte(p, ':')
		if j < 0 {
			return nil, fmt.Errorf("hive: bad partial %q", p)
		}
		v, err1 := strconv.ParseFloat(p[:j], 64)
		n, err2 := strconv.ParseInt(p[j+1:], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("hive: bad partial %q", p)
		}
		accs[i].Value, accs[i].N = v, n
	}
	return accs, nil
}

func (q *compiledQuery) recordPartials(l, r storage.Row) []dgf.Accumulator {
	accs := make([]dgf.Accumulator, len(q.slotFuncs))
	for i, f := range q.slotFuncs {
		accs[i].Func = f
	}
	for _, a := range q.aggs {
		switch a.kind {
		case aggCount:
			accs[a.slots[0]].Fold(0)
		case aggAvg:
			v := a.arg(l, r).AsFloat()
			accs[a.slots[0]].Fold(v)
			accs[a.slots[1]].Fold(0)
		default:
			accs[a.slots[0]].Fold(a.arg(l, r).AsFloat())
		}
	}
	return accs
}

func (q *compiledQuery) groupKeyOf(l, r storage.Row) string {
	if len(q.groupBy) == 0 {
		return ""
	}
	var b strings.Builder
	for i, g := range q.groupBy {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(g(l, r).String())
	}
	return b.String()
}

// emitRow routes one qualifying (joined) row into the aggregation or
// projection encoding.
func (q *compiledQuery) emitRow(l, r storage.Row, rec mapreduce.Record, emit mapreduce.Emit) {
	if q.isAgg {
		emit(q.groupKeyOf(l, r), encodePartials(q.recordPartials(l, r)))
		return
	}
	out := make(storage.Row, len(q.items))
	for i, it := range q.items {
		out[i] = it.expr(l, r)
	}
	// Keyed by source position so output order is deterministic. RCFile
	// records share their row group's offset, so the in-group row position
	// breaks the tie (it is 0 for every text record).
	emit(fmt.Sprintf("%s:%012d:%06d", rec.Path, rec.Offset, rec.RowInBlock), []byte(storage.EncodeTextRow(out)))
}

func (q *compiledQuery) combinePartials(key string, values [][]byte) [][]byte {
	merged, err := q.mergeValues(values)
	if err != nil {
		return values
	}
	return [][]byte{encodePartials(merged)}
}

func (q *compiledQuery) mergeValues(values [][]byte) ([]dgf.Accumulator, error) {
	merged := make([]dgf.Accumulator, len(q.slotFuncs))
	for i, f := range q.slotFuncs {
		merged[i].Func = f
	}
	for _, v := range values {
		accs, err := decodePartials(q.slotFuncs, v)
		if err != nil {
			return nil, err
		}
		for i := range merged {
			merged[i].Merge(accs[i])
		}
	}
	return merged, nil
}

// --- gathering ---

// gather converts collected job output into mergeable form, folding in the
// DGFIndex pre-computed inner header for aggregation plans. Finalization
// (group sort, AVG division, scalar empty-input row) happens later through
// PartialAgg.Finalize, shared with the shard router's merge path.
func (q *compiledQuery) gather(pairs []mapreduce.Pair, plan *dgf.Plan) ([]storage.Row, *PartialAgg, error) {
	if !q.isAgg {
		rows := make([]storage.Row, 0, len(pairs))
		outSchema := q.outSchema()
		for _, p := range pairs {
			row, err := storage.DecodeTextRow(outSchema, string(p.Value))
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil, nil
	}

	// Merge scanned partials per group key.
	agg := q.layout().NewPartial()
	for _, p := range pairs {
		accs, err := decodePartials(q.slotFuncs, p.Value)
		if err != nil {
			return nil, nil, err
		}
		agg.fold(p.Key, accs)
	}
	// Fold in the pre-computed inner result (scalar aggregation only: the
	// planner never uses precompute with GROUP BY).
	if plan != nil && plan.Aggregation {
		agg.fold("", plan.PreHeader)
	}
	return nil, agg, nil
}

func (q *compiledQuery) outSchema() *storage.Schema {
	cols := make([]storage.Column, len(q.items))
	for i, it := range q.items {
		cols[i] = storage.Column{Name: it.name, Kind: it.kind}
	}
	return storage.NewSchema(cols...)
}
