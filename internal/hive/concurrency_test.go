package hive

import (
	"fmt"
	"sync"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// TestConcurrentSelectsDuringLoads hammers one shared Warehouse with
// parallel COUNT(*) queries while a loader appends batches. Loads are
// serialized as writers, so every query must observe a row count that is
// exactly a batch boundary — any other value is a torn read.
func TestConcurrentSelectsDuringLoads(t *testing.T) {
	w := testWarehouse(1 << 20)
	mustExec(t, w, `CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`)
	tbl, _ := w.Table("meterdata")

	const batch = 40
	const batches = 5
	initial := meterRows(batch, 4, 1)
	if err := w.LoadRows(tbl, initial); err != nil {
		t.Fatal(err)
	}

	valid := map[int64]bool{}
	for k := 0; k <= batches; k++ {
		valid[int64((k+1)*batch)] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := w.Exec(`SELECT count(*) FROM meterdata`)
				if err != nil {
					errs <- err
					return
				}
				n := int64(res.Rows[0][0].AsFloat())
				if !valid[n] {
					errs <- fmt.Errorf("torn read: count %d is not a batch boundary", n)
					return
				}
			}
		}()
	}

	for k := 1; k <= batches; k++ {
		rows := meterRows(batch, 4, 1)
		for i := range rows {
			rows[i][0] = storage.Int64(int64(k*batch + i + 1))
		}
		if err := w.LoadRows(tbl, rows); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	res := mustExec(t, w, `SELECT count(*) FROM meterdata`)
	if got := int64(res.Rows[0][0].AsFloat()); got != int64((batches+1)*batch) {
		t.Fatalf("final count = %d, want %d", got, (batches+1)*batch)
	}
}

// TestConcurrentDDLAndQueries interleaves CREATE/DROP of scratch tables with
// queries over a stable table; the catalog map itself is under contention.
func TestConcurrentDDLAndQueries(t *testing.T) {
	w := testWarehouse(1 << 20)
	setupMeterTable(t, w, 30, 3, 2)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("scratch_%d_%d", g, i)
				if _, err := w.Exec(fmt.Sprintf("CREATE TABLE %s (a bigint, b double)", name)); err != nil {
					errs <- err
					return
				}
				if _, err := w.Exec(`SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 5`); err != nil {
					errs <- err
					return
				}
				if _, err := w.Exec("DROP TABLE " + name); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if names := w.TableNames(); len(names) != 1 || names[0] != "meterdata" {
		t.Fatalf("leftover tables: %v", names)
	}
}

// TestTableVersions checks the mutation counters the result cache keys on.
func TestTableVersions(t *testing.T) {
	w := testWarehouse(1 << 20)
	if v := w.TableVersion("meterdata"); v != 0 {
		t.Fatalf("version before create = %d, want 0", v)
	}
	setupMeterTable(t, w, 10, 2, 1)
	v1 := w.TableVersion("meterdata")
	if v1 == 0 {
		t.Fatal("version after create+load still 0")
	}
	cat := w.CatalogVersion()
	tbl, _ := w.Table("meterdata")
	if err := w.LoadRows(tbl, meterRows(5, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if v2 := w.TableVersion("meterdata"); v2 != v1+1 {
		t.Fatalf("version after load = %d, want %d", v2, v1+1)
	}
	if w.CatalogVersion() != cat+1 {
		t.Fatal("catalog version did not advance with load")
	}
	// Drop must not reset the counter: a recreated table continues it.
	if err := w.DropTable("meterdata"); err != nil {
		t.Fatal(err)
	}
	v3 := w.TableVersion("meterdata")
	mustExec(t, w, `CREATE TABLE meterdata (userId bigint, x double)`)
	if v4 := w.TableVersion("meterdata"); v4 <= v3 {
		t.Fatalf("version after recreate = %d, want > %d", v4, v3)
	}
	vs := w.TableVersions("meterdata", "nosuch")
	if vs["meterdata"] == 0 || vs["nosuch"] != 0 {
		t.Fatalf("TableVersions snapshot wrong: %v", vs)
	}
}

func TestNormalize(t *testing.T) {
	a, err := Normalize("select  Sum(powerConsumed)\nFROM MeterData -- comment\nwhere USERID >= 3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize("SELECT sum(powerconsumed) FROM meterdata WHERE userid>=3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("normal forms differ:\n%q\n%q", a, b)
	}
	// String literal case is semantic and must survive normalization.
	c, _ := Normalize("SELECT * FROM t WHERE city = 'Beijing'")
	d, _ := Normalize("SELECT * FROM t WHERE city = 'beijing'")
	if c == d {
		t.Fatal("string literal case was folded")
	}
	if _, err := Normalize("SELECT \x00"); err == nil {
		t.Fatal("want lex error")
	}
}

func TestStatementHelpers(t *testing.T) {
	stmt, err := Parse(`SELECT m.userId FROM meterdata m JOIN UserInfo u ON m.userId = u.userId WHERE m.userId >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	tables := StatementTables(stmt)
	if len(tables) != 2 || tables[0] != "meterdata" || tables[1] != "userinfo" {
		t.Fatalf("tables = %v", tables)
	}
	if !IsReadOnly(stmt) {
		t.Fatal("plain SELECT should be read-only")
	}
	ins, err := Parse(`INSERT OVERWRITE DIRECTORY '/out' SELECT userId FROM meterdata`)
	if err != nil {
		t.Fatal(err)
	}
	if IsReadOnly(ins) {
		t.Fatal("INSERT OVERWRITE DIRECTORY is a write")
	}
	ddl, _ := Parse(`CREATE TABLE x (a bigint)`)
	if IsReadOnly(ddl) || len(StatementTables(ddl)) != 1 {
		t.Fatal("CREATE TABLE classification wrong")
	}
}
