package hive

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// This file is the explicit combine/finalize API of the aggregation path.
// Every SQL aggregate reduces to a mergeable partial state over the shared
// accumulator vector — COUNT/SUM/MIN/MAX are their own monoids, AVG is the
// (sum, count) pair — so a partially executed SELECT can be merged with any
// number of others before finalization. The single-warehouse path and the
// shard router's scatter-gather both finalize through here, which is what
// keeps a one-shard router bit-identical to a bare Warehouse.

// AggOut binds one output column of an aggregate SELECT: either the
// GroupIdx-th GROUP BY column, or an aggregate finalized from the Slots of
// the accumulator vector.
type AggOut struct {
	// GroupIdx >= 0 marks a GROUP BY column (index into the group key);
	// negative marks an aggregate.
	GroupIdx int
	// Avg marks an AVG aggregate: Slots holds [sum, count] and the final
	// value is their quotient. Otherwise the final value is Slots[0]'s.
	Avg   bool
	Slots []int
}

// finalValue folds a merged accumulator vector into the column's value.
func (o AggOut) finalValue(accs []dgf.Accumulator) float64 {
	if o.Avg {
		sum, count := accs[o.Slots[0]], accs[o.Slots[1]]
		if count.Value == 0 {
			return math.NaN()
		}
		return sum.Value / count.Value
	}
	return accs[o.Slots[0]].Value
}

// AggLayout is the accumulator-vector layout and output-column binding of
// one aggregate SELECT. Compiling the same statement against the same
// schema yields the same layout on every store, so a scatter-gather merger
// can finalize merged state with any one shard's layout.
type AggLayout struct {
	SlotFuncs  []dgf.AggFunc
	Outs       []AggOut
	GroupKinds []storage.Kind
	// Scalar marks an aggregation without GROUP BY, which yields exactly
	// one output row even over empty input.
	Scalar bool
}

// newAccs returns an empty accumulator vector in the layout's shape.
func (l AggLayout) newAccs() []dgf.Accumulator {
	accs := make([]dgf.Accumulator, len(l.SlotFuncs))
	for i, f := range l.SlotFuncs {
		accs[i].Func = f
	}
	return accs
}

// NewPartial returns empty partial-aggregation state for the layout.
func (l AggLayout) NewPartial() *PartialAgg {
	return &PartialAgg{Layout: l, Groups: map[string][]dgf.Accumulator{}}
}

// PartialAgg is mergeable partial-aggregation state: one accumulator vector
// per group key.
type PartialAgg struct {
	Layout AggLayout
	Groups map[string][]dgf.Accumulator
}

// fold merges one group contribution into the state. The accs slice is
// copied, never retained.
func (p *PartialAgg) fold(key string, accs []dgf.Accumulator) {
	prev, ok := p.Groups[key]
	if !ok {
		prev = p.Layout.newAccs()
		p.Groups[key] = prev
	}
	for i := range prev {
		if i < len(accs) {
			prev[i].Merge(accs[i])
		}
	}
}

// Merge combines another store's partial state into p (the layouts must
// describe the same statement).
func (p *PartialAgg) Merge(o *PartialAgg) error {
	if o == nil {
		return nil
	}
	if len(o.Layout.SlotFuncs) != len(p.Layout.SlotFuncs) {
		return fmt.Errorf("hive: merging partials with %d and %d accumulator slots",
			len(p.Layout.SlotFuncs), len(o.Layout.SlotFuncs))
	}
	for key, accs := range o.Groups {
		p.fold(key, accs)
	}
	return nil
}

// Finalize renders the merged state as result rows, sorted by group key. A
// scalar aggregation yields exactly one row even over empty input.
func (p *PartialAgg) Finalize() []storage.Row {
	if p.Layout.Scalar {
		if _, ok := p.Groups[""]; !ok {
			p.Groups[""] = p.Layout.newAccs()
		}
	}
	keys := make([]string, 0, len(p.Groups))
	for k := range p.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows []storage.Row
	for _, key := range keys {
		accs := p.Groups[key]
		groupVals := strings.Split(key, "\x01")
		row := make(storage.Row, 0, len(p.Layout.Outs))
		for _, o := range p.Layout.Outs {
			if o.GroupIdx < 0 {
				row = append(row, storage.Float64(o.finalValue(accs)))
				continue
			}
			raw := ""
			if o.GroupIdx < len(groupVals) {
				raw = groupVals[o.GroupIdx]
			}
			v, err := storage.ParseValue(p.Layout.GroupKinds[o.GroupIdx], raw)
			if err != nil {
				v = storage.Str(raw)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows
}

// PartialResult is the outcome of one SELECT executed on one store, kept in
// mergeable form: plain rows for non-aggregate queries, per-group
// accumulator state for aggregates. The shard router merges the
// PartialResults of many shards and finalizes once; the single-warehouse
// path finalizes its own partial directly, so both share one
// combine/finalize implementation.
type PartialResult struct {
	Columns []string
	// Stats is this store's own execution cost. Merge deliberately leaves
	// it alone: scatter-gather cost semantics (sum the volumes, take the
	// slowest shard's time) belong to the router.
	Stats QueryStats
	// Agg holds aggregation state; nil for non-aggregate queries.
	Agg *PartialAgg
	// Rows holds non-aggregate result rows.
	Rows []storage.Row
}

// Merge folds another store's partial into pr: aggregate state merges
// group-wise, plain rows append in call order.
func (pr *PartialResult) Merge(o *PartialResult) error {
	if o == nil {
		return nil
	}
	if (pr.Agg == nil) != (o.Agg == nil) {
		return fmt.Errorf("hive: merging aggregate and non-aggregate partials")
	}
	if pr.Agg != nil {
		return pr.Agg.Merge(o.Agg)
	}
	pr.Rows = append(pr.Rows, o.Rows...)
	return nil
}

// Finalize renders the (possibly merged) partial as a Result, applying
// LIMIT (0 = none) and setting RowsOut. Wall is the caller's concern.
func (pr *PartialResult) Finalize(limit int) *Result {
	rows := pr.Rows
	if pr.Agg != nil {
		rows = pr.Agg.Finalize()
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	res := &Result{Columns: pr.Columns, Rows: rows, Stats: pr.Stats}
	res.Stats.RowsOut = len(rows)
	return res
}
