package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestMkdirAndStat(t *testing.T) {
	fs := New(16)
	if err := fs.MkdirAll("/warehouse/meterdata"); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/warehouse/meterdata")
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir || fi.Name != "meterdata" {
		t.Errorf("Stat = %+v, want dir named meterdata", fi)
	}
	if _, err := fs.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Stat missing = %v, want ErrNotExist", err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := New(8) // tiny blocks to force multi-block files
	w, err := fs.Create("/t/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello, smart grid meter data!")
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/t/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadFile = %q, want %q", got, payload)
	}
	fi, _ := fs.Stat("/t/data.txt")
	wantBlocks := (len(payload) + 7) / 8
	if fi.Blocks != wantBlocks {
		t.Errorf("Blocks = %d, want %d", fi.Blocks, wantBlocks)
	}
}

func TestCreateExistingFails(t *testing.T) {
	fs := New(0)
	w, _ := fs.Create("/a/b")
	w.Close()
	if _, err := fs.Create("/a/b"); !errors.Is(err, ErrExist) {
		t.Errorf("Create existing = %v, want ErrExist", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	fs := New(0)
	w, _ := fs.Create("/f")
	w.Close()
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded, want error")
	}
}

func TestReadAt(t *testing.T) {
	fs := New(4)
	w, _ := fs.Create("/f")
	w.WriteString("0123456789")
	w.Close()
	r, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.ReadAt(buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "345" {
		t.Errorf("ReadAt(3) = %q, want 345", buf)
	}
	// Read crossing block boundary.
	buf = make([]byte, 6)
	if _, err := r.ReadAt(buf, 2); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "234567" {
		t.Errorf("cross-block ReadAt = %q, want 234567", buf)
	}
	// Read past end returns EOF with partial data.
	buf = make([]byte, 5)
	n, err := r.ReadAt(buf, 8)
	if err != io.EOF || n != 2 || string(buf[:n]) != "89" {
		t.Errorf("tail ReadAt = (%d, %v, %q)", n, err, buf[:n])
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("ReadAt past EOF = %v, want EOF", err)
	}
}

func TestSequentialReadAndSeek(t *testing.T) {
	fs := New(4)
	w, _ := fs.Create("/f")
	w.WriteString("abcdefgh")
	w.Close()
	r, _ := fs.Open("/f")
	all, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(all) != "abcdefgh" {
		t.Errorf("ReadAll = %q", all)
	}
	if _, err := r.Seek(2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	r.Read(b)
	if string(b) != "cd" {
		t.Errorf("after seek read %q, want cd", b)
	}
}

func TestSplits(t *testing.T) {
	fs := New(10)
	w, _ := fs.Create("/tbl/part-0")
	w.Write(make([]byte, 25))
	w.Close()
	splits, err := fs.Splits("/tbl/part-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	if splits[0].Length != 10 || splits[2].Length != 5 {
		t.Errorf("split lengths wrong: %+v", splits)
	}
	if splits[1].Start != 10 || splits[1].End() != 20 {
		t.Errorf("middle split = %+v", splits[1])
	}
}

func TestDirSplits(t *testing.T) {
	fs := New(10)
	for _, name := range []string{"/tbl/b", "/tbl/a"} {
		w, _ := fs.Create(name)
		w.Write(make([]byte, 15))
		w.Close()
	}
	fs.MkdirAll("/tbl/subdir") // directories are skipped
	splits, err := fs.DirSplits("/tbl")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("got %d splits, want 4", len(splits))
	}
	if splits[0].Path != "/tbl/a" || splits[2].Path != "/tbl/b" {
		t.Errorf("splits not ordered by file name: %+v", splits)
	}
}

func TestRemoveAndRename(t *testing.T) {
	fs := New(0)
	w, _ := fs.Create("/a/f")
	w.Close()
	if err := fs.Remove("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Remove non-empty dir = %v, want ErrNotEmpty", err)
	}
	if err := fs.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/f") || !fs.Exists("/b/g") {
		t.Error("rename did not move the file")
	}
	if err := fs.RemoveAll("/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/b") {
		t.Error("RemoveAll left the subtree")
	}
	if err := fs.RemoveAll("/missing"); err != nil {
		t.Errorf("RemoveAll missing = %v, want nil", err)
	}
}

func TestNameNodeUsage(t *testing.T) {
	fs := New(10)
	// The paper's example: multidimensional partition directories are
	// expensive. 3 dims x 3 values each = 27 leaf dirs.
	for _, a := range []string{"1", "2", "3"} {
		for _, b := range []string{"1", "2", "3"} {
			for _, c := range []string{"1", "2", "3"} {
				fs.MkdirAll("/part/a=" + a + "/b=" + b + "/c=" + c)
			}
		}
	}
	st := fs.NameNodeUsage()
	// root + part + 3 + 9 + 27 = 41 dirs
	if st.Dirs != 41 {
		t.Errorf("Dirs = %d, want 41", st.Dirs)
	}
	if st.MemoryBytes != int64(41)*NameNodeBytesPerObject {
		t.Errorf("MemoryBytes = %d", st.MemoryBytes)
	}
	w, _ := fs.Create("/part/file")
	w.Write(make([]byte, 25)) // 3 blocks
	w.Close()
	st = fs.NameNodeUsage()
	if st.Files != 1 || st.Blocks != 3 {
		t.Errorf("Files=%d Blocks=%d, want 1 and 3", st.Files, st.Blocks)
	}
}

func TestCounters(t *testing.T) {
	fs := New(4)
	w, _ := fs.Create("/f")
	w.WriteString("0123456789")
	w.Close()
	if fs.BytesWritten() != 10 {
		t.Errorf("BytesWritten = %d, want 10", fs.BytesWritten())
	}
	fs.ReadFile("/f")
	if fs.BytesRead() != 10 {
		t.Errorf("BytesRead = %d, want 10", fs.BytesRead())
	}
	fs.ResetCounters()
	if fs.BytesRead() != 0 || fs.BytesWritten() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	fs := New(0)
	if err := fs.WriteFile("/x/y", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/x/y", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/x/y")
	if string(got) != "two" {
		t.Errorf("got %q, want two", got)
	}
}

// Property: for any payload and block size, a write followed by a full read
// round-trips, and the block count is ceil(len/blockSize).
func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(payload []byte, bsRaw uint8) bool {
		bs := int64(bsRaw%64) + 1
		fs := New(bs)
		w, err := fs.Create("/f")
		if err != nil {
			return false
		}
		if _, err := w.Write(payload); err != nil {
			return false
		}
		w.Close()
		got, err := fs.ReadFile("/f")
		if err != nil {
			return false
		}
		if !bytes.Equal(got, payload) {
			return false
		}
		fi, _ := fs.Stat("/f")
		wantBlocks := (len(payload) + int(bs) - 1) / int(bs)
		return fi.Blocks == wantBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadAt(buf, off) over random segments matches the source slice.
func TestReadAtSegmentsProperty(t *testing.T) {
	f := func(payload []byte, offRaw, lenRaw uint8) bool {
		fs := New(7)
		w, _ := fs.Create("/f")
		w.Write(payload)
		w.Close()
		if len(payload) == 0 {
			return true
		}
		off := int(offRaw) % len(payload)
		l := int(lenRaw)%(len(payload)-off) + 1
		r, _ := fs.Open("/f")
		buf := make([]byte, l)
		n, err := r.ReadAt(buf, int64(off))
		if err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(buf[:n], payload[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: splits tile the file exactly: contiguous, non-overlapping, and
// their lengths sum to the file size.
func TestSplitsTileProperty(t *testing.T) {
	f := func(size uint16, bsRaw uint8) bool {
		bs := int64(bsRaw%32) + 1
		fs := New(bs)
		w, _ := fs.Create("/f")
		w.Write(make([]byte, int(size)))
		w.Close()
		splits, err := fs.Splits("/f")
		if err != nil {
			return false
		}
		var pos, total int64
		for _, s := range splits {
			if s.Start != pos || s.Length <= 0 {
				return false
			}
			pos = s.End()
			total += s.Length
		}
		return total == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New(64)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := "/c/f" + string(rune('0'+i))
			w, err := fs.Create(name)
			if err != nil {
				done <- err
				return
			}
			for j := 0; j < 100; j++ {
				if _, err := w.WriteString("row\n"); err != nil {
					done <- err
					return
				}
			}
			done <- w.Close()
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	files, _ := fs.ListFiles("/c")
	if len(files) != 8 {
		t.Fatalf("got %d files, want 8", len(files))
	}
	for _, fi := range files {
		if fi.Size != 400 {
			t.Errorf("%s size = %d, want 400", fi.Name, fi.Size)
		}
	}
}
