// Package dfs models the HDFS layer that the DGFIndex paper builds on.
//
// It provides exactly what the paper's pipeline needs from HDFS:
//
//   - a hierarchical namespace with directories and append-only files,
//   - files stored as fixed-size blocks (64 MB default, configurable; the
//     experiments scale it down together with the datasets),
//   - input split generation (one split per block, like Hadoop's FileSplit),
//   - byte-range reads (positional reads for slice skipping),
//   - NameNode metadata-memory accounting: every directory, file and block
//     costs about 150 bytes of NameNode heap (the figure the paper cites when
//     it argues multidimensional partitioning overloads the NameNode).
//
// The implementation is in-process and thread-safe. Block payloads live in
// memory; at the scales the benchmarks use (hundreds of MB) this is both the
// fastest and the simplest faithful substitute for a real HDFS cluster.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize is the HDFS default block size used by the paper (64 MB).
const DefaultBlockSize = 64 << 20

// NameNodeBytesPerObject is the approximate NameNode heap cost of one
// namespace object (directory, file or block), per the Cloudera figure the
// paper cites in Section 2.2.
const NameNodeBytesPerObject = 150

// Common errors returned by the filesystem.
var (
	ErrNotExist = errors.New("dfs: no such file or directory")
	ErrExist    = errors.New("dfs: file already exists")
	ErrIsDir    = errors.New("dfs: is a directory")
	ErrNotDir   = errors.New("dfs: not a directory")
	ErrNotEmpty = errors.New("dfs: directory not empty")
)

// FS is an in-process model of an HDFS namespace plus datanode storage.
type FS struct {
	mu        sync.RWMutex
	root      *node
	blockSize int64

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64

	parseCache sync.Map // path -> *parseEntry, see CachedParse
}

// parseEntry is one CachedParse result, valid while the file keeps the size
// it had when parsed.
type parseEntry struct {
	size  int64
	value any
}

type node struct {
	name     string
	dir      bool
	children map[string]*node // directories only
	blocks   [][]byte         // files only
	size     int64            // files only
}

// New creates an empty filesystem with the given block size. A non-positive
// blockSize selects DefaultBlockSize.
func New(blockSize int64) *FS {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &FS{
		root:      &node{name: "/", dir: true, children: map[string]*node{}},
		blockSize: blockSize,
	}
}

// BlockSize returns the filesystem block size in bytes.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// BytesWritten returns the total payload bytes written since creation.
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// BytesRead returns the total payload bytes read since creation.
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }

// ResetCounters zeroes the read/write byte counters. Experiments call this
// between phases to attribute I/O.
func (fs *FS) ResetCounters() {
	fs.bytesWritten.Store(0)
	fs.bytesRead.Store(0)
}

// CachedParse memoises the parsed form of a file, so metadata consulted on
// every query plan — row-group indexes, column statistics, bitmap sidecars —
// is decoded once instead of per query. The cache key is the path; an entry
// is valid while the file keeps the size it had when parsed — appends (the
// only in-place mutation this DFS offers) grow the size, and every
// truncating or namespace operation (Create, Remove, RemoveAll, Rename)
// evicts the affected entries outright. A missing file caches too (size
// -1), so repeated probes for an absent side file cost one Stat. Callers
// must treat the returned value as immutable — it is shared with every
// other caller.
func (fs *FS) CachedParse(p string, parse func() (any, error)) (any, error) {
	key := path.Clean("/" + p)
	size := int64(-1)
	if fi, err := fs.Stat(key); err == nil {
		size = fi.Size
	}
	if v, ok := fs.parseCache.Load(key); ok {
		if e := v.(*parseEntry); e.size == size {
			return e.value, nil
		}
	}
	val, err := parse()
	if err != nil {
		return nil, err // parse failures are not cached: the next call retries
	}
	fs.parseCache.Store(key, &parseEntry{size: size, value: val})
	return val, nil
}

// invalidateParse drops the CachedParse entry for p (no-op when absent).
func (fs *FS) invalidateParse(p string) {
	fs.parseCache.Delete(path.Clean("/" + p))
}

// invalidateParseTree drops every CachedParse entry at or under p.
func (fs *FS) invalidateParseTree(p string) {
	prefix := path.Clean("/" + p)
	fs.parseCache.Range(func(k, _ any) bool {
		key := k.(string)
		if key == prefix || strings.HasPrefix(key, prefix+"/") || prefix == "/" {
			fs.parseCache.Delete(key)
		}
		return true
	})
}

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the node at p. Caller must hold fs.mu.
func (fs *FS) lookup(p string) (*node, error) {
	cur := fs.root
	for _, part := range splitPath(p) {
		if !cur.dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		cur = next
	}
	return cur, nil
}

// MkdirAll creates directory p along with any missing parents.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.root
	for _, part := range splitPath(p) {
		next, ok := cur.children[part]
		if !ok {
			next = &node{name: part, dir: true, children: map[string]*node{}}
			cur.children[part] = next
		} else if !next.dir {
			return fmt.Errorf("%w: %s", ErrNotDir, p)
		}
		cur = next
	}
	return nil
}

// Create creates a new file at p (parents must exist or are created) and
// returns a writer. The file must not already exist.
func (fs *FS) Create(p string) (*FileWriter, error) {
	dir, base := path.Split(path.Clean("/" + p))
	if base == "" {
		return nil, fmt.Errorf("%w: empty file name", ErrNotExist)
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil, err
	}
	if _, ok := parent.children[base]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, p)
	}
	f := &node{name: base}
	parent.children[base] = f
	return &FileWriter{fs: fs, f: f, path: path.Clean("/" + p)}, nil
}

// FileInfo describes a namespace entry.
type FileInfo struct {
	Path   string
	Name   string
	Size   int64
	IsDir  bool
	Blocks int
}

// Stat returns metadata for the entry at p.
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Path:   path.Clean("/" + p),
		Name:   n.name,
		Size:   n.size,
		IsDir:  n.dir,
		Blocks: len(n.blocks),
	}, nil
}

// Exists reports whether an entry exists at p.
func (fs *FS) Exists(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, err := fs.lookup(p)
	return err == nil
}

// List returns the entries of directory p sorted by name.
func (fs *FS) List(p string) ([]FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	out := make([]FileInfo, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, FileInfo{
			Path:   path.Join("/", p, c.name),
			Name:   c.name,
			Size:   c.size,
			IsDir:  c.dir,
			Blocks: len(c.blocks),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ListFiles returns the non-directory entries directly under p, sorted.
func (fs *FS) ListFiles(p string) ([]FileInfo, error) {
	all, err := fs.List(p)
	if err != nil {
		return nil, err
	}
	files := all[:0]
	for _, fi := range all {
		if !fi.IsDir {
			files = append(files, fi)
		}
	}
	return files, nil
}

// Remove deletes the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	dir, base := path.Split(path.Clean("/" + p))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.lookup(dir)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(parent.children, base)
	fs.invalidateParse(p)
	return nil
}

// RemoveAll deletes the subtree rooted at p. Removing a missing path is not
// an error, matching os.RemoveAll.
func (fs *FS) RemoveAll(p string) error {
	dir, base := path.Split(path.Clean("/" + p))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if base == "" { // removing "/" clears the namespace
		fs.root.children = map[string]*node{}
		fs.invalidateParseTree("/")
		return nil
	}
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil
	}
	delete(parent.children, base)
	fs.invalidateParseTree(p)
	return nil
}

// Rename moves the entry at oldPath to newPath. The destination must not
// already exist; destination parents are created.
func (fs *FS) Rename(oldPath, newPath string) error {
	newDir, newBase := path.Split(path.Clean("/" + newPath))
	if err := fs.MkdirAll(newDir); err != nil {
		return err
	}
	oldDir, oldBase := path.Split(path.Clean("/" + oldPath))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldParent, err := fs.lookup(oldDir)
	if err != nil {
		return err
	}
	n, ok := oldParent.children[oldBase]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	newParent, err := fs.lookup(newDir)
	if err != nil {
		return err
	}
	if _, exists := newParent.children[newBase]; exists {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	delete(oldParent.children, oldBase)
	n.name = newBase
	newParent.children[newBase] = n
	fs.invalidateParseTree(oldPath)
	fs.invalidateParseTree(newPath)
	return nil
}

// NameNodeStats summarises NameNode metadata usage.
type NameNodeStats struct {
	Dirs, Files, Blocks int
	// MemoryBytes is the modelled NameNode heap consumption
	// (150 bytes per namespace object, per the paper's citation).
	MemoryBytes int64
}

// NameNodeUsage walks the namespace and returns metadata-memory accounting.
func (fs *FS) NameNodeUsage() NameNodeStats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var st NameNodeStats
	var walk func(n *node)
	walk = func(n *node) {
		if n.dir {
			st.Dirs++
			for _, c := range n.children {
				walk(c)
			}
		} else {
			st.Files++
			st.Blocks += len(n.blocks)
		}
	}
	walk(fs.root)
	st.MemoryBytes = int64(st.Dirs+st.Files+st.Blocks) * NameNodeBytesPerObject
	return st
}

// FileWriter appends data to a file, splitting it into blocks.
type FileWriter struct {
	fs     *FS
	f      *node
	path   string
	closed bool
}

// Path returns the file's absolute path.
func (w *FileWriter) Path() string { return w.path }

// Size returns the number of bytes written so far (the current file offset).
func (w *FileWriter) Size() int64 {
	w.fs.mu.RLock()
	defer w.fs.mu.RUnlock()
	return w.f.size
}

// Write appends p to the file.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("dfs: write to closed file")
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	bs := w.fs.blockSize
	remaining := p
	for len(remaining) > 0 {
		if n := len(w.f.blocks); n == 0 || int64(len(w.f.blocks[n-1])) >= bs {
			w.f.blocks = append(w.f.blocks, make([]byte, 0, min64(bs, int64(len(remaining)))))
		}
		last := len(w.f.blocks) - 1
		room := bs - int64(len(w.f.blocks[last]))
		take := int64(len(remaining))
		if take > room {
			take = room
		}
		w.f.blocks[last] = append(w.f.blocks[last], remaining[:take]...)
		remaining = remaining[take:]
		w.f.size += take
	}
	w.fs.bytesWritten.Add(int64(len(p)))
	return len(p), nil
}

// WriteString appends s to the file.
func (w *FileWriter) WriteString(s string) (int, error) {
	// Avoid a copy for the common case of line-at-a-time writers.
	return w.Write([]byte(s))
}

// Close finalises the file. Further writes fail.
func (w *FileWriter) Close() error {
	w.closed = true
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Open returns a reader positioned at the start of file p.
func (fs *FS) Open(p string) (*FileReader, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	return &FileReader{fs: fs, f: n, path: path.Clean("/" + p)}, nil
}

// ReadFile reads the whole file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	r, err := fs.Open(p)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates file p with the given contents, replacing any existing
// file.
func (fs *FS) WriteFile(p string, data []byte) error {
	if fs.Exists(p) {
		if err := fs.Remove(p); err != nil {
			return err
		}
	}
	w, err := fs.Create(p)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// FileReader supports sequential and positional reads of one file.
type FileReader struct {
	fs   *FS
	f    *node
	path string
	pos  int64
}

// Path returns the file's absolute path.
func (r *FileReader) Path() string { return r.path }

// Size returns the file size in bytes.
func (r *FileReader) Size() int64 {
	r.fs.mu.RLock()
	defer r.fs.mu.RUnlock()
	return r.f.size
}

// ReadAt implements io.ReaderAt over the block list.
func (r *FileReader) ReadAt(p []byte, off int64) (int, error) {
	r.fs.mu.RLock()
	defer r.fs.mu.RUnlock()
	if off < 0 {
		return 0, errors.New("dfs: negative offset")
	}
	if off >= r.f.size {
		return 0, io.EOF
	}
	bs := r.fs.blockSize
	n := 0
	for n < len(p) && off < r.f.size {
		bi := off / bs
		bo := off % bs
		block := r.f.blocks[bi]
		c := copy(p[n:], block[bo:])
		n += c
		off += int64(c)
	}
	r.fs.bytesRead.Add(int64(n))
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *FileReader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.Size() + offset
	default:
		return 0, errors.New("dfs: invalid whence")
	}
	if abs < 0 {
		return 0, errors.New("dfs: negative position")
	}
	r.pos = abs
	return abs, nil
}

// Split is a byte range of one file processed by one map task, equivalent to
// Hadoop's FileSplit. Splits align with block boundaries.
type Split struct {
	Path   string
	Start  int64
	Length int64
}

// End returns the exclusive end offset of the split.
func (s Split) End() int64 { return s.Start + s.Length }

// String formats the split like Hadoop logs do.
func (s Split) String() string {
	return fmt.Sprintf("%s:%d+%d", s.Path, s.Start, s.Length)
}

// Splits returns one split per block of file p.
func (fs *FS) Splits(p string) ([]Split, error) {
	fi, err := fs.Stat(p)
	if err != nil {
		return nil, err
	}
	if fi.IsDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	var out []Split
	for off := int64(0); off < fi.Size; off += fs.blockSize {
		length := fs.blockSize
		if off+length > fi.Size {
			length = fi.Size - off
		}
		out = append(out, Split{Path: fi.Path, Start: off, Length: length})
	}
	return out, nil
}

// DirSplits returns the splits of every regular file directly under dir,
// ordered by file name then offset. This is how a Hive table scan enumerates
// its input.
func (fs *FS) DirSplits(dir string) ([]Split, error) {
	files, err := fs.ListFiles(dir)
	if err != nil {
		return nil, err
	}
	var out []Split
	for _, fi := range files {
		s, err := fs.Splits(fi.Path)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out, nil
}
