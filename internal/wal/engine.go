package wal

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// Store is the apply target for one replica — in production the replica's
// *hive.Warehouse, whose LoadRowsByName already bumps table versions and
// runs incremental DGF index maintenance (dgf.Append) per batch.
type Store interface {
	LoadRowsByName(table string, rows []storage.Row) error
}

// Options configures an Engine.
type Options struct {
	// Dir is the WAL root; logs live at Dir/shard-NNN/replica-N.wal.
	Dir string
	// Fsync selects the durability/latency trade-off for appends.
	Fsync Policy
	// SyncEvery is the PolicyInterval flush period. Default 25ms.
	SyncEvery time.Duration
	// MaxBatchRows caps rows coalesced into one apply call. Default 8192.
	MaxBatchRows int
	// MaxPendingRows is the per-replica backpressure bound: commits block
	// (context-aware) while a live replica has this many unapplied rows.
	// Default 1<<20.
	MaxPendingRows int
	// SlowApplyMs: applies slower than this are recorded in the flight
	// recorder (errored applies and catch-ups always are). Default 500.
	SlowApplyMs float64
	// OnApply, when set, runs after every successful apply batch — the
	// server hooks result-cache invalidation here so cached answers are
	// evicted when rows land, not when they are enqueued.
	OnApply func(table string, rows int)
	// Recorder, when set, receives apply/catchup trace spans (slow or
	// errored applies; every catch-up).
	Recorder *trace.Recorder
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.MaxBatchRows <= 0 {
		o.MaxBatchRows = 8192
	}
	if o.MaxPendingRows <= 0 {
		o.MaxPendingRows = 1 << 20
	}
	if o.SlowApplyMs <= 0 {
		o.SlowApplyMs = 500
	}
	return o
}

// Engine owns the logs and appliers for a whole fleet: one LSN sequencer
// per shard, one log + applier goroutine per replica.
type Engine struct {
	opts   Options
	shards []*shardWAL

	stopSync chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// shardWAL sequences commits for one shard. All replicas share nextLSN, so
// every replica's log holds the same records in the same order (modulo a
// suffix missing while a replica is down).
type shardWAL struct {
	idx  int
	mu   sync.Mutex // serialises commit + catch-up log repair
	next uint64     // next LSN to assign (1-based)
	reps []*replicaWAL
}

// replicaWAL is one replica's log, pending queue, and applier state.
type replicaWAL struct {
	eng   *Engine
	shard int
	idx   int
	store Store
	log   *Log

	mu           sync.Mutex
	cond         *sync.Cond
	pending      []Record
	pendingRows  int
	applied      uint64 // LSN high-water mark: everything <= is in the store
	replayTarget uint64 // records <= this were recovered/backfilled, not live commits
	active       bool   // false while the replica is down: no appends, no applies
	catchingUp   bool
	closed       bool
	hinted       int64 // records skipped while down (owed via catch-up)
	replayedRows int64 // rows applied via recovery or catch-up replay
	batches      int64 // successful apply batches
	stalled      string
}

// Open recovers (or initialises) the WAL under opts.Dir for a fleet shaped
// like stores: stores[shard][replica]. Recovered records are queued for
// re-apply — the stores are in-memory, so a process restart means every
// logged record replays from LSN 1. Replica logs of the same shard are
// repaired to a common tail before appliers start, so even a fleet that
// crashed mid-commit comes back prefix-identical.
func Open(opts Options, stores [][]Store) (*Engine, error) {
	opts = opts.withDefaults()
	e := &Engine{opts: opts, stopSync: make(chan struct{})}
	for si, reps := range stores {
		sw := &shardWAL{idx: si}
		recovered := make([][]Record, len(reps))
		maxLast := uint64(0)
		donor := -1
		for ri, st := range reps {
			path := filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", si), fmt.Sprintf("replica-%d.wal", ri))
			l, recs, err := OpenLog(path)
			if err != nil {
				e.closeLogs()
				return nil, err
			}
			rw := &replicaWAL{eng: e, shard: si, idx: ri, store: st, log: l, active: true}
			rw.cond = sync.NewCond(&rw.mu)
			sw.reps = append(sw.reps, rw)
			recovered[ri] = recs
			if last := l.LastLSN(); last > maxLast {
				maxLast, donor = last, ri
			}
		}
		// Repair short logs from the longest sibling: a crash between
		// per-replica appends of one commit leaves tails of different
		// lengths; all replicas must replay the same history.
		for ri, rw := range sw.reps {
			last := rw.log.LastLSN()
			if donor >= 0 && last < maxLast {
				for _, rec := range recovered[donor] {
					if rec.LSN <= last {
						continue
					}
					if err := rw.log.Append(rec, PolicyOff); err != nil {
						e.closeLogs()
						return nil, err
					}
					recovered[ri] = append(recovered[ri], rec)
				}
			}
			rw.pending = recovered[ri]
			rw.pendingRows = recordRows(rw.pending)
			rw.replayTarget = maxLast
		}
		sw.next = maxLast + 1
		e.shards = append(e.shards, sw)
	}
	for _, sw := range e.shards {
		for _, rw := range sw.reps {
			e.wg.Add(1)
			go rw.run()
		}
	}
	if opts.Fsync == PolicyInterval {
		e.wg.Add(1)
		go e.syncLoop()
	}
	return e, nil
}

func (e *Engine) closeLogs() {
	for _, sw := range e.shards {
		for _, rw := range sw.reps {
			rw.log.Close(PolicyOff)
		}
	}
}

func (e *Engine) syncLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-e.stopSync:
			return
		case <-t.C:
			for _, sw := range e.shards {
				for _, rw := range sw.reps {
					rw.log.Sync() // best-effort; append errors surface on commit
				}
			}
		}
	}
}

// Commit durably logs one shard's slice of a load and queues it for apply,
// returning the assigned LSN. Replicas marked down are skipped and owed
// the record via hinted handoff; if no replica is live the commit fails
// (nothing was logged). ctx gates only the backpressure wait — once
// appending starts the commit always completes.
func (e *Engine) Commit(ctx context.Context, shard int, table string, rows []storage.Row) (uint64, error) {
	if shard < 0 || shard >= len(e.shards) {
		return 0, fmt.Errorf("wal: commit to unknown shard %d", shard)
	}
	sw := e.shards[shard]
	// Backpressure before taking the commit lock: a replica drowning in
	// unapplied rows should slow producers, not grow without bound.
	for _, rw := range sw.reps {
		if err := rw.waitCapacity(ctx, e.opts.MaxPendingRows); err != nil {
			return 0, err
		}
	}
	var span *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		span = parent.Child("wal_append")
		defer span.Finish()
	}

	sw.mu.Lock()
	defer sw.mu.Unlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, fmt.Errorf("wal: engine closed")
	}
	e.mu.Unlock()

	rec := Record{LSN: sw.next, Table: table, Rows: rows}
	logged := 0
	for _, rw := range sw.reps {
		rw.mu.Lock()
		if !rw.active {
			rw.hinted++
			rw.mu.Unlock()
			continue
		}
		rw.mu.Unlock()
		if err := rw.log.Append(rec, e.opts.Fsync); err != nil {
			// A replica whose log cannot take writes is as good as down:
			// demote it (it will be owed the record like any dead replica)
			// and keep the commit alive on its siblings.
			rw.mu.Lock()
			rw.active = false
			rw.hinted++
			rw.stalled = err.Error()
			rw.cond.Broadcast()
			rw.mu.Unlock()
			continue
		}
		rw.mu.Lock()
		rw.pending = append(rw.pending, rec)
		rw.pendingRows += len(rows)
		rw.cond.Broadcast()
		rw.mu.Unlock()
		logged++
	}
	if logged == 0 {
		return 0, fmt.Errorf("wal: shard %d: no live replica log accepted the record", shard)
	}
	sw.next++
	if span != nil {
		span.Set("shard", shard)
		span.Set("lsn", rec.LSN)
		span.Set("rows", len(rows))
		span.Set("replicas_logged", logged)
		span.Set("fsync", e.opts.Fsync.String())
	}
	return rec.LSN, nil
}

// waitCapacity blocks while the replica is live and over the pending-rows
// bound. Down replicas don't exert backpressure (they aren't applying).
func (rw *replicaWAL) waitCapacity(ctx context.Context, maxRows int) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.pendingRows < maxRows || !rw.active || rw.closed {
		return nil
	}
	stop := watchCtx(ctx, rw.cond)
	defer stop()
	for rw.pendingRows >= maxRows && rw.active && !rw.closed {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("wal: backpressure wait: %w", err)
		}
		rw.cond.Wait()
	}
	return nil
}

// watchCtx broadcasts on cond when ctx is cancelled so cond.Wait loops can
// observe the cancellation. Returns a stop func; no-op for contexts that
// can never be cancelled.
func watchCtx(ctx context.Context, cond *sync.Cond) func() {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			cond.L.Lock()
			cond.Broadcast()
			cond.L.Unlock()
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// run is the per-replica applier: it drains pending records in LSN order,
// coalescing contiguous same-table records into micro-batches, and applies
// them to the store. Strict order keeps part-file naming — and therefore
// scan row order — identical across replicas.
func (rw *replicaWAL) run() {
	defer rw.eng.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		rw.mu.Lock()
		for !rw.closed && (!rw.active || len(rw.pending) == 0) {
			rw.cond.Wait()
		}
		if rw.closed {
			rw.mu.Unlock()
			return
		}
		table := rw.pending[0].Table
		maxRows := rw.eng.opts.MaxBatchRows
		n, rows, replay := 0, 0, 0
		var lastLSN uint64
		for n < len(rw.pending) && rw.pending[n].Table == table {
			r := len(rw.pending[n].Rows)
			if n > 0 && rows+r > maxRows {
				break
			}
			rows += r
			if rw.pending[n].LSN <= rw.replayTarget {
				replay += r
			}
			lastLSN = rw.pending[n].LSN
			n++
		}
		batch := make([]storage.Row, 0, rows)
		for i := 0; i < n; i++ {
			batch = append(batch, rw.pending[i].Rows...)
		}
		rw.mu.Unlock()

		span := trace.New("apply")
		span.Set("shard", rw.shard)
		span.Set("replica", rw.idx)
		span.Set("table", table)
		span.Set("records", n)
		span.Set("rows", rows)
		span.Set("lsn", lastLSN)
		err := rw.store.LoadRowsByName(table, batch)
		span.Finish()

		if err != nil {
			// Never drop a logged record: surface the stall, back off, and
			// retry. The record is durable; the operator can see the error
			// in /stats and the flight recorder.
			rw.mu.Lock()
			rw.stalled = err.Error()
			rw.mu.Unlock()
			rw.record(span, fmt.Sprintf("WAL apply shard %d replica %d table %s", rw.shard, rw.idx, table), err)
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 10 * time.Millisecond

		rw.mu.Lock()
		rw.pending = rw.pending[n:]
		rw.pendingRows -= rows
		rw.applied = lastLSN
		rw.batches++
		rw.replayedRows += int64(replay)
		rw.stalled = ""
		rw.cond.Broadcast()
		rw.mu.Unlock()

		if cb := rw.eng.opts.OnApply; cb != nil {
			cb(table, rows)
		}
		if wall := span.Wall(); float64(wall)/float64(time.Millisecond) >= rw.eng.opts.SlowApplyMs {
			rw.record(span, fmt.Sprintf("WAL apply shard %d replica %d table %s", rw.shard, rw.idx, table), nil)
		}
	}
}

func (rw *replicaWAL) record(span *trace.Span, what string, err error) {
	rec := rw.eng.opts.Recorder
	if rec == nil {
		return
	}
	tr := trace.Record{
		Time:   time.Now(),
		SQL:    what,
		WallMs: float64(span.Wall()) / float64(time.Millisecond),
		Trace:  span.Snapshot(),
	}
	if err != nil {
		tr.Error = err.Error()
	} else {
		tr.Slow = true
	}
	rec.Add(tr)
}

// MarkDown pauses a replica: commits stop appending to its log (hinting
// instead) and its applier idles. Pending records stay queued so an
// in-process revive never replays a record twice.
func (e *Engine) MarkDown(shard, replica int) {
	rw := e.replica(shard, replica)
	if rw == nil {
		return
	}
	rw.mu.Lock()
	rw.active = false
	rw.catchingUp = false
	rw.cond.Broadcast()
	rw.mu.Unlock()
}

// CatchUp repairs a revived replica by log replay: records the live
// siblings committed while it was down (LSN > its log tail) are copied
// from the most advanced sibling's log into its own log and pending
// queue, the applier resumes, and onDone fires once the replica's applied
// high-water mark reaches the repair target. The catching-up window is
// observable via Stats (CatchingUp=true). Runs asynchronously.
func (e *Engine) CatchUp(shard, replica int, onDone func()) {
	rw := e.replica(shard, replica)
	if rw == nil {
		if onDone != nil {
			onDone()
		}
		return
	}
	sw := e.shards[shard]
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		span := trace.New("catchup")
		span.Set("shard", shard)
		span.Set("replica", replica)

		// Under the shard commit lock: no new LSNs can land mid-repair, so
		// "donor tail" is a stable target.
		sw.mu.Lock()
		var donor *replicaWAL
		for _, sib := range sw.reps {
			if sib == rw {
				continue
			}
			sib.mu.Lock()
			ok := sib.active
			sib.mu.Unlock()
			if ok && (donor == nil || sib.log.LastLSN() > donor.log.LastLSN()) {
				donor = sib
			}
		}
		mine := rw.log.LastLSN()
		var missed []Record
		var scanErr error
		if donor != nil && donor.log.LastLSN() > mine {
			missed, scanErr = donor.log.ScanFrom(mine)
		}
		if scanErr == nil {
			for _, rec := range missed {
				if err := rw.log.Append(rec, PolicyOff); err != nil {
					scanErr = err
					break
				}
			}
		}
		rw.mu.Lock()
		if scanErr != nil {
			rw.stalled = scanErr.Error()
		}
		for _, rec := range missed {
			rw.pending = append(rw.pending, rec)
			rw.pendingRows += len(rec.Rows)
		}
		target := mine
		if n := len(missed); n > 0 {
			target = missed[n-1].LSN
		}
		if target > rw.replayTarget {
			rw.replayTarget = target
		}
		rw.active = true
		rw.catchingUp = true
		rw.hinted = 0
		rw.cond.Broadcast()
		rw.mu.Unlock()
		sw.mu.Unlock()

		span.Set("from_lsn", mine)
		span.Set("to_lsn", target)
		span.Set("records", len(missed))
		span.Set("rows", recordRows(missed))
		if scanErr != nil {
			span.Eventf("log repair failed: %v", scanErr)
		}

		// Wait until the replica has applied the full repaired history (or
		// went down / closed again first).
		rw.mu.Lock()
		for rw.applied < target && rw.active && !rw.closed {
			rw.cond.Wait()
		}
		reached := rw.applied >= target
		if reached {
			rw.catchingUp = false
		}
		rw.mu.Unlock()
		span.Finish()
		rw.record(span, fmt.Sprintf("WAL catchup shard %d replica %d", shard, replica), scanErr)
		if reached && onDone != nil {
			onDone()
		}
	}()
}

// WaitApplied blocks until every live replica of shard has applied through
// lsn, the context expires, or the engine closes. Used for ?sync=1 acks.
func (e *Engine) WaitApplied(ctx context.Context, shard int, lsn uint64) error {
	if shard < 0 || shard >= len(e.shards) {
		return fmt.Errorf("wal: wait on unknown shard %d", shard)
	}
	for _, rw := range e.shards[shard].reps {
		rw.mu.Lock()
		stop := watchCtx(ctx, rw.cond)
		for rw.applied < lsn && rw.active && !rw.closed && ctx.Err() == nil {
			rw.cond.Wait()
		}
		err := ctx.Err()
		rw.mu.Unlock()
		stop()
		if err != nil {
			return fmt.Errorf("wal: sync ack wait: %w", err)
		}
	}
	return nil
}

// Drain blocks until every live replica has applied everything committed
// so far (ctx-bounded), then flushes the logs.
func (e *Engine) Drain(ctx context.Context) error {
	for _, sw := range e.shards {
		sw.mu.Lock()
		target := sw.next - 1
		sw.mu.Unlock()
		if err := e.WaitApplied(ctx, sw.idx, target); err != nil {
			return err
		}
	}
	return e.SyncAll()
}

// SyncAll fsyncs every log (no-op per log when clean).
func (e *Engine) SyncAll() error {
	var first error
	for _, sw := range e.shards {
		for _, rw := range sw.reps {
			if err := rw.log.Sync(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close stops appliers and the fsync ticker, flushes, and closes the logs.
// Pending-but-unapplied records stay in the logs and replay on next Open.
func (e *Engine) Close() error {
	return e.shutdown(true)
}

// Abort is Close without the final flush — it models a hard crash for
// recovery tests: appliers stop where they are, descriptors close, and
// whatever the OS buffered is whatever survives.
func (e *Engine) Abort() {
	e.shutdown(false)
}

func (e *Engine) shutdown(flush bool) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopSync)
	for _, sw := range e.shards {
		for _, rw := range sw.reps {
			rw.mu.Lock()
			rw.closed = true
			rw.cond.Broadcast()
			rw.mu.Unlock()
		}
	}
	e.wg.Wait()
	var first error
	policy := e.opts.Fsync
	if !flush {
		policy = PolicyOff
	}
	for _, sw := range e.shards {
		for _, rw := range sw.reps {
			if err := rw.log.Close(policy); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (e *Engine) replica(shard, rep int) *replicaWAL {
	if shard < 0 || shard >= len(e.shards) {
		return nil
	}
	sw := e.shards[shard]
	if rep < 0 || rep >= len(sw.reps) {
		return nil
	}
	return sw.reps[rep]
}

// ReplicaStats is one replica's WAL position for /stats and /metrics.
type ReplicaStats struct {
	Replica        int    `json:"replica"`
	LastLSN        uint64 `json:"last_lsn"`
	AppliedLSN     uint64 `json:"applied_lsn"`
	PendingRecords int    `json:"pending_records"`
	PendingRows    int    `json:"pending_rows"`
	Active         bool   `json:"active"`
	CatchingUp     bool   `json:"catching_up,omitempty"`
	HintedRecords  int64  `json:"hinted_records,omitempty"`
	ReplayedRows   int64  `json:"replayed_rows,omitempty"`
	AppliedBatches int64  `json:"applied_batches"`
	Stalled        string `json:"stalled,omitempty"`
}

// ShardStats is one shard's WAL state.
type ShardStats struct {
	Shard    int            `json:"shard"`
	NextLSN  uint64         `json:"next_lsn"`
	Replicas []ReplicaStats `json:"replicas"`
}

// Stats snapshots the whole engine.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(e.shards))
	for _, sw := range e.shards {
		sw.mu.Lock()
		ss := ShardStats{Shard: sw.idx, NextLSN: sw.next}
		sw.mu.Unlock()
		for _, rw := range sw.reps {
			rw.mu.Lock()
			ss.Replicas = append(ss.Replicas, ReplicaStats{
				Replica:        rw.idx,
				LastLSN:        rw.log.LastLSN(),
				AppliedLSN:     rw.applied,
				PendingRecords: len(rw.pending),
				PendingRows:    rw.pendingRows,
				Active:         rw.active,
				CatchingUp:     rw.catchingUp,
				HintedRecords:  rw.hinted,
				ReplayedRows:   rw.replayedRows,
				AppliedBatches: rw.batches,
				Stalled:        rw.stalled,
			})
			rw.mu.Unlock()
		}
		out = append(out, ss)
	}
	return out
}
