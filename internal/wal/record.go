// Package wal implements durable streaming ingest: a per-shard-per-replica
// append-only write-ahead log plus a micro-batching applier engine.
//
// A load is acknowledged once its record — a monotonic LSN, the target
// table, and the encoded rows — is appended (and, policy permitting,
// fsynced) to the log of every live replica of each shard it touches.
// Background appliers drain the logs into the warehouses afterwards, so
// acks run at log-durability speed while index maintenance happens at
// apply time. Replicas that were down during a commit are repaired by
// log replay (hinted handoff): see Engine.CatchUp.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Record is one durable ingest unit: every row of one load that routed to
// one shard, stamped with that shard's next log sequence number. All
// replicas of a shard share a single LSN sequence, so any replica's log is
// a prefix-complete history the others can be repaired from.
type Record struct {
	LSN   uint64
	Table string
	Rows  []storage.Row
}

// rowCount is a small helper used by batching and stats paths.
func recordRows(recs []Record) int {
	n := 0
	for _, r := range recs {
		n += len(r.Rows)
	}
	return n
}

// On-disk framing: u32 payload length | u32 CRC-32 (IEEE) of payload |
// payload. The payload is:
//
//	u64   LSN (little-endian)
//	uvar  len(table) | table bytes
//	uvar  row count
//	rows  — each: uvar cell count, then cells
//	cell  — kind byte, then kind-specific encoding:
//	        int64/time: signed varint; float64: 8-byte LE bits;
//	        string: uvar length + bytes
//
// A torn tail (partial header, short payload, or CRC mismatch) marks the
// end of the recoverable log; OpenLog truncates it away.
const frameHeaderLen = 8

// maxPayloadLen guards recovery against a torn header that happens to
// decode as an absurd length: anything larger is treated as corruption.
const maxPayloadLen = 1 << 30

func appendValue(dst []byte, v storage.Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case storage.KindFloat64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		dst = append(dst, b[:]...)
	case storage.KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	default: // int64, time (unix seconds in I), and any future I-backed kind
		dst = binary.AppendVarint(dst, v.I)
	}
	return dst
}

func decodeValue(buf []byte) (storage.Value, int, error) {
	if len(buf) < 1 {
		return storage.Value{}, 0, fmt.Errorf("wal: truncated cell")
	}
	v := storage.Value{Kind: storage.Kind(buf[0])}
	off := 1
	switch v.Kind {
	case storage.KindFloat64:
		if len(buf) < off+8 {
			return storage.Value{}, 0, fmt.Errorf("wal: truncated float cell")
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	case storage.KindString:
		n, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < n {
			return storage.Value{}, 0, fmt.Errorf("wal: truncated string cell")
		}
		off += sz
		v.S = string(buf[off : off+int(n)])
		off += int(n)
	default:
		i, sz := binary.Varint(buf[off:])
		if sz <= 0 {
			return storage.Value{}, 0, fmt.Errorf("wal: truncated int cell")
		}
		v.I = i
		off += sz
	}
	return v, off, nil
}

// encodePayload renders rec's payload (without framing) into dst.
func encodePayload(dst []byte, rec Record) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], rec.LSN)
	dst = append(dst, b[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Table)))
	dst = append(dst, rec.Table...)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Rows)))
	for _, row := range rec.Rows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, v := range row {
			dst = appendValue(dst, v)
		}
	}
	return dst
}

// decodePayload parses one record payload produced by encodePayload.
func decodePayload(buf []byte) (Record, error) {
	var rec Record
	if len(buf) < 8 {
		return rec, fmt.Errorf("wal: payload too short for LSN")
	}
	rec.LSN = binary.LittleEndian.Uint64(buf)
	off := 8
	tl, sz := binary.Uvarint(buf[off:])
	if sz <= 0 || uint64(len(buf)-off-sz) < tl {
		return rec, fmt.Errorf("wal: truncated table name")
	}
	off += sz
	rec.Table = string(buf[off : off+int(tl)])
	off += int(tl)
	rows, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return rec, fmt.Errorf("wal: truncated row count")
	}
	off += sz
	// Every row costs at least one payload byte (its cell-count varint), so
	// a claimed count beyond the remaining bytes is corruption; rejecting it
	// here keeps the slice capacity below from being attacker-sized.
	if rows > uint64(len(buf)-off) {
		return rec, fmt.Errorf("wal: row count %d exceeds payload", rows)
	}
	rec.Rows = make([]storage.Row, 0, rows)
	for i := uint64(0); i < rows; i++ {
		cells, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return rec, fmt.Errorf("wal: truncated cell count (row %d)", i)
		}
		off += sz
		// Same bound as the row count: a cell is at least its kind byte.
		if cells > uint64(len(buf)-off) {
			return rec, fmt.Errorf("wal: cell count %d exceeds payload (row %d)", cells, i)
		}
		row := make(storage.Row, 0, cells)
		for c := uint64(0); c < cells; c++ {
			v, n, err := decodeValue(buf[off:])
			if err != nil {
				return rec, fmt.Errorf("wal: row %d: %w", i, err)
			}
			off += n
			row = append(row, v)
		}
		rec.Rows = append(rec.Rows, row)
	}
	if off != len(buf) {
		return rec, fmt.Errorf("wal: %d trailing bytes after record", len(buf)-off)
	}
	return rec, nil
}

// encodeFrame renders the full framed record (header + payload) into dst.
func encodeFrame(dst []byte, rec Record) []byte {
	headerAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = encodePayload(dst, rec)
	payload := dst[headerAt+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[headerAt:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[headerAt+4:], crc32.ChecksumIEEE(payload))
	return dst
}
