package wal

import (
	"bytes"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// FuzzWALRecordDecode throws arbitrary bytes at the two recovery decoders:
// decodePayload (one record body) and scanRecords (the framed log stream a
// crashed process leaves behind). Neither may panic — recovery runs on
// whatever a torn write left on disk — and any payload that decodes must
// survive a re-encode/re-decode round trip byte-identically, since the
// encoder is the canonical form replicas repair each other from.
func FuzzWALRecordDecode(f *testing.F) {
	sample := Record{
		LSN:   42,
		Table: "ts",
		Rows: []storage.Row{
			{storage.Str("m-001"), storage.TimeUnix(1394064000), storage.Float64(3.25)},
			{storage.Str("m-002"), storage.TimeUnix(1394064300), storage.Float64(-0.5)},
		},
	}
	f.Add(encodePayload(nil, sample))
	f.Add(encodeFrame(nil, sample))
	f.Add(encodePayload(nil, Record{LSN: 1, Table: "empty"}))
	// A frame whose header claims far more payload than follows (torn tail).
	torn := encodeFrame(nil, sample)
	f.Add(torn[:len(torn)-5])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := decodePayload(data); err == nil {
			p := encodePayload(nil, rec)
			rec2, err := decodePayload(p)
			if err != nil {
				t.Fatalf("re-decode of canonical encoding failed: %v", err)
			}
			if p2 := encodePayload(nil, rec2); !bytes.Equal(p, p2) {
				t.Fatalf("re-encode not canonical:\n first %x\nsecond %x", p, p2)
			}
		}
		// Framed-stream recovery over the same bytes: must never error or
		// panic, and every record it salvages must be re-encodable.
		recs, off, err := scanRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("scanRecords returned error on arbitrary bytes: %v", err)
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("scanRecords good-end %d outside input of %d bytes", off, len(data))
		}
		for _, rec := range recs {
			if _, err := decodePayload(encodePayload(nil, rec)); err != nil {
				t.Fatalf("salvaged record does not re-encode: %v", err)
			}
		}
	})
}
