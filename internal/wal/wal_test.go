package wal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testRows(base int, n int) []storage.Row {
	rows := make([]storage.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, storage.Row{
			storage.Int64(int64(base + i)),
			storage.Float64(float64(base+i) * 1.5),
			storage.Str(fmt.Sprintf("meter-%d", base+i)),
			storage.TimeUnix(int64(1_400_000_000 + base + i)),
		})
	}
	return rows
}

func TestWALRecordRoundTrip(t *testing.T) {
	rec := Record{LSN: 42, Table: "meter", Rows: testRows(7, 5)}
	frame := encodeFrame(nil, rec)
	recs, off, err := scanRecords(bytesReader(frame))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if off != int64(len(frame)) {
		t.Fatalf("offset %d, want %d", off, len(frame))
	}
	if len(recs) != 1 || !reflect.DeepEqual(recs[0], rec) {
		t.Fatalf("round trip mismatch: %+v", recs)
	}
}

func bytesReader(b []byte) *os.File {
	f, err := os.CreateTemp("", "walframe")
	if err != nil {
		panic(err)
	}
	os.Remove(f.Name())
	f.Write(b)
	f.Seek(0, 0)
	return f
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, recs, err := OpenLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for lsn := uint64(1); lsn <= 3; lsn++ {
		if err := l.Append(Record{LSN: lsn, Table: "meter", Rows: testRows(int(lsn)*10, 2)}, PolicyAlways); err != nil {
			t.Fatalf("append %d: %v", lsn, err)
		}
	}
	l.Close(PolicyOff)

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record at an arbitrary byte inside its payload, then
	// verify recovery keeps exactly the first two records — for every
	// possible cut point.
	recsAll, _, _ := scanRecords(bytesReader(full))
	if len(recsAll) != 3 {
		t.Fatalf("sanity: %d records", len(recsAll))
	}
	thirdStart := 0
	for i := 0; i < 2; i++ {
		n := int(uint32(full[thirdStart]) | uint32(full[thirdStart+1])<<8 | uint32(full[thirdStart+2])<<16 | uint32(full[thirdStart+3])<<24)
		thirdStart += frameHeaderLen + n
	}
	for cut := thirdStart + 1; cut < len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs2, err := OpenLog(path)
		if err != nil {
			t.Fatalf("reopen cut=%d: %v", cut, err)
		}
		if len(recs2) != 2 || recs2[1].LSN != 2 {
			t.Fatalf("cut=%d: recovered %d records", cut, len(recs2))
		}
		if fi, _ := os.Stat(path); fi.Size() != int64(thirdStart) {
			t.Fatalf("cut=%d: torn tail not truncated (size %d, want %d)", cut, fi.Size(), thirdStart)
		}
		// Appends after recovery must produce a readable log again.
		if err := l2.Append(Record{LSN: 3, Table: "meter", Rows: testRows(99, 1)}, PolicyAlways); err != nil {
			t.Fatalf("cut=%d: re-append: %v", cut, err)
		}
		l2.Close(PolicyOff)
		_, recs3, err := OpenLog(path)
		if err != nil || len(recs3) != 3 {
			t.Fatalf("cut=%d: after re-append got %d records, err %v", cut, len(recs3), err)
		}
	}
}

func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, _ := OpenLog(path)
	for lsn := uint64(1); lsn <= 3; lsn++ {
		l.Append(Record{LSN: lsn, Table: "meter", Rows: testRows(int(lsn), 1)}, PolicyOff)
	}
	l.Close(PolicyOff)
	data, _ := os.ReadFile(path)
	data[frameHeaderLen+3] ^= 0xff // flip a byte inside record 1's payload
	os.WriteFile(path, data, 0o644)
	_, recs, err := OpenLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("corrupt first record should stop replay, got %d records", len(recs))
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": PolicyInterval, "interval": PolicyInterval, "always": PolicyAlways, "off": PolicyOff} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// memStore is a Store that records applies and can fail on demand.
type memStore struct {
	mu     sync.Mutex
	rows   []storage.Row
	tables []string
	fail   bool
}

func (m *memStore) LoadRowsByName(table string, rows []storage.Row) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return fmt.Errorf("store down")
	}
	m.rows = append(m.rows, rows...)
	m.tables = append(m.tables, table)
	return nil
}

func (m *memStore) snapshot() []storage.Row {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]storage.Row(nil), m.rows...)
}

func (m *memStore) setFail(v bool) {
	m.mu.Lock()
	m.fail = v
	m.mu.Unlock()
}

func openTestEngine(t *testing.T, dir string, shards, reps int, opts Options) (*Engine, [][]*memStore) {
	t.Helper()
	stores := make([][]*memStore, shards)
	ifaces := make([][]Store, shards)
	for s := range stores {
		for r := 0; r < reps; r++ {
			ms := &memStore{}
			stores[s] = append(stores[s], ms)
			ifaces[s] = append(ifaces[s], ms)
		}
	}
	opts.Dir = dir
	e, err := Open(opts, ifaces)
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	return e, stores
}

func TestWALEngineAppliesInOrder(t *testing.T) {
	dir := t.TempDir()
	e, stores := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyOff})
	ctx := context.Background()
	var want []storage.Row
	for i := 0; i < 20; i++ {
		rows := testRows(i*100, 3)
		want = append(want, rows...)
		lsn, err := e.Commit(ctx, 0, "meter", rows)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d, want %d", lsn, i+1)
		}
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for ri, ms := range stores[0] {
		if got := ms.snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d applied %d rows out of order (want %d)", ri, len(got), len(want))
		}
	}
	st := e.Stats()
	if st[0].Replicas[0].AppliedLSN != 20 || st[0].Replicas[0].PendingRecords != 0 {
		t.Fatalf("stats: %+v", st[0].Replicas[0])
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestWALHintedHandoffAndCatchUp(t *testing.T) {
	dir := t.TempDir()
	e, stores := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyOff})
	ctx := context.Background()
	commit := func(base int) {
		t.Helper()
		if _, err := e.Commit(ctx, 0, "meter", testRows(base, 2)); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	commit(0)
	if err := e.WaitApplied(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	e.MarkDown(0, 1)
	commit(100)
	commit(200)
	st := e.Stats()
	if h := st[0].Replicas[1].HintedRecords; h != 2 {
		t.Fatalf("hinted = %d, want 2", h)
	}
	done := make(chan struct{})
	e.CatchUp(0, 1, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("catch-up never completed")
	}
	commit(300)
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	a, b := stores[0][0].snapshot(), stores[0][1].snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replicas diverged after catch-up: %d vs %d rows", len(a), len(b))
	}
	st = e.Stats()
	r1 := st[0].Replicas[1]
	if r1.CatchingUp || r1.ReplayedRows != 4 || r1.HintedRecords != 0 {
		t.Fatalf("post-catchup stats: %+v", r1)
	}
	e.Close()
}

func TestWALCommitFailsWithNoLiveReplica(t *testing.T) {
	dir := t.TempDir()
	e, _ := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyOff})
	e.MarkDown(0, 0)
	e.MarkDown(0, 1)
	if _, err := e.Commit(context.Background(), 0, "meter", testRows(0, 1)); err == nil {
		t.Fatal("commit with every replica down should fail")
	}
	e.Close()
}

func TestWALRecoveryReplaysLoggedRecords(t *testing.T) {
	dir := t.TempDir()
	e, _ := openTestEngine(t, dir, 2, 2, Options{Fsync: PolicyAlways})
	ctx := context.Background()
	var want0, want1 []storage.Row
	for i := 0; i < 10; i++ {
		r0, r1 := testRows(i*10, 2), testRows(1000+i*10, 3)
		want0, want1 = append(want0, r0...), append(want1, r1...)
		if _, err := e.Commit(ctx, 0, "meter", r0); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Commit(ctx, 1, "meter", r1); err != nil {
			t.Fatal(err)
		}
	}
	// Hard-stop mid-apply: appliers may or may not have drained anything.
	e.Abort()

	// Reopen over fresh (empty) stores, as after a process restart: every
	// logged record must replay, bit-identically, in order.
	e2, stores2 := openTestEngine(t, dir, 2, 2, Options{Fsync: PolicyOff})
	if err := e2.Drain(ctx); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	for si, want := range [][]storage.Row{want0, want1} {
		for ri, ms := range stores2[si] {
			if got := ms.snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("shard %d replica %d: replay mismatch (%d rows, want %d)", si, ri, len(got), len(want))
			}
		}
	}
	st := e2.Stats()
	if st[0].NextLSN != 11 {
		t.Fatalf("recovered next LSN %d, want 11", st[0].NextLSN)
	}
	if rr := st[0].Replicas[0].ReplayedRows; rr != int64(len(want0)) {
		t.Fatalf("replayed rows %d, want %d", rr, len(want0))
	}
	e2.Close()
}

func TestWALRecoveryRepairsShortLog(t *testing.T) {
	dir := t.TempDir()
	e, _ := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyAlways})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := e.Commit(ctx, 0, "meter", testRows(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	e.Abort()
	// Simulate a crash that tore replica 1's log one whole record short
	// (e.g. died between the two per-replica appends of a commit).
	path := filepath.Join(dir, "shard-000", "replica-1.wal")
	f, _ := os.Open(path)
	recs, _, _ := scanRecords(f)
	f.Close()
	if len(recs) != 5 {
		t.Fatalf("sanity: %d", len(recs))
	}
	frame := encodeFrame(nil, recs[4])
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-int64(len(frame)))

	e2, stores2 := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyOff})
	if err := e2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	a, b := stores2[0][0].snapshot(), stores2[0][1].snapshot()
	if len(a) != 10 || !reflect.DeepEqual(a, b) {
		t.Fatalf("log repair failed: %d vs %d rows", len(a), len(b))
	}
	// The repaired log must now be byte-readable with all 5 records.
	if last := e2.shards[0].reps[1].log.LastLSN(); last != 5 {
		t.Fatalf("repaired log tail LSN %d, want 5", last)
	}
	e2.Close()
}

func TestWALApplyErrorRetriesWithoutLoss(t *testing.T) {
	dir := t.TempDir()
	e, stores := openTestEngine(t, dir, 1, 1, Options{Fsync: PolicyOff})
	ctx := context.Background()
	stores[0][0].setFail(true)
	if _, err := e.Commit(ctx, 0, "meter", testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := e.Stats()[0].Replicas[0]
		if st.Stalled != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall never surfaced in stats")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stores[0][0].setFail(false)
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := stores[0][0].snapshot(); len(got) != 2 {
		t.Fatalf("rows lost across retry: %d", len(got))
	}
	if st := e.Stats()[0].Replicas[0]; st.Stalled != "" {
		t.Fatalf("stall not cleared: %+v", st)
	}
	e.Close()
}

func TestWALSyncAckWaitsForApply(t *testing.T) {
	dir := t.TempDir()
	e, stores := openTestEngine(t, dir, 1, 2, Options{Fsync: PolicyOff})
	ctx := context.Background()
	lsn, err := e.Commit(ctx, 0, "meter", testRows(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WaitApplied(ctx, 0, lsn); err != nil {
		t.Fatal(err)
	}
	for _, ms := range stores[0] {
		if len(ms.snapshot()) != 4 {
			t.Fatal("sync ack returned before apply")
		}
	}
	// A cancelled context must abort the wait, not hang.
	e.MarkDown(0, 1)
	stores[0][0].setFail(true)
	if _, err := e.Commit(ctx, 0, "meter", testRows(10, 1)); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := e.WaitApplied(cctx, 0, 2); err == nil {
		t.Fatal("wait should fail on context timeout")
	}
	stores[0][0].setFail(false)
	e.Close()
}

func TestWALBackpressureRespectsContext(t *testing.T) {
	dir := t.TempDir()
	e, stores := openTestEngine(t, dir, 1, 1, Options{Fsync: PolicyOff, MaxPendingRows: 4})
	ctx := context.Background()
	stores[0][0].setFail(true)
	for i := 0; i < 2; i++ {
		if _, err := e.Commit(ctx, 0, "meter", testRows(i*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := e.Commit(cctx, 0, "meter", testRows(100, 2)); err == nil {
		t.Fatal("commit should fail under backpressure with expired context")
	}
	stores[0][0].setFail(false)
	e.Close()
}
