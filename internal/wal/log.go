package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Policy selects when appends are flushed to stable storage.
type Policy uint8

const (
	// PolicyInterval fsyncs on a background ticker (Engine.Options.SyncEvery).
	// A crash can lose at most the last interval's acks. The default.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs every append before the load is acknowledged.
	PolicyAlways
	// PolicyOff never fsyncs; durability is whatever the OS page cache
	// survives. Useful for tests and throwaway fleets.
	PolicyOff
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyOff:
		return "off"
	default:
		return "interval"
	}
}

// ParsePolicy maps the user-facing -fsync / Config.FsyncPolicy strings.
// The empty string selects the default (interval).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "interval":
		return PolicyInterval, nil
	case "always":
		return PolicyAlways, nil
	case "off", "none":
		return PolicyOff, nil
	}
	return PolicyInterval, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Log is one replica's append-only record file. Appends are serialised by
// an internal mutex; reads of historical records (ScanFrom) open their own
// descriptor so they never disturb the append offset.
type Log struct {
	path string

	mu      sync.Mutex
	f       *os.File
	lastLSN uint64 // highest LSN ever appended (0 when empty)
	dirty   bool   // bytes written since the last fsync
	buf     []byte // reusable frame scratch
}

// OpenLog opens (creating if needed) the log at path, validates every
// record, truncates any torn tail, and returns the log positioned for
// appends plus every intact record in LSN order.
func OpenLog(path string) (*Log, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open log: %w", err)
	}
	recs, goodEnd, err := scanRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodEnd {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts a clean frame.
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek to log end: %w", err)
	}
	l := &Log{path: path, f: f}
	if n := len(recs); n > 0 {
		l.lastLSN = recs[n-1].LSN
	}
	return l, recs, nil
}

// scanRecords reads records from the start of f, stopping at the first
// frame that is short, oversized, or fails its checksum. It returns the
// intact records and the byte offset just past the last good frame.
func scanRecords(r io.Reader) ([]Record, int64, error) {
	var recs []Record
	var off int64
	header := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return recs, off, nil // clean EOF or torn header — stop here
		}
		n := binary.LittleEndian.Uint32(header)
		sum := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxPayloadLen {
			return recs, off, nil
		}
		var ok bool
		if payload, ok = readPayload(r, payload, n); !ok {
			return recs, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil // corrupt frame
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, nil // framing ok but body mangled — treat as torn
		}
		recs = append(recs, rec)
		off += frameHeaderLen + int64(n)
	}
}

// readPayload reads exactly n bytes into buf (reusing its capacity),
// growing in bounded chunks: a torn header that happens to decode as a
// near-maxPayloadLen length then costs only the bytes actually present in
// the file, not a gigabyte-sized up-front allocation.
func readPayload(r io.Reader, buf []byte, n uint32) ([]byte, bool) {
	const chunk = 1 << 20
	buf = buf[:0]
	for remaining := int64(n); remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return buf, false
		}
		remaining -= step
	}
	return buf, true
}

// Append writes rec at the log tail. With PolicyAlways the record is
// fsynced before Append returns; other policies only buffer in the OS.
func (l *Log) Append(rec Record, p Policy) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = encodeFrame(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append lsn %d: %w", rec.LSN, err)
	}
	l.lastLSN = rec.LSN
	if p == PolicyAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync lsn %d: %w", rec.LSN, err)
		}
		return nil
	}
	l.dirty = true
	return nil
}

// Sync flushes buffered appends to stable storage if any are pending.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	return nil
}

// LastLSN reports the highest LSN appended to (or recovered from) the log.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// ScanFrom re-reads the log from disk and returns every intact record with
// LSN > after. It opens a private descriptor, so concurrent appends to the
// same *Log are safe (callers serialise against commits at a higher level
// to get a stable upper bound).
func (l *Log) ScanFrom(after uint64) ([]Record, error) {
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen for replay: %w", err)
	}
	defer f.Close()
	recs, _, err := scanRecords(f)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(recs) && recs[i].LSN <= after {
		i++
	}
	return recs[i:], nil
}

// Close fsyncs pending bytes (unless the policy is off) and releases the
// descriptor.
func (l *Log) Close(p Policy) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty && p != PolicyOff {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Path reports the log's file path (for stats and error messages).
func (l *Log) Path() string { return l.path }
