// Package localdb is an embedded single-node database standing in for the
// PostgreSQL instances of the HadoopDB baseline (Section 5.1-5.2 of the
// paper: 28 worker nodes, 38 one-GB chunk databases per node, each with a
// multi-column index on userId, regionId and time).
//
// A Table stores rows in a heap plus one clustered multi-column index: rows
// are kept sorted by the index columns, and a range constraint on a prefix
// of the index columns narrows the scan with binary search. The package also
// models the write path of Figure 3: sequential heap appends versus
// indexed inserts that pay per-row index maintenance.
package localdb

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Table is one chunk database: a heap of rows with an optional clustered
// multi-column index.
type Table struct {
	Schema    *storage.Schema
	IndexCols []string

	indexIdx []int // schema positions of the index columns
	rows     []storage.Row
	sorted   bool
	byteSize int64
}

// New creates an empty table. indexCols may be empty for a heap-only table.
func New(schema *storage.Schema, indexCols []string) (*Table, error) {
	t := &Table{Schema: schema, IndexCols: indexCols}
	for _, c := range indexCols {
		i := schema.ColIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("localdb: index column %q not in schema", c)
		}
		t.indexIdx = append(t.indexIdx, i)
	}
	return t, nil
}

// Rows returns the number of stored rows.
func (t *Table) Rows() int { return len(t.rows) }

// SizeBytes returns the approximate heap size (text-encoded row bytes).
func (t *Table) SizeBytes() int64 { return t.byteSize }

// Insert appends one row (Figure 3's write path). The index is maintained
// lazily: the sorted property is invalidated and restored on the next scan,
// while the caller's cost model charges per-row index maintenance.
func (t *Table) Insert(row storage.Row) {
	t.rows = append(t.rows, row)
	t.byteSize += int64(len(storage.EncodeTextRow(row))) + 1
	t.sorted = false
}

// BulkLoad appends many rows and sorts once, like a COPY followed by
// CREATE INDEX (how the paper loads HadoopDB chunks).
func (t *Table) BulkLoad(rows []storage.Row) {
	t.rows = append(t.rows, rows...)
	for _, r := range rows {
		t.byteSize += int64(len(storage.EncodeTextRow(r))) + 1
	}
	t.ensureSorted()
}

func (t *Table) ensureSorted() {
	if t.sorted || len(t.indexIdx) == 0 {
		t.sorted = true
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		return t.less(t.rows[i], t.rows[j])
	})
	t.sorted = true
}

func (t *Table) less(a, b storage.Row) bool {
	for _, ci := range t.indexIdx {
		c := storage.Compare(a[ci], b[ci])
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// ScanStats reports the work one scan performed, for the cost model.
type ScanStats struct {
	// RowsExamined is how many heap rows the executor touched.
	RowsExamined int64
	// BytesExamined approximates the pages pulled from disk.
	BytesExamined int64
	// RowsReturned matched the full predicate.
	RowsReturned int64
	// UsedIndex is true when the leading index column narrowed the scan.
	UsedIndex bool
}

// RangeScan returns the rows matching all range constraints. Constraints on
// a prefix of the index columns narrow the scan via binary search (a B-tree
// range descent); remaining constraints filter row by row.
func (t *Table) RangeScan(ranges map[string]gridfile.Range) ([]storage.Row, ScanStats) {
	t.ensureSorted()
	var st ScanStats

	lo, hi := 0, len(t.rows)
	// Narrow with the leading index column if it is constrained.
	if len(t.indexIdx) > 0 {
		if r, ok := lookupRange(ranges, t.IndexCols[0]); ok && (!r.LoUnbounded || !r.HiUnbounded) {
			ci := t.indexIdx[0]
			if !r.LoUnbounded {
				lo = sort.Search(len(t.rows), func(i int) bool {
					c := storage.Compare(t.rows[i][ci], r.Lo)
					if r.LoOpen {
						return c > 0
					}
					return c >= 0
				})
			}
			if !r.HiUnbounded {
				hi = sort.Search(len(t.rows), func(i int) bool {
					c := storage.Compare(t.rows[i][ci], r.Hi)
					if r.HiOpen {
						return c >= 0
					}
					return c > 0
				})
			}
			if hi < lo {
				hi = lo
			}
			st.UsedIndex = true
		}
	}

	var out []storage.Row
	for _, row := range t.rows[lo:hi] {
		st.RowsExamined++
		st.BytesExamined += rowWidth(row)
		if matches(t.Schema, row, ranges) {
			out = append(out, row)
			st.RowsReturned++
		}
	}
	return out, st
}

func rowWidth(row storage.Row) int64 {
	var n int64
	for _, v := range row {
		switch v.Kind {
		case storage.KindString:
			n += int64(len(v.S))
		default:
			n += 8
		}
	}
	return n
}

func matches(schema *storage.Schema, row storage.Row, ranges map[string]gridfile.Range) bool {
	for name, r := range ranges {
		ci := schema.ColIndex(name)
		if ci < 0 {
			return false
		}
		if !r.Contains(row[ci]) {
			return false
		}
	}
	return true
}

func lookupRange(ranges map[string]gridfile.Range, name string) (gridfile.Range, bool) {
	if r, ok := ranges[name]; ok {
		return r, true
	}
	for k, r := range ranges {
		if strings.EqualFold(k, name) {
			return r, true
		}
	}
	return gridfile.Range{}, false
}

// WriteModel prices the Figure 3 write paths.
type WriteModel struct {
	// SeqMBps is the sequential append bandwidth of the DBMS without
	// indexes (WAL plus heap).
	SeqMBps float64
	// IndexInsertUs is the extra per-row cost of maintaining B-tree indexes
	// (page splits, random I/O).
	IndexInsertUs float64
}

// DefaultWriteModel matches the relation of the paper's Figure 3: DBMS-X
// without index sustains a few MB/s, with index markedly less, while HDFS
// appends run at device speed.
func DefaultWriteModel() WriteModel {
	return WriteModel{SeqMBps: 8, IndexInsertUs: 60}
}

// InsertSeconds prices loading `bytes` of rows (`rows` of them) with or
// without index maintenance.
func (m WriteModel) InsertSeconds(rows, bytes int64, withIndex bool) float64 {
	sec := float64(bytes) / (m.SeqMBps * (1 << 20))
	if withIndex {
		sec += float64(rows) * m.IndexInsertUs / 1e6
	}
	return sec
}
