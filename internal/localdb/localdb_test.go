package localdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func schema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "userId", Kind: storage.KindInt64},
		storage.Column{Name: "regionId", Kind: storage.KindInt64},
		storage.Column{Name: "power", Kind: storage.KindFloat64},
	)
}

func rows(n int, seed int64) []storage.Row {
	rng := rand.New(rand.NewSource(seed))
	out := make([]storage.Row, n)
	for i := range out {
		out[i] = storage.Row{
			storage.Int64(int64(rng.Intn(100))),
			storage.Int64(int64(rng.Intn(10))),
			storage.Float64(rng.Float64()),
		}
	}
	return out
}

func TestNewRejectsUnknownIndexColumn(t *testing.T) {
	if _, err := New(schema(), []string{"ghost"}); err == nil {
		t.Error("unknown index column accepted")
	}
}

func TestRangeScanUsesIndex(t *testing.T) {
	tb, err := New(schema(), []string{"userId", "regionId"})
	if err != nil {
		t.Fatal(err)
	}
	data := rows(500, 3)
	tb.BulkLoad(data)
	ranges := map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(10), Hi: storage.Int64(20)},
	}
	got, st := tb.RangeScan(ranges)
	if !st.UsedIndex {
		t.Error("leading-column constraint did not use the index")
	}
	want := 0
	for _, r := range data {
		if r[0].I >= 10 && r[0].I <= 20 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("returned %d rows, want %d", len(got), want)
	}
	if st.RowsExamined < st.RowsReturned {
		t.Errorf("examined %d < returned %d", st.RowsExamined, st.RowsReturned)
	}
	// Index scan must not examine the whole table.
	if st.RowsExamined >= int64(len(data)) {
		t.Errorf("index scan examined all %d rows", st.RowsExamined)
	}
}

func TestRangeScanNonLeadingColumnFullScan(t *testing.T) {
	tb, _ := New(schema(), []string{"userId"})
	data := rows(200, 5)
	tb.BulkLoad(data)
	ranges := map[string]gridfile.Range{
		"regionId": {Lo: storage.Int64(3), Hi: storage.Int64(4)},
	}
	got, st := tb.RangeScan(ranges)
	if st.UsedIndex {
		t.Error("non-leading constraint claimed index use")
	}
	if st.RowsExamined != int64(len(data)) {
		t.Errorf("full scan examined %d, want %d", st.RowsExamined, len(data))
	}
	want := 0
	for _, r := range data {
		if r[1].I >= 3 && r[1].I <= 4 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("returned %d, want %d", len(got), want)
	}
}

func TestInsertThenScan(t *testing.T) {
	tb, _ := New(schema(), []string{"userId"})
	for _, r := range rows(100, 7) {
		tb.Insert(r)
	}
	if tb.Rows() != 100 || tb.SizeBytes() <= 0 {
		t.Errorf("Rows=%d Size=%d", tb.Rows(), tb.SizeBytes())
	}
	// Insert invalidates sortedness; the scan must restore and stay correct.
	got, _ := tb.RangeScan(map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(0), Hi: storage.Int64(200)},
	})
	if len(got) != 100 {
		t.Errorf("scan after inserts returned %d rows", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][0].I < got[i-1][0].I {
			t.Fatal("rows not sorted by index column")
		}
	}
}

func TestOpenBounds(t *testing.T) {
	tb, _ := New(schema(), []string{"userId"})
	tb.BulkLoad([]storage.Row{
		{storage.Int64(5), storage.Int64(1), storage.Float64(1)},
		{storage.Int64(6), storage.Int64(1), storage.Float64(1)},
		{storage.Int64(7), storage.Int64(1), storage.Float64(1)},
	})
	got, _ := tb.RangeScan(map[string]gridfile.Range{
		"userId": {Lo: storage.Int64(5), Hi: storage.Int64(7), LoOpen: true, HiOpen: true},
	})
	if len(got) != 1 || got[0][0].I != 6 {
		t.Errorf("open bounds returned %v", got)
	}
}

func TestWriteModel(t *testing.T) {
	m := DefaultWriteModel()
	noIdx := m.InsertSeconds(1000, 1<<20, false)
	withIdx := m.InsertSeconds(1000, 1<<20, true)
	if withIdx <= noIdx {
		t.Errorf("indexed insert (%v) must cost more than plain (%v)", withIdx, noIdx)
	}
}

// Property: RangeScan over random data matches the brute-force filter.
func TestRangeScanEquivalenceProperty(t *testing.T) {
	f := func(seed int64, loRaw, width uint8) bool {
		data := rows(150, seed)
		tb, _ := New(schema(), []string{"userId", "regionId"})
		tb.BulkLoad(data)
		lo := int64(loRaw % 100)
		hi := lo + int64(width%30)
		ranges := map[string]gridfile.Range{
			"userId":   {Lo: storage.Int64(lo), Hi: storage.Int64(hi)},
			"regionId": {Lo: storage.Int64(2), Hi: storage.Int64(7)},
		}
		got, _ := tb.RangeScan(ranges)
		want := 0
		for _, r := range data {
			if r[0].I >= lo && r[0].I <= hi && r[1].I >= 2 && r[1].I <= 7 {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
