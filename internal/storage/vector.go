package storage

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// This file is the vectorised half of the RCFile model: instead of
// materialising one Row per record, a reader decodes a whole row group into
// typed column vectors (one slice per projected column) and predicate
// kernels run over those slices before any row exists. The batch and its
// vectors are reused across groups, so the steady-state decode loop
// allocates once per column payload (the bytes→string copy cells slice
// into), never per cell.

// ColumnVector holds one column of a decoded row group in its natural
// representation: int64 for bigint and timestamp columns, float64 for
// double, string for string. Only the slice matching Kind is populated.
//
// Encoded columns keep their encoded shape instead of expanding to one
// value per row where that wins work: a dictionary column (Enc == EncDict)
// fills Dict and Codes and leaves Strs empty — predicate kernels compare
// codes against one binary search of the dictionary instead of per-row
// strings. A run-length column (Enc == EncRLE) expands into the typed slice
// (one parse per run) and additionally records the run boundaries in
// RunEnds so kernels can accept or reject whole runs.
type ColumnVector struct {
	Kind Kind
	// Valid is false for columns the projection skipped; their slices are
	// empty and callers must substitute the kind's zero value.
	Valid  bool
	Ints   []int64
	Floats []float64
	Strs   []string
	// Enc is the column's storage encoding for this group.
	Enc byte
	// Dict and Codes carry a dictionary column: Dict is sorted ascending,
	// Codes holds one dictionary ordinal per row.
	Dict  []string
	Codes []uint32
	// RunEnds holds the exclusive end row of each run of a run-length
	// column (empty otherwise).
	RunEnds []int32
}

// Value materialises cell row of the vector (zero value when !Valid).
func (v *ColumnVector) Value(row int) Value {
	if !v.Valid {
		return ZeroValue(v.Kind)
	}
	switch v.Kind {
	case KindFloat64:
		return Float64(v.Floats[row])
	case KindString:
		if v.Enc == EncDict {
			return Str(v.Dict[v.Codes[row]])
		}
		return Str(v.Strs[row])
	case KindTime:
		return TimeUnix(v.Ints[row])
	default:
		return Int64(v.Ints[row])
	}
}

// ColumnBatch is one row group decoded column-wise. Readers reuse the same
// batch (and its vectors' backing arrays) for every group they deliver, so a
// consumer must finish with a batch before asking for the next one.
type ColumnBatch struct {
	// Rows is the number of rows in the group.
	Rows int
	// Cols holds one vector per schema column, aligned by position.
	Cols []ColumnVector

	sel []int // selection-vector scratch, reused per group
	row Row   // row-materialisation scratch, reused per group
}

// NewColumnBatch sizes a batch for the schema (vectors fill lazily).
func NewColumnBatch(schema *Schema) *ColumnBatch {
	b := &ColumnBatch{Cols: make([]ColumnVector, schema.Len())}
	for i := range b.Cols {
		b.Cols[i].Kind = schema.Col(i).Kind
	}
	return b
}

// Sel returns the batch's selection-vector scratch reset to length zero.
func (b *ColumnBatch) Sel() []int {
	if cap(b.sel) < b.Rows {
		b.sel = make([]int, 0, b.Rows)
	}
	return b.sel[:0]
}

// MaterialiseRow fills the batch's scratch row with the cells of row ri
// (zero values in unprojected columns) and returns it. The same backing
// slice is returned every call; callers that retain rows must copy.
func (b *ColumnBatch) MaterialiseRow(ri int) Row {
	if len(b.row) != len(b.Cols) {
		b.row = make(Row, len(b.Cols))
	}
	for c := range b.Cols {
		b.row[c] = b.Cols[c].Value(ri)
	}
	return b.row
}

// parseIntStr parses a decimal int64 from field without allocating; ok is
// false for anything that is not a plain optionally-signed integer.
func parseIntStr(field string) (int64, bool) {
	if len(field) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if field[0] == '-' || field[0] == '+' {
		neg = field[0] == '-'
		i++
		if i == len(field) {
			return 0, false
		}
	}
	var n int64
	for ; i < len(field); i++ {
		d := field[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		n = n*10 + int64(d-'0')
		if n < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

// forEachField walks the '\n'-joined cells of one column payload. The
// payload is handed in as a string — converted from the raw bytes once per
// column — so the field substrings passed to fn share its backing and cost
// nothing, and a string cell can keep its field without copying.
func forEachField(payload string, rows int, fn func(r int, field string) error) error {
	start := 0
	for r := 0; r < rows; r++ {
		field := payload[start:]
		if r+1 < rows {
			k := strings.IndexByte(field, '\n')
			if k < 0 {
				return fmt.Errorf("storage: column payload has %d rows, expected %d", r+1, rows)
			}
			field = field[:k]
			start += k + 1
		}
		if err := fn(r, field); err != nil {
			return err
		}
	}
	return nil
}

// decodeColumn fills vector v from the column's raw payload body under its
// encoding tag, reusing the vector's backing arrays. The payload is copied
// into one string per column; every cell (or dictionary entry, or run
// value) then parses from a substring of it, so the per-cell loop does not
// allocate for any column kind.
func decodeColumn(v *ColumnVector, enc byte, payload []byte, rows int) error {
	v.Valid = true
	v.Enc = enc
	v.Dict, v.Codes, v.RunEnds = v.Dict[:0], v.Codes[:0], v.RunEnds[:0]
	text := string(payload)
	switch enc {
	case EncDict:
		if v.Kind != KindString {
			return fmt.Errorf("storage: dictionary encoding on non-string column")
		}
		var pos int
		var err error
		v.Dict, pos, err = dictHeader(text, v.Dict)
		if err != nil {
			return err
		}
		if cap(v.Codes) < rows {
			v.Codes = make([]uint32, rows)
		}
		v.Codes = v.Codes[:rows]
		for r := 0; r < rows; r++ {
			code, w := uvarintStr(text, pos)
			if w <= 0 || code >= uint64(len(v.Dict)) {
				return fmt.Errorf("storage: corrupt dictionary column")
			}
			v.Codes[r] = uint32(code)
			pos += w
		}
		v.Strs = v.Strs[:0]
		return nil
	case EncRLE:
		return v.decodeRLE(text, rows)
	}
	switch v.Kind {
	case KindFloat64:
		if cap(v.Floats) < rows {
			v.Floats = make([]float64, rows)
		}
		v.Floats = v.Floats[:rows]
		return forEachField(text, rows, func(r int, field string) error {
			f, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return fmt.Errorf("storage: parse double %q: %w", field, err)
			}
			v.Floats[r] = f
			return nil
		})
	case KindString:
		if cap(v.Strs) < rows {
			v.Strs = make([]string, rows)
		}
		v.Strs = v.Strs[:rows]
		return forEachField(text, rows, func(r int, field string) error {
			v.Strs[r] = field
			return nil
		})
	case KindTime:
		if cap(v.Ints) < rows {
			v.Ints = make([]int64, rows)
		}
		v.Ints = v.Ints[:rows]
		return forEachField(text, rows, func(r int, field string) error {
			if n, ok := parseIntStr(field); ok {
				v.Ints[r] = n
				return nil
			}
			if n, ok := parseTimeStr(field); ok {
				v.Ints[r] = n
				return nil
			}
			pv, err := ParseTime(field)
			if err != nil {
				return err
			}
			v.Ints[r] = pv.I
			return nil
		})
	default: // KindInt64
		if cap(v.Ints) < rows {
			v.Ints = make([]int64, rows)
		}
		v.Ints = v.Ints[:rows]
		return forEachField(text, rows, func(r int, field string) error {
			n, ok := parseIntStr(field)
			if !ok {
				return fmt.Errorf("storage: parse bigint %q", field)
			}
			v.Ints[r] = n
			return nil
		})
	}
}

// decodeRLE expands a run-length body into the vector's typed slice — one
// parse per run, not per row — and records run boundaries in RunEnds.
func (v *ColumnVector) decodeRLE(text string, rows int) error {
	switch v.Kind {
	case KindFloat64:
		if cap(v.Floats) < rows {
			v.Floats = make([]float64, rows)
		}
		v.Floats = v.Floats[:rows]
	case KindString:
		if cap(v.Strs) < rows {
			v.Strs = make([]string, rows)
		}
		v.Strs = v.Strs[:rows]
	default:
		if cap(v.Ints) < rows {
			v.Ints = make([]int64, rows)
		}
		v.Ints = v.Ints[:rows]
	}
	pos, r := 0, 0
	for r < rows {
		count, w := uvarintStr(text, pos)
		if w <= 0 {
			return fmt.Errorf("storage: corrupt run-length column")
		}
		pos += w
		l, w := uvarintStr(text, pos)
		if w <= 0 || pos+w+int(l) > len(text) {
			return fmt.Errorf("storage: corrupt run-length column")
		}
		pos += w
		val := text[pos : pos+int(l)]
		pos += int(l)
		end := r + int(count)
		if end > rows {
			end = rows
		}
		switch v.Kind {
		case KindFloat64:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("storage: parse double %q: %w", val, err)
			}
			for ; r < end; r++ {
				v.Floats[r] = f
			}
		case KindString:
			for ; r < end; r++ {
				v.Strs[r] = val
			}
		case KindTime:
			n, ok := parseIntStr(val)
			if !ok {
				if n, ok = parseTimeStr(val); !ok {
					pv, err := ParseTime(val)
					if err != nil {
						return err
					}
					n = pv.I
				}
			}
			for ; r < end; r++ {
				v.Ints[r] = n
			}
		default:
			n, ok := parseIntStr(val)
			if !ok {
				return fmt.Errorf("storage: parse bigint %q", val)
			}
			for ; r < end; r++ {
				v.Ints[r] = n
			}
		}
		v.RunEnds = append(v.RunEnds, int32(end))
	}
	return nil
}

// ReadGroupColumns decodes the row group starting at offset into batch,
// fetching and decoding only the columns whose project flag is set (nil
// decodes all). The batch's vectors are reused across calls. The returned
// byte count is the same logical read volume ReadGroupProjected reports.
func ReadGroupColumns(r *dfs.FileReader, offset int64, schema *Schema, project []bool, batch *ColumnBatch) (int64, error) {
	g, read, err := ReadGroupProjected(r, offset, project)
	if err != nil {
		return 0, err
	}
	if len(g.columns) != len(batch.Cols) {
		return 0, fmt.Errorf("storage: group at %d has %d columns, schema wants %d", offset, len(g.columns), len(batch.Cols))
	}
	batch.Rows = g.Rows
	for c := range batch.Cols {
		v := &batch.Cols[c]
		v.Kind = schema.Col(c).Kind
		if g.columns[c] == nil {
			v.Valid = false
			v.Enc = EncPlain
			v.Ints, v.Floats, v.Strs = v.Ints[:0], v.Floats[:0], v.Strs[:0]
			v.Dict, v.Codes, v.RunEnds = v.Dict[:0], v.Codes[:0], v.RunEnds[:0]
			continue
		}
		if err := decodeColumn(v, g.Enc(c), g.columns[c], g.Rows); err != nil {
			return 0, fmt.Errorf("storage: group at %d column %d: %w", offset, c, err)
		}
	}
	return read, nil
}
