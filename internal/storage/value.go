// Package storage defines the record model and the two Hive file formats the
// paper evaluates: TextFile (delimited lines; the base-table format of
// DGFIndex) and RCFile (a row-group columnar format; the base-table format of
// the Compact Index baselines).
package storage

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the column types used by the paper's schemas.
type Kind uint8

// Supported column kinds.
const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
	KindTime // calendar timestamps, second precision, stored as Unix seconds
)

// String returns the HiveQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "bigint"
	case KindFloat64:
		return "double"
	case KindString:
		return "string"
	case KindTime:
		return "timestamp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a HiveQL type name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "bigint", "int", "long":
		return KindInt64, nil
	case "double", "float":
		return KindFloat64, nil
	case "string", "varchar":
		return KindString, nil
	case "timestamp", "date":
		return KindTime, nil
	default:
		return 0, fmt.Errorf("storage: unknown type %q", s)
	}
}

// Value is a dynamically typed cell. It is a small value type; Rows copy
// cheaply and never alias.
type Value struct {
	Kind Kind
	I    int64 // KindInt64 and KindTime (Unix seconds)
	F    float64
	S    string
}

// Convenience constructors.
func Int64(v int64) Value      { return Value{Kind: KindInt64, I: v} }
func Float64(v float64) Value  { return Value{Kind: KindFloat64, F: v} }
func Str(v string) Value       { return Value{Kind: KindString, S: v} }
func Time(t time.Time) Value   { return Value{Kind: KindTime, I: t.Unix()} }
func TimeUnix(sec int64) Value { return Value{Kind: KindTime, I: sec} }

// ZeroValue returns the kind's zero value (the placeholder a projected read
// leaves in the cells it skipped).
func ZeroValue(kind Kind) Value {
	switch kind {
	case KindFloat64:
		return Float64(0)
	case KindString:
		return Str("")
	case KindTime:
		return TimeUnix(0)
	default:
		return Int64(0)
	}
}

// AsFloat converts numeric values to float64 (aggregation input).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt64, KindTime:
		return float64(v.I)
	case KindFloat64:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// AsInt converts the value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt64, KindTime:
		return v.I
	case KindFloat64:
		return int64(v.F)
	default:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
}

// dateLayout is how KindTime values render in text files ("2012-12-30" style
// values in the paper render with a time part when non-midnight).
const (
	dateLayout     = "2006-01-02"
	dateTimeLayout = "2006-01-02 15:04:05"
)

// String renders the value the way the text format stores it.
func (v Value) String() string {
	switch v.Kind {
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindTime:
		t := time.Unix(v.I, 0).UTC()
		if t.Hour() == 0 && t.Minute() == 0 && t.Second() == 0 {
			return t.Format(dateLayout)
		}
		return t.Format(dateTimeLayout)
	default:
		return v.S
	}
}

// AppendText appends the textual rendering of v to dst, avoiding
// allocations on hot paths.
func (v Value) AppendText(dst []byte) []byte {
	switch v.Kind {
	case KindInt64:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat64:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindTime:
		t := time.Unix(v.I, 0).UTC()
		if t.Hour() == 0 && t.Minute() == 0 && t.Second() == 0 {
			return t.AppendFormat(dst, dateLayout)
		}
		return t.AppendFormat(dst, dateTimeLayout)
	default:
		return append(dst, v.S...)
	}
}

// ParseValue parses the textual rendering of a value of the given kind.
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("storage: parse bigint %q: %w", s, err)
		}
		return Int64(i), nil
	case KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("storage: parse double %q: %w", s, err)
		}
		return Float64(f), nil
	case KindTime:
		return ParseTime(s)
	default:
		return Str(s), nil
	}
}

// ParseTime accepts "2006-01-02", "2006-01-02 15:04:05" or raw Unix seconds.
func ParseTime(s string) (Value, error) {
	if t, err := time.ParseInLocation(dateLayout, s, time.UTC); err == nil {
		return Time(t), nil
	}
	if t, err := time.ParseInLocation(dateTimeLayout, s, time.UTC); err == nil {
		return Time(t), nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return TimeUnix(sec), nil
	}
	return Value{}, fmt.Errorf("storage: parse timestamp %q", s)
}

// parseTimeStr parses the two layouts the writer emits ("2006-01-02" and
// "2006-01-02 15:04:05") without going through time.Parse, whose failed
// layout attempts allocate an error per call — that error was the dominant
// per-cell allocation when decoding timestamp columns. ok is false for
// anything the fast path cannot prove equivalent (wrong shape, invalid
// calendar date); callers fall back to ParseTime, which keeps its exact
// semantics for arbitrary input.
func parseTimeStr(s string) (int64, bool) {
	if len(s) != len(dateLayout) && len(s) != len(dateTimeLayout) {
		return 0, false
	}
	digits := func(from, to int) (int, bool) {
		n := 0
		for i := from; i < to; i++ {
			d := s[i]
			if d < '0' || d > '9' {
				return 0, false
			}
			n = n*10 + int(d-'0')
		}
		return n, true
	}
	if s[4] != '-' || s[7] != '-' {
		return 0, false
	}
	year, okY := digits(0, 4)
	month, okM := digits(5, 7)
	day, okD := digits(8, 10)
	if !okY || !okM || !okD || month < 1 || month > 12 {
		return 0, false
	}
	var hour, min, sec int
	if len(s) == len(dateTimeLayout) {
		if s[10] != ' ' || s[13] != ':' || s[16] != ':' {
			return 0, false
		}
		var okH, okMin, okS bool
		hour, okH = digits(11, 13)
		min, okMin = digits(14, 16)
		sec, okS = digits(17, 19)
		if !okH || !okMin || !okS || hour > 23 || min > 59 || sec > 59 {
			return 0, false
		}
	}
	t := time.Date(year, time.Month(month), day, hour, min, sec, 0, time.UTC)
	if t.Day() != day {
		// time.Date normalises impossible dates (Feb 30 → Mar 2) where
		// time.Parse rejects them; defer those to the strict parser.
		return 0, false
	}
	return t.Unix(), true
}

// Compare orders two values of the same kind: -1, 0 or +1. Comparing values
// of different kinds compares their float renderings, which is how Hive's
// lenient comparisons behave for the numeric predicates in the paper.
func Compare(a, b Value) int {
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S)
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Row is one record: a slice of cells aligned with a Schema.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Column describes one field of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Cols  []Column
	index map[string]int
}

// NewSchema builds a schema and its name index. Column names are
// case-insensitive, like HiveQL identifiers.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, index: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.index[strings.ToLower(c.Name)] = i
	}
	return s
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.index[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Col returns the column at position i.
func (s *Schema) Col(i int) Column { return s.Cols[i] }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Project returns a new schema containing only the named columns, in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("storage: unknown column %q", n)
		}
		cols = append(cols, s.Cols[i])
	}
	return NewSchema(cols...), nil
}

// String renders the schema like a DDL column list.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	return b.String()
}
