package storage

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// TextDelim is the field delimiter of the TextFile format. The paper's tables
// use Hive's default ^A; a comma renders the same and stays debuggable.
const TextDelim = ','

// EncodeTextRow renders a row as one delimited line without the trailing
// newline.
func EncodeTextRow(row Row) string {
	var buf []byte
	for i, v := range row {
		if i > 0 {
			buf = append(buf, TextDelim)
		}
		buf = v.AppendText(buf)
	}
	return string(buf)
}

// AppendTextRow appends the delimited rendering of row plus '\n' to dst.
func AppendTextRow(dst []byte, row Row) []byte {
	for i, v := range row {
		if i > 0 {
			dst = append(dst, TextDelim)
		}
		dst = v.AppendText(dst)
	}
	return append(dst, '\n')
}

// DecodeTextRow parses one delimited line according to the schema.
func DecodeTextRow(schema *Schema, line string) (Row, error) {
	row := make(Row, schema.Len())
	rest := line
	for i := 0; i < schema.Len(); i++ {
		var field string
		if i == schema.Len()-1 {
			field = rest
		} else {
			j := strings.IndexByte(rest, TextDelim)
			if j < 0 {
				return nil, fmt.Errorf("storage: line has %d fields, schema wants %d: %q", i+1, schema.Len(), line)
			}
			field, rest = rest[:j], rest[j+1:]
		}
		v, err := ParseValue(schema.Col(i).Kind, field)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// TextField extracts the i-th delimited field of a line without decoding the
// whole row. Index construction map tasks use this on the hot path.
func TextField(line string, i int) (string, bool) {
	start := 0
	for ; i > 0; i-- {
		j := strings.IndexByte(line[start:], TextDelim)
		if j < 0 {
			return "", false
		}
		start += j + 1
	}
	if j := strings.IndexByte(line[start:], TextDelim); j >= 0 {
		return line[start : start+j], true
	}
	return line[start:], true
}

// TextFieldBytes is TextField over a byte slice.
func TextFieldBytes(line []byte, i int) ([]byte, bool) {
	start := 0
	for ; i > 0; i-- {
		j := bytes.IndexByte(line[start:], TextDelim)
		if j < 0 {
			return nil, false
		}
		start += j + 1
	}
	if j := bytes.IndexByte(line[start:], TextDelim); j >= 0 {
		return line[start : start+j], true
	}
	return line[start:], true
}

// TextWriter buffers delimited lines into a dfs file.
type TextWriter struct {
	w   *dfs.FileWriter
	buf []byte
	off int64
}

// NewTextWriter wraps a dfs writer. The caller owns Close.
func NewTextWriter(w *dfs.FileWriter) *TextWriter {
	return &TextWriter{w: w, buf: make([]byte, 0, 1<<16), off: w.Size()}
}

// Offset returns the byte offset at which the next row will start. For the
// TextFile format this is the BLOCK_OFFSET_INSIDE_FILE that Hive's indexes
// record per row.
func (t *TextWriter) Offset() int64 { return t.off }

// WriteRow appends one encoded row.
func (t *TextWriter) WriteRow(row Row) error {
	before := len(t.buf)
	t.buf = AppendTextRow(t.buf, row)
	t.off += int64(len(t.buf) - before)
	if len(t.buf) >= 1<<16 {
		return t.flush()
	}
	return nil
}

// WriteLine appends a raw line (no delimiter re-encoding), adding '\n'.
func (t *TextWriter) WriteLine(line []byte) error {
	t.buf = append(t.buf, line...)
	t.buf = append(t.buf, '\n')
	t.off += int64(len(line) + 1)
	if len(t.buf) >= 1<<16 {
		return t.flush()
	}
	return nil
}

func (t *TextWriter) flush() error {
	if len(t.buf) == 0 {
		return nil
	}
	_, err := t.w.Write(t.buf)
	t.buf = t.buf[:0]
	return err
}

// Close flushes buffered rows and closes the underlying file.
func (t *TextWriter) Close() error {
	if err := t.flush(); err != nil {
		return err
	}
	return t.w.Close()
}

// LineReader iterates the lines of one byte range of a text file, following
// Hadoop's TextInputFormat split semantics: a reader starting at offset 0
// owns the first line; a reader starting mid-file skips the (possibly
// partial) line in progress and starts at the next line; a line starting at
// exactly the range end still belongs to this reader (Hadoop reads while
// pos <= end), so every reader may read past its range end to finish the
// lines it owns.
type LineReader struct {
	r         *dfs.FileReader
	pos       int64 // next byte to fetch from the file
	end       int64 // split end; lines starting at or after this belong to the next split
	lineStart int64 // offset of the line most recently returned
	buf       []byte
	bufStart  int64 // file offset of buf[0]
	scan      int   // scan position within buf
	done      bool
	exact     bool // exact-bounds mode: end is exclusive (slice reading)
	bytesRead int64
}

// readChunk is the fetch granularity of LineReader within its range;
// tailChunk is the granularity used past the range end when finishing the
// final owned line (Hadoop-mode readers only).
const (
	readChunk = 64 << 10
	tailChunk = 512
)

// NewLineReader reads the lines of split [start, end) of file r.
func NewLineReader(r *dfs.FileReader, start, end int64) *LineReader {
	return NewLineReaderOpts(r, start, end, start > 0, true)
}

func (lr *LineReader) fill() bool {
	if lr.pos >= lr.r.Size() {
		return false
	}
	// Clamp the fetch to the reader's range so that byte accounting (and
	// the work the model filesystem performs) reflects what the reader
	// actually owns: a reader over a 200-byte Slice must not pull 64 KB.
	want := int64(readChunk)
	if lr.pos < lr.end {
		if rem := lr.end - lr.pos; rem < want {
			want = rem
		}
	} else {
		if lr.exact {
			// Exact-bound readers never read past their end; Slices always
			// terminate on a line boundary.
			return false
		}
		// Hadoop-mode readers finish the line in progress in small steps.
		want = tailChunk
	}
	if want <= 0 {
		return false
	}
	chunk := make([]byte, want)
	n, err := lr.r.ReadAt(chunk, lr.pos)
	if n == 0 && err != nil {
		return false
	}
	if lr.scan == len(lr.buf) && lr.scan > 0 {
		lr.bufStart += int64(lr.scan)
		lr.buf = lr.buf[:0]
		lr.scan = 0
	}
	lr.buf = append(lr.buf, chunk[:n]...)
	lr.pos += int64(n)
	lr.bytesRead += int64(n)
	return true
}

func (lr *LineReader) skipPartialLine() {
	for {
		if i := bytes.IndexByte(lr.buf[lr.scan:], '\n'); i >= 0 {
			lr.scan += i + 1
			return
		}
		lr.scan = len(lr.buf)
		if !lr.fill() {
			lr.done = true
			return
		}
	}
}

// Next returns the next line (without '\n'), its starting byte offset in the
// file, and whether a line was available. The returned slice is only valid
// until the next call.
func (lr *LineReader) Next() (line []byte, offset int64, ok bool) {
	if lr.done {
		return nil, 0, false
	}
	start := lr.bufStart + int64(lr.scan)
	if start > lr.end || (lr.exact && start >= lr.end) {
		lr.done = true
		return nil, 0, false
	}
	for {
		if i := bytes.IndexByte(lr.buf[lr.scan:], '\n'); i >= 0 {
			line = lr.buf[lr.scan : lr.scan+i]
			lr.lineStart = start
			lr.scan += i + 1
			return line, start, true
		}
		if !lr.fill() {
			// Final line without trailing newline.
			if lr.scan < len(lr.buf) {
				line = lr.buf[lr.scan:]
				lr.lineStart = start
				lr.scan = len(lr.buf)
				lr.done = true
				return line, start, true
			}
			lr.done = true
			return nil, 0, false
		}
	}
}

// BytesRead returns the raw bytes fetched from the file so far.
func (lr *LineReader) BytesRead() int64 { return lr.bytesRead }

// NewSliceLineReader reads the lines of [start, end) where start is known to
// fall exactly on a line boundary and end is exclusive. DGFIndex Slices are
// written as whole lines, so the slice-skipping record reader uses these
// exact bounds instead of Hadoop's skip-first/read-past-end split rules.
func NewSliceLineReader(r *dfs.FileReader, start, end int64) *LineReader {
	return NewLineReaderOpts(r, start, end, false, false)
}

// NewLineReaderOpts gives full control over the boundary rules: skipFirst
// discards everything up to and including the first newline at or after
// start (use when start may fall mid-line); inclusiveEnd additionally owns a
// line starting exactly at end (Hadoop's pos <= end rule; use when the range
// end is an arbitrary cut paired with a following skipFirst reader).
func NewLineReaderOpts(r *dfs.FileReader, start, end int64, skipFirst, inclusiveEnd bool) *LineReader {
	lr := &LineReader{r: r, pos: start, end: end, bufStart: start, exact: !inclusiveEnd}
	if end <= start {
		// Degenerate empty range: owns nothing.
		lr.done = true
		return lr
	}
	if skipFirst {
		lr.skipPartialLine()
	}
	return lr
}

// ReadAllLines is a convenience for tests: all lines of an entire file.
func ReadAllLines(r *dfs.FileReader) ([]string, error) {
	lr := NewLineReader(r, 0, r.Size())
	var out []string
	for {
		line, _, ok := lr.Next()
		if !ok {
			break
		}
		out = append(out, string(line))
	}
	return out, nil
}

// WriteTextRows writes rows to a new text file at path.
func WriteTextRows(fs *dfs.FS, path string, rows []Row) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	tw := NewTextWriter(w)
	for _, r := range rows {
		if err := tw.WriteRow(r); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ReadTextRows decodes every row of the text file at path.
func ReadTextRows(fs *dfs.FS, path string, schema *Schema) ([]Row, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	lines, err := ReadAllLines(r)
	if err != nil && err != io.EOF {
		return nil, err
	}
	rows := make([]Row, 0, len(lines))
	for _, l := range lines {
		row, err := DecodeTextRow(schema, l)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
