package storage

import "github.com/smartgrid-oss/dgfindex/internal/dfs"

// Cached variants of the side-file readers. Planners consult row-group
// indexes, column statistics and bitmap sidecars on every query; the files
// themselves change only when a segment is written or appended, so their
// parsed forms live in the filesystem's CachedParse cache and decode once.
// The returned slices and sidecars are shared across callers and must not
// be mutated.

// ReadGroupIndexCached is ReadGroupIndex through the parse cache.
func ReadGroupIndexCached(fs *dfs.FS, dataPath string) ([]int64, error) {
	v, err := fs.CachedParse(GroupIndexPath(dataPath), func() (any, error) {
		return ReadGroupIndex(fs, dataPath)
	})
	if err != nil {
		return nil, err
	}
	return v.([]int64), nil
}

// ReadColStatsCached is ReadColStats through the parse cache.
func ReadColStatsCached(fs *dfs.FS, dataPath string) ([]GroupStat, error) {
	v, err := fs.CachedParse(ColStatsPath(dataPath), func() (any, error) {
		return ReadColStats(fs, dataPath)
	})
	if err != nil {
		return nil, err
	}
	return v.([]GroupStat), nil
}

// ReadBitmapSidecarCached is ReadBitmapSidecar through the parse cache; a
// missing sidecar caches as absent (nil, false, nil) like the uncached read.
func ReadBitmapSidecarCached(fs *dfs.FS, dataPath string) (*BitmapSidecar, bool, error) {
	v, err := fs.CachedParse(BitmapPath(dataPath), func() (any, error) {
		sc, ok, err := ReadBitmapSidecar(fs, dataPath)
		if err != nil {
			return nil, err
		}
		if !ok {
			return (*BitmapSidecar)(nil), nil
		}
		return sc, nil
	})
	if err != nil {
		return nil, false, err
	}
	sc := v.(*BitmapSidecar)
	return sc, sc != nil, nil
}
