package storage

import (
	"fmt"
	"strings"
)

// Format selects the on-disk layout of a table's data files. It is the
// canonical format enum of the whole stack: the warehouse catalog, the index
// builders and the segment abstraction all share it, so the index I/O path
// stays storage-format-agnostic.
type Format uint8

// Supported table formats.
const (
	// TextFile stores delimited lines; every line is addressable by its
	// byte offset (Hive's default format, the paper's base-table format).
	TextFile Format = iota
	// RCFile stores row groups with column-major payloads; the addressable
	// unit is the row group (offset) plus the row's position within it.
	RCFile
)

// String names the format like the paper's tables do.
func (f Format) String() string {
	if f == RCFile {
		return "RCFile"
	}
	return "TextFile"
}

// ParseFormat reads a format name ("textfile" or "rcfile", case-insensitive).
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "textfile", "text":
		return TextFile, nil
	case "rcfile", "rc":
		return RCFile, nil
	default:
		return 0, fmt.Errorf("storage: unknown format %q (accepted values: textfile, rcfile)", s)
	}
}
