package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// The RCFile model: data is stored as a sequence of row groups; within one
// row group values are stored column-major so that scans touching few
// columns read few bytes. Hive's Compact Index on an RCFile table records
// the *row-group start offset* as BLOCK_OFFSET_INSIDE_FILE, and the Bitmap
// Index additionally records each row's position within its group. Both
// behaviours are reproduced here.
//
// On-disk layout of one row group:
//
//	magic byte 'R'
//	uvarint rowCount
//	uvarint colCount
//	colCount times: uvarint payloadLen, payload
//
// where payload is the column's values rendered as text and joined by '\n'.

// DefaultRowGroupRows is the number of rows buffered into one row group.
// Hive's default RCFile row group is 4 MB; at benchmark scale a row-count
// bound keeps group sizes proportional.
const DefaultRowGroupRows = 1024

const rcMagic = 'R'

// maxGroupRows guards readers against a corrupt header whose row count
// would size the decode arena: no writer configuration produces groups
// anywhere near this large (the default is DefaultRowGroupRows).
const maxGroupRows = 1 << 20

// RCWriter writes rows to a dfs file in the RCFile model format.
type RCWriter struct {
	w            *dfs.FileWriter
	schema       *Schema
	groupRows    int
	groupBytes   int64    // flush when pending payload bytes reach this (0 = rows only)
	cols         [][]byte // pending column payloads
	pending      int      // rows buffered
	pendingBytes int64    // plain payload bytes buffered
	off          int64    // file offset of the next group to be flushed
	groupOffsets []int64
	groupStats   []GroupStat
	mins, maxs   []Value // running per-column min/max of the pending group
	statsInit    bool
	bm           *bitmapBuilder // optional per-group value bitmaps
	noEncode     bool
	cellScratch  []rawCell
}

// NewRCWriter creates a writer; groupRows <= 0 selects DefaultRowGroupRows.
func NewRCWriter(w *dfs.FileWriter, schema *Schema, groupRows int) *RCWriter {
	if groupRows <= 0 {
		groupRows = DefaultRowGroupRows
	}
	return &RCWriter{
		w:         w,
		schema:    schema,
		groupRows: groupRows,
		cols:      make([][]byte, schema.Len()),
		mins:      make([]Value, schema.Len()),
		maxs:      make([]Value, schema.Len()),
		off:       w.Size(),
	}
}

// SetGroupBytes switches the writer to adaptive row-group sizing: a group
// flushes once its buffered plain payload reaches budget bytes (measured
// column widths, not a fixed row count), with groupRows still capping the
// row count. Readers need no signal — the exact group boundaries are
// persisted in the "_groups" side file as always. budget <= 0 keeps the
// row-count-only behaviour.
func (w *RCWriter) SetGroupBytes(budget int64) { w.groupBytes = budget }

// DisableEncoding forces every flushed group into the legacy plain-text 'R'
// layout (benchmark baselines and compatibility tests).
func (w *RCWriter) DisableEncoding() { w.noEncode = true }

// TrackBitmaps turns on per-group value-bitmap accumulation for the given
// column indices; the collected BitmapSidecar is available after Close.
func (w *RCWriter) TrackBitmaps(cols []int) {
	if len(cols) > 0 {
		w.bm = newBitmapBuilder(cols)
	}
}

// BitmapSidecar returns the accumulated per-group value bitmaps, or ok=false
// when TrackBitmaps was never called or every tracked column overflowed the
// cardinality cap.
func (w *RCWriter) BitmapSidecar() (*BitmapSidecar, bool) {
	if w.bm == nil {
		return nil, false
	}
	return w.bm.sidecar()
}

// BitmapOverflows returns the tracked column indices whose distinct-value
// count exceeded BitmapCardinalityCap: their sidecars were dropped and
// equality/membership probes on them fall back to zone maps only.
func (w *RCWriter) BitmapOverflows() []int {
	if w.bm == nil {
		return nil
	}
	return w.bm.dropped
}

// Offset returns the file offset of the row group that the *next* written
// row will belong to. This is the offset Hive's indexes record for a row.
func (w *RCWriter) Offset() int64 { return w.off }

// RowInGroup returns the position the next written row will occupy within
// its row group (used by the Bitmap Index).
func (w *RCWriter) RowInGroup() int { return w.pending }

// WriteRow buffers one row, flushing a full row group if needed.
func (w *RCWriter) WriteRow(row Row) error {
	if len(row) != w.schema.Len() {
		return fmt.Errorf("storage: row has %d fields, schema wants %d", len(row), w.schema.Len())
	}
	for i, v := range row {
		before := len(w.cols[i])
		if w.pending > 0 {
			w.cols[i] = append(w.cols[i], '\n')
		}
		w.cols[i] = v.AppendText(w.cols[i])
		w.pendingBytes += int64(len(w.cols[i]) - before)
	}
	if !w.statsInit {
		copy(w.mins, row)
		copy(w.maxs, row)
		w.statsInit = true
	} else {
		for i, v := range row {
			if Compare(v, w.mins[i]) < 0 {
				w.mins[i] = v
			}
			if Compare(v, w.maxs[i]) > 0 {
				w.maxs[i] = v
			}
		}
	}
	if w.bm != nil {
		w.bm.observe(row)
	}
	w.pending++
	if w.pending >= w.groupRows || (w.groupBytes > 0 && w.pendingBytes >= w.groupBytes) {
		return w.flushGroup()
	}
	return nil
}

func (w *RCWriter) flushGroup() error {
	if w.pending == 0 {
		return nil
	}
	// Pick the cheapest per-column representation. The group stays in the
	// legacy 'R' layout (no tags) when every column is plain, so data the
	// encodings cannot compress round-trips bit-identically with files
	// written before encodings existed.
	tags := make([]byte, len(w.cols))
	bodies := make([][]byte, len(w.cols))
	encoded := false
	for i := range w.cols {
		tags[i], bodies[i] = EncPlain, w.cols[i]
		if !w.noEncode {
			w.cellScratch = splitRawCells(w.cols[i], w.pending, w.cellScratch)
			tags[i], bodies[i] = encodeColumnBody(w.schema.Col(i).Kind, w.cols[i], w.pending, w.cellScratch)
			if tags[i] != EncPlain {
				encoded = true
			}
		}
	}
	var buf bytes.Buffer
	if encoded {
		buf.WriteByte(rcEncodedMagic)
	} else {
		buf.WriteByte(rcMagic)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(w.pending))
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(len(w.cols)))
	buf.Write(tmp[:n])
	stat := GroupStat{
		Rows:    w.pending,
		ColLens: make([]int64, len(w.cols)),
		Mins:    make([]string, len(w.cols)),
		Maxs:    make([]string, len(w.cols)),
	}
	if encoded {
		stat.Encs = tags
	}
	for i := range w.cols {
		plen := len(bodies[i])
		if encoded {
			plen++ // the encoding tag byte is part of the payload
		}
		n = binary.PutUvarint(tmp[:], uint64(plen))
		buf.Write(tmp[:n])
		if encoded {
			buf.WriteByte(tags[i])
		}
		buf.Write(bodies[i])
		stat.ColLens[i] = int64(plen)
		stat.Mins[i] = w.mins[i].String()
		stat.Maxs[i] = w.maxs[i].String()
		w.cols[i] = w.cols[i][:0]
	}
	w.groupOffsets = append(w.groupOffsets, w.off)
	w.groupStats = append(w.groupStats, stat)
	if w.bm != nil {
		w.bm.cut()
	}
	if _, err := w.w.Write(buf.Bytes()); err != nil {
		return err
	}
	w.off += int64(buf.Len())
	w.pending = 0
	w.pendingBytes = 0
	w.statsInit = false
	return nil
}

// Flush ends the current row group so that the next written row starts a new
// one; a writer with no buffered rows is left untouched. Index builders call
// this at slice boundaries so that every slice covers whole row groups.
func (w *RCWriter) Flush() error { return w.flushGroup() }

// GroupOffsets returns the start offsets of the groups flushed so far.
func (w *RCWriter) GroupOffsets() []int64 { return w.groupOffsets }

// GroupStats returns the per-group row counts and column payload sizes of
// the groups flushed so far.
func (w *RCWriter) GroupStats() []GroupStat { return w.groupStats }

// Close flushes the final partial group and closes the file.
func (w *RCWriter) Close() error {
	if err := w.flushGroup(); err != nil {
		return err
	}
	return w.w.Close()
}

// RowGroup is one decoded row group.
type RowGroup struct {
	Offset  int64
	Size    int64 // encoded size in bytes
	Rows    int
	columns [][]byte // raw column payload bodies; values split lazily
	encs    []byte   // per-column encoding tags; nil for legacy 'R' groups
}

// Enc returns column i's encoding tag (EncPlain for legacy 'R' groups).
func (g *RowGroup) Enc(i int) byte {
	if g.encs == nil {
		return EncPlain
	}
	return g.encs[i]
}

// Column returns the text values of column i, one per row. Column panics for
// a column skipped by a projected read; use DecodeRowsProjected instead.
func (g *RowGroup) Column(i int) []string {
	if g.Rows == 0 {
		return nil
	}
	if g.columns[i] == nil {
		panic(fmt.Sprintf("storage: column %d was not read (projected row group)", i))
	}
	out := make([]string, 0, g.Rows)
	err := forEachCell(g.Enc(i), g.columns[i], g.Rows, func(r int, field string) error {
		out = append(out, field)
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// DecodeRows materialises all rows of the group using the schema.
func (g *RowGroup) DecodeRows(schema *Schema) ([]Row, error) {
	return g.DecodeRowsProjected(schema, nil)
}

// DecodeRowsProjected materialises the group's rows, decoding only the
// columns whose project flag is set (nil keeps every column). Cells of
// unprojected columns carry the column kind's zero value — callers that push
// a projection down promise never to read them.
//
// All cells live in one flat arena sliced into rows, and each column payload
// is copied into a single string the cells slice into, so decoding a group
// costs a fixed handful of allocations — rows, arena, one string per decoded
// column — independent of the row count.
func (g *RowGroup) DecodeRowsProjected(schema *Schema, project []bool) ([]Row, error) {
	width := schema.Len()
	if len(g.columns) < width {
		return nil, fmt.Errorf("storage: row group has %d columns, schema wants %d", len(g.columns), width)
	}
	rows := make([]Row, g.Rows)
	if g.Rows == 0 {
		return rows, nil
	}
	arena := make([]Value, g.Rows*width)
	for r := range rows {
		rows[r] = Row(arena[r*width : (r+1)*width : (r+1)*width])
	}
	for c := 0; c < width; c++ {
		kind := schema.Col(c).Kind
		if project != nil && (c >= len(project) || !project[c]) {
			zv := ZeroValue(kind)
			for r := range rows {
				rows[r][c] = zv
			}
			continue
		}
		if g.columns[c] == nil {
			panic(fmt.Sprintf("storage: column %d was not read (projected row group)", c))
		}
		err := forEachCell(g.Enc(c), g.columns[c], g.Rows, func(r int, field string) error {
			switch kind {
			case KindInt64:
				if n, ok := parseIntStr(field); ok {
					rows[r][c] = Int64(n)
					return nil
				}
				return fmt.Errorf("storage: parse bigint %q", field)
			case KindTime:
				if n, ok := parseIntStr(field); ok {
					rows[r][c] = TimeUnix(n)
					return nil
				}
				if n, ok := parseTimeStr(field); ok {
					rows[r][c] = TimeUnix(n)
					return nil
				}
				v, err := ParseTime(field)
				if err != nil {
					return err
				}
				rows[r][c] = v
				return nil
			default:
				v, err := ParseValue(kind, field)
				if err != nil {
					return err
				}
				rows[r][c] = v
				return nil
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RCReader iterates the row groups of a byte range of an RCFile. Any group
// that *starts* within [start, end) belongs to this reader, mirroring the
// TextFile line-ownership rule at row-group granularity.
type RCReader struct {
	r         *dfs.FileReader
	pos       int64
	end       int64
	bytesRead int64
}

// NewRCReader reads the groups starting in [start, end). A start offset that
// does not fall exactly on a group boundary is advanced to the next group by
// the caller supplying aligned split boundaries; RCFile groups never span
// splits in this model because writers flush at group granularity and split
// filtering works on recorded group offsets.
func NewRCReader(r *dfs.FileReader, start, end int64) *RCReader {
	return &RCReader{r: r, pos: start, end: end}
}

// Next decodes the next row group. ok is false at range end.
func (rc *RCReader) Next() (g *RowGroup, ok bool, err error) {
	if rc.pos >= rc.end || rc.pos >= rc.r.Size() {
		return nil, false, nil
	}
	g, read, err := ReadGroupProjected(rc.r, rc.pos, nil)
	if err != nil {
		return nil, false, err
	}
	rc.bytesRead += read
	rc.pos += g.Size
	return g, true, nil
}

// BytesRead returns the bytes consumed so far.
func (rc *RCReader) BytesRead() int64 { return rc.bytesRead }

// ReadGroupAt decodes the single row group starting at offset.
func ReadGroupAt(r *dfs.FileReader, offset int64) (*RowGroup, error) {
	g, _, err := ReadGroupProjected(r, offset, nil)
	return g, err
}

// ReadGroupProjected decodes the row group starting at offset, fetching only
// the payloads of the columns whose project flag is set (nil fetches all).
// The second return value is the logical byte volume the read consumed: the
// group header and every column's length varint are always paid, skipped
// payloads are not. With a nil projection it equals the group's encoded size.
func ReadGroupProjected(r *dfs.FileReader, offset int64, project []bool) (*RowGroup, int64, error) {
	// Read the header conservatively, then the column payloads exactly.
	hdr := make([]byte, 64)
	n, err := r.ReadAt(hdr, offset)
	if n == 0 {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, fmt.Errorf("storage: rcfile header at %d: %w", offset, err)
	}
	hdr = hdr[:n]
	if hdr[0] != rcMagic && hdr[0] != rcEncodedMagic {
		return nil, 0, fmt.Errorf("storage: bad rcfile magic %q at offset %d", hdr[0], offset)
	}
	encoded := hdr[0] == rcEncodedMagic
	p := 1
	rowCount, w := binary.Uvarint(hdr[p:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("storage: bad rcfile rowCount at %d", offset)
	}
	p += w
	colCount, w := binary.Uvarint(hdr[p:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("storage: bad rcfile colCount at %d", offset)
	}
	p += w
	// Sanity-bound the claimed shape before allocating by it: every column
	// costs at least its one-byte length varint, so more columns than bytes
	// left in the file is corruption, and a row count past maxGroupRows is a
	// header no writer produces.
	if rowCount > maxGroupRows {
		return nil, 0, fmt.Errorf("storage: rcfile rowCount %d at %d exceeds the %d-row group bound", rowCount, offset, maxGroupRows)
	}
	if remaining := r.Size() - offset - int64(p); remaining < 0 || colCount > uint64(remaining) {
		return nil, 0, fmt.Errorf("storage: rcfile colCount %d at %d exceeds file size", colCount, offset)
	}

	g := &RowGroup{Offset: offset, Rows: int(rowCount), columns: make([][]byte, colCount)}
	if encoded {
		g.encs = make([]byte, colCount)
	}
	pos := offset + int64(p)
	read := int64(p)
	for c := 0; c < int(colCount); c++ {
		var lenBuf [binary.MaxVarintLen64]byte
		n, err := r.ReadAt(lenBuf[:], pos)
		if n == 0 {
			return nil, 0, fmt.Errorf("storage: rcfile column %d header: %w", c, err)
		}
		plen, w := binary.Uvarint(lenBuf[:n])
		if w <= 0 {
			return nil, 0, fmt.Errorf("storage: bad rcfile column %d length", c)
		}
		pos += int64(w)
		read += int64(w)
		// A payload cannot extend past the file; reject the claimed length
		// before it sizes an allocation (or, via int conversion, wraps).
		if remaining := r.Size() - pos; remaining < 0 || plen > uint64(remaining) {
			return nil, 0, fmt.Errorf("storage: rcfile column %d payload length %d exceeds file size", c, plen)
		}
		if project != nil && (c >= len(project) || !project[c]) {
			// Column-projection pushdown: skip the payload entirely; the
			// nil marker tells DecodeRowsProjected the column is absent.
			pos += int64(plen)
			continue
		}
		payload := make([]byte, plen)
		if plen > 0 {
			if _, err := r.ReadAt(payload, pos); err != nil && err != io.EOF {
				return nil, 0, err
			}
		}
		if encoded {
			// Encoded payloads open with their one-byte encoding tag.
			if plen == 0 {
				return nil, 0, fmt.Errorf("storage: encoded rcfile column %d has empty payload", c)
			}
			g.encs[c] = payload[0]
			payload = payload[1:]
		}
		g.columns[c] = payload
		pos += int64(plen)
		read += int64(plen)
	}
	g.Size = pos - offset
	return g, read, nil
}

// Real RCFile interleaves sync markers so readers can find row-group
// boundaries from an arbitrary split offset. The model keeps the equivalent
// information in a side file: the sorted list of group start offsets, stored
// under "<dir>/_groups/<base>". The underscore directory is skipped by
// dfs.DirSplits (it only lists regular files directly under the table
// directory), exactly like Hadoop ignores "_logs"-style side directories.

// sideFilePath places a side file for dataPath under a sibling underscore
// directory: "<dir>/<sideDir>/<base>".
func sideFilePath(dataPath, sideDir string) string {
	i := strings.LastIndexByte(dataPath, '/')
	if i < 0 {
		return sideDir + "/" + dataPath
	}
	return dataPath[:i] + "/" + sideDir + dataPath[i:]
}

// GroupIndexPath returns the side-file path holding the group offsets of the
// RCFile at dataPath.
func GroupIndexPath(dataPath string) string { return sideFilePath(dataPath, "_groups") }

// WriteGroupIndex persists the group offsets of the RCFile at dataPath.
func WriteGroupIndex(fs *dfs.FS, dataPath string, offsets []int64) error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, off := range offsets {
		n := binary.PutUvarint(tmp[:], uint64(off))
		buf.Write(tmp[:n])
	}
	return fs.WriteFile(GroupIndexPath(dataPath), buf.Bytes())
}

// ReadGroupIndex loads the group offsets of the RCFile at dataPath.
func ReadGroupIndex(fs *dfs.FS, dataPath string) ([]int64, error) {
	data, err := fs.ReadFile(GroupIndexPath(dataPath))
	if err != nil {
		return nil, err
	}
	var out []int64
	for len(data) > 0 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt group index for %s", dataPath)
		}
		out = append(out, int64(v))
		data = data[n:]
	}
	return out, nil
}

// GroupStat records the shape of one flushed row group: its row count, the
// payload size of every column, and the group's per-column zone map (min and
// max value, stored as their text renderings). Together with the group's
// offset it makes the cost of a projected read exactly computable without
// touching the data file, and lets planners skip groups whose zone is
// disjoint from a predicate's range. Mins/Maxs are nil for stats written
// before zone maps existed; such groups are never skipped.
type GroupStat struct {
	Rows    int
	ColLens []int64
	Mins    []string
	Maxs    []string
	// Encs holds the group's per-column encoding tags (EncPlain/EncDict/
	// EncRLE); nil for plain 'R' groups and stats written before encodings
	// existed (colstats v1/v2).
	Encs []byte
}

// HasZone reports whether the group carries a zone map.
func (g GroupStat) HasZone() bool { return len(g.Mins) == len(g.ColLens) && len(g.Mins) > 0 }

// Enc returns column c's encoding tag (EncPlain when the group is plain).
func (g GroupStat) Enc(c int) byte {
	if g.Encs == nil {
		return EncPlain
	}
	return g.Encs[c]
}

func uvarintLen(v uint64) int64 {
	var tmp [binary.MaxVarintLen64]byte
	return int64(binary.PutUvarint(tmp[:], v))
}

// EncodedSize returns the on-disk byte size of the group.
func (g GroupStat) EncodedSize() int64 {
	n := 1 + uvarintLen(uint64(g.Rows)) + uvarintLen(uint64(len(g.ColLens)))
	for _, l := range g.ColLens {
		n += uvarintLen(uint64(l)) + l
	}
	return n
}

// ProjectedSize returns the logical bytes a reader fetching only the flagged
// columns consumes: the header and every length varint plus the kept
// payloads. A nil projection keeps everything (== EncodedSize).
func (g GroupStat) ProjectedSize(project []bool) int64 {
	n := 1 + uvarintLen(uint64(g.Rows)) + uvarintLen(uint64(len(g.ColLens)))
	for c, l := range g.ColLens {
		n += uvarintLen(uint64(l))
		if project == nil || (c < len(project) && project[c]) {
			n += l
		}
	}
	return n
}

// ColStatsPath returns the side-file path holding the per-group column
// statistics of the RCFile at dataPath (sibling of the "_groups" index).
func ColStatsPath(dataPath string) string { return sideFilePath(dataPath, "_colstats") }

// colStatsV2Magic opens the versioned colstats encoding. It is unambiguous
// against the legacy stream, whose first varint is a group's row count and
// therefore never zero.
const colStatsV2Magic = 0x00

// WriteColStats persists the per-group statistics of the RCFile at dataPath.
// The v3 encoding carries zone maps (added in v2) plus per-group column
// encoding tags; ReadColStats still understands v2 and the legacy
// (lengths-only) v1 stream for files written before either existed.
func WriteColStats(fs *dfs.FS, dataPath string, stats []GroupStat) error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putStr := func(s string) {
		put(uint64(len(s)))
		buf.WriteString(s)
	}
	buf.WriteByte(colStatsV2Magic)
	buf.WriteByte(3) // version
	for _, g := range stats {
		put(uint64(g.Rows))
		put(uint64(len(g.ColLens)))
		for _, l := range g.ColLens {
			put(uint64(l))
		}
		if g.HasZone() {
			buf.WriteByte(1)
			for c := range g.ColLens {
				putStr(g.Mins[c])
				putStr(g.Maxs[c])
			}
		} else {
			buf.WriteByte(0)
		}
		if len(g.Encs) == len(g.ColLens) && len(g.Encs) > 0 {
			buf.WriteByte(1)
			buf.Write(g.Encs)
		} else {
			buf.WriteByte(0)
		}
	}
	return fs.WriteFile(ColStatsPath(dataPath), buf.Bytes())
}

// ReadColStats loads the per-group statistics of the RCFile at dataPath, in
// group order (aligned with ReadGroupIndex). Stats from legacy files carry
// no zone maps (Mins/Maxs nil).
func ReadColStats(fs *dfs.FS, dataPath string) ([]GroupStat, error) {
	data, err := fs.ReadFile(ColStatsPath(dataPath))
	if err != nil {
		return nil, err
	}
	version := byte(1)
	if len(data) > 0 && data[0] == colStatsV2Magic {
		if len(data) < 2 || data[1] < 2 || data[1] > 3 {
			return nil, fmt.Errorf("storage: unknown column stats version for %s", dataPath)
		}
		version = data[1]
		data = data[2:]
	}
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("storage: corrupt column stats for %s", dataPath)
		}
		data = data[n:]
		return v, nil
	}
	nextStr := func() (string, error) {
		l, err := next()
		if err != nil {
			return "", err
		}
		if uint64(len(data)) < l {
			return "", fmt.Errorf("storage: corrupt column stats for %s", dataPath)
		}
		s := string(data[:l])
		data = data[l:]
		return s, nil
	}
	var out []GroupStat
	for len(data) > 0 {
		rows, err := next()
		if err != nil {
			return nil, err
		}
		cols, err := next()
		if err != nil {
			return nil, err
		}
		g := GroupStat{Rows: int(rows), ColLens: make([]int64, cols)}
		for c := range g.ColLens {
			l, err := next()
			if err != nil {
				return nil, err
			}
			g.ColLens[c] = int64(l)
		}
		if version >= 2 {
			if len(data) == 0 {
				return nil, fmt.Errorf("storage: corrupt column stats for %s", dataPath)
			}
			hasZone := data[0] == 1
			data = data[1:]
			if hasZone {
				g.Mins = make([]string, cols)
				g.Maxs = make([]string, cols)
				for c := range g.ColLens {
					if g.Mins[c], err = nextStr(); err != nil {
						return nil, err
					}
					if g.Maxs[c], err = nextStr(); err != nil {
						return nil, err
					}
				}
			}
		}
		if version >= 3 {
			if len(data) == 0 {
				return nil, fmt.Errorf("storage: corrupt column stats for %s", dataPath)
			}
			hasEncs := data[0] == 1
			data = data[1:]
			if hasEncs {
				if uint64(len(data)) < cols {
					return nil, fmt.Errorf("storage: corrupt column stats for %s", dataPath)
				}
				g.Encs = append([]byte(nil), data[:cols]...)
				data = data[cols:]
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// RCWriteOptions tunes WriteRCRowsOpts.
type RCWriteOptions struct {
	// GroupBytes switches row-group sizing to a byte budget (0 = row count).
	GroupBytes int64
	// DisableEncoding writes plain-text row groups unconditionally.
	DisableEncoding bool
}

// WriteRCRows writes rows to a new RCFile at path.
func WriteRCRows(fs *dfs.FS, path string, schema *Schema, rows []Row, groupRows int) ([]int64, error) {
	return WriteRCRowsOpts(fs, path, schema, rows, groupRows, RCWriteOptions{})
}

// WriteRCRowsOpts is WriteRCRows with writer options.
func WriteRCRowsOpts(fs *dfs.FS, path string, schema *Schema, rows []Row, groupRows int, opts RCWriteOptions) ([]int64, error) {
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	rw := NewRCWriter(w, schema, groupRows)
	if opts.GroupBytes > 0 {
		rw.SetGroupBytes(opts.GroupBytes)
	}
	if opts.DisableEncoding {
		rw.DisableEncoding()
	}
	for _, r := range rows {
		if err := rw.WriteRow(r); err != nil {
			return nil, err
		}
	}
	if err := rw.Close(); err != nil {
		return nil, err
	}
	if err := WriteGroupIndex(fs, path, rw.GroupOffsets()); err != nil {
		return nil, err
	}
	if err := WriteColStats(fs, path, rw.GroupStats()); err != nil {
		return nil, err
	}
	return rw.GroupOffsets(), nil
}

// ReadRCRows decodes every row of the RCFile at path.
func ReadRCRows(fs *dfs.FS, path string, schema *Schema) ([]Row, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	rc := NewRCReader(r, 0, r.Size())
	var rows []Row
	for {
		g, ok, err := rc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rs, err := g.DecodeRows(schema)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}
