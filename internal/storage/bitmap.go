package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// Per-file value bitmaps: for a low-cardinality column, one bitset per
// distinct value marking the row groups that contain it. An equality
// predicate on such a column prunes every group whose bit is clear — finer
// than a zone map when values interleave (min/max straddle the probe but the
// value itself is absent from most groups). Built at index-build time by the
// DGF segment writer for columns named in the 'bitmap' IDXPROPERTIES key,
// and stored in a "_bitmaps" side file next to "_groups"/"_colstats".

// BitmapCardinalityCap bounds distinct values tracked per column per file.
// A column that overflows it is dropped from the sidecar (no pruning, still
// correct) — matching the "low-cardinality columns only" contract. Builders
// surface the dropped columns (CREATE INDEX output, EXPLAIN's
// bitmap_disabled) instead of failing.
const BitmapCardinalityCap = 4096

const bitmapCardinalityCap = BitmapCardinalityCap

// Bitset is a fixed-purpose bitset over row-group ordinals.
type Bitset struct {
	Words []uint64
}

// Set marks bit i.
func (b *Bitset) Set(i int) {
	w := i >> 6
	for len(b.Words) <= w {
		b.Words = append(b.Words, 0)
	}
	b.Words[w] |= 1 << (uint(i) & 63)
}

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool {
	w := i >> 6
	if w >= len(b.Words) {
		return false
	}
	return b.Words[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.Words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// BitmapSidecar holds the value bitmaps of one data file: column index →
// value text rendering → bitset over the file's row-group ordinals.
type BitmapSidecar struct {
	Groups int
	Cols   map[int]map[string]*Bitset
}

// Lookup returns the bitset for the value's text rendering in column col;
// ok is false when the column is not covered by the sidecar. A covered
// column with an absent value returns an empty bitset (every group prunes).
func (s *BitmapSidecar) Lookup(col int, valueText string) (*Bitset, bool) {
	if s == nil {
		return nil, false
	}
	vals, ok := s.Cols[col]
	if !ok {
		return nil, false
	}
	bs, ok := vals[valueText]
	if !ok {
		return &Bitset{}, true
	}
	return bs, true
}

// bitmapBuilder accumulates per-group distinct values while an RCWriter
// flushes groups, dropping any column that overflows the cardinality cap.
type bitmapBuilder struct {
	cols    []int
	group   int
	cur     []map[string]struct{} // pending group's distinct values, per tracked col
	out     map[int]map[string]*Bitset
	dropped []int // column indices that overflowed the cardinality cap
}

func newBitmapBuilder(cols []int) *bitmapBuilder {
	b := &bitmapBuilder{
		cols: append([]int(nil), cols...),
		cur:  make([]map[string]struct{}, len(cols)),
		out:  make(map[int]map[string]*Bitset, len(cols)),
	}
	for i, c := range b.cols {
		b.cur[i] = make(map[string]struct{})
		b.out[c] = make(map[string]*Bitset)
	}
	return b
}

func (b *bitmapBuilder) observe(row Row) {
	for i, c := range b.cols {
		if c < 0 {
			continue // dropped
		}
		b.cur[i][row[c].String()] = struct{}{}
	}
}

// cut closes the pending group: its observed values get the group's bit.
func (b *bitmapBuilder) cut() {
	for i, c := range b.cols {
		if c < 0 {
			continue
		}
		vals := b.out[c]
		for v := range b.cur[i] {
			bs := vals[v]
			if bs == nil {
				bs = &Bitset{}
				vals[v] = bs
			}
			bs.Set(b.group)
			delete(b.cur[i], v)
		}
		if len(vals) > bitmapCardinalityCap {
			delete(b.out, c)
			b.cols[i] = -1
			b.dropped = append(b.dropped, c)
		}
	}
	b.group++
}

// sidecar returns the finished sidecar; ok=false when no column survived.
func (b *bitmapBuilder) sidecar() (*BitmapSidecar, bool) {
	if len(b.out) == 0 {
		return nil, false
	}
	return &BitmapSidecar{Groups: b.group, Cols: b.out}, true
}

// BitmapPath returns the side-file path holding the value bitmaps of the
// RCFile at dataPath.
func BitmapPath(dataPath string) string { return sideFilePath(dataPath, "_bitmaps") }

const bitmapMagic = 'B'

// WriteBitmapSidecar persists the sidecar of the RCFile at dataPath.
func WriteBitmapSidecar(fs *dfs.FS, dataPath string, sc *BitmapSidecar) error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	buf.WriteByte(bitmapMagic)
	put(uint64(sc.Groups))
	put(uint64(len(sc.Cols)))
	cols := make([]int, 0, len(sc.Cols))
	for c := range sc.Cols {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, c := range cols {
		vals := sc.Cols[c]
		put(uint64(c))
		put(uint64(len(vals)))
		texts := make([]string, 0, len(vals))
		for v := range vals {
			texts = append(texts, v)
		}
		sort.Strings(texts)
		for _, v := range texts {
			put(uint64(len(v)))
			buf.WriteString(v)
			bs := vals[v]
			put(uint64(len(bs.Words)))
			var word [8]byte
			for _, w := range bs.Words {
				binary.LittleEndian.PutUint64(word[:], w)
				buf.Write(word[:])
			}
		}
	}
	return fs.WriteFile(BitmapPath(dataPath), buf.Bytes())
}

// ReadBitmapSidecar loads the sidecar of the RCFile at dataPath. ok is false
// when the file has no sidecar (normal for tables without bitmap columns).
func ReadBitmapSidecar(fs *dfs.FS, dataPath string) (*BitmapSidecar, bool, error) {
	data, err := fs.ReadFile(BitmapPath(dataPath))
	if err != nil {
		return nil, false, nil
	}
	if len(data) == 0 || data[0] != bitmapMagic {
		return nil, false, fmt.Errorf("storage: corrupt bitmap sidecar for %s", dataPath)
	}
	data = data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("storage: corrupt bitmap sidecar for %s", dataPath)
		}
		data = data[n:]
		return v, nil
	}
	groups, err := next()
	if err != nil {
		return nil, false, err
	}
	nCols, err := next()
	if err != nil {
		return nil, false, err
	}
	sc := &BitmapSidecar{Groups: int(groups), Cols: make(map[int]map[string]*Bitset, nCols)}
	for i := uint64(0); i < nCols; i++ {
		col, err := next()
		if err != nil {
			return nil, false, err
		}
		nVals, err := next()
		if err != nil {
			return nil, false, err
		}
		vals := make(map[string]*Bitset, nVals)
		for j := uint64(0); j < nVals; j++ {
			vl, err := next()
			if err != nil {
				return nil, false, err
			}
			if uint64(len(data)) < vl {
				return nil, false, fmt.Errorf("storage: corrupt bitmap sidecar for %s", dataPath)
			}
			text := string(data[:vl])
			data = data[vl:]
			nWords, err := next()
			if err != nil {
				return nil, false, err
			}
			if uint64(len(data)) < nWords*8 {
				return nil, false, fmt.Errorf("storage: corrupt bitmap sidecar for %s", dataPath)
			}
			bs := &Bitset{Words: make([]uint64, nWords)}
			for w := range bs.Words {
				bs.Words[w] = binary.LittleEndian.Uint64(data[w*8:])
			}
			data = data[nWords*8:]
			vals[text] = bs
		}
		sc.Cols[int(col)] = vals
	}
	return sc, true, nil
}
