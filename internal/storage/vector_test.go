package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// TestColStatsV2ZoneRoundTrip: zone maps written by the RCFile writer come
// back exactly through the v2 colstats encoding, including a zone-less group
// interleaved with zoned ones.
func TestColStatsV2ZoneRoundTrip(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(10)
	if _, err := WriteRCRows(fs, "/tbl/zones", s, rows, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/zones")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d groups, want 3", len(stats))
	}
	for gi, g := range stats {
		if !g.HasZone() {
			t.Fatalf("group %d lost its zone map", gi)
		}
	}
	// Group 0 holds rows 0..3: userId 1..4, note meter-0..meter-3.
	if stats[0].Mins[0] != "1" || stats[0].Maxs[0] != "4" {
		t.Errorf("group 0 userId zone = [%s,%s], want [1,4]", stats[0].Mins[0], stats[0].Maxs[0])
	}
	if stats[0].Mins[4] != "meter-0" || stats[0].Maxs[4] != "meter-3" {
		t.Errorf("group 0 note zone = [%s,%s]", stats[0].Mins[4], stats[0].Maxs[4])
	}
	// Final short group holds rows 8..9: userId 9..10.
	if stats[2].Mins[0] != "9" || stats[2].Maxs[0] != "10" {
		t.Errorf("group 2 userId zone = [%s,%s], want [9,10]", stats[2].Mins[0], stats[2].Maxs[0])
	}

	// A zone-less stat (hand-built, Mins/Maxs nil) survives the round trip
	// as zone-less rather than growing empty zones.
	mixed := []GroupStat{stats[0], {Rows: 4, ColLens: []int64{1, 1, 1, 1, 1}}}
	if err := WriteColStats(fs, "/tbl/mixed", mixed); err != nil {
		t.Fatal(err)
	}
	back, err := ReadColStats(fs, "/tbl/mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[0].HasZone() || back[1].HasZone() {
		t.Fatalf("mixed zone flags wrong: %+v", back)
	}
	if back[0].Mins[0] != stats[0].Mins[0] || back[0].Maxs[4] != stats[0].Maxs[4] {
		t.Errorf("zones did not round-trip: %+v", back[0])
	}
}

// TestColStatsLegacyFallback: a legacy (pre-zone-map) colstats stream still
// parses, yielding stats without zones so planners never skip on them.
func TestColStatsLegacyFallback(t *testing.T) {
	fs := dfs.New(1 << 20)
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	// Two groups, two columns each: the legacy layout is just
	// rows, colCount, lens... with no magic and no zone flag.
	for _, g := range [][]uint64{{5, 2, 40, 40}, {3, 2, 24, 30}} {
		for _, v := range g {
			put(v)
		}
	}
	if err := fs.WriteFile(ColStatsPath("/tbl/legacy"), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/legacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d groups, want 2", len(stats))
	}
	if stats[0].Rows != 5 || stats[0].ColLens[1] != 40 || stats[1].Rows != 3 || stats[1].ColLens[1] != 30 {
		t.Fatalf("legacy stats decoded wrong: %+v", stats)
	}
	for gi, g := range stats {
		if g.HasZone() {
			t.Errorf("legacy group %d claims a zone map", gi)
		}
	}
}

// TestBitmapSidecarRoundTrip: per-group value bitmaps built by the writer
// persist and answer lookups — present values map to exactly the groups that
// hold them, absent values on a covered column yield an empty (all-pruning)
// bitset, and uncovered columns report not-covered.
func TestBitmapSidecarRoundTrip(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := NewSchema(Column{"id", KindInt64}, Column{"tag", KindString})
	w, err := fs.Create("/tbl/bm")
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRCWriter(w, s, 2)
	rw.TrackBitmaps([]int{1})
	// Groups of 2: {a,a} {a,b} {b,b}.
	for _, tag := range []string{"a", "a", "a", "b", "b", "b"} {
		if err := rw.WriteRow(Row{Int64(1), Str(tag)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	sc, ok := rw.BitmapSidecar()
	if !ok {
		t.Fatal("no sidecar despite TrackBitmaps")
	}
	if err := WriteBitmapSidecar(fs, "/tbl/bm", sc); err != nil {
		t.Fatal(err)
	}
	back, ok, err := ReadBitmapSidecar(fs, "/tbl/bm")
	if err != nil || !ok {
		t.Fatalf("ReadBitmapSidecar: ok=%v err=%v", ok, err)
	}
	if back.Groups != 3 {
		t.Fatalf("sidecar covers %d groups, want 3", back.Groups)
	}
	checks := []struct {
		val  string
		want []bool // per group
	}{
		{"a", []bool{true, true, false}},
		{"b", []bool{false, true, true}},
		{"z", []bool{false, false, false}}, // absent value: prunes everything
	}
	for _, c := range checks {
		bs, ok := back.Lookup(1, c.val)
		if !ok {
			t.Fatalf("column 1 not covered for %q", c.val)
		}
		for g, want := range c.want {
			if bs.Has(g) != want {
				t.Errorf("Lookup(1,%q).Has(%d) = %v, want %v", c.val, g, bs.Has(g), want)
			}
		}
	}
	if _, ok := back.Lookup(0, "1"); ok {
		t.Error("untracked column reports covered")
	}
	// Absence of the side file is normal, not an error.
	if _, ok, err := ReadBitmapSidecar(fs, "/tbl/missing"); ok || err != nil {
		t.Fatalf("missing sidecar: ok=%v err=%v", ok, err)
	}
}

// TestBitmapCardinalityCap: a column exceeding the per-file cardinality cap
// is dropped from the sidecar rather than ballooning it; when it was the only
// tracked column the writer reports no sidecar at all.
func TestBitmapCardinalityCap(t *testing.T) {
	fs := dfs.New(1 << 24)
	s := NewSchema(Column{"id", KindInt64}, Column{"tag", KindString})
	w, err := fs.Create("/tbl/cap")
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRCWriter(w, s, 64)
	rw.TrackBitmaps([]int{0, 1}) // id is unique per row → overflows the cap
	for i := 0; i < bitmapCardinalityCap+10; i++ {
		if err := rw.WriteRow(Row{Int64(int64(i)), Str(fmt.Sprintf("t%d", i%3))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	sc, ok := rw.BitmapSidecar()
	if !ok {
		t.Fatal("sidecar dropped entirely; tag column should survive")
	}
	if _, ok := sc.Lookup(0, "0"); ok {
		t.Error("over-cardinality column kept its bitmaps")
	}
	if _, ok := sc.Lookup(1, "t0"); !ok {
		t.Error("low-cardinality column lost its bitmaps")
	}
}

// TestReadGroupColumnsMatchesRowDecode: the vectorised group decode yields,
// cell for cell, the same values as the row-at-a-time decode — including
// projected reads (zero values in skipped columns) — and the reused batch
// stays correct across groups of different sizes.
func TestReadGroupColumnsMatchesRowDecode(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(10)
	if _, err := WriteRCRows(fs, "/tbl/vec", s, rows, 4); err != nil {
		t.Fatal(err)
	}
	offsets, err := ReadGroupIndex(fs, "/tbl/vec")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/tbl/vec")
	if err != nil {
		t.Fatal(err)
	}
	for _, project := range [][]bool{nil, {true, false, true, true, false}} {
		batch := NewColumnBatch(s)
		for _, off := range offsets {
			read, err := ReadGroupColumns(r, off, s, project, batch)
			if err != nil {
				t.Fatal(err)
			}
			g, wantRead, err := ReadGroupProjected(r, off, project)
			if err != nil {
				t.Fatal(err)
			}
			if read != wantRead {
				t.Errorf("group %d: vector read %d bytes, row read %d", off, read, wantRead)
			}
			want, err := g.DecodeRowsProjected(s, project)
			if err != nil {
				t.Fatal(err)
			}
			if batch.Rows != len(want) {
				t.Fatalf("group %d: batch has %d rows, want %d", off, batch.Rows, len(want))
			}
			for ri := range want {
				got := batch.MaterialiseRow(ri)
				for c := range want[ri] {
					if Compare(got[c], want[ri][c]) != 0 || got[c].Kind != want[ri][c].Kind {
						t.Fatalf("group %d row %d col %d: %v vs %v", off, ri, c, got[c], want[ri][c])
					}
				}
			}
		}
	}
}

// TestDecodeRowsProjectedAllocs guards the hot decode loop's allocation
// profile: a numeric-only projection must allocate a constant handful of
// slices (rows header plus the flat cell arena), not one Value box per cell.
func TestDecodeRowsProjectedAllocs(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	if _, err := WriteRCRows(fs, "/tbl/allocs", s, sampleRows(64), 64); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/tbl/allocs")
	if err != nil {
		t.Fatal(err)
	}
	project := []bool{true, true, true, true, false} // numeric columns only
	g, _, err := ReadGroupProjected(r, 0, project)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := g.DecodeRowsProjected(s, project); err != nil {
			t.Fatal(err)
		}
	})
	// rows slice + cell arena + small fixed overhead; anything near one
	// alloc per row (64) means the per-cell fast paths regressed.
	if allocs > 8 {
		t.Errorf("DecodeRowsProjected allocates %.0f times per 64-row group, want <= 8", allocs)
	}

	// The vectorised decode into a reused batch must likewise stay near
	// zero steady-state allocations for numeric columns.
	batch := NewColumnBatch(s)
	if _, err := ReadGroupColumns(r, 0, s, project, batch); err != nil {
		t.Fatal(err) // warm the vectors
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := ReadGroupColumns(r, 0, s, project, batch); err != nil {
			t.Fatal(err)
		}
	})
	// ReadGroupProjected's header/payload buffers remain; the decode
	// itself must not add per-row allocations.
	if allocs > 12 {
		t.Errorf("ReadGroupColumns allocates %.0f times per 64-row group, want <= 12", allocs)
	}
}

// BenchmarkDecodeRowsProjected reports allocs/op for the hot decode loop.
func BenchmarkDecodeRowsProjected(b *testing.B) {
	fs := dfs.New(1 << 24)
	s := meterSchema()
	if _, err := WriteRCRows(fs, "/tbl/bench", s, sampleRows(1024), 1024); err != nil {
		b.Fatal(err)
	}
	r, err := fs.Open("/tbl/bench")
	if err != nil {
		b.Fatal(err)
	}
	project := []bool{true, true, true, true, false}
	g, _, err := ReadGroupProjected(r, 0, project)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.DecodeRowsProjected(s, project); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadGroupColumns reports allocs/op for the vectorised decode.
func BenchmarkReadGroupColumns(b *testing.B) {
	fs := dfs.New(1 << 24)
	s := meterSchema()
	if _, err := WriteRCRows(fs, "/tbl/benchvec", s, sampleRows(1024), 1024); err != nil {
		b.Fatal(err)
	}
	r, err := fs.Open("/tbl/benchvec")
	if err != nil {
		b.Fatal(err)
	}
	project := []bool{true, true, true, true, false}
	batch := NewColumnBatch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadGroupColumns(r, 0, s, project, batch); err != nil {
			b.Fatal(err)
		}
	}
}
