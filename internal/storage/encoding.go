package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Per-column encodings inside an encoded ('E') row group. Smart-grid meter
// data is massively redundant — low-cardinality dimensions and day-major
// timestamps — so storing every cell as plain text wastes both bytes and
// decode work. An encoded group keeps the 'R' layout (magic, uvarint
// rowCount, uvarint colCount, per-column uvarint payloadLen + payload) but
// every column payload opens with a one-byte encoding tag:
//
//	EncPlain  body = the legacy '\n'-joined text cells
//	EncDict   body = uvarint nEntries; nEntries × (uvarint len, bytes),
//	          sorted ascending; rowCount × uvarint code
//	EncRLE    body = runs of (uvarint runLen, uvarint valLen, valBytes)
//	          until rowCount cells are covered
//
// The writer picks the smallest representation per column and falls back to
// the legacy 'R' group (no tags at all) when every column stays plain, so
// incompressible data round-trips bit-identically with pre-encoding files.
// Recorded column lengths include the tag byte, which keeps the byte
// accounting of GroupStat.EncodedSize/ProjectedSize exact.
//
// EncDict is restricted to string columns: the dictionary is sorted
// lexicographically, and only for KindString does that order agree with
// Compare, letting range kernels order codes instead of values.
const (
	EncPlain byte = 0
	EncDict  byte = 1
	EncRLE   byte = 2
)

const rcEncodedMagic = 'E'

// EncodingName renders an encoding tag for EXPLAIN output and errors.
func EncodingName(enc byte) string {
	switch enc {
	case EncDict:
		return "dict"
	case EncRLE:
		return "rle"
	default:
		return "plain"
	}
}

// rawCell is one cell of a pending column payload, addressed into it.
type rawCell struct {
	start, len int
}

// splitRawCells locates the '\n'-joined cells of a pending column payload.
// Cells never contain '\n' (AppendText renders one line per value).
func splitRawCells(payload []byte, rows int, dst []rawCell) []rawCell {
	dst = dst[:0]
	start := 0
	for r := 0; r < rows; r++ {
		end := len(payload)
		if r+1 < rows {
			end = start + bytes.IndexByte(payload[start:], '\n')
		}
		dst = append(dst, rawCell{start: start, len: end - start})
		start = end + 1
	}
	return dst
}

// encodeColumnBody picks the cheapest encoding for one pending column
// payload and returns the tag plus the encoded body (the payload itself for
// EncPlain). Sizes compare encoded bodies only; the one-byte tag is paid by
// every column of an encoded group alike, so it cancels out of the choice.
func encodeColumnBody(kind Kind, payload []byte, rows int, cells []rawCell) (byte, []byte) {
	if rows == 0 {
		return EncPlain, payload
	}
	cellText := func(c rawCell) []byte { return payload[c.start : c.start+c.len] }

	// Run-length candidate: collect maximal runs of identical adjacent
	// cells. ts loads day-major, so a whole group often collapses into a
	// single run.
	type run struct {
		cell  rawCell
		count int
	}
	var runs []run
	var rleSize int64
	for _, c := range cells {
		if n := len(runs); n > 0 && bytes.Equal(cellText(runs[n-1].cell), cellText(c)) {
			runs[n-1].count++
			continue
		}
		runs = append(runs, run{cell: c, count: 1})
		rleSize += uvarintLen(uint64(c.len)) + int64(c.len)
	}
	for _, r := range runs {
		rleSize += uvarintLen(uint64(r.count))
	}

	// Dictionary candidate (string columns only): distinct values sorted
	// ascending, cells become uvarint codes.
	var dictSize int64 = -1
	var entries []string
	var codeOf map[string]uint32
	if kind == KindString && len(runs) > 1 {
		distinct := make(map[string]struct{})
		overflow := false
		for _, c := range cells {
			if _, ok := distinct[string(cellText(c))]; !ok {
				distinct[string(cellText(c))] = struct{}{}
				if len(distinct) > rows/2+1 {
					// More than half the cells are distinct: a dictionary
					// cannot beat plain and the sort is wasted work.
					overflow = true
					break
				}
			}
		}
		if !overflow {
			entries = make([]string, 0, len(distinct))
			for v := range distinct {
				entries = append(entries, v)
			}
			sort.Strings(entries)
			codeOf = make(map[string]uint32, len(entries))
			dictSize = uvarintLen(uint64(len(entries)))
			for i, e := range entries {
				codeOf[e] = uint32(i)
				dictSize += uvarintLen(uint64(len(e))) + int64(len(e))
			}
			for _, c := range cells {
				dictSize += uvarintLen(uint64(codeOf[string(cellText(c))]))
			}
		}
	}

	best, bestSize := EncPlain, int64(len(payload))
	if rleSize < bestSize {
		best, bestSize = EncRLE, rleSize
	}
	if dictSize >= 0 && dictSize < bestSize {
		best, bestSize = EncDict, dictSize
	}

	var tmp [binary.MaxVarintLen64]byte
	putUv := func(body []byte, v uint64) []byte {
		n := binary.PutUvarint(tmp[:], v)
		return append(body, tmp[:n]...)
	}
	switch best {
	case EncRLE:
		body := make([]byte, 0, bestSize)
		for _, r := range runs {
			body = putUv(body, uint64(r.count))
			body = putUv(body, uint64(r.cell.len))
			body = append(body, cellText(r.cell)...)
		}
		return EncRLE, body
	case EncDict:
		body := make([]byte, 0, bestSize)
		body = putUv(body, uint64(len(entries)))
		for _, e := range entries {
			body = putUv(body, uint64(len(e)))
			body = append(body, e...)
		}
		for _, c := range cells {
			body = putUv(body, uint64(codeOf[string(cellText(c))]))
		}
		return EncDict, body
	default:
		return EncPlain, payload
	}
}

// uvarintStr decodes a uvarint from s starting at pos without allocating.
// Returns the value and the number of bytes consumed (0 on corruption).
func uvarintStr(s string, pos int) (uint64, int) {
	var x uint64
	var shift uint
	for i := pos; i < len(s); i++ {
		b := s[i]
		if b < 0x80 {
			if shift >= 64 {
				return 0, 0
			}
			return x | uint64(b)<<shift, i - pos + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift >= 64 {
			return 0, 0
		}
	}
	return 0, 0
}

// dictHeader decodes a dictionary body's entry table, appending the entries
// to dst (reusing its capacity). The entries slice into text's backing, so
// decoding a dictionary column allocates once for the body's string
// conversion plus (amortised) the entries slice. Returns the entries and the
// position where the code stream begins.
func dictHeader(text string, dst []string) ([]string, int, error) {
	n, w := uvarintStr(text, 0)
	if w <= 0 {
		return nil, 0, fmt.Errorf("storage: corrupt dictionary column")
	}
	pos := w
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		l, w := uvarintStr(text, pos)
		// Compare in uint64: int(l) can wrap negative for absurd lengths
		// and sail past an int-typed bounds check into a slice panic.
		if w <= 0 || l > uint64(len(text)-pos-w) {
			return nil, 0, fmt.Errorf("storage: corrupt dictionary column")
		}
		pos += w
		dst = append(dst, text[pos:pos+int(l)])
		pos += int(l)
	}
	return dst, pos, nil
}

// forEachCell walks the logical cells of one column payload body under its
// encoding tag, delivering each cell's text rendering in row order. It is
// the row-at-a-time decode path; vectorised decoding has encoding-specific
// fast paths in decodeColumn.
func forEachCell(enc byte, body []byte, rows int, fn func(r int, field string) error) error {
	switch enc {
	case EncDict:
		text := string(body)
		dict, pos, err := dictHeader(text, nil)
		if err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			code, w := uvarintStr(text, pos)
			if w <= 0 || code >= uint64(len(dict)) {
				return fmt.Errorf("storage: corrupt dictionary column")
			}
			pos += w
			if err := fn(r, dict[code]); err != nil {
				return err
			}
		}
		return nil
	case EncRLE:
		text := string(body)
		pos, r := 0, 0
		for r < rows {
			count, w := uvarintStr(text, pos)
			if w <= 0 {
				return fmt.Errorf("storage: corrupt run-length column")
			}
			pos += w
			l, w := uvarintStr(text, pos)
			if w <= 0 || l > uint64(len(text)-pos-w) {
				return fmt.Errorf("storage: corrupt run-length column")
			}
			pos += w
			val := text[pos : pos+int(l)]
			pos += int(l)
			for j := uint64(0); j < count && r < rows; j++ {
				if err := fn(r, val); err != nil {
					return err
				}
				r++
			}
		}
		if r != rows {
			return fmt.Errorf("storage: run-length column covers %d rows, expected %d", r, rows)
		}
		return nil
	default:
		return forEachField(string(body), rows, fn)
	}
}
