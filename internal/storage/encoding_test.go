package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// encodableSchema shapes the dictionary/RLE test data: a unique id (stays
// plain), a low-cardinality city (dictionary candidate), a day-major ts
// (constant per group, RLE candidate) and a float reading.
func encodableSchema() *Schema {
	return NewSchema(
		Column{"id", KindInt64},
		Column{"city", KindString},
		Column{"ts", KindTime},
		Column{"val", KindFloat64},
	)
}

var testCities = []string{"amsterdam", "berlin", "cairo", "delhi"}

// encodableRows: with 16-row groups, city alternates through 4 values (dict
// wins) and ts is constant within each group (one RLE run).
func encodableRows(n int) []Row {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Int64(int64(i + 1)),
			Str(testCities[i%len(testCities)]),
			Time(base.AddDate(0, 0, i/16)),
			Float64(float64(i) * 0.5),
		}
	}
	return rows
}

// TestEncodedGroupsRoundTrip: dictionary and RLE columns decode back to the
// exact source rows through both the row-at-a-time and the vectorised
// readers, and the group stats record which encoding each column got.
func TestEncodedGroupsRoundTrip(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := encodableSchema()
	rows := encodableRows(64)
	if _, err := WriteRCRows(fs, "/tbl/enc", s, rows, 16); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("got %d groups, want 4", len(stats))
	}
	for gi, g := range stats {
		if g.Enc(0) != EncPlain || g.Enc(3) != EncPlain {
			t.Errorf("group %d: unique columns encoded: id=%s val=%s",
				gi, EncodingName(g.Enc(0)), EncodingName(g.Enc(3)))
		}
		if g.Enc(1) != EncDict {
			t.Errorf("group %d: city encoding = %s, want dict", gi, EncodingName(g.Enc(1)))
		}
		if g.Enc(2) != EncRLE {
			t.Errorf("group %d: ts encoding = %s, want rle", gi, EncodingName(g.Enc(2)))
		}
	}

	offsets, err := ReadGroupIndex(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	batch := NewColumnBatch(s)
	next := 0
	for _, off := range offsets {
		g, _, err := ReadGroupProjected(r, off, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.DecodeRows(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadGroupColumns(r, off, s, nil, batch); err != nil {
			t.Fatal(err)
		}
		if batch.Rows != len(got) {
			t.Fatalf("group %d: batch %d rows vs decode %d", off, batch.Rows, len(got))
		}
		for ri, row := range got {
			want := rows[next]
			next++
			vec := batch.MaterialiseRow(ri)
			for c := range row {
				if Compare(row[c], want[c]) != 0 || row[c].Kind != want[c].Kind {
					t.Fatalf("row decode: group %d row %d col %d: %v vs %v", off, ri, c, row[c], want[c])
				}
				if Compare(vec[c], want[c]) != 0 || vec[c].Kind != want[c].Kind {
					t.Fatalf("vector decode: group %d row %d col %d: %v vs %v", off, ri, c, vec[c], want[c])
				}
			}
		}
		// The dictionary column decodes into codes + dictionary, not
		// materialised strings; the RLE column records its run boundaries.
		if batch.Cols[1].Enc != EncDict || len(batch.Cols[1].Dict) != len(testCities) || len(batch.Cols[1].Strs) != 0 {
			t.Errorf("city vector: enc=%s dict=%d strs=%d, want dict/%d/0",
				EncodingName(batch.Cols[1].Enc), len(batch.Cols[1].Dict), len(batch.Cols[1].Strs), len(testCities))
		}
		if batch.Cols[2].Enc != EncRLE || len(batch.Cols[2].RunEnds) != 1 {
			t.Errorf("ts vector: enc=%s runs=%d, want rle/1",
				EncodingName(batch.Cols[2].Enc), len(batch.Cols[2].RunEnds))
		}
	}
	if next != len(rows) {
		t.Fatalf("decoded %d rows, want %d", next, len(rows))
	}
}

// TestEncodingShrinksColumns is the size half of the acceptance criterion:
// the dictionary and RLE columns store at least 3x smaller than their plain
// layout for low-cardinality / constant-run data.
func TestEncodingShrinksColumns(t *testing.T) {
	fs := dfs.New(1 << 22)
	s := encodableSchema()
	rows := encodableRows(4096)
	if _, err := WriteRCRows(fs, "/tbl/enc", s, rows, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRCRowsOpts(fs, "/tbl/plain", s, rows, 256, RCWriteOptions{DisableEncoding: true}); err != nil {
		t.Fatal(err)
	}
	colBytes := func(path string) ([]int64, int64) {
		t.Helper()
		stats, err := ReadColStats(fs, path)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]int64, s.Len())
		for _, g := range stats {
			for c, l := range g.ColLens {
				sums[c] += l
			}
		}
		return sums, int64(len(stats))
	}
	enc, groups := colBytes("/tbl/enc")
	plain, _ := colBytes("/tbl/plain")
	for _, c := range []int{1, 2} { // city (dict), ts (rle)
		if enc[c]*3 > plain[c] {
			t.Errorf("column %s: encoded %d bytes vs plain %d, want >= 3x smaller",
				s.Cols[c].Name, enc[c], plain[c])
		}
	}
	// The unencodable columns must not grow beyond the one tag byte each
	// column of an encoded ('E') group carries.
	for _, c := range []int{0, 3} {
		if enc[c] > plain[c]+groups {
			t.Errorf("column %s: %d bytes encoded vs %d plain (+%d tag bytes allowed)",
				s.Cols[c].Name, enc[c], plain[c], groups)
		}
	}
}

// TestUnencodableDataBitIdentical: data where plain wins every column (unique
// strings, unit-run numerics) produces byte-identical files with and without
// encoding enabled — the legacy 'R' layout is preserved exactly.
func TestUnencodableDataBitIdentical(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(40)
	if _, err := WriteRCRows(fs, "/tbl/auto", s, rows, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRCRowsOpts(fs, "/tbl/off", s, rows, 16, RCWriteOptions{DisableEncoding: true}); err != nil {
		t.Fatal(err)
	}
	auto, err := fs.ReadFile("/tbl/auto")
	if err != nil {
		t.Fatal(err)
	}
	off, err := fs.ReadFile("/tbl/off")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(auto, off) {
		t.Fatal("all-plain data files differ between encoding on and off")
	}
	stats, err := ReadColStats(fs, "/tbl/auto")
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range stats {
		for c := 0; c < s.Len(); c++ {
			if g.Enc(c) != EncPlain {
				t.Errorf("group %d col %d claims %s on unencodable data", gi, c, EncodingName(g.Enc(c)))
			}
		}
	}
}

// TestColStatsV3EncodingRoundTrip: the v3 colstats sidecar carries the
// per-group encoding tags through a write/read cycle, including groups
// without encodings interleaved with encoded ones.
func TestColStatsV3EncodingRoundTrip(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := encodableSchema()
	if _, err := WriteRCRows(fs, "/tbl/enc", s, encodableRows(48), 16); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	// Append a hand-built plain group (nil Encs) and round-trip the mix.
	mixed := append(append([]GroupStat{}, stats...),
		GroupStat{Rows: 4, ColLens: []int64{1, 2, 3, 4}})
	if err := WriteColStats(fs, "/tbl/mixed", mixed); err != nil {
		t.Fatal(err)
	}
	back, err := ReadColStats(fs, "/tbl/mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(mixed) {
		t.Fatalf("got %d groups, want %d", len(back), len(mixed))
	}
	for gi, g := range back {
		for c := 0; c < s.Len(); c++ {
			if g.Enc(c) != mixed[gi].Enc(c) {
				t.Errorf("group %d col %d: enc %s, want %s",
					gi, c, EncodingName(g.Enc(c)), EncodingName(mixed[gi].Enc(c)))
			}
		}
		if g.HasZone() != mixed[gi].HasZone() {
			t.Errorf("group %d: zone flag flipped", gi)
		}
	}
}

// TestLegacyColStatsWithEncodedData is the compatibility criterion: a legacy
// v1 sidecar (no zones, no encodings) paired with an encoded data file still
// reads exactly — the data file is self-describing — and reports no zones, so
// planners can never skip on stale metadata.
func TestLegacyColStatsWithEncodedData(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := encodableSchema()
	rows := encodableRows(48)
	if _, err := WriteRCRows(fs, "/tbl/enc", s, rows, 16); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the sidecar in the v1 layout: rows, colCount, lens — no magic,
	// no zones, no encodings.
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	for _, g := range stats {
		put(uint64(g.Rows))
		put(uint64(len(g.ColLens)))
		for _, l := range g.ColLens {
			put(uint64(l))
		}
	}
	if err := fs.Remove(ColStatsPath("/tbl/enc")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ColStatsPath("/tbl/enc"), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	legacy, err := ReadColStats(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range legacy {
		if g.HasZone() {
			t.Errorf("v1 group %d claims a zone map", gi)
		}
		if g.Encs != nil {
			t.Errorf("v1 group %d claims encodings", gi)
		}
		if g.Rows != stats[gi].Rows {
			t.Errorf("v1 group %d rows %d, want %d", gi, g.Rows, stats[gi].Rows)
		}
	}
	// The data still decodes bit-identically: encodings live in the file.
	offsets, err := ReadGroupIndex(fs, "/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/tbl/enc")
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for _, off := range offsets {
		g, _, err := ReadGroupProjected(r, off, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.DecodeRows(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range got {
			for c := range row {
				if Compare(row[c], rows[next][c]) != 0 {
					t.Fatalf("row %d col %d: %v vs %v", next, c, row[c], rows[next][c])
				}
			}
			next++
		}
	}
	if next != len(rows) {
		t.Fatalf("decoded %d rows, want %d", next, len(rows))
	}
}

// TestGroupBytesBudget: a byte budget cuts groups when the pending payload
// reaches it, regardless of the row-count ceiling, and the file reads back
// complete.
func TestGroupBytesBudget(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := encodableSchema()
	rows := encodableRows(256)
	if _, err := WriteRCRowsOpts(fs, "/tbl/budget", s, rows, 1<<20, RCWriteOptions{GroupBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 2 {
		t.Fatalf("byte budget produced %d groups, want several", len(stats))
	}
	total := 0
	for _, g := range stats {
		total += g.Rows
	}
	if total != len(rows) {
		t.Fatalf("groups hold %d rows, want %d", total, len(rows))
	}
	// Every full group stays in the budget's neighbourhood: the cut happens
	// at the first row that reaches the budget, so no group doubles it.
	for gi, g := range stats[:len(stats)-1] {
		var raw int64
		for _, l := range g.ColLens {
			raw += l
		}
		if raw > 2*2048 {
			t.Errorf("group %d holds %d payload bytes, far over the 2048 budget", gi, raw)
		}
	}
	back, err := ReadRCRows(fs, "/tbl/budget", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("read %d rows, want %d", len(back), len(rows))
	}
	for i := range back {
		for c := range back[i] {
			if Compare(back[i][c], rows[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c, back[i][c], rows[i][c])
			}
		}
	}
}

// BenchmarkEncodedDecode compares the vectorised group decode over encoded
// and plain layouts of the same low-cardinality data.
func BenchmarkEncodedDecode(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"encoded", false}, {"plain", true}} {
		b.Run(mode.name, func(b *testing.B) {
			fs := dfs.New(1 << 24)
			s := encodableSchema()
			rows := encodableRows(1024)
			path := fmt.Sprintf("/tbl/bench-%s", mode.name)
			if _, err := WriteRCRowsOpts(fs, path, s, rows, 1024, RCWriteOptions{DisableEncoding: mode.disable}); err != nil {
				b.Fatal(err)
			}
			r, err := fs.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			batch := NewColumnBatch(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReadGroupColumns(r, 0, s, nil, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
