package storage

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// fuzzSchema derives a small schema from the fuzzer-chosen width so the
// decode path is exercised against schemas both narrower and wider than the
// group's actual column count.
func fuzzSchema(ncols uint8) *Schema {
	kinds := []Kind{KindInt64, KindString, KindFloat64, KindTime}
	cols := make([]Column, int(ncols%5)+1)
	for i := range cols {
		cols[i] = Column{Name: string(rune('a' + i)), Kind: kinds[i%len(kinds)]}
	}
	return NewSchema(cols...)
}

// rcBytes renders rows through the real writer and returns the raw file
// bytes, for seeding the corpus with every on-disk layout the reader must
// handle: plain 'R' groups, encoded 'E' groups (dict and RLE columns), and
// multi-group files.
func rcBytes(t testing.TB, rows []Row, groupRows int, opts RCWriteOptions) []byte {
	t.Helper()
	fs := dfs.New(1 << 20)
	if _, err := WriteRCRowsOpts(fs, "/t/data", fuzzSchema(2), rows, groupRows, opts); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/t/data")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzDecodeRowGroup hands arbitrary bytes to the RCFile row-group reader
// and decoder. Scans run over whatever the filesystem serves, so a corrupt
// or truncated group must surface as an error — never a panic or an
// attacker-sized allocation (counts and payload lengths are bounded against
// the file before anything is sized by them).
func FuzzDecodeRowGroup(f *testing.F) {
	seedRows := []Row{
		{Int64(1), Str("cq"), Float64(3.25)},
		{Int64(2), Str("cq"), Float64(3.25)},
		{Int64(3), Str("bj"), Float64(-0.5)},
		{Int64(4), Str("cq"), Float64(0)},
	}
	f.Add(rcBytes(f, seedRows, 0, RCWriteOptions{}), uint8(2))
	f.Add(rcBytes(f, seedRows, 2, RCWriteOptions{}), uint8(2)) // two groups, dict+RLE candidates
	f.Add(rcBytes(f, seedRows, 0, RCWriteOptions{DisableEncoding: true}), uint8(2))
	f.Add(rcBytes(f, nil, 0, RCWriteOptions{}), uint8(0))
	f.Add([]byte{'R', 4, 3}, uint8(2))
	f.Add([]byte{'E', 1, 1, 2, EncRLE, 0xff}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, ncols uint8) {
		fs := dfs.New(1 << 20)
		if err := fs.WriteFile("/t/data", data); err != nil {
			t.Skip()
		}
		r, err := fs.Open("/t/data")
		if err != nil {
			t.Skip()
		}
		schema := fuzzSchema(ncols)
		rc := NewRCReader(r, 0, r.Size())
		for {
			g, ok, err := rc.Next()
			if err != nil || !ok {
				break
			}
			rows, err := g.DecodeRows(schema)
			if err == nil && len(rows) != g.Rows {
				t.Fatalf("decoded %d rows, group header says %d", len(rows), g.Rows)
			}
			// Projected read of the same group: only the first column is
			// fetched; the others must come back as zero values, not reads
			// past the projection.
			project := make([]bool, schema.Len())
			project[0] = true
			if pg, _, err := ReadGroupProjected(r, g.Offset, project); err == nil {
				_, _ = pg.DecodeRowsProjected(schema, project)
			}
		}
	})
}
