package storage

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

func meterSchema() *Schema {
	return NewSchema(
		Column{"userId", KindInt64},
		Column{"regionId", KindInt64},
		Column{"ts", KindTime},
		Column{"powerConsumed", KindFloat64},
		Column{"note", KindString},
	)
}

func sampleRows(n int) []Row {
	base := time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Int64(int64(i + 1)),
			Int64(int64(i%11 + 1)),
			Time(base.Add(time.Duration(i) * time.Hour)),
			Float64(float64(i) * 1.25),
			Str(fmt.Sprintf("meter-%d", i)),
		}
	}
	return rows
}

func TestKindParseAndString(t *testing.T) {
	for _, k := range []Kind{KindInt64, KindFloat64, KindString, KindTime} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded, want error")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Int64(-42),
		Float64(3.25),
		Float64(1e-9),
		Str("hello world"),
		Time(time.Date(2013, 1, 15, 0, 0, 0, 0, time.UTC)),
		Time(time.Date(2013, 1, 15, 7, 30, 5, 0, time.UTC)),
	}
	for _, v := range vals {
		got, err := ParseValue(v.Kind, v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v): %v", v, err)
		}
		if Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseTimeForms(t *testing.T) {
	want := time.Date(2012, 12, 30, 0, 0, 0, 0, time.UTC).Unix()
	for _, s := range []string{"2012-12-30", "2012-12-30 00:00:00", fmt.Sprint(want)} {
		v, err := ParseTime(s)
		if err != nil || v.I != want {
			t.Errorf("ParseTime(%q) = %v, %v; want unix %d", s, v, err, want)
		}
	}
	if _, err := ParseTime("not a date"); err == nil {
		t.Error("ParseTime garbage succeeded")
	}
}

func TestCompare(t *testing.T) {
	if Compare(Int64(1), Int64(2)) != -1 || Compare(Int64(2), Int64(1)) != 1 || Compare(Int64(5), Int64(5)) != 0 {
		t.Error("int compare wrong")
	}
	if Compare(Str("a"), Str("b")) != -1 {
		t.Error("string compare wrong")
	}
	// Mixed numeric kinds compare by value, like Hive's lenient coercion.
	if Compare(Int64(3), Float64(3.0)) != 0 {
		t.Error("mixed numeric compare wrong")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := meterSchema()
	if s.ColIndex("PowerConsumed") != 3 {
		t.Errorf("case-insensitive lookup failed: %d", s.ColIndex("PowerConsumed"))
	}
	if s.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	p, err := s.Project("ts", "userId")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Col(0).Name != "ts" || p.Col(1).Kind != KindInt64 {
		t.Errorf("Project = %v", p)
	}
	if _, err := s.Project("ghost"); err == nil {
		t.Error("Project of missing column succeeded")
	}
}

func TestTextRowRoundTrip(t *testing.T) {
	s := meterSchema()
	for _, row := range sampleRows(20) {
		line := EncodeTextRow(row)
		got, err := DecodeTextRow(s, line)
		if err != nil {
			t.Fatal(err)
		}
		for i := range row {
			if Compare(got[i], row[i]) != 0 {
				t.Errorf("col %d: got %v want %v (line %q)", i, got[i], row[i], line)
			}
		}
	}
}

func TestDecodeTextRowBadFieldCount(t *testing.T) {
	s := meterSchema()
	if _, err := DecodeTextRow(s, "1,2"); err == nil {
		t.Error("short line decoded without error")
	}
}

func TestTextField(t *testing.T) {
	line := "100,11,2012-12-30,5.5,ok"
	cases := []struct {
		i    int
		want string
	}{{0, "100"}, {1, "11"}, {2, "2012-12-30"}, {4, "ok"}}
	for _, c := range cases {
		got, ok := TextField(line, c.i)
		if !ok || got != c.want {
			t.Errorf("TextField(%d) = %q,%v want %q", c.i, got, ok, c.want)
		}
		gotB, ok := TextFieldBytes([]byte(line), c.i)
		if !ok || string(gotB) != c.want {
			t.Errorf("TextFieldBytes(%d) = %q,%v", c.i, gotB, ok)
		}
	}
	if _, ok := TextField(line, 9); ok {
		t.Error("TextField out of range returned ok")
	}
}

func TestTextWriterOffsets(t *testing.T) {
	fs := dfs.New(32)
	w, _ := fs.Create("/t/f")
	tw := NewTextWriter(w)
	rows := sampleRows(5)
	var offsets []int64
	for _, r := range rows {
		offsets = append(offsets, tw.Offset())
		if err := tw.WriteRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	// Each recorded offset must be the true start of its line.
	r, _ := fs.Open("/t/f")
	lr := NewLineReader(r, 0, r.Size())
	i := 0
	for {
		_, off, ok := lr.Next()
		if !ok {
			break
		}
		if off != offsets[i] {
			t.Errorf("line %d starts at %d, recorded %d", i, off, offsets[i])
		}
		i++
	}
	if i != len(rows) {
		t.Errorf("read %d lines, want %d", i, len(rows))
	}
}

func TestLineReaderSplitOwnership(t *testing.T) {
	fs := dfs.New(1 << 20)
	w, _ := fs.Create("/f")
	tw := NewTextWriter(w)
	var want []string
	for i := 0; i < 200; i++ {
		line := fmt.Sprintf("row-%04d,payload-%d", i, i*i)
		want = append(want, line)
		tw.WriteLine([]byte(line))
	}
	tw.Close()
	r, _ := fs.Open("/f")
	size := r.Size()
	// Chop the file at arbitrary byte positions; the union of lines seen by
	// consecutive readers must be exactly the file, no dupes, no gaps.
	for _, parts := range []int{1, 2, 3, 7} {
		var got []string
		for p := 0; p < parts; p++ {
			start := size * int64(p) / int64(parts)
			end := size * int64(p+1) / int64(parts)
			lr := NewLineReader(r, start, end)
			for {
				line, _, ok := lr.Next()
				if !ok {
					break
				}
				got = append(got, string(line))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parts=%d: got %d lines, want %d (or order mismatch)", parts, len(got), len(want))
		}
	}
}

// Property: for any ASCII payload lines and any split point, the two-reader
// union equals the file content.
func TestLineReaderSplitProperty(t *testing.T) {
	f := func(seed int64, cut uint16) bool {
		fs := dfs.New(128)
		w, _ := fs.Create("/f")
		tw := NewTextWriter(w)
		n := int(seed%50) + 1
		var want []string
		for i := 0; i < n; i++ {
			line := fmt.Sprintf("%d-%d", seed, i)
			want = append(want, line)
			tw.WriteLine([]byte(line))
		}
		tw.Close()
		r, _ := fs.Open("/f")
		size := r.Size()
		c := int64(cut) % (size + 1)
		var got []string
		for _, rng := range [][2]int64{{0, c}, {c, size}} {
			lr := NewLineReader(r, rng[0], rng[1])
			for {
				line, _, ok := lr.Next()
				if !ok {
					break
				}
				got = append(got, string(line))
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadTextRows(t *testing.T) {
	fs := dfs.New(64)
	s := meterSchema()
	rows := sampleRows(50)
	if err := WriteTextRows(fs, "/tbl/p0", rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTextRows(fs, "/tbl/p0", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if Compare(got[i][c], rows[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, c, got[i][c], rows[i][c])
			}
		}
	}
}

func TestRCFileRoundTrip(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(100)
	offsets, err := WriteRCRows(fs, "/tbl/rc0", s, rows, 16)
	if err != nil {
		t.Fatal(err)
	}
	if wantGroups := (100 + 15) / 16; len(offsets) != wantGroups {
		t.Errorf("got %d groups, want %d", len(offsets), wantGroups)
	}
	got, err := ReadRCRows(fs, "/tbl/rc0", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if Compare(got[i][c], rows[i][c]) != 0 {
				t.Fatalf("row %d col %d mismatch", i, c)
			}
		}
	}
}

func TestRCReadGroupAt(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(60)
	offsets, err := WriteRCRows(fs, "/rc", s, rows, 25)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("/rc")
	g, err := ReadGroupAt(r, offsets[1])
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 25 {
		t.Errorf("middle group rows = %d, want 25", g.Rows)
	}
	decoded, err := g.DecodeRows(s)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0][0].I != rows[25][0].I {
		t.Errorf("group 1 first row userId = %d, want %d", decoded[0][0].I, rows[25][0].I)
	}
	// Column access matches row-major values.
	col := g.Column(3)
	if len(col) != 25 {
		t.Fatalf("column len = %d", len(col))
	}
	f, _ := ParseValue(KindFloat64, col[3])
	if math.Abs(f.F-rows[28][3].F) > 1e-12 {
		t.Errorf("column value = %v, want %v", f.F, rows[28][3].F)
	}
}

func TestRCBadMagic(t *testing.T) {
	fs := dfs.New(64)
	fs.WriteFile("/junk", []byte("this is not an rcfile"))
	r, _ := fs.Open("/junk")
	if _, err := ReadGroupAt(r, 0); err == nil {
		t.Error("expected magic error")
	}
}

// Property: RCFile round-trips random numeric tables of any shape.
func TestRCFileRoundTripProperty(t *testing.T) {
	f := func(vals []int64, groupRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSchema(Column{"a", KindInt64}, Column{"b", KindFloat64})
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = Row{Int64(v), Float64(float64(v) / 3.0)}
		}
		fs := dfs.New(1 << 20)
		gr := int(groupRaw%20) + 1
		if _, err := WriteRCRows(fs, "/f", s, rows, gr); err != nil {
			return false
		}
		got, err := ReadRCRows(fs, "/f", s)
		if err != nil || len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if got[i][0].I != rows[i][0].I {
				return false
			}
			if math.Abs(got[i][1].F-rows[i][1].F) > 1e-12*math.Abs(rows[i][1].F) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
