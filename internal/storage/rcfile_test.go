package storage

import (
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// TestRCFileEmptyTable: a table with zero rows writes no groups and reads
// back as no rows, with empty (but present) side metadata.
func TestRCFileEmptyTable(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	offsets, err := WriteRCRows(fs, "/tbl/empty", s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 0 {
		t.Fatalf("empty table wrote %d groups", len(offsets))
	}
	got, err := ReadRCRows(fs, "/tbl/empty", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty table read %d rows", len(got))
	}
	idx, err := ReadGroupIndex(fs, "/tbl/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 0 {
		t.Fatalf("group index has %d entries", len(idx))
	}
	stats, err := ReadColStats(fs, "/tbl/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 0 {
		t.Fatalf("column stats have %d entries", len(stats))
	}
	r, _ := fs.Open("/tbl/empty")
	rc := NewRCReader(r, 0, r.Size())
	if _, ok, err := rc.Next(); ok || err != nil {
		t.Fatalf("reader on empty file: ok=%v err=%v", ok, err)
	}
}

// TestRCFilePartialFinalGroup: rows % groupRows != 0 leaves a short final
// group whose recorded stats and decoded rows stay consistent.
func TestRCFilePartialFinalGroup(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(10)
	offsets, err := WriteRCRows(fs, "/tbl/partial", s, rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 3 {
		t.Fatalf("got %d groups, want 3 (4+4+2)", len(offsets))
	}
	stats, err := ReadColStats(fs, "/tbl/partial")
	if err != nil {
		t.Fatal(err)
	}
	if got := []int{stats[0].Rows, stats[1].Rows, stats[2].Rows}; got[0] != 4 || got[1] != 4 || got[2] != 2 {
		t.Fatalf("group row counts = %v, want [4 4 2]", got)
	}
	r, _ := fs.Open("/tbl/partial")
	g, err := ReadGroupAt(r, offsets[2])
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 2 {
		t.Fatalf("final group rows = %d, want 2", g.Rows)
	}
	decoded, err := g.DecodeRows(s)
	if err != nil {
		t.Fatal(err)
	}
	for c := range rows[9] {
		if Compare(decoded[1][c], rows[9][c]) != 0 {
			t.Fatalf("final row col %d mismatch: %v vs %v", c, decoded[1][c], rows[9][c])
		}
	}
	// The recorded stats reproduce the group's encoded size exactly.
	if stats[2].EncodedSize() != g.Size {
		t.Errorf("EncodedSize = %d, group size = %d", stats[2].EncodedSize(), g.Size)
	}
	got, err := ReadRCRows(fs, "/tbl/partial", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip read %d rows, want %d", len(got), len(rows))
	}
}

// TestRCFileProjectionReadsFewerBytes: fetching a single column's payload
// must cost strictly fewer logical bytes than a full-row read, match the
// GroupStat prediction exactly, and still decode the projected values
// correctly (with zero placeholders elsewhere).
func TestRCFileProjectionReadsFewerBytes(t *testing.T) {
	fs := dfs.New(1 << 20)
	s := meterSchema()
	rows := sampleRows(64)
	offsets, err := WriteRCRows(fs, "/tbl/proj", s, rows, 16)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ReadColStats(fs, "/tbl/proj")
	if err != nil {
		t.Fatal(err)
	}
	project := make([]bool, s.Len())
	project[3] = true // powerConsumed only

	r, _ := fs.Open("/tbl/proj")
	var fullBytes, projBytes int64
	for gi, off := range offsets {
		gFull, readFull, err := ReadGroupProjected(r, off, nil)
		if err != nil {
			t.Fatal(err)
		}
		gProj, readProj, err := ReadGroupProjected(r, off, project)
		if err != nil {
			t.Fatal(err)
		}
		fullBytes += readFull
		projBytes += readProj
		if readFull != gFull.Size || readFull != stats[gi].EncodedSize() {
			t.Fatalf("group %d: full read %d, size %d, stat %d", gi, readFull, gFull.Size, stats[gi].EncodedSize())
		}
		if readProj != stats[gi].ProjectedSize(project) {
			t.Fatalf("group %d: projected read %d, stat predicts %d", gi, readProj, stats[gi].ProjectedSize(project))
		}
		full, err := gFull.DecodeRows(s)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := gProj.DecodeRowsProjected(s, project)
		if err != nil {
			t.Fatal(err)
		}
		for i := range full {
			if Compare(full[i][3], proj[i][3]) != 0 {
				t.Fatalf("group %d row %d: projected col differs: %v vs %v", gi, i, proj[i][3], full[i][3])
			}
			if Compare(proj[i][0], ZeroValue(KindInt64)) != 0 {
				t.Fatalf("group %d row %d: unprojected col not zero: %v", gi, i, proj[i][0])
			}
		}
	}
	if projBytes >= fullBytes {
		t.Fatalf("projection did not save bytes: %d >= %d", projBytes, fullBytes)
	}
}

// TestSegmentWriterCutAlignsSlices drives the format-agnostic writer the
// way the DGFIndex build reducer does — Cut at every slice boundary — and
// checks that each recorded [start, end) range reads back exactly its own
// records in both formats.
func TestSegmentWriterCutAlignsSlices(t *testing.T) {
	s := meterSchema()
	rows := sampleRows(30)
	batches := [][]Row{rows[0:7], rows[7:19], rows[19:30]}

	for _, format := range []Format{TextFile, RCFile} {
		fs := dfs.New(1 << 20)
		sw, err := NewSegmentWriter(fs, "/seg/data", s, format, 5)
		if err != nil {
			t.Fatal(err)
		}
		type span struct{ start, end int64 }
		var spans []span
		var line []byte
		for _, batch := range batches {
			start := sw.Offset()
			for _, row := range batch {
				line = AppendTextRow(line[:0], row)
				if err := sw.WriteRecord(line[:len(line)-1]); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Cut(); err != nil {
				t.Fatal(err)
			}
			spans = append(spans, span{start, sw.Offset()})
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}

		var groupOffsets []int64
		if format == RCFile {
			groupOffsets, err = ReadGroupIndex(fs, "/seg/data")
			if err != nil {
				t.Fatal(err)
			}
			// Cut boundaries must coincide with row-group starts.
			isBoundary := map[int64]bool{}
			for _, off := range groupOffsets {
				isBoundary[off] = true
			}
			for i, sp := range spans[1:] {
				if !isBoundary[sp.start] {
					t.Fatalf("%v: slice %d start %d is not a group boundary %v", format, i+1, sp.start, groupOffsets)
				}
			}
		}
		r, _ := fs.Open("/seg/data")
		for bi, sp := range spans {
			sr := NewSegmentReader(r, s, format, sp.start, sp.end, SegmentOptions{GroupOffsets: groupOffsets})
			var got []Row
			for {
				rec, ok, err := sr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				row := rec.Row
				if row == nil {
					row, err = DecodeTextRow(s, string(rec.Line))
					if err != nil {
						t.Fatal(err)
					}
				}
				got = append(got, row)
			}
			if len(got) != len(batches[bi]) {
				t.Fatalf("%v: slice %d read %d rows, want %d", format, bi, len(got), len(batches[bi]))
			}
			for i := range got {
				for c := range got[i] {
					if Compare(got[i][c], batches[bi][i][c]) != 0 {
						t.Fatalf("%v: slice %d row %d col %d mismatch", format, bi, i, c)
					}
				}
			}
		}
	}
}
