package storage

import (
	"fmt"
	"sort"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
)

// This file defines the storage-format-agnostic segment abstraction the
// index I/O path is built on. A "segment" is a byte range of one data file
// addressed at the format's natural record granularity: the line offset for
// TextFile, the row-group offset plus in-group row position for RCFile.
// Index builders write through a SegmentWriter and record slice boundaries
// from Offset/Cut; index-guided reads go through a SegmentReader, which for
// RCFile opens only the row groups inside the segment and — with a
// projection pushed down — fetches only the referenced columns' payloads.

// SegmentRecord is one record delivered by a SegmentReader. Text formats
// fill Line (the encoded record); columnar formats fill Row (the decoded,
// possibly projected record). Offset and RowInGroup locate the record at the
// format's granularity.
type SegmentRecord struct {
	// Line is the delimited text rendering (TextFile; nil for RCFile).
	Line []byte
	// Row is the decoded record (RCFile; nil for TextFile). Cells of
	// columns excluded by the reader's projection hold zero values.
	Row Row
	// Batch is one whole decoded row group (RCFile vectorised mode; nil
	// otherwise). The reader reuses the batch across groups, so consumers
	// must finish with it before calling Next again.
	Batch *ColumnBatch
	// Offset is the record position Hive's indexes would record: the line
	// start for TextFile, the row-group start for RCFile.
	Offset int64
	// RowInGroup is the record's position within its row group (RCFile).
	RowInGroup int
}

// GroupSkipper is implemented by readers that can prune whole row groups
// (zone maps / bitmap sidecars); GroupsSkipped counts the pruned groups.
type GroupSkipper interface {
	GroupsSkipped() int64
}

// SegmentReader streams the records of one byte range of a data file.
type SegmentReader interface {
	// Next returns the next record; ok is false at segment end.
	Next() (rec SegmentRecord, ok bool, err error)
	// BytesRead is the logical byte volume fetched so far (projected
	// column payloads only for columnar formats).
	BytesRead() int64
}

// SegmentOptions tunes how a segment's boundaries and columns are read.
type SegmentOptions struct {
	// SkipFirst and InclusiveEnd select Hadoop's text split boundary rules
	// for edges that are arbitrary byte cuts (TextFile only; RCFile
	// ownership is always "group starts inside the range").
	SkipFirst    bool
	InclusiveEnd bool
	// Project keeps only the flagged columns' payloads (RCFile only; nil
	// reads everything).
	Project []bool
	// GroupOffsets lists the file's row-group start offsets (RCFile only;
	// loaded once per file via ReadGroupIndex and shared by the file's
	// segments).
	GroupOffsets []int64
	// Vector switches the RCFile reader to vectorised delivery: one record
	// per row group with Batch set (Row nil), columns decoded into reusable
	// typed vectors.
	Vector bool
	// SkipGroup, when non-nil, is consulted before each row group is
	// fetched (RCFile only); a true return drops the group without reading
	// its payloads — the zone-map/bitmap pruning hook.
	SkipGroup func(offset int64) bool
}

// NewSegmentReader opens the records of [start, end) of file r in the given
// format. The schema is required for RCFile decoding and ignored for
// TextFile.
func NewSegmentReader(r *dfs.FileReader, schema *Schema, format Format, start, end int64, opts SegmentOptions) SegmentReader {
	if format == RCFile {
		// Own the groups starting inside [start, end); a clipped edge can
		// fall mid-group, in which case the group belongs to the segment
		// that contains its start offset.
		offs := opts.GroupOffsets
		lo := sort.Search(len(offs), func(i int) bool { return offs[i] >= start })
		hi := sort.Search(len(offs), func(i int) bool { return offs[i] >= end })
		sr := &rcSegmentReader{
			r:       r,
			schema:  schema,
			offsets: offs[lo:hi],
			project: opts.Project,
			skip:    opts.SkipGroup,
		}
		if opts.Vector {
			sr.batch = NewColumnBatch(schema)
		}
		return sr
	}
	return &textSegmentReader{lr: NewLineReaderOpts(r, start, end, opts.SkipFirst, opts.InclusiveEnd)}
}

type textSegmentReader struct {
	lr *LineReader
}

func (t *textSegmentReader) Next() (SegmentRecord, bool, error) {
	line, off, ok := t.lr.Next()
	if !ok {
		return SegmentRecord{}, false, nil
	}
	return SegmentRecord{Line: line, Offset: off}, true, nil
}

func (t *textSegmentReader) BytesRead() int64 { return t.lr.BytesRead() }

type rcSegmentReader struct {
	r       *dfs.FileReader
	schema  *Schema
	offsets []int64
	project []bool
	skip    func(offset int64) bool
	batch   *ColumnBatch // non-nil selects vectorised delivery

	next      int // next index into offsets
	group     *RowGroup
	rows      []Row
	nextRow   int
	bytesRead int64
	skipped   int64
}

func (t *rcSegmentReader) Next() (SegmentRecord, bool, error) {
	for {
		if t.group != nil && t.nextRow < len(t.rows) {
			i := t.nextRow
			t.nextRow++
			return SegmentRecord{Row: t.rows[i], Offset: t.group.Offset, RowInGroup: i}, true, nil
		}
		if t.next >= len(t.offsets) {
			return SegmentRecord{}, false, nil
		}
		off := t.offsets[t.next]
		t.next++
		if t.skip != nil && t.skip(off) {
			t.skipped++
			continue
		}
		if t.batch != nil {
			read, err := ReadGroupColumns(t.r, off, t.schema, t.project, t.batch)
			if err != nil {
				return SegmentRecord{}, false, err
			}
			t.bytesRead += read
			return SegmentRecord{Batch: t.batch, Offset: off}, true, nil
		}
		g, read, err := ReadGroupProjected(t.r, off, t.project)
		if err != nil {
			return SegmentRecord{}, false, err
		}
		rows, err := g.DecodeRowsProjected(t.schema, t.project)
		if err != nil {
			return SegmentRecord{}, false, err
		}
		t.bytesRead += read
		t.group, t.rows, t.nextRow = g, rows, 0
	}
}

func (t *rcSegmentReader) BytesRead() int64 { return t.bytesRead }

// GroupsSkipped returns how many row groups the SkipGroup hook pruned.
func (t *rcSegmentReader) GroupsSkipped() int64 { return t.skipped }

// SegmentWriter writes the encoded records of one data file sequentially and
// exposes positions at the format's slice granularity, so one index-build
// reducer works for every storage format.
type SegmentWriter interface {
	// WriteRecord appends one encoded record (a delimited text line
	// without the trailing newline). Columnar writers parse it back into a
	// row against the schema.
	WriteRecord(line []byte) error
	// Offset is the position the next record will occupy: the byte offset
	// of its line for TextFile, the start offset of its row group for
	// RCFile.
	Offset() int64
	// Cut forces the next record onto a fresh addressable position so a
	// slice boundary can fall exactly here: it flushes the pending row
	// group for RCFile and is a no-op for TextFile, where every line
	// already starts an addressable position.
	Cut() error
	// Close flushes the data and any side metadata (group index and column
	// statistics for RCFile).
	Close() error
}

// SegmentWriterOptions tunes optional side metadata a segment writer emits.
type SegmentWriterOptions struct {
	// BitmapCols lists the column indices to build per-group value bitmaps
	// for (RCFile only; persisted as a "_bitmaps" sidecar on Close).
	BitmapCols []int
	// GroupBytes switches RCFile row-group sizing to a byte budget measured
	// from the incoming rows' column widths; Cut still lands slice
	// boundaries exactly, and the resulting variable group boundaries are
	// persisted in "_groups" as always. 0 keeps row-count sizing.
	GroupBytes int64
	// DisableEncoding writes plain-text row groups even where dictionary or
	// run-length encoding would be smaller (baselines, compat tests).
	DisableEncoding bool
}

// BitmapOverflowReporter is implemented by segment writers that can report,
// after Close, which bitmap-tracked columns were dropped for exceeding
// BitmapCardinalityCap.
type BitmapOverflowReporter interface {
	BitmapOverflows() []int
}

// NewSegmentWriter creates the file at path and returns a writer for the
// format. groupRows sizes RCFile row groups (<= 0 selects the default).
func NewSegmentWriter(fs *dfs.FS, path string, schema *Schema, format Format, groupRows int) (SegmentWriter, error) {
	return NewSegmentWriterOpts(fs, path, schema, format, groupRows, SegmentWriterOptions{})
}

// NewSegmentWriterOpts is NewSegmentWriter with side-metadata options.
func NewSegmentWriterOpts(fs *dfs.FS, path string, schema *Schema, format Format, groupRows int, opts SegmentWriterOptions) (SegmentWriter, error) {
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if format == RCFile {
		rw := NewRCWriter(w, schema, groupRows)
		rw.TrackBitmaps(opts.BitmapCols)
		if opts.GroupBytes > 0 {
			rw.SetGroupBytes(opts.GroupBytes)
		}
		if opts.DisableEncoding {
			rw.DisableEncoding()
		}
		return &rcSegmentWriter{fs: fs, path: path, schema: schema, rw: rw}, nil
	}
	return &textSegmentWriter{tw: NewTextWriter(w)}, nil
}

type textSegmentWriter struct {
	tw *TextWriter
}

func (t *textSegmentWriter) WriteRecord(line []byte) error { return t.tw.WriteLine(line) }
func (t *textSegmentWriter) Offset() int64                 { return t.tw.Offset() }
func (t *textSegmentWriter) Cut() error                    { return nil }
func (t *textSegmentWriter) Close() error                  { return t.tw.Close() }

type rcSegmentWriter struct {
	fs     *dfs.FS
	path   string
	schema *Schema
	rw     *RCWriter
}

func (t *rcSegmentWriter) WriteRecord(line []byte) error {
	row, err := DecodeTextRow(t.schema, string(line))
	if err != nil {
		return fmt.Errorf("storage: segment writer %s: %w", t.path, err)
	}
	return t.rw.WriteRow(row)
}

func (t *rcSegmentWriter) Offset() int64 { return t.rw.Offset() }
func (t *rcSegmentWriter) Cut() error    { return t.rw.Flush() }

// BitmapOverflows reports the bitmap columns the writer dropped for
// exceeding the cardinality cap.
func (t *rcSegmentWriter) BitmapOverflows() []int { return t.rw.BitmapOverflows() }

func (t *rcSegmentWriter) Close() error {
	if err := t.rw.Close(); err != nil {
		return err
	}
	if err := WriteGroupIndex(t.fs, t.path, t.rw.GroupOffsets()); err != nil {
		return err
	}
	if err := WriteColStats(t.fs, t.path, t.rw.GroupStats()); err != nil {
		return err
	}
	if sc, ok := t.rw.BitmapSidecar(); ok {
		return WriteBitmapSidecar(t.fs, t.path, sc)
	}
	return nil
}
