package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is one experiment's output: a table in the shape of the paper's
// corresponding table or figure, plus notes on paper-vs-measured.
type Report struct {
	ID       string
	Title    string
	PaperRef string
	Header   []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the report as an aligned text table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s (%s) ===\n", r.ID, r.Title, r.PaperRef)
	// Column widths accommodate the widest cell, including ragged rows
	// longer than the header.
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(w, "%-*s", width, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteMarkdown renders the report as a Markdown table (EXPERIMENTS.md).
func (r *Report) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s (%s)\n\n", r.ID, r.Title, r.PaperRef)
	fmt.Fprintf(w, "| %s |\n", strings.Join(r.Header, " | "))
	seps := make([]string, len(r.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "*Note: %s*\n\n", n)
	}
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(*Env) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Get finds an experiment by id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// formatting helpers shared by the experiments

func secs(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func bytesHuman(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func count(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func speedup(base, v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/v)
}
