// Package bench reproduces every table and figure of the paper's evaluation
// (Section 5) plus the ablations called out in DESIGN.md. Each experiment
// builds on the shared Env: warehouses holding the meter table with the
// three DGFIndex splitting policies (Large/Medium/Small userId intervals),
// an RCFile copy with Compact indexes, a loaded HadoopDB cluster, and a
// TPC-H lineitem warehouse.
//
// The generated datasets are laptop-scale samples of the paper's (1 TB meter
// data, 518 GB lineitem); cluster.Config.ScaleFactor rescales job volumes to
// the paper's deployment so that simulated seconds are comparable in shape
// to the paper's figures. Grid-cell counts and key-value op volumes are NOT
// scaled: they depend on the splitting policy rather than the data volume
// (the paper's core point), and the interval counts are chosen per Scale so
// that rows-per-GFU stays in the regime where the Large/Medium/Small
// trade-off of the paper's figures is visible.
package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/hadoopdb"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

// Paper-deployment data volumes (Section 5.2), used to derive ScaleFactor.
const (
	paperMeterBytes = int64(1) << 40         // ~1 TB TextFile meter data
	paperTPCHBytes  = 518 * (int64(1) << 30) // ~518 GB TextFile lineitem
)

// Scale sizes the generated datasets and grids.
type Scale struct {
	MeterUsers     int
	Regions        int
	Days           int
	ReadingsPerDay int
	OtherMetrics   int
	TPCHRows       int
	// BlockSize of the model filesystem (bytes).
	BlockSize int64
	// RowGroupRows for RCFile tables.
	RowGroupRows int
	// IntervalsL/M/S are the userId interval counts of the three splitting
	// policies. The paper uses 100 / 1000 / 10000 on 11 G records (3.3 M
	// records per Small GFU); the defaults keep the same ordering but scale
	// the counts to the generated data so that rows-per-GFU stays in a
	// regime where the Large/Medium/Small trade-off is visible.
	IntervalsL, IntervalsM, IntervalsS int
	// HadoopDB topology (the paper: 28 nodes x 38 chunks).
	HDBNodes, HDBChunks int
}

// DefaultScale is the dgfbench default: ~600 k meter records, 500 k
// lineitem rows.
func DefaultScale() Scale {
	return Scale{
		MeterUsers:     20000,
		Regions:        11,
		Days:           30,
		ReadingsPerDay: 1,
		OtherMetrics:   4,
		TPCHRows:       500000,
		BlockSize:      1 << 21, // 2 MB blocks keep split counts realistic
		RowGroupRows:   512,
		IntervalsL:     10,
		IntervalsM:     100,
		IntervalsS:     500,
		HDBNodes:       28,
		HDBChunks:      38,
	}
}

// TestScale balances fidelity against test runtime: 30 days keep the
// day-aligned grid geometry of the real workload while the user population
// is a quarter of DefaultScale's.
func TestScale() Scale {
	return Scale{
		MeterUsers:     8000,
		Regions:        11,
		Days:           30,
		ReadingsPerDay: 1,
		OtherMetrics:   2,
		TPCHRows:       120000,
		BlockSize:      1 << 20,
		RowGroupRows:   512,
		IntervalsL:     8,
		IntervalsM:     80,
		IntervalsS:     400,
		HDBNodes:       28,
		HDBChunks:      8,
	}
}

// SmallScale keeps unit tests and -short benchmarks fast.
func SmallScale() Scale {
	return Scale{
		MeterUsers:     2000,
		Regions:        11,
		Days:           10,
		ReadingsPerDay: 1,
		OtherMetrics:   2,
		TPCHRows:       40000,
		BlockSize:      1 << 18,
		RowGroupRows:   256,
		IntervalsL:     5,
		IntervalsM:     25,
		IntervalsS:     100,
		HDBNodes:       8,
		HDBChunks:      6,
	}
}

// Env lazily builds and caches the experiment fixtures.
type Env struct {
	Scale Scale
	Base  *cluster.Config

	mu    sync.Mutex
	meter *meterEnv
	tpch  *tpchEnv
}

// NewEnv creates an experiment environment.
func NewEnv(scale Scale) *Env {
	return &Env{Scale: scale, Base: cluster.Default()}
}

// meterEnv bundles all meter-data fixtures.
type meterEnv struct {
	cfg  workload.MeterConfig
	rows []storage.Row
	sf   float64

	// Warehouses with DGFIndex under the three splitting policies.
	WL, WM, WS *hive.Warehouse
	dgfBuild   map[string]*dgf.BuildStats // L/M/S build stats
	// RCFile warehouse with the Compact-2D index (regionId, ts).
	WC       *hive.Warehouse
	compact2 *hiveindex.Index
	c2Sec    float64
	// Plain TextFile warehouse for the ScanTable baseline.
	WScan *hive.Warehouse
	// HadoopDB baseline.
	HDB *hadoopdb.Cluster
}

// tpchEnv bundles the lineitem fixtures.
type tpchEnv struct {
	cfg  workload.TPCHConfig
	rows []storage.Row
	sf   float64

	WDgf     *hive.Warehouse
	dgfBuild *dgf.BuildStats
	WC       *hive.Warehouse // RCFile + Compact-2D + Compact-3D
	compact2 *hiveindex.Index
	compact3 *hiveindex.Index
	c2Sec    float64
	c3Sec    float64
}

// MeterSQL is the DDL of the meter table at this scale.
func meterDDL(otherMetrics int, format string) string {
	ddl := "CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double"
	for i := 0; i < otherMetrics; i++ {
		ddl += fmt.Sprintf(", pate%d double", i+1)
	}
	return ddl + ") STORED AS " + format
}

// Meter builds (once) and returns the meter fixtures.
func (e *Env) Meter() (*meterEnv, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.meter != nil {
		return e.meter, nil
	}
	s := e.Scale
	cfg := workload.MeterConfig{
		Users:          s.MeterUsers,
		Regions:        s.Regions,
		Days:           s.Days,
		ReadingsPerDay: s.ReadingsPerDay,
		OtherMetrics:   s.OtherMetrics,
		Start:          time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC),
		Seed:           20121201,
	}
	m := &meterEnv{cfg: cfg, rows: cfg.AllRows(), dgfBuild: map[string]*dgf.BuildStats{}}

	// Data-volume scale factor: paper bytes over generated bytes.
	var genBytes int64
	for _, r := range m.rows[:min(len(m.rows), 1000)] {
		genBytes += int64(len(storage.EncodeTextRow(r)) + 1)
	}
	genBytes = genBytes * int64(len(m.rows)) / int64(min(len(m.rows), 1000))
	m.sf = float64(paperMeterBytes) / float64(genBytes)
	clusterCfg := e.Base.Scaled(m.sf)

	// One warehouse per DGFIndex splitting policy.
	for _, v := range []struct {
		name      string
		intervals int
		dst       **hive.Warehouse
	}{
		{"L", s.IntervalsL, &m.WL},
		{"M", s.IntervalsM, &m.WM},
		{"S", s.IntervalsS, &m.WS},
	} {
		w := hive.NewWarehouse(dfs.New(s.BlockSize), clusterCfg, "/warehouse")
		if err := loadMeter(w, cfg, m.rows); err != nil {
			return nil, err
		}
		t, _ := w.Table("meterdata")
		userInterval := (s.MeterUsers + v.intervals - 1) / v.intervals
		if userInterval < 1 {
			userInterval = 1
		}
		spec, err := dgf.ParseIdxProperties("idx_dgf_"+v.name, []string{"regionId", "userId", "ts"}, t.Schema,
			map[string]string{
				"regionId":   "1_1",
				"userId":     fmt.Sprintf("1_%d", userInterval),
				"ts":         "2012-12-01_1d",
				"precompute": "sum(powerConsumed);count(*)",
			})
		if err != nil {
			return nil, err
		}
		st, err := w.BuildDgfIndex(t, spec)
		if err != nil {
			return nil, err
		}
		m.dgfBuild[v.name] = st
		*v.dst = w
	}

	// RCFile warehouse with Compact-2D (regionId, ts), per Section 5.3.1.
	m.WC = hive.NewWarehouse(dfs.New(s.BlockSize), clusterCfg, "/warehouse")
	if _, err := m.WC.Exec(meterDDL(s.OtherMetrics, "RCFILE")); err != nil {
		return nil, err
	}
	tc, _ := m.WC.Table("meterdata")
	tc.RowGroupRows = s.RowGroupRows
	if err := loadMeterRows(m.WC, tc, m.rows); err != nil {
		return nil, err
	}
	if err := loadUserInfo(m.WC, cfg); err != nil {
		return nil, err
	}
	ix, sec, err := m.WC.BuildHiveIndexStats(tc, "idx_compact2", hiveindex.Compact,
		[]string{"regionId", "ts"}, hiveindex.RCFile)
	if err != nil {
		return nil, err
	}
	m.compact2, m.c2Sec = ix, sec

	// Plain TextFile warehouse: the ScanTable baseline.
	m.WScan = hive.NewWarehouse(dfs.New(s.BlockSize), clusterCfg, "/warehouse")
	if err := loadMeter(m.WScan, cfg, m.rows); err != nil {
		return nil, err
	}

	// HadoopDB, partitioned by userId with a (userId, regionId, ts) index.
	hcfg := hadoopdb.DefaultConfig()
	hcfg.Nodes = s.HDBNodes
	hcfg.ChunksPerNode = s.HDBChunks
	hcfg.ScaleFactor = m.sf
	hdb, err := hadoopdb.Load(hcfg, workload.MeterSchema(s.OtherMetrics),
		[]string{"userId", "regionId", "ts"}, m.rows)
	if err != nil {
		return nil, err
	}
	hdb.ReplicateSideTable("userInfo", workload.UserInfoSchema(), cfg.UserInfoRows())
	m.HDB = hdb

	e.meter = m
	return m, nil
}

func loadMeter(w *hive.Warehouse, cfg workload.MeterConfig, rows []storage.Row) error {
	if _, err := w.Exec(meterDDL(cfg.OtherMetrics, "TEXTFILE")); err != nil {
		return err
	}
	t, _ := w.Table("meterdata")
	if err := loadMeterRows(w, t, rows); err != nil {
		return err
	}
	return loadUserInfo(w, cfg)
}

func loadMeterRows(w *hive.Warehouse, t *hive.Table, rows []storage.Row) error {
	return w.LoadRows(t, rows)
}

func loadUserInfo(w *hive.Warehouse, cfg workload.MeterConfig) error {
	if _, err := w.Exec(`CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`); err != nil {
		return err
	}
	t, _ := w.Table("userInfo")
	return w.LoadRows(t, cfg.UserInfoRows())
}

// TPCH builds (once) and returns the lineitem fixtures.
func (e *Env) TPCH() (*tpchEnv, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tpch != nil {
		return e.tpch, nil
	}
	s := e.Scale
	cfg := workload.TPCHConfig{Rows: s.TPCHRows, Seed: 19920101}
	t := &tpchEnv{cfg: cfg, rows: cfg.AllLineitemRows()}

	var genBytes int64
	for _, r := range t.rows[:min(len(t.rows), 1000)] {
		genBytes += int64(len(storage.EncodeTextRow(r)) + 1)
	}
	genBytes = genBytes * int64(len(t.rows)) / int64(min(len(t.rows), 1000))
	t.sf = float64(paperTPCHBytes) / float64(genBytes)
	clusterCfg := e.Base.Scaled(t.sf)

	lineitemDDL := `CREATE TABLE lineitem (l_orderkey bigint, l_partkey bigint,
		l_suppkey bigint, l_linenumber bigint, l_quantity double,
		l_extendedprice double, l_discount double, l_tax double,
		l_shipdate timestamp, l_commitdate timestamp)`

	// DGFIndex warehouse: the paper's splitting policy (0.01 / 1.0 /
	// 100 days) with the Q6 product pre-computed.
	t.WDgf = hive.NewWarehouse(dfs.New(s.BlockSize), clusterCfg, "/warehouse")
	if _, err := t.WDgf.Exec(lineitemDDL); err != nil {
		return nil, err
	}
	tl, _ := t.WDgf.Table("lineitem")
	if err := t.WDgf.LoadRows(tl, t.rows); err != nil {
		return nil, err
	}
	spec, err := dgf.ParseIdxProperties("idx_dgf", []string{"l_discount", "l_quantity", "l_shipdate"}, tl.Schema,
		map[string]string{
			"l_discount": "0_0.01",
			"l_quantity": "0_1",
			"l_shipdate": "1992-01-01_100d",
			"precompute": "sum(l_extendedprice*l_discount);count(*)",
		})
	if err != nil {
		return nil, err
	}
	st, err := t.WDgf.BuildDgfIndex(tl, spec)
	if err != nil {
		return nil, err
	}
	t.dgfBuild = st

	// RCFile warehouse with Compact-2D and Compact-3D.
	t.WC = hive.NewWarehouse(dfs.New(s.BlockSize), clusterCfg, "/warehouse")
	if _, err := t.WC.Exec(lineitemDDL + " STORED AS RCFILE"); err != nil {
		return nil, err
	}
	tc, _ := t.WC.Table("lineitem")
	tc.RowGroupRows = s.RowGroupRows
	if err := t.WC.LoadRows(tc, t.rows); err != nil {
		return nil, err
	}
	ix2, sec2, err := t.WC.BuildHiveIndexStats(tc, "idx_compact2", hiveindex.Compact,
		[]string{"l_discount", "l_quantity"}, hiveindex.RCFile)
	if err != nil {
		return nil, err
	}
	ix3, sec3, err := t.WC.BuildHiveIndexStats(tc, "idx_compact3", hiveindex.Compact,
		[]string{"l_discount", "l_quantity", "l_shipdate"}, hiveindex.RCFile)
	if err != nil {
		return nil, err
	}
	t.compact2, t.c2Sec = ix2, sec2
	t.compact3, t.c3Sec = ix3, sec3

	e.tpch = t
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
