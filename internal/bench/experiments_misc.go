package bench

import (
	"fmt"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/localdb"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

func init() {
	register(Experiment{ID: "fig3", Title: "DBMS-X vs HDFS write throughput", PaperRef: "Figure 3", Run: expFig3})
	register(Experiment{ID: "namenode", Title: "Partition directories vs NameNode memory", PaperRef: "Section 2.2", Run: expNameNode})
	register(Experiment{ID: "ablation-precompute", Title: "Pre-computation ablation: cost vs selectivity", PaperRef: "DESIGN.md ablation 1", Run: expAblationPrecompute})
	register(Experiment{ID: "ablation-sliceskip", Title: "Slice-skipping ablation", PaperRef: "DESIGN.md ablation 2", Run: expAblationSliceSkip})
	register(Experiment{ID: "ablation-kvstore", Title: "KV-store vs index-table storage for GFU pairs", PaperRef: "DESIGN.md ablation 4", Run: expAblationKVStore})
}

// --- Figure 3 ---

func expFig3(e *Env) (*Report, error) {
	cfg := workload.MeterConfig{
		Users: 5000, Regions: 11, Days: 2, ReadingsPerDay: 1,
		OtherMetrics: e.Scale.OtherMetrics,
		Start:        time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC),
		Seed:         3,
	}
	rows := cfg.AllRows()
	var bytes int64
	for _, r := range rows {
		bytes += int64(len(storage.EncodeTextRow(r)) + 1)
	}
	model := localdb.DefaultWriteModel()
	withIdx := model.InsertSeconds(int64(len(rows)), bytes, true)
	withoutIdx := model.InsertSeconds(int64(len(rows)), bytes, false)
	mb := float64(bytes) / (1 << 20)

	// HDFS append: executed for real, priced at the device write bandwidth
	// of the pipeline (appends bypass all index maintenance).
	fs := dfs.New(e.Scale.BlockSize)
	w, err := fs.Create("/ingest/meter-period-0")
	if err != nil {
		return nil, err
	}
	tw := storage.NewTextWriter(w)
	wallStart := time.Now()
	for _, row := range rows {
		if err := tw.WriteRow(row); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	wall := time.Since(wallStart)
	hdfsMBps := e.Base.DiskMBps // pipelined appends run at device speed

	r := &Report{ID: "fig3", Title: "DBMS-X vs HDFS write throughput", PaperRef: "Figure 3",
		Header: []string{"system", "modelled MB/s", "paper relation"}}
	r.AddRow("DBMS-X with index", fmt.Sprintf("%.1f", mb/withIdx), "slowest (~2)")
	r.AddRow("DBMS-X without index", fmt.Sprintf("%.1f", mb/withoutIdx), "middle (~6)")
	r.AddRow("HDFS", fmt.Sprintf("%.1f", hdfsMBps), "fastest (~50)")
	r.Notef("ordering with-index < without-index << HDFS reproduces the paper's log-scale Figure 3; local in-process append ran at %.0f MB/s wall speed", mb/wall.Seconds())
	return r, nil
}

// --- NameNode memory (the partition argument of Section 2.2) ---

func expNameNode(e *Env) (*Report, error) {
	fs := dfs.New(e.Scale.BlockSize)
	// Build a 3-dimensional partition layout with 20 values per dimension.
	const vals = 20
	for a := 0; a < vals; a++ {
		for b := 0; b < vals; b++ {
			for c := 0; c < vals; c++ {
				if err := fs.MkdirAll(fmt.Sprintf("/part/a=%d/b=%d/c=%d", a, b, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	st := fs.NameNodeUsage()
	r := &Report{ID: "namenode", Title: "Partition directories vs NameNode memory", PaperRef: "Section 2.2",
		Header: []string{"layout", "directories", "NameNode memory"}}
	r.AddRow(fmt.Sprintf("3 dims x %d values (built)", vals), count(int64(st.Dirs)), bytesHuman(st.MemoryBytes))
	// The paper's example: 3 dims x 100 values = 1M leaf directories.
	analytic := int64(1+100+100*100+100*100*100) * dfs.NameNodeBytesPerObject
	r.AddRow("3 dims x 100 values (analytic)", count(1_010_101), bytesHuman(analytic))
	r.Notef("paper cites ~143MB of NameNode heap for 1M partition directories at 150 B/object — multidimensional partitioning does not scale, motivating an index instead")
	return r, nil
}

// --- Ablations ---

func expAblationPrecompute(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-precompute", Title: "Pre-computation ablation: cost vs selectivity", PaperRef: "DESIGN.md ablation 1",
		Header: []string{"selectivity", "with precompute (s)", "records", "without precompute (s)", "records"}}
	for _, frac := range []float64{0.01, 0.03, 0.05, 0.08, 0.12, 0.20} {
		q := m.cfg.Selective(frac)
		sql := aggSQL(q)
		with, err := m.WM.Exec(sql)
		if err != nil {
			return nil, err
		}
		without, err := m.WM.ExecOpts(sql, hive.ExecOptions{Dgf: dgfNoPrecompute()})
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			secs(with.Stats.SimTotalSec()), count(with.Stats.RecordsRead),
			secs(without.Stats.SimTotalSec()), count(without.Stats.RecordsRead))
	}
	r.Notef("with pre-computation the aggregation cost stays nearly flat as selectivity grows (only the boundary is scanned); without it the cost tracks the query volume — the effect behind Figures 8-10")
	return r, nil
}

func expAblationSliceSkip(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	q := m.cfg.Selective(0.05)
	sql := groupBySQL(q)
	r := &Report{ID: "ablation-sliceskip", Title: "Slice-skipping ablation (5% group-by)", PaperRef: "DESIGN.md ablation 2",
		Header: []string{"mode", "total (s)", "records read", "bytes read", "seeks"}}
	normal, err := m.WM.Exec(sql)
	if err != nil {
		return nil, err
	}
	noskip, err := m.WM.ExecOpts(sql, hive.ExecOptions{Dgf: dgfSliceSkipOff()})
	if err != nil {
		return nil, err
	}
	r.AddRow("slice skipping (paper)", secs(normal.Stats.SimTotalSec()), count(normal.Stats.RecordsRead),
		bytesHuman(normal.Stats.BytesRead), fmt.Sprint(normal.Stats.Seeks))
	r.AddRow("whole chosen splits", secs(noskip.Stats.SimTotalSec()), count(noskip.Stats.RecordsRead),
		bytesHuman(noskip.Stats.BytesRead), fmt.Sprint(noskip.Stats.Seeks))
	r.Notef("sub-split Slice filtering is what separates DGFIndex from split-granularity indexes (paper Section 4.3 step 3): same chosen splits, far fewer records delivered to mappers")
	return r, nil
}

func expAblationKVStore(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-kvstore", Title: "KV-store vs index-table storage for GFU pairs", PaperRef: "DESIGN.md ablation 4",
		Header: []string{"variant", "query", "index access (s)"}}
	for _, v := range m.dgfVariants() {
		t, _ := v.W.Table("meterdata")
		ixSize := t.Dgf.SizeBytes()
		entries := int64(t.Dgf.Entries())
		for _, k := range []selKind{selPoint, sel5} {
			q := m.query(k)
			res, err := v.W.Exec(aggSQL(q))
			if err != nil {
				return nil, err
			}
			// KV access time is what the planner measured minus the fixed
			// job overhead it folds in.
			kvSec := res.Stats.IndexSimSec - v.W.Cluster.JobStartupSec
			if kvSec < 0 {
				kvSec = 0
			}
			r.AddRow("KV store, DGF-"+v.Name, k.String(), secs(kvSec))
			// Alternative: the pairs stored as a Hive table, scanned like a
			// Compact index table before every query.
			scanSec := v.W.Cluster.TaskStartupSec +
				float64(ixSize)/(v.W.Cluster.MapperMBps()*(1<<20)) +
				float64(entries)*v.W.Cluster.RecordCPUUs/1e6
			r.AddRow("index table scan, DGF-"+v.Name, k.String(), secs(scanSec))
		}
	}
	r.Notef("storing GFU pairs in a key-value store lets a query fetch only the region's keys; a table-backed index must be scanned in full first (what Hive's own indexes do) — the paper's Section 4.1 design choice")
	return r, nil
}
