package bench

import (
	"fmt"

	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

func init() {
	register(Experiment{ID: "tab2", Title: "Index size and construction time", PaperRef: "Table 2", Run: expTab2})
	register(Experiment{ID: "tab3", Title: "Records read, aggregation query", PaperRef: "Table 3", Run: expTab3})
	register(Experiment{ID: "fig8", Title: "Aggregation query time, point", PaperRef: "Figure 8", Run: figAgg("fig8", "Figure 8", selPoint)})
	register(Experiment{ID: "fig9", Title: "Aggregation query time, 5% selectivity", PaperRef: "Figure 9", Run: figAgg("fig9", "Figure 9", sel5)})
	register(Experiment{ID: "fig10", Title: "Aggregation query time, 12% selectivity", PaperRef: "Figure 10", Run: figAgg("fig10", "Figure 10", sel12)})
	register(Experiment{ID: "tab4", Title: "Records read, group-by/join query", PaperRef: "Table 4", Run: expTab4})
	register(Experiment{ID: "fig11", Title: "Group-by query time, point", PaperRef: "Figure 11", Run: figGroupBy("fig11", "Figure 11", selPoint)})
	register(Experiment{ID: "fig12", Title: "Group-by query time, 5% selectivity", PaperRef: "Figure 12", Run: figGroupBy("fig12", "Figure 12", sel5)})
	register(Experiment{ID: "fig13", Title: "Group-by query time, 12% selectivity", PaperRef: "Figure 13", Run: figGroupBy("fig13", "Figure 13", sel12)})
	register(Experiment{ID: "fig14", Title: "Join query time, point", PaperRef: "Figure 14", Run: figJoin("fig14", "Figure 14", selPoint)})
	register(Experiment{ID: "fig15", Title: "Join query time, 5% selectivity", PaperRef: "Figure 15", Run: figJoin("fig15", "Figure 15", sel5)})
	register(Experiment{ID: "fig16", Title: "Join query time, 12% selectivity", PaperRef: "Figure 16", Run: figJoin("fig16", "Figure 16", sel12)})
	register(Experiment{ID: "fig17", Title: "Partially specified query", PaperRef: "Figure 17", Run: expFig17})
}

// selectivity selectors shared by the figure experiments.
type selKind int

const (
	selPoint selKind = iota
	sel5
	sel12
)

func (m *meterEnv) query(k selKind) workload.MeterQuery {
	switch k {
	case selPoint:
		return m.cfg.Point()
	case sel5:
		return m.cfg.Selective(0.05)
	default:
		return m.cfg.Selective(0.12)
	}
}

func (k selKind) String() string {
	switch k {
	case selPoint:
		return "point"
	case sel5:
		return "5%"
	default:
		return "12%"
	}
}

// dgfVariants iterates the three splitting policies.
func (m *meterEnv) dgfVariants() []struct {
	Name string
	W    *hive.Warehouse
} {
	return []struct {
		Name string
		W    *hive.Warehouse
	}{
		{"large", m.WL}, {"medium", m.WM}, {"small", m.WS},
	}
}

// --- Table 2 ---

func expTab2(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "tab2", Title: "Index size and construction time", PaperRef: "Table 2",
		Header: []string{"index", "table type", "dims", "size", "build sim-s", "paper size", "paper time"}}

	// Compact-3D on a throwaway RCFile copy (the paper built it once, found
	// the index table as large as the base table, and dropped it).
	w3 := hive.NewWarehouse(dfs.New(e.Scale.BlockSize), e.Base.Scaled(m.sf), "/warehouse")
	if _, err := w3.Exec(meterDDL(e.Scale.OtherMetrics, "RCFILE")); err != nil {
		return nil, err
	}
	t3, _ := w3.Table("meterdata")
	t3.RowGroupRows = e.Scale.RowGroupRows
	// Table 2 compares index sizes in the paper's unencoded RCFile layout;
	// dictionary/RLE encoding would shrink the Compact index table (sorted,
	// low-cardinality key columns) ~4x and distort the comparison against
	// the DGF index, whose KV bytes are unencoded either way.
	t3.DisableEncoding = true
	if err := w3.LoadRows(t3, m.rows); err != nil {
		return nil, err
	}
	ix3, sec3, err := w3.BuildHiveIndexStats(t3, "c3", hiveindex.Compact,
		[]string{"userId", "regionId", "ts"}, hiveindex.RCFile)
	if err != nil {
		return nil, err
	}
	baseSize := w3.TableSizeBytes(t3)
	r.AddRow("Compact", "RCFile", "3", bytesHuman(ix3.SizeBytes(w3.FS)), secs(sec3), "821GB", "23350s")
	r.AddRow("Compact", "RCFile", "2", bytesHuman(m.compact2.SizeBytes(m.WC.FS)), secs(m.c2Sec), "7MB", "1884s")
	for _, v := range []struct{ name, key string }{{"DGF-L", "L"}, {"DGF-M", "M"}, {"DGF-S", "S"}} {
		st := m.dgfBuild[v.key]
		paperSize := map[string]string{"L": "0.94MB", "M": "3MB", "S": "13MB"}[v.key]
		paperTime := map[string]string{"L": "25816s", "M": "25632s", "S": "26027s"}[v.key]
		r.AddRow(v.name, "TextFile", "3", bytesHuman(st.IndexBytes), secs(st.SimTotalSec()), paperSize, paperTime)
	}
	r.Notef("Compact-3D index table is %.0f%% of the %s RCFile base table (paper: ~100%%); DGF index is orders of magnitude smaller",
		100*float64(ix3.SizeBytes(w3.FS))/float64(baseSize), bytesHuman(baseSize))
	r.Notef("DGF construction is slower than Compact-2D construction because the base table is reshuffled (paper Section 5.3.1)")
	return r, nil
}

// --- Table 3 ---

func expTab3(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "tab3", Title: "Records read, aggregation query", PaperRef: "Table 3",
		Header: []string{"index", "point", "5%", "12%"}}
	sels := []selKind{selPoint, sel5, sel12}

	compactCells := make([]string, 0, 3)
	dgfCells := map[string][]string{}
	accurate := make([]string, 0, 3)
	for _, k := range sels {
		q := m.query(k)
		sql := aggSQL(q)
		// Compact.
		res, err := m.WC.Exec(sql)
		if err != nil {
			return nil, err
		}
		compactCells = append(compactCells, count(res.Stats.RecordsRead))
		// DGF variants.
		for _, v := range m.dgfVariants() {
			res, err := v.W.Exec(sql)
			if err != nil {
				return nil, err
			}
			dgfCells[v.Name] = append(dgfCells[v.Name], count(res.Stats.RecordsRead))
		}
		// Accurate.
		var n int64
		for _, row := range m.rows {
			if q.Matches(row) {
				n++
			}
		}
		accurate = append(accurate, count(n))
	}
	r.AddRow(append([]string{"Compact-2D"}, compactCells...)...)
	r.AddRow(append([]string{"DGF-L"}, dgfCells["large"]...)...)
	r.AddRow(append([]string{"DGF-M"}, dgfCells["medium"]...)...)
	r.AddRow(append([]string{"DGF-S"}, dgfCells["small"]...)...)
	r.AddRow(append([]string{"Accurate"}, accurate...)...)
	r.Notef("paper (11G records): Compact reads 169M/4.8G/6.6G; DGF-L 4.3M/68k/100k; DGF-S 2.3M/16k/24k; accurate 26/569M/1.35G")
	r.Notef("with pre-computation DGF reads only boundary GFUs — fewer records than the accurate answer set at 5%%/12%% (as in the paper); at point selectivity there is no inner region so DGF reads whole GFUs")
	return r, nil
}

func aggSQL(q workload.MeterQuery) string {
	return "SELECT sum(powerConsumed) FROM meterdata WHERE " + q.WhereClause()
}

func groupBySQL(q workload.MeterQuery) string {
	return "SELECT ts, sum(powerConsumed) FROM meterdata WHERE " + q.WhereClause() + " GROUP BY ts"
}

func joinSQL(q workload.MeterQuery) string {
	return `INSERT OVERWRITE DIRECTORY '/tmp/result' ` +
		`SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo t2 ON t1.userId=t2.userId WHERE ` +
		q.WhereClause()
}

// --- Figures 8-10 (aggregation query time) ---

func figAgg(id, ref string, k selKind) func(*Env) (*Report, error) {
	return func(e *Env) (*Report, error) {
		m, err := e.Meter()
		if err != nil {
			return nil, err
		}
		q := m.query(k)
		sql := aggSQL(q)
		r := &Report{ID: id, Title: "Aggregation query time, " + k.String(), PaperRef: ref,
			Header: []string{"system", "read index+other (s)", "read data+process (s)", "total (s)", "records", "vs scan"}}

		scanSec, err := addScanRow(r, m, sql)
		if err != nil {
			return nil, err
		}
		for _, v := range m.dgfVariants() {
			res, err := v.W.Exec(sql)
			if err != nil {
				return nil, err
			}
			addQueryRow(r, "DGF-"+v.Name, res, scanSec)
		}
		res, err := m.WC.Exec(sql)
		if err != nil {
			return nil, err
		}
		addQueryRow(r, "Compact-2D", res, scanSec)

		_, hst, err := m.HDB.RangeAgg(q.Ranges(), "powerConsumed", nil)
		if err != nil {
			return nil, err
		}
		r.AddRow("HadoopDB", "-", "-", secs(hst.SimSeconds), count(hst.RowsExamined), speedup(scanSec, hst.SimSeconds))
		r.Notef("paper: DGF 65-78x over scan with flat cost across selectivity (pre-computation); Compact 1.7-26.6x; HadoopDB 1.3-32.2x; scan about 1950 s")
		return r, nil
	}
}

func addScanRow(r *Report, m *meterEnv, sql string) (float64, error) {
	res, err := m.WScan.ExecOpts(sql, hive.ExecOptions{DisableIndexes: true})
	if err != nil {
		return 0, err
	}
	total := res.Stats.SimTotalSec()
	r.AddRow("ScanTable", secs(res.Stats.IndexSimSec), secs(res.Stats.DataSimSec), secs(total),
		count(res.Stats.RecordsRead), "1.0x")
	return total, nil
}

func addQueryRow(r *Report, name string, res *hive.Result, scanSec float64) {
	st := res.Stats
	r.AddRow(name, secs(st.IndexSimSec), secs(st.DataSimSec), secs(st.SimTotalSec()),
		count(st.RecordsRead), speedup(scanSec, st.SimTotalSec()))
}

// --- Table 4 ---

func expTab4(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "tab4", Title: "Records read, group-by/join query", PaperRef: "Table 4",
		Header: []string{"index", "point", "5%", "12%"}}
	sels := []selKind{selPoint, sel5, sel12}
	compactCells := make([]string, 0, 3)
	dgfCells := map[string][]string{}
	accurate := make([]string, 0, 3)
	for _, k := range sels {
		q := m.query(k)
		sql := groupBySQL(q)
		res, err := m.WC.Exec(sql)
		if err != nil {
			return nil, err
		}
		compactCells = append(compactCells, count(res.Stats.RecordsRead))
		for _, v := range m.dgfVariants() {
			res, err := v.W.Exec(sql)
			if err != nil {
				return nil, err
			}
			dgfCells[v.Name] = append(dgfCells[v.Name], count(res.Stats.RecordsRead))
		}
		var n int64
		for _, row := range m.rows {
			if q.Matches(row) {
				n++
			}
		}
		accurate = append(accurate, count(n))
	}
	r.AddRow(append([]string{"Compact-2D"}, compactCells...)...)
	r.AddRow(append([]string{"DGF-L"}, dgfCells["large"]...)...)
	r.AddRow(append([]string{"DGF-M"}, dgfCells["medium"]...)...)
	r.AddRow(append([]string{"DGF-S"}, dgfCells["small"]...)...)
	r.AddRow(append([]string{"Accurate"}, accurate...)...)
	r.Notef("paper: group-by cannot use pre-computation, so DGF reads slightly more than the accurate set (DGF-L 681M vs accurate 569M at 5%%), still far below Compact (4.8G)")
	return r, nil
}

// --- Figures 11-13 (group-by query time) ---

func figGroupBy(id, ref string, k selKind) func(*Env) (*Report, error) {
	return func(e *Env) (*Report, error) {
		m, err := e.Meter()
		if err != nil {
			return nil, err
		}
		q := m.query(k)
		sql := groupBySQL(q)
		r := &Report{ID: id, Title: "Group-by query time, " + k.String(), PaperRef: ref,
			Header: []string{"system", "read index+other (s)", "read data+process (s)", "total (s)", "records", "vs scan"}}
		scanSec, err := addScanRow(r, m, sql)
		if err != nil {
			return nil, err
		}
		for _, v := range m.dgfVariants() {
			res, err := v.W.Exec(sql)
			if err != nil {
				return nil, err
			}
			addQueryRow(r, "DGF-"+v.Name, res, scanSec)
		}
		res, err := m.WC.Exec(sql)
		if err != nil {
			return nil, err
		}
		addQueryRow(r, "Compact-2D", res, scanSec)
		_, hst, err := m.HDB.RangeAgg(q.Ranges(), "powerConsumed", []string{"ts"})
		if err != nil {
			return nil, err
		}
		r.AddRow("HadoopDB", "-", "-", secs(hst.SimSeconds), count(hst.RowsExamined), speedup(scanSec, hst.SimSeconds))
		r.Notef("paper: DGF 2-5x over Compact/HadoopDB; index-read time grows as intervals shrink (more GFU lookups); Compact approaches scan at 12%%")
		return r, nil
	}
}

// --- Figures 14-16 (join query time) ---

func figJoin(id, ref string, k selKind) func(*Env) (*Report, error) {
	return func(e *Env) (*Report, error) {
		m, err := e.Meter()
		if err != nil {
			return nil, err
		}
		q := m.query(k)
		sql := joinSQL(q)
		r := &Report{ID: id, Title: "Join query time, " + k.String(), PaperRef: ref,
			Header: []string{"system", "read index+other (s)", "read data+process (s)", "total (s)", "records", "vs scan"}}
		scanSec, err := addScanRow(r, m, sql)
		if err != nil {
			return nil, err
		}
		for _, v := range m.dgfVariants() {
			res, err := v.W.Exec(sql)
			if err != nil {
				return nil, err
			}
			addQueryRow(r, "DGF-"+v.Name, res, scanSec)
		}
		res, err := m.WC.Exec(sql)
		if err != nil {
			return nil, err
		}
		addQueryRow(r, "Compact-2D", res, scanSec)
		hst, err := m.HDB.RangeJoin(q.Ranges(), "userInfo", "userId", "userId", nil)
		if err != nil {
			return nil, err
		}
		r.AddRow("HadoopDB", "-", "-", secs(hst.SimSeconds), count(hst.RowsExamined), speedup(scanSec, hst.SimSeconds))
		r.Notef("paper: same shape as group-by — DGF 2-5x over both baselines, Compact/HadoopDB at or below scan for 12%%")
		return r, nil
	}
}

// --- Figure 17 (partially specified query) ---

func expFig17(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	// Listing 7's time='2012-12-30' predicate selects a whole collection
	// day; the range form states that without relying on a single midnight
	// reading per day.
	day := m.cfg.Start.AddDate(0, 0, m.cfg.Days-1).Format("2006-01-02")
	next := m.cfg.Start.AddDate(0, 0, m.cfg.Days).Format("2006-01-02")
	sql := fmt.Sprintf("SELECT SUM(powerConsumed) FROM meterdata WHERE regionId=%d AND ts>='%s' AND ts<'%s'",
		m.cfg.Regions, day, next)
	r := &Report{ID: "fig17", Title: "Partially specified query (userId unconstrained)", PaperRef: "Figure 17",
		Header: []string{"system", "interval", "read index+other (s)", "read data+process (s)", "total (s)", "records"}}
	for _, v := range m.dgfVariants() {
		res, err := v.W.Exec(sql)
		if err != nil {
			return nil, err
		}
		st := res.Stats
		r.AddRow("DGF-precompute", v.Name, secs(st.IndexSimSec), secs(st.DataSimSec), secs(st.SimTotalSec()), count(st.RecordsRead))
		resNo, err := v.W.ExecOpts(sql, hive.ExecOptions{Dgf: dgfNoPrecompute()})
		if err != nil {
			return nil, err
		}
		stn := resNo.Stats
		r.AddRow("DGF-noprecompute", v.Name, secs(stn.IndexSimSec), secs(stn.DataSimSec), secs(stn.SimTotalSec()), count(stn.RecordsRead))
	}
	res, err := m.WC.Exec(sql)
	if err != nil {
		return nil, err
	}
	st := res.Stats
	r.AddRow("Compact-2D", "-", secs(st.IndexSimSec), secs(st.DataSimSec), secs(st.SimTotalSec()), count(st.RecordsRead))
	r.Notef("the missing userId dimension is completed from the stored per-dimension min/max (paper Section 5.3.4); paper: DGF 2-4.6x faster than Compact")
	return r, nil
}
