package bench

import (
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/hiveindex"
	"github.com/smartgrid-oss/dgfindex/internal/mapreduce"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

func init() {
	register(Experiment{ID: "tab5", Title: "TPC-H index size and construction time", PaperRef: "Table 5", Run: expTab5})
	register(Experiment{ID: "tab6", Title: "TPC-H records read (Q6)", PaperRef: "Table 6", Run: expTab6})
	register(Experiment{ID: "fig18", Title: "TPC-H Q6 query time", PaperRef: "Figure 18", Run: expFig18})
}

func dgfNoPrecompute() dgf.PlanOptions { return dgf.PlanOptions{DisablePrecompute: true} }

func dgfSliceSkipOff() dgf.PlanOptions { return dgf.PlanOptions{DisableSliceSkip: true} }

func expTab5(e *Env) (*Report, error) {
	t, err := e.TPCH()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "tab5", Title: "TPC-H index size and construction time", PaperRef: "Table 5",
		Header: []string{"index", "table type", "dims", "size", "build sim-s", "paper size", "paper time"}}
	r.AddRow("Compact", "RCFile", "3", bytesHuman(t.compact3.SizeBytes(t.WC.FS)), secs(t.c3Sec), "189GB", "7367s")
	r.AddRow("Compact", "RCFile", "2", bytesHuman(t.compact2.SizeBytes(t.WC.FS)), secs(t.c2Sec), "637MB", "991s")
	r.AddRow("DGFIndex", "TextFile", "3", bytesHuman(t.dgfBuild.IndexBytes), secs(t.dgfBuild.SimTotalSec()), "4.3MB", "10997s")
	lt, _ := t.WC.Table("lineitem")
	r.Notef("RCFile lineitem base table is %s; the 3-dim Compact index approaches it in size, the DGF index stays KB-MB scale",
		bytesHuman(t.WC.TableSizeBytes(lt)))
	return r, nil
}

// q6OnCompact runs Q6 through a specific Compact index via the index API (the
// SQL planner would always pick the most selective index, but Figure 18
// compares both widths).
func q6OnCompact(t *tpchEnv, ix *hiveindex.Index) (indexSec, dataSec float64, records int64, err error) {
	fr, err := ix.Filter(t.WC.Cluster, t.WC.FS, workload.Q6Ranges())
	if err != nil {
		return 0, 0, 0, err
	}
	input, err := ix.BaseInput(t.WC.FS, fr)
	if err != nil {
		return 0, 0, 0, err
	}
	schema := workload.LineitemSchema()
	ranges := workload.Q6Ranges()
	stats, err := mapreduce.Run(t.WC.Cluster, &mapreduce.Job{
		Name:  "q6-" + ix.Name,
		Input: input,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			row, err := storage.DecodeTextRow(schema, string(rec.Data))
			if err != nil {
				return err
			}
			for name, r := range ranges {
				if !r.Contains(row[schema.ColIndex(name)]) {
					return nil
				}
			}
			return nil
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	indexSec = fr.ScanStats.SimTotalSec() + stats.SimStartupSec
	dataSec = stats.SimTotalSec() - stats.SimStartupSec
	return indexSec, dataSec, stats.InputRecords, nil
}

func expTab6(e *Env) (*Report, error) {
	t, err := e.TPCH()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "tab6", Title: "TPC-H records read (Q6)", PaperRef: "Table 6",
		Header: []string{"index", "records read", "paper"}}

	res, err := t.WC.ExecOpts(workload.Q6SQL, hive.ExecOptions{DisableIndexes: true})
	if err != nil {
		return nil, err
	}
	r.AddRow("Whole Table", count(res.Stats.RecordsRead), "4.10G")

	_, _, rec3, err := q6OnCompact(t, t.compact3)
	if err != nil {
		return nil, err
	}
	r.AddRow("Compact-3", count(rec3), "4.10G")
	_, _, rec2, err := q6OnCompact(t, t.compact2)
	if err != nil {
		return nil, err
	}
	r.AddRow("Compact-2", count(rec2), "4.10G")

	// DGFIndex path: the paper's Q6 run reads all query-related GFUs
	// (Table 6 reads slightly more than the accurate set), so the
	// pre-computed product header is disabled here; the ablation
	// experiment shows the header-assisted variant.
	resDgf, err := t.WDgf.ExecOpts(workload.Q6SQL, hive.ExecOptions{Dgf: dgfNoPrecompute()})
	if err != nil {
		return nil, err
	}
	r.AddRow("DGFIndex", count(resDgf.Stats.RecordsRead), "85.4M")

	var accurate int64
	for _, row := range t.rows {
		if workload.Q6Matches(row) {
			accurate++
		}
	}
	r.AddRow("Accurate", count(accurate), "78.0M")
	r.Notef("lineitem rows are uniformly scattered, so Compact filters nothing (every split contains every dimension combination) — the paper's Section 5.4 finding")
	return r, nil
}

func expFig18(e *Env) (*Report, error) {
	t, err := e.TPCH()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig18", Title: "TPC-H Q6 query time", PaperRef: "Figure 18",
		Header: []string{"system", "read index+other (s)", "read data+process (s)", "total (s)", "records", "vs scan"}}

	// The scan baseline reads the RCFile copy — the same bytes the Compact
	// variants scan — so the paper's "Compact slower than scanning" result
	// is measured on equal footing.
	resScan, err := t.WC.ExecOpts(workload.Q6SQL, hive.ExecOptions{DisableIndexes: true})
	if err != nil {
		return nil, err
	}
	scanSec := resScan.Stats.SimTotalSec()
	r.AddRow("ScanTable", secs(resScan.Stats.IndexSimSec), secs(resScan.Stats.DataSimSec), secs(scanSec),
		count(resScan.Stats.RecordsRead), "1.0x")

	resDgf, err := t.WDgf.ExecOpts(workload.Q6SQL, hive.ExecOptions{Dgf: dgfNoPrecompute()})
	if err != nil {
		return nil, err
	}
	addQueryRow(r, "DGFIndex", resDgf, scanSec)

	i2, d2, rec2, err := q6OnCompact(t, t.compact2)
	if err != nil {
		return nil, err
	}
	r.AddRow("Compact-2D", secs(i2), secs(d2), secs(i2+d2), count(rec2), speedup(scanSec, i2+d2))
	i3, d3, rec3, err := q6OnCompact(t, t.compact3)
	if err != nil {
		return nil, err
	}
	r.AddRow("Compact-3D", secs(i3), secs(d3), secs(i3+d3), count(rec3), speedup(scanSec, i3+d3))
	r.Notef("paper: scan 632 s; both Compact variants SLOWER than scanning (index table scan on top of an unfiltered base scan); DGFIndex about 25x faster than Compact")
	return r, nil
}
