package bench

import (
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/dgf"
	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

func init() {
	register(Experiment{
		ID:       "advisor",
		Title:    "Splitting-policy advisor vs hand-picked policies",
		PaperRef: "Section 8 (future work)",
		Run:      expAdvisor,
	})
}

// expAdvisor implements the paper's future work — choosing the splitting
// policy from the data distribution and the query history — and pits the
// advised policy against the hand-picked Large/Medium/Small grids on the
// same mixed workload.
func expAdvisor(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	// The query history: the workload the figures use.
	var history []map[string]gridfile.Range
	for _, k := range []selKind{selPoint, sel5, sel5, sel12} {
		history = append(history, m.query(k).Ranges())
	}

	// Advise from a sample of the data plus the history.
	sampleSize := len(m.rows)
	if sampleSize > 50000 {
		sampleSize = 50000
	}
	tRef, _ := m.WM.Table("meterdata")
	advice, err := dgf.SuggestPolicy(tRef.Schema, []string{"regionId", "userId", "ts"},
		m.rows[:sampleSize], history, dgf.AdvisorConfig{TotalRows: int64(len(m.rows))})
	if err != nil {
		return nil, err
	}

	// Build a warehouse with the advised policy.
	wAdv := hive.NewWarehouse(dfs.New(e.Scale.BlockSize), e.Base.Scaled(m.sf), "/warehouse")
	if err := loadMeter(wAdv, m.cfg, m.rows); err != nil {
		return nil, err
	}
	tAdv, _ := wAdv.Table("meterdata")
	spec := dgf.Spec{Name: "idx_advised", Policy: advice.Policy}
	specPre, err := dgf.ParseAggSpecs("sum(powerConsumed);count(*)")
	if err != nil {
		return nil, err
	}
	spec.Precompute = specPre
	if _, err := wAdv.BuildDgfIndex(tAdv, spec); err != nil {
		return nil, err
	}

	r := &Report{ID: "advisor", Title: "Splitting-policy advisor vs hand-picked policies",
		PaperRef: "Section 8 (future work)",
		Header:   []string{"policy", "index size", "point (s)", "5% (s)", "12% (s)", "records@5%"}}
	variants := append(m.dgfVariants(), struct {
		Name string
		W    *hive.Warehouse
	}{"advised", wAdv})
	for _, v := range variants {
		tb, _ := v.W.Table("meterdata")
		cells := make([]string, 0, 6)
		cells = append(cells, v.Name, bytesHuman(tb.Dgf.SizeBytes()))
		var rec5 int64
		for _, k := range []selKind{selPoint, sel5, sel12} {
			res, err := v.W.Exec(aggSQL(m.query(k)))
			if err != nil {
				return nil, err
			}
			cells = append(cells, secs(res.Stats.SimTotalSec()))
			if k == sel5 {
				rec5 = res.Stats.RecordsRead
			}
		}
		cells = append(cells, count(rec5))
		r.AddRow(cells...)
	}
	r.Notef("advised IDXPROPERTIES: %s (projected %d cells, %.0f rows/GFU)",
		advice.String(), advice.EstimatedCells, advice.EstimatedRowsPerCell)
	r.Notef("the advisor (the paper's stated future work) sizes intervals so a typical historical query spans ~12 cells per dimension under index-size and Slice-population budgets")
	return r, nil
}
