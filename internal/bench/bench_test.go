package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// sharedEnv is built once for the whole test binary.
var sharedEnv = NewEnv(TestScale())

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	exp, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	rep, err := exp.Run(sharedEnv)
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if len(rep.Rows) == 0 {
		t.Fatalf("experiment %s produced no rows", id)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	t.Logf("\n%s", buf.String())
	return rep
}

// cell parses a formatted numeric cell back to float (strips units).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "x"):
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(s, "B"):
		s = s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return f * mult
}

func findRow(t *testing.T, rep *Report, name string) []string {
	t.Helper()
	for _, row := range rep.Rows {
		if row[0] == name {
			return row
		}
	}
	t.Fatalf("%s: no row %q (have %v)", rep.ID, name, rep.Rows)
	return nil
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "tab2", "tab3", "fig8", "fig9", "fig10", "tab4",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"tab5", "tab6", "fig18", "namenode", "advisor", "partition",
		"ablation-precompute", "ablation-sliceskip", "ablation-kvstore",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
}

func TestFig3Shape(t *testing.T) {
	rep := runExp(t, "fig3")
	withIdx := cell(t, findRow(t, rep, "DBMS-X with index")[1])
	withoutIdx := cell(t, findRow(t, rep, "DBMS-X without index")[1])
	hdfs := cell(t, findRow(t, rep, "HDFS")[1])
	if !(withIdx < withoutIdx && withoutIdx < hdfs) {
		t.Errorf("write throughput ordering broken: %v < %v < %v expected", withIdx, withoutIdx, hdfs)
	}
}

func TestTab2Shape(t *testing.T) {
	rep := runExp(t, "tab2")
	c3 := cell(t, findRow(t, rep, "Compact")[3]) // first Compact row is 3-dim
	var dgfSizes []float64
	for _, name := range []string{"DGF-L", "DGF-M", "DGF-S"} {
		dgfSizes = append(dgfSizes, cell(t, findRow(t, rep, name)[3]))
	}
	// Every DGF variant is smaller than the 3-dim Compact index, and the
	// coarser policies are far smaller. (At paper scale the gap is 821 GB
	// vs 13 MB because the Compact index grows with the data while the DGF
	// index is bounded by the grid; the sampled dataset narrows the DGF-S
	// gap but never closes it.)
	for i, s := range dgfSizes {
		if s >= c3 {
			t.Errorf("DGF size %d (%v) not below Compact-3D (%v)", i, s, c3)
		}
	}
	if dgfSizes[0]*20 > c3 || dgfSizes[1]*5 > c3 {
		t.Errorf("coarse DGF policies not far below Compact-3D: %v vs %v", dgfSizes, c3)
	}
	// Smaller intervals -> larger index.
	if !(dgfSizes[0] < dgfSizes[1] && dgfSizes[1] < dgfSizes[2]) {
		t.Errorf("DGF sizes not increasing L<M<S: %v", dgfSizes)
	}
}

func TestTab3Shape(t *testing.T) {
	rep := runExp(t, "tab3")
	for col := 1; col <= 3; col++ {
		compact := cell(t, findRow(t, rep, "Compact-2D")[col])
		dgfL := cell(t, findRow(t, rep, "DGF-L")[col])
		dgfS := cell(t, findRow(t, rep, "DGF-S")[col])
		if dgfL >= compact {
			t.Errorf("col %d: DGF-L reads %v, not below Compact %v", col, dgfL, compact)
		}
		if dgfS > dgfL {
			t.Errorf("col %d: DGF-S reads %v, more than DGF-L %v", col, dgfS, dgfL)
		}
	}
	// At 5%/12% DGF reads fewer records than the accurate answer set
	// (pre-computation answers the inner region from headers).
	for col := 2; col <= 3; col++ {
		accurate := cell(t, findRow(t, rep, "Accurate")[col])
		dgfM := cell(t, findRow(t, rep, "DGF-M")[col])
		if dgfM >= accurate {
			t.Errorf("col %d: DGF-M reads %v, want below accurate %v", col, dgfM, accurate)
		}
	}
}

func TestFigAggShapes(t *testing.T) {
	for _, id := range []string{"fig8", "fig9", "fig10"} {
		rep := runExp(t, id)
		scan := cell(t, findRow(t, rep, "ScanTable")[3])
		for _, sys := range []string{"DGF-large", "DGF-medium", "DGF-small"} {
			total := cell(t, findRow(t, rep, sys)[3])
			if total >= scan {
				t.Errorf("%s: %s (%v s) not faster than scan (%v s)", id, sys, total, scan)
			}
		}
		compact := cell(t, findRow(t, rep, "Compact-2D")[3])
		dgfM := cell(t, findRow(t, rep, "DGF-medium")[3])
		if dgfM >= compact {
			t.Errorf("%s: DGF (%v s) not faster than Compact (%v s)", id, dgfM, compact)
		}
	}
}

func TestAggFlatAcrossSelectivity(t *testing.T) {
	// The headline result: with pre-computation DGF aggregation cost stays
	// nearly flat from point to 12% while Compact degrades steeply.
	repPoint := runExp(t, "fig8")
	rep12 := runExp(t, "fig10")
	dgfPoint := cell(t, findRow(t, repPoint, "DGF-medium")[3])
	dgf12 := cell(t, findRow(t, rep12, "DGF-medium")[3])
	compactPoint := cell(t, findRow(t, repPoint, "Compact-2D")[3])
	compact12 := cell(t, findRow(t, rep12, "Compact-2D")[3])
	dgfGrowth := dgf12 / dgfPoint
	compactGrowth := compact12 / compactPoint
	if dgfGrowth > compactGrowth {
		t.Errorf("DGF grew %.2fx from point to 12%%, Compact %.2fx; DGF should stay flatter",
			dgfGrowth, compactGrowth)
	}
}

func TestTab4Shape(t *testing.T) {
	rep := runExp(t, "tab4")
	for col := 1; col <= 3; col++ {
		compact := cell(t, findRow(t, rep, "Compact-2D")[col])
		dgfM := cell(t, findRow(t, rep, "DGF-M")[col])
		accurate := cell(t, findRow(t, rep, "Accurate")[col])
		if dgfM >= compact {
			t.Errorf("col %d: DGF-M %v not below Compact %v", col, dgfM, compact)
		}
		// Group-by cannot use headers: DGF reads at least the accurate set.
		if dgfM < accurate {
			t.Errorf("col %d: group-by DGF-M read %v, below accurate %v", col, dgfM, accurate)
		}
	}
}

func TestFigGroupByJoinShapes(t *testing.T) {
	for _, id := range []string{"fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		rep := runExp(t, id)
		scan := cell(t, findRow(t, rep, "ScanTable")[3])
		dgfM := cell(t, findRow(t, rep, "DGF-medium")[3])
		compact := cell(t, findRow(t, rep, "Compact-2D")[3])
		if dgfM >= scan {
			t.Errorf("%s: DGF (%v) not below scan (%v)", id, dgfM, scan)
		}
		if dgfM >= compact {
			t.Errorf("%s: DGF (%v) not below Compact (%v)", id, dgfM, compact)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	rep := runExp(t, "fig17")
	// Pre-compute beats no-precompute for the partial query, and both DGF
	// variants beat Compact (paper: 2-4.6x).
	var pre, nopre float64
	for _, row := range rep.Rows {
		if row[0] == "DGF-precompute" && row[1] == "medium" {
			pre = cell(t, row[4])
		}
		if row[0] == "DGF-noprecompute" && row[1] == "medium" {
			nopre = cell(t, row[4])
		}
	}
	compact := cell(t, findRow(t, rep, "Compact-2D")[4])
	if pre > nopre {
		t.Errorf("precompute (%v s) slower than no-precompute (%v s)", pre, nopre)
	}
	if pre >= compact {
		t.Errorf("DGF partial query (%v s) not faster than Compact (%v s)", pre, compact)
	}
}

func TestTPCHShapes(t *testing.T) {
	tab5 := runExp(t, "tab5")
	dgfSize := cell(t, findRow(t, tab5, "DGFIndex")[3])
	c3Size := cell(t, tab5.Rows[0][3])
	// The gap widens with data volume (at paper scale 189GB vs 4.3MB): the
	// Compact index grows with distinct combinations, the DGF index is
	// bounded by the grid. At test scale just require a clear win.
	if dgfSize*1.5 > c3Size {
		t.Errorf("TPC-H DGF index (%v) not clearly below Compact-3D (%v)", dgfSize, c3Size)
	}

	tab6 := runExp(t, "tab6")
	whole := cell(t, findRow(t, tab6, "Whole Table")[1])
	c2 := cell(t, findRow(t, tab6, "Compact-2")[1])
	c3 := cell(t, findRow(t, tab6, "Compact-3")[1])
	dgf := cell(t, findRow(t, tab6, "DGFIndex")[1])
	accurate := cell(t, findRow(t, tab6, "Accurate")[1])
	// Uniform scatter: Compact filters nothing.
	if c2 < whole*0.95 || c3 < whole*0.95 {
		t.Errorf("Compact filtered scattered data: %v/%v of %v", c2, c3, whole)
	}
	if dgf >= whole/4 {
		t.Errorf("DGF read %v of %v, expected strong filtering", dgf, whole)
	}
	if dgf < accurate {
		t.Errorf("DGF (no precompute) read %v, below accurate %v", dgf, accurate)
	}

	fig18 := runExp(t, "fig18")
	scan := cell(t, findRow(t, fig18, "ScanTable")[3])
	dgfSec := cell(t, findRow(t, fig18, "DGFIndex")[3])
	c2Sec := cell(t, findRow(t, fig18, "Compact-2D")[3])
	c3Sec := cell(t, findRow(t, fig18, "Compact-3D")[3])
	if dgfSec >= scan {
		t.Errorf("Q6 via DGF (%v s) not below scan (%v s)", dgfSec, scan)
	}
	// The paper's counterintuitive result: Compact is SLOWER than scanning.
	if c2Sec < scan || c3Sec < scan {
		t.Errorf("Compact (%v / %v s) should not beat scan (%v s) on scattered data", c2Sec, c3Sec, scan)
	}
}

func TestNameNode(t *testing.T) {
	rep := runExp(t, "namenode")
	analytic := cell(t, rep.Rows[1][2])
	if analytic < 100*(1<<20) {
		t.Errorf("analytic NameNode memory %v below the paper's ~143MB", analytic)
	}
}

func TestAblations(t *testing.T) {
	pre := runExp(t, "ablation-precompute")
	// With precompute the last row's cost grows far less than without.
	first, last := pre.Rows[0], pre.Rows[len(pre.Rows)-1]
	withGrowth := cell(t, last[1]) / cell(t, first[1])
	withoutGrowth := cell(t, last[3]) / cell(t, first[3])
	if withGrowth > withoutGrowth {
		t.Errorf("precompute growth %.2fx exceeds no-precompute growth %.2fx", withGrowth, withoutGrowth)
	}

	skip := runExp(t, "ablation-sliceskip")
	with := cell(t, findRow(t, skip, "slice skipping (paper)")[2])
	without := cell(t, findRow(t, skip, "whole chosen splits")[2])
	if with >= without {
		t.Errorf("slice skipping read %v records, whole splits %v; skipping should read less", with, without)
	}

	kv := runExp(t, "ablation-kvstore")
	if len(kv.Rows) < 4 {
		t.Errorf("kvstore ablation rows = %d", len(kv.Rows))
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", PaperRef: "Fig 0",
		Header: []string{"a", "b"}}
	rep.AddRow("1", "2")
	rep.Notef("n=%d", 1)
	var txt, md bytes.Buffer
	rep.WriteText(&txt)
	rep.WriteMarkdown(&md)
	if !strings.Contains(txt.String(), "Fig 0") || !strings.Contains(md.String(), "| a | b |") {
		t.Errorf("rendering broken:\n%s\n%s", txt.String(), md.String())
	}
}

func TestAdvisorExperiment(t *testing.T) {
	rep := runExp(t, "advisor")
	if len(rep.Rows) != 4 {
		t.Fatalf("advisor rows = %d, want 4 (L/M/S/advised)", len(rep.Rows))
	}
	advised := findRow(t, rep, "advised")
	large := findRow(t, rep, "large")
	// The advised policy's 5% query should be at least as fast as the
	// coarsest hand-picked grid.
	if cell(t, advised[3]) > cell(t, large[3])*1.2 {
		t.Errorf("advised 5%% query (%s s) slower than DGF-large (%s s)", advised[3], large[3])
	}
}

func TestPartitionExperiment(t *testing.T) {
	rep := runExp(t, "partition")
	if len(rep.Rows) != 9 {
		t.Fatalf("partition rows = %d, want 9", len(rep.Rows))
	}
	// At every selectivity: scan >= partition-pruned scan >= DGF.
	for i := 0; i < 9; i += 3 {
		scan := cell(t, rep.Rows[i][3])
		part := cell(t, rep.Rows[i+1][3])
		dgf := cell(t, rep.Rows[i+2][3])
		if part >= scan {
			t.Errorf("row %d: partition scan (%v s) not below full scan (%v s)", i, part, scan)
		}
		if dgf >= part {
			t.Errorf("row %d: DGF (%v s) not below partition scan (%v s)", i, dgf, part)
		}
	}
}
