package bench

import (
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
)

func init() {
	register(Experiment{
		ID:       "partition",
		Title:    "Hive partitioning vs DGFIndex",
		PaperRef: "Sections 2.2 and 6",
		Run:      expPartition,
	})
}

// expPartition evaluates the paper's Section 6 observation that partitioning
// is "the most practical method to improve query performance in Hive":
// a regionId-partitioned copy of the meter table prunes whole partitions on
// the region predicate but cannot narrow userId or time, while DGFIndex
// narrows all three dimensions; and multidimensional partitioning is ruled
// out by NameNode memory (the namenode experiment).
func expPartition(e *Env) (*Report, error) {
	m, err := e.Meter()
	if err != nil {
		return nil, err
	}
	// Build the partitioned copy.
	wp := hive.NewWarehouse(dfs.New(e.Scale.BlockSize), e.Base.Scaled(m.sf), "/warehouse")
	ddl := meterDDL(e.Scale.OtherMetrics, "TEXTFILE")
	ddl = ddl[:len(ddl)-len(" STORED AS TEXTFILE")] + " PARTITIONED BY (regionId) STORED AS TEXTFILE"
	if _, err := wp.Exec(ddl); err != nil {
		return nil, err
	}
	tp, _ := wp.Table("meterdata")
	if err := wp.LoadRows(tp, m.rows); err != nil {
		return nil, err
	}

	r := &Report{ID: "partition", Title: "Hive partitioning vs DGFIndex", PaperRef: "Sections 2.2 and 6",
		Header: []string{"system", "query", "access path", "total (s)", "records"}}
	for _, k := range []selKind{selPoint, sel5, sel12} {
		q := m.query(k)
		sql := aggSQL(q)
		scan, err := m.WScan.ExecOpts(sql, hive.ExecOptions{DisableIndexes: true})
		if err != nil {
			return nil, err
		}
		r.AddRow("ScanTable", k.String(), scan.Stats.AccessPath, secs(scan.Stats.SimTotalSec()), count(scan.Stats.RecordsRead))
		part, err := wp.Exec(sql)
		if err != nil {
			return nil, err
		}
		r.AddRow("Partition(regionId)", k.String(), part.Stats.AccessPath, secs(part.Stats.SimTotalSec()), count(part.Stats.RecordsRead))
		dgfRes, err := m.WM.Exec(sql)
		if err != nil {
			return nil, err
		}
		r.AddRow("DGF-medium", k.String(), dgfRes.Stats.AccessPath, secs(dgfRes.Stats.SimTotalSec()), count(dgfRes.Stats.RecordsRead))
	}
	nn := wp.FS.NameNodeUsage()
	r.Notef("single-dimension partitioning prunes only the region predicate; DGFIndex narrows all three dimensions (paper Section 6: partitioning is practical but needs few distinct values)")
	r.Notef("the partitioned layout costs %d extra NameNode directories; partitioning all three dimensions would need ~%s of NameNode heap (the namenode experiment)",
		nn.Dirs-2, "144MB")
	return r, nil
}
