package shard

import (
	"context"
	"strings"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

// setupVectorFleetTable builds the RCFile meter table with small row groups
// (so zone maps have several groups per file to prune) on every warehouse
// behind the loader, then indexes it. The row-group size must be set on
// each physical warehouse before any data loads.
func setupVectorFleetTable(t *testing.T, l loader, warehouses []*hive.Warehouse, cfg workload.MeterConfig) {
	t.Helper()
	mustExec(t, l, `CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS RCFILE`)
	for _, w := range warehouses {
		tbl, err := w.Table("meterdata")
		if err != nil {
			t.Fatal(err)
		}
		tbl.RowGroupRows = 16
	}
	if err := l.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		t.Fatal(err)
	}
	mustExec(t, l, `CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`)
	if err := l.LoadRowsByName("userInfo", cfg.UserInfoRows()); err != nil {
		t.Fatal(err)
	}
	mustExec(t, l, `CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
		AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_8',
		'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`)
}

// TestShardVectorisedFleetEquivalence is the fleet half of the acceptance
// criterion: on a 4-shard, 2-replica RCFile fleet — with one replica killed
// to force failover — the full meter suite answers bit-identically with
// vectorisation on and off, matches a direct warehouse within float-merge
// tolerance, and the merged stats report zone-map skips truthfully.
func TestShardVectorisedFleetEquivalence(t *testing.T) {
	cfg := testMeterConfig()
	router, err := New(Config{Shards: 4, Key: "userId", Replicas: 2}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	var fleet []*hive.Warehouse
	for i := 0; i < router.NumShards(); i++ {
		for j := 0; j < router.NumReplicas(); j++ {
			fleet = append(fleet, router.Replica(i, j))
		}
	}
	setupVectorFleetTable(t, router, fleet, cfg)

	direct := newShardWarehouse(0, 0)
	setupVectorFleetTable(t, direct, []*hive.Warehouse{direct}, cfg)

	// Scatter must survive a dead replica while staying vectorised.
	router.Kill(1, 0)

	ctx := context.Background()
	var sawSkips bool
	for _, q := range meterQuerySuite(cfg) {
		vec, err := router.ExecContext(ctx, q, hive.ExecOptions{})
		if err != nil {
			t.Fatalf("fleet %q: %v", q, err)
		}
		row, err := router.ExecContext(ctx, q, hive.ExecOptions{DisableVectorized: true})
		if err != nil {
			t.Fatalf("fleet %q (row path): %v", q, err)
		}
		// Same fleet, same shards, same merge order: the two paths must agree
		// bit for bit, not just within tolerance.
		wr, gr := renderRows(row.Rows), renderRows(vec.Rows)
		if strings.Join(wr, "\n") != strings.Join(gr, "\n") {
			t.Fatalf("%q: vectorised fleet differs from row-path fleet\nrow: %v\nvec: %v", q, wr, gr)
		}
		isJoin := strings.Contains(q, "JOIN")
		if vec.Stats.Vectorized == isJoin {
			t.Errorf("%q: merged Vectorized = %v, want %v", q, vec.Stats.Vectorized, !isJoin)
		}
		if row.Stats.Vectorized || row.Stats.GroupsSkipped != 0 {
			t.Errorf("%q: DisableVectorized fleet reports vectorised stats: %+v", q, row.Stats)
		}
		sawSkips = sawSkips || vec.Stats.GroupsSkipped > 0

		want, err := direct.Exec(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		if err := closeRows(want.Rows, vec.Rows); err != nil {
			t.Fatalf("%q: %v\ndirect: %v\nfleet: %v", q, err, want.Rows, vec.Rows)
		}
	}
	if !sawSkips {
		t.Error("no suite query skipped a row group anywhere in the fleet")
	}
}
