package shard

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

func testMeterConfig() workload.MeterConfig {
	cfg := workload.DefaultMeterConfig()
	cfg.Users = 40
	cfg.Regions = 4
	cfg.Days = 8
	cfg.ReadingsPerDay = 2
	cfg.OtherMetrics = 0
	return cfg
}

func newShardWarehouse(int, int) *hive.Warehouse {
	cc := cluster.Default()
	cc.Workers = 4
	return hive.NewWarehouse(dfs.New(1<<20), cc, "/warehouse")
}

// loader abstracts the direct warehouse and the router so one setup
// function populates both identically.
type loader interface {
	Exec(sql string) (*hive.Result, error)
	LoadRowsByName(table string, rows []storage.Row) error
}

func setupMeter(t *testing.T, l loader, cfg workload.MeterConfig, withIndex bool) {
	t.Helper()
	setupMeterStored(t, l, cfg, withIndex, "TEXTFILE")
}

// setupMeterStored is setupMeter with an explicit meterdata storage format.
func setupMeterStored(t *testing.T, l loader, cfg workload.MeterConfig, withIndex bool, stored string) {
	t.Helper()
	mustExec(t, l, `CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double) STORED AS `+stored)
	if err := l.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		t.Fatal(err)
	}
	mustExec(t, l, `CREATE TABLE userInfo (userId bigint, userName string, regionId bigint, address string)`)
	if err := l.LoadRowsByName("userInfo", cfg.UserInfoRows()); err != nil {
		t.Fatal(err)
	}
	if withIndex {
		mustExec(t, l, `CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
			AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_8',
			'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`)
	}
}

func mustExec(t *testing.T, l loader, sql string) *hive.Result {
	t.Helper()
	res, err := l.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

// meterQuerySuite is the meter workload the equivalence tests replay: every
// aggregate shape (AVG included), GROUP BY, a co-partitioned join, plain
// projections, and predicates that match nothing.
func meterQuerySuite(cfg workload.MeterConfig) []string {
	qs := []string{
		`SELECT count(*) FROM meterdata`,
		`SELECT count(*), sum(powerConsumed), avg(powerConsumed), min(powerConsumed), max(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=30`,
		`SELECT avg(powerConsumed) FROM meterdata WHERE userId>=1000`,
		`SELECT sum(powerConsumed) FROM meterdata WHERE userId=7`,
		`SELECT regionId, avg(powerConsumed), count(*) FROM meterdata WHERE ts>='2012-12-02' AND ts<'2012-12-06' GROUP BY regionId`,
		`SELECT regionId, sum(powerConsumed) FROM meterdata WHERE userId>=3 AND userId<=25 AND regionId>=2 GROUP BY regionId`,
		`SELECT t2.userName, sum(t1.powerConsumed) FROM meterdata t1 JOIN userInfo t2 ON t1.userId=t2.userId WHERE t1.userId>=3 AND t1.userId<=12 GROUP BY t2.userName`,
		`SELECT userId, powerConsumed FROM meterdata WHERE userId=11 AND ts<'2012-12-03'`,
	}
	for _, frac := range []float64{0.01, 0.05, 0.12} {
		qs = append(qs, "SELECT sum(powerConsumed) FROM meterdata WHERE "+cfg.Selective(frac).WhereClause())
	}
	qs = append(qs, "SELECT count(*) FROM meterdata WHERE "+cfg.Point().WhereClause())
	return qs
}

// renderRows renders result rows exactly (bit-for-bit comparisons).
func renderRows(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.Kind == storage.KindFloat64 {
				parts[j] = strconv.FormatFloat(v.F, 'b', -1, 64) // exact bits
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// TestShardSingleShardByteIdentical: acceptance criterion — a 1-shard
// router must produce byte-identical output to a bare warehouse for the
// full meter workload, access path and cost model included.
func TestShardSingleShardByteIdentical(t *testing.T) {
	cfg := testMeterConfig()
	direct := newShardWarehouse(0, 0)
	setupMeter(t, direct, cfg, true)
	router, err := New(Config{Shards: 1, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, router, cfg, true)

	for _, q := range meterQuerySuite(cfg) {
		want, err := direct.Exec(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		got, err := router.Exec(q)
		if err != nil {
			t.Fatalf("router %q: %v", q, err)
		}
		if strings.Join(want.Columns, ",") != strings.Join(got.Columns, ",") {
			t.Fatalf("%q: columns %v vs %v", q, want.Columns, got.Columns)
		}
		wr, gr := renderRows(want.Rows), renderRows(got.Rows)
		if strings.Join(wr, "\n") != strings.Join(gr, "\n") {
			t.Fatalf("%q:\ndirect: %v\nrouter: %v", q, wr, gr)
		}
		if want.Stats.AccessPath != got.Stats.AccessPath ||
			want.Stats.RecordsRead != got.Stats.RecordsRead ||
			want.Stats.BytesRead != got.Stats.BytesRead ||
			want.Stats.SimTotalSec() != got.Stats.SimTotalSec() {
			t.Fatalf("%q: stats differ: %+v vs %+v", q, want.Stats, got.Stats)
		}
	}
}

// closeRows compares rows with float tolerance (cross-shard aggregation
// reorders float additions) and NaN treated as equal to NaN.
func closeRows(want, got []storage.Row) error {
	if len(want) != len(got) {
		return fmt.Errorf("row count %d vs %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d: width %d vs %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			wv, gv := want[i][j], got[i][j]
			if wv.Kind == storage.KindFloat64 && gv.Kind == storage.KindFloat64 {
				if math.IsNaN(wv.F) && math.IsNaN(gv.F) {
					continue
				}
				diff := math.Abs(wv.F - gv.F)
				if diff > 1e-6+1e-9*math.Abs(wv.F) {
					return fmt.Errorf("row %d col %d: %v vs %v", i, j, wv.F, gv.F)
				}
				continue
			}
			if storage.Compare(wv, gv) != 0 {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, wv, gv)
			}
		}
	}
	return nil
}

// runEquivalence replays the meter suite on a direct warehouse and an
// n-shard router and requires matching results.
func runEquivalence(t *testing.T, cfg workload.MeterConfig, router *Router, withIndex bool) {
	t.Helper()
	direct := newShardWarehouse(0, 0)
	setupMeter(t, direct, cfg, withIndex)
	setupMeter(t, router, cfg, withIndex)

	for _, q := range meterQuerySuite(cfg) {
		want, err := direct.Exec(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		got, err := router.Exec(q)
		if err != nil {
			t.Fatalf("router %q: %v", q, err)
		}
		if strings.Join(want.Columns, ",") != strings.Join(got.Columns, ",") {
			t.Fatalf("%q: columns %v vs %v", q, want.Columns, got.Columns)
		}
		if err := closeRows(want.Rows, got.Rows); err != nil {
			t.Fatalf("%q: %v\ndirect: %v\nrouter: %v", q, err, want.Rows, got.Rows)
		}
		// No stats equality here: shard pruning and per-shard DGF planners
		// (whose inner/boundary split depends on shard-local data extents)
		// legitimately read fewer records than one big warehouse.
	}
}

func TestShardFourWayHashEquivalence(t *testing.T) {
	router, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, testMeterConfig(), router, true)
	// Hash routing spreads 40 users over all 4 shards.
	for i, size := range router.ShardSizes("meterdata") {
		if size == 0 {
			t.Errorf("shard %d holds no meter data", i)
		}
	}
}

func TestShardFourWayRangeEquivalence(t *testing.T) {
	router, err := New(Config{Shards: 4, Key: "userId", Strategy: RangeKey, Bounds: []float64{11, 21, 31}}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, testMeterConfig(), router, true)
}

// TestShardScanEquivalence covers the no-index path (plain table scans per
// shard) so the refactored aggregation pipeline is exercised without the
// DGFIndex planner in front.
func TestShardScanEquivalence(t *testing.T) {
	router, err := New(Config{Shards: 3, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, testMeterConfig(), router, false)
}

// TestShardEmptyShards: with range routing and all keys in the first
// bucket, three shards stay empty; scalar aggregates (AVG included) must
// still come back correct, and empty-matching predicates must yield the
// scalar empty-input row.
func TestShardEmptyShards(t *testing.T) {
	cfg := testMeterConfig()
	cfg.Users = 9 // all users < 10: shards 1..3 hold no meter rows
	router, err := New(Config{Shards: 4, Key: "userId", Strategy: RangeKey, Bounds: []float64{10, 20, 30}}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, cfg, router, false)

	sizes := router.ShardSizes("meterdata")
	if sizes[0] == 0 || sizes[1] != 0 || sizes[2] != 0 || sizes[3] != 0 {
		t.Fatalf("expected only shard 0 populated, got %v", sizes)
	}
	// A query forced across every shard still answers from the one
	// populated shard plus three empty partials.
	res := mustExec(t, router, `SELECT count(*), avg(powerConsumed) FROM meterdata`)
	if n := res.Rows[0][0].AsFloat(); n != float64(cfg.Rows()) {
		t.Fatalf("count over empty shards = %v, want %d", n, cfg.Rows())
	}
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(4/4)") {
		t.Fatalf("access path %q, want sharded(4/4) fan-out", res.Stats.AccessPath)
	}
}

// TestShardPruning: predicates on the routing key narrow the fan-out —
// equality under hash routing, intervals under range routing.
func TestShardPruning(t *testing.T) {
	cfg := testMeterConfig()
	hash, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, hash, cfg, false)
	res := mustExec(t, hash, `SELECT count(*) FROM meterdata WHERE userId=7`)
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(1/4)") {
		t.Fatalf("hash equality access path %q, want sharded(1/4)", res.Stats.AccessPath)
	}
	if n := res.Rows[0][0].AsFloat(); n != float64(cfg.Days*cfg.ReadingsPerDay) {
		t.Fatalf("pruned count %v, want %d", n, cfg.Days*cfg.ReadingsPerDay)
	}
	res = mustExec(t, hash, `SELECT count(*) FROM meterdata WHERE userId>=7 AND userId<=8`)
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(4/4)") {
		t.Fatalf("hash range access path %q, want full fan-out", res.Stats.AccessPath)
	}

	rng, err := New(Config{Shards: 4, Key: "userId", Strategy: RangeKey, Bounds: []float64{11, 21, 31}}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, rng, cfg, false)
	res = mustExec(t, rng, `SELECT count(*) FROM meterdata WHERE userId>=12 AND userId<=20`)
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(1/4)") {
		t.Fatalf("range access path %q, want sharded(1/4)", res.Stats.AccessPath)
	}
	res = mustExec(t, rng, `SELECT count(*) FROM meterdata WHERE userId>=12 AND userId<=25`)
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(2/4)") {
		t.Fatalf("range access path %q, want sharded(2/4)", res.Stats.AccessPath)
	}
}

// TestShardCatalogAndVersions: DDL broadcasts, catalog snapshots merge, and
// version counters stay monotonic across routed loads.
func TestShardCatalogAndVersions(t *testing.T) {
	cfg := testMeterConfig()
	router, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, router, cfg, false)

	infos := router.TableInfos()
	if len(infos) != 2 || infos[0].Name != "meterdata" {
		t.Fatalf("TableInfos: %+v", infos)
	}
	var total int64
	for _, size := range router.ShardSizes("meterdata") {
		total += size
	}
	if infos[0].SizeBytes != total {
		t.Fatalf("merged size %d != shard sum %d", infos[0].SizeBytes, total)
	}

	v0 := router.TableVersions("meterdata")["meterdata"]
	day := cfg
	day.Days = 1
	day.Start = cfg.Start.AddDate(0, 0, cfg.Days)
	if err := router.LoadRowsByName("meterdata", day.AllRows()); err != nil {
		t.Fatal(err)
	}
	if v1 := router.TableVersions("meterdata")["meterdata"]; v1 <= v0 {
		t.Fatalf("version did not grow: %d -> %d", v0, v1)
	}

	if _, err := router.Exec(`DROP TABLE userInfo`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < router.NumShards(); i++ {
		if _, err := router.Shard(i).Table("userInfo"); err == nil {
			t.Fatalf("shard %d still has userInfo after broadcast drop", i)
		}
	}
}

// TestShardJoinGuard: a join on a non-key column against a key-partitioned
// table cannot be answered shard-locally and must be rejected, not answered
// wrong.
func TestShardJoinGuard(t *testing.T) {
	cfg := testMeterConfig()
	router, err := New(Config{Shards: 2, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, router, cfg, false)
	_, err = router.Exec(`SELECT t2.address FROM meterdata t1 JOIN userInfo t2 ON t1.regionId=t2.regionId`)
	if err == nil || !strings.Contains(err.Error(), "shard key") {
		t.Fatalf("want co-partitioning error, got %v", err)
	}
	// INSERT OVERWRITE DIRECTORY writes shard-local files: rejected too.
	_, err = router.Exec(`INSERT OVERWRITE DIRECTORY '/tmp/out' SELECT userId FROM meterdata`)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want insert-dir rejection, got %v", err)
	}
}

// TestShardReplicatedTables: a table without the routing key replicates to
// every shard, and SELECTs on it answer from one shard without fan-out.
func TestShardReplicatedTables(t *testing.T) {
	router, err := New(Config{Shards: 3, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, router, `CREATE TABLE regions (regionId bigint, name string)`)
	rows := []storage.Row{
		{storage.Int64(1), storage.Str("north")},
		{storage.Int64(2), storage.Str("south")},
	}
	if err := router.LoadRowsByName("regions", rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < router.NumShards(); i++ {
		res, err := router.Shard(i).Exec(`SELECT count(*) FROM regions`)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Rows[0][0].AsFloat(); n != 2 {
			t.Fatalf("shard %d replica has %v rows, want 2", i, n)
		}
	}
	res := mustExec(t, router, `SELECT count(*) FROM regions`)
	if n := res.Rows[0][0].AsFloat(); n != 2 {
		t.Fatalf("replicated count = %v, want 2 (no double counting)", n)
	}
	// Replicated tables report one copy's catalog numbers, not N copies'.
	for _, info := range router.TableInfos() {
		if info.Name != "regions" {
			continue
		}
		tbl, err := router.Shard(0).Table("regions")
		if err != nil {
			t.Fatal(err)
		}
		if one := router.Shard(0).TableSizeBytes(tbl); info.SizeBytes != one {
			t.Fatalf("replicated /tables size %d, want one copy's %d", info.SizeBytes, one)
		}
	}
}

// TestShardReplicatedJoinShardedTable: a join FROM a replicated table INTO
// the partitioned table must scatter over every shard — answering from
// shard 0 alone would silently drop the other shards' join rows.
func TestShardReplicatedJoinShardedTable(t *testing.T) {
	cfg := testMeterConfig()
	direct := newShardWarehouse(0, 0)
	router, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []loader{direct, router} {
		setupMeter(t, l, cfg, false)
		mustExec(t, l, `CREATE TABLE regions (regionId bigint, name string)`)
		var rows []storage.Row
		for rid := 1; rid <= cfg.Regions; rid++ {
			rows = append(rows, storage.Row{storage.Int64(int64(rid)), storage.Str(fmt.Sprintf("region-%d", rid))})
		}
		if err := l.LoadRowsByName("regions", rows); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`SELECT count(*) FROM regions r JOIN meterdata m ON r.regionId = m.regionId`,
		`SELECT r.name, sum(m.powerConsumed) FROM regions r JOIN meterdata m ON r.regionId = m.regionId GROUP BY r.name`,
	} {
		want, err := direct.Exec(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		got, err := router.Exec(q)
		if err != nil {
			t.Fatalf("router %q: %v", q, err)
		}
		if err := closeRows(want.Rows, got.Rows); err != nil {
			t.Fatalf("%q: %v\ndirect: %v\nrouter: %v", q, err, want.Rows, got.Rows)
		}
		if !strings.HasPrefix(got.Stats.AccessPath, "sharded(4/4)") {
			t.Fatalf("%q: access path %q, want full fan-out", q, got.Stats.AccessPath)
		}
	}
}

// TestShardServerIntegration (DGFServe over a sharded backend) lives in
// integration_test.go (package shard_test): the serving layer now imports
// this package for replica health, so the server-facing tests run from an
// external test package to avoid an import cycle.

// TestShardRCFileEquivalence: the format-agnostic index I/O path composed
// with scatter-gather. The broadcast CREATE INDEX builds a per-shard
// DGFIndex over each shard's RCFile slice; the full meter suite must then
// answer bit-identically to the same 4-shard fleet backed by TextFile (the
// storage format must not change a single result bit) and match the 1-shard
// TextFile answer within float-merge tolerance.
func TestShardRCFileEquivalence(t *testing.T) {
	cfg := testMeterConfig()
	mkRouter := func(stored string) *Router {
		router, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
		if err != nil {
			t.Fatal(err)
		}
		setupMeterStored(t, router, cfg, true, stored)
		return router
	}
	textRouter := mkRouter("TEXTFILE")
	rcRouter := mkRouter("RCFILE")
	oneShard, err := New(Config{Shards: 1, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeterStored(t, oneShard, cfg, true, "TEXTFILE")

	// Every shard must actually hold an RCFile-backed DGFIndex.
	for i := 0; i < rcRouter.NumShards(); i++ {
		tbl, err := rcRouter.Shard(i).Table("meterdata")
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Dgf == nil {
			t.Fatalf("shard %d has no DGFIndex", i)
		}
		if tbl.Dgf.Format != storage.RCFile {
			t.Fatalf("shard %d index format = %v, want RCFile", i, tbl.Dgf.Format)
		}
	}

	for _, q := range meterQuerySuite(cfg) {
		want, err := textRouter.Exec(q)
		if err != nil {
			t.Fatalf("text router %q: %v", q, err)
		}
		got, err := rcRouter.Exec(q)
		if err != nil {
			t.Fatalf("rc router %q: %v", q, err)
		}
		if strings.Join(want.Columns, ",") != strings.Join(got.Columns, ",") {
			t.Fatalf("%q: columns %v vs %v", q, want.Columns, got.Columns)
		}
		wr, gr := renderRows(want.Rows), renderRows(got.Rows)
		if strings.Join(wr, "\n") != strings.Join(gr, "\n") {
			t.Fatalf("%q: formats disagree\ntext: %v\nrcfile: %v", q, wr, gr)
		}
		base, err := oneShard.Exec(q)
		if err != nil {
			t.Fatalf("1-shard %q: %v", q, err)
		}
		if err := closeRows(base.Rows, got.Rows); err != nil {
			t.Fatalf("%q vs 1-shard TextFile: %v\nwant: %v\ngot: %v", q, err, base.Rows, got.Rows)
		}
	}
}
