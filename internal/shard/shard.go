// Package shard partitions tables across N independent warehouses and
// executes queries by scatter-gather: DDL broadcasts to every shard, loads
// route row-by-row on a configurable key (hash on meter/user id, or ranges
// on region), and SELECTs fan out concurrently to the shards the predicate
// can reach, each returning mergeable partial-aggregation state that the
// router combines and finalizes once.
//
// The paper's deployment indexes billions of readings from ~17M meters; one
// in-process Warehouse cannot scale to that. Distributed partial
// aggregation over partitioned stores is the same shape P2P
// multidimensional indexes use (Bongers & Pouwelse's survey): every shard
// keeps its own DGFIndex over its own slice of the data, and the additive
// aggregates the paper pre-computes per GFU (sum/count/min/max, avg as
// sum+count) merge across shards exactly as they merge across grid cells.
//
// The router implements the serving layer's Backend contract, so DGFServe's
// admission control, caches, and metrics sit in front of a sharded fleet
// unchanged.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
	"github.com/smartgrid-oss/dgfindex/internal/wal"
)

// Strategy selects how a routing-key value maps to a shard.
type Strategy uint8

const (
	// HashKey routes by FNV-1a hash of the key value: uniform spread, and
	// equality predicates on the key prune to a single shard.
	HashKey Strategy = iota
	// RangeKey routes by position among Config.Bounds: contiguous key
	// ranges per shard, so range predicates on the key prune shards.
	RangeKey
)

// String names the strategy for flags and logs.
func (s Strategy) String() string {
	if s == RangeKey {
		return "range"
	}
	return "hash"
}

// ParseStrategy reads "hash" or "range".
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "", "hash":
		return HashKey, nil
	case "range":
		return RangeKey, nil
	default:
		return 0, fmt.Errorf("shard: unknown strategy %q (want hash or range)", s)
	}
}

// Config describes the partitioning and replication of a Router.
type Config struct {
	// Shards is the number of logical shards (>= 1).
	Shards int
	// Replicas is how many identical warehouse copies each shard keeps
	// (0 or 1 = unreplicated). Writes apply to every replica; reads pick one
	// and fail over to the others on error.
	Replicas int
	// Key names the routing column (case-insensitive). Tables whose schema
	// lacks the column replicate to every shard instead — which keeps
	// broadcast-join sides (the paper's userInfo) available shard-locally.
	Key string
	// Strategy selects hash or range routing. Default HashKey.
	Strategy Strategy
	// Bounds holds Shards-1 ascending split points for RangeKey: shard i
	// covers key values in [Bounds[i-1], Bounds[i]). Ignored for HashKey.
	Bounds []float64
	// EjectAfter is how many consecutive failures remove a replica from read
	// selection (default 3).
	EjectAfter int
	// Reprobe is how long an ejected replica sits out before the router
	// probes it with one trial request (default 2s).
	Reprobe time.Duration
}

// replicas returns the effective copies per shard (>= 1).
func (c Config) replicas() int {
	if c.Replicas < 1 {
		return 1
	}
	return c.Replicas
}

func (c Config) ejectAfter() int {
	if c.EjectAfter < 1 {
		return 3
	}
	return c.EjectAfter
}

func (c Config) reprobe() time.Duration {
	if c.Reprobe <= 0 {
		return 2 * time.Second
	}
	return c.Reprobe
}

func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: need at least 1 shard, got %d", c.Shards)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("shard: negative replica count %d", c.Replicas)
	}
	if strings.TrimSpace(c.Key) == "" {
		return fmt.Errorf("shard: routing key column must be named")
	}
	if c.Strategy == RangeKey {
		if len(c.Bounds) != c.Shards-1 {
			return fmt.Errorf("shard: range routing over %d shards needs %d bounds, got %d",
				c.Shards, c.Shards-1, len(c.Bounds))
		}
		for i := 1; i < len(c.Bounds); i++ {
			if c.Bounds[i-1] >= c.Bounds[i] {
				return fmt.Errorf("shard: bounds must be strictly ascending")
			}
		}
	}
	return nil
}

// tableMeta is the router's record of one table created through it.
type tableMeta struct {
	schema *storage.Schema
	// keyIdx is the routing column's position in the schema; -1 marks a
	// replicated table (no routing column).
	keyIdx int
}

// Router partitions tables across shards and executes statements by
// broadcast (DDL), routed append (loads) or scatter-gather (SELECT). It
// implements the serving layer's Backend interface; all methods are safe
// for concurrent use — each shard warehouse carries its own locking, and
// the router itself only guards its table records.
type Router struct {
	cfg  Config
	sets []*replicaSet

	// wal, when set by EnableWAL, makes loads durable: commits append to
	// per-replica logs and background appliers drain them (see ingest.go).
	wal atomic.Pointer[wal.Engine]

	mu     sync.RWMutex
	tables map[string]*tableMeta
}

// New builds a router over cfg.Shards shards of cfg.Replicas fresh
// warehouses each, produced by mk (called once per (shard, replica) pair).
// Every warehouse must get its own filesystem: shards are independent
// stores, not views of one, and a shard's replicas are independent copies.
func New(cfg Config, mk func(shard, replica int) *hive.Warehouse) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg, tables: map[string]*tableMeta{}}
	for i := 0; i < cfg.Shards; i++ {
		reps := make([]*replica, cfg.replicas())
		for j := range reps {
			w := mk(i, j)
			if w == nil {
				return nil, fmt.Errorf("shard: nil warehouse for shard %d replica %d", i, j)
			}
			reps[j] = newReplica(i, j, w)
		}
		r.sets = append(r.sets, newReplicaSet(i, cfg.ejectAfter(), cfg.reprobe(), reps))
	}
	return r, nil
}

// Config returns the router's partitioning configuration.
func (r *Router) Config() Config { return r.cfg }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.sets) }

// NumReplicas returns the copies per shard.
func (r *Router) NumReplicas() int { return r.cfg.replicas() }

// Shard returns the i-th shard's first replica warehouse (for tests and
// tooling; replicas hold identical data, so any one represents the shard).
func (r *Router) Shard(i int) *hive.Warehouse { return r.sets[i].reps[0].w }

// Replica returns the j-th replica warehouse of shard i.
func (r *Router) Replica(i, j int) *hive.Warehouse { return r.sets[i].reps[j].w }

// Kill marks one replica down, as if the store crashed: new requests to it
// fail immediately, and in-flight reads and DDL abort at their next split
// boundary (an in-flight load runs to completion — loads are not
// context-aware). Reads fail over to the shard's surviving replicas. Writes:
// without a WAL the whole load fails until Revive (replicas are kept exactly
// consistent); with EnableWAL the load commits to the surviving replicas'
// logs and the dead one is owed the records (hinted handoff).
func (r *Router) Kill(shard, replica int) {
	r.sets[shard].reps[replica].kill()
	if e := r.wal.Load(); e != nil {
		e.MarkDown(shard, replica)
	}
}

// Revive brings a killed replica back into selection with a clean health
// record. With the WAL enabled the replica first replays every record it
// missed (health reports it catching_up, not live, until the replay's
// high-water mark is reached) — the divergence fail-fast loads used to
// leave behind is repaired instead.
func (r *Router) Revive(shard, replica int) {
	rep := r.sets[shard].reps[replica]
	e := r.wal.Load()
	if e == nil {
		rep.revive()
		return
	}
	rep.beginCatchUp()
	e.CatchUp(shard, replica, rep.endCatchUp)
}

// Health snapshots every shard's replica-set health (the serving layer's
// /stats and /healthz surface this).
func (r *Router) Health() []SetHealth {
	out := make([]SetHealth, len(r.sets))
	for i, rs := range r.sets {
		out[i] = rs.health()
	}
	return out
}

// meta looks up the router's record of a table (nil if the table was not
// created through the router).
func (r *Router) meta(table string) *tableMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tables[strings.ToLower(table)]
}

// Exec parses and executes one HiveQL statement across the fleet.
func (r *Router) Exec(sql string) (*hive.Result, error) {
	stmt, err := hive.Parse(sql)
	if err != nil {
		return nil, err
	}
	return r.ExecParsed(stmt, hive.ExecOptions{})
}

// ExecContext is Exec under ctx: a ctx that ends mid-scatter cancels every
// in-flight shard scan at its next split boundary.
func (r *Router) ExecContext(ctx context.Context, sql string, opts hive.ExecOptions) (*hive.Result, error) {
	stmt, err := hive.Parse(sql)
	if err != nil {
		return nil, err
	}
	return r.ExecParsedContext(ctx, stmt, opts)
}

// ExecParsed executes an already-parsed statement. It is ExecParsedContext
// under context.Background().
//
//dgflint:compat ctx-free convenience wrapper over ExecParsedContext
func (r *Router) ExecParsed(stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	return r.ExecParsedContext(context.Background(), stmt, opts)
}

// ExecParsedContext executes an already-parsed statement: SELECTs
// scatter-gather under a cancellable group, catalog reads go to shard 0
// (every shard holds the same catalog), and DDL broadcasts to all shards.
func (r *Router) ExecParsedContext(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	switch s := stmt.(type) {
	case *hive.SelectStmt:
		return r.execSelect(ctx, s, opts)
	case *hive.ExplainStmt:
		if len(r.sets) == 1 {
			// Pass through: bit-identical to a bare warehouse.
			return r.sets[0].execStmt(ctx, stmt, opts)
		}
		plan, err := r.ExplainContext(ctx, s.Select, opts)
		if err != nil {
			return nil, err
		}
		return plan.Render(), nil
	case *hive.TraceStmt:
		// TRACE SELECT: run the query under a fresh root span and return its
		// rendered timing tree — the runtime twin of EXPLAIN's static plan.
		root := trace.New("query")
		root.Set("sql", "TRACE SELECT")
		res, err := r.execSelect(trace.NewContext(ctx, root), s.Select, opts)
		root.Finish()
		if err != nil {
			return nil, err
		}
		out := hive.RenderTrace(root.Snapshot())
		out.Stats = res.Stats
		return out, nil
	case *hive.ShowTablesStmt, *hive.DescribeStmt:
		// Catalog reads: any replica of shard 0 answers (identical catalogs
		// everywhere by DDL broadcast), with failover.
		return r.sets[0].execStmt(ctx, stmt, opts)
	case *hive.CreateTableStmt:
		res, err := r.broadcast(ctx, stmt, opts)
		if err != nil {
			return nil, err
		}
		schema := storage.NewSchema(s.Cols...)
		r.mu.Lock()
		r.tables[strings.ToLower(s.Name)] = &tableMeta{schema: schema, keyIdx: schema.ColIndex(r.cfg.Key)}
		r.mu.Unlock()
		return res, nil
	case *hive.DropTableStmt:
		res, err := r.broadcast(ctx, stmt, opts)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		delete(r.tables, strings.ToLower(s.Name))
		r.mu.Unlock()
		return res, nil
	default:
		// CREATE INDEX and future DDL: every shard indexes its own slice.
		return r.broadcast(ctx, stmt, opts)
	}
}

// broadcast runs one statement on every warehouse of the fleet (all
// replicas of all shards) concurrently and returns shard 0 replica 0's
// result. On error the fleet may diverge (some stores applied the DDL, some
// did not); the returned error enumerates every store's outcome — which
// shard/replica failed and why, and which shards applied the statement — so
// an operator knows exactly what needs repair instead of seeing one error
// and guessing.
func (r *Router) broadcast(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	nr := r.cfg.replicas()
	results := make([]*hive.Result, len(r.sets)*nr)
	errs := make([]error, len(r.sets)*nr)
	var wg sync.WaitGroup
	for i, rs := range r.sets {
		for j, rep := range rs.reps {
			wg.Add(1)
			go func(slot int, rep *replica) {
				defer wg.Done()
				// The same kill supervision the read paths get via do(): a
				// replica killed mid-DDL aborts at its next split boundary
				// and the outcome names the dead store, not a bare cancel.
				errs[slot] = rep.do(ctx, func(kctx context.Context) error {
					res, err := rep.w.ExecParsedContext(kctx, stmt, opts)
					results[slot] = res
					return err
				})
			}(i*nr+j, rep)
		}
	}
	wg.Wait()
	if err := r.broadcastOutcome(errs); err != nil {
		return nil, err
	}
	return results[0], nil
}

// broadcastOutcome folds the per-store errors of one broadcast into a single
// error that names every failed store and the shards that applied the
// statement (nil when everything applied).
func (r *Router) broadcastOutcome(errs []error) error {
	nr := r.cfg.replicas()
	var failed []string
	var applied []string
	for i := range r.sets {
		ok := true
		for j := 0; j < nr; j++ {
			if err := errs[i*nr+j]; err != nil {
				ok = false
				if nr > 1 {
					failed = append(failed, fmt.Sprintf("shard %d/%d replica %d failed: %v", i, len(r.sets), j, err))
				} else {
					failed = append(failed, fmt.Sprintf("shard %d/%d failed: %v", i, len(r.sets), err))
				}
			}
		}
		if ok {
			applied = append(applied, strconv.Itoa(i))
		}
	}
	if failed == nil {
		return nil
	}
	msg := strings.Join(failed, "; ")
	if len(applied) > 0 {
		msg += "; shards " + strings.Join(applied, ",") + " applied"
	} else {
		msg += "; no shard applied"
	}
	return fmt.Errorf("shard: broadcast diverged the fleet: %s", msg)
}

// routeSelect is the one place the fleet decides how a SELECT executes:
// pass through to one warehouse untouched, or scatter to a target set.
// Execution, EXPLAIN, and the streaming cursor all consume this single
// decision, so the plan a router announces, the shards a cursor opens, and
// the shards the gather reads can never diverge.
//
// passthrough=true names the single answering warehouse (always shard 0):
// a one-shard fleet (bit-identical to a bare warehouse — stats and access
// path included), a table created behind the router (only shard 0 holds
// it), or a replicated FROM table (every shard holds a full copy). The one
// replicated-FROM exception is a join against a partitioned table: every
// shard then holds the full FROM copy plus a disjoint slice of the join
// side, so a full fan-out counts every match exactly once, while shard 0
// alone would silently drop the other shards' join rows.
func (r *Router) routeSelect(s *hive.SelectStmt) (targets []int, passthrough bool, err error) {
	// A directory sink writes into whichever store executes it: on a
	// sharded fleet the shards' outputs would land in different
	// filesystems, and on a replicated one only the chosen replica would
	// hold the files — silently diverging the copies. Only a 1-shard,
	// 1-replica router (true pass-through) can support it.
	if s.InsertDir != "" && (len(r.sets) > 1 || r.cfg.replicas() > 1) {
		return nil, false, fmt.Errorf("shard: INSERT OVERWRITE DIRECTORY is not supported on a sharded or replicated backend")
	}
	if len(r.sets) == 1 {
		return nil, true, nil
	}
	m := r.meta(s.From.Table)
	if m == nil {
		return nil, true, nil
	}
	if m.keyIdx < 0 {
		if s.Join != nil {
			if jm := r.meta(s.Join.Table.Table); jm != nil && jm.keyIdx >= 0 {
				return r.allShards(), false, nil
			}
		}
		return nil, true, nil
	}
	if err := r.checkJoin(s); err != nil {
		return nil, false, err
	}
	return r.targetShards(s, m), false, nil
}

// execSelect is the scatter-gather path: prune shards by the routing-key
// predicate, run SelectPartial on each target concurrently, merge the
// partial states, finalize once.
func (r *Router) execSelect(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (*hive.Result, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		return r.sets[0].execStmt(ctx, s, opts)
	}
	return r.scatter(ctx, s, opts, targets)
}

// scatterPartials fans the SELECT out to the target shards under a
// cancellable group. A replica error inside one shard does NOT touch the
// sibling shards: the failed shard's partial is retried against its next
// live replica (least-loaded first), and only when a shard has exhausted
// every replica does the group cancel — the sibling scans then abort at
// their next split boundary instead of running to completion. The goroutines
// are always joined before returning; a non-nil error is the root cause (a
// sibling's ctx.Canceled never masks the shard error that triggered the
// cancellation).
func (r *Router) scatterPartials(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) ([]*hive.PartialResult, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ssp := trace.FromContext(ctx).Child("scatter")
	ssp.Set("targets", fmt.Sprintf("%d/%d", len(targets), len(r.sets)))
	defer ssp.Finish()
	parts := make([]*hive.PartialResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			shsp := ssp.Child(fmt.Sprintf("shard %d", si))
			defer shsp.Finish()
			var chosen int
			parts[i], chosen, errs[i] = r.sets[si].execPartial(trace.NewContext(sctx, shsp), s, opts)
			if errs[i] != nil {
				shsp.Set("error", errs[i].Error())
				// All of this shard's replicas are exhausted (or the caller
				// cancelled): now, and only now, stop the siblings.
				cancel()
				return
			}
			st := parts[i].Stats
			shsp.Set("replica", chosen)
			shsp.Set("access_path", st.AccessPath)
			shsp.Set("records_read", st.RecordsRead)
			shsp.Set("bytes_read", st.BytesRead)
			shsp.Set("splits", st.Splits)
			shsp.Set("sim_sec", st.IndexSimSec+st.DataSimSec)
		}(i, si)
	}
	wg.Wait()
	// Prefer the root cause: a real shard failure outranks the ctx errors
	// its cancellation induced in siblings; a caller cancel surfaces as the
	// caller ctx's own error.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		if cause := ctx.Err(); cause != nil {
			return nil, fmt.Errorf("shard: scatter canceled: %w", cause)
		}
		return nil, ctxErr
	}
	return parts, nil
}

// scatter runs scatterPartials and merges the shards' partial results into
// one finalized Result.
func (r *Router) scatter(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) (*hive.Result, error) {
	start := time.Now()
	parts, err := r.scatterPartials(ctx, s, opts, targets)
	if err != nil {
		return nil, err
	}

	merged := parts[0]
	stats := merged.Stats
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			return nil, err
		}
		mergeStats(&stats, p.Stats)
	}
	merged.Stats = stats
	res := merged.Finalize(s.Limit)
	res.Stats.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(targets), len(r.sets), parts[0].Stats.AccessPath)
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// Explain plans a SELECT across the fleet without executing it, consuming
// the same routeSelect decision execution does: pass-through cases return
// the single answering warehouse's plan untouched; scatter cases merge the
// target shards' plans (volumes and slice counts sum — exactly how the
// executed stats merge) and prefix the access path with the same
// "sharded(k/n):" label the gather will report. It is ExplainContext under
// context.Background().
//
//dgflint:compat ctx-free convenience wrapper over ExplainContext
func (r *Router) Explain(s *hive.SelectStmt, opts hive.ExecOptions) (*hive.ExplainPlan, error) {
	return r.ExplainContext(context.Background(), s, opts)
}

// ExplainContext is Explain under ctx: planning reads index KV state from a
// live replica per target shard, and the caller's cancellation bounds those
// reads the same way it bounds execution.
func (r *Router) ExplainContext(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (*hive.ExplainPlan, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		plan, _, err := r.sets[0].explain(ctx, s, opts)
		return plan, err
	}
	return r.explainScatter(ctx, s, opts, targets)
}

// explainScatter merges the per-target-shard plans into the fleet plan.
// Each shard's plan comes from a live replica (failover included, so EXPLAIN
// keeps working with a replica down), and the plan records which replica the
// router chose for each target shard.
func (r *Router) explainScatter(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) (*hive.ExplainPlan, error) {
	plans := make([]*hive.ExplainPlan, len(targets))
	chosen := make([]int, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			plans[i], chosen[i], errs[i] = r.sets[si].explain(ctx, s, opts)
		}(i, si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The gather reports the first target's access path; so does the plan.
	merged := *plans[0]
	merged.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(targets), len(r.sets), plans[0].AccessPath)
	merged.ShardsTotal = len(r.sets)
	merged.ShardsTargeted = len(targets)
	merged.TargetShards = append([]int(nil), targets...)
	merged.ReplicasPerShard = r.cfg.replicas()
	if merged.ReplicasPerShard > 1 {
		merged.ChosenReplicas = chosen
	}
	for _, p := range plans[1:] {
		if merged.ProjectedBytes >= 0 && p.ProjectedBytes >= 0 {
			merged.ProjectedBytes += p.ProjectedBytes
		} else {
			merged.ProjectedBytes = -1
		}
		merged.GFUSlices += p.GFUSlices
		merged.InnerCells += p.InnerCells
		merged.BoundaryCells += p.BoundaryCells
		merged.MissingCells += p.MissingCells
		merged.GroupsSkipped += p.GroupsSkipped
		merged.BitmapHits += p.BitmapHits
		merged.Vectorized = merged.Vectorized && p.Vectorized
	}
	return &merged, nil
}

// mergeStats folds one more shard's cost into the scatter-gather total:
// data volumes add; the slowest shard bounds the simulated time, because
// the shards run concurrently.
func mergeStats(dst *hive.QueryStats, s hive.QueryStats) {
	dst.RecordsRead += s.RecordsRead
	dst.BytesRead += s.BytesRead
	dst.Splits += s.Splits
	dst.Seeks += s.Seeks
	dst.GroupsSkipped += s.GroupsSkipped
	dst.BitmapHits += s.BitmapHits
	dst.Vectorized = dst.Vectorized && s.Vectorized
	if s.SimTotalSec() > dst.SimTotalSec() {
		dst.IndexSimSec, dst.DataSimSec = s.IndexSimSec, s.DataSimSec
	}
}

// checkJoin verifies a join is answerable shard-locally: the right table is
// replicated on every shard, or both join columns are the routing key (the
// tables are then co-partitioned and matching rows share a shard).
func (r *Router) checkJoin(s *hive.SelectStmt) error {
	if s.Join == nil {
		return nil
	}
	rm := r.meta(s.Join.Table.Table)
	if rm == nil || rm.keyIdx < 0 {
		return nil
	}
	if strings.EqualFold(s.Join.Left.Name, r.cfg.Key) && strings.EqualFold(s.Join.Right.Name, r.cfg.Key) {
		return nil
	}
	return fmt.Errorf("shard: join with %q must be on the shard key %q (co-partitioned); join on other columns needs a replicated table (one without the key column)",
		s.Join.Table.Table, r.cfg.Key)
}

// targetShards prunes the fan-out by the WHERE constraint on the routing
// key: hash routing prunes equality predicates to one shard, range routing
// prunes to the shards whose key interval intersects the predicate range.
func (r *Router) targetShards(s *hive.SelectStmt, m *tableMeta) []int {
	ranges := hive.WhereRanges(s, m.schema)
	kr, ok := ranges[strings.ToLower(m.schema.Col(m.keyIdx).Name)]
	if !ok {
		return r.allShards()
	}
	if r.cfg.Strategy == RangeKey {
		var out []int
		for i := 0; i < len(r.sets); i++ {
			if r.shardIntervalIntersects(i, kr) {
				out = append(out, i)
			}
		}
		if len(out) == 0 {
			// Contradictory predicate: any one shard yields the correct
			// empty (or scalar-NaN) result.
			out = []int{0}
		}
		return out
	}
	// HashKey: only a point constraint picks a shard.
	if !kr.LoUnbounded && !kr.HiUnbounded && !kr.LoOpen && !kr.HiOpen && storage.Compare(kr.Lo, kr.Hi) == 0 {
		return []int{r.route(kr.Lo, m.schema.Col(m.keyIdx).Kind)}
	}
	return r.allShards()
}

func (r *Router) allShards() []int {
	out := make([]int, len(r.sets))
	for i := range out {
		out[i] = i
	}
	return out
}

// shardIntervalIntersects reports whether shard i's key interval
// [Bounds[i-1], Bounds[i]) meets the predicate range.
func (r *Router) shardIntervalIntersects(i int, kr gridfile.Range) bool {
	if i > 0 && !kr.HiUnbounded {
		lo, hi := r.cfg.Bounds[i-1], kr.Hi.AsFloat()
		if hi < lo || (hi == lo && kr.HiOpen) {
			return false
		}
	}
	if i < len(r.cfg.Bounds) && !kr.LoUnbounded {
		if kr.Lo.AsFloat() >= r.cfg.Bounds[i] {
			return false
		}
	}
	return true
}

// route maps one routing-key value to its shard. The value is first coerced
// through the schema column's kind, so the same logical key always lands on
// the same shard no matter how a caller rendered it: hashing the raw text
// would send the typed load's Int64(5), a CSV batch's Str("05") and a JSON
// timestamp's raw Unix seconds to three different shards, and a point query
// (whose literal parses through the schema) would then miss rows.
func (r *Router) route(v storage.Value, kind storage.Kind) int {
	v = coerceKey(v, kind)
	if r.cfg.Strategy == RangeKey {
		f := v.AsFloat()
		for i, b := range r.cfg.Bounds {
			if f < b {
				return i
			}
		}
		return len(r.sets) - 1
	}
	h := fnv.New64a()
	h.Write([]byte(v.String()))
	return int(h.Sum64() % uint64(len(r.sets)))
}

// coerceKey canonicalizes a routing-key value to its schema kind before it
// is hashed or compared against range bounds: strings parse through the
// column's parser ("05" and "5" are the same bigint key), numerics convert
// through their float reading the way the /load endpoint coerces wire rows.
func coerceKey(v storage.Value, kind storage.Kind) storage.Value {
	if v.Kind == kind {
		return v
	}
	if v.Kind == storage.KindString {
		if p, err := storage.ParseValue(kind, v.S); err == nil {
			return p
		}
	}
	switch kind {
	case storage.KindInt64:
		return storage.Int64(int64(v.AsFloat()))
	case storage.KindFloat64:
		return storage.Float64(v.AsFloat())
	case storage.KindTime:
		return storage.TimeUnix(int64(v.AsFloat()))
	default:
		return storage.Str(v.String())
	}
}

// loadBatches routes rows into per-shard batches by the key column. An
// unrouted table (created behind the router) batches everything to shard 0;
// a table without the key column replicates the full batch to every shard.
func (r *Router) loadBatches(table string, rows []storage.Row) ([][]storage.Row, error) {
	batches := make([][]storage.Row, len(r.sets))
	m := r.meta(table)
	switch {
	case m == nil:
		batches[0] = rows
		return batches, nil
	case m.keyIdx < 0:
		for i := range batches {
			batches[i] = rows
		}
		return batches, nil
	}
	kind := m.schema.Col(m.keyIdx).Kind
	for _, row := range rows {
		if m.keyIdx >= len(row) {
			return nil, fmt.Errorf("shard: row has %d columns; routing key %q is column %d", len(row), r.cfg.Key, m.keyIdx+1)
		}
		si := r.route(row[m.keyIdx], kind)
		batches[si] = append(batches[si], row)
	}
	return batches, nil
}

// LoadRowsByName appends rows, routing each row to its shard by the key
// column (tables without the key column replicate the batch to every
// shard). Without a WAL, a shard's batch is written synchronously to every
// one of its replicas, so the copies stay exactly consistent — a down
// replica therefore fails the load. With EnableWAL the load commits to the
// replicas' logs (skipping dead replicas, which catch up on Revive) and
// background appliers apply it. Loads run concurrently; each warehouse's
// own write lock keeps its load atomic.
//
//dgflint:compat signature fixed by the server.Backend / wal.Backend interfaces, which are ctx-free
func (r *Router) LoadRowsByName(table string, rows []storage.Row) error {
	if r.wal.Load() != nil {
		_, err := r.LoadRowsDurable(context.Background(), table, rows, false)
		return err
	}
	return r.loadRowsReplicated(table, rows)
}

// loadRowsReplicated is the non-WAL load: every replica of each routed
// shard is written synchronously. It takes no Context because the write
// is not abortable midway — cancelling between replicas would leave the
// copies of a shard diverged.
func (r *Router) loadRowsReplicated(table string, rows []storage.Row) error {
	batches, err := r.loadBatches(table, rows)
	if err != nil {
		return err
	}
	return r.eachShard(func(rs *replicaSet) error {
		if len(batches[rs.shard]) == 0 {
			return nil
		}
		return r.loadShardReplicas(rs, table, batches[rs.shard])
	})
}

// loadShardReplicas writes one batch to every replica of one shard
// concurrently, failing with the store's identity if any copy rejects it.
// A replica known to be down fails the load before any copy is written, so
// the surviving replicas do not silently diverge from the dead one (a
// replica dying mid-load can still leave copies diverged; the returned
// error names the store to rebuild — or enable the WAL, whose log replay
// repairs exactly this).
func (r *Router) loadShardReplicas(rs *replicaSet, table string, rows []storage.Row) error {
	for _, rep := range rs.reps {
		if rep.isKilled() {
			return fmt.Errorf("load rejected: %w", rep.downErr())
		}
	}
	errs := make([]error, len(rs.reps))
	var wg sync.WaitGroup
	for j, rep := range rs.reps {
		wg.Add(1)
		go func(j int, rep *replica) {
			defer wg.Done()
			if rep.isKilled() {
				errs[j] = rep.downErr()
				return
			}
			errs[j] = rep.w.LoadRowsByName(table, rows)
		}(j, rep)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			if len(rs.reps) > 1 {
				return fmt.Errorf("replica %d: load failed: %w", j, err)
			}
			return err
		}
	}
	return nil
}

// eachShard runs fn on every shard's replica set concurrently and folds the
// per-shard outcomes into one error that enumerates every failed shard and
// the shards that applied (see loadOutcome) — the same accounting broadcast
// gives DDL, so a partially-applied load names exactly which shards took it.
func (r *Router) eachShard(fn func(rs *replicaSet) error) error {
	errs := make([]error, len(r.sets))
	var wg sync.WaitGroup
	for i, rs := range r.sets {
		wg.Add(1)
		go func(i int, rs *replicaSet) {
			defer wg.Done()
			errs[i] = fn(rs)
		}(i, rs)
	}
	wg.Wait()
	return r.loadOutcome(errs)
}

// loadOutcome folds per-shard load errors into a single error naming every
// failed shard and the shards that applied, mirroring broadcastOutcome. A
// single-shard fleet passes its error through untouched, keeping a 1-shard
// router's errors identical to a bare warehouse's.
func (r *Router) loadOutcome(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	var failed []string
	var applied []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("shard %d/%d failed: %v", i, len(errs), err))
		} else {
			applied = append(applied, strconv.Itoa(i))
		}
	}
	if failed == nil {
		return nil
	}
	msg := strings.Join(failed, "; ")
	if len(applied) > 0 {
		msg += "; shards " + strings.Join(applied, ",") + " applied"
	} else {
		msg += "; no shard applied"
	}
	var causes []error
	for _, err := range errs {
		if err != nil {
			causes = append(causes, err)
		}
	}
	return &fleetLoadError{msg: "shard: load diverged the fleet: " + msg, causes: causes}
}

// fleetLoadError enumerates a partially-applied load's per-shard failures
// while keeping every cause reachable through errors.Is/As.
type fleetLoadError struct {
	msg    string
	causes []error
}

func (e *fleetLoadError) Error() string   { return e.msg }
func (e *fleetLoadError) Unwrap() []error { return e.causes }

// TableVersions sums the shards' per-table mutation counters. A shard's
// counter is the max across its replicas (replicas apply every write, so
// the copies agree; max keeps the value monotone even mid-broadcast). Each
// counter only grows, so the sum only grows — the monotonicity the serving
// layer's version-keyed result cache relies on.
func (r *Router) TableVersions(names ...string) map[string]uint64 {
	out := make(map[string]uint64, len(names))
	for _, rs := range r.sets {
		shardMax := make(map[string]uint64, len(names))
		for _, rep := range rs.reps {
			for k, v := range rep.w.TableVersions(names...) {
				if v > shardMax[k] {
					shardMax[k] = v
				}
			}
		}
		for k, v := range shardMax {
			out[k] += v
		}
	}
	return out
}

// TableSchema returns the named table's schema (identical on every shard by
// DDL broadcast).
func (r *Router) TableSchema(name string) (*storage.Schema, error) {
	if m := r.meta(name); m != nil {
		return m.schema, nil
	}
	return r.sets[0].reps[0].w.TableSchema(name)
}

// TableInfos merges the shards' catalog snapshots: partitioned tables sum
// sizes across shards; replicated tables report shard 0's size (each shard
// holds a full copy — summing would overstate the logical table N-fold).
// Every table's Version is the same summed counter TableVersions reports —
// replicated tables included — so the version /tables shows is exactly the
// version the serving layer's result-cache keys carry; the two views cannot
// disagree. The rest (schema, format, indexes) is identical everywhere by
// DDL broadcast.
func (r *Router) TableInfos() []hive.TableInfo {
	infos := r.sets[0].reps[0].w.TableInfos()
	for _, rs := range r.sets[1:] {
		byName := map[string]hive.TableInfo{}
		for _, o := range rs.reps[0].w.TableInfos() {
			byName[o.Name] = o
		}
		for i := range infos {
			if m := r.meta(infos[i].Name); m != nil && m.keyIdx < 0 {
				continue
			}
			if o, ok := byName[infos[i].Name]; ok {
				infos[i].SizeBytes += o.SizeBytes
			}
		}
	}
	names := make([]string, len(infos))
	for i := range infos {
		names[i] = infos[i].Name
	}
	versions := r.TableVersions(names...)
	for i := range infos {
		infos[i].Version = versions[strings.ToLower(infos[i].Name)]
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ShardSizes reports each shard's byte size of the named table (replica 0's
// copy), for balance inspection in tests and tooling.
func (r *Router) ShardSizes(table string) []int64 {
	out := make([]int64, len(r.sets))
	for i, rs := range r.sets {
		w := rs.reps[0].w
		t, err := w.Table(table)
		if err != nil {
			continue
		}
		out[i] = w.TableSizeBytes(t)
	}
	return out
}
