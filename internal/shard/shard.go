// Package shard partitions tables across N independent warehouses and
// executes queries by scatter-gather: DDL broadcasts to every shard, loads
// route row-by-row on a configurable key (hash on meter/user id, or ranges
// on region), and SELECTs fan out concurrently to the shards the predicate
// can reach, each returning mergeable partial-aggregation state that the
// router combines and finalizes once.
//
// The paper's deployment indexes billions of readings from ~17M meters; one
// in-process Warehouse cannot scale to that. Distributed partial
// aggregation over partitioned stores is the same shape P2P
// multidimensional indexes use (Bongers & Pouwelse's survey): every shard
// keeps its own DGFIndex over its own slice of the data, and the additive
// aggregates the paper pre-computes per GFU (sum/count/min/max, avg as
// sum+count) merge across shards exactly as they merge across grid cells.
//
// The router implements the serving layer's Backend contract, so DGFServe's
// admission control, caches, and metrics sit in front of a sharded fleet
// unchanged.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/gridfile"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// Strategy selects how a routing-key value maps to a shard.
type Strategy uint8

const (
	// HashKey routes by FNV-1a hash of the key value: uniform spread, and
	// equality predicates on the key prune to a single shard.
	HashKey Strategy = iota
	// RangeKey routes by position among Config.Bounds: contiguous key
	// ranges per shard, so range predicates on the key prune shards.
	RangeKey
)

// String names the strategy for flags and logs.
func (s Strategy) String() string {
	if s == RangeKey {
		return "range"
	}
	return "hash"
}

// ParseStrategy reads "hash" or "range".
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "", "hash":
		return HashKey, nil
	case "range":
		return RangeKey, nil
	default:
		return 0, fmt.Errorf("shard: unknown strategy %q (want hash or range)", s)
	}
}

// Config describes the partitioning of a Router.
type Config struct {
	// Shards is the number of warehouses (>= 1).
	Shards int
	// Key names the routing column (case-insensitive). Tables whose schema
	// lacks the column replicate to every shard instead — which keeps
	// broadcast-join sides (the paper's userInfo) available shard-locally.
	Key string
	// Strategy selects hash or range routing. Default HashKey.
	Strategy Strategy
	// Bounds holds Shards-1 ascending split points for RangeKey: shard i
	// covers key values in [Bounds[i-1], Bounds[i]). Ignored for HashKey.
	Bounds []float64
}

func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: need at least 1 shard, got %d", c.Shards)
	}
	if strings.TrimSpace(c.Key) == "" {
		return fmt.Errorf("shard: routing key column must be named")
	}
	if c.Strategy == RangeKey {
		if len(c.Bounds) != c.Shards-1 {
			return fmt.Errorf("shard: range routing over %d shards needs %d bounds, got %d",
				c.Shards, c.Shards-1, len(c.Bounds))
		}
		for i := 1; i < len(c.Bounds); i++ {
			if c.Bounds[i-1] >= c.Bounds[i] {
				return fmt.Errorf("shard: bounds must be strictly ascending")
			}
		}
	}
	return nil
}

// tableMeta is the router's record of one table created through it.
type tableMeta struct {
	schema *storage.Schema
	// keyIdx is the routing column's position in the schema; -1 marks a
	// replicated table (no routing column).
	keyIdx int
}

// Router partitions tables across shards and executes statements by
// broadcast (DDL), routed append (loads) or scatter-gather (SELECT). It
// implements the serving layer's Backend interface; all methods are safe
// for concurrent use — each shard warehouse carries its own locking, and
// the router itself only guards its table records.
type Router struct {
	cfg    Config
	shards []*hive.Warehouse

	mu     sync.RWMutex
	tables map[string]*tableMeta
}

// New builds a router over cfg.Shards fresh warehouses produced by mk
// (called once per shard index). Each shard must get its own filesystem:
// shards are independent stores, not views of one.
func New(cfg Config, mk func(i int) *hive.Warehouse) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg, tables: map[string]*tableMeta{}}
	for i := 0; i < cfg.Shards; i++ {
		w := mk(i)
		if w == nil {
			return nil, fmt.Errorf("shard: nil warehouse for shard %d", i)
		}
		r.shards = append(r.shards, w)
	}
	return r, nil
}

// Config returns the router's partitioning configuration.
func (r *Router) Config() Config { return r.cfg }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns the i-th shard warehouse (for tests and tooling).
func (r *Router) Shard(i int) *hive.Warehouse { return r.shards[i] }

// meta looks up the router's record of a table (nil if the table was not
// created through the router).
func (r *Router) meta(table string) *tableMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tables[strings.ToLower(table)]
}

// Exec parses and executes one HiveQL statement across the fleet.
func (r *Router) Exec(sql string) (*hive.Result, error) {
	stmt, err := hive.Parse(sql)
	if err != nil {
		return nil, err
	}
	return r.ExecParsed(stmt, hive.ExecOptions{})
}

// ExecContext is Exec under ctx: a ctx that ends mid-scatter cancels every
// in-flight shard scan at its next split boundary.
func (r *Router) ExecContext(ctx context.Context, sql string, opts hive.ExecOptions) (*hive.Result, error) {
	stmt, err := hive.Parse(sql)
	if err != nil {
		return nil, err
	}
	return r.ExecParsedContext(ctx, stmt, opts)
}

// ExecParsed executes an already-parsed statement. It is ExecParsedContext
// under context.Background().
func (r *Router) ExecParsed(stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	return r.ExecParsedContext(context.Background(), stmt, opts)
}

// ExecParsedContext executes an already-parsed statement: SELECTs
// scatter-gather under a cancellable group, catalog reads go to shard 0
// (every shard holds the same catalog), and DDL broadcasts to all shards.
func (r *Router) ExecParsedContext(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	switch s := stmt.(type) {
	case *hive.SelectStmt:
		return r.execSelect(ctx, s, opts)
	case *hive.ExplainStmt:
		if len(r.shards) == 1 {
			// Pass through: bit-identical to a bare warehouse.
			return r.shards[0].ExecParsedContext(ctx, stmt, opts)
		}
		plan, err := r.Explain(s.Select, opts)
		if err != nil {
			return nil, err
		}
		return plan.Render(), nil
	case *hive.ShowTablesStmt, *hive.DescribeStmt:
		return r.shards[0].ExecParsedContext(ctx, stmt, opts)
	case *hive.CreateTableStmt:
		res, err := r.broadcast(ctx, stmt, opts)
		if err != nil {
			return nil, err
		}
		schema := storage.NewSchema(s.Cols...)
		r.mu.Lock()
		r.tables[strings.ToLower(s.Name)] = &tableMeta{schema: schema, keyIdx: schema.ColIndex(r.cfg.Key)}
		r.mu.Unlock()
		return res, nil
	case *hive.DropTableStmt:
		res, err := r.broadcast(ctx, stmt, opts)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		delete(r.tables, strings.ToLower(s.Name))
		r.mu.Unlock()
		return res, nil
	default:
		// CREATE INDEX and future DDL: every shard indexes its own slice.
		return r.broadcast(ctx, stmt, opts)
	}
}

// broadcast runs one statement on every shard concurrently and returns
// shard 0's result. On error the shards may diverge (some applied the DDL,
// some did not); the first error is returned and the caller should retry or
// rebuild the fleet.
func (r *Router) broadcast(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	results := make([]*hive.Result, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.shards[i].ExecParsedContext(ctx, stmt, opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// routeSelect is the one place the fleet decides how a SELECT executes:
// pass through to one warehouse untouched, or scatter to a target set.
// Execution, EXPLAIN, and the streaming cursor all consume this single
// decision, so the plan a router announces, the shards a cursor opens, and
// the shards the gather reads can never diverge.
//
// passthrough=true names the single answering warehouse (always shard 0):
// a one-shard fleet (bit-identical to a bare warehouse — stats and access
// path included), a table created behind the router (only shard 0 holds
// it), or a replicated FROM table (every shard holds a full copy). The one
// replicated-FROM exception is a join against a partitioned table: every
// shard then holds the full FROM copy plus a disjoint slice of the join
// side, so a full fan-out counts every match exactly once, while shard 0
// alone would silently drop the other shards' join rows.
func (r *Router) routeSelect(s *hive.SelectStmt) (targets []int, passthrough bool, err error) {
	if len(r.shards) == 1 {
		return nil, true, nil
	}
	if s.InsertDir != "" {
		return nil, false, fmt.Errorf("shard: INSERT OVERWRITE DIRECTORY is not supported on a sharded backend")
	}
	m := r.meta(s.From.Table)
	if m == nil {
		return nil, true, nil
	}
	if m.keyIdx < 0 {
		if s.Join != nil {
			if jm := r.meta(s.Join.Table.Table); jm != nil && jm.keyIdx >= 0 {
				return r.allShards(), false, nil
			}
		}
		return nil, true, nil
	}
	if err := r.checkJoin(s); err != nil {
		return nil, false, err
	}
	return r.targetShards(s, m), false, nil
}

// execSelect is the scatter-gather path: prune shards by the routing-key
// predicate, run SelectPartial on each target concurrently, merge the
// partial states, finalize once.
func (r *Router) execSelect(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (*hive.Result, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		return r.shards[0].ExecParsedContext(ctx, s, opts)
	}
	return r.scatter(ctx, s, opts, targets)
}

// scatterPartials fans the SELECT out to the target shards under a
// cancellable group: the first shard error (or a caller cancel) cancels the
// shared sub-context, and every sibling scan aborts at its next split
// boundary instead of running — and holding its goroutine — to completion.
// The goroutines are always joined before returning; a non-nil error is the
// root cause (a sibling's ctx.Canceled never masks the shard error that
// triggered the cancellation).
func (r *Router) scatterPartials(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) ([]*hive.PartialResult, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([]*hive.PartialResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			parts[i], errs[i] = r.shards[si].SelectPartialContext(sctx, s, opts)
			if errs[i] != nil {
				cancel()
			}
		}(i, si)
	}
	wg.Wait()
	// Prefer the root cause: a real shard failure outranks the ctx errors
	// its cancellation induced in siblings; a caller cancel surfaces as the
	// caller ctx's own error.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		if cause := ctx.Err(); cause != nil {
			return nil, fmt.Errorf("shard: scatter canceled: %w", cause)
		}
		return nil, ctxErr
	}
	return parts, nil
}

// scatter runs scatterPartials and merges the shards' partial results into
// one finalized Result.
func (r *Router) scatter(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) (*hive.Result, error) {
	start := time.Now()
	parts, err := r.scatterPartials(ctx, s, opts, targets)
	if err != nil {
		return nil, err
	}

	merged := parts[0]
	stats := merged.Stats
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			return nil, err
		}
		mergeStats(&stats, p.Stats)
	}
	merged.Stats = stats
	res := merged.Finalize(s.Limit)
	res.Stats.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(targets), len(r.shards), parts[0].Stats.AccessPath)
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// Explain plans a SELECT across the fleet without executing it, consuming
// the same routeSelect decision execution does: pass-through cases return
// the single answering warehouse's plan untouched; scatter cases merge the
// target shards' plans (volumes and slice counts sum — exactly how the
// executed stats merge) and prefix the access path with the same
// "sharded(k/n):" label the gather will report.
func (r *Router) Explain(s *hive.SelectStmt, opts hive.ExecOptions) (*hive.ExplainPlan, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		return r.shards[0].Explain(s, opts)
	}
	return r.explainScatter(s, opts, targets)
}

// explainScatter merges the per-target-shard plans into the fleet plan.
func (r *Router) explainScatter(s *hive.SelectStmt, opts hive.ExecOptions, targets []int) (*hive.ExplainPlan, error) {
	plans := make([]*hive.ExplainPlan, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			plans[i], errs[i] = r.shards[si].Explain(s, opts)
		}(i, si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The gather reports the first target's access path; so does the plan.
	merged := *plans[0]
	merged.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(targets), len(r.shards), plans[0].AccessPath)
	merged.ShardsTotal = len(r.shards)
	merged.ShardsTargeted = len(targets)
	merged.TargetShards = append([]int(nil), targets...)
	for _, p := range plans[1:] {
		if merged.ProjectedBytes >= 0 && p.ProjectedBytes >= 0 {
			merged.ProjectedBytes += p.ProjectedBytes
		} else {
			merged.ProjectedBytes = -1
		}
		merged.GFUSlices += p.GFUSlices
		merged.InnerCells += p.InnerCells
		merged.BoundaryCells += p.BoundaryCells
		merged.MissingCells += p.MissingCells
	}
	return &merged, nil
}

// mergeStats folds one more shard's cost into the scatter-gather total:
// data volumes add; the slowest shard bounds the simulated time, because
// the shards run concurrently.
func mergeStats(dst *hive.QueryStats, s hive.QueryStats) {
	dst.RecordsRead += s.RecordsRead
	dst.BytesRead += s.BytesRead
	dst.Splits += s.Splits
	dst.Seeks += s.Seeks
	if s.SimTotalSec() > dst.SimTotalSec() {
		dst.IndexSimSec, dst.DataSimSec = s.IndexSimSec, s.DataSimSec
	}
}

// checkJoin verifies a join is answerable shard-locally: the right table is
// replicated on every shard, or both join columns are the routing key (the
// tables are then co-partitioned and matching rows share a shard).
func (r *Router) checkJoin(s *hive.SelectStmt) error {
	if s.Join == nil {
		return nil
	}
	rm := r.meta(s.Join.Table.Table)
	if rm == nil || rm.keyIdx < 0 {
		return nil
	}
	if strings.EqualFold(s.Join.Left.Name, r.cfg.Key) && strings.EqualFold(s.Join.Right.Name, r.cfg.Key) {
		return nil
	}
	return fmt.Errorf("shard: join with %q must be on the shard key %q (co-partitioned); join on other columns needs a replicated table (one without the key column)",
		s.Join.Table.Table, r.cfg.Key)
}

// targetShards prunes the fan-out by the WHERE constraint on the routing
// key: hash routing prunes equality predicates to one shard, range routing
// prunes to the shards whose key interval intersects the predicate range.
func (r *Router) targetShards(s *hive.SelectStmt, m *tableMeta) []int {
	ranges := hive.WhereRanges(s, m.schema)
	kr, ok := ranges[strings.ToLower(m.schema.Col(m.keyIdx).Name)]
	if !ok {
		return r.allShards()
	}
	if r.cfg.Strategy == RangeKey {
		var out []int
		for i := 0; i < len(r.shards); i++ {
			if r.shardIntervalIntersects(i, kr) {
				out = append(out, i)
			}
		}
		if len(out) == 0 {
			// Contradictory predicate: any one shard yields the correct
			// empty (or scalar-NaN) result.
			out = []int{0}
		}
		return out
	}
	// HashKey: only a point constraint picks a shard.
	if !kr.LoUnbounded && !kr.HiUnbounded && !kr.LoOpen && !kr.HiOpen && storage.Compare(kr.Lo, kr.Hi) == 0 {
		return []int{r.route(kr.Lo)}
	}
	return r.allShards()
}

func (r *Router) allShards() []int {
	out := make([]int, len(r.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// shardIntervalIntersects reports whether shard i's key interval
// [Bounds[i-1], Bounds[i]) meets the predicate range.
func (r *Router) shardIntervalIntersects(i int, kr gridfile.Range) bool {
	if i > 0 && !kr.HiUnbounded {
		lo, hi := r.cfg.Bounds[i-1], kr.Hi.AsFloat()
		if hi < lo || (hi == lo && kr.HiOpen) {
			return false
		}
	}
	if i < len(r.cfg.Bounds) && !kr.LoUnbounded {
		if kr.Lo.AsFloat() >= r.cfg.Bounds[i] {
			return false
		}
	}
	return true
}

// route maps one routing-key value to its shard.
func (r *Router) route(v storage.Value) int {
	if r.cfg.Strategy == RangeKey {
		f := v.AsFloat()
		for i, b := range r.cfg.Bounds {
			if f < b {
				return i
			}
		}
		return len(r.shards) - 1
	}
	h := fnv.New64a()
	h.Write([]byte(v.String()))
	return int(h.Sum64() % uint64(len(r.shards)))
}

// LoadRowsByName appends rows, routing each row to its shard by the key
// column (tables without the key column replicate the batch to every
// shard). Shard loads run concurrently; each shard's own write lock keeps
// its load atomic.
func (r *Router) LoadRowsByName(table string, rows []storage.Row) error {
	m := r.meta(table)
	switch {
	case m == nil:
		return r.shards[0].LoadRowsByName(table, rows)
	case m.keyIdx < 0:
		return r.eachShard(func(w *hive.Warehouse) error {
			return w.LoadRowsByName(table, rows)
		})
	}
	batches := make([][]storage.Row, len(r.shards))
	for _, row := range rows {
		if m.keyIdx >= len(row) {
			return fmt.Errorf("shard: row has %d columns; routing key %q is column %d", len(row), r.cfg.Key, m.keyIdx+1)
		}
		si := r.route(row[m.keyIdx])
		batches[si] = append(batches[si], row)
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		if len(batches[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.shards[i].LoadRowsByName(table, batches[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eachShard runs fn on every shard concurrently and returns the first
// error.
func (r *Router) eachShard(fn func(w *hive.Warehouse) error) error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(r.shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TableVersions sums the shards' per-table mutation counters. Each shard's
// counter only grows, so the sum only grows — the monotonicity the serving
// layer's version-keyed result cache relies on.
func (r *Router) TableVersions(names ...string) map[string]uint64 {
	out := make(map[string]uint64, len(names))
	for _, w := range r.shards {
		for k, v := range w.TableVersions(names...) {
			out[k] += v
		}
	}
	return out
}

// TableSchema returns the named table's schema (identical on every shard by
// DDL broadcast).
func (r *Router) TableSchema(name string) (*storage.Schema, error) {
	if m := r.meta(name); m != nil {
		return m.schema, nil
	}
	return r.shards[0].TableSchema(name)
}

// TableInfos merges the shards' catalog snapshots: partitioned tables sum
// sizes and versions across shards; replicated tables report shard 0's
// numbers (each shard holds a full copy — summing would overstate the
// logical table N-fold). The rest (schema, format, indexes) is identical
// everywhere by DDL broadcast.
func (r *Router) TableInfos() []hive.TableInfo {
	infos := r.shards[0].TableInfos()
	for _, w := range r.shards[1:] {
		byName := map[string]hive.TableInfo{}
		for _, o := range w.TableInfos() {
			byName[o.Name] = o
		}
		for i := range infos {
			if m := r.meta(infos[i].Name); m != nil && m.keyIdx < 0 {
				continue
			}
			if o, ok := byName[infos[i].Name]; ok {
				infos[i].SizeBytes += o.SizeBytes
				infos[i].Version += o.Version
			}
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ShardSizes reports each shard's byte size of the named table, for balance
// inspection in tests and tooling.
func (r *Router) ShardSizes(table string) []int64 {
	out := make([]int64, len(r.shards))
	for i, w := range r.shards {
		t, err := w.Table(table)
		if err != nil {
			continue
		}
		out[i] = w.TableSizeBytes(t)
	}
	return out
}
