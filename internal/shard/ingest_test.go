package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/wal"
)

// tearLastRecord truncates one replica's log keep bytes into its final
// record's payload — the torn frame a crash mid-append leaves behind.
func tearLastRecord(t *testing.T, dir string, shard, replica, keep int) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("shard-%03d", shard), fmt.Sprintf("replica-%d.wal", replica))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, last := 0, -1
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		last = off
		off += 8 + n
	}
	if last < 0 {
		t.Fatalf("no complete record in %s", path)
	}
	if err := os.Truncate(path, int64(last+8+keep)); err != nil {
		t.Fatal(err)
	}
}

// extraMeterRows builds a deterministic batch of meterdata rows beyond the
// workload generator's range, routed across every shard by userId.
func extraMeterRows(batch, n int) []storage.Row {
	rows := make([]storage.Row, 0, n)
	for i := 0; i < n; i++ {
		u := int64(1 + (batch*7+i*3)%40)
		rows = append(rows, storage.Row{
			storage.Int64(u),
			storage.Int64(1 + u%4),
			storage.TimeUnix(1354406400 + int64(batch)*3600 + int64(i)*60),
			storage.Float64(float64(batch) + float64(i)*0.25),
		})
	}
	return rows
}

// runSuiteWarehouse renders the meter query suite against one replica
// warehouse exactly — the per-replica half of the bit-identical checks.
func runSuiteWarehouse(t *testing.T, w *hive.Warehouse) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, q := range meterQuerySuite(testMeterConfig()) {
		res, err := w.Exec(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		out[q] = strings.Join(res.Columns, ",") + "\n" + strings.Join(renderRows(res.Rows), "\n") +
			fmt.Sprintf("\nrecords=%d bytes=%d path=%s", res.Stats.RecordsRead, res.Stats.BytesRead, res.Stats.AccessPath)
	}
	return out
}

// waitFleetSettled polls until no replica is catching up, then drains the
// WAL so every logged record is applied.
func waitFleetSettled(t *testing.T, r *Router) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		catching := 0
		for _, sh := range r.Health() {
			catching += sh.CatchingUp
		}
		if catching == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catch-up never completed: %+v", r.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.DrainWAL(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// enableTestWAL turns on the WAL with single-record apply batches so the
// applier's file layout matches a synchronous load's exactly — the
// bit-identical comparisons include scan stats, which see part files.
func enableTestWAL(t *testing.T, r *Router, dir string) {
	t.Helper()
	if err := r.EnableWAL(WALConfig{Dir: dir, Fsync: wal.PolicyOff, MaxBatchRows: 1}); err != nil {
		t.Fatalf("enable wal: %v", err)
	}
}

// TestIngestChaosKillLoadReviveCatchUp is the acceptance chaos test: with
// Replicas:2 and the WAL on, kill a replica, keep loading (every load
// succeeds — hinted handoff), revive it, and after catch-up both replicas
// of every shard answer the full query suite bit-identically: no
// duplicated and no dropped rows.
func TestIngestChaosKillLoadReviveCatchUp(t *testing.T) {
	r := replicatedRouter(t, 4, 2, true)
	t.Cleanup(func() { r.CloseWAL() })
	enableTestWAL(t, r, t.TempDir())

	loaded := 0
	load := func(batch int) {
		t.Helper()
		rows := extraMeterRows(batch, 6)
		if err := r.LoadRowsByName("meterdata", rows); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		loaded += len(rows)
	}

	load(0)
	r.Kill(1, 0)
	for b := 1; b <= 5; b++ {
		load(b) // loads must keep succeeding with a dead replica
	}
	// Reads fail over to the surviving replica meanwhile.
	if _, err := r.Exec(`SELECT count(*) FROM meterdata`); err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	// The dead replica is owed records in the hint queue.
	hinted := int64(0)
	for _, ss := range r.WALStats() {
		for _, rs := range ss.Replicas {
			hinted += rs.HintedRecords
		}
	}
	if hinted == 0 {
		t.Fatal("no hinted records while a replica was dead")
	}

	r.Revive(1, 0)
	for b := 6; b <= 8; b++ {
		load(b) // loads during catch-up commit to the revived log too
	}
	waitFleetSettled(t, r)

	for _, sh := range r.Health() {
		if sh.Live != 2 {
			t.Fatalf("shard %d not fully live after catch-up: %+v", sh.Shard, sh)
		}
	}
	for si := 0; si < r.NumShards(); si++ {
		want := runSuiteWarehouse(t, r.Replica(si, 0))
		got := runSuiteWarehouse(t, r.Replica(si, 1))
		for q, w := range want {
			if got[q] != w {
				t.Fatalf("shard %d replicas diverged on %q:\nreplica 0: %s\nreplica 1: %s", si, q, w, got[q])
			}
		}
	}
	// No dropped or duplicated rows fleet-wide.
	total := mustExec(t, r, `SELECT count(*) FROM meterdata`).Rows[0][0].AsFloat()
	base := float64(len(testMeterConfig().AllRows()))
	if total != base+float64(loaded) {
		t.Fatalf("count(*) = %v, want %v base + %d loaded", total, base, loaded)
	}
	st := r.WALStats()
	if rep := st[1].Replicas[0]; rep.ReplayedRows == 0 {
		t.Fatalf("revived replica replayed nothing: %+v", rep)
	}
}

// TestIngestWALFailoverSuiteGreen re-runs the kill/revive failover shape
// with the WAL enabled: queries stay bit-identical with a replica down,
// and after revive + catch-up the whole fleet matches the healthy suite.
func TestIngestWALFailoverSuiteGreen(t *testing.T) {
	r := replicatedRouter(t, 4, 2, true)
	t.Cleanup(func() { r.CloseWAL() })
	enableTestWAL(t, r, t.TempDir())
	healthy := runSuite(t, r)

	for si := 0; si < r.NumShards(); si++ {
		r.Kill(si, si%2)
	}
	degraded := runSuite(t, r)
	for q, want := range healthy {
		if got := degraded[q]; got != want {
			t.Fatalf("%q:\nhealthy : %s\ndegraded: %s", q, want, got)
		}
	}
	for si := 0; si < r.NumShards(); si++ {
		r.Revive(si, si%2)
	}
	waitFleetSettled(t, r)
	revived := runSuite(t, r)
	for q, want := range healthy {
		if got := revived[q]; got != want {
			t.Fatalf("after revive %q:\nhealthy: %s\nrevived: %s", q, want, got)
		}
	}
}

// TestIngestSyncAckVisibility: a sync load is queryable the moment the call
// returns; an async load is durable immediately and visible after drain.
func TestIngestSyncAckVisibility(t *testing.T) {
	r := replicatedRouter(t, 2, 2, false)
	t.Cleanup(func() { r.CloseWAL() })
	enableTestWAL(t, r, t.TempDir())
	before := mustExec(t, r, `SELECT count(*) FROM meterdata`).Rows[0][0].AsFloat()

	ack, err := r.LoadRowsDurable(context.Background(), "meterdata", extraMeterRows(0, 8), true)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Applied || ack.MaxLSN == 0 {
		t.Fatalf("sync ack: %+v", ack)
	}
	if got := mustExec(t, r, `SELECT count(*) FROM meterdata`).Rows[0][0].AsFloat(); got != before+8 {
		t.Fatalf("sync load not visible: %v, want %v", got, before+8)
	}

	ack, err = r.LoadRowsDurable(context.Background(), "meterdata", extraMeterRows(1, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied {
		t.Fatalf("async ack claims applied: %+v", ack)
	}
	waitFleetSettled(t, r)
	if got := mustExec(t, r, `SELECT count(*) FROM meterdata`).Rows[0][0].AsFloat(); got != before+12 {
		t.Fatalf("async load lost: %v, want %v", got, before+12)
	}
}

// TestIngestConcurrentLoadersWithKill hammers the WAL from concurrent
// loaders while a replica dies and revives mid-stream; afterwards both
// replicas of every shard agree on count and sum (default micro-batching,
// so coalescing itself is exercised under -race).
func TestIngestConcurrentLoadersWithKill(t *testing.T) {
	r := replicatedRouter(t, 2, 2, false)
	t.Cleanup(func() { r.CloseWAL() })
	if err := r.EnableWAL(WALConfig{Dir: t.TempDir(), Fsync: wal.PolicyOff}); err != nil {
		t.Fatal(err)
	}
	const loaders, batches, rowsPer = 4, 10, 5
	var wg sync.WaitGroup
	errCh := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if err := r.LoadRowsByName("meterdata", extraMeterRows(l*100+b, rowsPer)); err != nil {
					errCh <- err
					return
				}
			}
		}(l)
	}
	time.Sleep(2 * time.Millisecond)
	r.Kill(0, 1)
	time.Sleep(5 * time.Millisecond)
	r.Revive(0, 1)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("loader failed: %v", err)
	}
	waitFleetSettled(t, r)

	base := float64(len(testMeterConfig().AllRows()))
	want := base + float64(loaders*batches*rowsPer)
	if got := mustExec(t, r, `SELECT count(*) FROM meterdata`).Rows[0][0].AsFloat(); got != want {
		t.Fatalf("count(*) = %v, want %v", got, want)
	}
	for si := 0; si < r.NumShards(); si++ {
		var counts [2]string
		for ri := 0; ri < 2; ri++ {
			res, err := r.Replica(si, ri).Exec(`SELECT count(*), sum(powerConsumed) FROM meterdata`)
			if err != nil {
				t.Fatal(err)
			}
			counts[ri] = strings.Join(renderRows(res.Rows), "|")
		}
		if counts[0] != counts[1] {
			t.Fatalf("shard %d replicas disagree: %s vs %s", si, counts[0], counts[1])
		}
	}
}

// TestIngestCrashRecoveryBitIdentical is the crash test: load through the
// WAL, hard-stop the engine mid-apply, tear the tail of one shard's logs
// inside the final record, then rebuild a fresh fleet over the same WAL
// dir. Replay must reconstruct state bit-identical to a fleet that loaded
// the durable batches synchronously — the torn record (never durable, so
// never acked as applied-and-synced) is dropped everywhere, not partially.
func TestIngestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := testMeterConfig()

	mkFleet := func() *Router {
		r, err := New(Config{Shards: 4, Replicas: 2, Key: "userId"}, newShardWarehouse)
		if err != nil {
			t.Fatal(err)
		}
		setupMeter(t, r, cfg, true)
		return r
	}

	// Fleet 1: WAL on (fsync always — every batch durable), load batches,
	// crash without draining.
	r1 := mkFleet()
	if err := r1.EnableWAL(WALConfig{Dir: dir, Fsync: wal.PolicyAlways, MaxBatchRows: 1}); err != nil {
		t.Fatal(err)
	}
	var durable [][]storage.Row
	for b := 0; b < 6; b++ {
		rows := extraMeterRows(b, 5)
		if err := r1.LoadRowsByName("meterdata", rows); err != nil {
			t.Fatal(err)
		}
		durable = append(durable, rows)
	}
	// One more load whose record we tear below: a single row with a known
	// routing target.
	doomed := storage.Row{storage.Int64(9), storage.Int64(2), storage.TimeUnix(1354500000), storage.Float64(99.5)}
	if err := r1.LoadRowsByName("meterdata", []storage.Row{doomed}); err != nil {
		t.Fatal(err)
	}
	m := r1.meta("meterdata")
	doomedShard := r1.route(doomed[m.keyIdx], m.schema.Col(m.keyIdx).Kind)
	r1.AbortWAL() // hard crash: appliers stop wherever they are

	// Tear the final record on BOTH replica logs of the doomed shard at an
	// arbitrary byte, as a crash mid-append would.
	for ri := 0; ri < 2; ri++ {
		tearLastRecord(t, dir, doomedShard, ri, 3)
	}

	// Fleet 2: fresh (empty) warehouses, same DDL, same WAL dir — replay.
	r2 := mkFleet()
	t.Cleanup(func() { r2.CloseWAL() })
	if err := r2.EnableWAL(WALConfig{Dir: dir, Fsync: wal.PolicyOff, MaxBatchRows: 1}); err != nil {
		t.Fatal(err)
	}
	waitFleetSettled(t, r2)

	// Baseline: synchronous loads of exactly the durable batches.
	baseline := mkFleet()
	for _, rows := range durable {
		if err := baseline.LoadRowsByName("meterdata", rows); err != nil {
			t.Fatal(err)
		}
	}

	want := runSuite(t, baseline)
	got := runSuite(t, r2)
	for q, w := range want {
		if got[q] != w {
			t.Fatalf("replayed fleet diverged on %q:\nbaseline: %s\nreplayed: %s", q, w, got[q])
		}
	}
	for si := 0; si < r2.NumShards(); si++ {
		a := runSuiteWarehouse(t, r2.Replica(si, 0))
		b := runSuiteWarehouse(t, r2.Replica(si, 1))
		for q, w := range a {
			if b[q] != w {
				t.Fatalf("shard %d replicas diverged after replay on %q", si, q)
			}
		}
	}
}

// TestEachShardLoadErrorEnumeratesShards is the regression test for the
// load path's error accounting: a load that fails on one shard names that
// shard and enumerates the shards that applied, the way broadcast DDL
// already does, with the root cause still reachable via errors.Is.
func TestEachShardLoadErrorEnumeratesShards(t *testing.T) {
	r := replicatedRouter(t, 4, 2, false)
	r.Kill(2, 0)
	err := r.LoadRowsByName("meterdata", extraMeterRows(0, 40))
	if err == nil {
		t.Fatal("load with a dead replica succeeded without a WAL")
	}
	for _, want := range []string{"shard 2/4 failed", "shards 0,1,3 applied"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not contain %q", err, want)
		}
	}
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("root cause lost: %v", err)
	}

	// Kill the other shards too: the fold must say no shard applied.
	for si := 0; si < 4; si++ {
		r.Kill(si, 1)
	}
	err = r.LoadRowsByName("meterdata", extraMeterRows(1, 40))
	if err == nil || !strings.Contains(err.Error(), "no shard applied") {
		t.Fatalf("fully-failed load error = %v, want 'no shard applied'", err)
	}
}

// TestIngestLoadFailsWhenWholeShardDead: hinted handoff still refuses a
// load no replica can log.
func TestIngestLoadFailsWhenWholeShardDead(t *testing.T) {
	r := replicatedRouter(t, 2, 2, false)
	t.Cleanup(func() { r.CloseWAL() })
	enableTestWAL(t, r, t.TempDir())
	r.Kill(0, 0)
	r.Kill(0, 1)
	err := r.LoadRowsByName("meterdata", extraMeterRows(0, 40))
	if err == nil || !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("err = %v, want no-live-replica commit failure", err)
	}
}

// TestIngestValidatesRowShapeBeforeLogging: a malformed row is rejected at
// the ack, not logged to stall the applier forever.
func TestIngestValidatesRowShapeBeforeLogging(t *testing.T) {
	r := replicatedRouter(t, 2, 1, false)
	t.Cleanup(func() { r.CloseWAL() })
	enableTestWAL(t, r, t.TempDir())
	_, err := r.LoadRowsDurable(context.Background(), "meterdata",
		[]storage.Row{{storage.Int64(1)}}, false)
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("short row accepted: %v", err)
	}
	if _, err := r.LoadRowsDurable(context.Background(), "nosuch", extraMeterRows(0, 1), false); err == nil {
		t.Fatal("load into unknown table accepted")
	}
	st := r.WALStats()
	for _, ss := range st {
		if ss.NextLSN != 1 {
			t.Fatalf("invalid load consumed an LSN: %+v", ss)
		}
	}
}
