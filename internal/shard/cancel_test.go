package shard

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

func testRouter(t *testing.T, shards int, strategy Strategy, withIndex bool) *Router {
	t.Helper()
	cfg := Config{Shards: shards, Key: "userId", Strategy: strategy}
	if strategy == RangeKey {
		cfg.Bounds = rangeBounds(shards, 40)
	}
	r, err := New(cfg, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), withIndex)
	return r
}

func rangeBounds(shards, users int) []float64 {
	var out []float64
	for i := 1; i < shards; i++ {
		out = append(out, float64(i*users/shards)+0.5)
	}
	return out
}

// TestScatterCancelReleasesGoroutines: a cancelled scatter must join every
// shard goroutine — no leaks, bounded by runtime.NumGoroutine — and leave
// the fleet answering the next query.
func TestScatterCancelReleasesGoroutines(t *testing.T) {
	r := testRouter(t, 4, HashKey, false)
	before := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := r.SelectCursor(ctx, mustParseSelect(t, `SELECT userId, powerConsumed FROM meterdata`), hive.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Next() {
			t.Fatalf("no first row; err=%v", cur.Err())
		}
		cancel()
		cur.Close()
		if err := cur.Err(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("Err() = %v", err)
		}
	}

	// Cancellation propagates at split granularity; give the joined
	// goroutines a moment to exit, then require the count back at baseline
	// (small slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled scatters", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	res := mustExec(t, r, `SELECT count(*) FROM meterdata`)
	cfg := testMeterConfig()
	if got := int64(res.Rows[0][0].AsFloat()); got != int64(cfg.Rows()) {
		t.Fatalf("post-cancel count = %d, want %d", got, cfg.Rows())
	}
}

// TestScatterPreCancelled: ExecParsedContext on a dead ctx returns the ctx
// error, never a partial result.
func TestScatterPreCancelled(t *testing.T) {
	r := testRouter(t, 4, HashKey, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.ExecParsedContext(ctx, mustParseSelect(t, `SELECT count(*) FROM meterdata`), hive.ExecOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got a result alongside the ctx error: %+v", res)
	}
}

func mustParseSelect(t testing.TB, sql string) *hive.SelectStmt {
	t.Helper()
	stmt, err := hive.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*hive.SelectStmt)
}

// TestShardExplainTruthful: the router's EXPLAIN reports the same access
// path (sharded prefix included), the real target set, and — on DGF and
// scan paths — the exact summed byte volume the execution then reads.
func TestShardExplainTruthful(t *testing.T) {
	r := testRouter(t, 4, RangeKey, true)

	suite := []struct {
		sql         string
		wantTargets int // 0 = don't check
	}{
		{`SELECT sum(powerConsumed) FROM meterdata WHERE userId>=2 AND userId<=9`, 1},
		{`SELECT count(*) FROM meterdata`, 4},
		{`SELECT userId, powerConsumed FROM meterdata WHERE userId>=12 AND userId<=28`, 0},
	}
	for _, tc := range suite {
		plan, err := r.Explain(mustParseSelect(t, tc.sql), hive.ExecOptions{})
		if err != nil {
			t.Fatalf("Explain(%q): %v", tc.sql, err)
		}
		res := mustExec(t, r, tc.sql)
		if plan.AccessPath != res.Stats.AccessPath {
			t.Errorf("%s\n  EXPLAIN %q, execution %q", tc.sql, plan.AccessPath, res.Stats.AccessPath)
		}
		if plan.ShardsTotal != 4 || plan.ShardsTargeted != len(plan.TargetShards) {
			t.Errorf("%s\n  shard fields inconsistent: %+v", tc.sql, plan)
		}
		if tc.wantTargets > 0 && plan.ShardsTargeted != tc.wantTargets {
			t.Errorf("%s\n  targeted %d shards, want %d", tc.sql, plan.ShardsTargeted, tc.wantTargets)
		}
		// The "sharded(k/n):" prefix must agree with the target count.
		if !strings.HasPrefix(plan.AccessPath, "sharded(") {
			t.Errorf("%s\n  access path %q lacks the sharded prefix", tc.sql, plan.AccessPath)
		}
		if plan.ProjectedBytes >= 0 && plan.ProjectedBytes != res.Stats.BytesRead {
			t.Errorf("%s\n  EXPLAIN ProjectedBytes %d, execution BytesRead %d", tc.sql, plan.ProjectedBytes, res.Stats.BytesRead)
		}
	}

	// One-shard router: EXPLAIN passes through bit-identical to the bare
	// warehouse (no sharded prefix, no shard fields).
	one := func() *Router {
		r1, err := New(Config{Shards: 1, Key: "userId"}, newShardWarehouse)
		if err != nil {
			t.Fatal(err)
		}
		setupMeter(t, r1, testMeterConfig(), true)
		return r1
	}()
	bare := newShardWarehouse(0, 0)
	setupMeter(t, bare, testMeterConfig(), true)
	sql := `EXPLAIN SELECT sum(powerConsumed) FROM meterdata WHERE userId>=2 AND userId<=9`
	viaRouter := mustExec(t, one, sql)
	viaBare, err := bare.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRouter.Rows) != len(viaBare.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(viaRouter.Rows), len(viaBare.Rows))
	}
	for i := range viaRouter.Rows {
		for j := range viaRouter.Rows[i] {
			if viaRouter.Rows[i][j].String() != viaBare.Rows[i][j].String() {
				t.Fatalf("EXPLAIN row %d differs: %v vs %v", i, viaRouter.Rows[i], viaBare.Rows[i])
			}
		}
	}
}

// TestScatterCursorEquivalence: the streamed scatter delivers exactly the
// rows the materializing scatter-gather produces (order aside), and a LIMIT
// cursor stops the shard scans early.
func TestScatterCursorEquivalence(t *testing.T) {
	r := testRouter(t, 4, HashKey, false)

	sql := `SELECT userId, powerConsumed FROM meterdata WHERE userId>=5 AND userId<=30`
	want := mustExec(t, r, sql)
	cur, err := r.SelectCursor(context.Background(), mustParseSelect(t, sql), hive.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	n := 0
	for cur.Next() {
		counts[renderRows([]storage.Row{cur.Row()})[0]]++
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if n != len(want.Rows) {
		t.Fatalf("cursor delivered %d rows, scatter-gather %d", n, len(want.Rows))
	}
	for _, key := range renderRows(want.Rows) {
		counts[key]--
		if counts[key] < 0 {
			t.Fatalf("cursor missed row %s", key)
		}
	}
	if !strings.HasPrefix(cur.Stats().AccessPath, "sharded(") {
		t.Fatalf("cursor access path %q", cur.Stats().AccessPath)
	}

	// Aggregations stream their finalized rows with identical values.
	aggSQL := `SELECT regionId, sum(powerConsumed) FROM meterdata GROUP BY regionId`
	wantAgg := mustExec(t, r, aggSQL)
	aggCur, err := r.SelectCursor(context.Background(), mustParseSelect(t, aggSQL), hive.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var gotAgg []storage.Row
	for aggCur.Next() {
		gotAgg = append(gotAgg, aggCur.Row())
	}
	aggCur.Close()
	if len(gotAgg) != len(wantAgg.Rows) {
		t.Fatalf("agg cursor %d rows, exec %d", len(gotAgg), len(wantAgg.Rows))
	}

	// Global LIMIT through the scatter cursor.
	limCur, err := r.SelectCursor(context.Background(), mustParseSelect(t, `SELECT userId FROM meterdata LIMIT 4`), hive.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lim := 0
	for limCur.Next() {
		lim++
	}
	limCur.Close()
	if lim != 4 {
		t.Fatalf("LIMIT cursor delivered %d rows, want 4", lim)
	}
	if err := limCur.Err(); err != nil {
		t.Fatalf("LIMIT cursor err = %v", err)
	}
}
