// Scatter streaming: the router's cursor fans a plain-projection SELECT out
// to the target shards' warehouse cursors and forwards rows into one merged
// stream as the shards produce them — the first row arrives while the
// slowest shard is still scanning. Aggregations cannot stream before the
// gather (no row exists until every shard's partial state merges), so their
// cursor materializes the scatter-gather result and replays it.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// SelectCursor opens a streaming cursor over one SELECT across the fleet,
// consuming the same routeSelect decision execution does: single-shard
// fleets and shard-0-only tables pass through to the warehouse cursor
// untouched; partitioned tables scatter. Cancelling ctx (or closing the
// cursor) aborts every shard's scan at its next split boundary.
func (r *Router) SelectCursor(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (hive.Cursor, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		return r.shards[0].SelectCursor(ctx, s, opts)
	}
	if stmtIsAggregate(s) {
		res, err := r.scatter(ctx, s, opts, targets)
		if err != nil {
			return nil, err
		}
		return hive.NewRowsCursor(res), nil
	}
	return r.newScatterCursor(ctx, s, opts, targets)
}

// stmtIsAggregate mirrors the compiler's isAgg classification: the statement
// aggregates iff a SELECT item is an aggregate call.
func stmtIsAggregate(s *hive.SelectStmt) bool {
	for _, item := range s.Select {
		if _, ok := item.Expr.(hive.AggCall); ok {
			return true
		}
	}
	return false
}

// scatterCursor merges the target shards' row streams. Rows arrive in shard
// completion order; a LIMIT is enforced globally at delivery and cancels the
// shard scans once satisfied.
type scatterCursor struct {
	cctx    context.Context
	cancel  context.CancelFunc
	curs    []hive.Cursor
	nShards int

	ch   chan storage.Row
	done chan struct{}

	limit     int
	delivered int
	row       storage.Row

	// stopped marks a deliberate shutdown (LIMIT satisfied or Close): the
	// ctx errors it induces in shard cursors are not failures.
	stopped atomic.Bool

	stats hive.QueryStats
	err   error
}

func (r *Router) newScatterCursor(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int) (hive.Cursor, error) {
	cctx, cancel := context.WithCancel(ctx)
	c := &scatterCursor{
		cctx:    cctx,
		cancel:  cancel,
		nShards: len(r.shards),
		ch:      make(chan storage.Row, 64),
		done:    make(chan struct{}),
		limit:   s.Limit,
	}
	for _, si := range targets {
		cur, err := r.shards[si].SelectCursor(cctx, s, opts)
		if err != nil {
			cancel()
			for _, open := range c.curs {
				open.Close()
			}
			return nil, err
		}
		c.curs = append(c.curs, cur)
	}
	go c.run()
	return c, nil
}

func (c *scatterCursor) run() {
	defer close(c.done)
	start := time.Now()
	errs := make([]error, len(c.curs))
	var wg sync.WaitGroup
	for i, cur := range c.curs {
		wg.Add(1)
		go func(i int, cur hive.Cursor) {
			defer wg.Done()
			for cur.Next() {
				select {
				case c.ch <- cur.Row():
				case <-c.cctx.Done():
					cur.Close()
					return
				}
			}
			if err := cur.Err(); err != nil {
				errs[i] = err
				// First failure cancels the sibling scans.
				c.cancel()
			}
		}(i, cur)
	}
	wg.Wait()

	// Merge costs the way the gather does: volumes sum, the slowest shard
	// bounds the simulated time, the first target names the access path.
	stats := c.curs[0].Stats()
	first := stats.AccessPath
	for _, cur := range c.curs[1:] {
		mergeStats(&stats, cur.Stats())
	}
	stats.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(c.curs), c.nShards, first)
	stats.Wall = time.Since(start)
	c.stats = stats
	for _, cur := range c.curs {
		cur.Close()
	}

	deliberate := c.stopped.Load()
	for _, err := range errs {
		if err == nil {
			continue
		}
		isCtx := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		if isCtx && deliberate {
			continue // our own LIMIT/Close shutdown, not a failure
		}
		if !isCtx {
			c.err = err
			break
		}
		if c.err == nil {
			c.err = err
		}
	}
	close(c.ch)
}

func (c *scatterCursor) Next() bool {
	if c.limit > 0 && c.delivered >= c.limit {
		if !c.stopped.Swap(true) {
			c.cancel()
		}
		c.row = nil
		return false
	}
	row, ok := <-c.ch
	if !ok {
		c.row = nil
		return false
	}
	c.row = row
	c.delivered++
	return true
}

func (c *scatterCursor) Row() storage.Row { return c.row }

func (c *scatterCursor) Columns() []string { return c.curs[0].Columns() }

func (c *scatterCursor) Stats() hive.QueryStats {
	<-c.done
	stats := c.stats
	stats.RowsOut = c.delivered
	return stats
}

func (c *scatterCursor) Err() error {
	<-c.done
	return c.err
}

func (c *scatterCursor) Close() error {
	c.stopped.Store(true)
	c.cancel()
	for range c.ch {
		// Drain so the pumps never block on a send.
	}
	<-c.done
	return nil
}
