// Scatter streaming: the router's cursor fans a plain-projection SELECT out
// to the target shards' warehouse cursors and forwards rows into one merged
// stream. With replication, each shard's stream runs under failover: while a
// shard still has untried replicas, its rows are held back until its scan
// completes cleanly, so a replica that dies mid-scan can be replayed on a
// sibling replica without duplicating rows already delivered; the shard's
// final replica (always, when Replicas is 1) streams rows the moment they
// arrive, exactly as an unreplicated fleet does. Aggregations cannot stream
// before the gather (no row exists until every shard's partial state
// merges), so their cursor materializes the scatter-gather result and
// replays it.
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// SelectCursor opens a streaming cursor over one SELECT across the fleet,
// consuming the same routeSelect decision execution does: single-shard
// fleets and shard-0-only tables pass through to one warehouse's cursor
// (the replicated pass-through keeps mid-stream failover via the same pump
// the scatter uses); partitioned tables scatter. Cancelling ctx (or closing
// the cursor) aborts every shard's scan at its next split boundary.
func (r *Router) SelectCursor(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (hive.Cursor, error) {
	targets, passthrough, err := r.routeSelect(s)
	if err != nil {
		return nil, err
	}
	if passthrough {
		rs := r.sets[0]
		if len(rs.reps) == 1 {
			// True pass-through, byte-for-byte the warehouse cursor.
			fl := failureLog{rs: rs}
			cur, _, err := rs.openCursor(ctx, s, opts, make([]bool, 1), &fl, nil)
			return cur, err
		}
		// Replicated pass-through: the same pump machinery the scatter uses,
		// over a single stream, so a replica dying mid-scan replays on its
		// sibling here too. The stats stay the warehouse's own (no sharded
		// prefix — nothing was scattered).
		return r.newMergeCursor(ctx, s, opts, []int{0}, false)
	}
	if stmtIsAggregate(s) {
		res, err := r.scatter(ctx, s, opts, targets)
		if err != nil {
			return nil, err
		}
		return hive.NewRowsCursor(res), nil
	}
	return r.newMergeCursor(ctx, s, opts, targets, true)
}

// stmtIsAggregate mirrors the compiler's isAgg classification: the statement
// aggregates iff a SELECT item is an aggregate call.
func stmtIsAggregate(s *hive.SelectStmt) bool {
	for _, item := range s.Select {
		if _, ok := item.Expr.(hive.AggCall); ok {
			return true
		}
	}
	return false
}

// shardStream is one target shard's slot in a scatter cursor: the replica
// set it reads from, which replicas its pump has tried, the cursor of the
// current attempt, and the stats of the last attempt (the one the merged
// totals report).
type shardStream struct {
	rs    *replicaSet
	tried []bool
	fl    failureLog
	rep   *replica
	cur   hive.Cursor
	stats hive.QueryStats
}

// untried reports whether the pump still has a failover candidate left.
func (ss *shardStream) untried() bool {
	for _, t := range ss.tried {
		if !t {
			return true
		}
	}
	return false
}

// scatterCursor merges the target shards' row streams. Rows arrive in shard
// completion order; a LIMIT is enforced globally at delivery and cancels the
// shard scans once satisfied.
type scatterCursor struct {
	cctx    context.Context
	cancel  context.CancelFunc
	stmt    *hive.SelectStmt
	opts    hive.ExecOptions
	streams []*shardStream
	nShards int
	cols    []string

	ch   chan storage.Row
	done chan struct{}

	// prefix marks a real scatter: the merged stats get the "sharded(k/n)"
	// access-path label. A replicated pass-through reports its single
	// stream's stats untouched.
	prefix bool

	limit     int
	delivered int
	row       storage.Row

	// stopped marks a deliberate shutdown (LIMIT satisfied or Close): the
	// ctx errors it induces in shard cursors are not failures.
	stopped atomic.Bool

	stats hive.QueryStats
	err   error
}

func (r *Router) newMergeCursor(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, targets []int, prefix bool) (hive.Cursor, error) {
	cctx, cancel := context.WithCancel(ctx)
	c := &scatterCursor{
		cctx:    cctx,
		cancel:  cancel,
		stmt:    s,
		opts:    opts,
		nShards: len(r.sets),
		prefix:  prefix,
		ch:      make(chan storage.Row, 64),
		done:    make(chan struct{}),
		limit:   s.Limit,
	}
	for _, si := range targets {
		rs := r.sets[si]
		ss := &shardStream{rs: rs, tried: make([]bool, len(rs.reps)), fl: failureLog{rs: rs}}
		cur, rep, err := rs.openCursor(cctx, s, opts, ss.tried, &ss.fl, nil)
		if err != nil {
			cancel()
			for _, open := range c.streams {
				open.cur.Close()
			}
			return nil, err
		}
		ss.cur, ss.rep = cur, rep
		c.streams = append(c.streams, ss)
	}
	// Capture the column set now: the per-shard cursors rotate under
	// failover, so the consumer must not reach into them.
	c.cols = c.streams[0].cur.Columns()
	// The pump is joined structurally, not locally: run defers
	// close(c.done), and Close drains c.ch then blocks on <-c.done.
	//dgflint:ignore goroutinejoin joined by scatterCursor.Close via c.done
	go c.run()
	return c, nil
}

func (c *scatterCursor) run() {
	defer close(c.done)
	start := time.Now()
	errs := make([]error, len(c.streams))
	var wg sync.WaitGroup
	for i := range c.streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.pump(c.streams[i])
			if errs[i] != nil && !isCtxErr(errs[i]) {
				// This shard's replicas are all exhausted: only now do the
				// sibling scans stop.
				c.cancel()
			}
		}(i)
	}
	wg.Wait()

	// Merge costs the way the gather does: volumes sum, the slowest shard
	// bounds the simulated time, the first target names the access path.
	stats := c.streams[0].stats
	first := stats.AccessPath
	for _, ss := range c.streams[1:] {
		mergeStats(&stats, ss.stats)
	}
	if c.prefix {
		stats.AccessPath = fmt.Sprintf("sharded(%d/%d):%s", len(c.streams), c.nShards, first)
	}
	stats.Wall = time.Since(start)
	c.stats = stats

	deliberate := c.stopped.Load()
	for _, err := range errs {
		if err == nil {
			continue
		}
		isCtx := isCtxErr(err)
		if isCtx && deliberate {
			continue // our own LIMIT/Close shutdown, not a failure
		}
		if !isCtx {
			c.err = err
			break
		}
		if c.err == nil {
			c.err = err
		}
	}
	close(c.ch)
}

// pump drives one shard's stream to completion, failing over across the
// shard's replicas: each failed attempt closes its cursor, marks the replica
// unhealthy and reopens on the next live one; the terminal error is either
// nil, a context termination (caller cancel or deliberate stop), or the
// shard's root cause once every replica has been tried.
func (c *scatterCursor) pump(ss *shardStream) error {
	for {
		final := !ss.untried()
		err := c.drain(ss, final)
		ss.stats = ss.cur.Stats()
		ss.cur.Close()
		if err == nil {
			ss.fl.succeeded()
			return nil
		}
		if isCtxErr(err) {
			return err
		}
		ss.fl.observe(ss.rep, err)
		cur, rep, oerr := ss.rs.openCursor(c.cctx, c.stmt, c.opts, ss.tried, &ss.fl, err)
		if oerr != nil {
			return oerr
		}
		ss.cur, ss.rep = cur, rep
	}
}

// drain consumes the current attempt's cursor. While failover is still
// possible (final=false) the rows buffer in memory and reach the merged
// stream only after the scan completed cleanly — a replica that fails
// mid-scan then contributes nothing, and its replacement replays the shard
// from scratch without duplicating rows. This is a deliberate exactness
// trade-off the replicated fleet pays even when no replica fails: a shard's
// first rows arrive at shard-completion rather than split-completion, and
// the buffer holds up to that shard's full result (the same shard-at-a-time
// materialization the non-streaming gather does — replaying a failed shard
// by skipping N already-delivered rows instead would be unsound, because a
// warehouse cursor's row order is split-completion order, not
// deterministic). The final attempt streams rows directly: no retry can
// follow, so nothing needs to be replayable — and at Replicas:1 every
// attempt is final, keeping the unreplicated fast path byte-for-byte.
func (c *scatterCursor) drain(ss *shardStream, final bool) error {
	if final {
		return forwardRows(c.cctx, ss.cur, c.ch)
	}
	var buf []storage.Row
	for ss.cur.Next() {
		buf = append(buf, ss.cur.Row())
	}
	if err := ss.cur.Err(); err != nil {
		return err
	}
	for _, row := range buf {
		select {
		case c.ch <- row:
		case <-c.cctx.Done():
			return c.cctx.Err()
		}
	}
	return nil
}

// forwardRows pumps rows from cur into ch until the cursor ends or ctx is
// cancelled. The cancellation exit still closes the cursor and reads its
// terminal error: a real shard failure racing with the cancel must surface
// as the root cause, not be dropped on the floor or reported as a bare
// cancel (context errors are filtered here like everywhere else — the
// caller's aggregation handles its own cancellation).
func forwardRows(ctx context.Context, cur hive.Cursor, ch chan<- storage.Row) error {
	for cur.Next() {
		select {
		case ch <- cur.Row():
		case <-ctx.Done():
			cur.Close()
			if err := cur.Err(); err != nil && !isCtxErr(err) {
				return err
			}
			return ctx.Err()
		}
	}
	return cur.Err()
}

func (c *scatterCursor) Next() bool {
	if c.limit > 0 && c.delivered >= c.limit {
		if !c.stopped.Swap(true) {
			c.cancel()
		}
		c.row = nil
		return false
	}
	row, ok := <-c.ch
	if !ok {
		c.row = nil
		return false
	}
	c.row = row
	c.delivered++
	return true
}

func (c *scatterCursor) Row() storage.Row { return c.row }

func (c *scatterCursor) Columns() []string { return c.cols }

func (c *scatterCursor) Stats() hive.QueryStats {
	<-c.done
	stats := c.stats
	stats.RowsOut = c.delivered
	return stats
}

func (c *scatterCursor) Err() error {
	<-c.done
	return c.err
}

func (c *scatterCursor) Close() error {
	c.stopped.Store(true)
	c.cancel()
	for range c.ch {
		// Drain so the pumps never block on a send.
	}
	<-c.done
	return nil
}
