package shard

import (
	"context"
	"fmt"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
	"github.com/smartgrid-oss/dgfindex/internal/wal"
)

// WALConfig configures durable ingest for a Router (see EnableWAL).
type WALConfig struct {
	// Dir is the log root; each replica logs to Dir/shard-NNN/replica-N.wal.
	Dir string
	// Fsync selects the append durability policy (default interval).
	Fsync wal.Policy
	// SyncEvery overrides the interval-policy flush period (default 25ms).
	SyncEvery time.Duration
	// MaxBatchRows caps rows per apply micro-batch (default 8192).
	MaxBatchRows int
	// MaxPendingRows bounds a replica's unapplied backlog before commits
	// block (default 1<<20).
	MaxPendingRows int
	// OnApply runs after each successful apply batch (the serving layer
	// hooks result-cache invalidation here).
	OnApply func(table string, rows int)
	// Recorder receives apply/catch-up trace spans when set.
	Recorder *trace.Recorder
}

// EnableWAL turns on durable ingest: every subsequent load appends a
// checksummed record to each replica's append-only log before it is
// acknowledged, background appliers drain the logs into the warehouses
// (running incremental index maintenance at apply time), and Kill/Revive
// switch from fail-fast to hinted handoff with catch-up by log replay.
//
// Call it after the fleet's tables exist: the catalog (DDL) is not logged,
// so on restart tables must be recreated before the engine replays loads.
// Records already in Dir's logs from a previous run are replayed into the
// (fresh, in-memory) warehouses before new loads commit.
func (r *Router) EnableWAL(cfg WALConfig) error {
	if r.wal.Load() != nil {
		return fmt.Errorf("shard: WAL already enabled")
	}
	if cfg.Dir == "" {
		return fmt.Errorf("shard: WALConfig.Dir is required")
	}
	stores := make([][]wal.Store, len(r.sets))
	for i, rs := range r.sets {
		for _, rep := range rs.reps {
			stores[i] = append(stores[i], rep.w)
		}
	}
	e, err := wal.Open(wal.Options{
		Dir:            cfg.Dir,
		Fsync:          cfg.Fsync,
		SyncEvery:      cfg.SyncEvery,
		MaxBatchRows:   cfg.MaxBatchRows,
		MaxPendingRows: cfg.MaxPendingRows,
		OnApply:        cfg.OnApply,
		Recorder:       cfg.Recorder,
	}, stores)
	if err != nil {
		return err
	}
	if !r.wal.CompareAndSwap(nil, e) {
		e.Close()
		return fmt.Errorf("shard: WAL already enabled")
	}
	return nil
}

// WALEnabled reports whether EnableWAL has been called.
func (r *Router) WALEnabled() bool { return r.wal.Load() != nil }

// LoadAck describes a durably-acknowledged load.
type LoadAck struct {
	// MaxLSN is the highest log sequence number the load was assigned
	// across the shards it touched.
	MaxLSN uint64
	// Applied is true when the rows were confirmed applied (sync acks, or
	// any load on a fleet without a WAL); false means logged-but-pending.
	Applied bool
	// Shards is how many shards received a non-empty slice of the load.
	Shards int
}

// LoadRowsDurable is the WAL write path: rows route to their shards, each
// shard's slice commits to its live replicas' logs (dead replicas are owed
// the records via hinted handoff), and the call acks at log-durability
// speed. With sync=true it additionally waits — context-bounded — until
// every live replica of each touched shard has applied its slice.
// Without a WAL enabled it falls back to the synchronous replicated load.
func (r *Router) LoadRowsDurable(ctx context.Context, table string, rows []storage.Row, sync bool) (LoadAck, error) {
	e := r.wal.Load()
	if e == nil {
		return LoadAck{Applied: true}, r.loadRowsReplicated(table, rows)
	}
	// Validate before logging: a record that can never apply would stall
	// its replica's applier forever.
	schema, err := r.TableSchema(table)
	if err != nil {
		return LoadAck{}, err
	}
	for i, row := range rows {
		if len(row) != schema.Len() {
			return LoadAck{}, fmt.Errorf("shard: row %d has %d columns, table %q has %d", i, len(row), table, schema.Len())
		}
	}
	batches, err := r.loadBatches(table, rows)
	if err != nil {
		return LoadAck{}, err
	}
	var ack LoadAck
	lsns := make([]uint64, len(batches))
	errs := make([]error, len(batches))
	for si, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		ack.Shards++
		lsn, err := e.Commit(ctx, si, table, batch)
		if err != nil {
			errs[si] = err
			continue
		}
		lsns[si] = lsn
		if lsn > ack.MaxLSN {
			ack.MaxLSN = lsn
		}
	}
	if err := r.loadOutcome(errs); err != nil {
		return ack, err
	}
	if sync {
		for si, lsn := range lsns {
			if lsn == 0 {
				continue
			}
			if err := e.WaitApplied(ctx, si, lsn); err != nil {
				return ack, err
			}
		}
		ack.Applied = true
	}
	return ack, nil
}

// WALStats snapshots the engine's per-shard per-replica log positions (nil
// when the WAL is disabled).
func (r *Router) WALStats() []wal.ShardStats {
	if e := r.wal.Load(); e != nil {
		return e.Stats()
	}
	return nil
}

// DrainWAL blocks until every live replica has applied everything
// committed so far, then flushes the logs. No-op without a WAL.
func (r *Router) DrainWAL(ctx context.Context) error {
	if e := r.wal.Load(); e != nil {
		return e.Drain(ctx)
	}
	return nil
}

// CloseWAL stops the appliers, flushes, and closes the logs. Unapplied
// records stay logged and replay on the next EnableWAL over the same Dir.
func (r *Router) CloseWAL() error {
	if e := r.wal.Swap(nil); e != nil {
		return e.Close()
	}
	return nil
}

// AbortWAL hard-stops the engine without the final flush — the crash model
// for recovery tests.
func (r *Router) AbortWAL() {
	if e := r.wal.Swap(nil); e != nil {
		e.Abort()
	}
}
