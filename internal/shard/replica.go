// Per-shard replica sets: each shard of the fleet is R identical warehouse
// copies instead of one. Writes (DDL broadcast, routed loads) apply to every
// replica so the copies never diverge; reads pick one live replica per shard
// — least-loaded first, round-robin among ties — and fail over to the next
// replica when the chosen one errors, so a down replica degrades a shard's
// read capacity instead of failing the whole scatter.
//
// Health is tracked per replica: consecutive failures past a threshold eject
// the replica from selection, and a timed re-probe lets it earn its way back
// (one trial request after the re-probe interval; success resets the
// failure count, failure re-ejects). Kill/Revive inject the failure mode the
// P2P overlay literature calls node churn: a killed replica refuses new
// requests and aborts in-flight ones, exactly what a crashed store looks
// like to the router.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// ErrReplicaDown marks a request that failed because the chosen replica is
// down (killed, or aborted mid-request by a kill). The router retries such
// failures on the shard's surviving replicas; it only surfaces once a
// shard's replicas are all exhausted.
var ErrReplicaDown = errors.New("shard: replica down")

// replica is one warehouse copy of one shard, with health accounting and the
// kill switch the failover tests (and operators simulating an outage) use.
type replica struct {
	shard, idx int
	w          *hive.Warehouse

	// inflight counts requests currently executing on this replica; the
	// picker prefers the least-loaded live replica.
	inflight atomic.Int64

	mu           sync.Mutex
	fails        int       // consecutive failures
	ejectedUntil time.Time // zero when not ejected
	killed       bool
	killCh       chan struct{} // closed while killed; replaced on Revive
	// catchingUp: revived but still replaying the WAL records it missed.
	// Excluded from read selection (its data is stale) yet distinct from
	// killed in health reporting — the replica is repairing, not dead.
	catchingUp bool
}

func newReplica(shard, idx int, w *hive.Warehouse) *replica {
	return &replica{shard: shard, idx: idx, w: w, killCh: make(chan struct{})}
}

// Warehouse returns the replica's underlying warehouse (tests and tooling).
func (rep *replica) Warehouse() *hive.Warehouse { return rep.w }

// kill marks the replica down: new requests fail immediately and in-flight
// requests are aborted at their next split boundary.
func (rep *replica) kill() {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.killed {
		rep.killed = true
		close(rep.killCh)
	}
	rep.catchingUp = false // dead trumps repairing
}

// revive brings a killed replica back and clears its health record, modelling
// a restarted store that is immediately eligible again.
func (rep *replica) revive() {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.killed {
		rep.killed = false
		rep.killCh = make(chan struct{})
	}
	rep.fails = 0
	rep.ejectedUntil = time.Time{}
}

func (rep *replica) isKilled() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.killed
}

// beginCatchUp revives the replica into the catching-up state: back in the
// fleet (commits append to its WAL again) but excluded from reads until the
// replay completes.
func (rep *replica) beginCatchUp() {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.killed {
		rep.killed = false
		rep.killCh = make(chan struct{})
	}
	rep.fails = 0
	rep.ejectedUntil = time.Time{}
	rep.catchingUp = true
}

// endCatchUp returns the replica to full read eligibility.
func (rep *replica) endCatchUp() {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.catchingUp = false
}

func (rep *replica) isCatchingUp() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.catchingUp
}

// downErr is the immediate failure a killed replica returns without touching
// its warehouse (the "connection refused" of the model).
func (rep *replica) downErr() error {
	return fmt.Errorf("%w (shard %d replica %d)", ErrReplicaDown, rep.shard, rep.idx)
}

// watchCtx derives a context that additionally ends when the replica is
// killed, so a kill aborts in-flight work on this replica without touching
// its siblings. It returns this request's kill-generation channel: classify
// consults the generation, not the current killed flag, so a Revive racing
// the aborted request cannot disguise the kill as a caller cancellation.
// The caller must call the returned cancel.
func (rep *replica) watchCtx(parent context.Context) (context.Context, context.CancelFunc, <-chan struct{}) {
	rep.mu.Lock()
	killCh := rep.killCh
	rep.mu.Unlock()
	kctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case <-killCh:
			cancel()
		case <-kctx.Done():
		}
	}()
	return kctx, cancel, killCh
}

// classify maps one request outcome on this replica onto failover semantics:
// a context error while the scatter itself is still live and this request's
// kill generation fired means the replica was killed under the request (a
// replica failure, retryable), not that the caller cancelled. Real errors
// pass through; caller cancellations stay cancellations.
func (rep *replica) classify(parent context.Context, killCh <-chan struct{}, err error) error {
	if err == nil {
		return nil
	}
	killed := false
	select {
	case <-killCh:
		killed = true
	default:
	}
	if killed && isCtxErr(err) && parent.Err() == nil {
		// The context error is deliberately flattened: the caller's ctx is
		// still live (parent.Err() == nil), so surfacing a wrapped
		// cancellation would make the router misclassify a replica kill as
		// the client giving up instead of failing over.
		//dgflint:ignore errwrap a wrapped ctx error here would defeat isCtxErr failover classification
		return fmt.Errorf("%w (shard %d replica %d): aborted in flight: %v", ErrReplicaDown, rep.shard, rep.idx, err)
	}
	return err
}

// do runs one read request against the replica under kill supervision.
// Success resets the health record; failures are counted by the caller
// (replicaSet.noteFailure), which owns the ejection policy.
func (rep *replica) do(parent context.Context, fn func(ctx context.Context) error) error {
	if rep.isKilled() {
		return rep.downErr()
	}
	kctx, cancel, killCh := rep.watchCtx(parent)
	defer cancel()
	rep.inflight.Add(1)
	err := rep.classify(parent, killCh, fn(kctx))
	rep.inflight.Add(-1)
	if err == nil {
		rep.noteSuccess()
	}
	return err
}

func (rep *replica) noteSuccess() {
	rep.mu.Lock()
	rep.fails = 0
	rep.ejectedUntil = time.Time{}
	rep.mu.Unlock()
}

// openCursor opens a streaming cursor on this replica under kill
// supervision: a kill after the open aborts the scan at its next split
// boundary, and the returned cursor reports it as a replica failure rather
// than a bare cancellation. Closing the cursor releases the kill watcher.
func (rep *replica) openCursor(parent context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (hive.Cursor, error) {
	if rep.isKilled() {
		return nil, rep.downErr()
	}
	kctx, cancel, killCh := rep.watchCtx(parent)
	cur, err := rep.w.SelectCursor(kctx, s, opts)
	if err != nil {
		cancel()
		return nil, rep.classify(parent, killCh, err)
	}
	rep.inflight.Add(1)
	return &replicaCursor{Cursor: cur, rep: rep, parent: parent, killCh: killCh, cancel: cancel}, nil
}

// replicaCursor decorates a warehouse cursor with its replica's kill
// supervision: Err reclassifies a kill-induced abort as ErrReplicaDown, and
// Close releases the watcher and the inflight slot exactly once.
type replicaCursor struct {
	hive.Cursor
	rep    *replica
	parent context.Context
	killCh <-chan struct{}
	cancel context.CancelFunc
	once   sync.Once
}

func (c *replicaCursor) Err() error {
	return c.rep.classify(c.parent, c.killCh, c.Cursor.Err())
}

func (c *replicaCursor) Close() error {
	err := c.Cursor.Close()
	c.once.Do(func() {
		c.cancel()
		c.rep.inflight.Add(-1)
	})
	return err
}

// isCtxErr reports whether err is a context termination (cancel or deadline).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// replicaSet is one shard's R replicas plus the selection state.
type replicaSet struct {
	shard      int
	reps       []*replica
	next       atomic.Uint64 // round-robin tie-break cursor
	ejectAfter int
	reprobe    time.Duration
}

func newReplicaSet(shard int, ejectAfter int, reprobe time.Duration, reps []*replica) *replicaSet {
	return &replicaSet{shard: shard, reps: reps, ejectAfter: ejectAfter, reprobe: reprobe}
}

// noteFailure records one failure on rep under this set's ejection policy,
// reporting whether this strike ejected it (so callers can annotate the
// query's trace with the health consequence of its failures).
func (rs *replicaSet) noteFailure(rep *replica) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.fails++
	if rep.fails >= rs.ejectAfter {
		ejected := rep.ejectedUntil.IsZero()
		rep.ejectedUntil = time.Now().Add(rs.reprobe)
		return ejected
	}
	return false
}

// live reports whether rep is currently eligible for selection (healthy,
// not ejected, not replaying missed WAL records).
func (rs *replicaSet) live(rep *replica) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.ejectedUntil.IsZero() && !rep.catchingUp
}

// tryClaimProbe claims rep's re-probe if its ejection window has elapsed:
// claiming pushes the window forward by one re-probe interval under the
// lock, so of any number of concurrent picks exactly one sends the trial
// request and the rest keep using the healthy replicas — a still-dead
// replica costs one failed request per interval, not a thundering probe.
func (rep *replica) tryClaimProbe(reprobe time.Duration) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.ejectedUntil.IsZero() || time.Now().Before(rep.ejectedUntil) {
		return false
	}
	rep.ejectedUntil = time.Now().Add(reprobe)
	return true
}

// pick chooses the next replica to try, skipping the already-tried set: a
// due re-probe wins first (single-flight — see tryClaimProbe), then the
// least-loaded healthy replica (round-robin among ties); with no healthy
// candidate left the least-recently-ejected one is probed anyway — refusing
// to try at all would fail queries a recovered replica could serve. It
// returns nil once every replica has been tried.
func (rs *replicaSet) pick(tried []bool) *replica {
	for i, rep := range rs.reps {
		if !tried[i] && rep.tryClaimProbe(rs.reprobe) {
			return rep
		}
	}
	start := int(rs.next.Add(1) - 1)
	var best *replica
	var bestLoad int64
	for off := 0; off < len(rs.reps); off++ {
		i := (start + off) % len(rs.reps)
		rep := rs.reps[i]
		if tried[i] || !rs.live(rep) {
			continue
		}
		if load := rep.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	if best != nil {
		return best
	}
	// Every untried replica is ejected and not yet due: probe the one due
	// back soonest. A catching-up replica is never probed — it would answer
	// from stale data, not fail.
	var when time.Time
	for i, rep := range rs.reps {
		if tried[i] {
			continue
		}
		rep.mu.Lock()
		until := rep.ejectedUntil
		catching := rep.catchingUp
		rep.mu.Unlock()
		if catching {
			continue
		}
		if best == nil || until.Before(when) {
			best, when = rep, until
		}
	}
	return best
}

// index returns rep's position in the set.
func (rs *replicaSet) index(rep *replica) int {
	for i, r := range rs.reps {
		if r == rep {
			return i
		}
	}
	return -1
}

// exhaustedErr wraps the last failure once every replica of the shard has
// been tried: the root cause the scatter surfaces for a fully-dead shard.
// An unreplicated shard returns the failure untouched, keeping a Replicas:1
// router's errors identical to an unreplicated one's.
func (rs *replicaSet) exhaustedErr(last error) error {
	if last == nil {
		// Nothing was even tried: every replica is excluded from selection
		// without failing (all catching up after a revive).
		return fmt.Errorf("shard %d: no readable replica: replicas are catching up", rs.shard)
	}
	if len(rs.reps) == 1 {
		return last
	}
	return fmt.Errorf("shard %d: all %d replicas failed: %w", rs.shard, len(rs.reps), last)
}

// withFailover runs fn against replicas of the shard until one succeeds: a
// replica failure (including a kill that aborted the request in flight)
// moves on to the next live replica; a caller cancellation propagates
// immediately; exhausting every replica returns the last root cause.
func (rs *replicaSet) withFailover(ctx context.Context, fn func(ctx context.Context, rep *replica) error) error {
	tried := make([]bool, len(rs.reps))
	fl := failureLog{rs: rs}
	sp := trace.FromContext(ctx)
	var last error
	for {
		rep := rs.pick(tried)
		if rep == nil {
			return rs.exhaustedErr(last)
		}
		tried[rs.index(rep)] = true
		err := rep.do(ctx, func(kctx context.Context) error { return fn(kctx, rep) })
		if err == nil {
			for _, idx := range fl.succeeded() {
				sp.Eventf("replica %d ejected", idx)
			}
			return nil
		}
		if isCtxErr(err) {
			// The caller's own cancellation (do already reclassified a kill
			// as ErrReplicaDown): not a replica failure, nothing to retry.
			return err
		}
		sp.Eventf("replica %d failed: %v", rep.idx, err)
		if fl.observe(rep, err) {
			sp.Eventf("replica %d ejected", rep.idx)
		}
		last = err
	}
}

// failureLog defers health penalties until the query proves a sibling could
// serve it: a replica that fails where another then succeeds earns its
// strike, while a query that fails on every replica penalizes no one — the
// query itself is bad (unknown table, bad column), and ejecting healthy
// replicas over user errors would flip /healthz to degraded on a healthy
// fleet. A down replica (ErrReplicaDown) is penalized immediately: refusing
// requests is never the query's fault.
type failureLog struct {
	rs     *replicaSet
	failed []*replica
}

// observe logs one failure, reporting whether it ejected the replica on the
// spot (only ErrReplicaDown strikes immediately; other failures defer).
func (fl *failureLog) observe(rep *replica, err error) bool {
	if errors.Is(err, ErrReplicaDown) {
		return fl.rs.noteFailure(rep)
	}
	fl.failed = append(fl.failed, rep)
	return false
}

// succeeded reports that a later replica served the query, proving every
// deferred failure was replica-specific after all. It returns the indices of
// replicas the deferred strikes ejected.
func (fl *failureLog) succeeded() []int {
	var ejected []int
	for _, rep := range fl.failed {
		if fl.rs.noteFailure(rep) {
			ejected = append(ejected, rep.idx)
		}
	}
	fl.failed = nil
	return ejected
}

// openCursor opens a streaming cursor on the next live replica, failing
// over past replicas that refuse one. tried persists across a pump's
// attempts (a replica is never retried within one query), fl accumulates
// the health strikes, and last seeds the root cause reported if the set is
// already exhausted.
func (rs *replicaSet) openCursor(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions, tried []bool, fl *failureLog, last error) (hive.Cursor, *replica, error) {
	sp := trace.FromContext(ctx)
	for {
		rep := rs.pick(tried)
		if rep == nil {
			return nil, nil, rs.exhaustedErr(last)
		}
		tried[rs.index(rep)] = true
		cur, err := rep.openCursor(ctx, s, opts)
		if err == nil {
			return cur, rep, nil
		}
		if isCtxErr(err) {
			return nil, nil, err
		}
		sp.Eventf("replica %d failed: %v", rep.idx, err)
		if fl.observe(rep, err) {
			sp.Eventf("replica %d ejected", rep.idx)
		}
		last = err
	}
}

// execPartial is the scatter's per-shard unit of work under failover.
func (rs *replicaSet) execPartial(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (*hive.PartialResult, int, error) {
	var part *hive.PartialResult
	chosen := -1
	err := rs.withFailover(ctx, func(kctx context.Context, rep *replica) error {
		p, err := rep.w.SelectPartialContext(kctx, s, opts)
		if err != nil {
			return err
		}
		part, chosen = p, rep.idx
		return nil
	})
	return part, chosen, err
}

// execStmt runs one full statement on the shard under failover (the
// pass-through and catalog paths).
func (rs *replicaSet) execStmt(ctx context.Context, stmt hive.Stmt, opts hive.ExecOptions) (*hive.Result, error) {
	var res *hive.Result
	err := rs.withFailover(ctx, func(kctx context.Context, rep *replica) error {
		r, err := rep.w.ExecParsedContext(kctx, stmt, opts)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	return res, err
}

// explain plans the SELECT on one live replica under failover, reporting
// which replica answered (EXPLAIN's per-shard chosen replica).
func (rs *replicaSet) explain(ctx context.Context, s *hive.SelectStmt, opts hive.ExecOptions) (*hive.ExplainPlan, int, error) {
	var plan *hive.ExplainPlan
	chosen := -1
	err := rs.withFailover(ctx, func(_ context.Context, rep *replica) error {
		p, err := rep.w.Explain(s, opts)
		if err != nil {
			return err
		}
		plan, chosen = p, rep.idx
		return nil
	})
	return plan, chosen, err
}

// ReplicaHealth is one replica's health record, surfaced through
// Router.Health, the server's /stats, and /healthz.
type ReplicaHealth struct {
	Replica int `json:"replica"`
	// Live: eligible for selection (not killed and not currently ejected).
	Live bool `json:"live"`
	// Killed: down via Kill (operator- or test-injected outage).
	Killed bool `json:"killed,omitempty"`
	// CatchingUp: revived and replaying missed WAL records; excluded from
	// reads until the replay completes, but repairing rather than dead.
	CatchingUp bool `json:"catching_up,omitempty"`
	// ConsecutiveFailures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// EjectedForMs is how long until the next re-probe (0 when not ejected).
	EjectedForMs int64 `json:"ejected_for_ms,omitempty"`
	// Inflight requests currently executing on the replica.
	Inflight int64 `json:"inflight,omitempty"`
}

// SetHealth is one shard's replica-set health summary.
type SetHealth struct {
	Shard    int `json:"shard"`
	Replicas int `json:"replicas"`
	// Live counts replicas currently eligible for reads; 0 means the shard
	// cannot answer and scatters over it will fail.
	Live int `json:"live"`
	// CatchingUp counts replicas replaying missed WAL records.
	CatchingUp int             `json:"catching_up,omitempty"`
	Detail     []ReplicaHealth `json:"detail"`
}

// health snapshots the set.
func (rs *replicaSet) health() SetHealth {
	sh := SetHealth{Shard: rs.shard, Replicas: len(rs.reps)}
	now := time.Now()
	for i, rep := range rs.reps {
		rep.mu.Lock()
		h := ReplicaHealth{
			Replica:             i,
			Killed:              rep.killed,
			CatchingUp:          rep.catchingUp,
			ConsecutiveFailures: rep.fails,
			Inflight:            rep.inflight.Load(),
		}
		if !rep.ejectedUntil.IsZero() && now.Before(rep.ejectedUntil) {
			h.EjectedForMs = rep.ejectedUntil.Sub(now).Milliseconds()
		}
		h.Live = !rep.killed && !rep.catchingUp && h.EjectedForMs == 0
		rep.mu.Unlock()
		if h.Live {
			sh.Live++
		}
		if h.CatchingUp {
			sh.CatchingUp++
		}
		sh.Detail = append(sh.Detail, h)
	}
	return sh
}
