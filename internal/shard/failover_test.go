package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
)

// replicatedRouter builds a Shards x Replicas fleet loaded with the meter
// workload.
func replicatedRouter(t *testing.T, shards, replicas int, withIndex bool) *Router {
	t.Helper()
	r, err := New(Config{Shards: shards, Replicas: replicas, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), withIndex)
	return r
}

// runSuite executes the meter query suite and renders every result exactly.
func runSuite(t *testing.T, r *Router) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, q := range meterQuerySuite(testMeterConfig()) {
		res, err := r.Exec(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		out[q] = strings.Join(res.Columns, ",") + "\n" + strings.Join(renderRows(res.Rows), "\n") +
			fmt.Sprintf("\nrecords=%d bytes=%d path=%s", res.Stats.RecordsRead, res.Stats.BytesRead, res.Stats.AccessPath)
	}
	return out
}

// TestFailoverReplicatedMatchesUnreplicated: a healthy Replicas:2 fleet is
// bit-identical — rows, stats, access paths — to a Replicas:1 fleet over the
// same data (replication must not change a single result bit).
func TestFailoverReplicatedMatchesUnreplicated(t *testing.T) {
	single := runSuite(t, replicatedRouter(t, 4, 1, true))
	double := runSuite(t, replicatedRouter(t, 4, 2, true))
	for q, want := range single {
		if got := double[q]; got != want {
			t.Fatalf("%q:\nreplicas=1: %s\nreplicas=2: %s", q, want, got)
		}
	}
}

// TestFailoverExecKilledReplica: with one replica of every shard killed, the
// scatter retries each shard's partial on the surviving replica and the full
// suite stays bit-identical to the healthy fleet — sibling shards run to
// completion exactly once (identical RecordsRead/BytesRead proves no sibling
// was cancelled and re-run). A killed replica also fails the write path
// cleanly, and Revive restores it.
func TestFailoverExecKilledReplica(t *testing.T) {
	r := replicatedRouter(t, 4, 2, true)
	healthy := runSuite(t, r)

	// Kill a different replica on each shard so every shard exercises
	// failover and both replica indices are covered.
	for si := 0; si < r.NumShards(); si++ {
		r.Kill(si, si%2)
	}
	degraded := runSuite(t, r)
	for q, want := range healthy {
		if got := degraded[q]; got != want {
			t.Fatalf("%q:\nhealthy : %s\ndegraded: %s", q, want, got)
		}
	}

	// Writes require every replica: no hinted handoff, the copies must stay
	// exactly consistent.
	err := r.LoadRowsByName("meterdata", []storage.Row{
		{storage.Int64(1), storage.Int64(1), storage.TimeUnix(1354320000), storage.Float64(1)},
	})
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("load with a dead replica: err = %v, want ErrReplicaDown", err)
	}

	for si := 0; si < r.NumShards(); si++ {
		r.Revive(si, si%2)
	}
	revived := runSuite(t, r)
	for q, want := range healthy {
		if got := revived[q]; got != want {
			t.Fatalf("after revive %q:\nhealthy: %s\nrevived: %s", q, want, got)
		}
	}
}

// TestFailoverExecBrokenReplica: a replica that fails with a real execution
// error (its copy of the table was dropped behind the router's back) is
// failed over, queries stay correct, and after EjectAfter consecutive
// failures the replica is ejected from selection (visible in Health).
func TestFailoverExecBrokenReplica(t *testing.T) {
	r, err := New(Config{Shards: 2, Replicas: 2, Key: "userId", EjectAfter: 2, Reprobe: time.Hour}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), false)
	want := mustExec(t, r, `SELECT count(*) FROM meterdata`)

	// Break shard 1 replica 1: its scan now fails with a real error.
	if err := r.Replica(1, 1).DropTable("meterdata"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got := mustExec(t, r, `SELECT count(*) FROM meterdata`)
		if want.Rows[0][0].AsFloat() != got.Rows[0][0].AsFloat() {
			t.Fatalf("broken replica changed the count: %v vs %v", want.Rows[0][0], got.Rows[0][0])
		}
	}

	h := r.Health()
	if h[1].Live != 1 {
		t.Fatalf("shard 1 health after repeated failures: %+v, want the broken replica ejected", h[1])
	}
	broken := h[1].Detail[1]
	if broken.Live || broken.ConsecutiveFailures < 2 || broken.EjectedForMs <= 0 {
		t.Fatalf("broken replica record %+v, want ejected with >=2 consecutive failures", broken)
	}
	// Once ejected, queries stop paying the failed attempt: the healthy
	// replica is chosen directly and results stay correct.
	got := mustExec(t, r, `SELECT count(*) FROM meterdata`)
	if want.Rows[0][0].AsFloat() != got.Rows[0][0].AsFloat() {
		t.Fatalf("post-ejection count: %v vs %v", want.Rows[0][0], got.Rows[0][0])
	}
}

// TestFailoverEjectionReprobe: pick skips an ejected replica until the
// re-probe interval elapses, then offers it exactly one trial again.
func TestFailoverEjectionReprobe(t *testing.T) {
	rs := newReplicaSet(0, 2, 50*time.Millisecond, []*replica{
		newReplica(0, 0, newShardWarehouse(0, 0)),
		newReplica(0, 1, newShardWarehouse(0, 0)),
	})
	rs.noteFailure(rs.reps[0])
	rs.noteFailure(rs.reps[0]) // second consecutive failure: ejected

	for i := 0; i < 10; i++ {
		rep := rs.pick(make([]bool, 2))
		if rep != rs.reps[1] {
			t.Fatalf("pick %d chose the ejected replica", i)
		}
	}
	// With every live replica tried, the ejected one is probed rather than
	// failing the query outright.
	if rep := rs.pick([]bool{false, true}); rep != rs.reps[0] {
		t.Fatal("pick refused to probe the only remaining (ejected) replica")
	}

	time.Sleep(60 * time.Millisecond)
	seen := false
	for i := 0; i < 10 && !seen; i++ {
		seen = rs.pick(make([]bool, 2)) == rs.reps[0]
	}
	if !seen {
		t.Fatal("ejected replica never re-probed after the interval")
	}
	// The probe is single-flight: claiming it advanced the ejection window,
	// so the very next pick goes back to the healthy replica instead of
	// piling more trials onto the possibly-still-dead one.
	if rs.pick(make([]bool, 2)) == rs.reps[0] {
		t.Fatal("second pick re-probed the replica within the same interval")
	}
	rs.reps[0].noteSuccess()
	if !rs.live(rs.reps[0]) {
		t.Fatal("successful probe did not restore the replica")
	}
}

// TestFailoverCursorKilledMidStream: killing a replica while a scatter
// cursor is draining it must not lose or duplicate a single row — the
// failed shard's stream replays on the surviving replica — and the cursor
// ends clean. Kills are staggered so some land before the scan, some in the
// middle of it, some after.
func TestFailoverCursorKilledMidStream(t *testing.T) {
	r := replicatedRouter(t, 4, 2, false)
	sql := `SELECT userId, powerConsumed FROM meterdata WHERE userId>=3 AND userId<=38`
	want := rowMultiset(t, r, sql, 0)

	for i, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		shard, rep := i%4, i%2
		go func() {
			time.Sleep(delay)
			r.Kill(shard, rep)
		}()
		got := rowMultiset(t, r, sql, 0)
		r.Revive(shard, rep)
		if err := multisetEqual(want, got); err != nil {
			t.Fatalf("kill(%d,%d) after %v: %v", shard, rep, delay, err)
		}
	}

	// LIMIT through a replicated scatter still stops early and stays clean
	// with a replica down.
	r.Kill(2, 0)
	defer r.Revive(2, 0)
	got := rowMultiset(t, r, `SELECT userId FROM meterdata LIMIT 7`, 7)
	n := 0
	for _, c := range got {
		n += c
	}
	if n != 7 {
		t.Fatalf("LIMIT 7 delivered %d rows", n)
	}
}

// rowMultiset reads every row of sql through a scatter cursor into a
// rendered-row multiset, requiring a clean end (wantLimit > 0 allows the
// cursor's deliberate LIMIT shutdown).
func rowMultiset(t *testing.T, r *Router, sql string, wantLimit int) map[string]int {
	t.Helper()
	cur, err := r.SelectCursor(context.Background(), mustParseSelect(t, sql), hive.ExecOptions{})
	if err != nil {
		t.Fatalf("open %q: %v", sql, err)
	}
	defer cur.Close()
	out := map[string]int{}
	for cur.Next() {
		out[renderRows([]storage.Row{cur.Row()})[0]]++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("%q: cursor err %v", sql, err)
	}
	return out
}

func multisetEqual(want, got map[string]int) error {
	for k, n := range want {
		if got[k] != n {
			return fmt.Errorf("row %q: %d vs %d occurrences", k, n, got[k])
		}
	}
	for k, n := range got {
		if want[k] != n {
			return fmt.Errorf("extra row %q x%d", k, n)
		}
	}
	return nil
}

// TestFailoverExplainKilledReplica: EXPLAIN keeps answering with a replica
// down, reports the replication shape, and stays truthful — the announced
// access path matches the execution that follows.
func TestFailoverExplainKilledReplica(t *testing.T) {
	r := replicatedRouter(t, 4, 2, true)
	r.Kill(1, 0)
	defer r.Revive(1, 0)

	sql := `SELECT sum(powerConsumed) FROM meterdata WHERE userId>=2 AND userId<=30`
	plan, err := r.Explain(mustParseSelect(t, sql), hive.ExecOptions{})
	if err != nil {
		t.Fatalf("Explain with a dead replica: %v", err)
	}
	if plan.ReplicasPerShard != 2 || len(plan.ChosenReplicas) != plan.ShardsTargeted {
		t.Fatalf("plan replica fields: %+v", plan)
	}
	for i, si := range plan.TargetShards {
		if si == 1 && plan.ChosenReplicas[i] != 1 {
			t.Fatalf("EXPLAIN chose the killed replica of shard 1: %+v", plan)
		}
	}
	res := mustExec(t, r, sql)
	if plan.AccessPath != res.Stats.AccessPath {
		t.Fatalf("EXPLAIN %q, execution %q", plan.AccessPath, res.Stats.AccessPath)
	}
	// The rendered EXPLAIN statement surfaces the replica line.
	rendered := mustExec(t, r, "EXPLAIN "+sql)
	var found bool
	for _, row := range rendered.Rows {
		if row[0].String() == "replicas" && strings.HasPrefix(row[1].String(), "2 per shard") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN output lacks the replicas line: %v", rendered.Rows)
	}
}

// TestFailoverAllReplicasDown: a shard whose replicas are all dead fails the
// scatter cleanly with the shard's root cause on the exec, cursor and
// EXPLAIN paths — while queries pruned to live shards keep answering.
func TestFailoverAllReplicasDown(t *testing.T) {
	r := replicatedRouter(t, 4, 2, false)
	r.Kill(2, 0)
	r.Kill(2, 1)

	_, err := r.Exec(`SELECT count(*) FROM meterdata`)
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("exec over a dead shard: err = %v, want ErrReplicaDown root cause", err)
	}
	if !strings.Contains(err.Error(), "shard 2") || !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("exec error %q does not name the dead shard", err)
	}

	_, err = r.SelectCursor(context.Background(), mustParseSelect(t, `SELECT userId FROM meterdata`), hive.ExecOptions{})
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("cursor over a dead shard: err = %v, want ErrReplicaDown", err)
	}

	_, err = r.Explain(mustParseSelect(t, `SELECT userId FROM meterdata`), hive.ExecOptions{})
	if !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("EXPLAIN over a dead shard: err = %v, want ErrReplicaDown", err)
	}

	// A query the routing key prunes away from the dead shard still answers.
	cfg := testMeterConfig()
	for user := 1; user <= cfg.Users; user++ {
		if r.route(storage.Int64(int64(user)), storage.KindInt64) == 2 {
			continue
		}
		res := mustExec(t, r, fmt.Sprintf(`SELECT count(*) FROM meterdata WHERE userId=%d`, user))
		if n := res.Rows[0][0].AsFloat(); n != float64(cfg.Days*cfg.ReadingsPerDay) {
			t.Fatalf("pruned query over live shard: count %v", n)
		}
		break
	}

	r.Revive(2, 0)
	res := mustExec(t, r, `SELECT count(*) FROM meterdata`)
	if n := res.Rows[0][0].AsFloat(); n != float64(cfg.Rows()) {
		t.Fatalf("post-revive count %v, want %d", n, cfg.Rows())
	}
}

// TestFailoverGoroutinesBounded: repeated failovers (exec and cursor paths,
// kills and revives interleaved) leave the goroutine count at its baseline —
// kill watchers, pump goroutines, and sibling scans are all joined, i.e. no
// sibling is left cancelled-but-leaking and no watcher outlives its request.
func TestFailoverGoroutinesBounded(t *testing.T) {
	r := replicatedRouter(t, 4, 2, false)
	before := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		r.Kill(i%4, i%2)
		if _, err := r.Exec(`SELECT count(*) FROM meterdata`); err != nil {
			t.Fatal(err)
		}
		_ = rowMultiset(t, r, `SELECT userId FROM meterdata WHERE userId<=20`, 0)
		r.Revive(i%4, i%2)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked under failover: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverUserErrorsDontEject: a query that fails identically on every
// replica (unknown table, bad column) is the query's fault, not the
// stores': it must not accumulate health strikes, eject replicas, or flip
// the fleet to degraded — only a failure a sibling replica could serve
// counts (covered by TestFailoverExecBrokenReplica).
func TestFailoverUserErrorsDontEject(t *testing.T) {
	r, err := New(Config{Shards: 2, Replicas: 2, Key: "userId", EjectAfter: 2}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), false)

	for i := 0; i < 5; i++ {
		if _, err := r.Exec(`SELECT * FROM nosuchtable`); err == nil {
			t.Fatal("query over a missing table succeeded")
		}
		cur, err := r.SelectCursor(context.Background(), mustParseSelect(t, `SELECT v FROM nosuchtable`), hive.ExecOptions{})
		if err == nil {
			for cur.Next() {
			}
			if cur.Err() == nil {
				t.Fatal("cursor over a missing table ended clean")
			}
			cur.Close()
		}
	}

	for _, sh := range r.Health() {
		if sh.Live != sh.Replicas {
			t.Fatalf("user errors ejected replicas: %+v", sh)
		}
		for _, rep := range sh.Detail {
			if rep.ConsecutiveFailures != 0 {
				t.Fatalf("user errors counted as replica failures: %+v", rep)
			}
		}
	}
}

// TestFailoverPassthroughCursorMidStream: the pass-through cursor of a
// replicated single-shard fleet fails over mid-stream exactly like the
// scatter cursor — no lost or duplicated rows, clean end, and the stats
// stay the warehouse's own (no sharded prefix: nothing was scattered).
func TestFailoverPassthroughCursorMidStream(t *testing.T) {
	r, err := New(Config{Shards: 1, Replicas: 2, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), false)
	sql := `SELECT userId, powerConsumed FROM meterdata WHERE userId<=30`
	want := rowMultiset(t, r, sql, 0)

	for i, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		rep := i % 2
		go func() {
			time.Sleep(delay)
			r.Kill(0, rep)
		}()
		got := rowMultiset(t, r, sql, 0)
		r.Revive(0, rep)
		if err := multisetEqual(want, got); err != nil {
			t.Fatalf("kill(0,%d) after %v: %v", rep, delay, err)
		}
	}

	cur, err := r.SelectCursor(context.Background(), mustParseSelect(t, sql), hive.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if path := cur.Stats().AccessPath; strings.HasPrefix(path, "sharded(") {
		t.Fatalf("pass-through cursor stats carry a scatter label: %q", path)
	}
	cur.Close()
}

// TestInsertDirRejectedOnReplicatedFleet: a directory sink would land in
// only the chosen replica's filesystem, silently diverging the copies, so a
// replicated fleet rejects it even at one shard (where an unreplicated
// router passes it through).
func TestInsertDirRejectedOnReplicatedFleet(t *testing.T) {
	r, err := New(Config{Shards: 1, Replicas: 2, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, r, testMeterConfig(), false)
	_, err = r.Exec(`INSERT OVERWRITE DIRECTORY '/tmp/out' SELECT userId FROM meterdata`)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("replicated INSERT OVERWRITE DIRECTORY: err = %v, want rejection", err)
	}

	plain, err := New(Config{Shards: 1, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	setupMeter(t, plain, testMeterConfig(), false)
	if _, err := plain.Exec(`INSERT OVERWRITE DIRECTORY '/tmp/out' SELECT userId FROM meterdata`); err != nil {
		t.Fatalf("unreplicated single-shard pass-through rejected INSERT DIR: %v", err)
	}
}

// --- satellite regressions -------------------------------------------------

type fakeCursor struct {
	rows int
	err  error
}

func (f *fakeCursor) Next() bool {
	if f.rows == 0 {
		return false
	}
	f.rows--
	return true
}
func (f *fakeCursor) Row() storage.Row       { return storage.Row{storage.Int64(1)} }
func (f *fakeCursor) Columns() []string      { return []string{"c"} }
func (f *fakeCursor) Stats() hive.QueryStats { return hive.QueryStats{} }
func (f *fakeCursor) Err() error             { return f.err }
func (f *fakeCursor) Close() error           { return nil }

// TestForwardRowsReportsRealErrorOnCancel: the pump used to exit its
// ctx-done branch with `cur.Close(); return` and never read cur.Err(), so a
// real shard failure racing a cancellation was lost or reported as a bare
// cancel. forwardRows must surface the cursor's real error from that exact
// branch (and still report plain cancellations as ctx errors).
func TestForwardRowsReportsRealErrorOnCancel(t *testing.T) {
	boom := errors.New("disk exploded")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// No consumer on ch: the send blocks and the pump exits via ctx.Done.
	err := forwardRows(ctx, &fakeCursor{rows: 3, err: boom}, make(chan storage.Row))
	if !errors.Is(err, boom) {
		t.Fatalf("forwardRows = %v, want the cursor's real error", err)
	}
	// A clean cursor racing the same cancel reports the cancellation.
	err = forwardRows(ctx, &fakeCursor{rows: 3}, make(chan storage.Row))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("forwardRows with clean cursor = %v, want ctx error", err)
	}
}

// TestBroadcastErrorEnumeratesShards: when DDL diverges the fleet the error
// must name the shard that failed and the shards that applied the statement,
// not just surface one bare error.
func TestBroadcastErrorEnumeratesShards(t *testing.T) {
	r, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-create the table on shard 2 only: the broadcast CREATE then fails
	// there and applies everywhere else.
	if _, err := r.Shard(2).Exec(`CREATE TABLE t (userId bigint, v double)`); err != nil {
		t.Fatal(err)
	}
	_, err = r.Exec(`CREATE TABLE t (userId bigint, v double)`)
	if err == nil {
		t.Fatal("diverging broadcast returned no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "shard 2/4 failed") {
		t.Fatalf("broadcast error %q does not name the failed shard", msg)
	}
	if !strings.Contains(msg, "shards 0,1,3 applied") {
		t.Fatalf("broadcast error %q does not name the applied shards", msg)
	}
}

// TestReplicatedTableVersionConsistency: /tables (TableInfos) and the result
// cache's invalidation key (TableVersions) must report the same version for
// a replicated table; TableInfos used to report shard 0's counter while
// TableVersions summed every shard's.
func TestReplicatedTableVersionConsistency(t *testing.T) {
	r, err := New(Config{Shards: 3, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, r, `CREATE TABLE regions (regionId bigint, name string)`)
	if err := r.LoadRowsByName("regions", []storage.Row{
		{storage.Int64(1), storage.Str("north")},
		{storage.Int64(2), storage.Str("south")},
	}); err != nil {
		t.Fatal(err)
	}

	want := r.TableVersions("regions")["regions"]
	var got uint64
	for _, info := range r.TableInfos() {
		if info.Name == "regions" {
			got = info.Version
		}
	}
	if got != want {
		t.Fatalf("TableInfos version %d != TableVersions %d for a replicated table", got, want)
	}
	if want <= r.Shard(0).TableVersion("regions")-1 {
		t.Fatalf("summed version %d not above one shard's counter", want)
	}
}

// TestHashRoutingCoercesKeyKinds: the same logical key must land on the same
// shard no matter how a caller rendered it. The router used to hash the raw
// text, so Str("05") and Int64(5) — the same bigint key — routed to
// different shards and a point query missed rows.
func TestHashRoutingCoercesKeyKinds(t *testing.T) {
	r, err := New(Config{Shards: 4, Key: "userId"}, newShardWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, r, `CREATE TABLE readings (userId bigint, v double)`)

	// The renderings a real fleet sees: typed loads (int64), CSV-ish string
	// batches (with leading zeros), JSON numbers decoded as float64.
	if si, sj := r.route(storage.Str("05"), storage.KindInt64), r.route(storage.Int64(5), storage.KindInt64); si != sj {
		t.Fatalf("Str(05) routes to shard %d, Int64(5) to %d", si, sj)
	}
	if si, sj := r.route(storage.Float64(5), storage.KindInt64), r.route(storage.Int64(5), storage.KindInt64); si != sj {
		t.Fatalf("Float64(5) routes to shard %d, Int64(5) to %d", si, sj)
	}
	// Timestamp keys: raw Unix seconds and the parsed calendar form agree.
	ts, err := storage.ParseTime("2012-12-05")
	if err != nil {
		t.Fatal(err)
	}
	if si, sj := r.route(storage.Int64(ts.I), storage.KindTime), r.route(ts, storage.KindTime); si != sj {
		t.Fatalf("unix-seconds key routes to shard %d, calendar form to %d", si, sj)
	}

	rows := []storage.Row{
		{storage.Int64(5), storage.Float64(1)},
		{storage.Str("05"), storage.Float64(2)},
		{storage.Float64(5), storage.Float64(3)},
	}
	if err := r.LoadRowsByName("readings", rows); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, r, `SELECT count(*) FROM readings WHERE userId=5`)
	if !strings.HasPrefix(res.Stats.AccessPath, "sharded(1/4)") {
		t.Fatalf("point query access path %q, want single-shard prune", res.Stats.AccessPath)
	}
	if n := res.Rows[0][0].AsFloat(); n != 3 {
		t.Fatalf("point query found %v of the 3 renderings of key 5", n)
	}
}
