// Server-facing integration tests for the shard router. These live in an
// external test package (shard_test): the serving layer imports
// internal/shard for replica health types, so an internal test importing
// internal/server would be an import cycle.
package shard_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/cluster"
	"github.com/smartgrid-oss/dgfindex/internal/dfs"
	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/server"
	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/workload"
)

// The router must satisfy the serving layer's Backend contract.
var _ server.Backend = (*shard.Router)(nil)

func itMeterConfig() workload.MeterConfig {
	cfg := workload.DefaultMeterConfig()
	cfg.Users = 40
	cfg.Regions = 4
	cfg.Days = 8
	cfg.ReadingsPerDay = 2
	cfg.OtherMetrics = 0
	return cfg
}

func itWarehouse(int, int) *hive.Warehouse {
	cc := cluster.Default()
	cc.Workers = 4
	return hive.NewWarehouse(dfs.New(1<<20), cc, "/warehouse")
}

func itSetup(t *testing.T, r *shard.Router, cfg workload.MeterConfig, withIndex bool) {
	t.Helper()
	if _, err := r.Exec(`CREATE TABLE meterdata (userId bigint, regionId bigint, ts timestamp, powerConsumed double)`); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadRowsByName("meterdata", cfg.AllRows()); err != nil {
		t.Fatal(err)
	}
	if withIndex {
		if _, err := r.Exec(`CREATE INDEX idx ON TABLE meterdata(regionId, userId, ts)
			AS 'dgf' IDXPROPERTIES ('regionId'='1_1', 'userId'='1_8',
			'ts'='2012-12-01_1d', 'precompute'='sum(powerConsumed);count(*)')`); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardServerIntegration: DGFServe's caches, invalidation and metrics
// must work unchanged over a sharded backend.
func TestShardServerIntegration(t *testing.T) {
	cfg := itMeterConfig()
	router, err := shard.New(shard.Config{Shards: 4, Key: "userId"}, itWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	itSetup(t, router, cfg, true)
	srv := server.NewWithBackend(router, server.Config{MaxConcurrent: 4})

	const q = `SELECT sum(powerConsumed) FROM meterdata WHERE userId>=5 AND userId<=30`
	first, err := srv.Query(context.Background(), server.Request{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first.Result.Stats.AccessPath, "sharded(") {
		t.Fatalf("access path %q, want sharded", first.Result.Stats.AccessPath)
	}
	again, err := srv.Query(context.Background(), server.Request{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat over sharded backend should hit the result cache")
	}

	day := cfg
	day.Days = 1
	day.Start = cfg.Start.AddDate(0, 0, cfg.Days)
	invalidated, err := srv.LoadRows("meterdata", day.AllRows())
	if err != nil {
		t.Fatal(err)
	}
	if invalidated == 0 {
		t.Fatal("routed load did not invalidate the cached result")
	}
	after, err := srv.Query(context.Background(), server.Request{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-load query served stale cache entry")
	}
	if snap := srv.Stats(); snap.ResultInvalidations == 0 || snap.RowsLoaded != int64(day.Rows()) {
		t.Fatalf("snapshot: %+v", snap)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerReplicaHealthSurfaces: a replicated router's health reaches
// /stats (per-shard replica detail) and /healthz (degraded + 503 once a
// shard has no live replica; ok again after revive). An unreplicated
// warehouse backend reports no shard section at all.
func TestServerReplicaHealthSurfaces(t *testing.T) {
	cfg := itMeterConfig()
	router, err := shard.New(shard.Config{Shards: 2, Replicas: 2, Key: "userId"}, itWarehouse)
	if err != nil {
		t.Fatal(err)
	}
	itSetup(t, router, cfg, false)
	srv := server.NewWithBackend(router, server.Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	snap := srv.Stats()
	if len(snap.Shards) != 2 {
		t.Fatalf("stats shards = %d, want 2", len(snap.Shards))
	}
	for _, sh := range snap.Shards {
		if sh.Replicas != 2 || sh.Live != 2 {
			t.Fatalf("shard %d health %+v, want 2 live of 2", sh.Shard, sh)
		}
	}

	getHealthz := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := getHealthz(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy fleet: healthz %d %v", code, body)
	}

	// One replica down: degraded capacity but every shard still answers.
	router.Kill(1, 0)
	if code, body := getHealthz(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("one replica down: healthz %d %v (shard 1 still has a live replica)", code, body)
	}
	if snap := srv.Stats(); snap.Shards[1].Live != 1 {
		t.Fatalf("stats after kill: %+v", snap.Shards[1])
	}

	// Both replicas of shard 1 down: the shard is dead, healthz reports it.
	router.Kill(1, 1)
	code, body := getHealthz()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("dead shard: healthz %d %v, want 503 degraded", code, body)
	}
	dead, _ := body["dead_shards"].([]any)
	if len(dead) != 1 || dead[0].(float64) != 1 {
		t.Fatalf("dead_shards = %v, want [1]", body["dead_shards"])
	}

	router.Revive(1, 0)
	router.Revive(1, 1)
	if code, body := getHealthz(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("after revive: healthz %d %v", code, body)
	}

	// A bare warehouse backend has no shard section.
	bare := server.New(itWarehouse(0, 0), server.Config{})
	if snap := bare.Stats(); snap.Shards != nil {
		t.Fatalf("bare warehouse reports shard health: %+v", snap.Shards)
	}
}
