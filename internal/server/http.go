package server

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/smartgrid-oss/dgfindex/internal/hive"
	"github.com/smartgrid-oss/dgfindex/internal/shard"
	"github.com/smartgrid-oss/dgfindex/internal/storage"
	"github.com/smartgrid-oss/dgfindex/internal/trace"
)

// queryRequest is the JSON body of POST /query. GET /query accepts the same
// fields as URL parameters (q/sql, session, timeout_ms, no_cache, stream).
type queryRequest struct {
	SQL       string `json:"sql"`
	Session   string `json:"session,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
	// Stream selects the response framing: "" buffers the whole result into
	// one JSON object; "ndjson" streams rows as the scan produces them —
	// one JSON line for the header, one per row, one trailer with the final
	// stats — and honours a client disconnect by aborting the scan.
	Stream string `json:"stream,omitempty"`
	// Trace asks for the query's span tree in the response (the trailer,
	// for streaming responses). GET accepts it as ?trace=1.
	Trace bool `json:"trace,omitempty"`
}

// queryStatsJSON renders hive.QueryStats in the paper's terms, plus the
// vectorised-path counters (omitted when zero / on the row path).
type queryStatsJSON struct {
	AccessPath    string  `json:"access_path,omitempty"`
	IndexSimSec   float64 `json:"index_sim_sec"`
	DataSimSec    float64 `json:"data_sim_sec"`
	SimTotalSec   float64 `json:"sim_total_sec"`
	RecordsRead   int64   `json:"records_read"`
	BytesRead     int64   `json:"bytes_read"`
	Splits        int     `json:"splits"`
	Seeks         int64   `json:"seeks"`
	RowsOut       int     `json:"rows_out"`
	WallMs        float64 `json:"wall_ms"`
	Vectorized    bool    `json:"vectorized,omitempty"`
	GroupsSkipped int64   `json:"groups_skipped,omitempty"`
	BitmapHits    int64   `json:"bitmap_hits,omitempty"`
	DictProbes    int64   `json:"dict_probes,omitempty"`
	RunsSkipped   int64   `json:"runs_skipped,omitempty"`
}

func newQueryStatsJSON(s hive.QueryStats) queryStatsJSON {
	return queryStatsJSON{
		AccessPath:    s.AccessPath,
		IndexSimSec:   s.IndexSimSec,
		DataSimSec:    s.DataSimSec,
		SimTotalSec:   s.SimTotalSec(),
		RecordsRead:   s.RecordsRead,
		BytesRead:     s.BytesRead,
		Splits:        s.Splits,
		Seeks:         s.Seeks,
		RowsOut:       s.RowsOut,
		WallMs:        float64(s.Wall.Microseconds()) / 1e3,
		Vectorized:    s.Vectorized,
		GroupsSkipped: s.GroupsSkipped,
		BitmapHits:    s.BitmapHits,
		DictProbes:    s.DictProbes,
		RunsSkipped:   s.RunsSkipped,
	}
}

type queryResponse struct {
	Columns  []string            `json:"columns,omitempty"`
	Rows     [][]any             `json:"rows,omitempty"`
	RowCount int                 `json:"row_count"`
	Message  string              `json:"message,omitempty"`
	Cached   bool                `json:"cached"`
	Session  string              `json:"session"`
	WallMs   float64             `json:"wall_ms"`
	Stats    queryStatsJSON      `json:"stats"`
	Trace    *trace.SpanSnapshot `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP front-end:
//
//	POST/GET /query      execute one statement, JSON rows + QueryStats
//	POST     /load       push rows into a table (JSON or CSV body)
//	GET      /tables     catalog snapshot
//	GET      /stats      server, session and cache metrics
//	GET      /metrics    the same metrics in Prometheus text format
//	GET      /debug/slow the slow-query flight recorder's retained traces
//	GET      /healthz    liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/load", s.handleLoad)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON body: " + err.Error()})
			return
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.SQL = q.Get("q")
		if req.SQL == "" {
			req.SQL = q.Get("sql")
		}
		req.Session = q.Get("session")
		if ms := q.Get("timeout_ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad timeout_ms"})
				return
			}
			req.TimeoutMs = v
		}
		req.NoCache = q.Get("no_cache") == "1" || q.Get("no_cache") == "true"
		req.Stream = q.Get("stream")
		req.Trace = q.Get("trace") == "1" || q.Get("trace") == "true"
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET or POST"})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing sql"})
		return
	}
	switch req.Stream {
	case "":
	case "ndjson":
		s.handleQueryStream(w, r, req)
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "unknown stream mode " + strconv.Quote(req.Stream) + " (want ndjson)"})
		return
	}

	resp, err := s.Query(r.Context(), Request{
		SQL:     req.SQL,
		Session: req.Session,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		NoCache: req.NoCache,
		Trace:   req.Trace,
	})
	if err != nil {
		writeJSON(w, httpStatusOf(err), errorResponse{Error: err.Error()})
		return
	}

	res := resp.Result
	out := queryResponse{
		Columns:  res.Columns,
		RowCount: len(res.Rows),
		Message:  res.Message,
		Cached:   resp.Cached,
		Session:  resp.Session,
		WallMs:   float64(resp.Wall.Microseconds()) / 1e3,
		Trace:    resp.Trace,
		Stats:    newQueryStatsJSON(res.Stats),
	}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, jsonRow(row))
	}
	writeJSON(w, http.StatusOK, out)
}

// streamHeader is the first NDJSON line of a streaming response.
type streamHeader struct {
	Columns []string `json:"columns"`
	Session string   `json:"session"`
}

// streamTrailer is the last NDJSON line: the scan's outcome and final stats
// (partial when the scan was aborted — Error then says why).
type streamTrailer struct {
	Done     bool                `json:"done"`
	RowCount int                 `json:"row_count"`
	Error    string              `json:"error,omitempty"`
	WallMs   float64             `json:"wall_ms"`
	Stats    queryStatsJSON      `json:"stats"`
	Trace    *trace.SpanSnapshot `json:"trace,omitempty"`
}

// handleQueryStream serves one SELECT as NDJSON, writing rows as the cursor
// delivers them. The scan runs under r.Context(): a client that disconnects
// mid-stream aborts it within one split boundary.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request, req queryRequest) {
	start := time.Now()
	st, err := s.QueryStream(r.Context(), Request{
		SQL:     req.SQL,
		Session: req.Session,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		Trace:   req.Trace,
	})
	if err != nil {
		writeJSON(w, httpStatusOf(err), errorResponse{Error: err.Error()})
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(streamHeader{Columns: st.Columns(), Session: st.Session})
	flush()

	rows := 0
	for st.Next() {
		enc.Encode(jsonRow(st.Row()))
		rows++
		if rows%64 == 0 {
			flush()
		}
	}

	// The scan is finished (or aborted); Stats/Err no longer block. Close
	// now (idempotent — the deferred call no-ops) so the trace tree in the
	// trailer is final rather than a mid-flight snapshot.
	st.Close()
	stats := st.Stats()
	trailer := streamTrailer{
		Done:     true,
		RowCount: rows,
		WallMs:   float64(time.Since(start).Microseconds()) / 1e3,
		Stats:    newQueryStatsJSON(stats),
	}
	if err := st.Err(); err != nil {
		trailer.Done = false
		trailer.Error = err.Error()
	}
	if req.Trace {
		trailer.Trace = st.TraceSnapshot()
	}
	enc.Encode(trailer)
	flush()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// debugSlowResponse is the /debug/slow body: the flight recorder's retained
// traces, newest first.
type debugSlowResponse struct {
	// Total counts records ever taken, including those the ring evicted.
	Total       int64          `json:"total"`
	SlowQueryMs int            `json:"slow_query_ms"`
	RingSize    int            `json:"ring_size"`
	Records     []trace.Record `json:"records"`
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, debugSlowResponse{
		Total:       s.recorder.Total(),
		SlowQueryMs: s.cfg.SlowQueryMs,
		RingSize:    s.cfg.TraceRingSize,
		Records:     s.SlowTraces(),
	})
}

// jsonRow converts one storage.Row into JSON-encodable cells: numbers stay
// numbers, timestamps render as RFC 3339.
func jsonRow(row storage.Row) []any {
	cells := make([]any, len(row))
	for i, v := range row {
		switch v.Kind {
		case storage.KindInt64:
			cells[i] = v.I
		case storage.KindFloat64:
			cells[i] = v.F
		case storage.KindTime:
			cells[i] = time.Unix(v.I, 0).UTC().Format(time.RFC3339)
		default:
			cells[i] = v.S
		}
	}
	return cells
}

func httpStatusOf(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueryTimeout):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tables []hive.TableInfo `json:"tables"`
	}{Tables: s.b.TableInfos()})
}

// loadRequest is the JSON body of POST /load. Cells may be numbers or
// strings; each is coerced to its column's kind. A text/csv body with a
// ?table= parameter is accepted instead, one comma-separated row per line.
type loadRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
}

type loadResponse struct {
	Table       string `json:"table"`
	RowsLoaded  int    `json:"rows_loaded"`
	Invalidated int    `json:"invalidated"`
	// Durability is "applied" when the rows are queryable at ack time (the
	// synchronous path, or ?sync=1 on a WAL fleet) and "logged" when they
	// are durable in the write-ahead log but still draining into the
	// warehouses.
	Durability string `json:"durability"`
	// LSN is the load's highest log sequence number (WAL path only).
	LSN uint64 `json:"lsn,omitempty"`
}

// readLoadBody reads at most limit bytes of the request body, failing with
// a distinguishable error when the body exceeds the bound (rather than
// silently truncating, which would load a prefix of the rows).
var errBodyTooLarge = errors.New("request body too large")

func readLoadBody(r io.Reader, limit int64) ([]byte, error) {
	if limit <= 0 { // unlimited
		return io.ReadAll(r)
	}
	body, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("%w: exceeds the %d-byte limit (MaxLoadBytes); split the load into smaller batches", errBodyTooLarge, limit)
	}
	return body, nil
}

// handleLoad is the push half of streaming ingest: collectors POST readings
// over HTTP instead of going through the CLI, and the server routes them
// through LoadRowsCtx so metrics and cache invalidation stay exact. With
// durable ingest enabled the handler acks at log-durability speed;
// ?sync=1 waits until the rows are applied and queryable.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	body, err := readLoadBody(r.Body, s.cfg.MaxLoadBytes)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}

	table := r.URL.Query().Get("table")
	var cells [][]any
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/csv") || strings.HasPrefix(ct, "text/plain") {
		records, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad CSV body: " + err.Error()})
			return
		}
		for _, rec := range records {
			row := make([]any, len(rec))
			for i, f := range rec {
				row[i] = f
			}
			cells = append(cells, row)
		}
	} else {
		var req loadRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON body: " + err.Error()})
			return
		}
		if req.Table != "" {
			table = req.Table
		}
		cells = req.Rows
	}
	if table == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing table"})
		return
	}
	if len(cells) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no rows"})
		return
	}

	schema, err := s.b.TableSchema(table)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	rows := make([]storage.Row, len(cells))
	for i, rec := range cells {
		row, err := decodeLoadRow(schema, rec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("row %d: %v", i+1, err)})
			return
		}
		rows[i] = row
	}

	syncParam := r.URL.Query().Get("sync")
	res, err := s.LoadRowsCtx(r.Context(), table, rows, syncParam == "1" || syncParam == "true")
	if err != nil {
		writeJSON(w, httpStatusOf(err), errorResponse{Error: err.Error()})
		return
	}
	out := loadResponse{
		Table:       table,
		RowsLoaded:  len(rows),
		Invalidated: res.Invalidated,
		Durability:  "applied",
		LSN:         res.LSN,
	}
	if res.Durable && !res.Applied {
		out.Durability = "logged"
	}
	writeJSON(w, http.StatusOK, out)
}

// decodeLoadRow coerces one wire row (JSON cells or CSV fields) to the
// table schema.
func decodeLoadRow(schema *storage.Schema, rec []any) (storage.Row, error) {
	if len(rec) != schema.Len() {
		return nil, fmt.Errorf("has %d cells, schema wants %d", len(rec), schema.Len())
	}
	row := make(storage.Row, len(rec))
	for i, cell := range rec {
		kind := schema.Col(i).Kind
		switch v := cell.(type) {
		case float64: // every JSON number decodes to float64
			switch kind {
			case storage.KindInt64:
				row[i] = storage.Int64(int64(v))
			case storage.KindTime:
				row[i] = storage.TimeUnix(int64(v))
			case storage.KindFloat64:
				row[i] = storage.Float64(v)
			default:
				row[i] = storage.Str(strconv.FormatFloat(v, 'g', -1, 64))
			}
		case string:
			val, err := storage.ParseValue(kind, v)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", schema.Col(i).Name, err)
			}
			row[i] = val
		case bool:
			return nil, fmt.Errorf("column %s: booleans are not a supported cell type", schema.Col(i).Name)
		case nil:
			return nil, fmt.Errorf("column %s: null cells are not supported", schema.Col(i).Name)
		default:
			return nil, fmt.Errorf("column %s: unsupported cell type %T", schema.Col(i).Name, cell)
		}
	}
	return row, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// healthzResponse is the /healthz body. For a replicated fleet it carries
// the per-shard live-replica counts, and DeadShards names shards with no
// replica left at all — those fail scatters, so the endpoint reports 503
// "degraded" and a load balancer can stop routing here until they recover.
// A shard whose only unavailable replicas are replaying missed WAL records
// is listed in CatchingUpShards instead: it is repairing, not dead, and the
// status is "catching_up" (still 503 when no replica can serve reads, so
// balancers hold traffic, but operators see recovery is in progress).
type healthzResponse struct {
	Status           string `json:"status"`
	Shards           int    `json:"shards,omitempty"`
	Replicas         int    `json:"replicas,omitempty"`
	LiveByShard      []int  `json:"live_by_shard,omitempty"`
	CatchingUp       int    `json:"catching_up,omitempty"`
	CatchingUpShards []int  `json:"catching_up_shards,omitempty"`
	DeadShards       []int  `json:"dead_shards,omitempty"`
}

// buildHealthz classifies a fleet health snapshot into the /healthz body
// and its HTTP status. Pure so the catching_up-versus-dead distinction is
// unit-testable without racing a live catch-up.
func buildHealthz(health []shard.SetHealth) (healthzResponse, int) {
	resp := healthzResponse{Status: "ok"}
	resp.Shards = len(health)
	unservable := false
	for _, sh := range health {
		if sh.Replicas > resp.Replicas {
			resp.Replicas = sh.Replicas
		}
		resp.LiveByShard = append(resp.LiveByShard, sh.Live)
		resp.CatchingUp += sh.CatchingUp
		if sh.Live > 0 {
			continue
		}
		unservable = true
		if sh.CatchingUp > 0 {
			resp.CatchingUpShards = append(resp.CatchingUpShards, sh.Shard)
		} else {
			resp.DeadShards = append(resp.DeadShards, sh.Shard)
		}
	}
	switch {
	case len(resp.DeadShards) > 0:
		resp.Status = "degraded"
	case unservable:
		resp.Status = "catching_up"
	}
	if unservable {
		return resp, http.StatusServiceUnavailable
	}
	return resp, http.StatusOK
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, healthzResponse{Status: "draining"})
		return
	}
	health := s.ShardHealth()
	if len(health) == 0 {
		writeJSON(w, http.StatusOK, healthzResponse{Status: "ok"})
		return
	}
	resp, code := buildHealthz(health)
	writeJSON(w, code, resp)
}
